examples/quickstart.mli:
