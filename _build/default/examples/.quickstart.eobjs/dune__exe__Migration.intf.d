examples/migration.mli:
