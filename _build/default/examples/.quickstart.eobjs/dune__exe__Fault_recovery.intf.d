examples/fault_recovery.mli:
