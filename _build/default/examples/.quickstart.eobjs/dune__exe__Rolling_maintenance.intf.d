examples/rolling_maintenance.mli:
