examples/migration.ml: List Printf String Zapc Zapc_apps Zapc_msg Zapc_pod Zapc_sim Zapc_simnet Zapc_simos
