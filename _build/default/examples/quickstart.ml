(* Quickstart: the smallest end-to-end ZapC session.

   Builds a 4-node simulated cluster, launches the CPI application (two MPI
   ranks, each in its own pod), takes a coordinated snapshot mid-run, lets
   the original finish, then restarts the snapshot on two *different* nodes
   and shows that the restarted computation produces the identical result.

   Run with:  dune exec examples/quickstart.exe *)

module Simtime = Zapc_sim.Simtime
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Launch = Zapc_msg.Launch

let () =
  (* 1. make programs known to the simulated kernels (the analogue of
        installing the binaries on shared storage) *)
  Zapc_apps.Registry.register_all ();

  (* 2. build a cluster: 4 nodes, Gigabit-style fabric, shared storage *)
  let cluster = Cluster.make ~params:Zapc.Params.default ~node_count:4 () in
  Array.iter
    (fun i ->
      Kernel.set_logger (Cluster.node cluster i).Cluster.n_kernel (fun k _ m ->
          Printf.printf "  [%7.1f ms | node%d] %s\n%!"
            (Simtime.to_ms (Kernel.now k)) k.Kernel.node_id m))
    [| 0; 1; 2; 3 |];

  (* 3. launch CPI on nodes 0 and 1: one pod per rank, plus a daemon each *)
  let app =
    Launch.launch cluster ~name:"cpi" ~program:"cpi" ~placement:[ 0; 1 ]
      ~app_args:
        (Zapc_apps.Cpi.params_to_value
           { Zapc_apps.Cpi.default_params with intervals = 1_000_000; chunks = 10 })
      ()
  in
  print_endline "launched CPI on nodes 0,1; running for 2 ms of virtual time...";
  Cluster.run cluster ~until:(Simtime.ms 2) ();

  (* 4. coordinated checkpoint of the whole application to shared storage *)
  let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"quickstart" in
  Printf.printf "snapshot: ok=%b in %.1f ms (virtual); images: %s\n%!" r.Manager.r_ok
    (Simtime.to_ms r.Manager.r_duration)
    (String.concat ", "
       (List.map
          (fun (pod, st) ->
            Printf.sprintf "pod%d=%.1fMB" pod
              (float_of_int st.Zapc.Protocol.st_image_bytes /. 1e6))
          r.Manager.r_stats));

  (* 5. the original run continues to completion (snapshot semantics) *)
  let t = Launch.wait_done cluster app in
  Printf.printf "original run completed at %.1f ms\n%!" (Simtime.to_ms t);

  (* 6. restart the snapshot on nodes 2 and 3 *)
  print_endline "restarting the snapshot on nodes 2,3...";
  let rr =
    Cluster.restart_app cluster ~pod_ids:(Launch.pod_ids app) ~target_nodes:[ 2; 3 ]
      ~key_prefix:"quickstart"
  in
  Printf.printf "restart: ok=%b in %.1f ms (virtual)\n%!" rr.Manager.r_ok
    (Simtime.to_ms rr.Manager.r_duration);

  (* 7. run the restarted application to completion; it picks up exactly
        where the checkpoint froze it *)
  let ranks =
    List.concat_map
      (fun id ->
        match Pod.find id with
        | None -> []
        | Some pod ->
          List.filter_map
            (fun (_, (p : Proc.t)) ->
              if String.equal (Zapc_simos.Program.name_of p.Proc.inst) "cpi" then Some p
              else None)
            (Pod.members pod))
      (Launch.pod_ids app)
  in
  Cluster.run_until cluster ~timeout:(Simtime.sec 600.0) (fun () ->
      List.for_all (fun (p : Proc.t) -> p.Proc.exit_code <> None) ranks);
  print_endline "restarted run completed — compare the two pi results above."
