(* Fault recovery with the periodic-checkpoint service: snapshot a running
   distributed application on a schedule; when a node dies, recover the
   whole application from the last good epoch on the surviving nodes —
   losing only the work since that snapshot (the paper's headline use case
   for checkpoint-restart on clusters).

   Run with:  dune exec examples/fault_recovery.exe *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Periodic = Zapc.Periodic
module Launch = Zapc_msg.Launch

let () =
  Zapc_apps.Registry.register_all ();
  let cluster = Cluster.make ~params:Zapc.Params.default ~node_count:4 () in
  for i = 0 to 3 do
    Kernel.set_logger (Cluster.node cluster i).Cluster.n_kernel (fun k _ m ->
        Printf.printf "  [%8.1f ms | node%d] %s\n%!" (Simtime.to_ms (Kernel.now k))
          k.Kernel.node_id m)
  done;
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:
        (Zapc_apps.Bt_nas.params_to_value
           { Zapc_apps.Bt_nas.default_params with g = 256; iters = 1200 })
      ()
  in
  print_endline "BT/NAS on nodes 0,1; periodic snapshots every 250 ms (keep last 2)";

  let svc =
    Periodic.start cluster ~pods:app.Launch.pods ~prefix:"epoch"
      ~period:(Simtime.ms 250) ~keep:2 ()
  in
  Periodic.set_on_epoch svc (fun e r ->
      if r.Manager.r_ok then
        Printf.printf "  -- epoch %d snapshotted in %.1f ms\n%!" e
          (Simtime.to_ms r.Manager.r_duration));

  (* node 1 crashes mid-run *)
  Engine.schedule_at (Cluster.engine cluster) ~at:(Simtime.ms 800) (fun () ->
      Printf.printf "  !! node 1 crashes at %.1f ms\n%!"
        (Simtime.to_ms (Cluster.now cluster));
      List.iter
        (fun (p : Pod.t) ->
          match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric cluster) p.rip with
          | Some 1 -> Pod.destroy p
          | Some _ | None -> ())
        app.Launch.pods);

  Cluster.run cluster ~until:(Simtime.ms 820) ();
  (* let any in-flight checkpoint settle, then recover *)
  Cluster.run_until cluster ~timeout:(Simtime.sec 10.0) (fun () ->
      not (Manager.busy (Cluster.manager cluster)));
  Printf.printf "last good epoch: %d (completed %d, skipped %d)\n%!"
    (Periodic.last_good svc) (Periodic.completed svc) (Periodic.skipped svc);

  let r = Periodic.recover svc ~target_nodes:[ 2; 3 ] in
  Printf.printf "recovery restart on nodes 2,3: ok=%b in %.1f ms\n%!" r.Manager.r_ok
    (Simtime.to_ms r.Manager.r_duration);

  let ranks =
    List.concat_map
      (fun (p : Pod.t) ->
        match Pod.find p.pod_id with
        | None -> []
        | Some pod ->
          List.filter_map
            (fun (_, (pr : Proc.t)) ->
              if String.equal (Zapc_simos.Program.name_of pr.Proc.inst) "bt_nas" then
                Some pr
              else None)
            (Pod.members pod))
      app.Launch.pods
  in
  Cluster.run_until cluster ~timeout:(Simtime.sec 3600.0) (fun () ->
      List.for_all (fun (p : Proc.t) -> p.Proc.exit_code <> None) ranks);
  Printf.printf
    "recovered run finished at %.1f ms — only the work after epoch %d was redone\n%!"
    (Simtime.to_ms (Cluster.now cluster))
    (Periodic.last_good svc)
