(* Rolling cluster maintenance (paper section 1: "checkpointing application
   processes before cluster node maintenance and restarting them on other
   cluster nodes so that applications can continue to run with minimal
   downtime"): each node in turn is drained by live-migrating its pod to a
   spare node, "serviced", and the application never stops making progress.

   Run with:  dune exec examples/rolling_maintenance.exe *)

module Simtime = Zapc_sim.Simtime
module Fabric = Zapc_simnet.Fabric
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Protocol = Zapc.Protocol
module Launch = Zapc_msg.Launch

let where cluster (p : Pod.t) =
  match Fabric.node_of_ip (Cluster.fabric cluster) p.rip with Some n -> n | None -> -1

(* Drain one node: a migration is a COORDINATED operation over the whole
   application (the paper always checkpoints/restarts all pods together, so
   every connection endpoint is re-established consistently) — the moving
   pod lands on [target], every other pod restarts in place. *)
let round = ref 0

let drain cluster (pods : Pod.t list) ~(moving : Pod.t) ~target =
  incr round;
  (* resolve the LIVE pod objects: earlier rounds re-created them *)
  let pods = List.map (fun (p : Pod.t) -> Option.get (Pod.find p.Pod.pod_id)) pods in
  let prefix = Printf.sprintf "maint%d" !round in
  let ck = Cluster.snapshot cluster ~pods ~key_prefix:prefix in
  assert ck.Manager.r_ok;
  let placements =
    List.map
      (fun (p : Pod.t) ->
        if p.Pod.pod_id = moving.Pod.pod_id then target else where cluster p)
      pods
  in
  List.iter (fun (p : Pod.t) -> match Pod.find p.Pod.pod_id with
    | Some pod -> Pod.destroy pod | None -> ()) pods;
  let r =
    Cluster.restart_app cluster
      ~pod_ids:(List.map (fun (p : Pod.t) -> p.Pod.pod_id) pods)
      ~target_nodes:placements ~key_prefix:prefix
  in
  assert r.Manager.r_ok;
  Simtime.to_ms (Simtime.add ck.Manager.r_duration r.Manager.r_duration)

let () =
  Zapc_apps.Registry.register_all ();
  (* nodes 0-3 run the application; node 4 is the maintenance spare *)
  let cluster = Cluster.make ~params:Zapc.Params.default ~node_count:5 () in
  for i = 0 to 4 do
    Kernel.set_logger (Cluster.node cluster i).Cluster.n_kernel (fun k _ m ->
        Printf.printf "  [%8.1f ms | node%d] %s\n%!" (Simtime.to_ms (Kernel.now k))
          k.Kernel.node_id m)
  done;
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1; 2; 3 ]
      ~app_args:
        (Zapc_apps.Bt_nas.params_to_value
           { Zapc_apps.Bt_nas.default_params with g = 256; iters = 2000 })
      ()
  in
  print_endline "BT/NAS on nodes 0-3; draining each node in turn to spare node 4";
  Cluster.run cluster ~until:(Simtime.ms 50) ();

  (* drain nodes 0..3 one at a time: pod moves to the spare, the vacated
     node becomes the new spare *)
  let spare = ref 4 in
  List.iter
    (fun (pod : Pod.t) ->
      let pod = Option.get (Pod.find pod.Pod.pod_id) in
      let src = where cluster pod in
      let pause = drain cluster app.Launch.pods ~moving:pod ~target:!spare in
      Printf.printf
        "  drained node %d (pod %d -> node %d), app paused %.1f ms; node %d in maintenance\n%!"
        src pod.Pod.pod_id !spare pause src;
      spare := src;
      (* let the application run on during the "maintenance window" *)
      Cluster.run cluster
        ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 120)) ())
    app.Launch.pods;

  (* the application finishes, having visited five different placements *)
  let ranks =
    List.concat_map
      (fun (p : Pod.t) ->
        match Pod.find p.pod_id with
        | None -> []
        | Some pod ->
          List.filter_map
            (fun (_, (pr : Proc.t)) ->
              if String.equal (Zapc_simos.Program.name_of pr.Proc.inst) "bt_nas" then
                Some pr
              else None)
            (Pod.members pod))
      app.Launch.pods
  in
  Cluster.run_until cluster ~timeout:(Simtime.sec 7200.0) (fun () ->
      List.for_all (fun (p : Proc.t) -> p.Proc.exit_code <> None) ranks);
  List.iter
    (fun (p : Pod.t) ->
      match Pod.find p.pod_id with
      | Some pod -> Printf.printf "  pod %d finished on node %d\n%!" p.pod_id (where cluster pod)
      | None -> ())
    app.Launch.pods;
  Printf.printf "completed at %.1f ms with zero failed iterations\n%!"
    (Simtime.to_ms (Cluster.now cluster))
