(* Live migration with direct streaming (paper section 4): checkpoint data
   flows straight from the source Agents to the destination Agents, never
   touching secondary storage, and an application on N nodes is reshaped
   onto M < N nodes (pods are the unit of migration, so a dual-CPU node can
   absorb two of them).

   Here: BT/NAS runs on 4 single-pod nodes and is migrated, mid-run, onto 2
   dual-CPU nodes — 2 pods each.

   Run with:  dune exec examples/migration.exe *)

module Simtime = Zapc_sim.Simtime
module Fabric = Zapc_simnet.Fabric
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Protocol = Zapc.Protocol
module Launch = Zapc_msg.Launch

let () =
  Zapc_apps.Registry.register_all ();
  (* nodes 0-3: uniprocessor "source" blades; nodes 4-5: dual-CPU targets *)
  let cluster = Cluster.make ~params:Zapc.Params.default ~node_count:6 ~cpus:2 () in
  for i = 0 to 5 do
    Kernel.set_logger (Cluster.node cluster i).Cluster.n_kernel (fun k _ m ->
        Printf.printf "  [%8.1f ms | node%d] %s\n%!" (Simtime.to_ms (Kernel.now k))
          k.Kernel.node_id m)
  done;
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1; 2; 3 ]
      ~app_args:
        (Zapc_apps.Bt_nas.params_to_value
           { Zapc_apps.Bt_nas.default_params with g = 256; iters = 400 })
      ()
  in
  print_endline "BT/NAS running on nodes 0-3 (one pod per node)...";
  Cluster.run cluster ~until:(Simtime.ms 20) ();

  (* migrate: checkpoint each pod streamed directly to its destination Agent
     (pods 0,1 -> node 4; pods 2,3 -> node 5), destroying the sources *)
  let targets = [ 4; 4; 5; 5 ] in
  let where (p : Pod.t) =
    match Fabric.node_of_ip (Cluster.fabric cluster) p.rip with Some n -> n | None -> -1
  in
  let items =
    List.map2
      (fun (p : Pod.t) dst ->
        { Manager.ci_node = where p; ci_pod = p.pod_id; ci_dest = Protocol.U_node dst })
      app.Launch.pods targets
  in
  print_endline "streaming checkpoints to nodes 4,5 (no secondary storage)...";
  let ck = Cluster.checkpoint_sync cluster ~items ~resume:false in
  Printf.printf "checkpoint+stream: ok=%b in %.1f ms\n%!" ck.Manager.r_ok
    (Simtime.to_ms ck.Manager.r_duration);

  let ritems =
    List.map2
      (fun id dst -> { Manager.ri_node = dst; ri_pod = id; ri_uri = Protocol.U_node dst })
      (Launch.pod_ids app) targets
  in
  let rr = Cluster.restart_sync cluster ~items:ritems in
  Printf.printf "restart on 2 dual-CPU nodes: ok=%b in %.1f ms\n%!" rr.Manager.r_ok
    (Simtime.to_ms rr.Manager.r_duration);

  (* show where everything lives now *)
  List.iter
    (fun id ->
      match Pod.find id with
      | Some pod -> Printf.printf "  pod %d now on node %d\n%!" id (where pod)
      | None -> Printf.printf "  pod %d missing!\n%!" id)
    (Launch.pod_ids app);

  (* run the migrated application to completion *)
  let ranks =
    List.concat_map
      (fun id ->
        match Pod.find id with
        | None -> []
        | Some pod ->
          List.filter_map
            (fun (_, (p : Proc.t)) ->
              if String.equal (Zapc_simos.Program.name_of p.Proc.inst) "bt_nas" then Some p
              else None)
            (Pod.members pod))
      (Launch.pod_ids app)
  in
  Cluster.run_until cluster ~timeout:(Simtime.sec 1200.0) (fun () ->
      List.for_all (fun (p : Proc.t) -> p.Proc.exit_code <> None) ranks);
  Printf.printf "migrated run finished at %.1f ms (virtual)\n%!"
    (Simtime.to_ms (Cluster.now cluster))
