(* Dynamic load balancing (paper section 1): two applications start crammed
   onto the same node; ZapC migrates one of them to idle nodes mid-run and
   both finish sooner than they would have sharing a CPU.

   Run with:  dune exec examples/load_balance.exe *)

module Simtime = Zapc_sim.Simtime
module Fabric = Zapc_simnet.Fabric
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Protocol = Zapc.Protocol
module Launch = Zapc_msg.Launch

let cpi_args =
  Zapc_apps.Cpi.params_to_value
    { Zapc_apps.Cpi.default_params with intervals = 1_000_000; chunks = 10;
      ns_per_interval = 50_000 }

(* run the contended scenario; if [migrate] is set, move app B to the idle
   nodes at 5 ms *)
let run_scenario ~migrate =
  Zapc_apps.Registry.register_all ();
  let cluster = Cluster.make ~params:Zapc.Params.default ~node_count:4 () in
  (* both 2-rank applications squeezed onto nodes 0 and 0 (sharing CPUs) *)
  let app_a = Launch.launch cluster ~name:"jobA" ~program:"cpi" ~placement:[ 0; 1 ] ~app_args:cpi_args () in
  let app_b = Launch.launch cluster ~name:"jobB" ~program:"cpi" ~placement:[ 0; 1 ] ~app_args:cpi_args () in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  if migrate then begin
    let where (p : Pod.t) =
      match Fabric.node_of_ip (Cluster.fabric cluster) p.rip with Some n -> n | None -> 0
    in
    let targets = [ 2; 3 ] in
    let items =
      List.map2
        (fun (p : Pod.t) dst ->
          { Manager.ci_node = where p; ci_pod = p.pod_id; ci_dest = Protocol.U_node dst })
        app_b.Launch.pods targets
    in
    let ck = Cluster.checkpoint_sync cluster ~items ~resume:false in
    assert ck.Manager.r_ok;
    let ritems =
      List.map2
        (fun id dst -> { Manager.ri_node = dst; ri_pod = id; ri_uri = Protocol.U_node dst })
        (Launch.pod_ids app_b) targets
    in
    let rr = Cluster.restart_sync cluster ~items:ritems in
    assert rr.Manager.r_ok
  end;
  (* wait for app A (and B's restarted ranks) to finish *)
  ignore (Launch.wait_done cluster app_a);
  let a_done = Launch.completion_time app_a in
  let b_ranks =
    if not migrate then app_b.Launch.ranks
    else
      List.concat_map
        (fun id ->
          match Pod.find id with
          | None -> []
          | Some pod ->
            List.filter_map
              (fun (_, (p : Proc.t)) ->
                if String.equal (Zapc_simos.Program.name_of p.Proc.inst) "cpi" then Some p
                else None)
              (Pod.members pod))
        (Launch.pod_ids app_b)
  in
  Cluster.run_until cluster ~timeout:(Simtime.sec 1200.0) (fun () ->
      List.for_all (fun (p : Proc.t) -> p.Proc.exit_code <> None) b_ranks);
  let b_done =
    List.fold_left
      (fun acc (p : Proc.t) ->
        match p.Proc.exit_time with Some t -> Simtime.max acc t | None -> acc)
      Simtime.zero b_ranks
  in
  (Simtime.to_ms a_done, Simtime.to_ms b_done)

let () =
  print_endline "two 2-rank CPI jobs sharing nodes 0,1:";
  let a0, b0 = run_scenario ~migrate:false in
  Printf.printf "  without migration: job A %.1f ms, job B %.1f ms\n%!" a0 b0;
  let a1, b1 = run_scenario ~migrate:true in
  Printf.printf "  with job B migrated to idle nodes 2,3 at t=5ms: job A %.1f ms, job B %.1f ms\n%!"
    a1 b1;
  Printf.printf "  speedup: job A %.2fx, job B %.2fx\n%!" (a0 /. a1) (b0 /. b1)
