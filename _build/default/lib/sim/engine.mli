(** Discrete-event simulation engine.

    A single engine drives an entire simulated cluster: the virtual clock
    advances to the timestamp of each scheduled event in turn and the event's
    callback runs to completion (callbacks may schedule further events).
    Determinism: ties in timestamps fire in scheduling order. *)

type t

val create : ?seed:int -> unit -> t
val now : t -> Simtime.t
val rng : t -> Rng.t

val schedule : t -> delay:Simtime.t -> (unit -> unit) -> unit
(** Run the callback [delay] after the current virtual time. *)

val schedule_at : t -> at:Simtime.t -> (unit -> unit) -> unit

val run : ?until:Simtime.t -> ?max_events:int -> t -> unit
(** Process events until the queue is empty, [until] is reached, or
    [max_events] have fired.  Raises [Stalled] never — an empty queue simply
    stops. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int

exception Deadlock of string
(** Raised by [run_until_quiescent] helpers elsewhere when forward progress
    is required but the queue drained unexpectedly. *)
