(** Virtual time, in integer nanoseconds since simulation start. *)

type t = int

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : float -> t
val add : t -> t -> t
val sub : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val to_ms : t -> float
val to_us : t -> float
val to_sec : t -> float
val pp : Format.formatter -> t -> unit
(** Human-readable: picks ns/us/ms/s unit automatically. *)
