exception Deadlock of string

type t = {
  mutable clock : Simtime.t;
  queue : (unit -> unit) Pheap.t;
  rng : Rng.t;
  mutable processed : int;
}

let create ?(seed = 42) () =
  { clock = Simtime.zero; queue = Pheap.create (); rng = Rng.create ~seed; processed = 0 }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~at fn =
  let at = if Simtime.compare at t.clock < 0 then t.clock else at in
  Pheap.push t.queue ~key:at fn

let schedule t ~delay fn = schedule_at t ~at:(Simtime.add t.clock delay) fn

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Pheap.peek_key t.queue with
    | None -> continue := false
    | Some key ->
      (match until with
       | Some limit when Simtime.compare key limit > 0 ->
         t.clock <- limit;
         continue := false
       | _ ->
         (match Pheap.pop t.queue with
          | None -> continue := false
          | Some (at, fn) ->
            t.clock <- at;
            t.processed <- t.processed + 1;
            decr budget;
            fn ()))
  done

let pending t = Pheap.length t.queue
let events_processed t = t.processed
