type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec f = int_of_float (f *. 1e9)
let add = ( + )
let sub = ( - )
let max = Stdlib.max
let compare = Int.compare
let to_ms t = float_of_int t /. 1e6
let to_us t = float_of_int t /. 1e3
let to_sec t = float_of_int t /. 1e9

let pp ppf t =
  if t < 1_000 then Format.fprintf ppf "%dns" t
  else if t < 1_000_000 then Format.fprintf ppf "%.1fus" (to_us t)
  else if t < 1_000_000_000 then Format.fprintf ppf "%.2fms" (to_ms t)
  else Format.fprintf ppf "%.3fs" (to_sec t)
