type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let create ~seed = { state = mix (Int64.of_int seed) }
let split t = { state = mix (next t) }

let int t n =
  assert (n > 0);
  (* keep 62 bits so the value stays non-negative in OCaml's 63-bit int *)
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod n

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x *. (r /. 9007199254740992.0)

let bool t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  (* Box-Muller *)
  let u1 = Stdlib.max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
