type t = {
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
}

let create () = { n = 0; sum = 0.0; sumsq = 0.0; mn = infinity; mx = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let m = mean t in
    let var = (t.sumsq /. float_of_int t.n) -. (m *. m) in
    sqrt (Stdlib.max 0.0 var)

let min t = t.mn
let max t = t.mx

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let pp_ms ppf t =
  Format.fprintf ppf "%.1f ± %.1f ms [%.1f..%.1f]" (mean t) (stddev t) t.mn t.mx
