(** Deterministic pseudo-random number generator (splitmix64 core).

    All simulation randomness flows through explicit [Rng.t] values so that
    every experiment is reproducible from its seed. *)

type t

val create : seed:int -> t
val split : t -> t
(** Derive an independent stream (for per-node / per-process generators). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
val gaussian : t -> mu:float -> sigma:float -> float
