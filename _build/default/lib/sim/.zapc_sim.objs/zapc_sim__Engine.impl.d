lib/sim/engine.ml: Pheap Rng Simtime
