lib/sim/pheap.ml: Array
