lib/sim/rng.mli:
