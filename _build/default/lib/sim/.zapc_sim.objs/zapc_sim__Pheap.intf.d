lib/sim/pheap.mli:
