lib/sim/simtime.ml: Format Int Stdlib
