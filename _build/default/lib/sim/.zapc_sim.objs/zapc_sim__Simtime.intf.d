lib/sim/simtime.mli: Format
