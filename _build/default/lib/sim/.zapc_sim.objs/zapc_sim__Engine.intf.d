lib/sim/engine.mli: Rng Simtime
