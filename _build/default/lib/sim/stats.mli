(** Small running-statistics accumulator for experiment reporting
    (mean, standard deviation, min, max over repeated runs). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float
val of_list : float list -> t
val pp_ms : Format.formatter -> t -> unit
(** Render as "mean ± stddev ms [min..max]" where samples are milliseconds. *)
