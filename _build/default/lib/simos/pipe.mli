(** Unidirectional in-kernel pipes: the interprocess-communication resource
    (besides sockets) that pod checkpoints must capture.  Reference counts
    track how many fd-table entries point at each end. *)

module Sockbuf = Zapc_simnet.Sockbuf

type t = {
  id : int;
  buf : Sockbuf.t;
  capacity : int;
  mutable rd_refs : int;
  mutable wr_refs : int;
  mutable rd_waiters : (unit -> unit) list;
  mutable wr_waiters : (unit -> unit) list;
}

val default_capacity : int
val create : id:int -> t
val space : t -> int

type rres = Pdata of string | Peof | Pblock

val read : t -> int -> rres

type wres = Pwrote of int | Pepipe | Pwblock

val write : t -> string -> wres
val after_read : t -> unit
val close_read : t -> unit
val close_write : t -> unit
val wake_readers : t -> unit
val wake_writers : t -> unit
