(** Process signals.  ZapC relies on SIGSTOP/SIGCONT to freeze and thaw the
    processes of a pod around a checkpoint and SIGKILL to tear a pod down
    after migration; SIGTERM terminates (default action); SIGUSR1/2 are
    ignored. *)

type t = Sigstop | Sigcont | Sigkill | Sigterm | Sigusr1 | Sigusr2

val to_string : t -> string
val pp : Format.formatter -> t -> unit
