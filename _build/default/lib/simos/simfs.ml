(* The shared file system (the SAN/NAS-backed GFS of the paper's testbed).

   Every node mounts the same store, which is why pod checkpoints do not
   need to include file data: after migration the files are simply there
   (paper section 3).  Pods see a chroot-style private namespace — the pod
   syscall filter prefixes paths with the pod's root — and an optional
   file-system snapshot can be taken "immediately prior to reactivating the
   pod" by copying the pod's subtree.

   Files are byte strings; writes are whole-file or append. *)

module Value = Zapc_codec.Value

type t = {
  files : (string, string) Hashtbl.t;
  mutable bytes : int;
}

let create () = { files = Hashtbl.create 64; bytes = 0 }

let normalize path =
  if String.length path = 0 || path.[0] <> '/' then "/" ^ path else path

let put t path data =
  let path = normalize path in
  let old = match Hashtbl.find_opt t.files path with Some d -> String.length d | None -> 0 in
  Hashtbl.replace t.files path data;
  t.bytes <- t.bytes - old + String.length data

let append t path data =
  let path = normalize path in
  let old = match Hashtbl.find_opt t.files path with Some d -> d | None -> "" in
  Hashtbl.replace t.files path (old ^ data);
  t.bytes <- t.bytes + String.length data

let get t path = Hashtbl.find_opt t.files (normalize path)

let remove t path =
  let path = normalize path in
  (match Hashtbl.find_opt t.files path with
   | Some d -> t.bytes <- t.bytes - String.length d
   | None -> ());
  Hashtbl.remove t.files path

let exists t path = Hashtbl.mem t.files (normalize path)

let list t prefix =
  let prefix = normalize prefix in
  let n = String.length prefix in
  Hashtbl.fold
    (fun path _ acc ->
      if String.length path >= n && String.equal (String.sub path 0 n) prefix then
        path :: acc
      else acc)
    t.files []
  |> List.sort String.compare

let total_bytes t = t.bytes

(* Copy a subtree (used by the optional pre-reactivation snapshot); returns
   the number of bytes copied so the caller can charge storage time. *)
let snapshot_subtree t ~src_prefix ~dst_prefix =
  let files = list t src_prefix in
  let n = String.length (normalize src_prefix) in
  List.fold_left
    (fun copied path ->
      match get t path with
      | Some data ->
        let rel = String.sub path n (String.length path - n) in
        put t (normalize dst_prefix ^ rel) data;
        copied + String.length data
      | None -> copied)
    0 files
