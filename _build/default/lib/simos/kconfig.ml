(* Kernel cost model.  These constants put virtual-time prices on the
   operations the checkpoint-restart path exercises; defaults are calibrated
   to the paper's hardware class (3 GHz Xeon blades, CLUSTER 2005 era). *)

module Simtime = Zapc_sim.Simtime

type t = {
  syscall_cost : Simtime.t;       (* fixed entry/exit cost of a system call *)
  context_switch : Simtime.t;
  quantum : Simtime.t;            (* scheduler time slice *)
  signal_cost : Simtime.t;        (* deliver one signal *)
  virt_overhead : Simtime.t;      (* extra per-syscall cost of pod interposition *)
  spawn_cost : Simtime.t;
  mem_copy_bps : float;           (* checkpoint/restore memory bandwidth, bytes/s *)
  cpu_scale : float;              (* relative CPU speed; Compute is divided by it *)
}

let default =
  {
    syscall_cost = Simtime.ns 800;
    context_switch = Simtime.us 2;
    quantum = Simtime.ms 5;
    signal_cost = Simtime.us 4;
    virt_overhead = Simtime.ns 250;
    spawn_cost = Simtime.us 120;
    mem_copy_bps = 1.5e9;
    cpu_scale = 1.0;
  }
