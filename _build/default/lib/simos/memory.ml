(* Per-process memory accounting.

   Programs declare their working set through mem_alloc/mem_free; the
   checkpoint charges these bytes to the pod image (a real checkpointer
   writes the address space — here the *computational* state travels in the
   program's Value encoding, and regions model the footprint of the
   application at the paper's scale, e.g. BT/NAS's hundreds of MB). *)

module Value = Zapc_codec.Value

type t = {
  regions : (string, int) Hashtbl.t;
  mutable total : int;
  mutable peak : int;
}

let create () = { regions = Hashtbl.create 8; total = 0; peak = 0 }

let alloc t name size =
  let old = match Hashtbl.find_opt t.regions name with Some s -> s | None -> 0 in
  Hashtbl.replace t.regions name size;
  t.total <- t.total - old + size;
  if t.total > t.peak then t.peak <- t.total

let free t name =
  match Hashtbl.find_opt t.regions name with
  | None -> ()
  | Some s ->
    Hashtbl.remove t.regions name;
    t.total <- t.total - s

let total t = t.total
let peak t = t.peak

let to_value t =
  let kvs = Hashtbl.fold (fun k v acc -> (k, Value.Int v) :: acc) t.regions [] in
  let kvs = List.sort (fun (a, _) (b, _) -> String.compare a b) kvs in
  Value.Assoc kvs

let of_value v =
  let t = create () in
  List.iter (fun (k, sz) -> alloc t k (Value.to_int sz)) (Value.to_assoc v);
  t
