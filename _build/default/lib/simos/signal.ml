(* Process signals.  ZapC relies on SIGSTOP/SIGCONT to freeze and thaw the
   processes of a pod around a checkpoint, and on SIGKILL to tear a pod down
   after migration. *)

type t = Sigstop | Sigcont | Sigkill | Sigterm | Sigusr1 | Sigusr2

let to_string = function
  | Sigstop -> "SIGSTOP"
  | Sigcont -> "SIGCONT"
  | Sigkill -> "SIGKILL"
  | Sigterm -> "SIGTERM"
  | Sigusr1 -> "SIGUSR1"
  | Sigusr2 -> "SIGUSR2"

let pp ppf s = Format.pp_print_string ppf (to_string s)
