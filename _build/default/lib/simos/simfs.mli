(** The shared file system (the SAN/NAS-backed GFS of the paper's testbed).

    Every node mounts the same store, which is why pod checkpoints need not
    include file data: after migration the files are simply there (paper
    section 3).  Pods see a chroot-style private namespace (the pod syscall
    filter prefixes paths), and an optional file-system snapshot can be
    taken "immediately prior to reactivating the pod" by copying the pod's
    subtree ({!snapshot_subtree}). *)

type t

val create : unit -> t
val put : t -> string -> string -> unit
(** Whole-file write (create or replace). *)

val append : t -> string -> string -> unit
val get : t -> string -> string option
val remove : t -> string -> unit
val exists : t -> string -> bool
val list : t -> string -> string list
(** Paths under a prefix, sorted. *)

val total_bytes : t -> int

val snapshot_subtree : t -> src_prefix:string -> dst_prefix:string -> int
(** Copy a subtree; returns bytes copied (for storage-time accounting). *)
