(** Per-process file descriptor table.  Entries reference shared kernel
    objects (sockets, pipe ends); spawn copies the parent's table so
    children share the underlying objects, like fork(2). *)

module Socket = Zapc_simnet.Socket

type entry =
  | Fsock of Socket.t
  | Fpipe_r of Pipe.t
  | Fpipe_w of Pipe.t
  | Fgm of Zapc_simnet.Gmdev.port  (** kernel-bypass messaging port *)

type t

val create : unit -> t
val add : t -> entry -> int
val add_at : t -> int -> entry -> unit
(** Restore path: re-install an entry at its checkpointed descriptor
    number. *)

val find : t -> int -> entry option
val remove : t -> int -> unit
val socket : t -> int -> Socket.t option
val fold : t -> (int -> entry -> 'a -> 'a) -> 'a -> 'a
val iter : t -> (int -> entry -> unit) -> unit
val cardinal : t -> int

val copy : t -> t
(** Share the underlying objects and bump pipe-end reference counts (socket
    sharing is counted by the kernel). *)
