(* Unidirectional in-kernel pipes: the interprocess-communication resource
   (besides sockets) that pod checkpoints must capture.  Reference counts
   track how many fd-table entries point at each end (spawn inherits fds). *)

module Sockbuf = Zapc_simnet.Sockbuf

type t = {
  id : int;
  buf : Sockbuf.t;
  capacity : int;
  mutable rd_refs : int;
  mutable wr_refs : int;
  mutable rd_waiters : (unit -> unit) list;
  mutable wr_waiters : (unit -> unit) list;
}

let default_capacity = 65536

let create ~id =
  { id; buf = Sockbuf.create (); capacity = default_capacity; rd_refs = 1; wr_refs = 1;
    rd_waiters = []; wr_waiters = [] }

let wake_readers t =
  let ws = t.rd_waiters in
  t.rd_waiters <- [];
  List.iter (fun w -> w ()) (List.rev ws)

let wake_writers t =
  let ws = t.wr_waiters in
  t.wr_waiters <- [];
  List.iter (fun w -> w ()) (List.rev ws)

let space t = Stdlib.max 0 (t.capacity - Sockbuf.length t.buf)

type rres = Pdata of string | Peof | Pblock

let read t n =
  if not (Sockbuf.is_empty t.buf) then Pdata (Sockbuf.pop t.buf n)
  else if t.wr_refs = 0 then Peof
  else Pblock

type wres = Pwrote of int | Pepipe | Pwblock

let write t data =
  if t.rd_refs = 0 then Pepipe
  else begin
    let n = min (space t) (String.length data) in
    if n = 0 then Pwblock
    else begin
      Sockbuf.push t.buf (String.sub data 0 n);
      wake_readers t;
      Pwrote n
    end
  end

let after_read t = if space t > 0 then wake_writers t

let close_read t =
  t.rd_refs <- Stdlib.max 0 (t.rd_refs - 1);
  if t.rd_refs = 0 then wake_writers t

let close_write t =
  t.wr_refs <- Stdlib.max 0 (t.wr_refs - 1);
  if t.wr_refs = 0 then wake_readers t
