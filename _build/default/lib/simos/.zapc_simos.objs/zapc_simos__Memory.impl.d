lib/simos/memory.ml: Hashtbl List String Zapc_codec
