lib/simos/kconfig.ml: Zapc_sim
