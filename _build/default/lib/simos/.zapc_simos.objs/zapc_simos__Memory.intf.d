lib/simos/memory.mli: Zapc_codec
