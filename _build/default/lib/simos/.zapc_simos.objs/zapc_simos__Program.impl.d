lib/simos/program.ml: Hashtbl Syscall Zapc_codec Zapc_sim
