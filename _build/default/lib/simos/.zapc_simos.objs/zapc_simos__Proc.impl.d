lib/simos/proc.ml: Fdtable Format Memory Program Syscall Zapc_sim
