lib/simos/signal.mli: Format
