lib/simos/kernel.mli: Hashtbl Kconfig Proc Program Queue Signal Simfs Zapc_codec Zapc_sim Zapc_simnet
