lib/simos/kconfig.mli: Zapc_sim
