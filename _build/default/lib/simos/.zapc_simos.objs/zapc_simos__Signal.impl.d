lib/simos/signal.ml: Format
