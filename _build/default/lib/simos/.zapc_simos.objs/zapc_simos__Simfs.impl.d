lib/simos/simfs.ml: Hashtbl List String Zapc_codec
