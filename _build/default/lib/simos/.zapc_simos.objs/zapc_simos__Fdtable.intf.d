lib/simos/fdtable.mli: Pipe Zapc_simnet
