lib/simos/simfs.mli:
