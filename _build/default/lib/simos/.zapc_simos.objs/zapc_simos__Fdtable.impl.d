lib/simos/fdtable.ml: Hashtbl Pipe Zapc_simnet
