lib/simos/syscall.ml: Char Format List Signal String Zapc_codec Zapc_sim Zapc_simnet
