lib/simos/proc.mli: Fdtable Format Memory Program Syscall Zapc_sim
