lib/simos/program.mli: Syscall Zapc_codec Zapc_sim
