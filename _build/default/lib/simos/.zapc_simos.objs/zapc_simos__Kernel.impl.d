lib/simos/kernel.ml: Fdtable Hashtbl Kconfig List Memory Option Pipe Proc Program Queue Signal Simfs Stdlib String Syscall Zapc_sim Zapc_simnet
