lib/simos/pipe.ml: List Stdlib String Zapc_simnet
