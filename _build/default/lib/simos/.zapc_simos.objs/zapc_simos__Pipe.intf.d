lib/simos/pipe.mli: Zapc_simnet
