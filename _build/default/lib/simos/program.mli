(** Simulated programs: explicit, checkpointable transition systems.

    A program consumes the outcome of its previous action and produces the
    next one; its whole execution context — including the control point —
    lives in a state value that round-trips through {!Zapc_codec.Value}.
    This is what makes processes transparently checkpointable in the
    simulation: the kernel can save (program name, encoded state, pending
    syscall) at any instant, exactly as a kernel-level checkpointer saves
    the address space and task state, and programs never cooperate with the
    checkpointer.

    Programs are looked up by name in a global registry at spawn and restart
    time — the analogue of re-executing a binary from shared storage. *)

module Value = Zapc_codec.Value
module Simtime = Zapc_sim.Simtime

type action =
  | Compute of Simtime.t  (** occupy a CPU for this much virtual time *)
  | Sys of Syscall.t
  | Exit of int

module type S = sig
  type state

  val name : string
  val start : Value.t -> state
  val step : state -> Syscall.outcome -> state * action
  val to_value : state -> Value.t
  val of_value : Value.t -> state
end

type instance

val register : (module S) -> unit
(** @raise Invalid_argument on duplicate names. *)

val register_if_absent : (module S) -> unit
val lookup : string -> (module S) option

val spawn : string -> Value.t -> instance
(** Instantiate a registered program with arguments.
    @raise Invalid_argument if the program is unknown. *)

val restore : string -> Value.t -> instance
(** Re-instantiate from a checkpointed state value. *)

val step_instance : instance -> Syscall.outcome -> action
val snapshot : instance -> string * Value.t
val name_of : instance -> string
