(** Per-process memory accounting.

    Programs declare their working set through the mem_alloc/mem_free system
    calls; checkpoint images charge these bytes as the process's address
    space (see DESIGN.md: computational state itself travels in the
    program's Value encoding). *)

type t

val create : unit -> t

val alloc : t -> string -> int -> unit
(** [alloc t name size] creates or resizes the named region. *)

val free : t -> string -> unit
val total : t -> int
val peak : t -> int
val to_value : t -> Zapc_codec.Value.t
val of_value : Zapc_codec.Value.t -> t
