(* Per-process file descriptor table.  Entries reference shared kernel
   objects (sockets, pipe ends); spawn copies the parent's table so children
   share the underlying objects, like fork(2). *)

module Socket = Zapc_simnet.Socket

type entry =
  | Fsock of Socket.t
  | Fpipe_r of Pipe.t
  | Fpipe_w of Pipe.t
  | Fgm of Zapc_simnet.Gmdev.port  (* kernel-bypass messaging port *)

type t = {
  entries : (int, entry) Hashtbl.t;
  mutable next_fd : int;
}

let create () = { entries = Hashtbl.create 8; next_fd = 3 }

let add t entry =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Hashtbl.replace t.entries fd entry;
  fd

let add_at t fd entry =
  Hashtbl.replace t.entries fd entry;
  if fd >= t.next_fd then t.next_fd <- fd + 1

let find t fd = Hashtbl.find_opt t.entries fd
let remove t fd = Hashtbl.remove t.entries fd

let socket t fd =
  match find t fd with
  | Some (Fsock s) -> Some s
  | Some (Fpipe_r _ | Fpipe_w _ | Fgm _) | None -> None

let fold t f acc = Hashtbl.fold f t.entries acc
let iter t f = Hashtbl.iter f t.entries
let cardinal t = Hashtbl.length t.entries

(* Copy for spawn: shares the underlying objects and bumps pipe end
   refcounts.  Socket sharing needs no per-object count here because the
   kernel tracks socket fd references itself. *)
let copy t =
  let t' = { entries = Hashtbl.copy t.entries; next_fd = t.next_fd } in
  Hashtbl.iter
    (fun _ e ->
      match e with
      | Fpipe_r p -> p.Pipe.rd_refs <- p.Pipe.rd_refs + 1
      | Fpipe_w p -> p.Pipe.wr_refs <- p.Pipe.wr_refs + 1
      | Fsock _ | Fgm _ -> ())
    t.entries;
  t'
