(** Kernel cost model: virtual-time prices for the operations the
    checkpoint-restart path exercises.  Defaults are calibrated to the
    paper's hardware class (3 GHz Xeon blades, 2005). *)

module Simtime = Zapc_sim.Simtime

type t = {
  syscall_cost : Simtime.t;  (** fixed entry/exit cost of a system call *)
  context_switch : Simtime.t;
  quantum : Simtime.t;  (** scheduler time slice *)
  signal_cost : Simtime.t;  (** deliver one signal *)
  virt_overhead : Simtime.t;
      (** extra per-syscall cost of pod interposition — what the paper's
          Figure 5 measures *)
  spawn_cost : Simtime.t;
  mem_copy_bps : float;  (** checkpoint/restore memory bandwidth, bytes/s *)
  cpu_scale : float;  (** relative CPU speed; Compute durations divide by it *)
}

val default : t
