(* System call requests and results.

   This is the interface between simulated programs and the simulated
   kernel, and it is also part of the checkpoint image: a process blocked in
   a system call is saved together with that pending call, and the restart
   re-issues it against the restored resources — the simulation analogue of
   Linux's restartable system calls.  Hence every constructor here has a
   Value encoding. *)

module Simtime = Zapc_sim.Simtime
module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr
module Socket = Zapc_simnet.Socket
module Sockopt = Zapc_simnet.Sockopt
module Errno = Zapc_simnet.Errno

type shut_how = Shut_rd | Shut_wr | Shut_rdwr

type poll_req = { pfd : int; want_read : bool; want_write : bool }

type t =
  | Getpid
  | Clock_gettime
  | Nanosleep of Simtime.t
  | Alarm_set of Simtime.t
  | Alarm_cancel
  | Alarm_remaining
  | Mem_alloc of string * int
  | Mem_free of string
  | Spawn of string * Value.t  (* program name, arguments *)
  | Kill of int * Signal.t
  | Waitpid of int
  | Sock_create of Socket.kind
  | Bind of int * Addr.t
  | Listen of int * int
  | Connect of int * Addr.t
  | Accept of int
  | Send of int * string
  | Send_oob of int * char
  | Recv of int * int * Socket.recv_flags
  | Sendto of int * Addr.t * string
  | Recvfrom of int * int * Socket.recv_flags
  | Shutdown of int * shut_how
  | Close of int
  | Getsockopt of int * Sockopt.key
  | Setsockopt of int * Sockopt.key * int
  | Getsockname of int
  | Getpeername of int
  | Poll of poll_req list * Simtime.t option
  | Pipe
  | Read of int * int
  | Write of int * string
  | Fs_put of string * string  (* path, contents (whole-file write) *)
  | Fs_append of string * string
  | Fs_get of string
  | Fs_del of string
  | Fs_list of string  (* prefix *)
  | Gm_open of Addr.t  (* ip (any = this endpoint), port (0 = any) *)
  | Gm_send of int * Addr.t * string
  | Gm_recv of int
  | Log of string

type ret =
  | Rnone
  | Rint of int
  | Rnames of string list
  | Rtime of Simtime.t
  | Rdata of string
  | Rfrom of Addr.t * string
  | Raddr of Addr.t
  | Rpair of int * int
  | Raccept of int * Addr.t
  | Rpoll of (int * Socket.poll_events) list

type outcome =
  | Started  (* first activation of a program *)
  | Done_compute
  | Ret of ret
  | Err of Errno.t

(* --- pretty printing --- *)

let name = function
  | Getpid -> "getpid"
  | Clock_gettime -> "clock_gettime"
  | Nanosleep _ -> "nanosleep"
  | Alarm_set _ -> "alarm_set"
  | Alarm_cancel -> "alarm_cancel"
  | Alarm_remaining -> "alarm_remaining"
  | Mem_alloc _ -> "mem_alloc"
  | Mem_free _ -> "mem_free"
  | Spawn _ -> "spawn"
  | Kill _ -> "kill"
  | Waitpid _ -> "waitpid"
  | Sock_create _ -> "socket"
  | Bind _ -> "bind"
  | Listen _ -> "listen"
  | Connect _ -> "connect"
  | Accept _ -> "accept"
  | Send _ -> "send"
  | Send_oob _ -> "send_oob"
  | Recv _ -> "recv"
  | Sendto _ -> "sendto"
  | Recvfrom _ -> "recvfrom"
  | Shutdown _ -> "shutdown"
  | Close _ -> "close"
  | Getsockopt _ -> "getsockopt"
  | Setsockopt _ -> "setsockopt"
  | Getsockname _ -> "getsockname"
  | Getpeername _ -> "getpeername"
  | Poll _ -> "poll"
  | Pipe -> "pipe"
  | Read _ -> "read"
  | Write _ -> "write"
  | Fs_put _ -> "fs_put"
  | Fs_append _ -> "fs_append"
  | Fs_get _ -> "fs_get"
  | Fs_del _ -> "fs_del"
  | Fs_list _ -> "fs_list"
  | Gm_open _ -> "gm_open"
  | Gm_send _ -> "gm_send"
  | Gm_recv _ -> "gm_recv"
  | Log _ -> "log"

let pp ppf sc = Format.pp_print_string ppf (name sc)

(* --- Value encoding (for checkpoint images) --- *)

let flags_to_value (f : Socket.recv_flags) =
  Value.List [ Value.Bool f.peek; Value.Bool f.oob; Value.Bool f.dontwait ]

let flags_of_value v =
  match v with
  | Value.List [ Value.Bool peek; Value.Bool oob; Value.Bool dontwait ] ->
    { Socket.peek; oob; dontwait }
  | _ -> Value.decode_error "recv_flags"

let signal_to_value s = Value.Str (Signal.to_string s)

let signal_of_value v =
  match Value.to_str v with
  | "SIGSTOP" -> Signal.Sigstop
  | "SIGCONT" -> Signal.Sigcont
  | "SIGKILL" -> Signal.Sigkill
  | "SIGTERM" -> Signal.Sigterm
  | "SIGUSR1" -> Signal.Sigusr1
  | "SIGUSR2" -> Signal.Sigusr2
  | s -> Value.decode_error "unknown signal %s" s

let kind_to_value = function
  | Socket.Stream -> Value.Tag ("stream", Value.Unit)
  | Socket.Dgram -> Value.Tag ("dgram", Value.Unit)
  | Socket.Raw p -> Value.Tag ("raw", Value.Int p)

let kind_of_value v =
  match Value.to_tag v with
  | "stream", _ -> Socket.Stream
  | "dgram", _ -> Socket.Dgram
  | "raw", p -> Socket.Raw (Value.to_int p)
  | t, _ -> Value.decode_error "socket kind %s" t

let how_to_value = function
  | Shut_rd -> Value.Int 0
  | Shut_wr -> Value.Int 1
  | Shut_rdwr -> Value.Int 2

let how_of_value v =
  match Value.to_int v with
  | 0 -> Shut_rd
  | 1 -> Shut_wr
  | 2 -> Shut_rdwr
  | n -> Value.decode_error "shut_how %d" n

let v1 tagname v = Value.Tag (tagname, v)
let vi n = Value.Int n
let vs s = Value.Str s

let to_value = function
  | Getpid -> v1 "getpid" Value.Unit
  | Clock_gettime -> v1 "clock_gettime" Value.Unit
  | Nanosleep t -> v1 "nanosleep" (vi t)
  | Alarm_set t -> v1 "alarm_set" (vi t)
  | Alarm_cancel -> v1 "alarm_cancel" Value.Unit
  | Alarm_remaining -> v1 "alarm_remaining" Value.Unit
  | Mem_alloc (n, sz) -> v1 "mem_alloc" (Value.List [ vs n; vi sz ])
  | Mem_free n -> v1 "mem_free" (vs n)
  | Spawn (prog, args) -> v1 "spawn" (Value.List [ vs prog; args ])
  | Kill (pid, sg) -> v1 "kill" (Value.List [ vi pid; signal_to_value sg ])
  | Waitpid pid -> v1 "waitpid" (vi pid)
  | Sock_create k -> v1 "socket" (kind_to_value k)
  | Bind (fd, a) -> v1 "bind" (Value.List [ vi fd; Addr.to_value a ])
  | Listen (fd, n) -> v1 "listen" (Value.List [ vi fd; vi n ])
  | Connect (fd, a) -> v1 "connect" (Value.List [ vi fd; Addr.to_value a ])
  | Accept fd -> v1 "accept" (vi fd)
  | Send (fd, d) -> v1 "send" (Value.List [ vi fd; vs d ])
  | Send_oob (fd, c) -> v1 "send_oob" (Value.List [ vi fd; vi (Char.code c) ])
  | Recv (fd, n, f) -> v1 "recv" (Value.List [ vi fd; vi n; flags_to_value f ])
  | Sendto (fd, a, d) -> v1 "sendto" (Value.List [ vi fd; Addr.to_value a; vs d ])
  | Recvfrom (fd, n, f) -> v1 "recvfrom" (Value.List [ vi fd; vi n; flags_to_value f ])
  | Shutdown (fd, how) -> v1 "shutdown" (Value.List [ vi fd; how_to_value how ])
  | Close fd -> v1 "close" (vi fd)
  | Getsockopt (fd, k) -> v1 "getsockopt" (Value.List [ vi fd; vs (Sockopt.key_name k) ])
  | Setsockopt (fd, k, v) ->
    v1 "setsockopt" (Value.List [ vi fd; vs (Sockopt.key_name k); vi v ])
  | Getsockname fd -> v1 "getsockname" (vi fd)
  | Getpeername fd -> v1 "getpeername" (vi fd)
  | Poll (reqs, tmo) ->
    let req_v r =
      Value.List [ vi r.pfd; Value.Bool r.want_read; Value.Bool r.want_write ]
    in
    v1 "poll" (Value.List [ Value.list req_v reqs; Value.option vi tmo ])
  | Pipe -> v1 "pipe" Value.Unit
  | Read (fd, n) -> v1 "read" (Value.List [ vi fd; vi n ])
  | Write (fd, d) -> v1 "write" (Value.List [ vi fd; vs d ])
  | Fs_put (path, d) -> v1 "fs_put" (Value.List [ vs path; vs d ])
  | Fs_append (path, d) -> v1 "fs_append" (Value.List [ vs path; vs d ])
  | Fs_get path -> v1 "fs_get" (vs path)
  | Fs_del path -> v1 "fs_del" (vs path)
  | Fs_list prefix -> v1 "fs_list" (vs prefix)
  | Gm_open a -> v1 "gm_open" (Addr.to_value a)
  | Gm_send (fd, a, d) -> v1 "gm_send" (Value.List [ vi fd; Addr.to_value a; vs d ])
  | Gm_recv fd -> v1 "gm_recv" (vi fd)
  | Log m -> v1 "log" (vs m)

let of_value v =
  let tagname, body = Value.to_tag v in
  let two f = Value.to_pair (fun x -> x) (fun y -> y) f in
  match tagname with
  | "getpid" -> Getpid
  | "clock_gettime" -> Clock_gettime
  | "nanosleep" -> Nanosleep (Value.to_int body)
  | "alarm_set" -> Alarm_set (Value.to_int body)
  | "alarm_cancel" -> Alarm_cancel
  | "alarm_remaining" -> Alarm_remaining
  | "mem_alloc" ->
    let a, b = two body in
    Mem_alloc (Value.to_str a, Value.to_int b)
  | "mem_free" -> Mem_free (Value.to_str body)
  | "spawn" ->
    let a, b = two body in
    Spawn (Value.to_str a, b)
  | "kill" ->
    let a, b = two body in
    Kill (Value.to_int a, signal_of_value b)
  | "waitpid" -> Waitpid (Value.to_int body)
  | "socket" -> Sock_create (kind_of_value body)
  | "bind" ->
    let a, b = two body in
    Bind (Value.to_int a, Addr.of_value b)
  | "listen" ->
    let a, b = two body in
    Listen (Value.to_int a, Value.to_int b)
  | "connect" ->
    let a, b = two body in
    Connect (Value.to_int a, Addr.of_value b)
  | "accept" -> Accept (Value.to_int body)
  | "send" ->
    let a, b = two body in
    Send (Value.to_int a, Value.to_str b)
  | "send_oob" ->
    let a, b = two body in
    Send_oob (Value.to_int a, Char.chr (Value.to_int b land 0xff))
  | "recv" ->
    (match body with
     | Value.List [ a; b; c ] -> Recv (Value.to_int a, Value.to_int b, flags_of_value c)
     | _ -> Value.decode_error "recv")
  | "sendto" ->
    (match body with
     | Value.List [ a; b; c ] -> Sendto (Value.to_int a, Addr.of_value b, Value.to_str c)
     | _ -> Value.decode_error "sendto")
  | "recvfrom" ->
    (match body with
     | Value.List [ a; b; c ] ->
       Recvfrom (Value.to_int a, Value.to_int b, flags_of_value c)
     | _ -> Value.decode_error "recvfrom")
  | "shutdown" ->
    let a, b = two body in
    Shutdown (Value.to_int a, how_of_value b)
  | "close" -> Close (Value.to_int body)
  | "getsockopt" ->
    let a, b = two body in
    Getsockopt (Value.to_int a, Sockopt.key_of_name (Value.to_str b))
  | "setsockopt" ->
    (match body with
     | Value.List [ a; b; c ] ->
       Setsockopt (Value.to_int a, Sockopt.key_of_name (Value.to_str b), Value.to_int c)
     | _ -> Value.decode_error "setsockopt")
  | "getsockname" -> Getsockname (Value.to_int body)
  | "getpeername" -> Getpeername (Value.to_int body)
  | "poll" ->
    (match body with
     | Value.List [ reqs; tmo ] ->
       let req_of v =
         match v with
         | Value.List [ a; b; c ] ->
           { pfd = Value.to_int a; want_read = Value.to_bool b; want_write = Value.to_bool c }
         | _ -> Value.decode_error "poll req"
       in
       Poll (Value.to_list req_of reqs, Value.to_option Value.to_int tmo)
     | _ -> Value.decode_error "poll")
  | "pipe" -> Pipe
  | "read" ->
    let a, b = two body in
    Read (Value.to_int a, Value.to_int b)
  | "write" ->
    let a, b = two body in
    Write (Value.to_int a, Value.to_str b)
  | "fs_put" ->
    let a, b = two body in
    Fs_put (Value.to_str a, Value.to_str b)
  | "fs_append" ->
    let a, b = two body in
    Fs_append (Value.to_str a, Value.to_str b)
  | "fs_get" -> Fs_get (Value.to_str body)
  | "fs_del" -> Fs_del (Value.to_str body)
  | "fs_list" -> Fs_list (Value.to_str body)
  | "gm_open" -> Gm_open (Addr.of_value body)
  | "gm_send" ->
    (match body with
     | Value.List [ fd; a; d ] -> Gm_send (Value.to_int fd, Addr.of_value a, Value.to_str d)
     | _ -> Value.decode_error "gm_send")
  | "gm_recv" -> Gm_recv (Value.to_int body)
  | "log" -> Log (Value.to_str body)
  | t -> Value.decode_error "unknown syscall %s" t

let ret_to_value = function
  | Rnone -> v1 "rnone" Value.Unit
  | Rint n -> v1 "rint" (vi n)
  | Rnames names -> v1 "rnames" (Value.list Value.str names)
  | Rtime t -> v1 "rtime" (vi t)
  | Rdata d -> v1 "rdata" (vs d)
  | Rfrom (a, d) -> v1 "rfrom" (Value.List [ Addr.to_value a; vs d ])
  | Raddr a -> v1 "raddr" (Addr.to_value a)
  | Rpair (a, b) -> v1 "rpair" (Value.List [ vi a; vi b ])
  | Raccept (fd, a) -> v1 "raccept" (Value.List [ vi fd; Addr.to_value a ])
  | Rpoll evs ->
    let ev_v (fd, (e : Socket.poll_events)) =
      Value.List
        [ vi fd; Value.Bool e.readable; Value.Bool e.writable; Value.Bool e.pollerr;
          Value.Bool e.hangup ]
    in
    v1 "rpoll" (Value.list ev_v evs)

let ret_of_value v =
  let tagname, body = Value.to_tag v in
  match tagname with
  | "rnone" -> Rnone
  | "rint" -> Rint (Value.to_int body)
  | "rnames" -> Rnames (Value.to_list Value.to_str body)
  | "rtime" -> Rtime (Value.to_int body)
  | "rdata" -> Rdata (Value.to_str body)
  | "rfrom" ->
    (match body with
     | Value.List [ a; d ] -> Rfrom (Addr.of_value a, Value.to_str d)
     | _ -> Value.decode_error "rfrom")
  | "raddr" -> Raddr (Addr.of_value body)
  | "rpair" ->
    (match body with
     | Value.List [ a; b ] -> Rpair (Value.to_int a, Value.to_int b)
     | _ -> Value.decode_error "rpair")
  | "raccept" ->
    (match body with
     | Value.List [ fd; a ] -> Raccept (Value.to_int fd, Addr.of_value a)
     | _ -> Value.decode_error "raccept")
  | "rpoll" ->
    let ev_of v =
      match v with
      | Value.List [ fd; r; w; e; h ] ->
        ( Value.to_int fd,
          { Socket.readable = Value.to_bool r; writable = Value.to_bool w;
            pollerr = Value.to_bool e; hangup = Value.to_bool h } )
      | _ -> Value.decode_error "rpoll ev"
    in
    Rpoll (Value.to_list ev_of body)
  | t -> Value.decode_error "unknown ret %s" t

let errno_to_value e = Value.Str (Errno.to_string e)

let errno_of_value v =
  let s = Value.to_str v in
  let all =
    [ Errno.EAGAIN; EINTR; EBADF; EINVAL; ENOENT; ESRCH; ECHILD; ENOMEM; EPIPE; ENOTCONN;
      EISCONN; ECONNREFUSED; ECONNRESET; EADDRINUSE; EADDRNOTAVAIL; ETIMEDOUT;
      ENETUNREACH; EMSGSIZE; ENOTSOCK; EOPNOTSUPP ]
  in
  match List.find_opt (fun e -> String.equal (Errno.to_string e) s) all with
  | Some e -> e
  | None -> Value.decode_error "unknown errno %s" s

let outcome_to_value = function
  | Started -> v1 "started" Value.Unit
  | Done_compute -> v1 "done_compute" Value.Unit
  | Ret r -> v1 "ret" (ret_to_value r)
  | Err e -> v1 "err" (errno_to_value e)

let outcome_of_value v =
  let tagname, body = Value.to_tag v in
  match tagname with
  | "started" -> Started
  | "done_compute" -> Done_compute
  | "ret" -> Ret (ret_of_value body)
  | "err" -> Err (errno_of_value body)
  | t -> Value.decode_error "unknown outcome %s" t
