(* Simulated programs.

   A program is an explicit transition system: [step state outcome] consumes
   the result of the previous action and produces the next.  The whole
   execution context — including the control point — lives in [state], which
   must round-trip through Value.  This is what makes processes
   transparently checkpointable in the simulation: the kernel can save
   (program name, encoded state, pending syscall) at any instant, exactly as
   a real kernel-level checkpointer saves the address space and task state.

   Programs are looked up by name in a global registry at spawn and restart
   time, the analogue of re-executing the binary from (shared) storage. *)

module Value = Zapc_codec.Value
module Simtime = Zapc_sim.Simtime

type action =
  | Compute of Simtime.t  (* occupy a CPU for this much virtual time *)
  | Sys of Syscall.t
  | Exit of int

module type S = sig
  type state

  val name : string
  val start : Value.t -> state
  val step : state -> Syscall.outcome -> state * action
  val to_value : state -> Value.t
  val of_value : Value.t -> state
end

type instance = Inst : (module S with type state = 's) * 's ref -> instance

let registry : (string, (module S)) Hashtbl.t = Hashtbl.create 32

let register (module P : S) =
  if Hashtbl.mem registry P.name then
    invalid_arg ("Program.register: duplicate program " ^ P.name);
  Hashtbl.replace registry P.name (module P : S)

let register_if_absent (module P : S) =
  if not (Hashtbl.mem registry P.name) then Hashtbl.replace registry P.name (module P : S)

let lookup name : (module S) option = Hashtbl.find_opt registry name

let spawn name args : instance =
  match lookup name with
  | None -> invalid_arg ("Program.spawn: unknown program " ^ name)
  | Some (module P : S) -> Inst ((module P), ref (P.start args))

let restore name state_v : instance =
  match lookup name with
  | None -> invalid_arg ("Program.restore: unknown program " ^ name)
  | Some (module P : S) -> Inst ((module P), ref (P.of_value state_v))

let step_instance (Inst ((module P), st)) outcome : action =
  let state', action = P.step !st outcome in
  st := state';
  action

let snapshot (Inst ((module P), st)) : string * Value.t = (P.name, P.to_value !st)

let name_of (Inst ((module P), _)) = P.name
