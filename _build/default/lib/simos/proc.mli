(** Simulated process (the kernel task structure).

    Scheduling invariant: a [Running] process always has exactly one pending
    engine event that will eventually release its CPU; [Ready] processes sit
    in the run queue ([in_runq] guards duplicates); [Blocked] processes have
    wakeup closures registered on the resources they wait for and re-execute
    their pending system call on wakeup; [Stopped] remembers which of
    Ready/Blocked to return to on SIGCONT (plus whether a wakeup fired while
    stopped).  The checkpoint saves exactly the mutable fields below that
    cannot be reconstructed. *)

module Simtime = Zapc_sim.Simtime

type run_state = Ready | Running | Blocked | Stopped | Zombie

val run_state_to_string : run_state -> string

type t = {
  pid : int;
  mutable rstate : run_state;
  mutable inst : Program.instance;
  mutable pending_sys : Syscall.t option;  (** blocked syscall, virtual form *)
  mutable pending_compute : Simtime.t option;  (** remaining compute time *)
  mutable next_outcome : Syscall.outcome;  (** fed to the next step call *)
  mutable block_deadline : Simtime.t option;  (** absolute sleep/poll deadline *)
  mutable fds : Fdtable.t;
  mutable mem : Memory.t;
  mutable alarm_deadline : Simtime.t option;  (** app-level timeout mechanism *)
  mutable cpu_time : Simtime.t;
  mutable exit_code : int option;
  mutable exit_time : Simtime.t option;
  mutable stopped_from : run_state;
  mutable retry_after_cont : bool;
  mutable in_runq : bool;
  mutable pod : int option;  (** pod membership tag *)
  mutable filter : filter option;  (** pod syscall interposition *)
  mutable exit_watchers : (int -> unit) list;
}

(** System-call interposition — the pod virtualization hook: [f_pre]
    rewrites a call before the kernel executes it (virtual -> real
    identifiers), [f_post] rewrites the outcome (real -> virtual), and
    [f_spawn_child] lets the pod adopt children created inside it. *)
and filter = {
  f_pre : t -> Syscall.t -> Syscall.t;
  f_post : t -> Syscall.t -> Syscall.outcome -> Syscall.outcome;
  f_spawn_child : t -> t -> unit;
}

val create : pid:int -> Program.instance -> t
val is_alive : t -> bool
val pp : Format.formatter -> t -> unit
