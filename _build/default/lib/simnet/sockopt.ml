(* Socket and protocol options, exposed through getsockopt/setsockopt-style
   accessors.  The checkpoint saves the *entire* table (paper section 5: "For
   correctness, the entire set of the parameters is included in the saved
   state"), so restores reproduce behaviour bit-for-bit without knowing which
   options an application cares about. *)

module Value = Zapc_codec.Value

type key =
  | SO_RCVBUF
  | SO_SNDBUF
  | SO_REUSEADDR
  | SO_KEEPALIVE
  | SO_LINGER
  | SO_OOBINLINE
  | SO_BROADCAST
  | SO_PRIORITY
  | SO_RCVTIMEO
  | SO_SNDTIMEO
  | SO_NONBLOCK  (* O_NONBLOCK, kept here for uniform save/restore *)
  | TCP_NODELAY
  | TCP_MAXSEG
  | TCP_KEEPIDLE
  | TCP_KEEPINTVL
  | TCP_KEEPCNT
  | TCP_STDURG
  | IP_TTL
  | IP_TOS

let all_keys =
  [ SO_RCVBUF; SO_SNDBUF; SO_REUSEADDR; SO_KEEPALIVE; SO_LINGER; SO_OOBINLINE;
    SO_BROADCAST; SO_PRIORITY; SO_RCVTIMEO; SO_SNDTIMEO; SO_NONBLOCK; TCP_NODELAY;
    TCP_MAXSEG; TCP_KEEPIDLE; TCP_KEEPINTVL; TCP_KEEPCNT; TCP_STDURG; IP_TTL; IP_TOS ]

let key_name = function
  | SO_RCVBUF -> "SO_RCVBUF"
  | SO_SNDBUF -> "SO_SNDBUF"
  | SO_REUSEADDR -> "SO_REUSEADDR"
  | SO_KEEPALIVE -> "SO_KEEPALIVE"
  | SO_LINGER -> "SO_LINGER"
  | SO_OOBINLINE -> "SO_OOBINLINE"
  | SO_BROADCAST -> "SO_BROADCAST"
  | SO_PRIORITY -> "SO_PRIORITY"
  | SO_RCVTIMEO -> "SO_RCVTIMEO"
  | SO_SNDTIMEO -> "SO_SNDTIMEO"
  | SO_NONBLOCK -> "SO_NONBLOCK"
  | TCP_NODELAY -> "TCP_NODELAY"
  | TCP_MAXSEG -> "TCP_MAXSEG"
  | TCP_KEEPIDLE -> "TCP_KEEPIDLE"
  | TCP_KEEPINTVL -> "TCP_KEEPINTVL"
  | TCP_KEEPCNT -> "TCP_KEEPCNT"
  | TCP_STDURG -> "TCP_STDURG"
  | IP_TTL -> "IP_TTL"
  | IP_TOS -> "IP_TOS"

let key_of_name s =
  match List.find_opt (fun k -> String.equal (key_name k) s) all_keys with
  | Some k -> k
  | None -> Value.decode_error "unknown socket option %s" s

let default = function
  | SO_RCVBUF -> 262144
  | SO_SNDBUF -> 262144
  | TCP_MAXSEG -> 1448
  | TCP_KEEPIDLE -> 7200
  | TCP_KEEPINTVL -> 75
  | TCP_KEEPCNT -> 9
  | IP_TTL -> 64
  | SO_REUSEADDR | SO_KEEPALIVE | SO_LINGER | SO_OOBINLINE | SO_BROADCAST
  | SO_PRIORITY | SO_RCVTIMEO | SO_SNDTIMEO | SO_NONBLOCK | TCP_NODELAY
  | TCP_STDURG | IP_TOS -> 0

type table = (key, int) Hashtbl.t

let create () : table = Hashtbl.create 8
let get (t : table) k = match Hashtbl.find_opt t k with Some v -> v | None -> default k
let set (t : table) k v = Hashtbl.replace t k v

let to_value (t : table) =
  let kvs = List.map (fun k -> (key_name k, Value.Int (get t k))) all_keys in
  Value.Assoc kvs

let of_value v : table =
  let t = create () in
  List.iter (fun (name, v) -> set t (key_of_name name) (Value.to_int v)) (Value.to_assoc v);
  t

let copy_into ~src ~dst = Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src
