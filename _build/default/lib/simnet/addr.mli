(** Network addresses: IPv4-style 32-bit addresses plus ports.

    Applications inside pods only ever see {e virtual} addresses; the pod
    layer remaps them to {e real} addresses (`Zapc_pod.Namespace`).  This
    module is shared by both sides. *)

type ip = int
(** 32-bit address in host order. [0] is the wildcard (INADDR_ANY). *)

type t = { ip : ip; port : int }

val v : ip -> int -> t
val any : ip
val ip_of_string : string -> ip
(** Parse dotted-quad notation. @raise Invalid_argument on bad input. *)

val ip_to_string : ip -> string
val make_ip : int -> int -> int -> int -> ip
val compare : t -> t -> int
val equal : t -> t -> bool
val equal_ip : ip -> ip -> bool
val pp : Format.formatter -> t -> unit
val pp_ip : Format.formatter -> ip -> unit
val to_value : t -> Zapc_codec.Value.t
val of_value : Zapc_codec.Value.t -> t
