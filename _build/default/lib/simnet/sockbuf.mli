(** Byte-stream socket buffer: a deque of string chunks with O(1) length.
    Used for TCP receive queues, send queues, pipes, and the alternate
    receive queue installed at restart.  Supports non-destructive reads
    ("peek" mode) and whole-content extraction for checkpointing. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool
val push : t -> string -> unit

val read : t -> consume:bool -> int -> string
(** Up to [n] bytes from the front; destructive iff [consume]. *)

val pop : t -> int -> string
val peek : t -> int -> string
val drop : t -> int -> unit
val contents : t -> string
(** The whole buffered content, non-destructively (checkpoint path). *)

val clear : t -> unit
val of_string : string -> t
