lib/simnet/gmdev.ml: Addr Bytes Errno Hashtbl Int32 List Packet Queue String Zapc_codec Zapc_sim
