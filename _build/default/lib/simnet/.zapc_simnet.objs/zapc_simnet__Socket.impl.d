lib/simnet/socket.ml: Addr Buffer Errno Format List Packet Queue Sockbuf Sockopt Stdlib String Zapc_sim
