lib/simnet/netfilter.ml: Addr Hashtbl Packet
