lib/simnet/errno.mli: Format
