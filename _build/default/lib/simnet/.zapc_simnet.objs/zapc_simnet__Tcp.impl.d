lib/simnet/tcp.ml: Addr Errno List Packet Queue Sockbuf Socket Sockopt Stdlib String Zapc_sim
