lib/simnet/fabric.ml: Addr Hashtbl Netfilter Option Packet Stdlib Zapc_sim
