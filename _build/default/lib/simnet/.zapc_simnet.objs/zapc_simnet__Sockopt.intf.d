lib/simnet/sockopt.mli: Hashtbl Zapc_codec
