lib/simnet/errno.ml: Format
