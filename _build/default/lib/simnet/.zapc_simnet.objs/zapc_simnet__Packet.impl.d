lib/simnet/packet.ml: Addr Format String
