lib/simnet/sockbuf.mli:
