lib/simnet/netfilter.mli: Addr Packet
