lib/simnet/tcp.mli: Addr Errno Packet Socket Zapc_sim
