lib/simnet/fabric.mli: Addr Netfilter Packet Zapc_sim
