lib/simnet/addr.mli: Format Zapc_codec
