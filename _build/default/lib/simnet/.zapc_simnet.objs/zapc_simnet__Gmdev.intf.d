lib/simnet/gmdev.mli: Addr Errno Packet Queue Zapc_codec
