lib/simnet/netstack.mli: Addr Errno Fabric Packet Socket
