lib/simnet/sockbuf.ml: Buffer Queue String
