lib/simnet/addr.ml: Format Int Printf String Zapc_codec
