lib/simnet/packet.mli: Addr Format
