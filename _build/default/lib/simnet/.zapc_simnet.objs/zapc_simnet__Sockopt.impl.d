lib/simnet/sockopt.ml: Hashtbl List String Zapc_codec
