lib/simnet/socket.mli: Addr Errno Format Packet Queue Sockbuf Sockopt Zapc_sim
