lib/simnet/netstack.ml: Addr Errno Fabric Gmdev Hashtbl List Option Packet Queue Socket Sockopt Stdlib String Tcp Zapc_sim
