(* A Myrinet/GM-style kernel-bypass messaging device.

   The paper (end of section 5) says the ZapC approach extends to
   OS-bypass interconnects if (1) the communication library is decoupled
   from the device-driver instance by virtualizing its interface, and
   (2) the state the device holds can be extracted and reinstated on
   another device.  This module implements such a device: applications own
   "ports" addressed by (address, port) and exchange datagrams that bypass
   the socket layer entirely — the receive queues live in the device, not
   in sockets.  Ports satisfy both requirements: the syscall interface is
   interposable by the pod layer (virtual addresses), and the driver
   exposes extract/reinstate hooks used by the pod checkpoint.

   GM-style semantics kept deliberately simple: unordered, unreliable
   datagrams (the pod's netfilter drops in-flight messages during a
   checkpoint, like any other traffic; queued ones are checkpointed). *)

module Simtime = Zapc_sim.Simtime

let gm_proto = 199
let default_capacity = 1 lsl 20

type port = {
  gp_addr : Addr.t;  (* real (ip, port) the hardware demuxes on *)
  rxq : (Addr.t * string) Queue.t;  (* (source gm address, payload) *)
  mutable rx_bytes : int;
  capacity : int;
  mutable rd_waiters : (unit -> unit) list;
  mutable closed : bool;
}

type t = {
  node : int;
  ports : (int * int, port) Hashtbl.t;  (* (ip, port) -> port *)
  mutable next_port : int;
  mutable tx : Packet.t -> unit;  (* wired to the fabric by the stack *)
  mutable drops : int;
}

let create ~node = { node; ports = Hashtbl.create 8; next_port = 1; tx = (fun _ -> ()); drops = 0 }

let set_tx t fn = t.tx <- fn

let wake (p : port) =
  let ws = p.rd_waiters in
  p.rd_waiters <- [];
  List.iter (fun w -> w ()) (List.rev ws)

(* --- the "library" interface (reached through ioctl-like syscalls) --- *)

let open_port t ~(ip : Addr.ip) ~(port : int) : (port, Errno.t) result =
  let port =
    if port <> 0 then port
    else begin
      let rec fresh () =
        let c = t.next_port in
        t.next_port <- t.next_port + 1;
        if Hashtbl.mem t.ports (ip, c) then fresh () else c
      in
      fresh ()
    end
  in
  if Hashtbl.mem t.ports (ip, port) then Error Errno.EADDRINUSE
  else begin
    let p =
      { gp_addr = { Addr.ip; port }; rxq = Queue.create (); rx_bytes = 0;
        capacity = default_capacity; rd_waiters = []; closed = false }
    in
    Hashtbl.replace t.ports (ip, port) p;
    Ok p
  end

let close_port t (p : port) =
  p.closed <- true;
  Queue.clear p.rxq;
  p.rx_bytes <- 0;
  Hashtbl.remove t.ports (p.gp_addr.ip, p.gp_addr.port);
  wake p

(* wire format: u32 src_port, u32 dst_port, payload *)
let encode_msg ~src_port ~dst_port payload =
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int src_port);
  Bytes.set_int32_le b 4 (Int32.of_int dst_port);
  Bytes.unsafe_to_string b ^ payload

let send t (p : port) (dst : Addr.t) payload : (unit, Errno.t) result =
  if p.closed then Error Errno.EBADF
  else begin
    t.tx
      {
        Packet.src = { p.gp_addr with Addr.port = 0 };
        dst = { dst with Addr.port = 0 };
        body =
          Packet.Raw_ip
            (gm_proto, encode_msg ~src_port:p.gp_addr.port ~dst_port:dst.port payload);
      };
    Ok ()
  end

type rres = Gdata of Addr.t * string | Gblock | Gclosed

let recv (p : port) : rres =
  if Queue.is_empty p.rxq then if p.closed then Gclosed else Gblock
  else begin
    let src, payload = Queue.pop p.rxq in
    p.rx_bytes <- p.rx_bytes - String.length payload;
    Gdata (src, payload)
  end

let wait_readable (p : port) w = p.rd_waiters <- w :: p.rd_waiters

(* --- hardware receive path (called from the network stack's demux) --- *)

let on_packet t (pkt : Packet.t) data =
  if String.length data >= 8 then begin
    let src_port = Int32.to_int (String.get_int32_le data 0) in
    let dst_port = Int32.to_int (String.get_int32_le data 4) in
    let payload = String.sub data 8 (String.length data - 8) in
    match Hashtbl.find_opt t.ports (pkt.dst.ip, dst_port) with
    | Some p when (not p.closed) && p.rx_bytes + String.length payload <= p.capacity ->
      Queue.add ({ Addr.ip = pkt.src.ip; port = src_port }, payload) p.rxq;
      p.rx_bytes <- p.rx_bytes + String.length payload;
      wake p
    | Some _ | None -> t.drops <- t.drops + 1
  end

(* --- the driver's extract/reinstate hooks (requirement (2)) --- *)

module Value = Zapc_codec.Value

let extract_port (p : port) ~virt : Value.t
  =
  (* [virt] maps real addresses back to the pod's virtual ones so the saved
     state stays location-independent *)
  Value.assoc
    [ ("addr", Addr.to_value (virt p.gp_addr));
      ("msgs",
       Value.list
         (fun (src, d) -> Value.List [ Addr.to_value (virt src); Value.Str d ])
         (List.of_seq (Queue.to_seq p.rxq))) ]

let reinstate_port t (v : Value.t) ~real : (port, Errno.t) result =
  let addr = real (Addr.of_value (Value.field "addr" v)) in
  match open_port t ~ip:addr.Addr.ip ~port:addr.Addr.port with
  | Error e -> Error e
  | Ok p ->
    List.iter
      (fun m ->
        match m with
        | Value.List [ src; Value.Str d ] ->
          Queue.add (Addr.of_value src, d) p.rxq;
          p.rx_bytes <- p.rx_bytes + String.length d
        | _ -> Value.decode_error "gm msg")
      (Value.to_list (fun x -> x) (Value.field "msgs" v));
    Ok p

let port_count t = Hashtbl.length t.ports
let drop_count t = t.drops
