(** A Myrinet/GM-style kernel-bypass messaging device.

    The paper (end of section 5) says the ZapC approach extends to OS-bypass
    interconnects if (1) the communication library is decoupled from the
    device-driver instance by virtualizing its interface, and (2) the state
    the device holds can be extracted and reinstated on another device.
    This device satisfies both: the ioctl-like syscall surface is
    interposable by the pod layer (virtual addresses), and the driver
    exposes {!extract_port}/{!reinstate_port} used by the pod checkpoint.

    Semantics: unordered, unreliable datagrams between (address, port)
    endpoints whose receive queues live in the device, not the socket layer.
    In-flight messages drop during a checkpoint (netfilter); libraries built
    on GM retry on timeout. *)

module Value = Zapc_codec.Value

val gm_proto : int
(** Raw-IP protocol number carrying GM traffic on the fabric. *)

type port = {
  gp_addr : Addr.t;  (** real (ip, port) the hardware demuxes on *)
  rxq : (Addr.t * string) Queue.t;
  mutable rx_bytes : int;
  capacity : int;
  mutable rd_waiters : (unit -> unit) list;
  mutable closed : bool;
}

type t

val create : node:int -> t
val set_tx : t -> (Packet.t -> unit) -> unit

(** {1 Library interface (reached through Gm_* syscalls)} *)

val open_port : t -> ip:Addr.ip -> port:int -> (port, Errno.t) result
(** [port = 0] allocates. *)

val close_port : t -> port -> unit
val send : t -> port -> Addr.t -> string -> (unit, Errno.t) result

type rres = Gdata of Addr.t * string | Gblock | Gclosed

val recv : port -> rres
val wait_readable : port -> (unit -> unit) -> unit

(** {1 Hardware receive path} *)

val on_packet : t -> Packet.t -> string -> unit

(** {1 Driver extract/reinstate hooks (checkpoint-restart)} *)

val extract_port : port -> virt:(Addr.t -> Addr.t) -> Value.t
(** Save a port's state with addresses mapped back to the pod's virtual
    ones, so the image is location-independent. *)

val reinstate_port : t -> Value.t -> real:(Addr.t -> Addr.t) -> (port, Errno.t) result
(** Recreate the port (and its queued messages) on this node's device. *)

val port_count : t -> int
val drop_count : t -> int
