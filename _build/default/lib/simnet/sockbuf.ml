(* Byte-stream socket buffer: a deque of string chunks with O(1) length.
   Used for TCP receive queues, send queues, and the alternate receive queue
   installed at restart.  Supports non-destructive reads ("peek" mode) and
   whole-content extraction for checkpointing. *)

type t = {
  chunks : string Queue.t;
  mutable front_off : int;  (* bytes of the head chunk already consumed *)
  mutable len : int;
}

let create () = { chunks = Queue.create (); front_off = 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let push t s =
  if String.length s > 0 then begin
    Queue.add s t.chunks;
    t.len <- t.len + String.length s
  end

(* Read up to [n] bytes; destructive iff [consume]. *)
let read t ~consume n =
  let n = min n t.len in
  if n = 0 then ""
  else begin
    let buf = Buffer.create n in
    if consume then begin
      let remaining = ref n in
      while !remaining > 0 do
        let head = Queue.peek t.chunks in
        let avail = String.length head - t.front_off in
        let take = min avail !remaining in
        Buffer.add_substring buf head t.front_off take;
        remaining := !remaining - take;
        if take = avail then begin
          ignore (Queue.pop t.chunks);
          t.front_off <- 0
        end
        else t.front_off <- t.front_off + take
      done;
      t.len <- t.len - n
    end
    else begin
      (* Non-destructive scan. *)
      let remaining = ref n in
      let first = ref true in
      Queue.iter
        (fun chunk ->
          if !remaining > 0 then begin
            let off = if !first then t.front_off else 0 in
            first := false;
            let avail = String.length chunk - off in
            let take = min avail !remaining in
            Buffer.add_substring buf chunk off take;
            remaining := !remaining - take
          end
          else first := false)
        t.chunks
    end;
    Buffer.contents buf
  end

let pop t n = read t ~consume:true n
let peek t n = read t ~consume:false n

let drop t n =
  let n = min n t.len in
  ignore (pop t n)

let contents t = peek t t.len

let clear t =
  Queue.clear t.chunks;
  t.front_off <- 0;
  t.len <- 0

let of_string s =
  let t = create () in
  push t s;
  t
