(* On-the-wire units carried by the fabric.  TCP segments carry the fields
   the protocol engine needs (sequence/ack numbers, flags, window, urgent
   pointer); UDP and raw IP are opaque payloads. *)

type tcp_flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  urg : bool;
}

let no_flags = { syn = false; ack = false; fin = false; rst = false; urg = false }

type tcp_seg = {
  seq : int;
  ack_no : int;
  flags : tcp_flags;
  window : int;
  urg_ptr : int;  (* offset just past the urgent byte, relative to [seq] *)
  payload : string;
}

type body =
  | Tcp_seg of tcp_seg
  | Udp_dgram of string
  | Raw_ip of int * string  (* protocol number, payload *)

type t = { src : Addr.t; dst : Addr.t; body : body }

let header_bytes = function
  | Tcp_seg _ -> 40 (* IP + TCP headers *)
  | Udp_dgram _ -> 28
  | Raw_ip _ -> 20

let payload_bytes = function
  | Tcp_seg seg -> String.length seg.payload
  | Udp_dgram d -> String.length d
  | Raw_ip (_, d) -> String.length d

let size t = header_bytes t.body + payload_bytes t.body

let pp_flags ppf f =
  let put c b = if b then Format.pp_print_char ppf c in
  put 'S' f.syn;
  put 'A' f.ack;
  put 'F' f.fin;
  put 'R' f.rst;
  put 'U' f.urg

let pp ppf t =
  match t.body with
  | Tcp_seg seg ->
    Format.fprintf ppf "TCP %a>%a [%a] seq=%d ack=%d len=%d" Addr.pp t.src Addr.pp t.dst
      pp_flags seg.flags seg.seq seg.ack_no (String.length seg.payload)
  | Udp_dgram d ->
    Format.fprintf ppf "UDP %a>%a len=%d" Addr.pp t.src Addr.pp t.dst (String.length d)
  | Raw_ip (proto, d) ->
    Format.fprintf ppf "RAW %a>%a proto=%d len=%d" Addr.pp t.src Addr.pp t.dst proto
      (String.length d)
