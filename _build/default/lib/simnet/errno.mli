(** POSIX-style error codes surfaced by simulated system calls. *)

type t =
  | EAGAIN
  | EINTR
  | EBADF
  | EINVAL
  | ENOENT
  | ESRCH
  | ECHILD
  | ENOMEM
  | EPIPE
  | ENOTCONN
  | EISCONN
  | ECONNREFUSED
  | ECONNRESET
  | EADDRINUSE
  | EADDRNOTAVAIL
  | ETIMEDOUT
  | ENETUNREACH
  | EMSGSIZE
  | ENOTSOCK
  | EOPNOTSUPP

val to_string : t -> string
val pp : Format.formatter -> t -> unit
