(** On-the-wire units carried by the fabric.  TCP segments expose the fields
    the protocol engine needs (sequence/ack numbers, flags, window, urgent
    pointer); UDP and raw IP are opaque payloads. *)

type tcp_flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  urg : bool;
}

val no_flags : tcp_flags

type tcp_seg = {
  seq : int;
  ack_no : int;
  flags : tcp_flags;
  window : int;
  urg_ptr : int;  (** offset just past the urgent byte, relative to [seq] *)
  payload : string;
}

type body =
  | Tcp_seg of tcp_seg
  | Udp_dgram of string
  | Raw_ip of int * string  (** protocol number, payload *)

type t = { src : Addr.t; dst : Addr.t; body : body }

val header_bytes : body -> int
val payload_bytes : body -> int
val size : t -> int
(** Wire size including modelled IP/transport headers. *)

val pp : Format.formatter -> t -> unit
