(** Socket and protocol options, exposed through getsockopt/setsockopt-style
    accessors.  The checkpoint saves the {e entire} table (paper section 5:
    "the entire set of the parameters is included in the saved state"), so
    restores reproduce behaviour without knowing which options an
    application cares about. *)

type key =
  | SO_RCVBUF
  | SO_SNDBUF
  | SO_REUSEADDR
  | SO_KEEPALIVE
  | SO_LINGER
  | SO_OOBINLINE
  | SO_BROADCAST
  | SO_PRIORITY
  | SO_RCVTIMEO
  | SO_SNDTIMEO
  | SO_NONBLOCK  (** O_NONBLOCK, kept here for uniform save/restore *)
  | TCP_NODELAY
  | TCP_MAXSEG
  | TCP_KEEPIDLE
  | TCP_KEEPINTVL
  | TCP_KEEPCNT
  | TCP_STDURG
  | IP_TTL
  | IP_TOS

val all_keys : key list
val key_name : key -> string
val key_of_name : string -> key
val default : key -> int

type table = (key, int) Hashtbl.t

val create : unit -> table
val get : table -> key -> int
val set : table -> key -> int -> unit
val to_value : table -> Zapc_codec.Value.t
val of_value : Zapc_codec.Value.t -> table
val copy_into : src:table -> dst:table -> unit
