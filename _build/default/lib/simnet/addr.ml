module Value = Zapc_codec.Value

type ip = int
type t = { ip : ip; port : int }

let v ip port = { ip; port }
let any = 0
let make_ip a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let ip_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    (try make_ip (int_of_string a) (int_of_string b) (int_of_string c) (int_of_string d)
     with Failure _ -> invalid_arg ("Addr.ip_of_string: " ^ s))
  | _ -> invalid_arg ("Addr.ip_of_string: " ^ s)

let ip_to_string ip =
  Printf.sprintf "%d.%d.%d.%d" ((ip lsr 24) land 0xff) ((ip lsr 16) land 0xff)
    ((ip lsr 8) land 0xff) (ip land 0xff)

let compare a b =
  match Int.compare a.ip b.ip with 0 -> Int.compare a.port b.port | c -> c

let equal a b = compare a b = 0
let equal_ip (a : ip) b = Int.equal a b
let pp_ip ppf ip = Format.pp_print_string ppf (ip_to_string ip)
let pp ppf t = Format.fprintf ppf "%a:%d" pp_ip t.ip t.port
let to_value t = Value.List [ Value.Int t.ip; Value.Int t.port ]

let of_value v =
  match v with
  | Value.List [ Value.Int ip; Value.Int port ] -> { ip; port }
  | _ -> Value.decode_error "Addr.of_value"
