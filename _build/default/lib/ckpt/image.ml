(* Serialized checkpoint images.

   An image is the Wire encoding of a pod image Value plus a small logical
   header.  [logical_size] is what a real checkpointer would have written:
   the structured state plus the modelled address-space bytes (the
   simulation stores memory as region descriptors, see DESIGN.md). *)

module Value = Zapc_codec.Value
module Wire = Zapc_codec.Wire

type t = {
  pod_id : int;
  name : string;
  encoded : string;  (* Wire-encoded pod image *)
  logical_size : int;
}

let of_pod_image (image : Value.t) =
  let encoded = Wire.encode image in
  let memory_bytes = Value.to_int (Value.field "memory_bytes" image) in
  {
    pod_id = Value.to_int (Value.field "pod_id" image);
    name = Value.to_str (Value.field "name" image);
    encoded;
    logical_size = String.length encoded + memory_bytes;
  }

let to_pod_image (t : t) : Value.t = Wire.decode t.encoded

let pp ppf t =
  Format.fprintf ppf "image(%s#%d, %d bytes logical, %d encoded)" t.name t.pod_id
    t.logical_size (String.length t.encoded)
