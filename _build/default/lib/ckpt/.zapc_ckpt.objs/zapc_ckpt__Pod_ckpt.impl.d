lib/ckpt/pod_ckpt.ml: Array Hashtbl Int List Stdlib Zapc_codec Zapc_netckpt Zapc_pod Zapc_sim Zapc_simnet Zapc_simos
