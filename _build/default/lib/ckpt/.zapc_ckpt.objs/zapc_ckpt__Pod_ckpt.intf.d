lib/ckpt/pod_ckpt.mli: Zapc_codec Zapc_netckpt Zapc_pod Zapc_simnet Zapc_simos
