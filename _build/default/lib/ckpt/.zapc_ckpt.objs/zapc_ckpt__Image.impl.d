lib/ckpt/image.ml: Format String Zapc_codec
