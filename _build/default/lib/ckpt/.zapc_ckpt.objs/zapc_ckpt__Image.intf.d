lib/ckpt/image.mli: Format Zapc_codec
