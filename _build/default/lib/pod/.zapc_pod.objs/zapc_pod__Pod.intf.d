lib/pod/pod.mli: Format Namespace Zapc_codec Zapc_sim Zapc_simnet Zapc_simos
