lib/pod/namespace.ml: Hashtbl Int List Zapc_codec Zapc_simnet
