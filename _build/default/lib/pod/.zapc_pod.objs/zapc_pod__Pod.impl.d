lib/pod/pod.ml: Format Hashtbl List Namespace Printf String Zapc_sim Zapc_simnet Zapc_simos
