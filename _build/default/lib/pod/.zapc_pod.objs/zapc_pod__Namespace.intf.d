lib/pod/namespace.mli: Hashtbl Zapc_codec Zapc_simnet
