(* Launching a distributed MPI-style application on the simulated cluster:
   one pod per application endpoint (plus its daemon), all pods linked into
   one virtual address space. *)

module Value = Zapc_codec.Value
module Simtime = Zapc_sim.Simtime
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Protocol = Zapc.Protocol

type app = {
  name : string;
  pods : Pod.t list;
  ranks : Proc.t list;
  daemons : Proc.t list;
  vips : int array;
  port : int;
  placement : int list;  (* node index per rank at launch *)
}

let default_port = 5000

let launch cluster ~name ~program ~placement ~app_args ?(port = default_port)
    ?(daemon = true) () =
  Daemon.register ();
  let size = List.length placement in
  let pods =
    List.mapi
      (fun r node ->
        Cluster.create_pod cluster ~node_idx:node ~name:(Printf.sprintf "%s-%d" name r))
      placement
  in
  Cluster.link_pods pods;
  let vips = Array.of_list (List.map (fun (p : Pod.t) -> p.vip) pods) in
  let daemons =
    if daemon then List.map (fun pod -> Pod.spawn pod ~program:"mpd" ~args:Value.unit) pods
    else []
  in
  let ranks =
    List.mapi
      (fun rank pod ->
        Pod.spawn pod ~program ~args:(Mpi.std_args ~rank ~size ~vips ~port ~app:app_args))
      pods
  in
  { name; pods; ranks; daemons; vips; port; placement }

let is_done app = List.for_all (fun (p : Proc.t) -> p.Proc.exit_code <> None) app.ranks

(* The instant the last rank exited (exact, independent of when the engine
   loop noticed). *)
let completion_time app =
  List.fold_left
    (fun acc (p : Proc.t) ->
      match p.Proc.exit_time with Some t -> Simtime.max acc t | None -> acc)
    Simtime.zero app.ranks

(* Run until every rank has exited; returns the completion (virtual) time. *)
let wait_done cluster ?(timeout = Simtime.sec 36000.0) app =
  Cluster.run_until cluster ~timeout (fun () -> is_done app);
  completion_time app

let pod_ids app = List.map (fun (p : Pod.t) -> p.pod_id) app.pods

(* Where each pod currently lives (nodes change under migration).  A pod's
   current node is whichever node its real address is attached to. *)
let current_placement cluster app =
  List.map
    (fun (p : Pod.t) ->
      match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric cluster) p.rip with
      | Some n -> n
      | None -> -1)
    app.pods

let checkpoint_items app ~key_prefix ~node_of_pod =
  List.map
    (fun (p : Pod.t) ->
      { Manager.ci_node = node_of_pod p; ci_pod = p.pod_id;
        ci_dest = Protocol.U_storage (Printf.sprintf "%s.pod%d" key_prefix p.pod_id) })
    app.pods
