lib/msg/frame.mli:
