lib/msg/daemon.mli:
