lib/msg/mpi.mli: Zapc_codec Zapc_simos
