lib/msg/launch.ml: Array Daemon List Mpi Printf Zapc Zapc_codec Zapc_pod Zapc_sim Zapc_simnet Zapc_simos
