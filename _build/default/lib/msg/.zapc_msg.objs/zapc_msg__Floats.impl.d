lib/msg/floats.ml: Array Bytes Int64 String
