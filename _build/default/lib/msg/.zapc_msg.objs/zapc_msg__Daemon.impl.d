lib/msg/daemon.ml: Zapc_codec Zapc_sim Zapc_simos
