lib/msg/launch.mli: Zapc Zapc_codec Zapc_pod Zapc_sim Zapc_simos
