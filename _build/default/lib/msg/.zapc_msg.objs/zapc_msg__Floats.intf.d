lib/msg/floats.mli:
