lib/msg/frame.ml: Bytes Int32 List String
