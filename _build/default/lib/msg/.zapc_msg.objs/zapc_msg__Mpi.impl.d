lib/msg/mpi.ml: Array Bytes Floats Frame Int Int32 List String Zapc_codec Zapc_sim Zapc_simnet Zapc_simos
