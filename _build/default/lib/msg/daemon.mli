(** The per-pod daemon process (the mpd/pvmd analogue): each pod runs one in
    addition to its application endpoint, as on the paper's testbed, so
    multi-process checkpoint-restart is always exercised. *)

val register : unit -> unit
(** Register program ["mpd"] (idempotent). *)
