(* An MPI-like message-passing library for simulated programs (the
   MPICH-2/PVM analogue of the paper's workloads).

   Every operation is a *resumable state machine*: the application embeds a
   [pending] value in its own (checkpointable) program state, issues the
   returned action, and feeds each syscall outcome back through [step] until
   the operation completes.  Because both [comm] and [pending] round-trip
   through Value, a process can be checkpointed at any instant — including
   halfway through a collective — and restarted transparently.

   Wire format: framed messages (Frame) over one TCP connection per peer
   pair, established eagerly at init (rank r connects to all lower ranks and
   accepts from all higher ranks; peers are identified by their virtual
   address, which the pod namespace keeps stable across migration).
   Collectives use binomial trees. *)

module Value = Zapc_codec.Value
module Simtime = Zapc_sim.Simtime
module Addr = Zapc_simnet.Addr
module Socket = Zapc_simnet.Socket
module Errno = Zapc_simnet.Errno
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall

let tag_up = 1_000_000
let tag_down = 1_000_001
let tag_scatter = 1_000_002
let any_src = -1
let recv_chunk = 65536
let lib_overhead = Program.Compute (Simtime.us 2)

type comm = {
  rank : int;
  size : int;
  vips : int array;  (* rank -> virtual address *)
  port : int;
  mutable listen_fd : int;
  fds : int array;  (* rank -> connected fd, -1 if none *)
  rxbuf : string array;  (* per-peer partial frame bytes *)
  mutable inbox : (int * int * string) list;  (* (src, tag, payload), FIFO *)
}

let make ~rank ~size ~vips ~port =
  {
    rank;
    size;
    vips;
    port;
    listen_fd = -1;
    fds = Array.make size (-1);
    rxbuf = Array.make size "";
    inbox = [];
  }

let rank_of_vip comm ip =
  let n = Array.length comm.vips in
  let rec go i = if i >= n then None else if comm.vips.(i) = ip then Some i else go (i + 1) in
  go 0

let rank_of_fd comm fd =
  let n = Array.length comm.fds in
  let rec go i = if i >= n then None else if comm.fds.(i) = fd then Some i else go (i + 1) in
  go 0

let feed comm peer bytes =
  let frames, rest = Frame.parse (comm.rxbuf.(peer) ^ bytes) in
  comm.rxbuf.(peer) <- rest;
  if frames <> [] then comm.inbox <- comm.inbox @ frames

let any_tag = -1

let take_inbox comm ~src ~tag =
  let rec go acc = function
    | [] -> None
    | ((s, tg, _) as m) :: rest
      when (src = any_src || s = src) && (tag = any_tag || tg = tag) ->
      comm.inbox <- List.rev_append acc rest;
      Some m
    | m :: rest -> go (m :: acc) rest
  in
  go [] comm.inbox

(* ------------------------------------------------------------------ *)
(* Pending operations                                                  *)
(* ------------------------------------------------------------------ *)

type prim =
  | Psend of { peer : int; rem : string }
  | Precv of { src : int; tag : int; reading : int (* rank being Recv'd, -1 none *) }

type prim_result =
  | Punit
  | Pmsg of int * int * string
  | Pfail of string

type coll_kind = Kbarrier | Kreduce | Kbcast | Kallreduce | Kgather

type coll_phase =
  | Up of int  (* gather phase, advancing at mask *)
  | Up_recv of int  (* waiting for a child's contribution *)
  | Up_sent  (* waiting for the send-to-parent to finish *)
  | Down_wait  (* waiting for the parent's broadcast *)
  | Down of int  (* scatter phase, advancing at mask *)
  | Down_sent of int
  | Fin

type coll = {
  kind : coll_kind;
  root : int;
  mutable ph : coll_phase;
  mutable acc : string;
  mutable inner : prim option;
}

type init_phase =
  | I_socket
  | I_sockopt
  | I_bind
  | I_listen
  | I_conn_new of int  (* next rank to connect to *)
  | I_conn_wait of int
  | I_conn_close of int
  | I_conn_sleep of int
  | I_accepting of int  (* connections still expected *)
  | I_done

type init_st = { mutable iph : init_phase; mutable tmp_fd : int }

type scatter_st = {
  sc_root : int;
  mutable sc_remaining : (int * string) list;  (* root: (rank, piece) to send *)
  mutable sc_own : string;
  mutable sc_inner : prim option;
}

type pending =
  | P_prim of prim
  | P_coll of coll
  | P_init of init_st
  | P_scatter of scatter_st

type result =
  | R_ok
  | R_msg of { src : int; tag : int; data : string }
  | R_floats of float array
  | R_gather of (int * string) list
  | R_fail of string

(* ------------------------------------------------------------------ *)
(* Primitive machines                                                  *)
(* ------------------------------------------------------------------ *)

let send_action comm peer rem = Program.Sys (Syscall.Send (comm.fds.(peer), rem))

let poll_action comm =
  let reqs =
    Array.to_list comm.fds
    |> List.filter (fun fd -> fd >= 0)
    |> List.map (fun fd -> { Syscall.pfd = fd; want_read = true; want_write = false })
  in
  Program.Sys (Syscall.Poll (reqs, None))

let recv_action comm src =
  Program.Sys (Syscall.Recv (comm.fds.(src), recv_chunk, Socket.plain_recv))

(* choose the next action for a receive that found nothing in the inbox *)
let recv_issue comm src tag : prim * Program.action =
  if src = any_src then (Precv { src; tag; reading = -1 }, poll_action comm)
  else (Precv { src; tag; reading = src }, recv_action comm src)

let prim_step comm (p : prim) (outcome : Syscall.outcome) :
  [ `Again of prim * Program.action | `Done of prim_result ] =
  match p with
  | Psend { peer; rem } ->
    (match outcome with
     | Syscall.Ret (Syscall.Rint n) ->
       let rem' = if n >= String.length rem then "" else String.sub rem n (String.length rem - n) in
       if rem' = "" then `Done Punit
       else `Again (Psend { peer; rem = rem' }, send_action comm peer rem')
     | Syscall.Err Errno.EINTR | Syscall.Err Errno.EAGAIN | Syscall.Started
     | Syscall.Done_compute ->
       `Again (p, send_action comm peer rem)
     | Syscall.Err e -> `Done (Pfail (Errno.to_string e))
     | Syscall.Ret _ -> `Done (Pfail "send: unexpected return"))
  | Precv { src; tag; reading } ->
    let check_or_issue () =
      match take_inbox comm ~src ~tag with
      | Some (s, tg, payload) -> `Done (Pmsg (s, tg, payload))
      | None ->
        if src = any_src && not (Array.exists (fun fd -> fd >= 0) comm.fds) then
          `Done (Pfail "all peers closed")
        else
          let p', act = recv_issue comm src tag in
          `Again (p', act)
    in
    (match outcome with
     | Syscall.Started | Syscall.Done_compute -> check_or_issue ()
     | Syscall.Ret (Syscall.Rdata "") ->
       (* the peer closed its end.  For an any-source receive this is a
          normal departure (e.g. a finished worker): stop polling that fd
          and keep waiting on the others.  For a directed receive it is
          fatal. *)
       if reading >= 0 then begin
         comm.fds.(reading) <- -1;
         if src = any_src then check_or_issue ()
         else `Done (Pfail "peer closed connection")
       end
       else `Done (Pfail "peer closed connection")
     | Syscall.Ret (Syscall.Rdata data) ->
       if reading >= 0 then begin
         feed comm reading data;
         check_or_issue ()
       end
       else `Done (Pfail "recv: no fd context")
     | Syscall.Ret (Syscall.Rpoll evs) ->
       let readable =
         List.filter_map
           (fun (fd, (ev : Socket.poll_events)) ->
             if ev.readable || ev.hangup then rank_of_fd comm fd else None)
           evs
       in
       (match readable with
        | q :: _ -> `Again (Precv { src; tag; reading = q }, recv_action comm q)
        | [] -> check_or_issue ())
     | Syscall.Err Errno.EINTR | Syscall.Err Errno.EAGAIN -> check_or_issue ()
     | Syscall.Err e -> `Done (Pfail (Errno.to_string e))
     | Syscall.Ret _ -> `Done (Pfail "recv: unexpected return"))

(* ------------------------------------------------------------------ *)
(* Collectives (binomial trees)                                        *)
(* ------------------------------------------------------------------ *)

let lsb v = v land (-v)

let top_mask size =
  let rec go m = if m * 2 < size then go (m * 2) else m in
  if size <= 1 then 0 else go 1

(* gather-phase combination *)
let combine c payload =
  match c.kind with
  | Kbarrier -> ()
  | Kreduce | Kallreduce -> c.acc <- Floats.sum_packed c.acc payload
  | Kgather -> c.acc <- c.acc ^ payload
  | Kbcast -> ()

let piece ~rank data =
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int rank);
  Bytes.set_int32_le b 4 (Int32.of_int (String.length data));
  Bytes.unsafe_to_string b ^ data

let parse_pieces s =
  let rec go off acc =
    if off + 8 > String.length s then List.rev acc
    else
      let rank = Int32.to_int (String.get_int32_le s off) in
      let len = Int32.to_int (String.get_int32_le s (off + 4)) in
      let data = String.sub s (off + 8) len in
      go (off + 8 + len) ((rank, data) :: acc)
  in
  go 0 [] |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let coll_result comm c : result =
  match c.kind with
  | Kbarrier -> R_ok
  | Kreduce -> if comm.rank = c.root then R_floats (Floats.unpack c.acc) else R_ok
  | Kallreduce -> R_floats (Floats.unpack c.acc)
  | Kbcast -> R_msg { src = c.root; tag = tag_down; data = c.acc }
  | Kgather -> if comm.rank = c.root then R_gather (parse_pieces c.acc) else R_ok

(* Advance the collective machine to its next primitive (or completion).
   Only called when no primitive is in flight. *)
let rec coll_advance comm c : [ `Act of prim * Program.action | `Fin of result ] =
  let size = comm.size in
  let vrank = (comm.rank - c.root + size) mod size in
  let real v = (v + c.root) mod size in
  match c.ph with
  | Up mask ->
    if size = 1 || mask >= size then begin
      (* subtree accumulation complete at the root *)
      (match c.kind with
       | Kbarrier | Kallreduce -> c.ph <- Down (top_mask size)
       | Kreduce | Kgather -> c.ph <- Fin
       | Kbcast -> c.ph <- Fin);
      coll_advance comm c
    end
    else if vrank land mask <> 0 then begin
      c.ph <- Up_sent;
      let peer = real (vrank - mask) in
      let frame = Frame.encode ~src:comm.rank ~tag:tag_up c.acc in
      `Act (Psend { peer; rem = frame }, send_action comm peer frame)
    end
    else if vrank + mask < size then begin
      c.ph <- Up_recv mask;
      let peer = real (vrank + mask) in
      let p, act = recv_issue comm peer tag_up in
      (* inbox may already hold it; go through the uniform path *)
      (match take_inbox comm ~src:peer ~tag:tag_up with
       | Some (_, _, payload) ->
         combine c payload;
         c.ph <- Up (mask lsl 1);
         coll_advance comm c
       | None -> `Act (p, act))
    end
    else begin
      c.ph <- Up (mask lsl 1);
      coll_advance comm c
    end
  | Down_wait ->
    (* waiting for the parent's scatter-phase message *)
    let parent = real (vrank - lsb vrank) in
    (match take_inbox comm ~src:parent ~tag:tag_down with
     | Some (_, _, payload) ->
       c.acc <- payload;
       c.ph <- Down (lsb vrank asr 1);
       coll_advance comm c
     | None ->
       let p, act = recv_issue comm parent tag_down in
       `Act (p, act))
  | Up_recv _ | Up_sent | Down_sent _ ->
    invalid_arg "coll_advance: primitive still pending"
  | Down mask ->
    if mask < 1 then begin
      c.ph <- Fin;
      coll_advance comm c
    end
    else if vrank land mask = 0 && vrank + mask < size then begin
      c.ph <- Down_sent mask;
      let peer = real (vrank + mask) in
      let frame = Frame.encode ~src:comm.rank ~tag:tag_down c.acc in
      `Act (Psend { peer; rem = frame }, send_action comm peer frame)
    end
    else begin
      c.ph <- Down (mask asr 1);
      coll_advance comm c
    end
  | Fin -> `Fin (coll_result comm c)

(* prim completion inside a collective *)
let coll_on_prim_done comm c (pr : prim_result) :
  [ `Continue | `Failed of string ] =
  match pr with
  | Pfail msg -> `Failed msg
  | Punit -> (
    (* a send finished *)
    match c.ph with
    | Up_sent -> (
      match c.kind with
      | Kreduce | Kgather ->
        c.ph <- Fin;
        `Continue
      | Kbarrier | Kallreduce ->
        c.ph <- Down_wait;
        `Continue
      | Kbcast ->
        c.ph <- Fin;
        `Continue)
    | Down_sent mask ->
      c.ph <- Down (mask asr 1);
      `Continue
    | Up _ | Up_recv _ | Down_wait | Down _ | Fin -> `Failed "collective: stray send")
  | Pmsg (_, _, payload) -> (
    (* a receive finished *)
    match c.ph with
    | Up_recv mask ->
      combine c payload;
      c.ph <- Up (mask lsl 1);
      `Continue
    | Down_wait ->
      let vrank = (comm.rank - c.root + comm.size) mod comm.size in
      c.acc <- payload;
      c.ph <- Down (lsb vrank asr 1);
      `Continue
    | Up _ | Up_sent | Down _ | Down_sent _ | Fin -> `Failed "collective: stray recv")

(* ------------------------------------------------------------------ *)
(* Init machine                                                        *)
(* ------------------------------------------------------------------ *)

let init_step comm (st : init_st) (outcome : Syscall.outcome) :
  [ `Again of pending * Program.action | `Done of result ] =
  let again act = `Again (P_init st, act) in
  let fail msg = `Done (R_fail msg) in
  let next_after_listen () =
    if comm.rank > 0 then begin
      st.iph <- I_conn_new 0;
      again (Program.Sys (Syscall.Sock_create Socket.Stream))
    end
    else begin
      let expected = comm.size - 1 - comm.rank in
      if expected = 0 then `Done R_ok
      else begin
        st.iph <- I_accepting expected;
        again (Program.Sys (Syscall.Accept comm.listen_fd))
      end
    end
  in
  match (st.iph, outcome) with
  | I_socket, (Syscall.Started | Syscall.Done_compute) ->
    again (Program.Sys (Syscall.Sock_create Socket.Stream))
  | I_socket, Syscall.Ret (Syscall.Rint fd) ->
    comm.listen_fd <- fd;
    st.iph <- I_sockopt;
    again
      (Program.Sys (Syscall.Setsockopt (fd, Zapc_simnet.Sockopt.SO_REUSEADDR, 1)))
  | I_sockopt, Syscall.Ret _ ->
    st.iph <- I_bind;
    again
      (Program.Sys (Syscall.Bind (comm.listen_fd, { Addr.ip = Addr.any; port = comm.port })))
  | I_bind, Syscall.Ret _ ->
    st.iph <- I_listen;
    again (Program.Sys (Syscall.Listen (comm.listen_fd, comm.size + 4)))
  | I_bind, Syscall.Err e -> fail ("bind: " ^ Errno.to_string e)
  | I_listen, Syscall.Ret _ -> next_after_listen ()
  | I_conn_new target, Syscall.Ret (Syscall.Rint fd) ->
    st.tmp_fd <- fd;
    st.iph <- I_conn_wait target;
    again
      (Program.Sys
         (Syscall.Connect (fd, { Addr.ip = comm.vips.(target); port = comm.port })))
  | I_conn_wait target, Syscall.Ret _ ->
    comm.fds.(target) <- st.tmp_fd;
    let target' = target + 1 in
    if target' < comm.rank then begin
      st.iph <- I_conn_new target';
      again (Program.Sys (Syscall.Sock_create Socket.Stream))
    end
    else begin
      let expected = comm.size - 1 - comm.rank in
      if expected = 0 then `Done R_ok
      else begin
        st.iph <- I_accepting expected;
        again (Program.Sys (Syscall.Accept comm.listen_fd))
      end
    end
  | I_conn_wait target, Syscall.Err _ ->
    (* peer not listening yet (or transient failure): retry with backoff *)
    st.iph <- I_conn_close target;
    again (Program.Sys (Syscall.Close st.tmp_fd))
  | I_conn_close target, (Syscall.Ret _ | Syscall.Err _) ->
    st.iph <- I_conn_sleep target;
    again (Program.Sys (Syscall.Nanosleep (Simtime.ms 20)))
  | I_conn_sleep target, (Syscall.Ret _ | Syscall.Err _) ->
    st.iph <- I_conn_new target;
    again (Program.Sys (Syscall.Sock_create Socket.Stream))
  | I_accepting expected, Syscall.Ret (Syscall.Raccept (fd, peer)) ->
    (match rank_of_vip comm peer.Addr.ip with
     | Some q -> comm.fds.(q) <- fd
     | None -> () (* unknown peer: ignore (connection will idle) *));
    if expected <= 1 then `Done R_ok
    else begin
      st.iph <- I_accepting (expected - 1);
      again (Program.Sys (Syscall.Accept comm.listen_fd))
    end
  | I_accepting _, Syscall.Err e -> fail ("accept: " ^ Errno.to_string e)
  | I_done, _ -> `Done R_ok
  | _, Syscall.Err e -> fail ("init: " ^ Errno.to_string e)
  | _, (Syscall.Started | Syscall.Done_compute) -> again lib_overhead
  | _, Syscall.Ret _ -> fail "init: unexpected return"

(* ------------------------------------------------------------------ *)
(* Public entry points                                                 *)
(* ------------------------------------------------------------------ *)

let init _comm : pending * Program.action =
  (P_init { iph = I_socket; tmp_fd = -1 }, lib_overhead)

let send comm ~peer ~tag data : pending * Program.action =
  let frame = Frame.encode ~src:comm.rank ~tag data in
  (P_prim (Psend { peer; rem = frame }), send_action comm peer frame)

let recv _comm ~src ~tag : pending * Program.action =
  (P_prim (Precv { src; tag; reading = -1 }), lib_overhead)

let mk_coll kind ~root acc : pending * Program.action =
  (P_coll { kind; root; ph = Up 1; acc; inner = None }, lib_overhead)

let barrier _comm : pending * Program.action = mk_coll Kbarrier ~root:0 ""

let reduce_sum _comm ~root (a : float array) : pending * Program.action =
  mk_coll Kreduce ~root (Floats.pack a)

let allreduce_sum _comm (a : float array) : pending * Program.action =
  mk_coll Kallreduce ~root:0 (Floats.pack a)

let bcast comm ~root data : pending * Program.action =
  let ph = if comm.rank = root then Down (top_mask comm.size) else Down_wait in
  let c = { kind = Kbcast; root; ph; acc = (if comm.rank = root then data else ""); inner = None } in
  (P_coll c, lib_overhead)

let gather comm ~root data : pending * Program.action =
  mk_coll Kgather ~root (piece ~rank:comm.rank data)

(* Scatter: the root hands piece [i] to rank [i] (linear sends — scatters
   are small and rare in the paper's workloads); completes with [R_msg]
   carrying the local piece everywhere. *)
let scatter comm ~root (pieces : string list) : pending * Program.action =
  if comm.rank = root then begin
    let indexed = List.mapi (fun i p -> (i, p)) pieces in
    let own = match List.nth_opt pieces root with Some p -> p | None -> "" in
    let remaining = List.filter (fun (i, _) -> i <> root) indexed in
    (P_scatter { sc_root = root; sc_remaining = remaining; sc_own = own; sc_inner = None },
     lib_overhead)
  end
  else
    (P_scatter { sc_root = root; sc_remaining = []; sc_own = ""; sc_inner = None },
     lib_overhead)

let rec step comm (p : pending) (outcome : Syscall.outcome) :
  [ `Again of pending * Program.action | `Done of result ] =
  match p with
  | P_init st -> init_step comm st outcome
  | P_scatter st ->
    (match st.sc_inner with
     | Some prim ->
       (match prim_step comm prim outcome with
        | `Again (prim', act) ->
          st.sc_inner <- Some prim';
          `Again (P_scatter st, act)
        | `Done (Pfail msg) -> `Done (R_fail msg)
        | `Done (Pmsg (src, tag, data)) ->
          (* non-root: our piece arrived *)
          `Done (R_msg { src; tag; data })
        | `Done Punit ->
          st.sc_inner <- None;
          step comm (P_scatter st) Syscall.Done_compute)
     | None ->
       if comm.rank = st.sc_root then (
         match st.sc_remaining with
         | [] ->
           `Done (R_msg { src = st.sc_root; tag = tag_scatter; data = st.sc_own })
         | (peer, data) :: rest ->
           st.sc_remaining <- rest;
           let frame = Frame.encode ~src:comm.rank ~tag:tag_scatter data in
           st.sc_inner <- Some (Psend { peer; rem = frame });
           `Again (P_scatter st, send_action comm peer frame))
       else begin
         match take_inbox comm ~src:st.sc_root ~tag:tag_scatter with
         | Some (src, tag, data) -> `Done (R_msg { src; tag; data })
         | None ->
           let prim, act = recv_issue comm st.sc_root tag_scatter in
           st.sc_inner <- Some prim;
           `Again (P_scatter st, act)
       end)
  | P_prim prim ->
    (match prim_step comm prim outcome with
     | `Again (prim', act) -> `Again (P_prim prim', act)
     | `Done Punit -> `Done R_ok
     | `Done (Pmsg (src, tag, data)) -> `Done (R_msg { src; tag; data })
     | `Done (Pfail msg) -> `Done (R_fail msg))
  | P_coll c ->
    (match c.inner with
     | Some prim ->
       (match prim_step comm prim outcome with
        | `Again (prim', act) ->
          c.inner <- Some prim';
          `Again (P_coll c, act)
        | `Done pr ->
          c.inner <- None;
          (match coll_on_prim_done comm c pr with
           | `Failed msg -> `Done (R_fail msg)
           | `Continue -> step comm (P_coll c) Syscall.Done_compute))
     | None ->
       (match coll_advance comm c with
        | `Fin r -> `Done r
        | `Act (prim, act) ->
          c.inner <- Some prim;
          `Again (P_coll c, act)))

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let comm_to_value c =
  Value.assoc
    [ ("rank", Value.int c.rank);
      ("size", Value.int c.size);
      ("vips", Value.list Value.int (Array.to_list c.vips));
      ("port", Value.int c.port);
      ("listen_fd", Value.int c.listen_fd);
      ("fds", Value.list Value.int (Array.to_list c.fds));
      ("rxbuf", Value.list Value.str (Array.to_list c.rxbuf));
      ("inbox",
       Value.list
         (fun (s, t, d) -> Value.List [ Value.Int s; Value.Int t; Value.Str d ])
         c.inbox) ]

let comm_of_value v =
  let ints f = Array.of_list (Value.to_list Value.to_int (Value.field f v)) in
  {
    rank = Value.to_int (Value.field "rank" v);
    size = Value.to_int (Value.field "size" v);
    vips = ints "vips";
    port = Value.to_int (Value.field "port" v);
    listen_fd = Value.to_int (Value.field "listen_fd" v);
    fds = ints "fds";
    rxbuf = Array.of_list (Value.to_list Value.to_str (Value.field "rxbuf" v));
    inbox =
      Value.to_list
        (fun m ->
          match m with
          | Value.List [ Value.Int s; Value.Int t; Value.Str d ] -> (s, t, d)
          | _ -> Value.decode_error "inbox entry")
        (Value.field "inbox" v);
  }

let prim_to_value = function
  | Psend { peer; rem } -> Value.Tag ("send", Value.List [ Value.Int peer; Value.Str rem ])
  | Precv { src; tag; reading } ->
    Value.Tag ("recv", Value.List [ Value.Int src; Value.Int tag; Value.Int reading ])

let prim_of_value v =
  match Value.to_tag v with
  | "send", Value.List [ Value.Int peer; Value.Str rem ] -> Psend { peer; rem }
  | "recv", Value.List [ Value.Int src; Value.Int tag; Value.Int reading ] ->
    Precv { src; tag; reading }
  | t, _ -> Value.decode_error "prim %s" t

let kind_to_string = function
  | Kbarrier -> "barrier"
  | Kreduce -> "reduce"
  | Kbcast -> "bcast"
  | Kallreduce -> "allreduce"
  | Kgather -> "gather"

let kind_of_string = function
  | "barrier" -> Kbarrier
  | "reduce" -> Kreduce
  | "bcast" -> Kbcast
  | "allreduce" -> Kallreduce
  | "gather" -> Kgather
  | s -> Value.decode_error "coll kind %s" s

let phase_to_value = function
  | Up m -> Value.Tag ("up", Value.Int m)
  | Up_recv m -> Value.Tag ("up_recv", Value.Int m)
  | Up_sent -> Value.Tag ("up_sent", Value.Unit)
  | Down_wait -> Value.Tag ("down_wait", Value.Unit)
  | Down m -> Value.Tag ("down", Value.Int m)
  | Down_sent m -> Value.Tag ("down_sent", Value.Int m)
  | Fin -> Value.Tag ("fin", Value.Unit)

let phase_of_value v =
  match Value.to_tag v with
  | "up", m -> Up (Value.to_int m)
  | "up_recv", m -> Up_recv (Value.to_int m)
  | "up_sent", _ -> Up_sent
  | "down_wait", _ -> Down_wait
  | "down", m -> Down (Value.to_int m)
  | "down_sent", m -> Down_sent (Value.to_int m)
  | "fin", _ -> Fin
  | t, _ -> Value.decode_error "coll phase %s" t

let init_phase_to_value = function
  | I_socket -> Value.Tag ("socket", Value.Unit)
  | I_sockopt -> Value.Tag ("sockopt", Value.Unit)
  | I_bind -> Value.Tag ("bind", Value.Unit)
  | I_listen -> Value.Tag ("listen", Value.Unit)
  | I_conn_new t -> Value.Tag ("conn_new", Value.Int t)
  | I_conn_wait t -> Value.Tag ("conn_wait", Value.Int t)
  | I_conn_close t -> Value.Tag ("conn_close", Value.Int t)
  | I_conn_sleep t -> Value.Tag ("conn_sleep", Value.Int t)
  | I_accepting n -> Value.Tag ("accepting", Value.Int n)
  | I_done -> Value.Tag ("done", Value.Unit)

let init_phase_of_value v =
  match Value.to_tag v with
  | "socket", _ -> I_socket
  | "sockopt", _ -> I_sockopt
  | "bind", _ -> I_bind
  | "listen", _ -> I_listen
  | "conn_new", t -> I_conn_new (Value.to_int t)
  | "conn_wait", t -> I_conn_wait (Value.to_int t)
  | "conn_close", t -> I_conn_close (Value.to_int t)
  | "conn_sleep", t -> I_conn_sleep (Value.to_int t)
  | "accepting", n -> I_accepting (Value.to_int n)
  | "done", _ -> I_done
  | t, _ -> Value.decode_error "init phase %s" t

let pending_to_value = function
  | P_prim p -> Value.Tag ("prim", prim_to_value p)
  | P_scatter st ->
    Value.Tag
      ( "scatter",
        Value.assoc
          [ ("root", Value.int st.sc_root);
            ("remaining",
             Value.list (fun (i, d) -> Value.List [ Value.Int i; Value.Str d ]) st.sc_remaining);
            ("own", Value.str st.sc_own);
            ("inner", Value.option prim_to_value st.sc_inner) ] )
  | P_init st ->
    Value.Tag
      ("init", Value.List [ init_phase_to_value st.iph; Value.Int st.tmp_fd ])
  | P_coll c ->
    Value.Tag
      ( "coll",
        Value.assoc
          [ ("kind", Value.str (kind_to_string c.kind));
            ("root", Value.int c.root);
            ("ph", phase_to_value c.ph);
            ("acc", Value.str c.acc);
            ("inner", Value.option prim_to_value c.inner) ] )

let pending_of_value v =
  match Value.to_tag v with
  | "prim", p -> P_prim (prim_of_value p)
  | "scatter", c ->
    P_scatter
      {
        sc_root = Value.to_int (Value.field "root" c);
        sc_remaining =
          Value.to_list
            (fun m ->
              match m with
              | Value.List [ Value.Int i; Value.Str d ] -> (i, d)
              | _ -> Value.decode_error "scatter piece")
            (Value.field "remaining" c);
        sc_own = Value.to_str (Value.field "own" c);
        sc_inner = Value.to_option prim_of_value (Value.field "inner" c);
      }
  | "init", Value.List [ ph; Value.Int tmp_fd ] ->
    P_init { iph = init_phase_of_value ph; tmp_fd }
  | "coll", c ->
    P_coll
      {
        kind = kind_of_string (Value.to_str (Value.field "kind" c));
        root = Value.to_int (Value.field "root" c);
        ph = phase_of_value (Value.field "ph" c);
        acc = Value.to_str (Value.field "acc" c);
        inner = Value.to_option prim_of_value (Value.field "inner" c);
      }
  | t, _ -> Value.decode_error "pending %s" t

(* ------------------------------------------------------------------ *)
(* Standard argument plumbing for MPI-style programs                   *)
(* ------------------------------------------------------------------ *)

let std_args ~rank ~size ~vips ~port ~app =
  Value.assoc
    [ ("rank", Value.int rank);
      ("size", Value.int size);
      ("vips", Value.list Value.int (Array.to_list vips));
      ("port", Value.int port);
      ("app", app) ]

let parse_args v =
  let rank = Value.to_int (Value.field "rank" v) in
  let size = Value.to_int (Value.field "size" v) in
  let vips = Array.of_list (Value.to_list Value.to_int (Value.field "vips" v)) in
  let port = Value.to_int (Value.field "port" v) in
  let app = Value.field "app" v in
  (rank, size, vips, port, app)
