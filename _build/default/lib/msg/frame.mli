(** Message framing over byte-stream sockets: a 12-byte header (payload
    length, tag, source rank) followed by the payload.  [parse] tolerates
    arbitrary re-chunking by the transport. *)

val header_bytes : int
val encode : src:int -> tag:int -> string -> string

val parse : string -> (int * int * string) list * string
(** All complete frames in arrival order as (src, tag, payload), plus the
    unconsumed tail. *)
