(* Message framing over the byte-stream sockets: 12-byte header
   (payload length, tag, source rank), then the payload. *)

let header_bytes = 12

let encode ~src ~tag payload =
  let b = Bytes.create (header_bytes + String.length payload) in
  Bytes.set_int32_le b 0 (Int32.of_int (String.length payload));
  Bytes.set_int32_le b 4 (Int32.of_int tag);
  Bytes.set_int32_le b 8 (Int32.of_int src);
  Bytes.blit_string payload 0 b header_bytes (String.length payload);
  Bytes.unsafe_to_string b

(* Parse as many complete frames as [buf] holds.
   Returns (frames in arrival order, remaining bytes). *)
let parse buf =
  let rec go off acc =
    let avail = String.length buf - off in
    if avail < header_bytes then (List.rev acc, String.sub buf off avail)
    else
      let len = Int32.to_int (String.get_int32_le buf off) in
      let tag = Int32.to_int (String.get_int32_le buf (off + 4)) in
      let src = Int32.to_int (String.get_int32_le buf (off + 8)) in
      if avail < header_bytes + len then (List.rev acc, String.sub buf off avail)
      else
        let payload = String.sub buf (off + header_bytes) len in
        go (off + header_bytes + len) ((src, tag, payload) :: acc)
  in
  go 0 []
