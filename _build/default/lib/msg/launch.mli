(** Launching distributed MPI-style applications on a simulated cluster:
    one pod per application endpoint (plus a daemon, as on the paper's
    testbed), all pods linked into one virtual address space. *)

module Simtime = Zapc_sim.Simtime
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager

type app = {
  name : string;
  pods : Pod.t list;
  ranks : Proc.t list;
  daemons : Proc.t list;
  vips : int array;
  port : int;
  placement : int list;  (** node index per rank at launch *)
}

val default_port : int

val launch :
  Cluster.t ->
  name:string ->
  program:string ->
  placement:int list ->
  app_args:Zapc_codec.Value.t ->
  ?port:int ->
  ?daemon:bool ->
  unit ->
  app
(** Create one pod per rank on the given nodes, install the shared virtual
    address map, spawn the per-pod daemon (unless [daemon:false]) and the
    rank processes with {!Mpi.std_args}. *)

val is_done : app -> bool

val completion_time : app -> Simtime.t
(** The instant the last rank exited (exact, independent of when the engine
    loop noticed). *)

val wait_done : Cluster.t -> ?timeout:Simtime.t -> app -> Simtime.t

val pod_ids : app -> int list
val current_placement : Cluster.t -> app -> int list

val checkpoint_items :
  app -> key_prefix:string -> node_of_pod:(Pod.t -> int) -> Manager.ckpt_item list
