(* Packed little-endian float64 payloads for message passing. *)

let pack (a : float array) : string =
  let b = Bytes.create (8 * Array.length a) in
  Array.iteri (fun i f -> Bytes.set_int64_le b (8 * i) (Int64.bits_of_float f)) a;
  Bytes.unsafe_to_string b

let unpack (s : string) : float array =
  let n = String.length s / 8 in
  Array.init n (fun i -> Int64.float_of_bits (String.get_int64_le s (8 * i)))

let add_into ~(acc : float array) (other : float array) =
  Array.iteri (fun i v -> if i < Array.length acc then acc.(i) <- acc.(i) +. v) other

let sum_packed a b =
  let fa = unpack a and fb = unpack b in
  add_into ~acc:fa fb;
  pack fa
