(** Packed little-endian float64 payloads for message passing. *)

val pack : float array -> string
val unpack : string -> float array

val add_into : acc:float array -> float array -> unit
(** Elementwise [acc.(i) <- acc.(i) +. other.(i)] over the common prefix. *)

val sum_packed : string -> string -> string
(** Elementwise sum of two packed arrays (reduction combiner). *)
