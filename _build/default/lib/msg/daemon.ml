(* The per-pod daemon process (the mpd/pvmd analogue): each pod runs one in
   addition to the application endpoint, as on the paper's testbed.  It
   allocates a small working set and idles in a sleep loop; its only role is
   to make pods contain more than one process and to exercise multi-process
   checkpoint-restart. *)

module Value = Zapc_codec.Value
module Simtime = Zapc_sim.Simtime
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall

module P = struct
  type state = Fresh | Looping

  let name = "mpd"
  let start _args = Fresh

  let step state (_ : Syscall.outcome) =
    match state with
    | Fresh -> (Looping, Program.Sys (Syscall.Mem_alloc ("mpd.rss", 3_000_000)))
    | Looping -> (Looping, Program.Sys (Syscall.Nanosleep (Simtime.ms 500)))

  let to_value = function Fresh -> Value.Int 0 | Looping -> Value.Int 1
  let of_value v = match Value.to_int v with 0 -> Fresh | _ -> Looping
end

let register () = Program.register_if_absent (module P : Program.S)
