(** An MPI-like message-passing library for simulated programs — the
    MPICH-2/PVM analogue the paper's workloads run on.

    Every operation is a {e resumable state machine}: the application embeds
    a {!pending} value in its (checkpointable) program state, issues the
    returned action, and feeds each syscall outcome back through {!step}
    until the operation completes.  Both {!comm} and {!pending} round-trip
    through Value, so a process can be checkpointed at any instant —
    including halfway through a collective — and restarted transparently.

    Wire format: framed messages (see {!Frame}) over one TCP connection per
    peer pair, established eagerly at init (rank r connects to all lower
    ranks and accepts from all higher ones; peers are identified by their
    virtual addresses, which the pod namespace keeps stable across
    migration).  Collectives use binomial trees. *)

module Value = Zapc_codec.Value
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall

val any_src : int
val any_tag : int

type comm = {
  rank : int;
  size : int;
  vips : int array;  (** rank -> virtual address *)
  port : int;
  mutable listen_fd : int;
  fds : int array;  (** rank -> connected fd, -1 if none *)
  rxbuf : string array;  (** per-peer partial frame bytes *)
  mutable inbox : (int * int * string) list;  (** (src, tag, payload) FIFO *)
}

val make : rank:int -> size:int -> vips:int array -> port:int -> comm

type pending
(** An operation in flight; serializable, part of the program state. *)

type result =
  | R_ok
  | R_msg of { src : int; tag : int; data : string }
  | R_floats of float array
  | R_gather of (int * string) list  (** at the root, ordered by rank *)
  | R_fail of string

(** {1 Operations}

    Each returns the pending machine plus the first action to issue. *)

val init : comm -> pending * Program.action
(** Establish the full connection mesh (listen, connect to lower ranks with
    refused-connection retry, accept from higher ranks). *)

val send : comm -> peer:int -> tag:int -> string -> pending * Program.action
val recv : comm -> src:int -> tag:int -> pending * Program.action
(** [src] may be {!any_src} and [tag] may be {!any_tag}. *)

val barrier : comm -> pending * Program.action
val reduce_sum : comm -> root:int -> float array -> pending * Program.action
val allreduce_sum : comm -> float array -> pending * Program.action

val bcast : comm -> root:int -> string -> pending * Program.action
(** The payload argument is meaningful at the root only; completes with
    [R_msg] carrying the broadcast data on every rank. *)

val gather : comm -> root:int -> string -> pending * Program.action
(** Completes with [R_gather] at the root, [R_ok] elsewhere. *)

val scatter : comm -> root:int -> string list -> pending * Program.action
(** The root hands piece [i] to rank [i]; completes with [R_msg] carrying
    the local piece everywhere ([pieces] is meaningful at the root only). *)

val step :
  comm ->
  pending ->
  Syscall.outcome ->
  [ `Again of pending * Program.action | `Done of result ]

(** {1 Serialization} *)

val comm_to_value : comm -> Value.t
val comm_of_value : Value.t -> comm
val pending_to_value : pending -> Value.t
val pending_of_value : Value.t -> pending

(** {1 Argument plumbing for MPI-style programs} *)

val std_args :
  rank:int -> size:int -> vips:int array -> port:int -> app:Value.t -> Value.t

val parse_args : Value.t -> int * int * int array * int * Value.t
(** (rank, size, vips, port, app-specific). *)
