(* Reliable control channels between the Manager and its Agents.

   The paper runs these over TCP connections kept open for the whole
   operation; what the protocol needs from them is ordered reliable delivery
   and prompt breakage detection.  Both are modelled here: messages are
   delivered after latency + size/bandwidth, and [break] fires the
   registered failure callbacks on both sides so either party can abort
   gracefully (paper section 4). *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine

type ('up, 'down) t = {
  engine : Engine.t;
  latency : Simtime.t;
  bps : float;
  mutable up_handler : 'up -> unit;  (* messages arriving at the Manager *)
  mutable down_handler : 'down -> unit;  (* messages arriving at the Agent *)
  mutable broken : bool;
  mutable on_break : (unit -> unit) list;
  mutable up_count : int;
  mutable down_count : int;
}

let create ~engine ~latency ~bps =
  {
    engine;
    latency;
    bps;
    up_handler = (fun _ -> ());
    down_handler = (fun _ -> ());
    broken = false;
    on_break = [];
    up_count = 0;
    down_count = 0;
  }

let set_up_handler t fn = t.up_handler <- fn
let set_down_handler t fn = t.down_handler <- fn
let on_break t fn = t.on_break <- fn :: t.on_break

let transfer_delay t bytes =
  Simtime.add t.latency (Simtime.ns (int_of_float (float_of_int bytes /. t.bps *. 1e9)))

let send_up t ~bytes msg =
  if not t.broken then begin
    t.up_count <- t.up_count + 1;
    Engine.schedule t.engine ~delay:(transfer_delay t bytes) (fun () ->
        if not t.broken then t.up_handler msg)
  end

let send_down t ~bytes msg =
  if not t.broken then begin
    t.down_count <- t.down_count + 1;
    Engine.schedule t.engine ~delay:(transfer_delay t bytes) (fun () ->
        if not t.broken then t.down_handler msg)
  end

let break t =
  if not t.broken then begin
    t.broken <- true;
    (* both endpoints notice the broken connection after one latency *)
    Engine.schedule t.engine ~delay:t.latency (fun () ->
        List.iter (fun fn -> fn ()) (List.rev t.on_break))
  end

let is_broken t = t.broken
