(** Periodic checkpoint service: the paper's fault-resilience use case as a
    reusable facility.

    Snapshots a pod group every [period] under rotating storage keys,
    remembers the last epoch that completed, prunes images older than [keep]
    epochs, and can {!recover} the whole application from the last good
    epoch onto a new set of nodes.  Epochs that would overlap a running
    Manager operation are skipped, not queued. *)

module Simtime = Zapc_sim.Simtime
module Pod = Zapc_pod.Pod

type t

val start :
  Cluster.t ->
  pods:Pod.t list ->
  prefix:string ->
  period:Simtime.t ->
  ?keep:int ->
  unit ->
  t
(** Begin ticking; stops by itself once no pod of the group is alive. *)

val stop : t -> unit
val last_good : t -> int
(** Last epoch whose coordinated checkpoint completed (0 = none yet). *)

val completed : t -> int
val skipped : t -> int
val set_on_epoch : t -> (int -> Manager.op_result -> unit) -> unit

val recover : t -> target_nodes:int list -> Manager.op_result
(** Stop the service, destroy any surviving pods, restart from the last
    good epoch on [target_nodes]. *)
