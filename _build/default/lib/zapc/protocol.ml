(* Wire protocol between the Manager and the Agents (Figures 1 and 3).

   A user request names the application as a list of <<node, pod, URI>>
   tuples; a URI is either a shared-storage key or the address of a
   receiving Agent (direct migration streaming, paper section 4). *)

module Simtime = Zapc_sim.Simtime
module Addr = Zapc_simnet.Addr
module Meta = Zapc_netckpt.Meta
module Image = Zapc_ckpt.Image

type uri =
  | U_storage of string  (* key in the shared storage *)
  | U_node of int  (* stream directly to the Agent on this node *)

let uri_to_string = function
  | U_storage k -> "file://" ^ k
  | U_node n -> Printf.sprintf "agent://node%d" n

(* --- per-operation statistics reported by Agents --- *)

type agent_stats = {
  st_net_time : Simtime.t;  (* network-state save/restore time *)
  st_local_time : Simtime.t;  (* total local operation time *)
  st_conn_time : Simtime.t;  (* restart: connectivity recovery time *)
  st_image_bytes : int;  (* logical image size *)
  st_net_bytes : int;  (* network-state bytes (queues + meta) *)
  st_sockets : int;
  st_procs : int;
}

let zero_stats =
  { st_net_time = 0; st_local_time = 0; st_conn_time = 0; st_image_bytes = 0;
    st_net_bytes = 0; st_sockets = 0; st_procs = 0 }

(* --- messages --- *)

type to_agent =
  | A_checkpoint of { pod_id : int; dest : uri; resume : bool }
  | A_continue of { pod_id : int }
  | A_abort of { pod_id : int }
  | A_restart of {
      pod_id : int;
      name : string;
      vip : Addr.ip;
      rip : Addr.ip;  (* pre-allocated real address on the target node *)
      uri : uri;
      entries : Meta.restart_entry list;
      vip_map : (Addr.ip * Addr.ip) list;
      extra_altq : (int * string) list;  (* sock_ref -> redirected peer data *)
      skip_sendq : bool;  (* send queues were redirected; do not resend *)
    }

type to_manager =
  | M_meta of { node : int; pod_id : int; meta : Meta.pod_meta; meta_bytes : int }
  | M_done of { node : int; pod_id : int; ok : bool; detail : string; stats : agent_stats }

(* Rough message sizes for the control-plane cost model. *)
let to_agent_bytes = function
  | A_checkpoint _ -> 64
  | A_continue _ -> 16
  | A_abort _ -> 16
  | A_restart r ->
    128
    + (List.length r.entries * 64)
    + (List.length r.vip_map * 8)
    + List.fold_left (fun acc (_, d) -> acc + String.length d) 0 r.extra_altq

let to_manager_bytes = function
  | M_meta m -> 32 + m.meta_bytes
  | M_done _ -> 64

type channel = (to_manager, to_agent) Control.t
