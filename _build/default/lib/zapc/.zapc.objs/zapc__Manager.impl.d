lib/zapc/manager.ml: Array Control Hashtbl List Option Params Printf Protocol Result Storage String Trace Zapc_ckpt Zapc_netckpt Zapc_sim Zapc_simnet
