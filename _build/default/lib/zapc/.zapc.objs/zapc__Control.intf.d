lib/zapc/control.mli: Zapc_sim
