lib/zapc/trace.ml: Buffer Int List Printf String Zapc_sim
