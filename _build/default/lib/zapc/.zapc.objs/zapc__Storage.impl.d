lib/zapc/storage.ml: Hashtbl List String Zapc_ckpt Zapc_sim
