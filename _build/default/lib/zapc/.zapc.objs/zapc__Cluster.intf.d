lib/zapc/cluster.mli: Agent Manager Params Storage Trace Zapc_pod Zapc_sim Zapc_simnet Zapc_simos
