lib/zapc/trace.mli: Zapc_sim
