lib/zapc/periodic.mli: Cluster Manager Zapc_pod Zapc_sim
