lib/zapc/params.ml: Zapc_sim Zapc_simnet Zapc_simos
