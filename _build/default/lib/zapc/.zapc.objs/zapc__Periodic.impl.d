lib/zapc/periodic.ml: Cluster List Manager Printf Protocol Storage Zapc_pod Zapc_sim Zapc_simnet
