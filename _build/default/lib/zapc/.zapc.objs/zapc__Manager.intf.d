lib/zapc/manager.mli: Params Protocol Storage Trace Zapc_netckpt Zapc_sim Zapc_simnet
