lib/zapc/storage.mli: Zapc_ckpt Zapc_sim
