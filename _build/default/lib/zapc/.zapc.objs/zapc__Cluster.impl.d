lib/zapc/cluster.ml: Agent Array Control List Manager Option Params Printf Protocol Storage Trace Zapc_netckpt Zapc_pod Zapc_sim Zapc_simnet Zapc_simos
