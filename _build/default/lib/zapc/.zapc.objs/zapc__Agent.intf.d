lib/zapc/agent.mli: Params Protocol Storage Trace Zapc_netckpt Zapc_pod Zapc_simnet Zapc_simos
