lib/zapc/protocol.mli: Control Zapc_netckpt Zapc_sim Zapc_simnet
