lib/zapc/control.ml: List Zapc_sim
