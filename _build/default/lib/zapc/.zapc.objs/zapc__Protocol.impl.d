lib/zapc/protocol.ml: Control List Printf String Zapc_ckpt Zapc_netckpt Zapc_sim Zapc_simnet
