lib/zapc/agent.ml: Array Control Hashtbl List Logs Option Params Printf Protocol Queue Stdlib Storage String Trace Zapc_ckpt Zapc_codec Zapc_netckpt Zapc_pod Zapc_sim Zapc_simnet Zapc_simos
