(** BT/NAS-like workload: an iterative block-tridiagonal solver on a 2D
    grid, row-partitioned across ranks.  Each iteration exchanges halo rows
    with both neighbours (substantial communication, like the NAS BT
    benchmark) and performs real numeric work — a Thomas tridiagonal solve
    along every row followed by a vertical relaxation.  Rank 0 logs a
    checksum, which restart-transparency tests compare bit-for-bit. *)

type params = {
  g : int;  (** global grid is g x g *)
  iters : int;
  ns_per_cell : int;
  mem_base : int;
  mem_scaled : int;
}

val default_params : params
val params_to_value : params -> Zapc_codec.Value.t
val params_of_value : Zapc_codec.Value.t -> params

val register : unit -> unit
(** Register program ["bt_nas"]; the paper runs it on square node counts. *)
