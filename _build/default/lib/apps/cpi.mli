(** CPI: parallel computation of pi by numeric integration of 4/(1+x^2) —
    the MPICH-2 example application of the paper.  Mostly computation-bound
    with one small allreduce per chunk of intervals; the integral is really
    computed (rank 0 logs the value and its error). *)

type params = {
  intervals : int;  (** total integration intervals *)
  chunks : int;  (** compute/allreduce rounds *)
  ns_per_interval : int;  (** virtual compute cost per interval *)
  mem_base : int;  (** resident bytes regardless of scale *)
  mem_scaled : int;  (** bytes divided across ranks *)
}

val default_params : params
val params_to_value : params -> Zapc_codec.Value.t
val params_of_value : Zapc_codec.Value.t -> params

val register : unit -> unit
(** Register program ["cpi"]; launch with {!Zapc_msg.Mpi.std_args}. *)
