(** Program registry bootstrap. *)

val register_all : unit -> unit
(** Register every simulated program (the four workloads plus the per-pod
    daemon) exactly once.  Call before spawning or restoring processes —
    the analogue of the binaries being present on shared storage. *)
