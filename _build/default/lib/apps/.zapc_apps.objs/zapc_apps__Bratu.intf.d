lib/apps/bratu.mli: Zapc_codec
