lib/apps/pipeline.mli: Zapc_codec
