lib/apps/registry.mli:
