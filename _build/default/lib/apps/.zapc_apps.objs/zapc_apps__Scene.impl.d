lib/apps/scene.ml: Bytes Char Float List
