lib/apps/registry.ml: Bratu Bt_nas Cpi Pipeline Povray Zapc_msg
