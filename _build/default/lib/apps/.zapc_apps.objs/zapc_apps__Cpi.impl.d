lib/apps/cpi.ml: Array Float Printf Stdlib Zapc_codec Zapc_msg Zapc_sim Zapc_simos
