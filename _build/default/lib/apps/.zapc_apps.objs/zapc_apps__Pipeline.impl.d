lib/apps/pipeline.ml: Char List Printf Stdlib String Zapc_codec Zapc_sim Zapc_simos
