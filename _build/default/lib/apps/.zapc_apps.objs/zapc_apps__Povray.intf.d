lib/apps/povray.mli: Zapc_codec
