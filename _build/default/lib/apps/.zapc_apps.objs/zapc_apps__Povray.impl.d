lib/apps/povray.ml: Bytes Char Int32 Printf Scene Stdlib String Zapc_codec Zapc_msg Zapc_sim Zapc_simos
