lib/apps/cpi.mli: Zapc_codec
