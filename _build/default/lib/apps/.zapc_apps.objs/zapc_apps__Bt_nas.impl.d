lib/apps/bt_nas.ml: Array Printf Stdlib Zapc_codec Zapc_msg Zapc_sim Zapc_simos
