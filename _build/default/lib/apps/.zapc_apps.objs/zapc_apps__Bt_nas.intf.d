lib/apps/bt_nas.mli: Zapc_codec
