(** PETSc-style Bratu (SFI — solid fuel ignition) solver: the nonlinear PDE
    -lap(u) = lambda e^u on the unit square, discretized on a distributed 2D
    array (row partition with ghost rows) and solved by damped nonlinear
    Jacobi relaxation.  One halo exchange per sweep plus a residual
    allreduce every few sweeps — the paper's "moderate level of
    communication" profile. *)

type params = {
  g : int;
  lambda : float;
  max_iters : int;
  tol : float;
  check_every : int;  (** residual allreduce cadence *)
  ns_per_cell : int;
  mem_base : int;
  mem_scaled : int;
}

val default_params : params
val params_to_value : params -> Zapc_codec.Value.t
val params_of_value : Zapc_codec.Value.t -> params

val register : unit -> unit
(** Register program ["bratu"]. *)
