(* A small but real ray tracer (the POV-Ray stand-in's rendering kernel):
   spheres and a checkered ground plane, one point light, Phong shading,
   hard shadows, one level of reflection.  Pixels are really traced; the
   simulation charges virtual CPU time per pixel on top. *)

type vec = { x : float; y : float; z : float }

let v3 x y z = { x; y; z }
let ( +| ) a b = v3 (a.x +. b.x) (a.y +. b.y) (a.z +. b.z)
let ( -| ) a b = v3 (a.x -. b.x) (a.y -. b.y) (a.z -. b.z)
let ( *| ) s a = v3 (s *. a.x) (s *. a.y) (s *. a.z)
let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)
let norm a = sqrt (dot a a)

let unit a =
  let n = norm a in
  if n = 0.0 then a else (1.0 /. n) *| a

type sphere = { center : vec; radius : float; albedo : float; reflect : float }

type t = {
  spheres : sphere list;
  light : vec;
  eye : vec;
  plane_y : float;
}

let default =
  {
    spheres =
      [ { center = v3 0.0 0.6 3.0; radius = 1.0; albedo = 0.9; reflect = 0.35 };
        { center = v3 (-1.6) 0.2 4.2; radius = 0.7; albedo = 0.7; reflect = 0.1 };
        { center = v3 1.7 0.0 2.2; radius = 0.5; albedo = 0.8; reflect = 0.5 } ];
    light = v3 (-4.0) 6.0 (-2.0);
    eye = v3 0.0 1.0 (-2.5);
    plane_y = -0.6;
  }

type hit = { t : float; point : vec; normal : vec; albedo : float; reflect : float }

let hit_sphere ~orig ~dir (s : sphere) : hit option =
  let oc = orig -| s.center in
  let b = dot oc dir in
  let c = dot oc oc -. (s.radius *. s.radius) in
  let disc = (b *. b) -. c in
  if disc < 0.0 then None
  else
    let sq = sqrt disc in
    let t = if -.b -. sq > 1e-4 then -.b -. sq else -.b +. sq in
    if t < 1e-4 then None
    else
      let point = orig +| (t *| dir) in
      Some { t; point; normal = unit (point -| s.center); albedo = s.albedo;
             reflect = s.reflect }

let hit_plane scene ~orig ~dir : hit option =
  if Float.abs dir.y < 1e-9 then None
  else
    let t = (scene.plane_y -. orig.y) /. dir.y in
    if t < 1e-4 then None
    else
      let point = orig +| (t *| dir) in
      let check =
        let u = int_of_float (Float.round (point.x *. 2.0)) in
        let w = int_of_float (Float.round (point.z *. 2.0)) in
        if (u + w) land 1 = 0 then 0.85 else 0.25
      in
      Some { t; point; normal = v3 0.0 1.0 0.0; albedo = check; reflect = 0.05 }

let closest_hit scene ~orig ~dir : hit option =
  let candidates =
    hit_plane scene ~orig ~dir :: List.map (hit_sphere ~orig ~dir) scene.spheres
  in
  List.fold_left
    (fun best h ->
      match (best, h) with
      | None, h -> h
      | Some b, Some h' when h'.t < b.t -> Some h'
      | Some _, _ -> best)
    None candidates

let in_shadow scene point light_dir dist =
  List.exists
    (fun s ->
      match hit_sphere ~orig:point ~dir:light_dir s with
      | Some h -> h.t < dist
      | None -> false)
    scene.spheres

let rec shade scene ~orig ~dir depth : float =
  match closest_hit scene ~orig ~dir with
  | None -> 0.08 +. (0.12 *. Float.abs dir.y) (* sky *)
  | Some h ->
    let to_light = scene.light -| h.point in
    let dist = norm to_light in
    let ldir = unit to_light in
    let shadowed = in_shadow scene h.point ldir dist in
    let diffuse = if shadowed then 0.0 else Float.max 0.0 (dot h.normal ldir) in
    let spec =
      if shadowed then 0.0
      else
        let refl = (2.0 *. dot h.normal ldir *| h.normal) -| ldir in
        Float.max 0.0 (dot refl (unit (orig -| h.point))) ** 24.0
    in
    let base = (h.albedo *. ((0.15 +. (0.75 *. diffuse)) +. (0.4 *. spec))) in
    if depth > 0 && h.reflect > 0.01 then
      let rdir = unit (dir -| (2.0 *. dot dir h.normal *| h.normal)) in
      ((1.0 -. h.reflect) *. base) +. (h.reflect *. shade scene ~orig:h.point ~dir:rdir (depth - 1))
    else base

let trace_pixel scene ~width ~height px py : int =
  let fw = float_of_int width and fh = float_of_int height in
  let u = ((float_of_int px +. 0.5) /. fw *. 2.0) -. 1.0 in
  let v = 1.0 -. (2.0 *. (float_of_int py +. 0.5) /. fh) in
  let aspect = fw /. fh in
  let dir = unit (v3 (u *. aspect) v 1.4) in
  let lum = shade scene ~orig:scene.eye ~dir 1 in
  let c = int_of_float (255.0 *. Float.min 1.0 (Float.max 0.0 lum)) in
  c

(* Render rows [y0, y0+rows) into a byte string of width*rows pixels. *)
let render_block scene ~width ~height ~y0 ~rows : string =
  let b = Bytes.create (width * rows) in
  for dy = 0 to rows - 1 do
    for x = 0 to width - 1 do
      Bytes.set b ((dy * width) + x)
        (Char.chr (trace_pixel scene ~width ~height x (y0 + dy)))
    done
  done;
  Bytes.unsafe_to_string b
