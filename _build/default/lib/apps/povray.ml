(* POV-Ray-style distributed ray tracing (the paper's PVM workload): rank 0
   is the master holding the framebuffer and the work queue of pixel-row
   blocks; workers request blocks, trace them for real (Scene), and return
   pixels.  CPU-intensive with small, frequent messages; memory footprint
   is roughly constant per endpoint regardless of cluster size — which is
   why the paper's POV-Ray checkpoint image does not shrink with more
   nodes. *)

module Value = Zapc_codec.Value
module Simtime = Zapc_sim.Simtime
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall
module Mpi = Zapc_msg.Mpi

let tag_req = 11
let tag_work = 12
let tag_res = 13
let tag_done = 14

type params = {
  width : int;
  height : int;
  block_rows : int;
  ns_per_pixel : int;
  mem_each : int;
}

let default_params =
  { width = 320; height = 200; block_rows = 8; ns_per_pixel = 1_400; mem_each = 10_000_000 }

let params_to_value p =
  Value.assoc
    [ ("width", Value.int p.width); ("height", Value.int p.height);
      ("block_rows", Value.int p.block_rows); ("ns_per_pixel", Value.int p.ns_per_pixel);
      ("mem_each", Value.int p.mem_each) ]

let params_of_value v =
  {
    width = Value.to_int (Value.field "width" v);
    height = Value.to_int (Value.field "height" v);
    block_rows = Value.to_int (Value.field "block_rows" v);
    ns_per_pixel = Value.to_int (Value.field "ns_per_pixel" v);
    mem_each = Value.to_int (Value.field "mem_each" v);
  }

let u32 n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.unsafe_to_string b

let read_u32 s = Int32.to_int (String.get_int32_le s 0)

type phase =
  (* master *)
  | M_boot
  | M_initing
  | M_recv
  | M_reply of int  (* after sending WORK/DONE to a worker *)
  | M_self of int  (* single-rank mode: compute block ourselves *)
  (* worker *)
  | W_boot
  | W_initing
  | W_request
  | W_await
  | W_compute of int
  | W_send_res of int
  | Fin_write  (* master: writing the output image to the pod fs *)
  | Fin_phase

module P = struct
  type state = {
    comm : Mpi.comm;
    params : params;
    mutable phase : phase;
    mutable mpi : Mpi.pending option;
    mutable fb : string;  (* master framebuffer, width*height grayscale *)
    mutable next_block : int;
    mutable results : int;
    mutable dones_sent : int;
    mutable block_buf : string;  (* worker's last rendered block *)
  }

  let name = "povray"

  let start args =
    let rank, size, vips, port, app = Mpi.parse_args args in
    let comm = Mpi.make ~rank ~size ~vips ~port in
    let params = params_of_value app in
    {
      comm;
      params;
      phase = (if rank = 0 then M_boot else W_boot);
      mpi = None;
      fb = (if rank = 0 then String.make (params.width * params.height) '\000' else "");
      next_block = 0;
      results = 0;
      dones_sent = 0;
      block_buf = "";
    }

  let blocks s =
    (s.params.height + s.params.block_rows - 1) / s.params.block_rows

  let block_rows s b =
    let y0 = b * s.params.block_rows in
    Stdlib.min s.params.block_rows (s.params.height - y0)

  let render s b =
    let y0 = b * s.params.block_rows in
    let rows = block_rows s b in
    s.block_buf <- Scene.render_block Scene.default ~width:s.params.width
        ~height:s.params.height ~y0 ~rows;
    Program.Compute
      (Simtime.ns (Stdlib.max 1 (s.params.width * rows * s.params.ns_per_pixel)))

  let blit_result s data =
    let b = read_u32 data in
    let pixels = String.sub data 4 (String.length data - 4) in
    let y0 = b * s.params.block_rows in
    let fb = Bytes.of_string s.fb in
    Bytes.blit_string pixels 0 fb (y0 * s.params.width) (String.length pixels);
    s.fb <- Bytes.unsafe_to_string fb;
    s.results <- s.results + 1

  let enter_mpi s (pending, act) =
    s.mpi <- Some pending;
    act

  let checksum s =
    let acc = ref 0 in
    String.iter (fun c -> acc := (!acc + Char.code c) land 0xFFFFFF) s.fb;
    !acc

  let master_finished s =
    s.results >= blocks s && s.dones_sent >= s.comm.size - 1

  (* the master writes the finished image (a real PGM) into its pod's file
     namespace on the shared store, then logs the checksum *)
  let pgm s =
    Printf.sprintf "P5\n%d %d\n255\n" s.params.width s.params.height ^ s.fb

  let master_finish_action s =
    s.phase <- Fin_write;
    Program.Sys (Syscall.Fs_put ("/out.pgm", pgm s))

  let master_log_action s =
    s.phase <- Fin_phase;
    Program.Sys
      (Syscall.Log
         (Printf.sprintf "povray: rendered %dx%d in %d blocks, checksum %06x"
            s.params.width s.params.height (blocks s) (checksum s)))

  let master_recv s =
    s.phase <- M_recv;
    enter_mpi s (Mpi.recv s.comm ~src:Mpi.any_src ~tag:Mpi.any_tag)

  let rec continue s (r : Mpi.result) : Program.action =
    match (s.phase, r) with
    | _, Mpi.R_fail msg ->
      s.phase <- Fin_phase;
      Program.Sys (Syscall.Log (name ^ ": MPI failure: " ^ msg))
    (* --- master --- *)
    | M_initing, _ ->
      if s.comm.size = 1 then begin
        s.phase <- M_self 0;
        render s 0
      end
      else master_recv s
    | M_recv, Mpi.R_msg { src; tag; data } ->
      if tag = tag_req then begin
        if s.next_block < blocks s then begin
          let b = s.next_block in
          s.next_block <- b + 1;
          s.phase <- M_reply src;
          enter_mpi s (Mpi.send s.comm ~peer:src ~tag:tag_work (u32 b))
        end
        else begin
          s.dones_sent <- s.dones_sent + 1;
          s.phase <- M_reply src;
          enter_mpi s (Mpi.send s.comm ~peer:src ~tag:tag_done "")
        end
      end
      else if tag = tag_res then begin
        blit_result s data;
        if master_finished s then master_finish_action s else master_recv s
      end
      else continue s (Mpi.R_fail (Printf.sprintf "master: unexpected tag %d" tag))
    | M_reply _, _ ->
      if master_finished s then master_finish_action s else master_recv s
    (* --- worker --- *)
    | W_initing, _ ->
      s.phase <- W_request;
      enter_mpi s (Mpi.send s.comm ~peer:0 ~tag:tag_req "")
    | W_request, _ ->
      s.phase <- W_await;
      enter_mpi s (Mpi.recv s.comm ~src:0 ~tag:Mpi.any_tag)
    | W_await, Mpi.R_msg { tag; data; _ } ->
      if tag = tag_work then begin
        let b = read_u32 data in
        s.phase <- W_compute b;
        render s b
      end
      else begin
        s.phase <- Fin_phase;
        Program.Exit 0
      end
    | W_send_res _, _ ->
      s.phase <- W_request;
      enter_mpi s (Mpi.send s.comm ~peer:0 ~tag:tag_req "")
    | (M_boot | W_boot | M_self _ | W_compute _ | Fin_write | Fin_phase), _
    | (M_recv | W_await), (Mpi.R_ok | Mpi.R_floats _ | Mpi.R_gather _) ->
      continue s (Mpi.R_fail "unexpected MPI result")

  let step s (outcome : Syscall.outcome) =
    match s.mpi with
    | Some pending ->
      (match Mpi.step s.comm pending outcome with
       | `Again (p, act) ->
         s.mpi <- Some p;
         (s, act)
       | `Done r ->
         s.mpi <- None;
         (s, continue s r))
    | None ->
      (match s.phase with
       | M_boot | W_boot ->
         (match outcome with
          | Syscall.Started ->
            (s, Program.Sys (Syscall.Mem_alloc ("povray.rss", s.params.mem_each)))
          | _ ->
            s.phase <- (if s.comm.rank = 0 then M_initing else W_initing);
            (s, enter_mpi s (Mpi.init s.comm)))
       | M_self b ->
         (* single-rank: block rendered; keep going *)
         s.fb <- begin
           let y0 = b * s.params.block_rows in
           let fb = Bytes.of_string s.fb in
           Bytes.blit_string s.block_buf 0 fb (y0 * s.params.width)
             (String.length s.block_buf);
           Bytes.unsafe_to_string fb
         end;
         s.results <- s.results + 1;
         let b' = b + 1 in
         if b' < blocks s then begin
           s.phase <- M_self b';
           (s, render s b')
         end
         else (s, master_finish_action s)
       | W_compute b ->
         (* block rendered: ship it *)
         s.phase <- W_send_res b;
         (s, enter_mpi s (Mpi.send s.comm ~peer:0 ~tag:tag_res (u32 b ^ s.block_buf)))
       | Fin_write -> (s, master_log_action s)
       | Fin_phase -> (s, Program.Exit 0)
       | M_initing | M_recv | M_reply _ | W_initing | W_request | W_await
       | W_send_res _ -> (s, Program.Exit 1))

  let phase_to_value p =
    let t n v = Value.Tag (n, v) in
    match p with
    | M_boot -> t "m_boot" Value.Unit
    | M_initing -> t "m_initing" Value.Unit
    | M_recv -> t "m_recv" Value.Unit
    | M_reply w -> t "m_reply" (Value.Int w)
    | M_self b -> t "m_self" (Value.Int b)
    | W_boot -> t "w_boot" Value.Unit
    | W_initing -> t "w_initing" Value.Unit
    | W_request -> t "w_request" Value.Unit
    | W_await -> t "w_await" Value.Unit
    | W_compute b -> t "w_compute" (Value.Int b)
    | W_send_res b -> t "w_send_res" (Value.Int b)
    | Fin_write -> t "fin_write" Value.Unit
    | Fin_phase -> t "fin" Value.Unit

  let phase_of_value v =
    match Value.to_tag v with
    | "m_boot", _ -> M_boot
    | "m_initing", _ -> M_initing
    | "m_recv", _ -> M_recv
    | "m_reply", w -> M_reply (Value.to_int w)
    | "m_self", b -> M_self (Value.to_int b)
    | "w_boot", _ -> W_boot
    | "w_initing", _ -> W_initing
    | "w_request", _ -> W_request
    | "w_await", _ -> W_await
    | "w_compute", b -> W_compute (Value.to_int b)
    | "w_send_res", b -> W_send_res (Value.to_int b)
    | "fin_write", _ -> Fin_write
    | "fin", _ -> Fin_phase
    | t, _ -> Value.decode_error "povray phase %s" t

  let to_value s =
    Value.assoc
      [ ("comm", Mpi.comm_to_value s.comm);
        ("params", params_to_value s.params);
        ("phase", phase_to_value s.phase);
        ("mpi", Value.option Mpi.pending_to_value s.mpi);
        ("fb", Value.str s.fb);
        ("next_block", Value.int s.next_block);
        ("results", Value.int s.results);
        ("dones_sent", Value.int s.dones_sent);
        ("block_buf", Value.str s.block_buf) ]

  let of_value v =
    {
      comm = Mpi.comm_of_value (Value.field "comm" v);
      params = params_of_value (Value.field "params" v);
      phase = phase_of_value (Value.field "phase" v);
      mpi = Value.to_option Mpi.pending_of_value (Value.field "mpi" v);
      fb = Value.to_str (Value.field "fb" v);
      next_block = Value.to_int (Value.field "next_block" v);
      results = Value.to_int (Value.field "results" v);
      dones_sent = Value.to_int (Value.field "dones_sent" v);
      block_buf = Value.to_str (Value.field "block_buf" v);
    }
end

let register () = Program.register_if_absent (module P : Program.S)
