(** POV-Ray-style distributed ray tracing — the paper's PVM workload.

    Rank 0 is the master holding the framebuffer and the queue of pixel-row
    blocks; workers request blocks, trace them for real ({!Scene}), and
    return pixels.  CPU-intensive with small frequent messages; memory is
    roughly constant per endpoint, which is why the paper's POV-Ray
    checkpoint image does not shrink with more nodes.  The master logs a
    framebuffer checksum that is independent of work distribution. *)

type params = {
  width : int;
  height : int;
  block_rows : int;  (** rows per work unit *)
  ns_per_pixel : int;
  mem_each : int;
}

val default_params : params
val params_to_value : params -> Zapc_codec.Value.t
val params_of_value : Zapc_codec.Value.t -> params

val register : unit -> unit
(** Register program ["povray"]; single-rank runs render locally. *)
