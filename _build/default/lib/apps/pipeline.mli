(** A shell-style pipeline inside one pod: producer | filter | consumer.

    Three processes connected by two in-kernel pipes with inherited
    descriptors — the process-group + IPC shape Zap's pod checkpointing was
    designed for.  Mid-stream checkpoints capture pipe buffers and blocked
    readers/writers; the consumer logs a record count and digest at EOF,
    which transparency tests compare bit-for-bit. *)

type params = {
  lines : int;  (** records emitted by the producer *)
  keep : int;  (** the filter keeps every [keep]-th record *)
  ns_per_line : int;  (** producer compute cost per record *)
}

val default_params : params
val params_to_value : params -> Zapc_codec.Value.t
val params_of_value : Zapc_codec.Value.t -> params

val register : unit -> unit
(** Register programs ["pipeline"] (the driver) and its three stages. *)
