(* CPI: parallel computation of pi by numeric integration of 4/(1+x^2),
   the MPICH-2 example used in the paper.  Mostly computation-bound with one
   small allreduce per chunk of intervals.

   The integral is really computed; the per-interval virtual-time cost
   models the 3 GHz-era testbed. *)

module Value = Zapc_codec.Value
module Simtime = Zapc_sim.Simtime
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall
module Mpi = Zapc_msg.Mpi

type params = {
  intervals : int;  (* total integration intervals *)
  chunks : int;  (* number of compute/allreduce rounds *)
  ns_per_interval : int;  (* virtual compute cost *)
  mem_base : int;  (* bytes resident regardless of scale *)
  mem_scaled : int;  (* bytes divided across ranks *)
}

let default_params =
  { intervals = 2_000_000; chunks = 10; ns_per_interval = 12; mem_base = 6_000_000;
    mem_scaled = 10_000_000 }

let params_to_value p =
  Value.assoc
    [ ("intervals", Value.int p.intervals);
      ("chunks", Value.int p.chunks);
      ("ns_per_interval", Value.int p.ns_per_interval);
      ("mem_base", Value.int p.mem_base);
      ("mem_scaled", Value.int p.mem_scaled) ]

let params_of_value v =
  {
    intervals = Value.to_int (Value.field "intervals" v);
    chunks = Value.to_int (Value.field "chunks" v);
    ns_per_interval = Value.to_int (Value.field "ns_per_interval" v);
    mem_base = Value.to_int (Value.field "mem_base" v);
    mem_scaled = Value.to_int (Value.field "mem_scaled" v);
  }

type phase =
  | Boot
  | Initing
  | Computing of int  (* chunk index *)
  | Reducing of int
  | Done_phase

module P = struct
  type state = {
    comm : Mpi.comm;
    params : params;
    mutable phase : phase;
    mutable mpi : Mpi.pending option;
    mutable pi_acc : float;  (* accumulated integral *)
    mutable partial : float;  (* this chunk's local contribution *)
  }

  let name = "cpi"

  let start args =
    let rank, size, vips, port, app = Mpi.parse_args args in
    let comm = Mpi.make ~rank ~size ~vips ~port in
    { comm; params = params_of_value app; phase = Boot; mpi = None; pi_acc = 0.0;
      partial = 0.0 }

  (* Integrate this rank's strided share of one chunk (the real math). *)
  let compute_chunk s c =
    let { intervals; chunks; _ } = s.params in
    let per_chunk = intervals / chunks in
    let lo = c * per_chunk in
    let n = float_of_int intervals in
    let h = 1.0 /. n in
    let sum = ref 0.0 in
    let i = ref (lo + s.comm.rank) in
    while !i < lo + per_chunk do
      let x = h *. (float_of_int !i +. 0.5) in
      sum := !sum +. (4.0 /. (1.0 +. (x *. x)));
      i := !i + s.comm.size
    done;
    s.partial <- h *. !sum;
    let my_share = per_chunk / s.comm.size in
    Program.Compute (Simtime.ns (Stdlib.max 1 (my_share * s.params.ns_per_interval)))

  let enter_mpi s (pending, act) =
    s.mpi <- Some pending;
    act

  let rec continue s (r : Mpi.result) : Program.action =
    match (s.phase, r) with
    | _, Mpi.R_fail msg ->
      s.phase <- Done_phase;
      Program.Sys (Syscall.Log ("cpi: MPI failure: " ^ msg))
    | Boot, _ -> assert false
    | Initing, _ ->
      s.phase <- Computing 0;
      compute_chunk s 0
    | Computing _, _ -> assert false
    | Reducing c, Mpi.R_floats totals ->
      s.pi_acc <- s.pi_acc +. totals.(0);
      let c' = c + 1 in
      if c' < s.params.chunks then begin
        s.phase <- Computing c';
        compute_chunk s c'
      end
      else begin
        s.phase <- Done_phase;
        if s.comm.rank = 0 then
          Program.Sys
            (Syscall.Log (Printf.sprintf "cpi: pi ~= %.12f (err %.2e)" s.pi_acc
                            (Float.abs (s.pi_acc -. Float.pi))))
        else Program.Exit 0
      end
    | Reducing _, _ -> continue s (Mpi.R_fail "unexpected reduce result")
    | Done_phase, _ -> Program.Exit 0

  let step s (outcome : Syscall.outcome) =
    match s.mpi with
    | Some pending ->
      (match Mpi.step s.comm pending outcome with
       | `Again (p, act) ->
         s.mpi <- Some p;
         (s, act)
       | `Done r ->
         s.mpi <- None;
         (s, continue s r))
    | None ->
      (match s.phase with
       | Boot ->
         (match outcome with
          | Syscall.Started ->
            let mem = s.params.mem_base + (s.params.mem_scaled / s.comm.size) in
            (s, Program.Sys (Syscall.Mem_alloc ("cpi.rss", mem)))
          | _ ->
            s.phase <- Initing;
            (s, enter_mpi s (Mpi.init s.comm)))
       | Computing c ->
         (* compute finished; reduce the chunk *)
         s.phase <- Reducing c;
         (s, enter_mpi s (Mpi.allreduce_sum s.comm [| s.partial |]))
       | Initing | Reducing _ -> (s, Program.Exit 1)
       | Done_phase -> (s, Program.Exit 0))

  let phase_to_value = function
    | Boot -> Value.Tag ("boot", Value.Unit)
    | Initing -> Value.Tag ("initing", Value.Unit)
    | Computing c -> Value.Tag ("computing", Value.Int c)
    | Reducing c -> Value.Tag ("reducing", Value.Int c)
    | Done_phase -> Value.Tag ("done", Value.Unit)

  let phase_of_value v =
    match Value.to_tag v with
    | "boot", _ -> Boot
    | "initing", _ -> Initing
    | "computing", c -> Computing (Value.to_int c)
    | "reducing", c -> Reducing (Value.to_int c)
    | "done", _ -> Done_phase
    | t, _ -> Value.decode_error "cpi phase %s" t

  let to_value s =
    Value.assoc
      [ ("comm", Mpi.comm_to_value s.comm);
        ("params", params_to_value s.params);
        ("phase", phase_to_value s.phase);
        ("mpi", Value.option Mpi.pending_to_value s.mpi);
        ("pi_acc", Value.float s.pi_acc);
        ("partial", Value.float s.partial) ]

  let of_value v =
    {
      comm = Mpi.comm_of_value (Value.field "comm" v);
      params = params_of_value (Value.field "params" v);
      phase = phase_of_value (Value.field "phase" v);
      mpi = Value.to_option Mpi.pending_of_value (Value.field "mpi" v);
      pi_acc = Value.to_float (Value.field "pi_acc" v);
      partial = Value.to_float (Value.field "partial" v);
    }
end

let register () = Program.register_if_absent (module P : Program.S)
