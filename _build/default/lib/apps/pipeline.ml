(* A shell-style pipeline inside one pod: producer | filter | consumer.

   The paper's Zap foundation checkpoints whole process groups including
   their interprocess communication; this workload exercises exactly that —
   three processes connected by two in-kernel pipes, spawned with inherited
   descriptors, checkpointed mid-stream (pipe buffers, blocked readers and
   writers included) and restarted transparently.

   producer: emits [lines] numbered records into pipe A, then closes it.
   filter:   reads records from pipe A, uppercases the payload and keeps
             every [keep]-th record, writes to pipe B, closes on EOF.
   consumer: reads pipe B, accumulates a checksum, logs it at EOF.

   The driver program ("pipeline") builds the pipes, spawns the three
   stages, waits for the consumer and exits with its status. *)

module Value = Zapc_codec.Value
module Simtime = Zapc_sim.Simtime
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall

type params = { lines : int; keep : int; ns_per_line : int }

let default_params = { lines = 2_000; keep = 3; ns_per_line = 20_000 }

let params_to_value p =
  Value.assoc
    [ ("lines", Value.int p.lines); ("keep", Value.int p.keep);
      ("ns_per_line", Value.int p.ns_per_line) ]

let params_of_value v =
  {
    lines = Value.to_int (Value.field "lines" v);
    keep = Value.to_int (Value.field "keep" v);
    ns_per_line = Value.to_int (Value.field "ns_per_line" v);
  }

(* --- producer --- *)

module Producer = struct
  type state = {
    wfd : int;
    lines : int;
    ns : int;
    mutable unused : int list;  (* inherited fds to close first *)
    mutable next : int;
    mutable rem : string;  (* unwritten tail of the current record *)
    mutable ph : int;  (* 0 compute, 1 write, 2 close, 3 exit *)
  }

  let name = "pipeline.producer"

  let start args =
    { wfd = Value.to_int (Value.field "wfd" args);
      lines = Value.to_int (Value.field "lines" args);
      ns = Value.to_int (Value.field "ns" args);
      unused = Value.to_list Value.to_int (Value.field "unused" args);
      next = 0; rem = ""; ph = 0 }

  let record n = Printf.sprintf "record-%06d:payload-%d\n" n (n * n mod 9973)

  let step s (outcome : Syscall.outcome) =
    match (s.ph, outcome) with
    | 0, _ when s.unused <> [] ->
      (* close inherited copies of the other pipe ends so EOF propagates *)
      let fd = List.hd s.unused in
      s.unused <- List.tl s.unused;
      (s, Program.Sys (Syscall.Close fd))
    | 0, _ ->
      if s.next >= s.lines then begin
        s.ph <- 2;
        (s, Program.Sys (Syscall.Close s.wfd))
      end
      else begin
        s.rem <- record s.next;
        s.next <- s.next + 1;
        s.ph <- 1;
        (s, Program.Compute (Stdlib.max 1 s.ns))
      end
    | 1, Syscall.Ret (Syscall.Rint n) ->
      s.rem <- String.sub s.rem n (String.length s.rem - n);
      if String.length s.rem = 0 then begin
        s.ph <- 0;
        (s, Program.Compute 1)
      end
      else (s, Program.Sys (Syscall.Write (s.wfd, s.rem)))
    | 1, _ -> (s, Program.Sys (Syscall.Write (s.wfd, s.rem)))
    | 2, _ -> (s, Program.Exit 0)
    | _, _ -> (s, Program.Exit 1)

  let to_value s =
    Value.assoc
      [ ("wfd", Value.int s.wfd); ("lines", Value.int s.lines); ("ns", Value.int s.ns);
        ("unused", Value.list Value.int s.unused);
        ("next", Value.int s.next); ("rem", Value.str s.rem); ("ph", Value.int s.ph) ]

  let of_value v =
    { wfd = Value.to_int (Value.field "wfd" v);
      lines = Value.to_int (Value.field "lines" v);
      ns = Value.to_int (Value.field "ns" v);
      unused = Value.to_list Value.to_int (Value.field "unused" v);
      next = Value.to_int (Value.field "next" v);
      rem = Value.to_str (Value.field "rem" v);
      ph = Value.to_int (Value.field "ph" v) }
end

(* --- filter --- *)

module Filter = struct
  type state = {
    rfd : int;
    wfd : int;
    keep : int;
    mutable unused : int list;
    mutable buf : string;  (* partial input line *)
    mutable seen : int;
    mutable out : string;  (* unwritten output *)
    mutable ph : int;  (* 0 read, 1 write, 2 close, 3 exit *)
    mutable eof : bool;
  }

  let name = "pipeline.filter"

  let start args =
    { rfd = Value.to_int (Value.field "rfd" args);
      wfd = Value.to_int (Value.field "wfd" args);
      keep = Value.to_int (Value.field "keep" args);
      unused = Value.to_list Value.to_int (Value.field "unused" args);
      buf = ""; seen = 0; out = ""; ph = 0; eof = false }

  (* consume complete lines from [buf]; keep every [keep]-th, uppercased *)
  let process s =
    let rec go () =
      match String.index_opt s.buf '\n' with
      | None -> ()
      | Some i ->
        let line = String.sub s.buf 0 i in
        s.buf <- String.sub s.buf (i + 1) (String.length s.buf - i - 1);
        s.seen <- s.seen + 1;
        if s.seen mod s.keep = 0 then
          s.out <- s.out ^ String.uppercase_ascii line ^ "\n";
        go ()
    in
    go ()

  let step s (outcome : Syscall.outcome) =
    match (s.ph, outcome) with
    | 0, _ when s.unused <> [] ->
      let fd = List.hd s.unused in
      s.unused <- List.tl s.unused;
      (s, Program.Sys (Syscall.Close fd))
    | 0, Syscall.Ret (Syscall.Rdata "") ->
      s.eof <- true;
      if String.length s.out > 0 then begin
        s.ph <- 1;
        (s, Program.Sys (Syscall.Write (s.wfd, s.out)))
      end
      else begin
        s.ph <- 2;
        (s, Program.Sys (Syscall.Close s.wfd))
      end
    | 0, Syscall.Ret (Syscall.Rdata d) ->
      s.buf <- s.buf ^ d;
      process s;
      if String.length s.out > 0 then begin
        s.ph <- 1;
        (s, Program.Sys (Syscall.Write (s.wfd, s.out)))
      end
      else (s, Program.Sys (Syscall.Read (s.rfd, 4096)))
    | 0, _ -> (s, Program.Sys (Syscall.Read (s.rfd, 4096)))
    | 1, Syscall.Ret (Syscall.Rint n) ->
      s.out <- String.sub s.out n (String.length s.out - n);
      if String.length s.out > 0 then (s, Program.Sys (Syscall.Write (s.wfd, s.out)))
      else if s.eof then begin
        s.ph <- 2;
        (s, Program.Sys (Syscall.Close s.wfd))
      end
      else begin
        s.ph <- 0;
        (s, Program.Sys (Syscall.Read (s.rfd, 4096)))
      end
    | 1, _ -> (s, Program.Sys (Syscall.Write (s.wfd, s.out)))
    | 2, _ -> (s, Program.Exit 0)
    | _, _ -> (s, Program.Exit 1)

  let to_value s =
    Value.assoc
      [ ("rfd", Value.int s.rfd); ("wfd", Value.int s.wfd); ("keep", Value.int s.keep);
        ("unused", Value.list Value.int s.unused);
        ("buf", Value.str s.buf); ("seen", Value.int s.seen); ("out", Value.str s.out);
        ("ph", Value.int s.ph); ("eof", Value.bool s.eof) ]

  let of_value v =
    { rfd = Value.to_int (Value.field "rfd" v);
      wfd = Value.to_int (Value.field "wfd" v);
      keep = Value.to_int (Value.field "keep" v);
      unused = Value.to_list Value.to_int (Value.field "unused" v);
      buf = Value.to_str (Value.field "buf" v);
      seen = Value.to_int (Value.field "seen" v);
      out = Value.to_str (Value.field "out" v);
      ph = Value.to_int (Value.field "ph" v);
      eof = Value.to_bool (Value.field "eof" v) }
end

(* --- consumer --- *)

module Consumer = struct
  type state = {
    rfd : int;
    mutable unused : int list;
    mutable records : int;
    mutable digest : int;
    mutable buf : string;
    mutable ph : int;
  }

  let name = "pipeline.consumer"

  let start args =
    { rfd = Value.to_int (Value.field "rfd" args);
      unused = Value.to_list Value.to_int (Value.field "unused" args);
      records = 0; digest = 0; buf = ""; ph = 0 }

  let absorb s d =
    s.buf <- s.buf ^ d;
    let rec go () =
      match String.index_opt s.buf '\n' with
      | None -> ()
      | Some i ->
        let line = String.sub s.buf 0 i in
        s.buf <- String.sub s.buf (i + 1) (String.length s.buf - i - 1);
        s.records <- s.records + 1;
        String.iter (fun c -> s.digest <- ((s.digest * 31) + Char.code c) land 0xFFFFFF) line;
        go ()
    in
    go ()

  let step s (outcome : Syscall.outcome) =
    match (s.ph, outcome) with
    | 0, _ when s.unused <> [] ->
      let fd = List.hd s.unused in
      s.unused <- List.tl s.unused;
      (s, Program.Sys (Syscall.Close fd))
    | 0, Syscall.Ret (Syscall.Rdata "") ->
      s.ph <- 1;
      ( s,
        Program.Sys
          (Syscall.Log (Printf.sprintf "pipeline: %d records digest %06x" s.records s.digest)) )
    | 0, Syscall.Ret (Syscall.Rdata d) ->
      absorb s d;
      (s, Program.Sys (Syscall.Read (s.rfd, 4096)))
    | 0, _ -> (s, Program.Sys (Syscall.Read (s.rfd, 4096)))
    | 1, _ -> (s, Program.Exit 0)
    | _, _ -> (s, Program.Exit 1)

  let to_value s =
    Value.assoc
      [ ("rfd", Value.int s.rfd); ("unused", Value.list Value.int s.unused);
        ("records", Value.int s.records);
        ("digest", Value.int s.digest); ("buf", Value.str s.buf); ("ph", Value.int s.ph) ]

  let of_value v =
    { rfd = Value.to_int (Value.field "rfd" v);
      unused = Value.to_list Value.to_int (Value.field "unused" v);
      records = Value.to_int (Value.field "records" v);
      digest = Value.to_int (Value.field "digest" v);
      buf = Value.to_str (Value.field "buf" v);
      ph = Value.to_int (Value.field "ph" v) }
end

(* --- driver: builds pipes, spawns the stages, waits for the consumer --- *)

module P = struct
  type state = {
    params : params;
    mutable ph : int;  (* 0 pipeA, 1 pipeB, 2..4 spawns, 5..8 closes, 9 wait, 10 done *)
    mutable a_r : int;
    mutable a_w : int;
    mutable b_r : int;
    mutable b_w : int;
    mutable consumer : int;
  }

  let name = "pipeline"

  let start args =
    { params = params_of_value args; ph = 0; a_r = -1; a_w = -1; b_r = -1; b_w = -1;
      consumer = -1 }

  let step s (outcome : Syscall.outcome) =
    match (s.ph, outcome) with
    | 0, _ ->
      s.ph <- 1;
      (s, Program.Sys Syscall.Pipe)
    | 1, Syscall.Ret (Syscall.Rpair (r, w)) ->
      s.a_r <- r;
      s.a_w <- w;
      s.ph <- 2;
      (s, Program.Sys Syscall.Pipe)
    | 2, Syscall.Ret (Syscall.Rpair (r, w)) ->
      s.b_r <- r;
      s.b_w <- w;
      s.ph <- 3;
      ( s,
        Program.Sys
          (Syscall.Spawn
             ( "pipeline.producer",
               Value.assoc
                 [ ("wfd", Value.int s.a_w); ("lines", Value.int s.params.lines);
                   ("ns", Value.int s.params.ns_per_line);
                   ("unused", Value.list Value.int [ s.a_r; s.b_r; s.b_w ]) ] )) )
    | 3, Syscall.Ret (Syscall.Rint _) ->
      s.ph <- 4;
      ( s,
        Program.Sys
          (Syscall.Spawn
             ( "pipeline.filter",
               Value.assoc
                 [ ("rfd", Value.int s.a_r); ("wfd", Value.int s.b_w);
                   ("keep", Value.int s.params.keep);
                   ("unused", Value.list Value.int [ s.a_w; s.b_r ]) ] )) )
    | 4, Syscall.Ret (Syscall.Rint _) ->
      s.ph <- 5;
      ( s,
        Program.Sys
          (Syscall.Spawn
             ( "pipeline.consumer",
               Value.assoc
                 [ ("rfd", Value.int s.b_r);
                   ("unused", Value.list Value.int [ s.a_r; s.a_w; s.b_w ]) ] )) )
    | 5, Syscall.Ret (Syscall.Rint pid) ->
      (* close the driver's copies so EOF propagates stage to stage *)
      s.consumer <- pid;
      s.ph <- 6;
      (s, Program.Sys (Syscall.Close s.a_r))
    | 6, _ ->
      s.ph <- 7;
      (s, Program.Sys (Syscall.Close s.a_w))
    | 7, _ ->
      s.ph <- 8;
      (s, Program.Sys (Syscall.Close s.b_r))
    | 8, _ ->
      s.ph <- 9;
      (s, Program.Sys (Syscall.Close s.b_w))
    | 9, _ ->
      s.ph <- 10;
      (s, Program.Sys (Syscall.Waitpid s.consumer))
    | 10, Syscall.Ret (Syscall.Rint code) -> (s, Program.Exit code)
    | _, _ -> (s, Program.Exit 1)

  let to_value s =
    Value.assoc
      [ ("params", params_to_value s.params); ("ph", Value.int s.ph);
        ("a_r", Value.int s.a_r); ("a_w", Value.int s.a_w); ("b_r", Value.int s.b_r);
        ("b_w", Value.int s.b_w); ("consumer", Value.int s.consumer) ]

  let of_value v =
    { params = params_of_value (Value.field "params" v);
      ph = Value.to_int (Value.field "ph" v);
      a_r = Value.to_int (Value.field "a_r" v);
      a_w = Value.to_int (Value.field "a_w" v);
      b_r = Value.to_int (Value.field "b_r" v);
      b_w = Value.to_int (Value.field "b_w" v);
      consumer = Value.to_int (Value.field "consumer" v) }
end

let register () =
  Program.register_if_absent (module Producer : Program.S);
  Program.register_if_absent (module Filter : Program.S);
  Program.register_if_absent (module Consumer : Program.S);
  Program.register_if_absent (module P : Program.S)
