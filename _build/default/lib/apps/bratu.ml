(* PETSc-style Bratu (SFI — solid fuel ignition) solver: the nonlinear PDE
   -lap(u) = lambda * e^u on the unit square, discretized on a distributed
   2D array (row partition with ghost rows) and solved by damped nonlinear
   Jacobi relaxation.  Communication is moderate: one halo exchange per
   sweep plus a residual allreduce every few sweeps — the paper's
   "moderate level of communication" profile. *)

module Value = Zapc_codec.Value
module Simtime = Zapc_sim.Simtime
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall
module Mpi = Zapc_msg.Mpi
module Floats = Zapc_msg.Floats

let tag_halo = 9

type params = {
  g : int;
  lambda : float;
  max_iters : int;
  tol : float;
  check_every : int;  (* residual allreduce cadence *)
  ns_per_cell : int;
  mem_base : int;
  mem_scaled : int;
}

let default_params =
  { g = 160; lambda = 6.0; max_iters = 60; tol = 1e-6; check_every = 5; ns_per_cell = 90;
    mem_base = 15_000_000; mem_scaled = 130_000_000 }

let params_to_value p =
  Value.assoc
    [ ("g", Value.int p.g); ("lambda", Value.float p.lambda);
      ("max_iters", Value.int p.max_iters); ("tol", Value.float p.tol);
      ("check_every", Value.int p.check_every); ("ns_per_cell", Value.int p.ns_per_cell);
      ("mem_base", Value.int p.mem_base); ("mem_scaled", Value.int p.mem_scaled) ]

let params_of_value v =
  {
    g = Value.to_int (Value.field "g" v);
    lambda = Value.to_float (Value.field "lambda" v);
    max_iters = Value.to_int (Value.field "max_iters" v);
    tol = Value.to_float (Value.field "tol" v);
    check_every = Value.to_int (Value.field "check_every" v);
    ns_per_cell = Value.to_int (Value.field "ns_per_cell" v);
    mem_base = Value.to_int (Value.field "mem_base" v);
    mem_scaled = Value.to_int (Value.field "mem_scaled" v);
  }

type ex_step = Send_up | Send_down | Recv_up | Recv_down

type phase =
  | Boot
  | Initing
  | Exchange of int * ex_step
  | Computing of int
  | Residual of int
  | Done_phase

module P = struct
  type state = {
    comm : Mpi.comm;
    params : params;
    mutable phase : phase;
    mutable mpi : Mpi.pending option;
    mutable u : float array;  (* (rows+2) * g with ghosts *)
    rows : int;
    row0 : int;  (* global index of first interior row *)
    mutable local_res : float;
    mutable final_res : float;
  }

  let name = "bratu"

  let partition ~g ~size ~rank =
    let base = g / size and extra = g mod size in
    let rows = base + (if rank < extra then 1 else 0) in
    let row0 = (rank * base) + min rank extra in
    (rows, row0)

  let start args =
    let rank, size, vips, port, app = Mpi.parse_args args in
    let comm = Mpi.make ~rank ~size ~vips ~port in
    let params = params_of_value app in
    let rows, row0 = partition ~g:params.g ~size ~rank in
    let u = Array.make ((rows + 2) * params.g) 0.0 in
    { comm; params; phase = Boot; mpi = None; u; rows; row0; local_res = infinity;
      final_res = infinity }

  let g s = s.params.g
  let row s r = Array.sub s.u (r * g s) (g s)
  let set_row s r data = Array.blit data 0 s.u (r * g s) (g s)
  let has_up s = s.comm.rank > 0
  let has_down s = s.comm.rank < s.comm.size - 1

  (* One damped nonlinear Jacobi sweep; also accumulates the local residual
     norm of the Bratu operator.  Dirichlet zero boundary on the domain
     edge (missing halos stay zero). *)
  let sweep s =
    let gg = g s in
    let h = 1.0 /. float_of_int (gg + 1) in
    let h2l = h *. h *. s.params.lambda in
    let next = Array.copy s.u in
    let res = ref 0.0 in
    for r = 1 to s.rows do
      let base = r * gg in
      for i = 0 to gg - 1 do
        let left = if i > 0 then s.u.(base + i - 1) else 0.0 in
        let right = if i < gg - 1 then s.u.(base + i + 1) else 0.0 in
        let up = s.u.(base - gg + i) in
        let down = s.u.(base + gg + i) in
        let uij = s.u.(base + i) in
        let f = left +. right +. up +. down -. (4.0 *. uij) +. (h2l *. exp uij) in
        res := !res +. (f *. f);
        next.(base + i) <- uij +. (0.22 *. f)
      done
    done;
    s.u <- next;
    s.local_res <- !res;
    Program.Compute (Simtime.ns (Stdlib.max 1 (s.rows * gg * s.params.ns_per_cell)))

  let enter_mpi s (pending, act) =
    s.mpi <- Some pending;
    act

  let rec exchange s it (stp : ex_step) : Program.action =
    s.phase <- Exchange (it, stp);
    match stp with
    | Send_up ->
      if has_up s then
        enter_mpi s
          (Mpi.send s.comm ~peer:(s.comm.rank - 1) ~tag:tag_halo (Floats.pack (row s 1)))
      else exchange s it Send_down
    | Send_down ->
      if has_down s then
        enter_mpi s
          (Mpi.send s.comm ~peer:(s.comm.rank + 1) ~tag:tag_halo
             (Floats.pack (row s s.rows)))
      else exchange s it Recv_up
    | Recv_up ->
      if has_up s then enter_mpi s (Mpi.recv s.comm ~src:(s.comm.rank - 1) ~tag:tag_halo)
      else exchange s it Recv_down
    | Recv_down ->
      if has_down s then enter_mpi s (Mpi.recv s.comm ~src:(s.comm.rank + 1) ~tag:tag_halo)
      else begin
        s.phase <- Computing it;
        sweep s
      end

  let finish s =
    s.phase <- Done_phase;
    if s.comm.rank = 0 then
      Program.Sys
        (Syscall.Log
           (Printf.sprintf "bratu: residual %.3e (lambda=%.2f)" s.final_res s.params.lambda))
    else Program.Exit 0

  let rec continue s (r : Mpi.result) : Program.action =
    match (s.phase, r) with
    | _, Mpi.R_fail msg ->
      s.phase <- Done_phase;
      Program.Sys (Syscall.Log ("bratu: MPI failure: " ^ msg))
    | Initing, _ -> exchange s 0 Send_up
    | Exchange (it, Send_up), _ -> exchange s it Send_down
    | Exchange (it, Send_down), _ -> exchange s it Recv_up
    | Exchange (it, Recv_up), Mpi.R_msg { data; _ } ->
      set_row s 0 (Floats.unpack data);
      exchange s it Recv_down
    | Exchange (it, Recv_down), Mpi.R_msg { data; _ } ->
      set_row s (s.rows + 1) (Floats.unpack data);
      s.phase <- Computing it;
      sweep s
    | Residual it, Mpi.R_floats totals ->
      let res = sqrt totals.(0) in
      s.final_res <- res;
      let it' = it + 1 in
      if res < s.params.tol || it' >= s.params.max_iters then finish s
      else exchange s it' Send_up
    | (Boot | Exchange _ | Computing _ | Residual _ | Done_phase), _ ->
      continue s (Mpi.R_fail "unexpected MPI result")

  let step s (outcome : Syscall.outcome) =
    match s.mpi with
    | Some pending ->
      (match Mpi.step s.comm pending outcome with
       | `Again (p, act) ->
         s.mpi <- Some p;
         (s, act)
       | `Done r ->
         s.mpi <- None;
         (s, continue s r))
    | None ->
      (match s.phase with
       | Boot ->
         (match outcome with
          | Syscall.Started ->
            let mem = s.params.mem_base + (s.params.mem_scaled / s.comm.size) in
            (s, Program.Sys (Syscall.Mem_alloc ("bratu.rss", mem)))
          | _ ->
            s.phase <- Initing;
            (s, enter_mpi s (Mpi.init s.comm)))
       | Computing it ->
         let it' = it + 1 in
         if it' mod s.params.check_every = 0 || it' >= s.params.max_iters then begin
           s.phase <- Residual it;
           (s, enter_mpi s (Mpi.allreduce_sum s.comm [| s.local_res |]))
         end
         else (s, exchange s it' Send_up)
       | Initing | Exchange _ | Residual _ -> (s, Program.Exit 1)
       | Done_phase -> (s, Program.Exit 0))

  let ex_to_int = function Send_up -> 0 | Send_down -> 1 | Recv_up -> 2 | Recv_down -> 3

  let ex_of_int = function 0 -> Send_up | 1 -> Send_down | 2 -> Recv_up | _ -> Recv_down

  let phase_to_value = function
    | Boot -> Value.Tag ("boot", Value.Unit)
    | Initing -> Value.Tag ("initing", Value.Unit)
    | Exchange (it, stp) ->
      Value.Tag ("exchange", Value.List [ Value.Int it; Value.Int (ex_to_int stp) ])
    | Computing it -> Value.Tag ("computing", Value.Int it)
    | Residual it -> Value.Tag ("residual", Value.Int it)
    | Done_phase -> Value.Tag ("done", Value.Unit)

  let phase_of_value v =
    match Value.to_tag v with
    | "boot", _ -> Boot
    | "initing", _ -> Initing
    | "exchange", Value.List [ Value.Int it; Value.Int stp ] -> Exchange (it, ex_of_int stp)
    | "computing", it -> Computing (Value.to_int it)
    | "residual", it -> Residual (Value.to_int it)
    | "done", _ -> Done_phase
    | t, _ -> Value.decode_error "bratu phase %s" t

  let to_value s =
    Value.assoc
      [ ("comm", Mpi.comm_to_value s.comm);
        ("params", params_to_value s.params);
        ("phase", phase_to_value s.phase);
        ("mpi", Value.option Mpi.pending_to_value s.mpi);
        ("u", Value.f64s s.u);
        ("rows", Value.int s.rows);
        ("row0", Value.int s.row0);
        ("local_res", Value.float s.local_res);
        ("final_res", Value.float s.final_res) ]

  let of_value v =
    {
      comm = Mpi.comm_of_value (Value.field "comm" v);
      params = params_of_value (Value.field "params" v);
      phase = phase_of_value (Value.field "phase" v);
      mpi = Value.to_option Mpi.pending_of_value (Value.field "mpi" v);
      u = Value.to_f64s (Value.field "u" v);
      rows = Value.to_int (Value.field "rows" v);
      row0 = Value.to_int (Value.field "row0" v);
      local_res = Value.to_float (Value.field "local_res" v);
      final_res = Value.to_float (Value.field "final_res" v);
    }
end

let register () = Program.register_if_absent (module P : Program.S)
