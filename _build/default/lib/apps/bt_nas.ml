(* BT/NAS-like workload: iterative block-tridiagonal solver on a 2D grid,
   row-partitioned across ranks.  Each iteration exchanges halo rows with
   both neighbours (substantial communication, like the NAS BT benchmark)
   and then performs real numeric work: a Thomas tridiagonal solve along
   every row followed by a vertical relaxation against the neighbour rows.

   The paper runs BT on square process counts (1, 4, 9, 16); this
   implementation accepts any count (the benches use the paper's). *)

module Value = Zapc_codec.Value
module Simtime = Zapc_sim.Simtime
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall
module Mpi = Zapc_msg.Mpi
module Floats = Zapc_msg.Floats

let tag_halo = 7

type params = {
  g : int;  (* global grid is g x g *)
  iters : int;
  ns_per_cell : int;
  mem_base : int;
  mem_scaled : int;
}

let default_params =
  { g = 192; iters = 30; ns_per_cell = 55; mem_base = 20_000_000;
    mem_scaled = 320_000_000 }

let params_to_value p =
  Value.assoc
    [ ("g", Value.int p.g); ("iters", Value.int p.iters);
      ("ns_per_cell", Value.int p.ns_per_cell); ("mem_base", Value.int p.mem_base);
      ("mem_scaled", Value.int p.mem_scaled) ]

let params_of_value v =
  {
    g = Value.to_int (Value.field "g" v);
    iters = Value.to_int (Value.field "iters" v);
    ns_per_cell = Value.to_int (Value.field "ns_per_cell" v);
    mem_base = Value.to_int (Value.field "mem_base" v);
    mem_scaled = Value.to_int (Value.field "mem_scaled" v);
  }

type ex_step = Send_up | Send_down | Recv_up | Recv_down

type phase =
  | Boot
  | Initing
  | Exchange of int * ex_step  (* iteration, sub-step *)
  | Computing of int
  | Reducing
  | Done_phase

module P = struct
  type state = {
    comm : Mpi.comm;
    params : params;
    mutable phase : phase;
    mutable mpi : Mpi.pending option;
    mutable u : float array;  (* (rows + 2) * g, with ghost rows 0 and rows+1 *)
    rows : int;  (* interior rows owned by this rank *)
    mutable checksum : float;
  }

  let name = "bt_nas"

  let local_rows ~g ~size ~rank =
    let base = g / size and extra = g mod size in
    base + (if rank < extra then 1 else 0)

  let start args =
    let rank, size, vips, port, app = Mpi.parse_args args in
    let comm = Mpi.make ~rank ~size ~vips ~port in
    let params = params_of_value app in
    let rows = local_rows ~g:params.g ~size ~rank in
    let u =
      Array.init
        ((rows + 2) * params.g)
        (fun i ->
          (* deterministic nontrivial initial field *)
          let x = float_of_int (i mod params.g) /. float_of_int params.g in
          let y = float_of_int (i / params.g) /. float_of_int (rows + 2) in
          sin (3.0 *. x) *. cos (2.0 *. y) +. (0.01 *. float_of_int rank))
    in
    { comm; params; phase = Boot; mpi = None; u; rows; checksum = 0.0 }

  let g s = s.params.g
  let row s r = Array.sub s.u (r * g s) (g s)
  let set_row s r data = Array.blit data 0 s.u (r * g s) (g s)
  let has_up s = s.comm.rank > 0
  let has_down s = s.comm.rank < s.comm.size - 1

  (* One sweep of real numeric work: Thomas solves along x, then vertical
     relaxation.  Returns the compute action that charges virtual time. *)
  let compute_sweep s =
    let gg = g s in
    let a = -1.0 and b = 4.0 and c = -1.0 in
    let cp = Array.make gg 0.0 and dp = Array.make gg 0.0 in
    for r = 1 to s.rows do
      let base = r * gg in
      (* Thomas algorithm: solve tri(a,b,c) x = u_row *)
      cp.(0) <- c /. b;
      dp.(0) <- s.u.(base) /. b;
      for i = 1 to gg - 1 do
        let m = b -. (a *. cp.(i - 1)) in
        cp.(i) <- c /. m;
        dp.(i) <- (s.u.(base + i) -. (a *. dp.(i - 1))) /. m
      done;
      s.u.(base + gg - 1) <- dp.(gg - 1);
      for i = gg - 2 downto 0 do
        s.u.(base + i) <- dp.(i) -. (cp.(i) *. s.u.(base + i + 1))
      done
    done;
    (* vertical relaxation against neighbour rows (uses the halos) *)
    for r = 1 to s.rows do
      let base = r * gg in
      let up = (r - 1) * gg and dn = (r + 1) * gg in
      for i = 0 to gg - 1 do
        s.u.(base + i) <- (0.5 *. s.u.(base + i)) +. (0.25 *. (s.u.(up + i) +. s.u.(dn + i)))
      done
    done;
    Program.Compute
      (Simtime.ns (Stdlib.max 1 (s.rows * gg * s.params.ns_per_cell)))

  let enter_mpi s (pending, act) =
    s.mpi <- Some pending;
    act

  (* advance the halo-exchange machine; sends both boundary rows, then
     receives both ghost rows *)
  let rec exchange s it (stp : ex_step) : Program.action =
    s.phase <- Exchange (it, stp);
    match stp with
    | Send_up ->
      if has_up s then
        enter_mpi s
          (Mpi.send s.comm ~peer:(s.comm.rank - 1) ~tag:tag_halo
             (Floats.pack (row s 1)))
      else exchange s it Send_down
    | Send_down ->
      if has_down s then
        enter_mpi s
          (Mpi.send s.comm ~peer:(s.comm.rank + 1) ~tag:tag_halo
             (Floats.pack (row s s.rows)))
      else exchange s it Recv_up
    | Recv_up ->
      if has_up s then
        enter_mpi s (Mpi.recv s.comm ~src:(s.comm.rank - 1) ~tag:tag_halo)
      else exchange s it Recv_down
    | Recv_down ->
      if has_down s then
        enter_mpi s (Mpi.recv s.comm ~src:(s.comm.rank + 1) ~tag:tag_halo)
      else begin
        s.phase <- Computing it;
        compute_sweep s
      end

  let local_checksum s =
    let acc = ref 0.0 in
    for r = 1 to s.rows do
      for i = 0 to g s - 1 do
        let v = s.u.((r * g s) + i) in
        acc := !acc +. (v *. v)
      done
    done;
    !acc

  let rec continue s (r : Mpi.result) : Program.action =
    match (s.phase, r) with
    | _, Mpi.R_fail msg ->
      s.phase <- Done_phase;
      Program.Sys (Syscall.Log ("bt_nas: MPI failure: " ^ msg))
    | Initing, _ -> exchange s 0 Send_up
    | Exchange (it, Send_up), _ -> exchange s it Send_down
    | Exchange (it, Send_down), _ -> exchange s it Recv_up
    | Exchange (it, Recv_up), Mpi.R_msg { data; _ } ->
      set_row s 0 (Floats.unpack data);
      exchange s it Recv_down
    | Exchange (it, Recv_down), Mpi.R_msg { data; _ } ->
      set_row s (s.rows + 1) (Floats.unpack data);
      s.phase <- Computing it;
      compute_sweep s
    | Reducing, Mpi.R_floats totals ->
      s.checksum <- totals.(0);
      s.phase <- Done_phase;
      if s.comm.rank = 0 then
        Program.Sys
          (Syscall.Log (Printf.sprintf "bt_nas: checksum %.6e after %d iters" s.checksum
                          s.params.iters))
      else Program.Exit 0
    | (Boot | Exchange _ | Computing _ | Reducing | Done_phase), _ ->
      continue s (Mpi.R_fail "unexpected MPI result")

  let step s (outcome : Syscall.outcome) =
    match s.mpi with
    | Some pending ->
      (match Mpi.step s.comm pending outcome with
       | `Again (p, act) ->
         s.mpi <- Some p;
         (s, act)
       | `Done r ->
         s.mpi <- None;
         (s, continue s r))
    | None ->
      (match s.phase with
       | Boot ->
         (match outcome with
          | Syscall.Started ->
            let mem = s.params.mem_base + (s.params.mem_scaled / s.comm.size) in
            (s, Program.Sys (Syscall.Mem_alloc ("bt.rss", mem)))
          | _ ->
            s.phase <- Initing;
            (s, enter_mpi s (Mpi.init s.comm)))
       | Computing it ->
         (* sweep finished *)
         let it' = it + 1 in
         if it' < s.params.iters then (s, exchange s it' Send_up)
         else begin
           s.phase <- Reducing;
           (s, enter_mpi s (Mpi.allreduce_sum s.comm [| local_checksum s |]))
         end
       | Exchange _ -> (s, exchange s 0 Send_up)
       | Initing | Reducing -> (s, Program.Exit 1)
       | Done_phase -> (s, Program.Exit 0))

  let ex_to_int = function Send_up -> 0 | Send_down -> 1 | Recv_up -> 2 | Recv_down -> 3

  let ex_of_int = function
    | 0 -> Send_up
    | 1 -> Send_down
    | 2 -> Recv_up
    | _ -> Recv_down

  let phase_to_value = function
    | Boot -> Value.Tag ("boot", Value.Unit)
    | Initing -> Value.Tag ("initing", Value.Unit)
    | Exchange (it, stp) -> Value.Tag ("exchange", Value.List [ Value.Int it; Value.Int (ex_to_int stp) ])
    | Computing it -> Value.Tag ("computing", Value.Int it)
    | Reducing -> Value.Tag ("reducing", Value.Unit)
    | Done_phase -> Value.Tag ("done", Value.Unit)

  let phase_of_value v =
    match Value.to_tag v with
    | "boot", _ -> Boot
    | "initing", _ -> Initing
    | "exchange", Value.List [ Value.Int it; Value.Int stp ] -> Exchange (it, ex_of_int stp)
    | "computing", it -> Computing (Value.to_int it)
    | "reducing", _ -> Reducing
    | "done", _ -> Done_phase
    | t, _ -> Value.decode_error "bt phase %s" t

  let to_value s =
    Value.assoc
      [ ("comm", Mpi.comm_to_value s.comm);
        ("params", params_to_value s.params);
        ("phase", phase_to_value s.phase);
        ("mpi", Value.option Mpi.pending_to_value s.mpi);
        ("u", Value.f64s s.u);
        ("rows", Value.int s.rows);
        ("checksum", Value.float s.checksum) ]

  let of_value v =
    {
      comm = Mpi.comm_of_value (Value.field "comm" v);
      params = params_of_value (Value.field "params" v);
      phase = phase_of_value (Value.field "phase" v);
      mpi = Value.to_option Mpi.pending_of_value (Value.field "mpi" v);
      u = Value.to_f64s (Value.field "u" v);
      rows = Value.to_int (Value.field "rows" v);
      checksum = Value.to_float (Value.field "checksum" v);
    }
end

let register () = Program.register_if_absent (module P : Program.S)
