(** Binary serialization of {!Value.t}.

    Self-describing, length-safe format: each node is a one-byte tag followed
    by its payload; variable-length integers use LEB128.  Streams start with a
    4-byte magic and a format version so that images written by one "kernel"
    can be validated by another (the paper's portability requirement). *)

val format_version : int

val encode : Value.t -> string
(** Serialize with magic + version header. *)

val decode : string -> Value.t
(** @raise Value.Decode_error on corrupt input, bad magic, or version
    mismatch. *)

val encode_raw : Buffer.t -> Value.t -> unit
(** Headerless encode, appended to [buf] (used for nested streams). *)

val decode_raw : string -> int -> Value.t * int
(** [decode_raw s off] decodes one headerless value at [off]; returns the
    value and the offset just past it. *)

val encoded_size : Value.t -> int
(** Exact encoded size in bytes (without header). *)
