(** Portable intermediate representation for checkpoint data.

    The paper stresses that pod checkpoints record "higher-level semantic
    information specified in an intermediate format rather than kernel
    specific data in native format to keep the format portable across
    different kernels".  [Value.t] is that format: a small self-describing
    algebraic value.  Everything that goes into a checkpoint image — process
    state, socket state, queue contents, namespace tables — is first lowered
    to a [Value.t] and only then serialized by {!Wire}. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | F64s of float array  (** compact numeric payloads (grids, matrices) *)
  | List of t list
  | Assoc of (string * t) list  (** record-like, order-preserving *)
  | Tag of string * t  (** variant-like constructor wrapper *)

exception Decode_error of string

val decode_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Decode_error} with a formatted message. *)

(** {1 Constructors} *)

val unit : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val str : string -> t
val f64s : float array -> t
val list : ('a -> t) -> 'a list -> t
val assoc : (string * t) list -> t
val tag : string -> t -> t
val option : ('a -> t) -> 'a option -> t
val pair : ('a -> t) -> ('b -> t) -> 'a * 'b -> t

(** {1 Accessors}

    All raise {!Decode_error} on shape mismatch. *)

val to_unit : t -> unit
val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
val to_str : t -> string
val to_f64s : t -> float array
val to_list : (t -> 'a) -> t -> 'a list
val to_assoc : t -> (string * t) list
val to_tag : t -> string * t
val to_option : (t -> 'a) -> t -> 'a option
val to_pair : (t -> 'a) -> (t -> 'b) -> t -> 'a * 'b

val field : string -> t -> t
(** [field k v] looks up key [k] in an [Assoc]. *)

val field_opt : string -> t -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val size_estimate : t -> int
(** Approximate encoded size in bytes (used for image-size accounting
    before serialization). *)
