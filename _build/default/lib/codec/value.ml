type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | F64s of float array
  | List of t list
  | Assoc of (string * t) list
  | Tag of string * t

exception Decode_error of string

let decode_error fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let unit = Unit
let bool b = Bool b
let int n = Int n
let float f = Float f
let str s = Str s
let f64s a = F64s a
let list f xs = List (List.map f xs)
let assoc kvs = Assoc kvs
let tag name v = Tag (name, v)

let option f = function None -> Tag ("none", Unit) | Some x -> Tag ("some", f x)
let pair fa fb (a, b) = List [ fa a; fb b ]

let kind = function
  | Unit -> "unit"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "str"
  | F64s _ -> "f64s"
  | List _ -> "list"
  | Assoc _ -> "assoc"
  | Tag _ -> "tag"

let to_unit = function Unit -> () | v -> decode_error "expected unit, got %s" (kind v)
let to_bool = function Bool b -> b | v -> decode_error "expected bool, got %s" (kind v)
let to_int = function Int n -> n | v -> decode_error "expected int, got %s" (kind v)

let to_float = function
  | Float f -> f
  | Int n -> float_of_int n
  | v -> decode_error "expected float, got %s" (kind v)

let to_str = function Str s -> s | v -> decode_error "expected str, got %s" (kind v)
let to_f64s = function F64s a -> a | v -> decode_error "expected f64s, got %s" (kind v)

let to_list f = function
  | List xs -> List.map f xs
  | v -> decode_error "expected list, got %s" (kind v)

let to_assoc = function
  | Assoc kvs -> kvs
  | v -> decode_error "expected assoc, got %s" (kind v)

let to_tag = function
  | Tag (name, v) -> (name, v)
  | v -> decode_error "expected tag, got %s" (kind v)

let to_option f v =
  match to_tag v with
  | "none", Unit -> None
  | "some", x -> Some (f x)
  | name, _ -> decode_error "expected option, got tag %s" name

let to_pair fa fb = function
  | List [ a; b ] -> (fa a, fb b)
  | v -> decode_error "expected pair, got %s" (kind v)

let field_opt k v =
  match v with
  | Assoc kvs -> List.assoc_opt k kvs
  | _ -> decode_error "expected assoc for field %s, got %s" k (kind v)

let field k v =
  match field_opt k v with
  | Some x -> x
  | None -> decode_error "missing field %s" k

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | F64s x, F64s y ->
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri (fun i v -> if not (Float.equal v y.(i)) then ok := false) x;
        !ok)
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Assoc x, Assoc y ->
    List.length x = List.length y
    && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | Tag (n1, v1), Tag (n2, v2) -> String.equal n1 n2 && equal v1 v2
  | (Unit | Bool _ | Int _ | Float _ | Str _ | F64s _ | List _ | Assoc _ | Tag _), _ ->
    false

let rec pp ppf = function
  | Unit -> Format.fprintf ppf "()"
  | Bool b -> Format.fprintf ppf "%b" b
  | Int n -> Format.fprintf ppf "%d" n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s ->
    if String.length s > 32 then Format.fprintf ppf "%S..(%d)" (String.sub s 0 32) (String.length s)
    else Format.fprintf ppf "%S" s
  | F64s a -> Format.fprintf ppf "<f64s:%d>" (Array.length a)
  | List xs ->
    Format.fprintf ppf "[@[%a@]]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp) xs
  | Assoc kvs ->
    let pp_kv ppf (k, v) = Format.fprintf ppf "%s=%a" k pp v in
    Format.fprintf ppf "{@[%a@]}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_kv) kvs
  | Tag (name, v) -> Format.fprintf ppf "%s(%a)" name pp v

let rec size_estimate = function
  | Unit -> 1
  | Bool _ -> 2
  | Int _ -> 5
  | Float _ -> 9
  | Str s -> 5 + String.length s
  | F64s a -> 5 + (8 * Array.length a)
  | List xs -> List.fold_left (fun acc v -> acc + size_estimate v) 5 xs
  | Assoc kvs -> List.fold_left (fun acc (k, v) -> acc + 5 + String.length k + size_estimate v) 5 kvs
  | Tag (name, v) -> 5 + String.length name + size_estimate v
