lib/codec/wire.mli: Buffer Value
