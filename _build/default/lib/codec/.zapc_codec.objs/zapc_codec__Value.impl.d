lib/codec/value.ml: Array Float Format List String
