lib/codec/wire.ml: Array Buffer Char Int64 List String Value
