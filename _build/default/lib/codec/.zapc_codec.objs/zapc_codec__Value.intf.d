lib/codec/value.mli: Format
