let format_version = 2
let magic = "ZPC1"

(* Node tags.  Ints are split into small non-negative (inline) and LEB128
   zigzag forms to keep typical images compact. *)
let t_unit = 0x00
let t_false = 0x01
let t_true = 0x02
let t_int = 0x03
let t_float = 0x04
let t_str = 0x05
let t_f64s = 0x06
let t_list = 0x07
let t_assoc = 0x08
let t_tag = 0x09
let t_smallint = 0x80 (* 0x80 + n for n in [0,0x7f) *)

let put_varint buf n =
  (* LEB128 on the zigzag encoding so negative ints stay short.  The zigzag
     pattern is treated as a raw 63-bit word: [lsr] shifts in zeros, so the
     loop terminates even for patterns with the top bit set (e.g. min_int). *)
  let z = (n lsl 1) lxor (n asr 62) in
  let rec go z =
    if z land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr (z land 0x7f))
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (z land 0x7f)));
      go (z lsr 7)
    end
  in
  go z

let get_varint s off =
  let rec go acc shift off =
    if off >= String.length s then Value.decode_error "truncated varint";
    let b = Char.code s.[off] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then (acc, off + 1) else go acc (shift + 7) (off + 1)
  in
  let z, off = go 0 0 off in
  let n = (z lsr 1) lxor (-(z land 1)) in
  (n, off)

let rec encode_raw buf (v : Value.t) =
  match v with
  | Unit -> Buffer.add_char buf (Char.chr t_unit)
  | Bool false -> Buffer.add_char buf (Char.chr t_false)
  | Bool true -> Buffer.add_char buf (Char.chr t_true)
  | Int n ->
    if n >= 0 && n < 0x7f then Buffer.add_char buf (Char.chr (t_smallint + n))
    else begin
      Buffer.add_char buf (Char.chr t_int);
      put_varint buf n
    end
  | Float f ->
    Buffer.add_char buf (Char.chr t_float);
    Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Str s ->
    Buffer.add_char buf (Char.chr t_str);
    put_varint buf (String.length s);
    Buffer.add_string buf s
  | F64s a ->
    Buffer.add_char buf (Char.chr t_f64s);
    put_varint buf (Array.length a);
    Array.iter (fun f -> Buffer.add_int64_le buf (Int64.bits_of_float f)) a
  | List xs ->
    Buffer.add_char buf (Char.chr t_list);
    put_varint buf (List.length xs);
    List.iter (encode_raw buf) xs
  | Assoc kvs ->
    Buffer.add_char buf (Char.chr t_assoc);
    put_varint buf (List.length kvs);
    List.iter
      (fun (k, v) ->
        put_varint buf (String.length k);
        Buffer.add_string buf k;
        encode_raw buf v)
      kvs
  | Tag (name, v) ->
    Buffer.add_char buf (Char.chr t_tag);
    put_varint buf (String.length name);
    Buffer.add_string buf name;
    encode_raw buf v

let need s off n =
  if off + n > String.length s then Value.decode_error "truncated stream at %d" off

let get_f64 s off =
  need s off 8;
  let bits = String.get_int64_le s off in
  (Int64.float_of_bits bits, off + 8)

let get_str s off =
  let n, off = get_varint s off in
  if n < 0 then Value.decode_error "negative length";
  need s off n;
  (String.sub s off n, off + n)

let rec decode_raw s off : Value.t * int =
  need s off 1;
  let tag = Char.code s.[off] in
  let off = off + 1 in
  if tag >= t_smallint then (Value.Int (tag - t_smallint), off)
  else if tag = t_unit then (Value.Unit, off)
  else if tag = t_false then (Value.Bool false, off)
  else if tag = t_true then (Value.Bool true, off)
  else if tag = t_int then
    let n, off = get_varint s off in
    (Value.Int n, off)
  else if tag = t_float then
    let f, off = get_f64 s off in
    (Value.Float f, off)
  else if tag = t_str then
    let str, off = get_str s off in
    (Value.Str str, off)
  else if tag = t_f64s then begin
    let n, off = get_varint s off in
    if n < 0 then Value.decode_error "negative f64s length";
    need s off (8 * n);
    let a = Array.make n 0.0 in
    let off = ref off in
    for i = 0 to n - 1 do
      let f, o = get_f64 s !off in
      a.(i) <- f;
      off := o
    done;
    (Value.F64s a, !off)
  end
  else if tag = t_list then begin
    let n, off = get_varint s off in
    if n < 0 then Value.decode_error "negative list length";
    let rec go acc off i =
      if i = 0 then (List.rev acc, off)
      else
        let v, off = decode_raw s off in
        go (v :: acc) off (i - 1)
    in
    let xs, off = go [] off n in
    (Value.List xs, off)
  end
  else if tag = t_assoc then begin
    let n, off = get_varint s off in
    if n < 0 then Value.decode_error "negative assoc length";
    let rec go acc off i =
      if i = 0 then (List.rev acc, off)
      else
        let k, off = get_str s off in
        let v, off = decode_raw s off in
        go ((k, v) :: acc) off (i - 1)
    in
    let kvs, off = go [] off n in
    (Value.Assoc kvs, off)
  end
  else if tag = t_tag then begin
    let name, off = get_str s off in
    let v, off = decode_raw s off in
    (Value.Tag (name, v), off)
  end
  else Value.decode_error "unknown wire tag 0x%02x at %d" tag (off - 1)

let encode v =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr format_version);
  encode_raw buf v;
  Buffer.contents buf

let decode s =
  if String.length s < 5 then Value.decode_error "stream too short";
  if not (String.equal (String.sub s 0 4) magic) then Value.decode_error "bad magic";
  let version = Char.code s.[4] in
  if version <> format_version then
    Value.decode_error "format version mismatch: got %d, want %d" version format_version;
  let v, off = decode_raw s 5 in
  if off <> String.length s then Value.decode_error "trailing garbage at %d" off;
  v

let encoded_size v =
  let buf = Buffer.create 256 in
  encode_raw buf v;
  Buffer.length buf
