(* The checkpoint *meta-data*: the table of network connections of a pod
   (paper section 4).  Source and target are virtual addresses (they stay
   valid across migration); [state] reflects the connection; the PCB
   sequence numbers sent/recv/acked ride along because they are exactly the
   "minimal protocol specific state" the restart needs (section 5).

   At restart the Manager merges the per-pod tables, decides for every
   connection which endpoint will connect and which will accept, and hands
   each Agent back its entries extended with the peer's sequence numbers. *)

module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr

type conn_state =
  | Full  (* full-duplex established *)
  | Half_out  (* we have shut down our write side (FIN sent or queued) *)
  | Half_in  (* peer's FIN received *)
  | Closed_data  (* both directions shut, possibly unread data left *)
  | Connecting  (* transient, not yet established: re-initiated on restart *)

let conn_state_to_string = function
  | Full -> "full"
  | Half_out -> "half_out"
  | Half_in -> "half_in"
  | Closed_data -> "closed"
  | Connecting -> "connecting"

let conn_state_of_string = function
  | "full" -> Full
  | "half_out" -> Half_out
  | "half_in" -> Half_in
  | "closed" -> Closed_data
  | "connecting" -> Connecting
  | s -> Value.decode_error "conn_state %s" s

type role = Accept | Connect

type entry = {
  local : Addr.t;  (* virtual *)
  remote : Addr.t;  (* virtual *)
  state : conn_state;
  role : role;  (* provenance: did accept() create this endpoint? *)
  sent : int;  (* snd_nxt *)
  recv : int;  (* rcv_nxt *)
  acked : int;  (* snd_una *)
  sock_ref : int;  (* index into the pod image's socket list *)
}

type pod_meta = { pm_pod : int; pm_vip : Addr.ip; pm_entries : entry list }

let role_to_string = function Accept -> "accept" | Connect -> "connect"

let role_of_string = function
  | "accept" -> Accept
  | "connect" -> Connect
  | s -> Value.decode_error "role %s" s

let entry_to_value e =
  Value.assoc
    [ ("local", Addr.to_value e.local);
      ("remote", Addr.to_value e.remote);
      ("state", Value.str (conn_state_to_string e.state));
      ("role", Value.str (role_to_string e.role));
      ("sent", Value.int e.sent);
      ("recv", Value.int e.recv);
      ("acked", Value.int e.acked);
      ("sock_ref", Value.int e.sock_ref) ]

let entry_of_value v =
  {
    local = Addr.of_value (Value.field "local" v);
    remote = Addr.of_value (Value.field "remote" v);
    state = conn_state_of_string (Value.to_str (Value.field "state" v));
    role = role_of_string (Value.to_str (Value.field "role" v));
    sent = Value.to_int (Value.field "sent" v);
    recv = Value.to_int (Value.field "recv" v);
    acked = Value.to_int (Value.field "acked" v);
    sock_ref = Value.to_int (Value.field "sock_ref" v);
  }

let to_value pm =
  Value.assoc
    [ ("pod", Value.int pm.pm_pod);
      ("vip", Value.int pm.pm_vip);
      ("entries", Value.list entry_to_value pm.pm_entries) ]

let of_value v =
  {
    pm_pod = Value.to_int (Value.field "pod" v);
    pm_vip = Value.to_int (Value.field "vip" v);
    pm_entries = Value.to_list entry_of_value (Value.field "entries" v);
  }

let size_bytes pm = Zapc_codec.Wire.encoded_size (to_value pm)

(* --- restart-side instructions ---

   One per re-establishable connection endpoint, produced by the Manager
   from the merged tables.  [ri_peer_recv] is the peer's rcv_nxt: the data
   our send queue holds below it is already in the peer's receive queue and
   must be discarded before resending (Figure 4's overlap). *)

type restart_entry = {
  ri_local : Addr.t;  (* virtual *)
  ri_remote : Addr.t;  (* virtual *)
  ri_role : role;  (* final schedule decision *)
  ri_state : conn_state;
  ri_sock_ref : int;
  ri_peer_recv : int;
  ri_orphan : bool;  (* peer endpoint no longer exists: restore detached *)
}

let restart_entry_to_value e =
  Value.assoc
    [ ("local", Addr.to_value e.ri_local);
      ("remote", Addr.to_value e.ri_remote);
      ("role", Value.str (role_to_string e.ri_role));
      ("state", Value.str (conn_state_to_string e.ri_state));
      ("sock_ref", Value.int e.ri_sock_ref);
      ("peer_recv", Value.int e.ri_peer_recv);
      ("orphan", Value.bool e.ri_orphan) ]

let restart_entry_of_value v =
  {
    ri_local = Addr.of_value (Value.field "local" v);
    ri_remote = Addr.of_value (Value.field "remote" v);
    ri_role = role_of_string (Value.to_str (Value.field "role" v));
    ri_state = conn_state_of_string (Value.to_str (Value.field "state" v));
    ri_sock_ref = Value.to_int (Value.field "sock_ref" v);
    ri_peer_recv = Value.to_int (Value.field "peer_recv" v);
    ri_orphan = Value.to_bool (Value.field "orphan" v);
  }

(* Merge the per-pod tables and derive the restart schedule.

   Pairing: entries match when (local, remote) of one equals (remote, local)
   of the other.  For paired connections the endpoint whose socket was born
   by accept() accepts again — this automatically keeps connections that
   share a source port (they all came from the same listening socket) on
   the accepting side, the constraint of section 4.  Unpaired endpoints are
   restored detached (orphans); Connecting endpoints are skipped entirely
   (the blocked connect call re-executes after restart). *)
let build_schedule (pms : pod_meta list) : (int * restart_entry list) list =
  let all = List.concat_map (fun pm -> List.map (fun e -> (pm, e)) pm.pm_entries) pms in
  let find_peer (e : entry) =
    List.find_opt
      (fun (_, e') -> Addr.equal e'.local e.remote && Addr.equal e'.remote e.local)
      all
  in
  let for_pod pm =
    let entries =
      List.filter_map
        (fun e ->
          match e.state with
          | Connecting -> None
          | Full | Half_out | Half_in | Closed_data ->
            (match find_peer e with
             | Some (_, peer) when peer.state <> Connecting ->
               let role =
                 match (e.role, peer.role) with
                 | Accept, _ -> Accept
                 | Connect, Accept -> Connect
                 | Connect, Connect ->
                   (* no provenance information: break the tie determinately *)
                   if Addr.compare e.local e.remote < 0 then Accept else Connect
               in
               Some
                 { ri_local = e.local; ri_remote = e.remote; ri_role = role;
                   ri_state = e.state; ri_sock_ref = e.sock_ref;
                   ri_peer_recv = peer.recv; ri_orphan = false }
             | Some _ | None ->
               Some
                 { ri_local = e.local; ri_remote = e.remote; ri_role = e.role;
                   ri_state = e.state; ri_sock_ref = e.sock_ref; ri_peer_recv = e.acked;
                   ri_orphan = true }))
        pm.pm_entries
    in
    (pm.pm_pod, entries)
  in
  List.map for_pod pms
