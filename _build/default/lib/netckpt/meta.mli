(** The checkpoint {e meta-data}: the table of network connections of a pod
    (paper section 4).

    Source and target are virtual addresses, so entries stay valid across
    migration; [state] reflects the connection (full-duplex, half-duplex in
    either direction, closed-with-unread-data, or the transient connecting
    state); the PCB sequence numbers sent/recv/acked ride along because they
    are exactly the "minimal protocol specific state" restart needs
    (section 5).

    At restart the Manager merges the per-pod tables, decides for every
    connection which endpoint connects and which accepts, and hands each
    Agent its entries extended with the peer's sequence numbers. *)

module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr

type conn_state =
  | Full  (** full-duplex established *)
  | Half_out  (** this side has shut down its write direction *)
  | Half_in  (** the peer's FIN has been received *)
  | Closed_data  (** both directions shut; unread data may remain *)
  | Connecting  (** transient, not yet established: re-initiated on restart *)

val conn_state_to_string : conn_state -> string
val conn_state_of_string : string -> conn_state

type role = Accept | Connect

type entry = {
  local : Addr.t;  (** virtual *)
  remote : Addr.t;  (** virtual *)
  state : conn_state;
  role : role;  (** provenance: did accept() create this endpoint? *)
  sent : int;  (** snd_nxt *)
  recv : int;  (** rcv_nxt *)
  acked : int;  (** snd_una *)
  sock_ref : int;  (** index into the pod image's socket list *)
}

type pod_meta = { pm_pod : int; pm_vip : Addr.ip; pm_entries : entry list }

val entry_to_value : entry -> Value.t
val entry_of_value : Value.t -> entry
val to_value : pod_meta -> Value.t
val of_value : Value.t -> pod_meta
val size_bytes : pod_meta -> int

type restart_entry = {
  ri_local : Addr.t;
  ri_remote : Addr.t;
  ri_role : role;  (** final schedule decision *)
  ri_state : conn_state;
  ri_sock_ref : int;
  ri_peer_recv : int;
      (** the peer's rcv_nxt: our send queue below it is already in the
          peer's receive queue and must be discarded (Figure 4 overlap) *)
  ri_orphan : bool;  (** peer endpoint no longer exists: restore detached *)
}

val restart_entry_to_value : restart_entry -> Value.t
val restart_entry_of_value : Value.t -> restart_entry

val build_schedule : pod_meta list -> (int * restart_entry list) list
(** Merge the per-pod tables and derive the restart schedule, keyed by pod.

    Pairing: entries match when one's (local, remote) equals the other's
    (remote, local).  For paired connections the endpoint born by accept()
    accepts again — which automatically keeps connections sharing a source
    port (born from the same listening socket) on the accepting side, the
    constraint of section 4.  Unpaired endpoints are restored detached;
    Connecting endpoints are skipped entirely (the blocked connect call
    re-executes after restart). *)
