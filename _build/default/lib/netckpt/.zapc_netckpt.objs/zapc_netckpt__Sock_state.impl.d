lib/netckpt/sock_state.ml: Buffer Char List Meta Option Queue String Zapc_codec Zapc_pod Zapc_simnet
