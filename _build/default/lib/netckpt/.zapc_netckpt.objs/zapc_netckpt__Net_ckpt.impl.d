lib/netckpt/net_ckpt.ml: Array Hashtbl Int List Meta Queue Sock_state Zapc_codec Zapc_pod Zapc_simnet Zapc_simos
