lib/netckpt/sock_state.mli: Meta Zapc_codec Zapc_pod Zapc_simnet
