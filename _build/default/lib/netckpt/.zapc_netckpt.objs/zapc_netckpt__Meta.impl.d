lib/netckpt/meta.ml: List Zapc_codec Zapc_simnet
