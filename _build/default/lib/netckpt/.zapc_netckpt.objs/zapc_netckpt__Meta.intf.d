lib/netckpt/meta.mli: Zapc_codec Zapc_simnet
