lib/netckpt/net_ckpt.mli: Hashtbl Meta Sock_state Zapc_codec Zapc_pod Zapc_simnet
