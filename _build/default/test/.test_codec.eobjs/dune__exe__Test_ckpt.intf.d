test/test_ckpt.mli:
