test/test_sim.ml: Alcotest Int List QCheck QCheck_alcotest Zapc_sim
