test/test_msg.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest String Zapc Zapc_apps Zapc_codec Zapc_msg Zapc_pod Zapc_sim Zapc_simos
