test/test_pod.mli:
