test/test_simnet.ml: Alcotest Buffer Char Gen Int List Option Printf QCheck QCheck_alcotest Queue String Zapc_sim Zapc_simnet
