test/test_msg.mli:
