test/test_pod.ml: Alcotest List Printf String Zapc_codec Zapc_pod Zapc_sim Zapc_simnet Zapc_simos
