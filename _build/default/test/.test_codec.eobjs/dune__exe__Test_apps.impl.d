test/test_apps.ml: Alcotest Float Lazy List Option Printf QCheck QCheck_alcotest Scanf String Zapc Zapc_apps Zapc_codec Zapc_msg Zapc_pod Zapc_sim Zapc_simos
