test/test_zapc.mli:
