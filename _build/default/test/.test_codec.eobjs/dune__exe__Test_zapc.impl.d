test/test_zapc.ml: Alcotest Array Bytes Int Int32 List Option Printf String Zapc Zapc_apps Zapc_codec Zapc_msg Zapc_netckpt Zapc_pod Zapc_sim Zapc_simnet Zapc_simos
