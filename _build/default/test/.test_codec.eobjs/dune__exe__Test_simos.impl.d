test/test_simos.ml: Alcotest List Printf String Zapc_codec Zapc_sim Zapc_simnet Zapc_simos
