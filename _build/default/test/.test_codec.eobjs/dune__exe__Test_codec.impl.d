test/test_codec.ml: Alcotest Array Bytes Char Float Gen List QCheck QCheck_alcotest String Zapc_codec
