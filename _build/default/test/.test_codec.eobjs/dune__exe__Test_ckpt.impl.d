test/test_ckpt.ml: Alcotest List Option String Zapc_ckpt Zapc_codec Zapc_netckpt Zapc_pod Zapc_sim Zapc_simnet Zapc_simos
