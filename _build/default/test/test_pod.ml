(* Tests for the pod virtualization layer: virtual PID and address
   namespaces, system-call interposition, suspend/resume, and time
   virtualization. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr
module Fabric = Zapc_simnet.Fabric
module Socket = Zapc_simnet.Socket
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Program = Zapc_simos.Program
module Signal = Zapc_simos.Signal
module Syscall = Zapc_simos.Syscall
module Namespace = Zapc_pod.Namespace
module Pod = Zapc_pod.Pod

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let logged : string list ref = ref []

type env = { engine : Engine.t; fabric : Fabric.t; k0 : Kernel.t; k1 : Kernel.t }

let next_pod_id = ref 1000

let make_env () =
  let engine = Engine.create ~seed:5 () in
  let fabric = Fabric.create engine in
  let k0 = Kernel.create ~node_id:0 fabric in
  let k1 = Kernel.create ~node_id:1 fabric in
  let log k = Kernel.set_logger k (fun _ _ m -> logged := m :: !logged) in
  log k0;
  log k1;
  logged := [];
  { engine; fabric; k0; k1 }

let fresh_pod env ?(kernel = env.k0) ~vip_last ~rip_last () =
  incr next_pod_id;
  Pod.create ~pod_id:!next_pod_id
    ~name:(Printf.sprintf "pod%d" !next_pod_id)
    ~vip:(Addr.make_ip 10 1 0 vip_last)
    ~rip:(Addr.make_ip 172 16 0 rip_last)
    kernel

let run env = Engine.run ~max_events:500_000 env.engine

(* --- programs --- *)

module Pid_logger = struct
  type state = int

  let name = "podtest.pid_logger"
  let start _ = 0

  let step phase (outcome : Syscall.outcome) =
    match (phase, outcome) with
    | 0, _ -> (1, Program.Sys Syscall.Getpid)
    | 1, Syscall.Ret (Syscall.Rint pid) ->
      (2, Program.Sys (Syscall.Log (Printf.sprintf "pid=%d" pid)))
    | _, _ -> (2, Program.Exit 0)

  let to_value p = Value.Int p
  let of_value = Value.to_int
end

module Long_sleeper = struct
  type state = int

  let name = "podtest.long_sleeper"
  let start _ = 0

  let step phase (_ : Syscall.outcome) =
    match phase with
    | 0 -> (1, Program.Sys (Syscall.Nanosleep (Simtime.sec 100.0)))
    | _ -> (1, Program.Exit 0)

  let to_value p = Value.Int p
  let of_value = Value.to_int
end

module Killer = struct
  type state = int * int  (* phase, target vpid *)

  let name = "podtest.killer"
  let start args = (0, Value.to_int args)

  let step (phase, target) (outcome : Syscall.outcome) =
    match (phase, outcome) with
    | 0, _ -> ((1, target), Program.Sys (Syscall.Kill (target, Signal.Sigkill)))
    | 1, Syscall.Ret _ -> ((2, target), Program.Sys (Syscall.Log "killed"))
    | 1, Syscall.Err e ->
      ((2, target), Program.Sys (Syscall.Log ("kill failed: " ^ Zapc_simnet.Errno.to_string e)))
    | _, _ -> ((2, target), Program.Exit 0)

  let to_value (a, b) = Value.List [ Value.Int a; Value.Int b ]

  let of_value = function
    | Value.List [ Value.Int a; Value.Int b ] -> (a, b)
    | _ -> failwith "bad"
end

(* listens on a port inside its pod, accepts one connection, logs the
   peer's (virtual) address and the received data *)
module Podserver = struct
  type state = int * int  (* phase, fd *)

  let name = "podtest.server"
  let start _ = (0, -1)

  let step (phase, fd) (outcome : Syscall.outcome) =
    match (phase, outcome) with
    | 0, _ -> ((1, fd), Program.Sys (Syscall.Sock_create Socket.Stream))
    | 1, Syscall.Ret (Syscall.Rint fd) ->
      ((2, fd), Program.Sys (Syscall.Bind (fd, { Addr.ip = Addr.any; port = 4242 })))
    | 2, _ -> ((3, fd), Program.Sys (Syscall.Listen (fd, 4)))
    | 3, _ -> ((4, fd), Program.Sys (Syscall.Accept fd))
    | 4, Syscall.Ret (Syscall.Raccept (cfd, peer)) ->
      ( (5, cfd),
        Program.Sys (Syscall.Log (Printf.sprintf "peer=%s" (Addr.ip_to_string peer.Addr.ip))) )
    | 5, _ -> ((6, fd), Program.Sys (Syscall.Recv (fd, 100, Socket.plain_recv)))
    | 6, Syscall.Ret (Syscall.Rdata d) -> ((7, fd), Program.Sys (Syscall.Log ("got: " ^ d)))
    | _, _ -> ((7, fd), Program.Exit 0)

  let to_value (a, b) = Value.List [ Value.Int a; Value.Int b ]

  let of_value = function
    | Value.List [ Value.Int a; Value.Int b ] -> (a, b)
    | _ -> failwith "bad"
end

module Podclient = struct
  type state = int * int * int  (* phase, fd, server vip *)

  let name = "podtest.client"
  let start args = (0, -1, Value.to_int args)

  let step (phase, fd, vip) (outcome : Syscall.outcome) =
    match (phase, outcome) with
    | 0, _ -> ((1, fd, vip), Program.Sys (Syscall.Sock_create Socket.Stream))
    | 1, Syscall.Ret (Syscall.Rint fd) ->
      ((2, fd, vip), Program.Sys (Syscall.Connect (fd, { Addr.ip = vip; port = 4242 })))
    | 2, Syscall.Ret _ -> ((3, fd, vip), Program.Sys (Syscall.Send (fd, "virtual hello")))
    | 2, Syscall.Err e ->
      ((4, fd, vip), Program.Sys (Syscall.Log ("connect failed: " ^ Zapc_simnet.Errno.to_string e)))
    | 3, _ -> ((4, fd, vip), Program.Sys (Syscall.Getsockname fd))
    | 4, Syscall.Ret (Syscall.Raddr a) ->
      ((5, fd, vip), Program.Sys (Syscall.Log (Printf.sprintf "myaddr=%s" (Addr.ip_to_string a.Addr.ip))))
    | _, _ -> ((5, fd, vip), Program.Exit 0)

  let to_value (a, b, c) = Value.List [ Value.Int a; Value.Int b; Value.Int c ]

  let of_value = function
    | Value.List [ Value.Int a; Value.Int b; Value.Int c ] -> (a, b, c)
    | _ -> failwith "bad"
end

(* writes a file in its (chrooted) namespace and lists what it sees *)
module Fs_writer = struct
  type state = int * string  (* phase, payload *)

  let name = "podtest.fs_writer"
  let start args = (0, Value.to_str args)

  let step (phase, payload) (outcome : Syscall.outcome) =
    match (phase, outcome) with
    | 0, _ -> ((1, payload), Program.Sys (Syscall.Fs_put ("/data.txt", payload)))
    | 1, _ -> ((2, payload), Program.Sys (Syscall.Fs_get "/data.txt"))
    | 2, Syscall.Ret (Syscall.Rdata d) ->
      ((3, payload), Program.Sys (Syscall.Log ("read: " ^ d)))
    | 3, _ -> ((4, payload), Program.Sys (Syscall.Fs_list "/"))
    | 4, Syscall.Ret (Syscall.Rnames names) ->
      ((5, payload), Program.Sys (Syscall.Log ("ls: " ^ String.concat "," names)))
    | _, _ -> ((5, payload), Program.Exit 0)

  let to_value (p, s) = Value.List [ Value.Int p; Value.Str s ]

  let of_value = function
    | Value.List [ Value.Int p; Value.Str s ] -> (p, s)
    | _ -> failwith "bad"
end

module Clock_logger = struct
  type state = int

  let name = "podtest.clock"
  let start _ = 0

  let step phase (outcome : Syscall.outcome) =
    match (phase, outcome) with
    | 0, _ -> (1, Program.Sys Syscall.Clock_gettime)
    | 1, Syscall.Ret (Syscall.Rtime t) ->
      (2, Program.Sys (Syscall.Log (Printf.sprintf "clock=%d" t)))
    | _, _ -> (2, Program.Exit 0)

  let to_value p = Value.Int p
  let of_value = Value.to_int
end

let registered = ref false

let register_programs () =
  if not !registered then begin
    registered := true;
    List.iter Program.register_if_absent
      [ (module Pid_logger : Program.S); (module Long_sleeper : Program.S);
        (module Killer : Program.S); (module Podserver : Program.S);
        (module Podclient : Program.S); (module Clock_logger : Program.S);
        (module Fs_writer : Program.S) ]
  end

(* --- namespace unit tests --- *)

let test_namespace_pids () =
  let ns = Namespace.create () in
  let v1 = Namespace.fresh_vpid ns 501 in
  let v2 = Namespace.fresh_vpid ns 502 in
  check tint "first vpid" 1 v1;
  check tint "second vpid" 2 v2;
  check tbool "rpid lookup" true (Namespace.rpid_of_vpid ns 1 = Some 501);
  check tbool "vpid lookup" true (Namespace.vpid_of_rpid ns 502 = Some 2);
  Namespace.forget_rpid ns 501;
  check tbool "forgotten" true (Namespace.rpid_of_vpid ns 1 = None);
  Namespace.bind_vpid ns ~vpid:7 ~rpid:900;
  check tbool "explicit bind" true (Namespace.vpid_of_rpid ns 900 = Some 7);
  let v3 = Namespace.fresh_vpid ns 903 in
  check tbool "next_vpid advanced past bound" true (v3 > 7)

let test_namespace_addrs () =
  let ns = Namespace.create () in
  let vip = Addr.make_ip 10 1 0 1 and rip = Addr.make_ip 172 16 0 5 in
  Namespace.set_vip_map ns [ (vip, rip) ];
  check tbool "out" true
    (Addr.equal (Namespace.translate_addr_out ns { Addr.ip = vip; port = 80 })
       { Addr.ip = rip; port = 80 });
  check tbool "in" true
    (Addr.equal (Namespace.translate_addr_in ns { Addr.ip = rip; port = 81 })
       { Addr.ip = vip; port = 81 });
  (* unknown addresses pass through unchanged *)
  let other = Addr.make_ip 8 8 8 8 in
  check tbool "unknown unchanged" true
    (Addr.equal_ip (Namespace.translate_addr_out ns { Addr.ip = other; port = 1 }).Addr.ip other)

(* --- pod behaviour --- *)

let test_getpid_virtualized () =
  register_programs ();
  let env = make_env () in
  let pod = fresh_pod env ~vip_last:1 ~rip_last:1 () in
  let _p1 = Pod.spawn pod ~program:"podtest.pid_logger" ~args:Value.Unit in
  let _p2 = Pod.spawn pod ~program:"podtest.pid_logger" ~args:Value.Unit in
  run env;
  (* both report their vpids (1 and 2), not the host pids (which are >= 100) *)
  check tbool "vpid 1" true (List.mem "pid=1" !logged);
  check tbool "vpid 2" true (List.mem "pid=2" !logged)

let test_kill_by_vpid () =
  register_programs ();
  let env = make_env () in
  let pod = fresh_pod env ~vip_last:1 ~rip_last:1 () in
  let victim = Pod.spawn pod ~program:"podtest.long_sleeper" ~args:Value.Unit in
  (* victim got vpid 1 *)
  let _killer = Pod.spawn pod ~program:"podtest.killer" ~args:(Value.Int 1) in
  run env;
  check tbool "killed log" true (List.mem "killed" !logged);
  check tbool "victim dead" true (victim.Proc.exit_code = Some 137)

let test_kill_unknown_vpid_esrch () =
  register_programs ();
  let env = make_env () in
  let pod = fresh_pod env ~vip_last:1 ~rip_last:1 () in
  let _killer = Pod.spawn pod ~program:"podtest.killer" ~args:(Value.Int 99) in
  run env;
  check tbool "esrch" true (List.mem "kill failed: ESRCH" !logged)

let test_virtual_addresses_end_to_end () =
  register_programs ();
  let env = make_env () in
  let pa = fresh_pod env ~kernel:env.k0 ~vip_last:1 ~rip_last:1 () in
  let pb = fresh_pod env ~kernel:env.k1 ~vip_last:2 ~rip_last:2 () in
  (* the rip of pb lives on node 1 even though both pods share subnet 172.16.0 *)
  pb.Pod.rip <- Addr.make_ip 172 16 1 2;
  (* recreate registration under the corrected rip *)
  Zapc_simnet.Netstack.remove_ip (Kernel.netstack env.k1) (Addr.make_ip 172 16 0 2);
  Zapc_simnet.Netstack.add_ip (Kernel.netstack env.k1) pb.Pod.rip;
  let map = [ (pa.Pod.vip, pa.Pod.rip); (pb.Pod.vip, pb.Pod.rip) ] in
  Pod.set_vip_map pa map;
  Pod.set_vip_map pb map;
  let _server = Pod.spawn pb ~program:"podtest.server" ~args:Value.Unit in
  let _client = Pod.spawn pa ~program:"podtest.client" ~args:(Value.Int pb.Pod.vip) in
  run env;
  (* the server saw the client's VIRTUAL address *)
  check tbool "server sees peer vip" true
    (List.mem ("peer=" ^ Addr.ip_to_string pa.Pod.vip) !logged);
  check tbool "payload" true (List.mem "got: virtual hello" !logged);
  (* the client's own address reads back as its vip *)
  check tbool "client sees own vip" true
    (List.mem ("myaddr=" ^ Addr.ip_to_string pa.Pod.vip) !logged)

let test_suspend_resume () =
  register_programs ();
  let env = make_env () in
  let pod = fresh_pod env ~vip_last:1 ~rip_last:1 () in
  let p = Pod.spawn pod ~program:"podtest.pid_logger" ~args:Value.Unit in
  Engine.schedule env.engine ~delay:Simtime.zero (fun () -> Pod.suspend pod);
  Engine.run ~until:(Simtime.ms 10) ~max_events:10000 env.engine;
  check tbool "frozen, not exited" true (p.Proc.exit_code = None);
  Pod.resume pod;
  run env;
  check tbool "exited after resume" true (p.Proc.exit_code = Some 0)

let test_destroy () =
  register_programs ();
  let env = make_env () in
  let pod = fresh_pod env ~vip_last:1 ~rip_last:1 () in
  let p = Pod.spawn pod ~program:"podtest.long_sleeper" ~args:Value.Unit in
  Engine.run ~until:(Simtime.ms 1) ~max_events:10000 env.engine;
  Pod.destroy pod;
  run env;
  check tbool "member killed" true (p.Proc.exit_code = Some 137);
  check tbool "unregistered" true (Pod.find pod.Pod.pod_id = None);
  check tbool "rip detached" true (Fabric.node_of_ip env.fabric pod.Pod.rip = None)

let test_time_virtualization () =
  register_programs ();
  let env = make_env () in
  let pod = fresh_pod env ~vip_last:1 ~rip_last:1 () in
  (* pretend a checkpoint happened at t=500ms and we restarted at t=0 *)
  Pod.apply_time_bias pod ~saved_clock:(Simtime.ms 500) ~current_clock:Simtime.zero;
  let _p = Pod.spawn pod ~program:"podtest.clock" ~args:Value.Unit in
  run env;
  let t =
    List.find_map
      (fun s ->
        if String.length s > 6 && String.equal (String.sub s 0 6) "clock=" then
          Some (int_of_string (String.sub s 6 (String.length s - 6)))
        else None)
      !logged
  in
  match t with
  | Some t -> check tbool "clock continues from checkpoint" true (t >= Simtime.ms 500)
  | None -> Alcotest.fail "no clock log"

let test_time_virtualization_off () =
  register_programs ();
  let env = make_env () in
  let pod = fresh_pod env ~vip_last:1 ~rip_last:1 () in
  pod.Pod.virtualize_time <- false;
  Pod.apply_time_bias pod ~saved_clock:(Simtime.ms 500) ~current_clock:Simtime.zero;
  let _p = Pod.spawn pod ~program:"podtest.clock" ~args:Value.Unit in
  run env;
  let t =
    List.find_map
      (fun s ->
        if String.length s > 6 && String.equal (String.sub s 0 6) "clock=" then
          Some (int_of_string (String.sub s 6 (String.length s - 6)))
        else None)
      !logged
  in
  match t with
  | Some t -> check tbool "absolute time when disabled" true (t < Simtime.ms 500)
  | None -> Alcotest.fail "no clock log"

let test_fs_namespace_isolation () =
  register_programs ();
  let env = make_env () in
  (* both kernels mount the same shared file system *)
  let shared = Zapc_simos.Simfs.create () in
  Kernel.set_fs env.k0 shared;
  Kernel.set_fs env.k1 shared;
  let pa = fresh_pod env ~kernel:env.k0 ~vip_last:1 ~rip_last:1 () in
  let pb = fresh_pod env ~kernel:env.k1 ~vip_last:2 ~rip_last:2 () in
  let _ = Pod.spawn pa ~program:"podtest.fs_writer" ~args:(Value.Str "alpha") in
  let _ = Pod.spawn pb ~program:"podtest.fs_writer" ~args:(Value.Str "beta") in
  run env;
  (* each pod reads back its own content under the same virtual path *)
  check tbool "pod A sees its data" true (List.mem "read: alpha" !logged);
  check tbool "pod B sees its data" true (List.mem "read: beta" !logged);
  (* listings are un-chrooted: pods see "/data.txt", not their real prefix *)
  check tbool "ls unchrooted" true (List.mem "ls: /data.txt" !logged);
  (* on the real store the files live under distinct pod roots *)
  check tbool "A's file" true
    (Zapc_simos.Simfs.get shared (Pod.fs_root pa ^ "/data.txt") = Some "alpha");
  check tbool "B's file" true
    (Zapc_simos.Simfs.get shared (Pod.fs_root pb ^ "/data.txt") = Some "beta")

let test_members_ordering () =
  register_programs ();
  let env = make_env () in
  let pod = fresh_pod env ~vip_last:1 ~rip_last:1 () in
  let a = Pod.spawn pod ~program:"podtest.long_sleeper" ~args:Value.Unit in
  let b = Pod.spawn pod ~program:"podtest.long_sleeper" ~args:Value.Unit in
  let members = Pod.members pod in
  check tint "two members" 2 (List.length members);
  (match members with
   | [ (v1, p1); (v2, p2) ] ->
     check tint "vpid order" 1 v1;
     check tint "vpid order 2" 2 v2;
     check tbool "procs match" true (p1 == a && p2 == b)
   | _ -> Alcotest.fail "bad members")

let () =
  Alcotest.run "pod"
    [ ( "namespace",
        [ Alcotest.test_case "pids" `Quick test_namespace_pids;
          Alcotest.test_case "addresses" `Quick test_namespace_addrs ] );
      ( "virtualization",
        [ Alcotest.test_case "getpid" `Quick test_getpid_virtualized;
          Alcotest.test_case "kill by vpid" `Quick test_kill_by_vpid;
          Alcotest.test_case "kill unknown vpid" `Quick test_kill_unknown_vpid_esrch;
          Alcotest.test_case "virtual addresses e2e" `Quick test_virtual_addresses_end_to_end;
          Alcotest.test_case "time virtualization" `Quick test_time_virtualization;
          Alcotest.test_case "time virtualization off" `Quick test_time_virtualization_off ] );
      ( "lifecycle",
        [ Alcotest.test_case "suspend/resume" `Quick test_suspend_resume;
          Alcotest.test_case "destroy" `Quick test_destroy;
          Alcotest.test_case "fs namespace isolation" `Quick test_fs_namespace_isolation;
          Alcotest.test_case "members" `Quick test_members_ordering ] ) ]
