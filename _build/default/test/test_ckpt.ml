(* Unit tests for the checkpoint layers: socket-state save/restore (the
   read-and-reinject extraction, the flawed peek baseline, overlap fix-up),
   meta-data classification and scheduling, and pod image round-trips. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr
module Fabric = Zapc_simnet.Fabric
module Netstack = Zapc_simnet.Netstack
module Socket = Zapc_simnet.Socket
module Sockbuf = Zapc_simnet.Sockbuf
module Sockopt = Zapc_simnet.Sockopt
module Tcp = Zapc_simnet.Tcp
module Errno = Zapc_simnet.Errno
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall
module Namespace = Zapc_pod.Namespace
module Pod = Zapc_pod.Pod
module Meta = Zapc_netckpt.Meta
module Sock_state = Zapc_netckpt.Sock_state
module Net_ckpt = Zapc_netckpt.Net_ckpt
module Pod_ckpt = Zapc_ckpt.Pod_ckpt
module Image = Zapc_ckpt.Image

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

type env = {
  engine : Engine.t;
  fabric : Fabric.t;
  ns0 : Netstack.t;
  ns1 : Netstack.t;
  ip0 : Addr.ip;
  ip1 : Addr.ip;
}

let setup () =
  let engine = Engine.create ~seed:21 () in
  let fabric = Fabric.create engine in
  let ns0 = Netstack.create ~node:0 fabric in
  let ns1 = Netstack.create ~node:1 fabric in
  let ip0 = Addr.make_ip 172 16 0 1 and ip1 = Addr.make_ip 172 16 1 1 in
  Netstack.add_ip ns0 ip0;
  Netstack.add_ip ns1 ip1;
  { engine; fabric; ns0; ns1; ip0; ip1 }

let run env = Engine.run ~max_events:200_000 env.engine

let establish ?(port = 7100) env =
  let listener = Netstack.new_socket env.ns1 Socket.Stream in
  (match Netstack.bind env.ns1 listener { Addr.ip = env.ip1; port } with
   | Ok () -> ()
   | Error e -> Alcotest.failf "bind: %s" (Errno.to_string e));
  ignore (Netstack.listen env.ns1 listener 8);
  let client = Netstack.new_socket env.ns0 Socket.Stream in
  (match Netstack.connect_start env.ns0 client { Addr.ip = env.ip1; port } with
   | Ok () -> ()
   | Error e -> Alcotest.failf "connect: %s" (Errno.to_string e));
  run env;
  let server = Option.get (Netstack.accept_take listener) in
  (listener, client, server)

let plain_ns = Namespace.create ()

let recv_str s =
  match s.Socket.dispatch.d_recvmsg s Socket.plain_recv (1 lsl 20) with
  | Socket.Rv_data d -> d
  | _ -> "<none>"

(* --- overlap fix-up (Figure 4) --- *)

let test_trim_overlap () =
  check tstr "no overlap" "abcd" (Sock_state.trim_overlap ~acked:100 ~peer_recv:100 "abcd");
  check tstr "partial" "cd" (Sock_state.trim_overlap ~acked:100 ~peer_recv:102 "abcd");
  check tstr "all" "" (Sock_state.trim_overlap ~acked:100 ~peer_recv:104 "abcd");
  check tstr "beyond" "" (Sock_state.trim_overlap ~acked:100 ~peer_recv:200 "abcd");
  check tstr "negative clamps" "abcd" (Sock_state.trim_overlap ~acked:100 ~peer_recv:50 "abcd")

(* --- classification --- *)

let test_classify () =
  let env = setup () in
  let listener, client, server = establish env in
  check tbool "listener" true (Sock_state.classify listener = `Listener 8);
  check tbool "established full" true (Sock_state.classify client = `Conn Meta.Full);
  Tcp.shutdown_write client;
  check tbool "half out after shutdown" true
    (Sock_state.classify client = `Conn Meta.Half_out);
  run env;
  check tbool "peer half in" true (Sock_state.classify server = `Conn Meta.Half_in);
  let fresh = Netstack.new_socket env.ns0 Socket.Stream in
  check tbool "plain" true (Sock_state.classify fresh = `Plain);
  ignore (Netstack.connect_start env.ns0 fresh { Addr.ip = env.ip1; port = 7100 });
  check tbool "connecting" true (Sock_state.classify fresh = `Conn Meta.Connecting)

(* --- receive-queue extraction --- *)

let test_read_inject_preserves_data () =
  let env = setup () in
  let _, client, server = establish env in
  ignore (Tcp.send_data client "queued data");
  (match Tcp.send_oob client '?' with Ok () -> () | Error _ -> Alcotest.fail "oob");
  run env;
  let im = Sock_state.save ~ns:plain_ns server in
  check tstr "captured queue" "queued data" im.Sock_state.recv_data;
  check tbool "captured oob" true (im.Sock_state.oob = Some '?');
  (* read-inject: a continued run still reads the data, in order *)
  check tbool "interposed" true server.Socket.dispatch.interposed;
  check tstr "data intact for continued run" "queued data" (recv_str server);
  (* a second checkpoint right away captures the same bytes (from the alt
     queue this time) *)
  Socket.install_altqueue server "queued data";
  let im2 = Sock_state.save ~ns:plain_ns server in
  check tstr "second checkpoint sees same data" "queued data" im2.Sock_state.recv_data

let test_peek_mode_misses_oob () =
  let env = setup () in
  let _, client, server = establish env in
  ignore (Tcp.send_data client "visible");
  (match Tcp.send_oob client '!' with Ok () -> () | Error _ -> Alcotest.fail "oob");
  run env;
  let im = Sock_state.save ~mode:Sock_state.Peek ~ns:plain_ns server in
  (* the Cruz-style peek captures the stream but LOSES the urgent byte *)
  check tstr "stream captured" "visible" im.Sock_state.recv_data;
  check tbool "oob lost" true (im.Sock_state.oob = None);
  (* whereas the proper extraction gets both *)
  let im2 = Sock_state.save ~ns:plain_ns server in
  check tbool "read-inject captures oob" true (im2.Sock_state.oob = Some '!')

let test_send_queue_capture () =
  let env = setup () in
  let _, client, _server = establish env in
  (* block the peer so our sent data stays unacknowledged *)
  Zapc_simnet.Netfilter.block (Fabric.netfilter env.fabric) env.ip1;
  ignore (Tcp.send_data client "unacked payload");
  Engine.run ~until:(Simtime.add (Engine.now env.engine) (Simtime.ms 10)) env.engine;
  let im = Sock_state.save ~ns:plain_ns client in
  check tstr "send queue = acked..sent + unsent" "unacked payload" im.Sock_state.send_data;
  let tcb = Option.get client.Socket.tcb in
  check tbool "pcb numbers consistent" true
    (tcb.Socket.snd_nxt - tcb.Socket.snd_una = String.length "unacked payload")

let test_socket_image_roundtrip () =
  let env = setup () in
  let _, client, _ = establish env in
  ignore (Tcp.send_data client "x");
  run env;
  let im = Sock_state.save ~ns:plain_ns client in
  let v = Sock_state.to_value im in
  let im' = Sock_state.of_value v in
  check tbool "roundtrip" true (Value.equal v (Sock_state.to_value im'))

let test_restore_connection_applies_state () =
  let env = setup () in
  let _, client, server = establish env in
  Sockopt.set client.Socket.opts Sockopt.TCP_NODELAY 1;
  ignore (Tcp.send_data client "abc");
  run env;
  let im = Sock_state.save ~ns:plain_ns server in
  (* "re-establish" on a fresh pair and restore *)
  let _, c2, s2 = establish ~port:7200 env in
  Sock_state.restore_connection s2 im ~send_data:"resend me";
  run env;
  check tstr "altq data first" "abc" (recv_str s2);
  check tstr "resent send queue arrives at peer" "resend me" (recv_str c2);
  ignore client

(* --- meta / schedule --- *)

let mk_entry ~lip ~lport ~rip ~rport ~state ~role ~sent ~recv ~acked ~ref_ =
  { Meta.local = { Addr.ip = lip; port = lport };
    remote = { Addr.ip = rip; port = rport };
    state; role; sent; recv; acked; sock_ref = ref_ }

let test_schedule_pairing () =
  let via = 101 and vib = 102 in
  let ma =
    { Meta.pm_pod = 1; pm_vip = via;
      pm_entries =
        [ mk_entry ~lip:via ~lport:5000 ~rip:vib ~rport:33000 ~state:Meta.Full
            ~role:Meta.Accept ~sent:500 ~recv:200 ~acked:450 ~ref_:0 ] }
  in
  let mb =
    { Meta.pm_pod = 2; pm_vip = vib;
      pm_entries =
        [ mk_entry ~lip:vib ~lport:33000 ~rip:via ~rport:5000 ~state:Meta.Full
            ~role:Meta.Connect ~sent:200 ~recv:480 ~acked:180 ~ref_:0 ] }
  in
  let sched = Meta.build_schedule [ ma; mb ] in
  let ea = List.assoc 1 sched and eb = List.assoc 2 sched in
  (match (ea, eb) with
   | [ a ], [ b ] ->
     check tbool "a accepts" true (a.Meta.ri_role = Meta.Accept);
     check tbool "b connects" true (b.Meta.ri_role = Meta.Connect);
     check tbool "not orphans" true ((not a.Meta.ri_orphan) && not b.Meta.ri_orphan);
     (* each side gets the peer's recv for overlap trimming *)
     check tint "a sees b.recv" 480 a.Meta.ri_peer_recv;
     check tint "b sees a.recv" 200 b.Meta.ri_peer_recv
   | _ -> Alcotest.fail "wrong schedule shape")

let test_schedule_orphan_and_connecting () =
  let via = 101 and vib = 102 in
  let ma =
    { Meta.pm_pod = 1; pm_vip = via;
      pm_entries =
        [ mk_entry ~lip:via ~lport:5000 ~rip:vib ~rport:44000 ~state:Meta.Half_in
            ~role:Meta.Accept ~sent:10 ~recv:20 ~acked:10 ~ref_:0;
          mk_entry ~lip:via ~lport:39000 ~rip:vib ~rport:6000 ~state:Meta.Connecting
            ~role:Meta.Connect ~sent:0 ~recv:0 ~acked:0 ~ref_:1 ] }
  in
  (* pod 2 reports nothing: its endpoints are gone *)
  let mb = { Meta.pm_pod = 2; pm_vip = vib; pm_entries = [] } in
  let sched = Meta.build_schedule [ ma; mb ] in
  (match List.assoc 1 sched with
   | [ e ] ->
     check tbool "orphan" true e.Meta.ri_orphan;
     check tint "only non-connecting survive" 0 e.Meta.ri_sock_ref
   | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l))

let test_schedule_shared_source_port () =
  (* two connections born from the same listening socket on pod 1 port 5000:
     both must be re-accepted on pod 1's side (paper section 4) *)
  let via = 101 and vib = 102 and vic = 103 in
  let ma =
    { Meta.pm_pod = 1; pm_vip = via;
      pm_entries =
        [ mk_entry ~lip:via ~lport:5000 ~rip:vib ~rport:33001 ~state:Meta.Full
            ~role:Meta.Accept ~sent:1 ~recv:1 ~acked:1 ~ref_:0;
          mk_entry ~lip:via ~lport:5000 ~rip:vic ~rport:33002 ~state:Meta.Full
            ~role:Meta.Accept ~sent:2 ~recv:2 ~acked:2 ~ref_:1 ] }
  in
  let mb =
    { Meta.pm_pod = 2; pm_vip = vib;
      pm_entries =
        [ mk_entry ~lip:vib ~lport:33001 ~rip:via ~rport:5000 ~state:Meta.Full
            ~role:Meta.Connect ~sent:1 ~recv:1 ~acked:1 ~ref_:0 ] }
  in
  let mc =
    { Meta.pm_pod = 3; pm_vip = vic;
      pm_entries =
        [ mk_entry ~lip:vic ~lport:33002 ~rip:via ~rport:5000 ~state:Meta.Full
            ~role:Meta.Connect ~sent:1 ~recv:1 ~acked:1 ~ref_:0 ] }
  in
  let sched = Meta.build_schedule [ ma; mb; mc ] in
  List.iter
    (fun e -> check tbool "pod1 accepts all" true (e.Meta.ri_role = Meta.Accept))
    (List.assoc 1 sched);
  List.iter
    (fun e -> check tbool "peers connect" true (e.Meta.ri_role = Meta.Connect))
    (List.assoc 2 sched @ List.assoc 3 sched)

let test_meta_value_roundtrip () =
  let m =
    { Meta.pm_pod = 9; pm_vip = 170;
      pm_entries =
        [ mk_entry ~lip:170 ~lport:1 ~rip:171 ~rport:2 ~state:Meta.Closed_data
            ~role:Meta.Connect ~sent:11 ~recv:22 ~acked:33 ~ref_:4 ] }
  in
  let v = Meta.to_value m in
  let m' = Meta.of_value v in
  check tbool "roundtrip" true (Value.equal v (Meta.to_value m'))

(* --- pod-level image --- *)

module Memhog = struct
  type state = int

  let name = "ckpttest.memhog"
  let start _ = 0

  let step phase (_ : Syscall.outcome) =
    match phase with
    | 0 -> (1, Zapc_simos.Program.Sys (Syscall.Mem_alloc ("big", 1_000_000)))
    | 1 -> (2, Zapc_simos.Program.Sys (Syscall.Nanosleep (Simtime.sec 50.0)))
    | _ -> (2, Zapc_simos.Program.Exit 0)

  let to_value p = Value.Int p
  let of_value = Value.to_int
end

let () = Program.register_if_absent (module Memhog : Program.S)

let test_pod_checkpoint_image () =
  let engine = Engine.create ~seed:9 () in
  let fabric = Fabric.create engine in
  let k = Kernel.create ~node_id:0 fabric in
  let pod =
    Pod.create ~pod_id:77 ~name:"imgtest" ~vip:(Addr.make_ip 10 1 0 9)
      ~rip:(Addr.make_ip 172 16 0 9) k
  in
  let p = Pod.spawn pod ~program:"ckpttest.memhog" ~args:Value.Unit in
  Engine.run ~until:(Simtime.ms 5) ~max_events:10000 engine;
  Pod.suspend pod;
  let res = Pod_ckpt.checkpoint pod in
  check tint "memory accounted" 1_000_000 res.Pod_ckpt.memory_bytes;
  check tint "one process" 1 res.Pod_ckpt.proc_count;
  check tbool "logical size > memory" true (Pod_ckpt.logical_size res > 1_000_000);
  (* serialize / reload *)
  let img = Image.of_pod_image res.Pod_ckpt.image in
  let v = Image.to_pod_image img in
  check tint "pod id" 77 (Pod_ckpt.pod_id_of_image v);
  check tstr "name" "imgtest" (Pod_ckpt.name_of_image v);
  (* restore into a fresh pod on a different kernel *)
  let k2 = Kernel.create ~node_id:1 fabric in
  let pod2 =
    Pod.create ~pod_id:78 ~name:"imgtest" ~vip:(Addr.make_ip 10 1 0 9)
      ~rip:(Addr.make_ip 172 16 1 9) k2
  in
  let procs = Pod_ckpt.restore_processes pod2 v ~socket_of_ref:(fun _ -> None) in
  (match procs with
   | [ p2 ] ->
     check tbool "restored stopped" true (p2.Proc.rstate = Proc.Stopped);
     check tbool "pending syscall restored" true
       (match p2.Proc.pending_sys with Some (Syscall.Nanosleep _) -> true | _ -> false);
     check tint "memory restored" 1_000_000 (Zapc_simos.Memory.total p2.Proc.mem);
     check tbool "vpid preserved" true
       (Namespace.vpid_of_rpid pod2.Pod.ns p2.Proc.pid = Some 1);
     (* resume: the restored process finishes its sleep then exits *)
     Pod.resume pod2;
     Engine.run ~max_events:500_000 engine;
     check tbool "runs to completion" true (p2.Proc.exit_code = Some 0)
   | _ -> Alcotest.fail "expected one restored process");
  ignore p

let test_block_deadline_relative () =
  (* a process checkpointed mid-sleep resumes with the *remaining* time *)
  let engine = Engine.create ~seed:9 () in
  let fabric = Fabric.create engine in
  let k = Kernel.create ~node_id:0 fabric in
  let pod =
    Pod.create ~pod_id:79 ~name:"sleepy" ~vip:(Addr.make_ip 10 1 0 8)
      ~rip:(Addr.make_ip 172 16 0 8) k
  in
  let _p = Pod.spawn pod ~program:"ckpttest.memhog" ~args:Value.Unit in
  (* memhog sleeps 50 s; checkpoint at 10 s *)
  Engine.run ~until:(Simtime.sec 10.0) ~max_events:100000 engine;
  Pod.suspend pod;
  let res = Pod_ckpt.checkpoint pod in
  let v = res.Pod_ckpt.image in
  let proc_v = List.hd (Value.to_list (fun x -> x) (Value.field "procs" v)) in
  (match Value.to_option Value.to_int (Value.field "block_remaining" proc_v) with
   | Some rem ->
     check tbool "remaining ~40s" true
       (rem > Simtime.sec 39.0 && rem <= Simtime.sec 41.0)
   | None -> Alcotest.fail "no block deadline saved")

let () =
  Alcotest.run "ckpt"
    [ ( "sock_state",
        [ Alcotest.test_case "overlap trim" `Quick test_trim_overlap;
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "read-inject" `Quick test_read_inject_preserves_data;
          Alcotest.test_case "peek misses oob" `Quick test_peek_mode_misses_oob;
          Alcotest.test_case "send queue" `Quick test_send_queue_capture;
          Alcotest.test_case "image roundtrip" `Quick test_socket_image_roundtrip;
          Alcotest.test_case "restore connection" `Quick test_restore_connection_applies_state ]
      );
      ( "meta",
        [ Alcotest.test_case "pairing" `Quick test_schedule_pairing;
          Alcotest.test_case "orphan + connecting" `Quick test_schedule_orphan_and_connecting;
          Alcotest.test_case "shared source port" `Quick test_schedule_shared_source_port;
          Alcotest.test_case "value roundtrip" `Quick test_meta_value_roundtrip ] );
      ( "pod image",
        [ Alcotest.test_case "checkpoint/restore" `Quick test_pod_checkpoint_image;
          Alcotest.test_case "relative deadlines" `Quick test_block_deadline_relative ] ) ]
