(* Tests for the message-passing library: framing, float packing, and the
   MPI-style operations (point-to-point and binomial-tree collectives)
   running over the full simulated stack. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Value = Zapc_codec.Value
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Mpi = Zapc_msg.Mpi
module Frame = Zapc_msg.Frame
module Floats = Zapc_msg.Floats

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* --- frame / floats --- *)

let test_frame_roundtrip () =
  let f1 = Frame.encode ~src:3 ~tag:7 "payload one" in
  let f2 = Frame.encode ~src:1 ~tag:9 "" in
  let frames, rest = Frame.parse (f1 ^ f2) in
  check tint "two frames" 2 (List.length frames);
  check tbool "first" true (List.nth frames 0 = (3, 7, "payload one"));
  check tbool "second" true (List.nth frames 1 = (1, 9, ""));
  check tstr "no rest" "" rest

let test_frame_partial () =
  let f = Frame.encode ~src:2 ~tag:5 "abcdefgh" in
  for cut = 0 to String.length f - 1 do
    let frames, rest = Frame.parse (String.sub f 0 cut) in
    check tint "no frame yet" 0 (List.length frames);
    let frames2, rest2 = Frame.parse (rest ^ String.sub f cut (String.length f - cut)) in
    check tint "completed" 1 (List.length frames2);
    check tstr "empty rest" "" rest2
  done

let prop_frame_stream =
  QCheck.Test.make ~name:"frames survive arbitrary re-chunking" ~count:100
    QCheck.(pair (list (pair small_nat string_small)) (int_range 1 7))
    (fun (msgs, chunk) ->
      let stream =
        String.concat "" (List.map (fun (tag, p) -> Frame.encode ~src:0 ~tag p) msgs)
      in
      (* feed the stream in [chunk]-byte pieces through parse *)
      let collected = ref [] in
      let buf = ref "" in
      let i = ref 0 in
      while !i < String.length stream do
        let n = min chunk (String.length stream - !i) in
        buf := !buf ^ String.sub stream !i n;
        i := !i + n;
        let frames, rest = Frame.parse !buf in
        collected := !collected @ frames;
        buf := rest
      done;
      List.map (fun (_, tag, p) -> (tag, p)) !collected = msgs)

let prop_floats_roundtrip =
  QCheck.Test.make ~name:"float packing roundtrip" ~count:200
    QCheck.(list float)
    (fun fs ->
      let a = Array.of_list fs in
      let a' = Floats.unpack (Floats.pack a) in
      Array.length a = Array.length a'
      && Array.for_all2 (fun x y -> Float.equal x y || (Float.is_nan x && Float.is_nan y)) a a')

(* --- collective machinery over the real stack --- *)

(* one program that runs init + the whole collective suite and logs results *)
module Coll_tester = struct
  type op_phase = Ph_init | Ph_allreduce | Ph_gather | Ph_bcast | Ph_scatter
               | Ph_reduce | Ph_barrier | Ph_p2p_send | Ph_p2p_recv | Ph_done

  type state = {
    comm : Mpi.comm;
    mutable ph : op_phase;
    mutable mpi : Mpi.pending option;
    mutable to_log : string list;
  }

  let name = "msgtest.coll"

  let start args =
    let rank, size, vips, port, _ = Mpi.parse_args args in
    { comm = Mpi.make ~rank ~size ~vips ~port; ph = Ph_init; mpi = None; to_log = [] }

  let enter s (p, act) =
    s.mpi <- Some p;
    act

  let log_str s str = s.to_log <- s.to_log @ [ str ]

  let rank s = s.comm.Mpi.rank
  let size s = s.comm.Mpi.size

  let continue s (r : Mpi.result) : Program.action =
    match (s.ph, r) with
    | _, Mpi.R_fail m ->
      s.ph <- Ph_done;
      Program.Sys (Syscall.Log ("FAIL " ^ m))
    | Ph_init, _ ->
      s.ph <- Ph_allreduce;
      enter s (Mpi.allreduce_sum s.comm [| float_of_int (rank s + 1); 1.0 |])
    | Ph_allreduce, Mpi.R_floats a ->
      log_str s (Printf.sprintf "allreduce=%g,%g" a.(0) a.(1));
      s.ph <- Ph_gather;
      enter s (Mpi.gather s.comm ~root:0 (Printf.sprintf "r%d" (rank s)))
    | Ph_gather, Mpi.R_gather pieces ->
      log_str s
        ("gather=" ^ String.concat "+" (List.map (fun (r, d) -> Printf.sprintf "%d:%s" r d) pieces));
      s.ph <- Ph_bcast;
      let root = min 1 (size s - 1) in
      enter s (Mpi.bcast s.comm ~root (if rank s = root then "broadcasted" else ""))
    | Ph_gather, Mpi.R_ok ->
      (* non-root *)
      s.ph <- Ph_bcast;
      let root = min 1 (size s - 1) in
      enter s (Mpi.bcast s.comm ~root (if rank s = root then "broadcasted" else ""))
    | Ph_bcast, Mpi.R_msg { data; _ } ->
      log_str s ("bcast=" ^ data);
      s.ph <- Ph_scatter;
      let pieces = List.init (size s) (fun i -> Printf.sprintf "piece%d" i) in
      enter s (Mpi.scatter s.comm ~root:0 (if rank s = 0 then pieces else []))
    | Ph_scatter, Mpi.R_msg { data; _ } ->
      log_str s ("scatter=" ^ data);
      s.ph <- Ph_reduce;
      enter s (Mpi.reduce_sum s.comm ~root:(size s - 1) [| float_of_int (rank s * rank s) |])
    | Ph_reduce, Mpi.R_floats a ->
      log_str s (Printf.sprintf "reduce=%g" a.(0));
      s.ph <- Ph_barrier;
      enter s (Mpi.barrier s.comm)
    | Ph_reduce, Mpi.R_ok ->
      s.ph <- Ph_barrier;
      enter s (Mpi.barrier s.comm)
    | Ph_barrier, _ ->
      (* p2p ordering: rank 0 sends two tagged messages to last rank *)
      if size s = 1 then begin
        s.ph <- Ph_done;
        Program.Sys (Syscall.Log (String.concat ";" s.to_log))
      end
      else if rank s = 0 then begin
        s.ph <- Ph_p2p_send;
        enter s (Mpi.send s.comm ~peer:(size s - 1) ~tag:5 "first")
      end
      else if rank s = size s - 1 then begin
        s.ph <- Ph_p2p_recv;
        (* deliberately wait for tag 6 first: tag matching must pick the
           right message even though tag 5 arrives first *)
        enter s (Mpi.recv s.comm ~src:0 ~tag:6)
      end
      else begin
        s.ph <- Ph_done;
        Program.Sys (Syscall.Log (String.concat ";" s.to_log))
      end
    | Ph_p2p_send, _ ->
      (match s.mpi with
       | None when s.ph = Ph_p2p_send ->
         s.ph <- Ph_done;
         enter s (Mpi.send s.comm ~peer:(size s - 1) ~tag:6 "second")
       | _ ->
         s.ph <- Ph_done;
         enter s (Mpi.send s.comm ~peer:(size s - 1) ~tag:6 "second"))
    | Ph_p2p_recv, Mpi.R_msg { tag = 6; data; _ } ->
      log_str s ("tag6=" ^ data);
      s.ph <- Ph_done;
      enter s (Mpi.recv s.comm ~src:0 ~tag:5)
    | Ph_done, Mpi.R_msg { tag = 5; data; _ } ->
      log_str s ("tag5=" ^ data);
      Program.Sys (Syscall.Log (String.concat ";" s.to_log))
    | Ph_done, _ -> Program.Sys (Syscall.Log (String.concat ";" s.to_log))
    | _, _ -> Program.Sys (Syscall.Log "FAIL unexpected result")

  let step s (outcome : Syscall.outcome) =
    match s.mpi with
    | Some pending ->
      (match Mpi.step s.comm pending outcome with
       | `Again (p, act) ->
         s.mpi <- Some p;
         (s, act)
       | `Done r ->
         s.mpi <- None;
         (s, continue s r))
    | None ->
      (match s.ph with
       | Ph_init ->
         (match outcome with
          | Syscall.Started -> (s, enter s (Mpi.init s.comm))
          | _ -> (s, continue s Mpi.R_ok))
       | Ph_p2p_send ->
         s.ph <- Ph_done;
         (s, enter s (Mpi.send s.comm ~peer:(size s - 1) ~tag:6 "second"))
       | _ -> (s, Program.Exit 0))

  (* this program is not checkpointed in these tests *)
  let to_value _ = Value.Unit
  let of_value _ = failwith "msgtest.coll is not restorable"
end

let () = Program.register_if_absent (module Coll_tester : Program.S)

let logged : string list ref = ref []

let run_coll_suite size =
  Zapc_apps.Registry.register_all ();
  let nodes = max 2 (min size 4) in
  let cluster = Cluster.make ~seed:17 ~params:Zapc.Params.default ~node_count:nodes () in
  logged := [];
  for i = 0 to nodes - 1 do
    Kernel.set_logger (Cluster.node cluster i).Cluster.n_kernel (fun _ _ m ->
        logged := m :: !logged)
  done;
  let pods =
    List.init size (fun r ->
        Cluster.create_pod cluster ~node_idx:(r mod nodes) ~name:(Printf.sprintf "coll-%d" r))
  in
  Cluster.link_pods pods;
  let vips = Array.of_list (List.map (fun (p : Pod.t) -> p.vip) pods) in
  let procs =
    List.mapi
      (fun r pod ->
        Pod.spawn pod ~program:"msgtest.coll"
          ~args:(Mpi.std_args ~rank:r ~size ~vips ~port:5600 ~app:Value.Unit))
      pods
  in
  Cluster.run_until cluster ~timeout:(Simtime.sec 600.0) (fun () ->
      List.for_all (fun (p : Proc.t) -> p.Proc.exit_code <> None) procs);
  !logged

let expect_log logs sub =
  check tbool (Printf.sprintf "log contains %s" sub) true
    (List.exists
       (fun s ->
         let n = String.length sub in
         let rec at i = i + n <= String.length s && (String.equal (String.sub s i n) sub || at (i + 1)) in
         at 0)
       logs)

let test_collectives size () =
  let logs = run_coll_suite size in
  check tbool "no failures" true
    (not (List.exists (fun s -> String.length s >= 4 && String.equal (String.sub s 0 4) "FAIL") logs));
  (* allreduce of rank+1 = size*(size+1)/2, and of 1.0 = size *)
  let expected_sum = size * (size + 1) / 2 in
  expect_log logs (Printf.sprintf "allreduce=%d,%d" expected_sum size);
  (* gather at root 0 collects all pieces in rank order *)
  let gather_str =
    "gather=" ^ String.concat "+" (List.init size (fun r -> Printf.sprintf "%d:r%d" r r))
  in
  expect_log logs gather_str;
  expect_log logs "bcast=broadcasted";
  (* each rank got its own scatter piece *)
  for r = 0 to size - 1 do
    expect_log logs (Printf.sprintf "scatter=piece%d" r)
  done;
  (* reduce of rank^2 at the last rank *)
  let sq = List.fold_left ( + ) 0 (List.init size (fun r -> r * r)) in
  expect_log logs (Printf.sprintf "reduce=%d" sq);
  if size > 1 then begin
    expect_log logs "tag6=second";
    expect_log logs "tag5=first"
  end

(* --- serialization --- *)

let test_comm_roundtrip () =
  let c = Mpi.make ~rank:2 ~size:4 ~vips:[| 10; 11; 12; 13 |] ~port:9 in
  c.Mpi.listen_fd <- 3;
  c.Mpi.fds.(0) <- 4;
  c.Mpi.rxbuf.(1) <- "partial";
  c.Mpi.inbox <- [ (1, 5, "msg") ];
  let v = Mpi.comm_to_value c in
  let c' = Mpi.comm_of_value v in
  check tbool "roundtrip" true (Value.equal v (Mpi.comm_to_value c'))

let test_pending_roundtrip () =
  let c = Mpi.make ~rank:1 ~size:4 ~vips:[| 10; 11; 12; 13 |] ~port:9 in
  Array.iteri (fun i _ -> c.Mpi.fds.(i) <- i + 3) c.Mpi.fds;
  let ps =
    [ fst (Mpi.send c ~peer:0 ~tag:7 "payload");
      fst (Mpi.recv c ~src:Mpi.any_src ~tag:3);
      fst (Mpi.init c);
      fst (Mpi.allreduce_sum c [| 1.0; 2.0 |]);
      fst (Mpi.gather c ~root:0 "piece");
      fst (Mpi.bcast c ~root:2 "data");
      fst (Mpi.barrier c) ]
  in
  List.iter
    (fun p ->
      let v = Mpi.pending_to_value p in
      let p' = Mpi.pending_of_value v in
      check tbool "pending roundtrip" true (Value.equal v (Mpi.pending_to_value p')))
    ps

let () =
  Alcotest.run "msg"
    [ ( "framing",
        [ Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "partial frames" `Quick test_frame_partial;
          QCheck_alcotest.to_alcotest prop_frame_stream;
          QCheck_alcotest.to_alcotest prop_floats_roundtrip ] );
      ( "collectives",
        [ Alcotest.test_case "size 1" `Quick (test_collectives 1);
          Alcotest.test_case "size 2" `Quick (test_collectives 2);
          Alcotest.test_case "size 3" `Quick (test_collectives 3);
          Alcotest.test_case "size 4" `Quick (test_collectives 4);
          Alcotest.test_case "size 5" `Quick (test_collectives 5);
          Alcotest.test_case "size 8" `Quick (test_collectives 8) ] );
      ( "serialization",
        [ Alcotest.test_case "comm" `Quick test_comm_roundtrip;
          Alcotest.test_case "pending" `Quick test_pending_roundtrip ] ) ]
