(* Tests for the simulated kernel: scheduling, compute preemption, signals
   (stop/cont/kill), blocking syscalls and wakeups, pipes with fd
   inheritance, timers, and multi-CPU parallelism. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Value = Zapc_codec.Value
module Fabric = Zapc_simnet.Fabric
module Socket = Zapc_simnet.Socket
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Program = Zapc_simos.Program
module Signal = Zapc_simos.Signal
module Syscall = Zapc_simos.Syscall

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* global mailbox for test programs to report through the Log syscall *)
let logged : string list ref = ref []

let make_kernel ?(cpus = 1) () =
  let engine = Engine.create ~seed:3 () in
  let fabric = Fabric.create engine in
  let k = Kernel.create ~cpus ~node_id:0 fabric in
  Zapc_simnet.Netstack.add_ip (Kernel.netstack k) (Zapc_simnet.Addr.make_ip 10 9 9 9);
  Kernel.set_logger k (fun _ _ msg -> logged := msg :: !logged);
  logged := [];
  (engine, k)

let run engine = Engine.run ~max_events:500_000 engine
let run_until engine t = Engine.run ~until:t ~max_events:500_000 engine

(* --- test programs --- *)

(* sleeper: sleeps then logs "woke" and exits *)
module Sleeper2 = struct
  type state = int * Simtime.t  (* phase, duration *)

  let name = "test.sleeper2"
  let start args = (0, Value.to_int args)

  let step (phase, d) (_ : Syscall.outcome) =
    match phase with
    | 0 -> ((1, d), Program.Sys (Syscall.Nanosleep d))
    | 1 -> ((2, d), Program.Sys (Syscall.Log "woke"))
    | _ -> ((2, d), Program.Exit 0)

  let to_value (p, d) = Value.List [ Value.Int p; Value.Int d ]

  let of_value = function
    | Value.List [ Value.Int p; Value.Int d ] -> (p, d)
    | _ -> failwith "bad"
end

(* burner: computes for [d] total then exits *)
module Burner = struct
  type state = int * Simtime.t

  let name = "test.burner"
  let start args = (0, Value.to_int args)

  let step (phase, d) (_ : Syscall.outcome) =
    match phase with
    | 0 -> ((1, d), Program.Compute d)
    | _ -> ((1, d), Program.Exit 0)

  let to_value (p, d) = Value.List [ Value.Int p; Value.Int d ]

  let of_value = function
    | Value.List [ Value.Int p; Value.Int d ] -> (p, d)
    | _ -> failwith "bad"
end

(* piper-parent: makes a pipe, spawns a child reader, writes a message,
   waits for the child *)
module Pipe_parent = struct
  type state = int * int * int  (* phase, rfd, child pid *)

  let name = "test.pipe_parent"
  let start _ = (0, -1, -1)

  let step (phase, rfd, child) (outcome : Syscall.outcome) =
    match (phase, outcome) with
    | 0, _ -> ((1, rfd, child), Program.Sys Syscall.Pipe)
    | 1, Syscall.Ret (Syscall.Rpair (r, _w)) ->
      ( (2, r, child),
        Program.Sys (Syscall.Spawn ("test.pipe_child", Value.List [ Value.Int r ])) )
    | 2, Syscall.Ret (Syscall.Rint pid) ->
      (* by construction of the Pipe syscall, the write fd is rfd + 1 *)
      ((3, rfd, pid), Program.Sys (Syscall.Write (rfd + 1, "through the pipe")))
    | 3, Syscall.Ret _ -> ((4, rfd, child), Program.Sys (Syscall.Close (rfd + 1)))
    | 4, _ -> ((5, rfd, child), Program.Sys (Syscall.Waitpid child))
    | 5, Syscall.Ret (Syscall.Rint code) ->
      ((6, rfd, child), Program.Sys (Syscall.Log (Printf.sprintf "child exited %d" code)))
    | _, _ -> ((6, rfd, child), Program.Exit 0)

  let to_value (a, b, c) = Value.List [ Value.Int a; Value.Int b; Value.Int c ]

  let of_value = function
    | Value.List [ Value.Int a; Value.Int b; Value.Int c ] -> (a, b, c)
    | _ -> failwith "bad"
end

module Pipe_child = struct
  type state = int * int  (* phase, rfd *)

  let name = "test.pipe_child"
  let start args = (0, Value.to_int (List.hd (Value.to_list (fun x -> x) args)))

  let step (phase, rfd) (outcome : Syscall.outcome) =
    match (phase, outcome) with
    | 0, _ -> ((1, rfd), Program.Sys (Syscall.Read (rfd, 100)))
    | 1, Syscall.Ret (Syscall.Rdata d) ->
      ((2, rfd), Program.Sys (Syscall.Log ("child got: " ^ d)))
    | _, _ -> ((2, rfd), Program.Exit 7)

  let to_value (a, b) = Value.List [ Value.Int a; Value.Int b ]

  let of_value = function
    | Value.List [ Value.Int a; Value.Int b ] -> (a, b)
    | _ -> failwith "bad"
end

(* clock logger: logs current time, sleeps, logs again *)
module Clock_prog = struct
  type state = int

  let name = "test.clock"
  let start _ = 0

  let step phase (outcome : Syscall.outcome) =
    match (phase, outcome) with
    | 0, _ -> (1, Program.Sys Syscall.Clock_gettime)
    | 1, Syscall.Ret (Syscall.Rtime t) ->
      (2, Program.Sys (Syscall.Log (Printf.sprintf "t0=%d" t)))
    | 2, _ -> (3, Program.Sys (Syscall.Nanosleep (Simtime.ms 10)))
    | 3, _ -> (4, Program.Sys Syscall.Clock_gettime)
    | 4, Syscall.Ret (Syscall.Rtime t) ->
      (5, Program.Sys (Syscall.Log (Printf.sprintf "t1=%d" t)))
    | _, _ -> (5, Program.Exit 0)

  let to_value p = Value.Int p
  let of_value = Value.to_int
end

let registered = ref false

let register_test_programs () =
  if not !registered then begin
    registered := true;
    Program.register_if_absent (module Sleeper2 : Program.S);
    Program.register_if_absent (module Burner : Program.S);
    Program.register_if_absent (module Pipe_parent : Program.S);
    Program.register_if_absent (module Pipe_child : Program.S);
    Program.register_if_absent (module Clock_prog : Program.S)
  end

(* --- tests --- *)

let test_sleep_and_exit () =
  register_test_programs ();
  let engine, k = make_kernel () in
  let p = Kernel.spawn k ~program:"test.sleeper2" ~args:(Value.Int (Simtime.ms 50)) in
  run engine;
  check tbool "exited" true (p.Proc.exit_code = Some 0);
  check tbool "woke logged" true (List.mem "woke" !logged);
  check tbool "took at least 50ms" true (Engine.now engine >= Simtime.ms 50)

let test_compute_accounting () =
  register_test_programs ();
  let engine, k = make_kernel () in
  let p = Kernel.spawn k ~program:"test.burner" ~args:(Value.Int (Simtime.ms 37)) in
  run engine;
  check tbool "exited" true (p.Proc.exit_code = Some 0);
  check tbool "cpu time ~37ms" true
    (p.Proc.cpu_time >= Simtime.ms 37 && p.Proc.cpu_time < Simtime.ms 39)

let test_two_burners_one_cpu () =
  register_test_programs ();
  let engine, k = make_kernel ~cpus:1 () in
  let a = Kernel.spawn k ~program:"test.burner" ~args:(Value.Int (Simtime.ms 20)) in
  let b = Kernel.spawn k ~program:"test.burner" ~args:(Value.Int (Simtime.ms 20)) in
  run engine;
  check tbool "both exited" true (a.Proc.exit_code = Some 0 && b.Proc.exit_code = Some 0);
  check tbool "serialized on one cpu" true (Engine.now engine >= Simtime.ms 40)

let test_two_burners_two_cpus () =
  register_test_programs ();
  let engine, k = make_kernel ~cpus:2 () in
  let a = Kernel.spawn k ~program:"test.burner" ~args:(Value.Int (Simtime.ms 20)) in
  let b = Kernel.spawn k ~program:"test.burner" ~args:(Value.Int (Simtime.ms 20)) in
  run engine;
  check tbool "both exited" true (a.Proc.exit_code = Some 0 && b.Proc.exit_code = Some 0);
  check tbool "parallel on two cpus" true (Engine.now engine < Simtime.ms 30)

let test_sigstop_cont () =
  register_test_programs ();
  let engine, k = make_kernel () in
  let p = Kernel.spawn k ~program:"test.burner" ~args:(Value.Int (Simtime.ms 20)) in
  Engine.schedule engine ~delay:(Simtime.ms 5) (fun () ->
      Kernel.signal_proc k p Signal.Sigstop);
  Engine.schedule engine ~delay:(Simtime.ms 65) (fun () ->
      check tbool "still stopped" true (p.Proc.rstate = Proc.Stopped);
      check tbool "not exited while stopped" true (p.Proc.exit_code = None);
      Kernel.signal_proc k p Signal.Sigcont);
  run engine;
  check tbool "exited after cont" true (p.Proc.exit_code = Some 0);
  check tbool "finished after the stop window" true (Engine.now engine >= Simtime.ms 75)

let test_sigstop_while_blocked () =
  register_test_programs ();
  let engine, k = make_kernel () in
  let p = Kernel.spawn k ~program:"test.sleeper2" ~args:(Value.Int (Simtime.ms 10)) in
  (* stop it while asleep; the wakeup fires while stopped; on CONT the
     blocked syscall retries and completes *)
  Engine.schedule engine ~delay:(Simtime.ms 2) (fun () ->
      Kernel.signal_proc k p Signal.Sigstop);
  Engine.schedule engine ~delay:(Simtime.ms 50) (fun () ->
      Kernel.signal_proc k p Signal.Sigcont);
  run engine;
  check tbool "exited" true (p.Proc.exit_code = Some 0);
  check tbool "woke" true (List.mem "woke" !logged)

let test_sigkill () =
  register_test_programs ();
  let engine, k = make_kernel () in
  let p = Kernel.spawn k ~program:"test.burner" ~args:(Value.Int (Simtime.sec 10.0)) in
  Engine.schedule engine ~delay:(Simtime.ms 1) (fun () ->
      Kernel.signal_proc k p Signal.Sigkill);
  run engine;
  check tbool "killed" true (p.Proc.exit_code = Some 137);
  check tbool "zombie" true (p.Proc.rstate = Proc.Zombie)

let test_pipe_spawn_waitpid () =
  register_test_programs ();
  let engine, k = make_kernel () in
  let p = Kernel.spawn k ~program:"test.pipe_parent" ~args:Value.Unit in
  run engine;
  check tbool "parent exited" true (p.Proc.exit_code = Some 0);
  check tbool "child got message" true (List.mem "child got: through the pipe" !logged);
  check tbool "waitpid code" true (List.mem "child exited 7" !logged)

let test_clock_monotonic () =
  register_test_programs ();
  let engine, k = make_kernel () in
  let p = Kernel.spawn k ~program:"test.clock" ~args:Value.Unit in
  run engine;
  check tbool "exited" true (p.Proc.exit_code = Some 0);
  let find_t prefix =
    List.find_map
      (fun s ->
        if String.length s > 3 && String.equal (String.sub s 0 3) prefix then
          Some (int_of_string (String.sub s 3 (String.length s - 3)))
        else None)
      !logged
  in
  match (find_t "t0=", find_t "t1=") with
  | Some t0, Some t1 -> check tbool "t1 >= t0 + 10ms" true (t1 - t0 >= Simtime.ms 10)
  | _ -> Alcotest.fail "clock logs missing"

let test_alarm_deadline () =
  register_test_programs ();
  let engine, k = make_kernel () in
  let p = Kernel.spawn k ~program:"test.sleeper2" ~args:(Value.Int (Simtime.ms 1)) in
  run_until engine (Simtime.us 1);
  p.Proc.alarm_deadline <- Some (Simtime.ms 100);
  run engine;
  check tbool "alarm survives" true (p.Proc.alarm_deadline = Some (Simtime.ms 100))

let test_exit_closes_fds () =
  register_test_programs ();
  let engine, k = make_kernel () in
  let p = Kernel.spawn k ~program:"test.pipe_parent" ~args:Value.Unit in
  run engine;
  check tint "fd table empty after exit" 0 (Zapc_simos.Fdtable.cardinal p.Proc.fds)

let test_spawn_unknown_program () =
  register_test_programs ();
  let _, k = make_kernel () in
  match Kernel.spawn k ~program:"no.such.program" ~args:Value.Unit with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_syscall_value_roundtrip () =
  let scs =
    [ Syscall.Getpid; Syscall.Clock_gettime; Syscall.Nanosleep (Simtime.ms 3);
      Syscall.Mem_alloc ("x", 100); Syscall.Spawn ("p", Value.Int 1);
      Syscall.Kill (3, Signal.Sigstop); Syscall.Sock_create Socket.Stream;
      Syscall.Sock_create (Socket.Raw 89);
      Syscall.Bind (3, { Zapc_simnet.Addr.ip = 42; port = 80 });
      Syscall.Connect (4, { Zapc_simnet.Addr.ip = 1; port = 2 });
      Syscall.Recv (5, 100, Socket.plain_recv);
      Syscall.Recv (5, 100, { Socket.peek = true; oob = true; dontwait = true });
      Syscall.Send (6, "data"); Syscall.Send_oob (6, '!');
      Syscall.Poll ([ { Syscall.pfd = 1; want_read = true; want_write = false } ], Some 5);
      Syscall.Shutdown (7, Syscall.Shut_wr); Syscall.Pipe; Syscall.Read (1, 2);
      Syscall.Write (1, "w"); Syscall.Log "m"; Syscall.Waitpid 9;
      Syscall.Getsockopt (1, Zapc_simnet.Sockopt.SO_RCVBUF);
      Syscall.Setsockopt (1, Zapc_simnet.Sockopt.TCP_NODELAY, 1) ]
  in
  List.iter
    (fun sc ->
      let v = Syscall.to_value sc in
      let sc' = Syscall.of_value v in
      check tbool (Syscall.name sc) true (Syscall.to_value sc' = v))
    scs;
  let outs =
    [ Syscall.Started; Syscall.Done_compute; Syscall.Ret Syscall.Rnone;
      Syscall.Ret (Syscall.Rint 5); Syscall.Ret (Syscall.Rdata "d");
      Syscall.Ret (Syscall.Raccept (3, { Zapc_simnet.Addr.ip = 9; port = 1 }));
      Syscall.Ret (Syscall.Rpoll [ (1, { Socket.readable = true; writable = false; pollerr = false; hangup = false }) ]);
      Syscall.Err Zapc_simnet.Errno.EAGAIN ]
  in
  List.iter
    (fun o ->
      let v = Syscall.outcome_to_value o in
      check tbool "outcome" true (Syscall.outcome_to_value (Syscall.outcome_of_value v) = v))
    outs

let test_memory_accounting () =
  let m = Zapc_simos.Memory.create () in
  Zapc_simos.Memory.alloc m "a" 100;
  Zapc_simos.Memory.alloc m "b" 50;
  check tint "total" 150 (Zapc_simos.Memory.total m);
  Zapc_simos.Memory.alloc m "a" 30;
  check tint "realloc" 80 (Zapc_simos.Memory.total m);
  check tint "peak" 150 (Zapc_simos.Memory.peak m);
  Zapc_simos.Memory.free m "b";
  check tint "after free" 30 (Zapc_simos.Memory.total m);
  let v = Zapc_simos.Memory.to_value m in
  let m' = Zapc_simos.Memory.of_value v in
  check tint "restored" 30 (Zapc_simos.Memory.total m')

let () =
  Alcotest.run "simos"
    [ ( "scheduler",
        [ Alcotest.test_case "sleep and exit" `Quick test_sleep_and_exit;
          Alcotest.test_case "compute accounting" `Quick test_compute_accounting;
          Alcotest.test_case "1 cpu serializes" `Quick test_two_burners_one_cpu;
          Alcotest.test_case "2 cpus parallelize" `Quick test_two_burners_two_cpus ] );
      ( "signals",
        [ Alcotest.test_case "stop/cont" `Quick test_sigstop_cont;
          Alcotest.test_case "stop while blocked" `Quick test_sigstop_while_blocked;
          Alcotest.test_case "kill" `Quick test_sigkill ] );
      ( "resources",
        [ Alcotest.test_case "pipe + spawn + waitpid" `Quick test_pipe_spawn_waitpid;
          Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "alarm" `Quick test_alarm_deadline;
          Alcotest.test_case "exit closes fds" `Quick test_exit_closes_fds;
          Alcotest.test_case "spawn unknown" `Quick test_spawn_unknown_program;
          Alcotest.test_case "memory accounting" `Quick test_memory_accounting ] );
      ( "values",
        [ Alcotest.test_case "syscall roundtrip" `Quick test_syscall_value_roundtrip ] ) ]
