(* Shared machinery for the experiment harness: cluster construction, the
   Base-vs-ZapC run modes, paper-scale application parameter sets, node
   sweeps and placements, and the checkpoint/restart measurement loops. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Stats = Zapc_sim.Stats
module Value = Zapc_codec.Value
module Kernel = Zapc_simos.Kernel
module Kconfig = Zapc_simos.Kconfig
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Protocol = Zapc.Protocol
module Params = Zapc.Params
module Launch = Zapc_msg.Launch

type app_kind = Cpi | Bt | Bratu | Povray

let all_apps = [ Cpi; Bt; Bratu; Povray ]
let app_label = function Cpi -> "CPI" | Bt -> "BT/NAS" | Bratu -> "PETSc-Bratu" | Povray -> "POV-Ray"
let program_of = function Cpi -> "cpi" | Bt -> "bt_nas" | Bratu -> "bratu" | Povray -> "povray"

(* Paper-scale parameter sets: per-operation virtual costs are calibrated so
   single-node completion is about a virtual minute, and the per-rank memory
   models reproduce the paper's image-size scaling (CPI 16->7 MB, PETSc
   145->24 MB, BT 340->35 MB, POV-Ray ~10 MB constant). *)
let app_args = function
  | Cpi ->
    Zapc_apps.Cpi.params_to_value
      { Zapc_apps.Cpi.intervals = 2_000_000; chunks = 10; ns_per_interval = 30_000;
        mem_base = 6_000_000; mem_scaled = 10_000_000 }
  | Bt ->
    Zapc_apps.Bt_nas.params_to_value
      { Zapc_apps.Bt_nas.g = 384; iters = 150; ns_per_cell = 2_700;
        mem_base = 20_000_000; mem_scaled = 320_000_000 }
  | Bratu ->
    Zapc_apps.Bratu.params_to_value
      { Zapc_apps.Bratu.g = 256; lambda = 6.0; max_iters = 250; tol = 1e-12;
        check_every = 10; ns_per_cell = 3_600; mem_base = 15_000_000;
        mem_scaled = 130_000_000 }
  | Povray ->
    Zapc_apps.Povray.params_to_value
      { Zapc_apps.Povray.width = 480; height = 360; block_rows = 6;
        ns_per_pixel = 350_000; mem_each = 10_000_000 }

(* the paper's sweeps: 1,2,4,8,16 nodes; BT needs square counts *)
let node_counts = function Bt -> [ 1; 4; 9; 16 ] | Cpi | Bratu | Povray -> [ 1; 2; 4; 8; 16 ]

(* 16 "nodes" = 8 dual-CPU blades with one pod per CPU (paper section 6) *)
let topology n =
  if n <= 9 then (n, 1, List.init n (fun i -> i))
  else (8, 2, List.init n (fun i -> i mod 8))

type run_mode = Base | Zapc_mode

let params_for mode =
  match mode with
  | Base ->
    (* vanilla: no pod interposition cost *)
    { Params.default with
      Params.kconfig = { Kconfig.default with Kconfig.virt_overhead = Simtime.zero } }
  | Zapc_mode -> Params.default

type run_env = {
  cluster : Cluster.t;
  app : Launch.app;
  node_count : int;
}

let launch_app ?(params = Params.default) ?(seed = 42) kind n : run_env =
  Zapc_apps.Registry.register_all ();
  let node_count, cpus, placement = topology n in
  let cluster = Cluster.make ~seed ~cpus ~params ~node_count () in
  let app =
    Launch.launch cluster ~name:(program_of kind) ~program:(program_of kind) ~placement
      ~app_args:(app_args kind) ()
  in
  { cluster; app; node_count }

(* completion time (virtual seconds) of one run *)
let completion_run ?(seed = 42) kind n mode : float =
  let env = launch_app ~params:(params_for mode) ~seed kind n in
  let t = Launch.wait_done env.cluster env.app in
  Simtime.to_sec t

(* --- checkpoint/restart measurement (Figure 6 methodology) --- *)

type ckpt_series = {
  ckpt_times : Stats.t;  (* ms, manager invocation -> all done *)
  net_ckpt_times : Stats.t;  (* ms, per-agent network-state save *)
  max_image : Stats.t;  (* MB: largest pod image, averaged over checkpoints *)
  net_bytes : Stats.t;  (* bytes of network-state data per pod *)
  restart_time : float;  (* ms, restart from the mid-run checkpoint *)
  restart_conn : Stats.t;  (* ms, per-agent connectivity recovery *)
  restart_net : Stats.t;  (* ms, per-agent network-state restore *)
  completion : float;  (* s, with the 10 checkpoints included *)
}

let items_for cluster (app : Launch.app) ~prefix =
  List.map
    (fun (p : Pod.t) ->
      let node =
        match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric cluster) p.rip with
        | Some n -> n
        | None -> 0
      in
      { Manager.ci_node = node; ci_pod = p.pod_id;
        ci_dest = Protocol.U_storage (Printf.sprintf "%s.pod%d" prefix p.pod_id) })
    app.Launch.pods

(* Run the application taking [count] evenly spaced checkpoints (the paper
   takes ten per execution), then restart from the middle image and measure
   the restart. *)
let checkpoint_run ?(seed = 42) ?(count = 10) kind n : ckpt_series =
  (* a first run estimates the completion time so checkpoints spread evenly *)
  let base_t = completion_run ~seed kind n Zapc_mode in
  let env = launch_app ~seed kind n in
  let cluster = env.cluster in
  let ckpt_times = Stats.create () in
  let net_ckpt_times = Stats.create () in
  let max_image = Stats.create () in
  let net_bytes = Stats.create () in
  let mid = (count + 1) / 2 in
  let mid_prefix = ref "" in
  for i = 1 to count do
    let at = Simtime.sec (base_t *. float_of_int i /. float_of_int (count + 1)) in
    Engine.schedule_at (Cluster.engine cluster) ~at (fun () ->
        if (not (Launch.is_done env.app)) && not (Manager.busy (Cluster.manager cluster))
        then begin
          let prefix = Printf.sprintf "ck%d" i in
          if i = mid then mid_prefix := prefix;
          Manager.checkpoint (Cluster.manager cluster)
            ~items:(items_for cluster env.app ~prefix)
            ~resume:true
            ~on_done:(fun r ->
              if r.Manager.r_ok then begin
                Stats.add ckpt_times (Simtime.to_ms r.Manager.r_duration);
                let largest =
                  List.fold_left
                    (fun acc (_, st) -> max acc st.Protocol.st_image_bytes)
                    0 r.Manager.r_stats
                in
                Stats.add max_image (float_of_int largest /. 1e6);
                List.iter
                  (fun (_, st) ->
                    Stats.add net_ckpt_times (Simtime.to_ms st.Protocol.st_net_time);
                    Stats.add net_bytes (float_of_int st.Protocol.st_net_bytes))
                  r.Manager.r_stats
              end)
        end)
  done;
  let completion = Simtime.to_sec (Launch.wait_done cluster env.app) in
  (* restart from the mid-run image on the same nodes (paper section 6.2);
     the image is already in (shared) memory *)
  let restart_time, restart_conn, restart_net =
    if String.equal !mid_prefix "" then (nan, Stats.create (), Stats.create ())
    else begin
      List.iter Pod.destroy env.app.Launch.pods;
      let items =
        List.map2
          (fun (p : Pod.t) node ->
            { Manager.ri_node = node; ri_pod = p.pod_id;
              ri_uri = Protocol.U_storage (Printf.sprintf "%s.pod%d" !mid_prefix p.pod_id) })
          env.app.Launch.pods
          (let _, _, placement = topology n in
           placement)
      in
      let r = Cluster.restart_sync cluster ~items in
      let conn = Stats.create () and net = Stats.create () in
      List.iter
        (fun (_, st) ->
          Stats.add conn (Simtime.to_ms st.Protocol.st_conn_time);
          Stats.add net (Simtime.to_ms st.Protocol.st_net_time))
        r.Manager.r_stats;
      let t = if r.Manager.r_ok then Simtime.to_ms r.Manager.r_duration else nan in
      (* stop the restored run: the measurement is done *)
      List.iter
        (fun (p : Pod.t) -> match Pod.find p.pod_id with Some pod -> Pod.destroy pod | None -> ())
        env.app.Launch.pods;
      (t, conn, net)
    end
  in
  { ckpt_times; net_ckpt_times; max_image; net_bytes; restart_time; restart_conn;
    restart_net; completion }

(* --- output helpers --- *)

let hr = String.make 78 '-'

let section title =
  Printf.printf "\n%s\n%s\n%s\n" hr title hr

let row fmt = Printf.printf fmt
