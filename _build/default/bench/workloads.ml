(* Purpose-built micro-workloads for the ablation experiments: a bulk
   transfer that leaves large send/receive queues at checkpoint time
   (exercising the send-queue redirection optimization) and an
   urgent-data exchange (exercising the peek-mode capture flaw). *)

module Simtime = Zapc_sim.Simtime
module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr
module Socket = Zapc_simnet.Socket
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall

let u32 n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.unsafe_to_string b

(* Sink: accepts one connection and reads slowly (2 KB every 5 ms), so the
   sender's queues stay full; logs total bytes and a checksum at EOF. *)
module Bulk_sink = struct
  type state = {
    port : int;
    mutable ph : int;  (* 0 socket,1 bind,2 listen,3 accept,4 sleep,5 read *)
    mutable lfd : int;
    mutable cfd : int;
    mutable total : int;
    mutable digest : int;
  }

  let name = "bench.bulk_sink"

  let start args =
    { port = Value.to_int args; ph = 0; lfd = -1; cfd = -1; total = 0; digest = 0 }

  let step s (outcome : Syscall.outcome) =
    match (s.ph, outcome) with
    | 0, _ ->
      s.ph <- 1;
      (s, Program.Sys (Syscall.Sock_create Socket.Stream))
    | 1, Syscall.Ret (Syscall.Rint fd) ->
      s.lfd <- fd;
      s.ph <- 2;
      (s, Program.Sys (Syscall.Bind (fd, { Addr.ip = Addr.any; port = s.port })))
    | 2, _ ->
      s.ph <- 3;
      (s, Program.Sys (Syscall.Listen (s.lfd, 4)))
    | 3, Syscall.Ret (Syscall.Raccept (fd, _)) ->
      s.cfd <- fd;
      s.ph <- 4;
      (s, Program.Sys (Syscall.Nanosleep (Simtime.ms 1)))
    | 3, Syscall.Err _ -> (s, Program.Exit 1)
    | 3, _ -> (s, Program.Sys (Syscall.Accept s.lfd))
    | 4, _ ->
      s.ph <- 5;
      (s, Program.Sys (Syscall.Recv (s.cfd, 2048, Socket.plain_recv)))
    | 5, Syscall.Ret (Syscall.Rdata "") ->
      s.ph <- 6;
      ( s,
        Program.Sys
          (Syscall.Log (Printf.sprintf "sink done total=%d digest=%06x" s.total s.digest)) )
    | 5, Syscall.Ret (Syscall.Rdata d) ->
      s.total <- s.total + String.length d;
      String.iter (fun c -> s.digest <- (s.digest + Char.code c) land 0xFFFFFF) d;
      s.ph <- 4;
      (s, Program.Sys (Syscall.Nanosleep (Simtime.ms 5)))
    | 6, _ -> (s, Program.Exit 0)
    | _, _ -> (s, Program.Exit 2)

  let to_value s =
    Value.assoc
      [ ("port", Value.int s.port); ("ph", Value.int s.ph); ("lfd", Value.int s.lfd);
        ("cfd", Value.int s.cfd); ("total", Value.int s.total);
        ("digest", Value.int s.digest) ]

  let of_value v =
    {
      port = Value.to_int (Value.field "port" v);
      ph = Value.to_int (Value.field "ph" v);
      lfd = Value.to_int (Value.field "lfd" v);
      cfd = Value.to_int (Value.field "cfd" v);
      total = Value.to_int (Value.field "total" v);
      digest = Value.to_int (Value.field "digest" v);
    }
end

(* Sender: connects to the sink and pushes [chunks] x 8 KB as fast as the
   socket accepts, then shuts down. *)
module Bulk_sender = struct
  type state = {
    dst : int;  (* sink vip *)
    port : int;
    chunks : int;
    mutable ph : int;  (* 0 socket,1 connect,2 send,3 shutdown *)
    mutable fd : int;
    mutable sent_chunks : int;
    mutable rem : string;
  }

  let name = "bench.bulk_sender"

  let start args =
    {
      dst = Value.to_int (Value.field "dst" args);
      port = Value.to_int (Value.field "port" args);
      chunks = Value.to_int (Value.field "chunks" args);
      ph = 0;
      fd = -1;
      sent_chunks = 0;
      rem = "";
    }

  let chunk i = String.init 8192 (fun j -> Char.chr ((i + (j * 7)) land 0xff))

  let step s (outcome : Syscall.outcome) =
    match (s.ph, outcome) with
    | 0, _ ->
      s.ph <- 1;
      (s, Program.Sys (Syscall.Sock_create Socket.Stream))
    | 1, Syscall.Ret (Syscall.Rint fd) ->
      s.fd <- fd;
      (s, Program.Sys (Syscall.Connect (fd, { Addr.ip = s.dst; port = s.port })))
    | 1, Syscall.Ret Syscall.Rnone ->
      s.ph <- 2;
      s.rem <- chunk 0;
      (s, Program.Sys (Syscall.Send (s.fd, s.rem)))
    | 1, Syscall.Err _ ->
      (* retry until the sink listens: close, back off, reconnect *)
      s.ph <- 10;
      (s, Program.Sys (Syscall.Close s.fd))
    | 10, _ ->
      s.ph <- 11;
      (s, Program.Sys (Syscall.Nanosleep (Simtime.ms 10)))
    | 11, _ ->
      s.ph <- 1;
      (s, Program.Sys (Syscall.Sock_create Socket.Stream))
    | 2, Syscall.Ret (Syscall.Rint n) ->
      s.rem <- String.sub s.rem n (String.length s.rem - n);
      if String.length s.rem > 0 then (s, Program.Sys (Syscall.Send (s.fd, s.rem)))
      else begin
        s.sent_chunks <- s.sent_chunks + 1;
        if s.sent_chunks >= s.chunks then begin
          s.ph <- 3;
          (s, Program.Sys (Syscall.Shutdown (s.fd, Syscall.Shut_wr)))
        end
        else begin
          s.rem <- chunk s.sent_chunks;
          (s, Program.Sys (Syscall.Send (s.fd, s.rem)))
        end
      end
    | 3, _ -> (s, Program.Sys (Syscall.Log "sender done"))
    | 4, _ -> (s, Program.Exit 0)
    | _, Syscall.Err _ -> (s, Program.Exit 1)
    | _, _ ->
      if s.ph = 3 then begin
        s.ph <- 4;
        (s, Program.Sys (Syscall.Log "sender done"))
      end
      else (s, Program.Exit 2)

  let to_value s =
    Value.assoc
      [ ("dst", Value.int s.dst); ("port", Value.int s.port);
        ("chunks", Value.int s.chunks); ("ph", Value.int s.ph); ("fd", Value.int s.fd);
        ("sent_chunks", Value.int s.sent_chunks); ("rem", Value.str s.rem) ]

  let of_value v =
    {
      dst = Value.to_int (Value.field "dst" v);
      port = Value.to_int (Value.field "port" v);
      chunks = Value.to_int (Value.field "chunks" v);
      ph = Value.to_int (Value.field "ph" v);
      fd = Value.to_int (Value.field "fd" v);
      sent_chunks = Value.to_int (Value.field "sent_chunks" v);
      rem = Value.to_str (Value.field "rem" v);
    }
end

(* OOB scenario: the sender transmits stream data plus an urgent byte, the
   receiver deliberately sleeps through the checkpoint, then reads both and
   reports whether the urgent byte survived. *)
module Oob_recv = struct
  type state = {
    port : int;
    mutable ph : int;  (* 0..3 setup, 4 sleep, 5 read stream, 6 read oob *)
    mutable lfd : int;
    mutable cfd : int;
    mutable got : string;
  }

  let name = "bench.oob_recv"
  let start args = { port = Value.to_int args; ph = 0; lfd = -1; cfd = -1; got = "" }

  let step s (outcome : Syscall.outcome) =
    match (s.ph, outcome) with
    | 0, _ ->
      s.ph <- 1;
      (s, Program.Sys (Syscall.Sock_create Socket.Stream))
    | 1, Syscall.Ret (Syscall.Rint fd) ->
      s.lfd <- fd;
      s.ph <- 2;
      (s, Program.Sys (Syscall.Bind (fd, { Addr.ip = Addr.any; port = s.port })))
    | 2, _ ->
      s.ph <- 3;
      (s, Program.Sys (Syscall.Listen (s.lfd, 2)))
    | 3, Syscall.Ret (Syscall.Raccept (fd, _)) ->
      s.cfd <- fd;
      s.ph <- 4;
      (* sleep long enough for the checkpoint to land while the queue and
         the urgent byte are still pending *)
      (s, Program.Sys (Syscall.Nanosleep (Simtime.ms 200)))
    | 3, _ -> (s, Program.Sys (Syscall.Accept s.lfd))
    | 4, _ ->
      s.ph <- 5;
      (s, Program.Sys (Syscall.Recv (s.cfd, 1024, Socket.plain_recv)))
    | 5, Syscall.Ret (Syscall.Rdata d) ->
      s.got <- s.got ^ d;
      s.ph <- 6;
      ( s,
        Program.Sys
          (Syscall.Recv (s.cfd, 1, { Socket.peek = false; oob = true; dontwait = true })) )
    | 6, Syscall.Ret (Syscall.Rdata oob) ->
      s.ph <- 7;
      (s, Program.Sys (Syscall.Log (Printf.sprintf "oob got=[%s] oob=[%s]" s.got oob)))
    | 6, Syscall.Err _ ->
      s.ph <- 7;
      (s, Program.Sys (Syscall.Log (Printf.sprintf "oob got=[%s] oob=[LOST]" s.got)))
    | 7, _ -> (s, Program.Exit 0)
    | _, _ -> (s, Program.Exit 1)

  let to_value s =
    Value.assoc
      [ ("port", Value.int s.port); ("ph", Value.int s.ph); ("lfd", Value.int s.lfd);
        ("cfd", Value.int s.cfd); ("got", Value.str s.got) ]

  let of_value v =
    {
      port = Value.to_int (Value.field "port" v);
      ph = Value.to_int (Value.field "ph" v);
      lfd = Value.to_int (Value.field "lfd" v);
      cfd = Value.to_int (Value.field "cfd" v);
      got = Value.to_str (Value.field "got" v);
    }
end

module Oob_send = struct
  type state = { dst : int; port : int; mutable ph : int; mutable fd : int }

  let name = "bench.oob_send"

  let start args =
    { dst = Value.to_int (Value.field "dst" args);
      port = Value.to_int (Value.field "port" args); ph = 0; fd = -1 }

  let step s (outcome : Syscall.outcome) =
    match (s.ph, outcome) with
    | 0, _ ->
      s.ph <- 1;
      (s, Program.Sys (Syscall.Sock_create Socket.Stream))
    | 1, Syscall.Ret (Syscall.Rint fd) ->
      s.fd <- fd;
      (s, Program.Sys (Syscall.Connect (fd, { Addr.ip = s.dst; port = s.port })))
    | 1, Syscall.Ret Syscall.Rnone ->
      s.ph <- 2;
      (s, Program.Sys (Syscall.Send (s.fd, "stream-data")))
    | 1, Syscall.Err _ ->
      s.ph <- 10;
      (s, Program.Sys (Syscall.Close s.fd))
    | 10, _ ->
      s.ph <- 11;
      (s, Program.Sys (Syscall.Nanosleep (Simtime.ms 10)))
    | 11, _ ->
      s.ph <- 1;
      (s, Program.Sys (Syscall.Sock_create Socket.Stream))
    | 2, _ ->
      s.ph <- 3;
      (s, Program.Sys (Syscall.Send_oob (s.fd, '!')))
    | 3, _ ->
      s.ph <- 4;
      (s, Program.Sys (Syscall.Nanosleep (Simtime.sec 2.0)))
    | 4, _ -> (s, Program.Exit 0)
    | _, _ -> (s, Program.Exit 1)

  let to_value s =
    Value.assoc
      [ ("dst", Value.int s.dst); ("port", Value.int s.port); ("ph", Value.int s.ph);
        ("fd", Value.int s.fd) ]

  let of_value v =
    {
      dst = Value.to_int (Value.field "dst" v);
      port = Value.to_int (Value.field "port" v);
      ph = Value.to_int (Value.field "ph" v);
      fd = Value.to_int (Value.field "fd" v);
    }
end

let register () =
  Program.register_if_absent (module Bulk_sink : Program.S);
  Program.register_if_absent (module Bulk_sender : Program.S);
  Program.register_if_absent (module Oob_recv : Program.S);
  Program.register_if_absent (module Oob_send : Program.S)
