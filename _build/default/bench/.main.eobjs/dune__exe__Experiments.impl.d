bench/experiments.ml: Driver List Printf String Workloads Zapc Zapc_apps Zapc_codec Zapc_msg Zapc_pod Zapc_sim Zapc_simnet Zapc_simos
