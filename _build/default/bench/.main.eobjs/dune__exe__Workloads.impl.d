bench/workloads.ml: Bytes Char Int32 Printf String Zapc_codec Zapc_sim Zapc_simnet Zapc_simos
