bench/micro.ml: Analyze Array Bechamel Benchmark Driver Hashtbl Instance List Measure Printf Staged String Test Time Toolkit Zapc_codec Zapc_sim Zapc_simnet
