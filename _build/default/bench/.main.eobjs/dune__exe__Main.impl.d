bench/main.ml: Array Driver Experiments Micro Printf Sys Zapc_apps Zapc_sim
