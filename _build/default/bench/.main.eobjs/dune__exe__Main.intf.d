bench/main.mli:
