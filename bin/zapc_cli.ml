(* zapc-cli: drive the simulated ZapC cluster from the command line.

     zapc-cli run --app bt --ranks 4 --nodes 4 [--snapshot-at MS] [--restart-on 2,3]
     zapc-cli migrate --app cpi --ranks 2 --from 0,1 --to 2,3 --at MS
     zapc-cli apps
     zapc-cli params
*)

module Simtime = Zapc_sim.Simtime
module Value = Zapc_codec.Value
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Protocol = Zapc.Protocol
module Launch = Zapc_msg.Launch
open Cmdliner

let app_conv =
  let parse s =
    match s with
    | "cpi" | "bt" | "bt_nas" | "bratu" | "povray" -> Ok s
    | _ -> Error (`Msg "unknown app (cpi|bt|bratu|povray)")
  in
  Arg.conv (parse, Format.pp_print_string)

let program_of = function "bt" -> "bt_nas" | s -> s

let args_of app scale =
  let s = max 1 scale in
  match program_of app with
  | "cpi" ->
    Zapc_apps.Cpi.params_to_value
      { Zapc_apps.Cpi.default_params with intervals = 400_000 * s; chunks = 10 }
  | "bt_nas" ->
    Zapc_apps.Bt_nas.params_to_value
      { Zapc_apps.Bt_nas.default_params with g = 96 * s; iters = 30 }
  | "bratu" ->
    Zapc_apps.Bratu.params_to_value
      { Zapc_apps.Bratu.default_params with g = 64 * s; max_iters = 60 }
  | "povray" ->
    Zapc_apps.Povray.params_to_value
      { Zapc_apps.Povray.default_params with width = 160 * s; height = 96 * s }
  | _ -> Value.Unit

let setup_cluster ~nodes ~cpus ~seed =
  Zapc_apps.Registry.register_all ();
  let cluster = Cluster.make ~seed ~cpus ~params:Zapc.Params.default ~node_count:nodes () in
  for i = 0 to nodes - 1 do
    Kernel.set_logger (Cluster.node cluster i).Cluster.n_kernel (fun k _ m ->
        Printf.printf "[%9.2f ms | node%d] %s\n%!" (Simtime.to_ms (Kernel.now k))
          k.Kernel.node_id m)
  done;
  cluster

let parse_node_list ~nodes s =
  let l =
    String.split_on_char ',' s |> List.filter (fun x -> x <> "") |> List.map int_of_string
  in
  (match List.find_opt (fun n -> n < 0 || n >= nodes) l with
   | Some n ->
     Printf.eprintf "zapc-cli: node %d is outside the cluster (0..%d)\n%!" n (nodes - 1);
     exit 2
   | None -> ());
  if l = [] then begin
    Printf.eprintf "zapc-cli: empty node list\n%!";
    exit 2
  end;
  l

let ranks_of_app program pod_ids =
  List.concat_map
    (fun id ->
      match Pod.find id with
      | None -> []
      | Some pod ->
        List.filter_map
          (fun (_, (p : Proc.t)) ->
            if String.equal (Zapc_simos.Program.name_of p.Proc.inst) program then Some p
            else None)
          (Pod.members pod))
    pod_ids

(* --- run --- *)

let run_cmd app ranks nodes cpus scale seed snapshot_at restart_on trace_out =
  let cluster = setup_cluster ~nodes ~cpus ~seed in
  let tr = Option.map (fun _ -> Cluster.enable_trace cluster) trace_out in
  let placement = List.init ranks (fun r -> r mod nodes) in
  let program = program_of app in
  let appl =
    Launch.launch cluster ~name:app ~program ~placement ~app_args:(args_of app scale) ()
  in
  Printf.printf "launched %s with %d ranks on %d nodes\n%!" app ranks nodes;
  (match snapshot_at with
   | None -> ignore (Launch.wait_done cluster appl)
   | Some ms ->
     Cluster.run cluster ~until:(Simtime.ms ms) ();
     if Launch.is_done appl then
       print_endline "application finished before the snapshot time"
     else begin
       let r = Cluster.snapshot cluster ~pods:appl.Launch.pods ~key_prefix:"cli" in
       Printf.printf "snapshot: ok=%b duration=%.1fms\n%!" r.Manager.r_ok
         (Simtime.to_ms r.Manager.r_duration);
       List.iter
         (fun (pod, st) ->
           Printf.printf "  pod%d: image=%.1fMB net=%.2fms sockets=%d procs=%d\n%!" pod
             (float_of_int st.Protocol.st_image_bytes /. 1e6)
             (Simtime.to_ms st.Protocol.st_net_time)
             st.Protocol.st_sockets st.Protocol.st_procs)
         r.Manager.r_stats;
       match restart_on with
       | None -> ignore (Launch.wait_done cluster appl)
       | Some targets ->
         let targets = parse_node_list ~nodes targets in
         ignore (Launch.wait_done cluster appl);
         Printf.printf "restarting the snapshot on nodes %s\n%!"
           (String.concat "," (List.map string_of_int targets));
         let targets_padded =
           List.init ranks (fun i -> List.nth targets (i mod List.length targets))
         in
         let rr =
           Cluster.restart_app cluster ~pod_ids:(Launch.pod_ids appl)
             ~target_nodes:targets_padded ~key_prefix:"cli"
         in
         Printf.printf "restart: ok=%b duration=%.1fms\n%!" rr.Manager.r_ok
           (Simtime.to_ms rr.Manager.r_duration);
         let rks = ranks_of_app program (Launch.pod_ids appl) in
         Cluster.run_until cluster ~timeout:(Simtime.sec 36000.0) (fun () ->
             List.for_all (fun (p : Proc.t) -> p.Proc.exit_code <> None) rks)
     end);
  (match (trace_out, tr) with
   | Some path, Some tr ->
     Zapc.Trace.dump_chrome tr path;
     Printf.printf "wrote Chrome trace to %s (load in chrome://tracing or ui.perfetto.dev)\n%!"
       path
   | _ -> ());
  Printf.printf "done at %.1f ms (virtual); %d engine events\n%!"
    (Simtime.to_ms (Cluster.now cluster))
    (Zapc_sim.Engine.events_processed (Cluster.engine cluster))

(* --- migrate --- *)

let migrate_cmd app ranks nodes cpus scale seed at to_ =
  let cluster = setup_cluster ~nodes ~cpus ~seed in
  let placement = List.init ranks (fun r -> r mod nodes) in
  let program = program_of app in
  let appl =
    Launch.launch cluster ~name:app ~program ~placement ~app_args:(args_of app scale) ()
  in
  Cluster.run cluster ~until:(Simtime.ms at) ();
  if Launch.is_done appl then print_endline "application finished before the migration"
  else begin
    let targets = parse_node_list ~nodes to_ in
    let targets = List.init ranks (fun i -> List.nth targets (i mod List.length targets)) in
    let where (p : Pod.t) =
      match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric cluster) p.rip with
      | Some n -> n
      | None -> 0
    in
    let items =
      List.map2
        (fun (p : Pod.t) dst ->
          { Manager.ci_node = where p; ci_pod = p.pod_id; ci_dest = Protocol.U_node dst })
        appl.Launch.pods targets
    in
    let ck = Cluster.checkpoint_sync cluster ~items ~resume:false in
    Printf.printf "stream checkpoint: ok=%b duration=%.1fms\n%!" ck.Manager.r_ok
      (Simtime.to_ms ck.Manager.r_duration);
    let ritems =
      List.map2
        (fun id dst -> { Manager.ri_node = dst; ri_pod = id; ri_uri = Protocol.U_node dst })
        (Launch.pod_ids appl) targets
    in
    let rr = Cluster.restart_sync cluster ~items:ritems in
    Printf.printf "restart: ok=%b duration=%.1fms\n%!" rr.Manager.r_ok
      (Simtime.to_ms rr.Manager.r_duration);
    let rks = ranks_of_app program (Launch.pod_ids appl) in
    Cluster.run_until cluster ~timeout:(Simtime.sec 36000.0) (fun () ->
        List.for_all (fun (p : Proc.t) -> p.Proc.exit_code <> None) rks)
  end;
  Printf.printf "done at %.1f ms (virtual)\n%!" (Simtime.to_ms (Cluster.now cluster))

(* --- timeline --- *)

let timeline_cmd app ranks nodes cpus scale seed at trace_out =
  let cluster = setup_cluster ~nodes ~cpus ~seed in
  let tr = Cluster.enable_trace cluster in
  let placement = List.init ranks (fun r -> r mod nodes) in
  let program = program_of app in
  let appl =
    Launch.launch cluster ~name:app ~program ~placement ~app_args:(args_of app scale) ()
  in
  Cluster.run cluster ~until:(Simtime.ms at) ();
  if Launch.is_done appl then print_endline "application finished before the snapshot"
  else begin
    let r = Cluster.snapshot cluster ~pods:appl.Launch.pods ~key_prefix:"tl" in
    Printf.printf "snapshot ok=%b duration=%.1fms\n\n%!" r.Manager.r_ok
      (Simtime.to_ms r.Manager.r_duration);
    print_string (Zapc.Trace.render_checkpoint tr);
    match trace_out with
    | Some path ->
      Zapc.Trace.dump_chrome tr path;
      Printf.printf "\nwrote Chrome trace to %s (load in chrome://tracing or ui.perfetto.dev)\n%!"
        path
    | None -> ()
  end

(* --- info --- *)

let apps_cmd () =
  print_endline "available applications:";
  print_endline "  cpi     parallel computation of pi (compute-bound, small allreduces)";
  print_endline "  bt      BT/NAS-style block-tridiagonal solver (heavy halo exchange)";
  print_endline "  bratu   PETSc-style nonlinear PDE solver (moderate communication)";
  print_endline "  povray  master/worker ray tracer (CPU-bound, small messages)"

let params_cmd () =
  let p = Zapc.Params.default in
  let t v = Format.asprintf "%a" Simtime.pp v in
  Printf.printf "fabric: latency=%s bandwidth=%.0e bps\n" (t p.fabric.latency)
    p.fabric.bandwidth_bps;
  Printf.printf "control: latency=%s\n" (t p.ctrl_latency);
  Printf.printf "memory bandwidth (images): %.1f GB/s\n" (p.mem_bw /. 1e9);
  Printf.printf "checkpoint fixed: %s  restore fixed: %s\n" (t p.ckpt_fixed)
    (t p.restore_fixed);
  Printf.printf "cost jitter: +-%.0f%%\n" (p.cost_jitter *. 100.0)

(* --- cmdliner wiring --- *)

let app_t = Arg.(value & opt app_conv "cpi" & info [ "app"; "a" ] ~doc:"Application to run.")
let ranks_t = Arg.(value & opt int 2 & info [ "ranks"; "r" ] ~doc:"Number of MPI ranks (pods).")
let nodes_t = Arg.(value & opt int 4 & info [ "nodes"; "n" ] ~doc:"Cluster size.")
let cpus_t = Arg.(value & opt int 1 & info [ "cpus" ] ~doc:"CPUs per node.")
let scale_t = Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Problem size multiplier.")
let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let snapshot_t =
  Arg.(value & opt (some int) None & info [ "snapshot-at" ] ~doc:"Take a snapshot at MS (virtual).")

let restart_on_t =
  Arg.(value & opt (some string) None
       & info [ "restart-on" ] ~doc:"After completion, restart the snapshot on NODES (comma separated).")

let at_t = Arg.(value & opt int 10 & info [ "at" ] ~doc:"Migrate at MS (virtual).")

let trace_out_t =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ]
           ~doc:"Write the operation's span timeline as Chrome trace_event JSON to FILE \
                 (open in chrome://tracing or ui.perfetto.dev).")
let to_t = Arg.(required & opt (some string) None & info [ "to" ] ~doc:"Target NODES (comma separated).")

let run_term = Term.(const run_cmd $ app_t $ ranks_t $ nodes_t $ cpus_t $ scale_t $ seed_t $ snapshot_t $ restart_on_t $ trace_out_t)
let migrate_term = Term.(const migrate_cmd $ app_t $ ranks_t $ nodes_t $ cpus_t $ scale_t $ seed_t $ at_t $ to_t)
let timeline_term = Term.(const timeline_cmd $ app_t $ ranks_t $ nodes_t $ cpus_t $ scale_t $ seed_t $ at_t $ trace_out_t)

let cmds =
  [ Cmd.v (Cmd.info "run" ~doc:"Run a distributed application (optionally snapshot + restart).") run_term;
    Cmd.v (Cmd.info "migrate" ~doc:"Live-migrate a running application to other nodes.") migrate_term;
    Cmd.v (Cmd.info "timeline" ~doc:"Render the Figure-2 coordinated-checkpoint timeline.") timeline_term;
    Cmd.v (Cmd.info "apps" ~doc:"List available applications.") Term.(const apps_cmd $ const ());
    Cmd.v (Cmd.info "params" ~doc:"Show the default cost-model parameters.") Term.(const params_cmd $ const ()) ]

let () =
  let doc = "transparent coordinated checkpoint-restart on a simulated cluster (ZapC)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "zapc-cli" ~doc) cmds))
