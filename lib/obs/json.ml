(* Recursive-descent JSON parser — no external deps. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape");
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | '/' -> Buffer.add_char b '/'; advance ()
        | 'b' -> Buffer.add_char b '\b'; advance ()
        | 'f' -> Buffer.add_char b '\012'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "short \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape"
          in
          (* decode as raw code point bytes; enough for validation *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end;
          pos := !pos + 4
        | c -> fail (Printf.sprintf "bad escape %C" c));
        go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    if !pos = start then fail "expected number";
    (* float_of_string is laxer than JSON and would take "+1" *)
    if s.[start] = '+' then fail "leading '+' is not JSON";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at byte %d" !pos)
    else Ok v
  with Fail (p, msg) -> Error (Printf.sprintf "%s at byte %d" msg p)

let parse_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | s -> parse s
  | exception Sys_error e -> Error e

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
