(* Critical-path analysis over a finished operation's span tree.

   Given the closed spans recorded during one operation and its window
   [t0, t1], walk backwards from t1: at each cursor position charge the
   innermost span still covering the cursor (latest begin wins — a leaf
   phase like "net_ckpt" beats its "pod_ckpt" container), jump the cursor
   to that span's begin, and charge uncovered gaps to "other".  Spans that
   cover the whole window (the op span itself, or a container opened and
   closed with it) carry no attribution and are excluded up front.

   The result answers "which phase dominates end-to-end latency" — the
   per-op breakdown the Manager emits as mgr.critpath.* metrics. *)

module Simtime = Zapc_sim.Simtime

type report = {
  cp_total : Simtime.t;                     (* t1 - t0 *)
  cp_phases : (string * Simtime.t) list;    (* duration desc, then name *)
  cp_dominant : string;                     (* head of cp_phases, "" if none *)
}

let analyze ~spans ~t0 ~t1 =
  let total = if Simtime.compare t1 t0 > 0 then t1 - t0 else 0 in
  (* candidates: closed, intersecting the window, not covering all of it *)
  let cands =
    List.filter_map
      (fun (s : Span.span) ->
        match s.Span.sp_end with
        | None -> None
        | Some e ->
          let b = s.Span.sp_begin in
          if e <= t0 || b >= t1 then None
          else if b <= t0 && e >= t1 then None
          else Some (s.Span.sp_name, max b t0, min e t1))
      spans
  in
  let charge = Hashtbl.create 8 in
  let add name d =
    if d > 0 then
      match Hashtbl.find_opt charge name with
      | Some r -> r := !r + d
      | None -> Hashtbl.replace charge name (ref d)
  in
  let cursor = ref t1 in
  while !cursor > t0 do
    let c = !cursor in
    (* innermost span active at the cursor: begin < c <= end, max begin;
       ties (same begin) go to the later-ending span for determinism *)
    let active =
      List.fold_left
        (fun acc (n, b, e) ->
          if b < c && c <= e then
            match acc with
            | Some (_, b', e') when b' > b || (b' = b && e' >= e) -> acc
            | _ -> Some (n, b, e)
          else acc)
        None cands
    in
    match active with
    | Some (name, b, _) ->
      add name (c - max b t0);
      cursor := max b t0
    | None ->
      (* gap: jump to the latest end strictly before the cursor *)
      let prev =
        List.fold_left
          (fun acc (_, _, e) ->
            if e < c then max acc e else acc)
          t0 cands
      in
      add "other" (c - prev);
      cursor := prev
  done;
  let phases =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) charge []
    |> List.sort (fun (na, da) (nb, db) ->
           match compare db da with 0 -> compare na nb | c -> c)
  in
  { cp_total = total;
    cp_phases = phases;
    cp_dominant = (match phases with (n, _) :: _ -> n | [] -> "") }
