(* Chrome trace_event exporter.

   Track mapping: pid = node + 1 (so the manager/cluster scope, node -1,
   lands on pid 0), tid = pod + 1 (manager-scope spans on tid 0).  The
   real ids are preserved in the args object. *)

module Simtime = Zapc_sim.Simtime

let esc s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us t = Printf.sprintf "%.3f" (Simtime.to_us t)

let to_string rec_ =
  let spans = Span.spans rec_ in
  let instants = Span.instants rec_ in
  let close_at = Span.last_time rec_ in
  let b = Buffer.create 8192 in
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b s
  in
  Buffer.add_string b "{\"traceEvents\":[";
  (* Metadata: name the node processes and pod threads. *)
  let procs = Hashtbl.create 8 and threads = Hashtbl.create 16 in
  let note_track node pod =
    if not (Hashtbl.mem procs node) then Hashtbl.replace procs node ();
    if not (Hashtbl.mem threads (node, pod)) then
      Hashtbl.replace threads (node, pod) ()
  in
  List.iter (fun (sp : Span.span) -> note_track sp.sp_node sp.sp_pod) spans;
  List.iter (fun (i : Span.instant) -> note_track i.in_node i.in_pod) instants;
  let proc_list =
    Hashtbl.fold (fun k () acc -> k :: acc) procs [] |> List.sort compare
  in
  let thread_list =
    Hashtbl.fold (fun k () acc -> k :: acc) threads [] |> List.sort compare
  in
  List.iter
    (fun node ->
      let name = if node < 0 then "manager" else Printf.sprintf "node%d" node in
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
           (node + 1) name))
    proc_list;
  List.iter
    (fun (node, pod) ->
      let name = if pod < 0 then "control" else Printf.sprintf "pod%d" pod in
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           (node + 1) (pod + 1) name))
    thread_list;
  let by_id = Hashtbl.create 64 in
  List.iter (fun (sp : Span.span) -> Hashtbl.replace by_id sp.sp_id sp) spans;
  List.iter
    (fun (sp : Span.span) ->
      let finish, unfinished =
        match sp.sp_end with
        | Some e -> e, false
        | None -> Simtime.max close_at sp.sp_begin, true
      in
      let dur = Simtime.sub finish sp.sp_begin in
      emit
        (Printf.sprintf
           "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"zapc\",\"pid\":%d,\"tid\":%d,\
            \"ts\":%s,\"dur\":%s,\"args\":{\"op\":%d,\"pod\":%d,\"node\":%d,\
            \"sid\":%d%s%s}}"
           (esc sp.sp_name) (sp.sp_node + 1) (sp.sp_pod + 1)
           (us sp.sp_begin) (us dur) sp.sp_op sp.sp_pod sp.sp_node sp.sp_id
           (match sp.sp_parent with
            | Some p -> Printf.sprintf ",\"parent\":%d" p
            | None -> "")
           (if unfinished then ",\"unfinished\":true" else "")))
    spans;
  (* Flow events for the cross-node causal edges: when a span's parent was
     recorded on a different node, join the two slices with an s/f pair
     (id = the child's span id, unique per recorder). *)
  List.iter
    (fun (sp : Span.span) ->
      match sp.sp_parent with
      | Some pid -> (
        match Hashtbl.find_opt by_id pid with
        | Some (parent : Span.span) when parent.sp_node <> sp.sp_node ->
          emit
            (Printf.sprintf
               "{\"ph\":\"s\",\"name\":\"causal\",\"cat\":\"zapc\",\"id\":%d,\
                \"pid\":%d,\"tid\":%d,\"ts\":%s}"
               sp.sp_id (parent.sp_node + 1) (parent.sp_pod + 1)
               (us parent.sp_begin));
          emit
            (Printf.sprintf
               "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"causal\",\"cat\":\"zapc\",\
                \"id\":%d,\"pid\":%d,\"tid\":%d,\"ts\":%s}"
               sp.sp_id (sp.sp_node + 1) (sp.sp_pod + 1) (us sp.sp_begin))
        | _ -> ())
      | None -> ())
    spans;
  List.iter
    (fun (i : Span.instant) ->
      emit
        (Printf.sprintf
           "{\"ph\":\"i\",\"name\":\"%s\",\"cat\":\"zapc\",\"s\":\"t\",\
            \"pid\":%d,\"tid\":%d,\"ts\":%s,\
            \"args\":{\"pod\":%d,\"node\":%d}}"
           (esc i.in_what) (i.in_node + 1) (i.in_pod + 1) (us i.in_time)
           i.in_pod i.in_node))
    instants;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let dump rec_ path =
  let oc = open_out path in
  output_string oc (to_string rec_);
  output_char oc '\n';
  close_out oc
