(* Metrics registry: counters, gauges, fixed-bucket histograms.

   Everything lives in per-kind hashtables keyed by the instrument name.
   The hot paths (incr / observe) do one hashtable lookup and O(log B)
   work for the bucket search, so the registry can stay on for every run
   without perturbing benchmark numbers. *)

type hist = {
  h_bounds : float array; (* ascending upper bounds; +inf implicit *)
  h_counts : int array;   (* length = Array.length h_bounds + 1 *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type gauge = Gval of float | Gfn of (unit -> float)

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  mutable on_record : (string -> float -> unit) option;
}

let create () =
  { counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 32;
    on_record = None }

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.hists

let set_on_record t obs = t.on_record <- obs

let notify t name v =
  match t.on_record with Some f -> f name v | None -> ()

(* Counters *)

let add t name n =
  (match Hashtbl.find_opt t.counters name with
   | Some r -> r := !r + n
   | None -> Hashtbl.replace t.counters name (ref n));
  notify t name (float_of_int n)

let incr t name = add t name 1
let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(* Gauges *)

let set_gauge t name v = Hashtbl.replace t.gauges name (Gval v)
let gauge_fn t name f = Hashtbl.replace t.gauges name (Gfn f)

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some (Gval v) -> v
  | Some (Gfn f) -> f ()
  | None -> 0.

(* Histograms *)

let exp_buckets ~start ~factor ~n =
  if start <= 0. || factor <= 1. || n < 1 then
    invalid_arg "Metrics.exp_buckets";
  Array.init n (fun i -> start *. (factor ** float_of_int i))

let default_ms_buckets =
  (* 0.1ms .. 10s, roughly 1-2-5 per decade *)
  [| 0.1; 0.2; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.;
     1_000.; 2_000.; 5_000.; 10_000. |]

let default_bytes_buckets = exp_buckets ~start:1024. ~factor:4. ~n:11

let mk_hist bounds =
  let bounds = Array.copy bounds in
  Array.sort compare bounds;
  { h_bounds = bounds;
    h_counts = Array.make (Array.length bounds + 1) 0;
    h_count = 0;
    h_sum = 0.;
    h_min = infinity;
    h_max = neg_infinity }

let bucket_of h v =
  (* first bucket whose upper bound is >= v; overflow bucket otherwise *)
  let n = Array.length h.h_bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= h.h_bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe t ?(buckets = default_ms_buckets) name v =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
      let h = mk_hist buckets in
      Hashtbl.replace t.hists name h;
      h
  in
  h.h_counts.(bucket_of h v) <- h.h_counts.(bucket_of h v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  notify t name v

let hist_count t name =
  match Hashtbl.find_opt t.hists name with Some h -> h.h_count | None -> 0

let hist_sum t name =
  match Hashtbl.find_opt t.hists name with Some h -> h.h_sum | None -> 0.

let hist_quantile h q =
  if h.h_count = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = q *. float_of_int h.h_count in
    let acc = ref 0. and i = ref 0 in
    let nb = Array.length h.h_counts in
    while !i < nb - 1 && !acc +. float_of_int h.h_counts.(!i) < rank do
      acc := !acc +. float_of_int h.h_counts.(!i);
      i := !i + 1
    done;
    let v =
      if !i >= Array.length h.h_bounds then h.h_max
      else begin
        let ub = h.h_bounds.(!i) in
        let lb = if !i = 0 then 0. else h.h_bounds.(!i - 1) in
        let inbucket = float_of_int h.h_counts.(!i) in
        if inbucket <= 0. then ub
        else lb +. (ub -. lb) *. ((rank -. !acc) /. inbucket)
      end
    in
    (* clamp the estimate to what was actually observed *)
    let v = if v < h.h_min then h.h_min else v in
    if v > h.h_max then h.h_max else v
  end

let quantile t name q =
  match Hashtbl.find_opt t.hists name with
  | Some h -> hist_quantile h q
  | None -> 0.

let p50 t name = quantile t name 0.5
let p90 t name = quantile t name 0.9
let p99 t name = quantile t name 0.99

(* Snapshot *)

let esc s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fnum v =
  (* JSON has no inf/nan; empty-histogram min/max fall back to 0 *)
  if Float.is_nan v || v = infinity || v = neg_infinity then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let to_json t =
  let b = Buffer.create 4096 in
  let comma first = if not !first then Buffer.add_char b ',' ; first := false in
  Buffer.add_string b "{\"counters\":{";
  let first = ref true in
  List.iter
    (fun k ->
      comma first;
      Buffer.add_string b
        (Printf.sprintf "\"%s\":%d" (esc k) (counter t k)))
    (sorted_keys t.counters);
  Buffer.add_string b "},\"gauges\":{";
  let first = ref true in
  List.iter
    (fun k ->
      comma first;
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" (esc k) (fnum (gauge t k))))
    (sorted_keys t.gauges);
  Buffer.add_string b "},\"histograms\":{";
  let first = ref true in
  List.iter
    (fun k ->
      comma first;
      let h = Hashtbl.find t.hists k in
      Buffer.add_string b (Printf.sprintf "\"%s\":{" (esc k));
      Buffer.add_string b
        (Printf.sprintf "\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,"
           h.h_count (fnum h.h_sum) (fnum h.h_min) (fnum h.h_max));
      Buffer.add_string b
        (Printf.sprintf "\"p50\":%s,\"p90\":%s,\"p99\":%s,\"buckets\":["
           (fnum (hist_quantile h 0.5))
           (fnum (hist_quantile h 0.9))
           (fnum (hist_quantile h 0.99)));
      let nfirst = ref true in
      Array.iteri
        (fun i n ->
          if n > 0 then begin
            comma nfirst;
            let ub =
              if i < Array.length h.h_bounds then fnum h.h_bounds.(i)
              else "\"+inf\""
            in
            Buffer.add_string b (Printf.sprintf "[%s,%d]" ub n)
          end)
        h.h_counts;
      Buffer.add_string b "]}")
    (sorted_keys t.hists);
  Buffer.add_string b "}}";
  Buffer.contents b

let dump t path =
  let oc = open_out path in
  output_string oc (to_json t);
  output_char oc '\n';
  close_out oc
