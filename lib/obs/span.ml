module Simtime = Zapc_sim.Simtime

type span = {
  sp_id : int;
  sp_name : string;
  sp_op : int;
  sp_pod : int;
  sp_node : int;
  sp_parent : int option;
  sp_begin : Simtime.t;
  mutable sp_end : Simtime.t option;
}

type instant = {
  in_time : Simtime.t;
  in_pod : int;
  in_node : int;
  in_what : string;
}

type event = Opened of span | Closed of span

type t = {
  mutable spans : span list;       (* newest first *)
  mutable instants : instant list; (* newest first *)
  open_ : (int, span) Hashtbl.t;   (* sp_id -> still-open span *)
  mutable next_id : int;
  mutable last : Simtime.t;
  mutable observer : (event -> unit) option;
}

let create () =
  { spans = []; instants = []; open_ = Hashtbl.create 32; next_id = 0;
    last = Simtime.zero; observer = None }

let clear t =
  t.spans <- [];
  t.instants <- [];
  Hashtbl.reset t.open_;
  t.next_id <- 0;
  t.last <- Simtime.zero

let set_observer t obs = t.observer <- obs

let notify t ev = match t.observer with Some f -> f ev | None -> ()

let touch t time = if Simtime.compare time t.last > 0 then t.last <- time

let begin_span t ~time ?(op = 0) ?(node = -1) ?parent ~pod name =
  let sp =
    { sp_id = t.next_id; sp_name = name; sp_op = op; sp_pod = pod;
      sp_node = node; sp_parent = parent; sp_begin = time; sp_end = None }
  in
  t.next_id <- t.next_id + 1;
  t.spans <- sp :: t.spans;
  Hashtbl.replace t.open_ sp.sp_id sp;
  touch t time;
  notify t (Opened sp);
  sp

let close t ~time sp =
  sp.sp_end <- Some time;
  Hashtbl.remove t.open_ sp.sp_id;
  touch t time;
  notify t (Closed sp)

let end_span t ~time sp =
  match sp.sp_end with Some _ -> () | None -> close t ~time sp

let end_named t ~time ~pod name =
  (* most recently opened match = the open span with the largest id *)
  let best =
    Hashtbl.fold
      (fun _ s acc ->
        if s.sp_name = name && s.sp_pod = pod then
          match acc with
          | Some b when b.sp_id > s.sp_id -> acc
          | _ -> Some s
        else acc)
      t.open_ None
  in
  match best with
  | Some sp -> close t ~time sp; true
  | None -> false

let end_all_for_pod t ~time ~pod =
  let victims =
    Hashtbl.fold
      (fun _ s acc -> if s.sp_pod = pod then s :: acc else acc)
      t.open_ []
  in
  (* close in id order so observers see a deterministic sequence *)
  List.iter (fun sp -> close t ~time sp)
    (List.sort (fun a b -> compare a.sp_id b.sp_id) victims);
  touch t time

let instant t ~time ?(node = -1) ~pod what =
  t.instants <- { in_time = time; in_pod = pod; in_node = node; in_what = what }
                :: t.instants;
  touch t time

let spans t =
  List.sort
    (fun a b ->
      match Simtime.compare a.sp_begin b.sp_begin with
      | 0 -> compare a.sp_id b.sp_id
      | c -> c)
    t.spans

let instants t =
  List.stable_sort
    (fun a b -> Simtime.compare a.in_time b.in_time)
    (List.rev t.instants)

let open_spans t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.open_ []
  |> List.sort (fun a b -> compare a.sp_id b.sp_id)

let open_count t = Hashtbl.length t.open_
let last_time t = t.last

let find_span t id =
  List.find_opt (fun s -> s.sp_id = id) t.spans
