module Simtime = Zapc_sim.Simtime

type span = {
  sp_id : int;
  sp_name : string;
  sp_op : int;
  sp_pod : int;
  sp_node : int;
  sp_begin : Simtime.t;
  mutable sp_end : Simtime.t option;
}

type instant = {
  in_time : Simtime.t;
  in_pod : int;
  in_node : int;
  in_what : string;
}

type t = {
  mutable spans : span list;       (* newest first *)
  mutable instants : instant list; (* newest first *)
  mutable open_ : span list;       (* newest first *)
  mutable next_id : int;
  mutable last : Simtime.t;
}

let create () =
  { spans = []; instants = []; open_ = []; next_id = 0; last = Simtime.zero }

let clear t =
  t.spans <- [];
  t.instants <- [];
  t.open_ <- [];
  t.next_id <- 0;
  t.last <- Simtime.zero

let touch t time = if Simtime.compare time t.last > 0 then t.last <- time

let begin_span t ~time ?(op = 0) ?(node = -1) ~pod name =
  let sp =
    { sp_id = t.next_id; sp_name = name; sp_op = op; sp_pod = pod;
      sp_node = node; sp_begin = time; sp_end = None }
  in
  t.next_id <- t.next_id + 1;
  t.spans <- sp :: t.spans;
  t.open_ <- sp :: t.open_;
  touch t time;
  sp

let close t ~time sp =
  sp.sp_end <- Some time;
  t.open_ <- List.filter (fun s -> s != sp) t.open_;
  touch t time

let end_span t ~time sp =
  match sp.sp_end with Some _ -> () | None -> close t ~time sp

let end_named t ~time ~pod name =
  match
    List.find_opt (fun s -> s.sp_name = name && s.sp_pod = pod) t.open_
  with
  | Some sp -> close t ~time sp; true
  | None -> false

let end_all_for_pod t ~time ~pod =
  List.iter
    (fun sp -> if sp.sp_pod = pod then sp.sp_end <- Some time)
    t.open_;
  t.open_ <- List.filter (fun s -> s.sp_pod <> pod) t.open_;
  touch t time

let instant t ~time ?(node = -1) ~pod what =
  t.instants <- { in_time = time; in_pod = pod; in_node = node; in_what = what }
                :: t.instants;
  touch t time

let spans t =
  List.sort
    (fun a b ->
      match Simtime.compare a.sp_begin b.sp_begin with
      | 0 -> compare a.sp_id b.sp_id
      | c -> c)
    t.spans

let instants t =
  List.stable_sort
    (fun a b -> Simtime.compare a.in_time b.in_time)
    (List.rev t.instants)
let open_spans t = List.rev t.open_
let last_time t = t.last
