(** Minimal JSON reader used to validate our own exporters (the toolchain
    has no JSON dependency).  Strict enough for the @obs smoke check and
    unit tests: full value grammar, [\uXXXX] escapes decoded as raw
    code-point bytes, no trailing garbage accepted. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [parse s] is [Ok v] or [Error msg] with a byte offset in [msg]. *)
val parse : string -> (t, string) result

val parse_file : string -> (t, string) result

(** [member k v] is the value bound to [k] when [v] is an object. *)
val member : string -> t -> t option

val to_list : t -> t list option
val to_float : t -> float option
val to_string_opt : t -> string option
