(* Flight recorder: a bounded per-node ring of recent telemetry, dumped as
   a deterministic JSON artifact when something goes wrong (an aborted
   operation, an injected fault, a node declared dead).

   The recorder is deliberately independent of the span store: entries are
   scalar snapshots (ints, floats, strings), so Span can feed it without a
   dependency cycle and the dump serializes exactly — Simtime.t is an
   integer nanosecond count, written as a JSON integer. *)

module Simtime = Zapc_sim.Simtime

type entry =
  | Span_open of {
      f_time : Simtime.t;
      f_id : int;
      f_name : string;
      f_op : int;
      f_pod : int;
      f_parent : int option;
    }
  | Span_close of { f_time : Simtime.t; f_id : int }
  | Instant of { f_time : Simtime.t; f_pod : int; f_what : string }
  | Metric of { f_time : Simtime.t; f_name : string; f_value : float }

type ring = {
  buf : entry option array;
  mutable pos : int;  (* next write slot *)
  mutable len : int;  (* entries held, <= capacity *)
}

type t = {
  cap : int;
  rings : (int, ring) Hashtbl.t;  (* node -> ring; -1 = manager scope *)
  mutable dump_dir : string option;
  mutable trips : int;
  mutable last_dump : string option;
}

let create ?(cap = 64) () =
  let cap = max 1 cap in
  { cap; rings = Hashtbl.create 8; dump_dir = None; trips = 0;
    last_dump = None }

let capacity t = t.cap
let set_dump_dir t dir = t.dump_dir <- dir
let trips t = t.trips
let last_dump t = t.last_dump

let ring_for t node =
  match Hashtbl.find_opt t.rings node with
  | Some r -> r
  | None ->
    let r = { buf = Array.make t.cap None; pos = 0; len = 0 } in
    Hashtbl.replace t.rings node r;
    r

let record t ~node e =
  let r = ring_for t node in
  r.buf.(r.pos) <- Some e;
  r.pos <- (r.pos + 1) mod t.cap;
  if r.len < t.cap then r.len <- r.len + 1

let entries t ~node =
  match Hashtbl.find_opt t.rings node with
  | None -> []
  | Some r ->
    (* oldest first: start at pos - len (mod cap) *)
    let out = ref [] in
    for i = r.len - 1 downto 0 do
      let idx = (r.pos - 1 - i + (2 * t.cap)) mod t.cap in
      match r.buf.(idx) with
      | Some e -> out := e :: !out
      | None -> ()
    done;
    List.rev !out

let nodes t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.rings [] |> List.sort compare

let clear t =
  Hashtbl.reset t.rings;
  t.trips <- 0;
  t.last_dump <- None

(* JSON rendering — same conventions as Metrics.to_json (deterministic,
   sorted nodes, no inf/nan). *)

let esc s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fnum v =
  if Float.is_nan v || v = infinity || v = neg_infinity then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let entry_json b e =
  match e with
  | Span_open { f_time; f_id; f_name; f_op; f_pod; f_parent } ->
    Buffer.add_string b
      (Printf.sprintf
         "{\"kind\":\"span_open\",\"time\":%d,\"id\":%d,\"name\":\"%s\",\
          \"op\":%d,\"pod\":%d,\"parent\":%s}"
         f_time f_id (esc f_name) f_op f_pod
         (match f_parent with Some p -> string_of_int p | None -> "null"))
  | Span_close { f_time; f_id } ->
    Buffer.add_string b
      (Printf.sprintf "{\"kind\":\"span_close\",\"time\":%d,\"id\":%d}"
         f_time f_id)
  | Instant { f_time; f_pod; f_what } ->
    Buffer.add_string b
      (Printf.sprintf
         "{\"kind\":\"instant\",\"time\":%d,\"pod\":%d,\"what\":\"%s\"}"
         f_time f_pod (esc f_what))
  | Metric { f_time; f_name; f_value } ->
    Buffer.add_string b
      (Printf.sprintf
         "{\"kind\":\"metric\",\"time\":%d,\"name\":\"%s\",\"value\":%s}"
         f_time (esc f_name) (fnum f_value))

let to_string t ~time ~reason =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"reason\":\"%s\",\"time\":%d,\"seq\":%d,\"nodes\":["
       (esc reason) time t.trips);
  let first = ref true in
  List.iter
    (fun node ->
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_string b (Printf.sprintf "{\"node\":%d,\"entries\":[" node);
      let efirst = ref true in
      List.iter
        (fun e ->
          if not !efirst then Buffer.add_char b ',';
          efirst := false;
          entry_json b e)
        (entries t ~node);
      Buffer.add_string b "]}")
    (nodes t);
  Buffer.add_string b "]}";
  Buffer.contents b

let sanitize reason =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    reason

let trip t ~time ~reason =
  let json = to_string t ~time ~reason in
  t.last_dump <- Some json;
  (match t.dump_dir with
   | None -> ()
   | Some dir ->
     let path =
       Filename.concat dir
         (Printf.sprintf "FLIGHT_%03d_%s.json" t.trips (sanitize reason))
     in
     let oc = open_out path in
     output_string oc json;
     output_char oc '\n';
     close_out oc);
  t.trips <- t.trips + 1

(* Decode a dump back into entries — the round-trip the tests assert. *)

let entry_of_json v =
  let str k = Option.bind (Json.member k v) Json.to_string_opt in
  let num k =
    Option.bind (Json.member k v) Json.to_float |> Option.map int_of_float
  in
  let fl k = Option.bind (Json.member k v) Json.to_float in
  match str "kind" with
  | Some "span_open" -> (
    match (num "time", num "id", str "name", num "op", num "pod") with
    | Some f_time, Some f_id, Some f_name, Some f_op, Some f_pod ->
      let f_parent =
        match Json.member "parent" v with
        | Some Json.Null | None -> None
        | Some p -> Json.to_float p |> Option.map int_of_float
      in
      Some (Span_open { f_time; f_id; f_name; f_op; f_pod; f_parent })
    | _ -> None)
  | Some "span_close" -> (
    match (num "time", num "id") with
    | Some f_time, Some f_id -> Some (Span_close { f_time; f_id })
    | _ -> None)
  | Some "instant" -> (
    match (num "time", num "pod", str "what") with
    | Some f_time, Some f_pod, Some f_what ->
      Some (Instant { f_time; f_pod; f_what })
    | _ -> None)
  | Some "metric" -> (
    match (num "time", str "name", fl "value") with
    | Some f_time, Some f_name, Some f_value ->
      Some (Metric { f_time; f_name; f_value })
    | _ -> None)
  | _ -> None

let entries_of_json v =
  match Option.bind (Json.member "nodes" v) Json.to_list with
  | None -> None
  | Some nodes ->
    let ok = ref true in
    let out =
      List.concat_map
        (fun n ->
          let node =
            match Option.bind (Json.member "node" n) Json.to_float with
            | Some f -> int_of_float f
            | None -> ok := false; -1
          in
          match Option.bind (Json.member "entries" n) Json.to_list with
          | None -> ok := false; []
          | Some es ->
            List.filter_map
              (fun e ->
                match entry_of_json e with
                | Some e -> Some (node, e)
                | None -> ok := false; None)
              es)
        nodes
    in
    if !ok then Some out else None
