(** Critical-path analysis: from the closed spans of one finished operation
    and its window [t0, t1], report which phase dominates the end-to-end
    latency.

    The walk runs backwards from [t1]; at every point the innermost span
    covering it (latest begin) is charged, so leaf phases ("suspend",
    "net_ckpt", "standalone", "storage_put", …) win over their containers;
    stretches covered by no candidate span are charged to ["other"].
    Spans covering the whole window (the operation span itself) attribute
    nothing and are skipped.  Every charged nanosecond is charged exactly
    once: the phase durations sum to [cp_total]. *)

type report = {
  cp_total : Zapc_sim.Simtime.t;                  (** [t1 - t0] *)
  cp_phases : (string * Zapc_sim.Simtime.t) list; (** duration desc, then name *)
  cp_dominant : string;                           (** head phase, [""] if none *)
}

val analyze :
  spans:Span.span list ->
  t0:Zapc_sim.Simtime.t -> t1:Zapc_sim.Simtime.t -> report
(** Open spans in [spans] are ignored (the caller analyzes after the op
    closed everything). *)
