(** Always-on metrics registry: named counters, gauges and fixed-bucket
    histograms.  A registry is cheap enough to leave enabled in every
    simulation run — counters are a hashtable lookup plus an integer add,
    histograms a binary-search into a small bucket array.

    Naming convention (see doc/OBSERVABILITY.md): dotted lower-case paths,
    subsystem first — ["mgr.ckpt.ok"], ["sup.mttr_ms"],
    ["storage.replica_fallbacks"], ["net.tcp.retransmits"].  Histogram names
    carry their unit as a suffix (["_ms"], ["_bytes"]). *)

type t

val create : unit -> t

(** Drop every registered instrument (the {!set_on_record} observer is
    kept). *)
val clear : t -> unit

val set_on_record : t -> (string -> float -> unit) option -> unit
(** At most one observer, fired on every counter {!add}/{!incr} (with the
    delta) and every histogram {!observe} (with the sample) — the flight
    recorder's metric-delta feed.  Gauge writes are not observed. *)

(** {1 Counters} — monotonically increasing integers. *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit

(** [counter t name] is the current value, or [0] when [name] was never
    incremented. *)
val counter : t -> string -> int

(** {1 Gauges} — last-write-wins floats, or callback-backed values sampled
    at read/snapshot time (prometheus collect style). *)

val set_gauge : t -> string -> float -> unit

(** [gauge_fn t name f] registers [f] to be evaluated whenever the gauge is
    read or the registry is snapshotted. *)
val gauge_fn : t -> string -> (unit -> float) -> unit

(** [gauge t name] evaluates the gauge, [0.] when absent. *)
val gauge : t -> string -> float

(** {1 Histograms} — fixed ascending bucket upper bounds plus an implicit
    +inf overflow bucket.  Tracks count/sum/min/max exactly; quantiles are
    estimated by linear interpolation inside the owning bucket and clamped
    to the observed [min..max]. *)

(** Default latency-oriented bounds, in milliseconds: 0.1 .. 10_000. *)
val default_ms_buckets : float array

(** Byte-size-oriented bounds: 1 KiB .. 4 GiB, factor-4 geometric. *)
val default_bytes_buckets : float array

(** [exp_buckets ~start ~factor ~n] builds [n] geometric bounds
    [start, start*factor, ...].  Raises [Invalid_argument] unless
    [start > 0.], [factor > 1.] and [n >= 1]. *)
val exp_buckets : start:float -> factor:float -> n:int -> float array

(** [observe t ?buckets name v] records [v] into histogram [name], creating
    it with [buckets] (default {!default_ms_buckets}) on first use. *)
val observe : t -> ?buckets:float array -> string -> float -> unit

val hist_count : t -> string -> int
val hist_sum : t -> string -> float

(** [quantile t name q] with [q] in [0,1]; [0.] for an absent or empty
    histogram. *)
val quantile : t -> string -> float -> float

val p50 : t -> string -> float
val p90 : t -> string -> float
val p99 : t -> string -> float

(** {1 Snapshot} *)

(** Flat JSON object, instrument names sorted, of the shape
    [{"counters":{..},"gauges":{..},"histograms":{"x":{"count":..,"sum":..,
    "min":..,"max":..,"p50":..,"p90":..,"p99":..,"buckets":[[ub,n],..]}}}].
    Deterministic for a deterministic run. *)
val to_json : t -> string

val dump : t -> string -> unit
(** [dump t path] writes [to_json t] to [path]. *)
