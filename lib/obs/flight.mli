(** Flight recorder: bounded per-node rings of recent spans, instants and
    metric deltas, dumped as a deterministic JSON artifact when an
    operation aborts, a chaos fault fires, or the supervisor declares a
    node dead — a post-mortem without re-running under full tracing.

    Entries carry only scalars (no span handles), so {!Span} can feed the
    recorder without a dependency cycle, and every field serializes
    exactly: times are integer nanoseconds ([Simtime.t = int]). *)

type entry =
  | Span_open of {
      f_time : Zapc_sim.Simtime.t;
      f_id : int;
      f_name : string;
      f_op : int;
      f_pod : int;
      f_parent : int option;
    }
  | Span_close of { f_time : Zapc_sim.Simtime.t; f_id : int }
  | Instant of { f_time : Zapc_sim.Simtime.t; f_pod : int; f_what : string }
  | Metric of { f_time : Zapc_sim.Simtime.t; f_name : string; f_value : float }

type t

val create : ?cap:int -> unit -> t
(** [cap] (default 64, clamped to >= 1) entries are retained per node;
    older entries are overwritten. *)

val capacity : t -> int

val record : t -> node:int -> entry -> unit
(** Append to the node's ring ([-1] = manager/cluster scope). *)

val entries : t -> node:int -> entry list
(** The node's retained entries, oldest first. *)

val nodes : t -> int list
(** Nodes with at least one retained entry, ascending ([-1] included). *)

val set_dump_dir : t -> string option -> unit
(** Where {!trip} writes [FLIGHT_<seq>_<reason>.json]; [None] (the
    default) keeps dumps in memory only ({!last_dump}). *)

val trip : t -> time:Zapc_sim.Simtime.t -> reason:string -> unit
(** Snapshot every ring into a JSON artifact: stored as {!last_dump},
    written to the dump directory when one is set, and counted in
    {!trips}.  The rings keep recording afterwards. *)

val trips : t -> int
val last_dump : t -> string option

val to_string : t -> time:Zapc_sim.Simtime.t -> reason:string -> string
(** The dump JSON without tripping:
    [{"reason","time","seq","nodes":[{"node","entries":[...]}]}]. *)

val entries_of_json : Json.t -> (int * entry) list option
(** Decode a parsed dump back into [(node, entry)] pairs in dump order;
    [None] on any malformed entry (the round-trip the tests assert). *)

val clear : t -> unit
