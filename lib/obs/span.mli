(** Typed span/instant recorder — the structured core behind [Zapc.Trace].

    A span is a named interval keyed by (operation id, pod, node), with an
    optional causal parent (another span's id — possibly recorded on a
    different node; ids are unique per recorder, and one recorder is shared
    cluster-wide, so parent links resolve across nodes).  An instant is a
    point event.  Spans are opened with {!begin_span} and closed either
    through the returned handle ({!end_span}) or by name ({!end_named}),
    which closes the most recently opened still-open span with that name
    and pod.  The open-span set is a hashtable keyed by span id, so closing
    is O(1) on the handle path and O(open) only for the by-name search.
    Recording is append-only and deterministic: two runs with the same seed
    produce identical span lists. *)

type span = {
  sp_id : int;            (** unique per recorder, allocation order *)
  sp_name : string;       (** e.g. ["standalone"], ["mgr_sync"] *)
  sp_op : int;            (** operation id (manager generation), 0 if n/a *)
  sp_pod : int;           (** pod id, [-1] for manager/cluster scope *)
  sp_node : int;          (** node id, [-1] for manager/cluster scope *)
  sp_parent : int option; (** causal parent span id, [None] for roots *)
  sp_begin : Zapc_sim.Simtime.t;
  mutable sp_end : Zapc_sim.Simtime.t option;  (** [None] while open *)
}

type instant = {
  in_time : Zapc_sim.Simtime.t;
  in_pod : int;
  in_node : int;
  in_what : string;
}

(** Observer callback payload: [Closed] fires with [sp_end] already set. *)
type event = Opened of span | Closed of span

type t

val create : unit -> t

(** Forget all spans and instants (open spans included). *)
val clear : t -> unit

val set_observer : t -> (event -> unit) option -> unit
(** At most one observer (the flight recorder); fired on every open and
    close, including the closes of {!end_all_for_pod}. *)

val begin_span :
  t -> time:Zapc_sim.Simtime.t -> ?op:int -> ?node:int -> ?parent:int ->
  pod:int -> string -> span

(** Close [span] at [time]; no-op if already closed. *)
val end_span : t -> time:Zapc_sim.Simtime.t -> span -> unit

(** [end_named t ~time ~pod name] closes the most recently opened still-open
    span matching [name] and [pod]; returns [false] when none is open. *)
val end_named : t -> time:Zapc_sim.Simtime.t -> pod:int -> string -> bool

(** Close every open span belonging to [pod] (abort paths), oldest first. *)
val end_all_for_pod : t -> time:Zapc_sim.Simtime.t -> pod:int -> unit

val instant :
  t -> time:Zapc_sim.Simtime.t -> ?node:int -> pod:int -> string -> unit

(** Chronological (begin-time, then id) order. *)
val spans : t -> span list

(** Chronological order. *)
val instants : t -> instant list

(** Still-open spans, ascending id (= opening order). *)
val open_spans : t -> span list

val open_count : t -> int

val find_span : t -> int -> span option
(** Lookup by id over all recorded spans (O(spans); tooling only). *)

(** Latest timestamp seen by any begin/end/instant, [Simtime.zero] when
    empty.  Exporters use it to close unfinished spans. *)
val last_time : t -> Zapc_sim.Simtime.t
