(** Typed span/instant recorder — the structured core behind [Zapc.Trace].

    A span is a named interval keyed by (operation id, pod, node); an
    instant is a point event.  Spans are opened with {!begin_span} and
    closed either through the returned handle ({!end_span}) or by name
    ({!end_named}), which closes the most recently opened still-open span
    with that name and pod.  Recording is append-only and deterministic:
    two runs with the same seed produce identical span lists. *)

type span = {
  sp_id : int;            (** unique per recorder, allocation order *)
  sp_name : string;       (** e.g. ["standalone"], ["mgr_sync"] *)
  sp_op : int;            (** operation id (manager generation), 0 if n/a *)
  sp_pod : int;           (** pod id, [-1] for manager/cluster scope *)
  sp_node : int;          (** node id, [-1] for manager/cluster scope *)
  sp_begin : Zapc_sim.Simtime.t;
  mutable sp_end : Zapc_sim.Simtime.t option;  (** [None] while open *)
}

type instant = {
  in_time : Zapc_sim.Simtime.t;
  in_pod : int;
  in_node : int;
  in_what : string;
}

type t

val create : unit -> t

(** Forget all spans and instants (open spans included). *)
val clear : t -> unit

val begin_span :
  t -> time:Zapc_sim.Simtime.t -> ?op:int -> ?node:int -> pod:int ->
  string -> span

(** Close [span] at [time]; no-op if already closed. *)
val end_span : t -> time:Zapc_sim.Simtime.t -> span -> unit

(** [end_named t ~time ~pod name] closes the most recently opened still-open
    span matching [name] and [pod]; returns [false] when none is open. *)
val end_named : t -> time:Zapc_sim.Simtime.t -> pod:int -> string -> bool

(** Close every open span belonging to [pod] (abort paths). *)
val end_all_for_pod : t -> time:Zapc_sim.Simtime.t -> pod:int -> unit

val instant :
  t -> time:Zapc_sim.Simtime.t -> ?node:int -> pod:int -> string -> unit

(** Chronological (begin-time, then id) order. *)
val spans : t -> span list

(** Chronological order. *)
val instants : t -> instant list

val open_spans : t -> span list

(** Latest timestamp seen by any begin/end/instant, [Simtime.zero] when
    empty.  Exporters use it to close unfinished spans. *)
val last_time : t -> Zapc_sim.Simtime.t
