(** Chrome [trace_event] JSON exporter.

    The output loads in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}: one process row per node (the manager is its own process),
    one thread row per pod, so the Figure-2 overlap — the standalone
    checkpoint running while the manager sync is still open — is directly
    visible.  Spans become ["ph":"X"] complete events (ts/dur in
    microseconds of virtual time), instants become ["ph":"i"] events, and
    process/thread names are emitted as ["ph":"M"] metadata.

    Spans still open when the export happens are closed at the recorder's
    {!Span.last_time} and tagged ["unfinished":true].

    Causal structure: every X event's args carry the span id (["sid"]) and,
    when present, its parent span id (["parent"]).  Parent edges that cross
    a node boundary are additionally exported as Chrome flow events — a
    ["ph":"s"] on the parent's slice and a ["ph":"f","bp":"e"] on the
    child's, joined by [id = child sid] — so Perfetto draws the
    manager-to-agent arrows. *)

(** Render the recorder to a [{"traceEvents":[...],"displayTimeUnit":"ms"}]
    JSON string. *)
val to_string : Span.t -> string

(** [dump recorder path] writes {!to_string} to [path]. *)
val dump : Span.t -> string -> unit
