(* Standalone (per-pod) checkpoint-restart: everything except the
   network-state section, which Zapc_netckpt produces.

   The image records, for every member process: the program identity and its
   encoded state, the pending (blocked) system call in its *virtual* form,
   the residual compute slice, relative timer deadlines, the fd table as
   references into the pod-wide socket/pipe inventories, and the memory
   footprint.  Restart rebuilds the processes in the Stopped state; resuming
   the pod SIGCONTs them, at which point blocked system calls are transparently
   re-issued against the restored resources. *)

module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr
module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Socket = Zapc_simnet.Socket
module Sockbuf = Zapc_simnet.Sockbuf
module Fdtable = Zapc_simos.Fdtable
module Kernel = Zapc_simos.Kernel
module Memory = Zapc_simos.Memory
module Pipe = Zapc_simos.Pipe
module Proc = Zapc_simos.Proc
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall
module Pod = Zapc_pod.Pod
module Net_ckpt = Zapc_netckpt.Net_ckpt
module Meta = Zapc_netckpt.Meta
module Sock_state = Zapc_netckpt.Sock_state

(* --- pipe inventory --- *)

let collect_pipes (pod : Pod.t) : Pipe.t array =
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (_, (p : Proc.t)) ->
      Fdtable.iter p.fds (fun _ e ->
          match e with
          | Fdtable.Fpipe_r pi | Fdtable.Fpipe_w pi ->
            if not (Hashtbl.mem seen pi.Pipe.id) then Hashtbl.replace seen pi.id pi
          | Fdtable.Fsock _ | Fdtable.Fgm _ -> ()))
    (Pod.members pod);
  Hashtbl.fold (fun _ pi acc -> pi :: acc) seen []
  |> List.sort (fun (a : Pipe.t) b -> Int.compare a.id b.id)
  |> Array.of_list

(* --- kernel-bypass (GM) port inventory ---

   The device driver's extract/reinstate hooks (paper section 5, the
   Myrinet/GM extension): device-resident port state is saved with virtual
   addressing and reinstated on the destination node's device. *)

module Gmdev = Zapc_simnet.Gmdev

let collect_gm (pod : Pod.t) : Gmdev.port array =
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (_, (p : Proc.t)) ->
      Fdtable.iter p.fds (fun _ e ->
          match e with
          | Fdtable.Fgm port ->
            let key = (port.Gmdev.gp_addr.ip, port.Gmdev.gp_addr.port) in
            if not (Hashtbl.mem seen key) then Hashtbl.replace seen key port
          | Fdtable.Fsock _ | Fdtable.Fpipe_r _ | Fdtable.Fpipe_w _ -> ()))
    (Pod.members pod);
  Hashtbl.fold (fun _ port acc -> port :: acc) seen []
  |> List.sort (fun (a : Gmdev.port) b -> Addr.compare a.gp_addr b.gp_addr)
  |> Array.of_list

let pipe_to_value (pi : Pipe.t) =
  Value.assoc
    [ ("data", Value.str (Sockbuf.contents pi.buf));
      ("rd_refs", Value.int pi.rd_refs);
      ("wr_refs", Value.int pi.wr_refs) ]

(* --- process images --- *)

let stopped_from_to_string = function
  | Proc.Blocked -> "blocked"
  | Proc.Ready | Proc.Running | Proc.Stopped | Proc.Zombie -> "ready"

let rel_time now = function
  | None -> Value.option Value.int None
  | Some deadline -> Value.option Value.int (Some (Stdlib.max 0 (Simtime.sub deadline now)))

let proc_to_value ~now ~sock_index ~pipe_index ~gm_index (vpid : int) (p : Proc.t) =
  let prog_name, pstate = Program.snapshot p.inst in
  let fd_entries =
    Fdtable.fold p.fds
      (fun fd e acc ->
        let ref_v =
          match e with
          | Fdtable.Fsock s ->
            (match sock_index s with
             | Some i -> Some (Value.Tag ("sock", Value.Int i))
             | None -> None)
          | Fdtable.Fpipe_r pi ->
            (match pipe_index pi with
             | Some i -> Some (Value.Tag ("pipe_r", Value.Int i))
             | None -> None)
          | Fdtable.Fpipe_w pi ->
            (match pipe_index pi with
             | Some i -> Some (Value.Tag ("pipe_w", Value.Int i))
             | None -> None)
          | Fdtable.Fgm port ->
            (match gm_index port with
             | Some i -> Some (Value.Tag ("gm", Value.Int i))
             | None -> None)
        in
        match ref_v with
        | Some r -> Value.List [ Value.Int fd; r ] :: acc
        | None -> acc)
      []
  in
  let stopped_from =
    (* the pod is suspended during checkpoint, so every live process is
       Stopped and stopped_from records its pre-freeze state; a wakeup that
       raced the freeze (retry_after_cont) means it should retry when
       thawed.  Zombies keep their state — the exit status is application
       data its parent has yet to collect *)
    match p.rstate with
    | Proc.Stopped -> stopped_from_to_string p.stopped_from
    | Proc.Ready | Proc.Running -> "ready"
    | Proc.Blocked -> "blocked"
    | Proc.Zombie -> "zombie"
  in
  Value.assoc
    [ ("vpid", Value.int vpid);
      ("program", Value.str prog_name);
      ("pstate", pstate);
      ("pending_sys", Value.option Syscall.to_value p.pending_sys);
      ("next_outcome", Syscall.outcome_to_value p.next_outcome);
      ("pending_compute", Value.option Value.int p.pending_compute);
      ("block_remaining", rel_time now p.block_deadline);
      ("alarm_remaining", rel_time now p.alarm_deadline);
      ("stopped_from", Value.str stopped_from);
      ("retry", Value.bool p.retry_after_cont);
      ("cpu_time", Value.int p.cpu_time);
      ("exit_code", Value.option Value.int p.exit_code);
      ("fds", Value.List fd_entries);
      ("mem", Memory.to_value p.mem) ]

(* --- the full pod image --- *)

type checkpoint_result = {
  image : Value.t;  (* the complete pod image, ready for Wire.encode *)
  meta : Meta.pod_meta;
  encoded_bytes : int;  (* bytes of the serialized image *)
  memory_bytes : int;  (* modelled address-space bytes *)
  net_result : Net_ckpt.result;
  proc_count : int;
}

(* Total image size as a real checkpointer would write it: the serialized
   structured state plus the address-space pages. *)
let logical_size r = r.encoded_bytes + r.memory_bytes

let checkpoint ?(mode = Zapc_netckpt.Sock_state.Read_inject) ?net (pod : Pod.t) :
  checkpoint_result =
  let kernel = pod.kernel in
  let now = Kernel.now kernel in
  let net = match net with Some n -> n | None -> Net_ckpt.checkpoint ~mode pod in
  (* Re-collect the inventory; Net_ckpt.checkpoint used the same
     deterministic (socket-id) ordering, so indices line up. *)
  let inv = Net_ckpt.collect pod in
  let sock_index s = Net_ckpt.index_of inv s in
  let pipes = collect_pipes pod in
  let gm_ports = collect_gm pod in
  (* O(1) inventory lookups: with incremental checkpointing the checkpoint
     path runs every epoch, and the old linear scans made fd translation
     O(procs x fds x inventory) *)
  let gm_tbl = Hashtbl.create (Array.length gm_ports) in
  Array.iteri
    (fun i (port : Gmdev.port) ->
      Hashtbl.replace gm_tbl (port.Gmdev.gp_addr.ip, port.Gmdev.gp_addr.port) i)
    gm_ports;
  let gm_index (port : Gmdev.port) =
    Hashtbl.find_opt gm_tbl (port.Gmdev.gp_addr.ip, port.Gmdev.gp_addr.port)
  in
  let pipe_tbl = Hashtbl.create (Array.length pipes) in
  Array.iteri (fun i (pi : Pipe.t) -> Hashtbl.replace pipe_tbl pi.id i) pipes;
  let pipe_index (pi : Pipe.t) = Hashtbl.find_opt pipe_tbl pi.Pipe.id in
  let procs =
    List.map
      (fun (vpid, p) -> proc_to_value ~now ~sock_index ~pipe_index ~gm_index vpid p)
      (Pod.members_all pod)
  in
  let memory_bytes = Pod.total_memory pod in
  let image =
    Value.assoc
      [ ("pod_id", Value.int pod.pod_id);
        ("name", Value.str pod.name);
        ("vip", Value.int pod.vip);
        ("clock", Value.int (Simtime.add now pod.time_bias));
        ("next_vpid", Value.int pod.ns.Zapc_pod.Namespace.next_vpid);
        ("memory_bytes", Value.int memory_bytes);
        ("sockets", Net_ckpt.images_to_value net.images);
        ("meta", Meta.to_value net.meta);
        ("pipes", Value.list pipe_to_value (Array.to_list pipes));
        ("gm_ports",
         Value.list
           (fun port ->
             Gmdev.extract_port port
               ~virt:(Zapc_pod.Namespace.translate_addr_in pod.ns))
           (Array.to_list gm_ports));
        ("procs", Value.List procs) ]
  in
  let encoded_bytes = Zapc_codec.Wire.encoded_size image in
  { image; meta = net.meta; encoded_bytes; memory_bytes; net_result = net;
    proc_count = List.length procs }

(* --- restore --- *)

let abs_time now v =
  match Value.to_option Value.to_int v with
  | None -> None
  | Some rel -> Some (Simtime.add now rel)

(* Rebuild the pod's processes from the image.  [socket_of_ref] maps socket
   references to the connections/sockets the Agent re-established in the
   earlier restart steps. *)
let restore_processes (pod : Pod.t) (image : Value.t)
    ~(socket_of_ref : int -> Socket.t option) : Proc.t list =
  let kernel = pod.kernel in
  let now = Kernel.now kernel in
  (* time virtualization: bias reported clocks so the checkpoint->restart
     gap is invisible to the application *)
  let saved_clock = Value.to_int (Value.field "clock" image) in
  Pod.apply_time_bias pod ~saved_clock ~current_clock:(Simtime.add now pod.time_bias);
  pod.ns.Zapc_pod.Namespace.next_vpid <- Value.to_int (Value.field "next_vpid" image);
  (* pipes *)
  let pipe_imgs = Value.to_list (fun v -> v) (Value.field "pipes" image) in
  let pipes =
    Array.of_list
      (List.map
         (fun v ->
           (* fresh node-unique ids: the image's pipe identities are the
              array indices; reusing the saved (or positional) ids could
              collide with pipes already live on this kernel *)
           let pi = Pipe.create ~id:(Kernel.alloc_pipe_id kernel) in
           Sockbuf.push pi.buf (Value.to_str (Value.field "data" v));
           pi.rd_refs <- Value.to_int (Value.field "rd_refs" v);
           pi.wr_refs <- Value.to_int (Value.field "wr_refs" v);
           pi)
         pipe_imgs)
  in
  (* reinstate kernel-bypass ports on this node's device *)
  let gm_imgs =
    match Value.field_opt "gm_ports" image with
    | Some v -> Value.to_list (fun x -> x) v
    | None -> []
  in
  let gm_ports =
    Array.of_list
      (List.map
         (fun v ->
           match
             Gmdev.reinstate_port (Kernel.gm kernel) v
               ~real:(Zapc_pod.Namespace.translate_addr_out pod.ns)
           with
           | Ok port -> port
           | Error e ->
             Value.decode_error "gm reinstate: %s" (Zapc_simnet.Errno.to_string e))
         gm_imgs)
  in
  let restore_proc v =
    let prog = Value.to_str (Value.field "program" v) in
    let pstate = Value.field "pstate" v in
    let inst = Program.restore prog pstate in
    let p = Kernel.create_proc kernel inst in
    let vpid = Value.to_int (Value.field "vpid" v) in
    Pod.adopt_with_vpid pod p ~vpid;
    p.pending_sys <- Value.to_option Syscall.of_value (Value.field "pending_sys" v);
    p.next_outcome <- Syscall.outcome_of_value (Value.field "next_outcome" v);
    p.pending_compute <- Value.to_option Value.to_int (Value.field "pending_compute" v);
    p.block_deadline <- abs_time now (Value.field "block_remaining" v);
    p.alarm_deadline <- abs_time now (Value.field "alarm_remaining" v);
    p.cpu_time <- Value.to_int (Value.field "cpu_time" v);
    p.mem <- Memory.of_value (Value.field "mem" v);
    (* descriptors *)
    let fd_entries = Value.to_list (fun x -> x) (Value.field "fds" v) in
    List.iter
      (fun fv ->
        match fv with
        | Value.List [ fd; refv ] ->
          let fd = Value.to_int fd in
          (match Value.to_tag refv with
           | "sock", i ->
             (match socket_of_ref (Value.to_int i) with
              | Some s ->
                Fdtable.add_at p.fds fd (Fdtable.Fsock s);
                Kernel.ref_socket kernel s
              | None -> ())
           | "pipe_r", i -> Fdtable.add_at p.fds fd (Fdtable.Fpipe_r pipes.(Value.to_int i))
           | "pipe_w", i -> Fdtable.add_at p.fds fd (Fdtable.Fpipe_w pipes.(Value.to_int i))
           | "gm", i -> Fdtable.add_at p.fds fd (Fdtable.Fgm gm_ports.(Value.to_int i))
           | t, _ -> Value.decode_error "fd ref %s" t)
        | _ -> Value.decode_error "fd entry")
      fd_entries;
    (* processes come back frozen; resuming the pod re-issues blocked
       syscalls (retry) or re-enqueues ready ones.  A zombie comes back as
       a zombie — stopped/ready would resurrect an exited process onto the
       run queue, and its parent's wait would never find the exit status *)
    (match Value.to_str (Value.field "stopped_from" v) with
     | "zombie" ->
       p.rstate <- Proc.Zombie;
       p.exit_code <-
         (match Value.field_opt "exit_code" v with
          | Some ec -> (match Value.to_option Value.to_int ec with
                        | Some c -> Some c
                        | None -> Some 0)
          | None -> Some 0);
       p.exit_time <- Some now
     | "blocked" ->
       p.rstate <- Proc.Stopped;
       p.stopped_from <- Proc.Blocked;
       p.retry_after_cont <- true
     | _ ->
       p.rstate <- Proc.Stopped;
       p.stopped_from <- Proc.Ready);
    if Value.to_bool (Value.field "retry" v) then p.retry_after_cont <- true;
    p
  in
  List.map restore_proc (Value.to_list (fun x -> x) (Value.field "procs" image))

(* --- incremental checkpoint support --- *)

(* Address-space payload a delta must carry: regions modified since the
   last durably stored snapshot, summed over every member. *)
let dirty_memory_bytes pod =
  List.fold_left
    (fun acc (_, (p : Proc.t)) -> acc + Memory.dirty_bytes p.mem)
    0 (Pod.members_all pod)

(* Called by the Agent once an epoch's image has been durably stored. *)
let clear_memory_dirty pod =
  List.iter (fun (_, (p : Proc.t)) -> Memory.clear_dirty p.mem) (Pod.members_all pod)

(* One pre-copy round boundary: capture-and-clear every member's dirty set,
   returning the bytes this round must ship.  Mutations from here on
   accumulate toward the next round. *)
let snapshot_memory_dirty pod =
  List.fold_left
    (fun acc (_, (p : Proc.t)) ->
      List.fold_left (fun a (_, size) -> a + size) acc (Memory.snapshot_dirty p.mem))
    0 (Pod.members_all pod)

let meta_of_image image = Meta.of_value (Value.field "meta" image)
let sockets_of_image image = Net_ckpt.images_of_value (Value.field "sockets" image)
let memory_bytes_of_image image = Value.to_int (Value.field "memory_bytes" image)
let pod_id_of_image image = Value.to_int (Value.field "pod_id" image)
let vip_of_image image = Value.to_int (Value.field "vip" image)
let name_of_image image = Value.to_str (Value.field "name" image)
