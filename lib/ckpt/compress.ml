(* Compression stage of the image pipeline (modelled).

   DMTCP gzips checkpoint images by default because image bytes dominate
   checkpoint cost; this module brings the same stage to the simulated
   pipeline as a *cost model*: the stored/flushed byte count shrinks by a
   deterministic per-image ratio while the compressor charges virtual CPU
   time (Params.compress_bps) to the checkpoint.  The bytes that must stay
   byte-identical for restart (the Wire encoding) are never transformed —
   only the accounting changes, matching how the simulation models
   address-space pages as region descriptors rather than real contents.

   The ratio is drawn from two deterministic sources:
   - the encoded (structured-state) bytes compress according to a byte-
     histogram entropy estimate of the actual Wire string;
   - each modelled memory region compresses according to an *entropy tag*
     derived from its name (FNV-1a folded into [0.15, 0.90)), so a given
     region compresses identically on every rank, node and epoch — some
     regions are gzip-friendly zero-ish arrays, others are incompressible
     random fill, and the bench can show where compression wins and loses. *)

module Value = Zapc_codec.Value

(* FNV-1a over a string, 62-bit (land max_int keeps it a positive OCaml
   int); shared by the entropy tags and the content-addressed chunker. *)
let fnv (s : string) =
  let prime = 0x100000001b3 in
  let h = ref 0xcb29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * prime land max_int) s;
  !h

(* Deterministic per-region compressibility: the fraction of the region's
   bytes that survive compression, in [0.15, 0.90). *)
let entropy_of_tag name =
  0.15 +. (float_of_int (fnv name land 0xffff) /. 65536.0 *. 0.75)

(* Crude Shannon-entropy estimate of a string (bits per byte / 8), clamped
   to [0.12, 0.98]: the modelled compressed fraction of the structured
   state.  Deterministic and content-derived. *)
let encoded_ratio (s : string) =
  let n = String.length s in
  if n = 0 then 1.0
  else begin
    let counts = Array.make 256 0 in
    String.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1) s;
    let total = float_of_int n in
    let bits =
      Array.fold_left
        (fun acc c ->
          if c = 0 then acc
          else
            let p = float_of_int c /. total in
            acc -. (p *. (Float.log p /. Float.log 2.0)))
        0.0 counts
    in
    Float.min 0.98 (Float.max 0.12 (bits /. 8.0))
  end

(* (name, size, generation) list out of one process's "mem" field (both the
   tagged [size; gen] shape and the legacy bare-size shape). *)
let regions_of_mem (mem : Value.t) =
  List.map
    (fun (name, rv) ->
      match rv with
      | Value.List [ s; g ] -> (name, Value.to_int s, Value.to_int g)
      | _ -> (name, Value.to_int rv, 1))
    (Value.to_assoc mem)

let regions_of_procs (procs : Value.t) =
  List.concat_map
    (fun p ->
      match Value.field_opt "mem" p with
      | Some mem -> regions_of_mem mem
      | None -> [])
    (Value.to_list (fun v -> v) procs)

(* Hand-rolled test images may omit standard fields; an absent field just
   contributes nothing to the model. *)
let int_field name v =
  match Value.field_opt name v with Some x -> Value.to_int x | None -> 0

(* All modelled memory regions of a full or delta pod image, in document
   order (a full image lists every live region; a delta only the regions of
   processes that changed). *)
let regions_of_image (v : Value.t) =
  let procs_of b name =
    match Value.field_opt name b with
    | Some procs -> regions_of_procs procs
    | None -> []
  in
  if Delta.is_delta v then
    let b = match v with Value.Tag (_, b) -> b | _ -> v in
    procs_of b "procs_changed"
  else procs_of v "procs"

(* Compressed size of [bytes] of address space described by [regions]:
   each region's share shrinks by its entropy tag; a byte count beyond the
   described regions (or an empty description) compresses at a neutral
   0.6. *)
let region_weighted ~bytes regions =
  let described = List.fold_left (fun a (_, s, _) -> a + s) 0 regions in
  if bytes <= 0 then 0
  else if described <= 0 then int_of_float (float_of_int bytes *. 0.6)
  else begin
    let scale = Float.min 1.0 (float_of_int bytes /. float_of_int described) in
    let out =
      List.fold_left
        (fun acc (name, size, _) ->
          acc +. (float_of_int size *. scale *. entropy_of_tag name))
        0.0 regions
    in
    let out =
      if described < bytes then
        out +. (float_of_int (bytes - described) *. 0.6)
      else out
    in
    int_of_float out
  end

(* Modelled compressed size of a full or delta pod image: the Wire bytes at
   their measured entropy plus the charged address-space bytes at their
   region-tag entropy.  Always <= the logical size and deterministic for a
   given image. *)
let modelled_size (v : Value.t) ~(encoded : string) =
  let enc_out =
    int_of_float (float_of_int (String.length encoded) *. encoded_ratio encoded)
  in
  let mem_bytes =
    if Delta.is_delta v then
      let b = match v with Value.Tag (_, b) -> b | _ -> v in
      int_field "dirty_bytes" b
    else int_field "memory_bytes" v
  in
  let mem_out = region_weighted ~bytes:mem_bytes (regions_of_image v) in
  Stdlib.max 1 (enc_out + mem_out)
