(* Serialized checkpoint images.

   An image is the Wire encoding of a pod image Value plus a small logical
   header.  [logical_size] is what a real checkpointer would have written:
   the structured state plus the modelled address-space bytes (the
   simulation stores memory as region descriptors, see DESIGN.md). *)

module Value = Zapc_codec.Value
module Wire = Zapc_codec.Wire

type t = {
  pod_id : int;
  name : string;
  encoded : string;  (* Wire-encoded pod image *)
  logical_size : int;
}

let of_pod_image (image : Value.t) =
  let encoded = Wire.encode image in
  let memory_bytes = Value.to_int (Value.field "memory_bytes" image) in
  {
    pod_id = Value.to_int (Value.field "pod_id" image);
    name = Value.to_str (Value.field "name" image);
    encoded;
    logical_size = String.length encoded + memory_bytes;
  }

let to_pod_image (t : t) : Value.t = Wire.decode t.encoded

(* FNV-1a over the identifying fields and the encoded bytes.  Cheap,
   deterministic, and sensitive to any single-byte mutation — enough to model
   an end-to-end integrity check on stored images (storage verifies it on
   every read and falls back to a replica on mismatch). *)
let checksum (t : t) =
  let prime = 0x100000001b3 in
  let h = ref 0xcb29ce484222325 in
  let mix byte = h := (!h lxor byte) * prime land max_int in
  String.iter (fun c -> mix (Char.code c)) t.encoded;
  String.iter (fun c -> mix (Char.code c)) t.name;
  mix (t.pod_id land 0xff);
  mix (t.logical_size land 0xff);
  mix ((t.logical_size lsr 8) land 0xff);
  !h

let pp ppf t =
  Format.fprintf ppf "image(%s#%d, %d bytes logical, %d encoded)" t.name t.pod_id
    t.logical_size (String.length t.encoded)
