(* Serialized checkpoint images.

   An image is the Wire encoding of a pod image Value plus a small logical
   header.  [logical_size] is what a real checkpointer would have written:
   the structured state plus the modelled address-space bytes (the
   simulation stores memory as region descriptors, see DESIGN.md).

   A *delta* image (see Delta) additionally records the storage key of its
   base in [base_key]; its logical size charges only the dirty region
   bytes, which is the whole point of incremental checkpointing. *)

module Value = Zapc_codec.Value
module Wire = Zapc_codec.Wire

type t = {
  pod_id : int;
  name : string;
  encoded : string;  (* Wire-encoded pod image (full or delta) *)
  logical_size : int;
  comp_size : int;  (* modelled compressed size (Compress.modelled_size) *)
  regions : (string * int * int) list;
      (* modelled memory region tags (name, size, gen) — the content
         addresses the dedup backend chunks virtual memory by *)
  base_key : string option;  (* Some key iff this is a delta image *)
}

let of_pod_image (image : Value.t) =
  let encoded = Wire.encode image in
  let comp_size = Compress.modelled_size image ~encoded in
  let regions = Compress.regions_of_image image in
  if Delta.is_delta image then
    {
      pod_id = Delta.pod_id image;
      name = Delta.name image;
      encoded;
      logical_size = String.length encoded + Delta.dirty_bytes image;
      comp_size;
      regions;
      base_key = Some (Delta.base_key image);
    }
  else
    let memory_bytes = Value.to_int (Value.field "memory_bytes" image) in
    {
      pod_id = Value.to_int (Value.field "pod_id" image);
      name = Value.to_str (Value.field "name" image);
      encoded;
      logical_size = String.length encoded + memory_bytes;
      comp_size;
      regions;
      base_key = None;
    }

let to_pod_image (t : t) : Value.t = Wire.decode t.encoded

(* FNV-1a over the identifying fields and the encoded bytes.  Cheap,
   deterministic, and sensitive to any single-byte mutation — enough to model
   an end-to-end integrity check on stored images (storage verifies it on
   every read and falls back to a replica on mismatch).  The base_key of a
   delta participates so a damaged chain link cannot go unnoticed. *)
let checksum (t : t) =
  let prime = 0x100000001b3 in
  let h = ref 0xcb29ce484222325 in
  let mix byte = h := (!h lxor byte) * prime land max_int in
  String.iter (fun c -> mix (Char.code c)) t.encoded;
  String.iter (fun c -> mix (Char.code c)) t.name;
  (match t.base_key with
   | None -> ()
   | Some k ->
     mix 0x01;
     String.iter (fun c -> mix (Char.code c)) k);
  mix (t.pod_id land 0xff);
  mix (t.logical_size land 0xff);
  mix ((t.logical_size lsr 8) land 0xff);
  !h

let pp ppf t =
  Format.fprintf ppf "image(%s#%d, %d bytes logical, %d encoded%s)" t.name t.pod_id
    t.logical_size (String.length t.encoded)
    (match t.base_key with None -> "" | Some k -> ", delta of " ^ k)
