(** Serialized checkpoint images.

    An image is the Wire encoding of a pod-image Value plus a logical-size
    header.  [logical_size] is what a real checkpointer would have written:
    the structured state plus the modelled address-space bytes (the
    simulation stores memory as region descriptors — see DESIGN.md). *)

module Value = Zapc_codec.Value

type t = {
  pod_id : int;
  name : string;
  encoded : string;  (** Wire-encoded pod image *)
  logical_size : int;
}

val of_pod_image : Value.t -> t
val to_pod_image : t -> Value.t

val checksum : t -> int
(** Deterministic content checksum (FNV-1a over the encoded bytes and the
    identifying fields).  Storage computes it at [put] and verifies it at
    [get] to detect corrupted replicas. *)

val pp : Format.formatter -> t -> unit
