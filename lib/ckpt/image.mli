(** Serialized checkpoint images.

    An image is the Wire encoding of a pod-image Value plus a logical-size
    header.  [logical_size] is what a real checkpointer would have written:
    the structured state plus the modelled address-space bytes (the
    simulation stores memory as region descriptors — see DESIGN.md).

    A {e delta} image ({!Delta}) records its base's storage key in
    [base_key] and charges only the dirty region bytes to [logical_size]. *)

module Value = Zapc_codec.Value

type t = {
  pod_id : int;
  name : string;
  encoded : string;  (** Wire-encoded pod image (full or delta) *)
  logical_size : int;
  comp_size : int;
      (** modelled compressed size ({!Compress.modelled_size}); what a
          compressing storage backend accounts/flushes for this image *)
  regions : (string * int * int) list;
      (** modelled memory region tags (name, size, generation) — the
          content addresses the dedup backend chunks virtual memory by *)
  base_key : string option;  (** [Some key] iff this is a delta image *)
}

val of_pod_image : Value.t -> t
val to_pod_image : t -> Value.t

val checksum : t -> int
(** Deterministic content checksum (FNV-1a over the encoded bytes and the
    identifying fields, including [base_key]).  Storage computes it at
    [put] and verifies it at [get] — per chain link for deltas — to detect
    corrupted replicas. *)

val pp : Format.formatter -> t -> unit
