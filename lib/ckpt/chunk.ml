(* Content-addressed chunking of checkpoint images.

   Storage dedup splits an image into fixed-size chunks addressed by an
   FNV-1a hash of their content and stores each distinct chunk once,
   refcounted.  Two kinds of chunk exist, mirroring the two halves of
   [Image.logical_size]:

   - *encoded* chunks carry real bytes: [split] cuts the Wire encoding into
     [chunk_bytes]-sized pieces hashed by content, and [reassemble] glues
     them back byte-identically (qcheck-verified).  Identical encoded spans
     across epochs and replicas collapse to one stored copy.

   - *region* chunks are virtual: the simulation models address-space pages
     as (name, size, write-generation) descriptors, so a region chunk's
     address is derived from that tag plus the chunk index.  No pod identity
     enters the address — sibling ranks of an SPMD app (16 BT ranks) declare
     the same regions with the same mutation history, so their text/data
     chunks share addresses and the fleet stores them once. *)

let chunk_bytes = 4096
let region_chunk_bytes = 65536

let hash = Compress.fnv

(* Cut [s] into <= [chunk_bytes] pieces, each addressed by its content hash.
   The last chunk may be short; an empty string yields no chunks. *)
let split (s : string) : (int * string) list =
  let n = String.length s in
  let rec go off acc =
    if off >= n then List.rev acc
    else
      let len = min chunk_bytes (n - off) in
      let piece = String.sub s off len in
      go (off + len) ((hash piece, piece) :: acc)
  in
  go 0 []

let reassemble (chunks : (int * string) list) : string =
  String.concat "" (List.map snd chunks)

(* Virtual chunks of one modelled region: (address, size) pairs covering
   [size] bytes in [region_chunk_bytes] steps.  The address hashes the
   region tag (name, generation), the chunk index and the chunk size —
   deterministic, pod-agnostic, and distinct across generations so a
   mutated region re-uploads while an untouched one fully dedupes. *)
let region_chunks ~(name : string) ~(size : int) ~(gen : int) :
    (int * int) list =
  let rec go off idx acc =
    if off >= size then List.rev acc
    else
      let csize = min region_chunk_bytes (size - off) in
      let addr =
        hash (Printf.sprintf "R\x00%s\x00%d\x00%d\x00%d" name gen idx csize)
      in
      go (off + csize) (idx + 1) ((addr, csize) :: acc)
  in
  if size <= 0 then [] else go 0 0 []
