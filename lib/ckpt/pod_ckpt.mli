(** Standalone (per-pod) checkpoint-restart: everything except the
    network-state section, which {!Zapc_netckpt.Net_ckpt} produces.

    The image records, per member process: the program identity and its
    encoded state, the pending blocked system call in {e virtual} form, the
    residual compute slice, relative timer deadlines, the fd table as
    references into the pod-wide socket/pipe inventories, and the memory
    footprint.  Restart rebuilds the processes Stopped; resuming the pod
    SIGCONTs them, at which point blocked system calls re-issue
    transparently against the restored resources. *)

module Value = Zapc_codec.Value
module Socket = Zapc_simnet.Socket
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod
module Net_ckpt = Zapc_netckpt.Net_ckpt
module Meta = Zapc_netckpt.Meta
module Sock_state = Zapc_netckpt.Sock_state

type checkpoint_result = {
  image : Value.t;  (** the complete pod image, ready for Wire.encode *)
  meta : Meta.pod_meta;
  encoded_bytes : int;  (** serialized size of the structured state *)
  memory_bytes : int;  (** modelled address-space bytes *)
  net_result : Net_ckpt.result;
  proc_count : int;
}

val logical_size : checkpoint_result -> int
(** What a real checkpointer would write: encoded + memory bytes. *)

val checkpoint : ?mode:Sock_state.mode -> ?net:Net_ckpt.result -> Pod.t -> checkpoint_result
(** Assemble the full pod image.  Pass [net] to reuse an already-taken
    network-state checkpoint (the Agent runs that step first and times it
    separately).  The pod must be suspended. *)

val restore_processes :
  Pod.t -> Value.t -> socket_of_ref:(int -> Socket.t option) -> Proc.t list
(** Rebuild the pod's processes from an image.  [socket_of_ref] maps socket
    references to the connections the Agent re-established in the earlier
    restart steps.  Also applies the time-virtualization bias. *)

(** {1 Incremental checkpoint support} *)

val dirty_memory_bytes : Pod.t -> int
(** Modelled address-space bytes modified since the last durably stored
    snapshot (summed {!Zapc_simos.Memory.dirty_bytes} over every member,
    zombies included). *)

val clear_memory_dirty : Pod.t -> unit
(** Clear every member's dirty-region set — call once an epoch's image has
    been durably stored. *)

val snapshot_memory_dirty : Pod.t -> int
(** One pre-copy round boundary: atomically capture-and-clear every member's
    dirty set ({!Zapc_simos.Memory.snapshot_dirty}) and return the total
    bytes the round must ship.  Mutations after the call accumulate toward
    the next round. *)

(** {1 Image accessors} *)

val meta_of_image : Value.t -> Meta.pod_meta
val sockets_of_image : Value.t -> Sock_state.image array
val memory_bytes_of_image : Value.t -> int
val pod_id_of_image : Value.t -> int
val vip_of_image : Value.t -> int
val name_of_image : Value.t -> string
