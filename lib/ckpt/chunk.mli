(** Content-addressed chunking of checkpoint images (see chunk.ml).

    Encoded chunks carry real bytes and are addressed by a content hash;
    region chunks are virtual — addressed by the modelled region's
    (name, size, write-generation) tag — and carry only accounting. *)

val chunk_bytes : int
(** Size of an encoded-bytes chunk (last chunk of an image may be short). *)

val region_chunk_bytes : int
(** Size of a virtual modelled-memory chunk. *)

val hash : string -> int
(** Content hash used for chunk addresses (FNV-1a, folded positive). *)

val split : string -> (int * string) list
(** Cut a string into content-addressed [(hash, bytes)] chunks.
    [reassemble (split s) = s] for every [s]. *)

val reassemble : (int * string) list -> string
(** Concatenate chunk bytes back into the original string. *)

val region_chunks : name:string -> size:int -> gen:int -> (int * int) list
(** [(address, size)] chunks covering a modelled region.  Addresses are
    deterministic in the region tag and pod-agnostic: sibling ranks
    declaring the same region with the same generation share addresses. *)
