(** Delta (incremental) pod images.

    A delta carries the pod header, the always-small sections (sockets,
    meta, pipes, GM ports), the processes whose structured state changed
    since the base (diffed by Value equality, keyed by vpid) and the new
    image's vpid order, plus a [base_key] back-reference to the stored base
    image.  Its modelled address-space payload is only the dirty region
    bytes reported by {!Zapc_simos.Memory}.

    {!apply} reconstructs a pod image {e Value-identical} (hence
    Wire-byte-identical) to the full checkpoint taken at the same instant;
    storage uses it to materialize delta chains transparently. *)

module Value = Zapc_codec.Value

val is_delta : Value.t -> bool

val make :
  base_key:string -> base:Value.t -> full:Value.t -> dirty_bytes:int -> Value.t
(** Diff [full] against [base] (both full pod-image values). *)

val apply : base:Value.t -> Value.t -> Value.t
(** [apply ~base delta] rebuilds the full pod image.
    @raise Zapc_codec.Value.Decode if [delta] is malformed or references a
    vpid found in neither the base nor the delta. *)

val base_key : Value.t -> string
val dirty_bytes : Value.t -> int
val pod_id : Value.t -> int
val name : Value.t -> string

val changed_count : Value.t -> int
(** Number of per-process records the delta carries. *)
