(* Delta (incremental) pod images.

   A delta records only what changed since a stored base image: the pod
   header fields, the always-small sections (sockets, meta, pipes, GM
   ports — queue contents at a quiesced instant), the per-process
   structured state of the processes that changed (diffed by Value
   equality, keyed by vpid), and the full vpid order of the new image.
   The modelled address-space payload charged to the delta is only the
   *dirty* region bytes ([dirty_bytes], from Zapc_simos.Memory tracking),
   which is where the size win over a full checkpoint comes from.

   [apply base delta] reconstructs the full pod image Value exactly —
   field order, process order and contents are Value-identical to the
   full checkpoint taken at the same instant, so the Wire encodings are
   byte-identical.  Storage relies on this to materialize chains
   transparently for restart. *)

module Value = Zapc_codec.Value

let tag = "delta"

let is_delta (v : Value.t) =
  match v with Value.Tag (t, _) -> String.equal t tag | _ -> false

let field_int v k = Value.to_int (Value.field k v)

let vpid_of_proc p = field_int p "vpid"

(* Diff [full] against [base]: both are full pod-image Assoc values. *)
let make ~(base_key : string) ~(base : Value.t) ~(full : Value.t)
    ~(dirty_bytes : int) : Value.t =
  let base_procs = Value.to_list (fun v -> v) (Value.field "procs" base) in
  let full_procs = Value.to_list (fun v -> v) (Value.field "procs" full) in
  let base_by_vpid = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace base_by_vpid (vpid_of_proc p) p) base_procs;
  let changed =
    List.filter
      (fun p ->
        match Hashtbl.find_opt base_by_vpid (vpid_of_proc p) with
        | Some bp -> not (Value.equal bp p)
        | None -> true)
      full_procs
  in
  let order = List.map (fun p -> Value.int (vpid_of_proc p)) full_procs in
  Value.tag tag
    (Value.assoc
       [ ("base_key", Value.str base_key);
         ("pod_id", Value.field "pod_id" full);
         ("name", Value.field "name" full);
         ("vip", Value.field "vip" full);
         ("clock", Value.field "clock" full);
         ("next_vpid", Value.field "next_vpid" full);
         ("memory_bytes", Value.field "memory_bytes" full);
         ("dirty_bytes", Value.int dirty_bytes);
         ("sockets", Value.field "sockets" full);
         ("meta", Value.field "meta" full);
         ("pipes", Value.field "pipes" full);
         ("gm_ports", Value.field "gm_ports" full);
         ("procs_changed", Value.List changed);
         ("procs_order", Value.List order) ])

let body v =
  match v with
  | Value.Tag (t, b) when String.equal t tag -> b
  | _ -> Value.decode_error "not a delta image"

let base_key v = Value.to_str (Value.field "base_key" (body v))
let dirty_bytes v = field_int (body v) "dirty_bytes"
let pod_id v = field_int (body v) "pod_id"
let name v = Value.to_str (Value.field "name" (body v))
let changed_count v = List.length (Value.to_list (fun x -> x) (Value.field "procs_changed" (body v)))

(* Rebuild the full pod image from a materialized base and one delta.  The
   Assoc field order below must match Pod_ckpt.checkpoint exactly. *)
let apply ~(base : Value.t) (delta : Value.t) : Value.t =
  let b = body delta in
  let base_procs = Value.to_list (fun v -> v) (Value.field "procs" base) in
  let by_vpid = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace by_vpid (vpid_of_proc p) p) base_procs;
  List.iter
    (fun p -> Hashtbl.replace by_vpid (vpid_of_proc p) p)
    (Value.to_list (fun v -> v) (Value.field "procs_changed" b));
  let procs =
    List.map
      (fun vpid ->
        match Hashtbl.find_opt by_vpid vpid with
        | Some p -> p
        | None -> Value.decode_error "delta: vpid %d missing from base and delta" vpid)
      (Value.to_list Value.to_int (Value.field "procs_order" b))
  in
  Value.assoc
    [ ("pod_id", Value.field "pod_id" b);
      ("name", Value.field "name" b);
      ("vip", Value.field "vip" b);
      ("clock", Value.field "clock" b);
      ("next_vpid", Value.field "next_vpid" b);
      ("memory_bytes", Value.field "memory_bytes" b);
      ("sockets", Value.field "sockets" b);
      ("meta", Value.field "meta" b);
      ("pipes", Value.field "pipes" b);
      ("gm_ports", Value.field "gm_ports" b);
      ("procs", Value.List procs) ]
