(** Modelled compression stage of the checkpoint image pipeline.

    Computes the deterministic compressed size of an image — the Wire
    encoding at a byte-histogram entropy estimate plus the modelled memory
    regions at per-region entropy tags.  The actual bytes are never
    transformed (restart stays byte-identical); only the storage/flush
    accounting and the virtual-CPU compression cost use this size. *)

val fnv : string -> int
(** FNV-1a hash of a string, folded positive (62-bit). *)

val entropy_of_tag : string -> float
(** Deterministic compressed fraction of a memory region, drawn from the
    region name's hash; in [0.15, 0.90). *)

val encoded_ratio : string -> float
(** Shannon-entropy estimate (bits-per-byte / 8) of a string, clamped to
    [0.12, 0.98]: the modelled compressed fraction of the Wire bytes. *)

val regions_of_image : Zapc_codec.Value.t -> (string * int * int) list
(** (name, size, generation) of every modelled memory region a full or
    delta pod image describes (full: all live regions; delta: the regions
    of changed processes only). *)

val modelled_size : Zapc_codec.Value.t -> encoded:string -> int
(** [modelled_size v ~encoded] is the modelled compressed byte count of the
    full or delta pod image whose decoded Value is [v] and whose Wire
    encoding is [encoded].  Deterministic; at least 1. *)
