(* Per-socket state save and restore (paper section 5).

   A socket's state has three parts: parameters, data queues, and minimal
   protocol-specific state.

   - Parameters: the *whole* option table is saved (getsockopt-style) and
     reapplied on restore.
   - Receive queue: extracted with the paper's read-and-reinject technique —
     data is drained through the socket's own recvmsg dispatch entry (which
     also drains any alternate queue left from a previous restart, in
     order), saved, and immediately deposited back through the alternate
     receive queue, so a continued (snapshot) run still reads it first.
     A deliberately flawed [Peek] mode reproduces the Cruz-style approach
     the paper criticises: it looks at the queue non-destructively and
     therefore misses the out-of-band byte.
   - Send queue: the in-kernel unacknowledged data (acked..sent, i.e. the
     retransmission queue) plus buffered-unsent data, read without side
     effects.
   - Protocol state: only the three sequence numbers sent/recv/acked (the
     necessary-and-sufficient set proved in section 5); they go into the
     meta-data entry, not here. *)

module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr
module Socket = Zapc_simnet.Socket
module Sockopt = Zapc_simnet.Sockopt
module Sockbuf = Zapc_simnet.Sockbuf
module Tcp = Zapc_simnet.Tcp
module Namespace = Zapc_pod.Namespace

type mode = Read_inject | Peek

type image = {
  kind : Socket.kind;
  local : Addr.t option;  (* virtual *)
  remote : Addr.t option;  (* virtual *)
  hl : [ `Conn of Meta.conn_state | `Listener of int | `Plain ];
  opts : Value.t;
  recv_data : string;
  oob : char option;
  send_data : string;
  dgrams : (Addr.t * string) list;  (* virtual source addresses *)
  queued_on : int option;  (* index of the listener whose accept queue held us *)
  syn_child_of : int option;  (* index of the listener whose SYN queue held us *)
  nonblock_pending : bool;
}

let kind_to_value = function
  | Socket.Stream -> Value.Tag ("stream", Value.Unit)
  | Socket.Dgram -> Value.Tag ("dgram", Value.Unit)
  | Socket.Raw p -> Value.Tag ("raw", Value.Int p)

let kind_of_value v =
  match Value.to_tag v with
  | "stream", _ -> Socket.Stream
  | "dgram", _ -> Socket.Dgram
  | "raw", p -> Socket.Raw (Value.to_int p)
  | t, _ -> Value.decode_error "socket kind %s" t

let hl_to_value = function
  | `Conn st -> Value.Tag ("conn", Value.Str (Meta.conn_state_to_string st))
  | `Listener backlog -> Value.Tag ("listener", Value.Int backlog)
  | `Plain -> Value.Tag ("plain", Value.Unit)

let hl_of_value v =
  match Value.to_tag v with
  | "conn", s -> `Conn (Meta.conn_state_of_string (Value.to_str s))
  | "listener", b -> `Listener (Value.to_int b)
  | "plain", _ -> `Plain
  | t, _ -> Value.decode_error "hl state %s" t

let to_value (im : image) =
  Value.assoc
    [ ("kind", kind_to_value im.kind);
      ("local", Value.option Addr.to_value im.local);
      ("remote", Value.option Addr.to_value im.remote);
      ("hl", hl_to_value im.hl);
      ("opts", im.opts);
      ("recv", Value.str im.recv_data);
      ("oob", Value.option (fun c -> Value.int (Char.code c)) im.oob);
      ("send", Value.str im.send_data);
      ("dgrams", Value.list (Value.pair Addr.to_value Value.str) im.dgrams);
      ("queued_on", Value.option Value.int im.queued_on);
      ("syn_child_of", Value.option Value.int im.syn_child_of) ]

let of_value v : image =
  {
    kind = kind_of_value (Value.field "kind" v);
    local = Value.to_option Addr.of_value (Value.field "local" v);
    remote = Value.to_option Addr.of_value (Value.field "remote" v);
    hl = hl_of_value (Value.field "hl" v);
    opts = Value.field "opts" v;
    recv_data = Value.to_str (Value.field "recv" v);
    oob =
      Value.to_option (fun c -> Char.chr (Value.to_int c land 0xff)) (Value.field "oob" v);
    send_data = Value.to_str (Value.field "send" v);
    dgrams = Value.to_list (Value.to_pair Addr.of_value Value.to_str) (Value.field "dgrams" v);
    queued_on = Value.to_option Value.to_int (Value.field "queued_on" v);
    syn_child_of =
      (* absent in images written before SYN-queue fidelity *)
      (match Value.field_opt "syn_child_of" v with
       | Some x -> Value.to_option Value.to_int x
       | None -> None);
    nonblock_pending = false;
  }

(* High-level connection state classification from the TCP machine. *)
let classify (s : Socket.t) : [ `Conn of Meta.conn_state | `Listener of int | `Plain ] =
  match s.kind with
  | Socket.Dgram | Socket.Raw _ -> `Plain
  | Socket.Stream ->
    (match s.tcb with
     | None -> `Plain
     | Some tcb ->
       (match tcb.st with
        | Socket.St_listen -> `Listener s.backlog
        | Socket.St_syn_sent | Socket.St_syn_received -> `Conn Meta.Connecting
        | Socket.St_established ->
          if tcb.fin_queued || tcb.fin_sent then `Conn Meta.Half_out else `Conn Meta.Full
        | Socket.St_fin_wait_1 | Socket.St_fin_wait_2 ->
          if tcb.fin_rcvd then `Conn Meta.Closed_data else `Conn Meta.Half_out
        | Socket.St_close_wait ->
          if tcb.fin_queued || tcb.fin_sent then `Conn Meta.Closed_data
          else `Conn Meta.Half_in
        | Socket.St_closing | Socket.St_last_ack | Socket.St_time_wait
        | Socket.St_closed -> `Conn Meta.Closed_data))

(* Drain the receive queue through the socket's dispatch vector and reinject
   it via the alternate queue.  Draining through recvmsg (not by poking at
   buffers) is what guarantees we also pick up data a previous restart
   parked in the alternate queue, in the right order. *)
let extract_recv_queue (s : Socket.t) ~(mode : mode) =
  match mode with
  | Peek ->
    (* Cruz-style: non-destructive peek of the main queue only.  Misses the
       OOB byte (and would miss Linux backlog data); kept as a baseline. *)
    Socket.recv_queue_contents s
  | Read_inject ->
    let buf = Buffer.create 256 in
    let continue = ref true in
    while !continue do
      match s.dispatch.d_recvmsg s Socket.plain_recv max_int with
      | Socket.Rv_data "" -> continue := false
      | Socket.Rv_data d -> Buffer.add_string buf d
      | Socket.Rv_from (_, d) -> Buffer.add_string buf d
      | Socket.Rv_eof | Socket.Rv_block | Socket.Rv_err _ -> continue := false
    done;
    let data = Buffer.contents buf in
    Socket.install_altqueue s data;
    data

let save ?(mode = Read_inject) ~(ns : Namespace.t) (s : Socket.t) : image =
  let virt a = Namespace.translate_addr_in ns a in
  let hl = classify s in
  let recv_data =
    match s.kind with
    | Socket.Stream -> extract_recv_queue s ~mode
    | Socket.Dgram | Socket.Raw _ -> ""
  in
  let oob = match mode with Peek -> None | Read_inject -> s.oob_byte in
  let send_data =
    match hl with
    | `Conn (Meta.Full | Meta.Half_out | Meta.Half_in | Meta.Closed_data) ->
      Socket.unacked_data s ^ Socket.unsent_data s
    | `Conn Meta.Connecting | `Listener _ | `Plain -> ""
  in
  let dgrams =
    match s.kind with
    | Socket.Dgram | Socket.Raw _ ->
      Queue.fold (fun acc (from, d) -> (virt from, d) :: acc) [] s.dgrams |> List.rev
    | Socket.Stream -> []
  in
  {
    kind = s.kind;
    local = Option.map virt s.local;
    remote = Option.map virt s.remote;
    hl;
    opts = Sockopt.to_value s.opts;
    recv_data;
    oob;
    send_data;
    dgrams;
    queued_on = None;
    syn_child_of = None;
    nonblock_pending = false;
  }

(* Meta entry for an established-ish stream socket. *)
let meta_entry ~sock_ref (s : Socket.t) (im : image) : Meta.entry option =
  match (im.hl, im.local, im.remote) with
  | `Conn st, Some local, Some remote ->
    let sent, recv, acked =
      match s.tcb with
      | Some tcb -> (tcb.snd_nxt, tcb.rcv_nxt, tcb.snd_una)
      | None -> (0, 0, 0)
    in
    Some
      {
        Meta.local;
        remote;
        state = st;
        role = (if s.born_by_accept then Meta.Accept else Meta.Connect);
        sent;
        recv;
        acked;
        sock_ref;
      }
  | (`Conn _ | `Listener _ | `Plain), _, _ -> None

(* --- restore --- *)

(* Discard from the saved send-queue data the prefix the peer has already
   received (Figure 4): overlap = peer_recv - acked. *)
let trim_overlap ~acked ~peer_recv data =
  let overlap = peer_recv - acked in
  if overlap <= 0 then data
  else if overlap >= String.length data then ""
  else String.sub data overlap (String.length data - overlap)

(* Apply saved parameters to a (re-established) socket. *)
let restore_options (s : Socket.t) (im : image) =
  let saved = Sockopt.of_value im.opts in
  Sockopt.copy_into ~src:saved ~dst:s.opts

(* Restore the state of a connection that has been re-established by the
   Agent: options, receive queue (via the alternate queue + interposition),
   urgent byte, send queue (trimmed and resent through the new connection),
   and half-close status. *)
let restore_connection (s : Socket.t) (im : image) ~send_data =
  restore_options s im;
  Tcp.refresh_keepalive s;
  Socket.install_altqueue s im.recv_data;
  s.oob_byte <- im.oob;
  if String.length send_data > 0 then begin
    (* Push straight into the send buffer: restores must not be lossy even
       when the saved queue exceeds SO_SNDBUF. *)
    Sockbuf.push s.sendq send_data;
    Tcp.output s
  end;
  (match im.hl with
   | `Conn (Meta.Half_out | Meta.Closed_data) -> Tcp.shutdown_write s
   | `Conn (Meta.Full | Meta.Half_in | Meta.Connecting) | `Listener _ | `Plain -> ());
  (match im.hl with
   | `Conn Meta.Closed_data ->
     s.shut_rd <- false (* data still readable; EOF comes from restored FIN *)
   | `Conn _ | `Listener _ | `Plain -> ())

(* Restore an endpoint whose peer no longer exists: no connection is
   created; remaining data is readable, then EOF. *)
let restore_orphan (s : Socket.t) (im : image) =
  restore_options s im;
  Socket.install_altqueue s im.recv_data;
  s.oob_byte <- im.oob;
  s.shut_rd <- true;
  s.shut_wr <- true

(* Restore a datagram/raw socket: queue contents are injected directly —
   they are reread before any post-restart traffic because the application
   only resumes afterwards. *)
let restore_dgrams ~(ns : Namespace.t) (s : Socket.t) (im : image) =
  restore_options s im;
  List.iter
    (fun (from, d) ->
      ignore ns;
      Queue.add (from, d) s.dgrams;
      s.dgram_bytes <- s.dgram_bytes + String.length d)
    im.dgrams

let bytes_saved (im : image) =
  String.length im.recv_data + String.length im.send_data
  + List.fold_left (fun acc (_, d) -> acc + String.length d) 0 im.dgrams

let image_size (im : image) = Zapc_codec.Wire.encoded_size (to_value im)
