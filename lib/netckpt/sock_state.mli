(** Per-socket state save and restore (paper section 5).

    A socket's state has three parts: parameters, data queues, and minimal
    protocol-specific state.

    - {b Parameters}: the whole option table is saved (getsockopt-style) and
      reapplied on restore.
    - {b Receive queue}: extracted with the paper's read-and-reinject
      technique — drained through the socket's own recvmsg dispatch entry
      (which also picks up any alternate-queue data left by a previous
      restart, in order), saved, and immediately re-deposited through the
      alternate receive queue so a continued (snapshot) run still reads it
      first.  The deliberately flawed {!Peek} mode reproduces the Cruz-style
      approach the paper criticises: it misses the out-of-band byte.
    - {b Send queue}: the unacknowledged in-kernel data (acked..sent, the
      retransmission queue) plus buffered-unsent data, read without side
      effects.
    - {b Protocol state}: only the sent/recv/acked sequence numbers (the
      necessary-and-sufficient set of section 5); they travel in the
      meta-data entry, not here. *)

module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr
module Socket = Zapc_simnet.Socket
module Namespace = Zapc_pod.Namespace

type mode = Read_inject | Peek

type image = {
  kind : Socket.kind;
  local : Addr.t option;  (** virtual *)
  remote : Addr.t option;  (** virtual *)
  hl : [ `Conn of Meta.conn_state | `Listener of int | `Plain ];
  opts : Value.t;
  recv_data : string;
  oob : char option;
  send_data : string;
  dgrams : (Addr.t * string) list;  (** virtual source addresses *)
  queued_on : int option;
      (** index of the listener whose accept queue held this connection *)
  syn_child_of : int option;
      (** index of the listener whose SYN queue held this half-open child *)
  nonblock_pending : bool;
}

val to_value : image -> Value.t
val of_value : Value.t -> image

val classify : Socket.t -> [ `Conn of Meta.conn_state | `Listener of int | `Plain ]

val save : ?mode:mode -> ns:Namespace.t -> Socket.t -> image
(** Must run while the owning pod is suspended and its network blocked. *)

val meta_entry : sock_ref:int -> Socket.t -> image -> Meta.entry option
(** The connectivity-table entry for an established-ish stream socket. *)

val trim_overlap : acked:int -> peer_recv:int -> string -> string
(** Discard from saved send-queue data the prefix the peer already received
    (the overlap of Figure 4): [peer_recv - acked] bytes. *)

val restore_options : Socket.t -> image -> unit

val restore_connection : Socket.t -> image -> send_data:string -> unit
(** Apply saved state to a re-established connection: options, receive
    queue via the alternate queue + dispatch interposition, urgent byte,
    (pre-trimmed) send-queue resend, half-close status. *)

val restore_orphan : Socket.t -> image -> unit
(** Endpoint whose peer no longer exists: remaining data readable, then EOF. *)

val restore_dgrams : ns:Namespace.t -> Socket.t -> image -> unit

val bytes_saved : image -> int
(** Queue payload bytes captured. *)

val image_size : image -> int
(** Encoded size of the image (network-state section accounting). *)
