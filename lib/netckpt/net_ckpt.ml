(* Pod-level network-state checkpoint: enumerate every socket reachable from
   the pod's processes (including established connections still waiting in
   accept queues), save each one, and build the pod's meta-data table.

   This runs while the pod is suspended and its network is blocked, so the
   state cannot change underneath it (paper section 5). *)

module Value = Zapc_codec.Value
module Socket = Zapc_simnet.Socket
module Fdtable = Zapc_simos.Fdtable
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod

type inventory = {
  sockets : Socket.t array;  (* deterministic order (by socket id) *)
  by_id : (int, int) Hashtbl.t;  (* socket id -> index (O(1) mass lookups) *)
  queued_on : (int, int) Hashtbl.t;  (* socket index -> listener index *)
  syn_on : (int, int) Hashtbl.t;  (* half-open child index -> listener index *)
}

let index_of inv (s : Socket.t) = Hashtbl.find_opt inv.by_id s.id

let collect (pod : Pod.t) : inventory =
  let seen = Hashtbl.create 16 in
  let add s = if not (Hashtbl.mem seen s.Socket.id) then Hashtbl.replace seen s.id s in
  List.iter
    (fun (_, (p : Proc.t)) ->
      Fdtable.iter p.fds (fun _ e ->
          match e with
          | Fdtable.Fsock s -> add s
          | Fdtable.Fpipe_r _ | Fdtable.Fpipe_w _ | Fdtable.Fgm _ -> ()))
    (Pod.members pod);
  (* connections established but not yet accepted belong to the network
     state too: they live on listeners' accept queues; so do half-open
     children still on the SYN queue (SYN_RECEIVED) *)
  Hashtbl.iter
    (fun _ (s : Socket.t) ->
      if Socket.is_listening s then begin
        Queue.iter add s.accept_q;
        List.iter add s.synq
      end)
    (Hashtbl.copy seen);
  let sockets =
    Hashtbl.fold (fun _ s acc -> s :: acc) seen []
    |> List.sort (fun (a : Socket.t) b -> Int.compare a.id b.id)
    |> Array.of_list
  in
  let by_id = Hashtbl.create (Array.length sockets) in
  Array.iteri (fun i (s : Socket.t) -> Hashtbl.replace by_id s.id i) sockets;
  let inv = { sockets; by_id; queued_on = Hashtbl.create 4; syn_on = Hashtbl.create 4 } in
  Array.iteri
    (fun li (s : Socket.t) ->
      if Socket.is_listening s then begin
        Queue.iter
          (fun child ->
            match index_of inv child with
            | Some ci -> Hashtbl.replace inv.queued_on ci li
            | None -> ())
          s.accept_q;
        List.iter
          (fun child ->
            match index_of inv child with
            | Some ci -> Hashtbl.replace inv.syn_on ci li
            | None -> ())
          s.synq
      end)
    sockets;
  inv

type result = {
  images : Sock_state.image array;
  meta : Meta.pod_meta;
  net_bytes : int;  (* payload bytes saved from queues *)
  image_bytes : int;  (* encoded size of the network-state section *)
  socket_count : int;
}

let checkpoint ?(mode = Sock_state.Read_inject) (pod : Pod.t) : result =
  let inv = collect pod in
  let images =
    Array.mapi
      (fun i s ->
        let im = Sock_state.save ~mode ~ns:pod.ns s in
        {
          im with
          Sock_state.queued_on = Hashtbl.find_opt inv.queued_on i;
          syn_child_of = Hashtbl.find_opt inv.syn_on i;
        })
      inv.sockets
  in
  let entries =
    Array.to_list
      (Array.mapi (fun i s -> Sock_state.meta_entry ~sock_ref:i s images.(i)) inv.sockets)
    |> List.filter_map (fun x -> x)
  in
  let meta = { Meta.pm_pod = pod.pod_id; pm_vip = pod.vip; pm_entries = entries } in
  let net_bytes = Array.fold_left (fun acc im -> acc + Sock_state.bytes_saved im) 0 images in
  let image_bytes =
    Array.fold_left (fun acc im -> acc + Sock_state.image_size im) 0 images
    + Meta.size_bytes meta
  in
  { images; meta; net_bytes; image_bytes; socket_count = Array.length images }

let images_to_value images = Value.list Sock_state.to_value (Array.to_list images)

let images_of_value v = Array.of_list (Value.to_list Sock_state.of_value v)
