(** Pod-level network-state checkpoint: enumerate every socket reachable
    from the pod's processes — including established connections still
    waiting in accept queues — save each one, and build the pod's meta-data
    table.  Runs while the pod is suspended and its network blocked, so the
    state cannot change underneath it (paper section 5). *)

module Value = Zapc_codec.Value
module Socket = Zapc_simnet.Socket
module Pod = Zapc_pod.Pod

type inventory = {
  sockets : Socket.t array;  (** deterministic order (by socket id) *)
  by_id : (int, int) Hashtbl.t;  (** socket id -> index (O(1) mass lookups) *)
  queued_on : (int, int) Hashtbl.t;  (** socket index -> listener index *)
  syn_on : (int, int) Hashtbl.t;  (** half-open child index -> listener index *)
}

val collect : Pod.t -> inventory
val index_of : inventory -> Socket.t -> int option

type result = {
  images : Sock_state.image array;
  meta : Meta.pod_meta;
  net_bytes : int;  (** payload bytes saved from queues *)
  image_bytes : int;  (** encoded size of the network-state section *)
  socket_count : int;
}

val checkpoint : ?mode:Sock_state.mode -> Pod.t -> result
val images_to_value : Sock_state.image array -> Value.t
val images_of_value : Value.t -> Sock_state.image array
