(** Discrete-event simulation engine.

    A single engine drives an entire simulated cluster: the virtual clock
    advances to the timestamp of each scheduled event in turn and the event's
    callback runs to completion (callbacks may schedule further events).
    Determinism: ties in timestamps fire in scheduling order. *)

type t

val create : ?seed:int -> unit -> t
val now : t -> Simtime.t
val rng : t -> Rng.t

val schedule : t -> ?label:string -> delay:Simtime.t -> (unit -> unit) -> unit
(** Run the callback [delay] after the current virtual time.  [label] is a
    cheap callsite tag for the profiler (e.g. ["net.deliver"]); it is
    ignored — not even captured — unless profiling is on. *)

val schedule_at : t -> ?label:string -> at:Simtime.t -> (unit -> unit) -> unit

val run : ?until:Simtime.t -> ?max_events:int -> t -> unit
(** Process events until the queue is empty, [until] is reached, or
    [max_events] have fired.  Raises [Stalled] never — an empty queue simply
    stops. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int

(** {1 Profiler}

    Off by default; when enabled, each scheduled callback is wrapped at
    schedule time to count executions and accumulate host CPU time per
    label.  The run loop itself is untouched, so the default hot path pays
    nothing.  Event counts are deterministic for a seeded run; host times
    are wall-clock measurements and are not (keep them out of regression
    gates). *)

val set_profiling : t -> bool -> unit
(** Enabling keeps any counts accumulated so far; disabling drops them.
    Events already queued keep the instrumentation they were scheduled
    with. *)

val profiling : t -> bool

val profile : t -> (string * int * float) list
(** [(label, executed count, host seconds)] per label, sorted by count
    descending then label; [[]] when profiling is off.  Callbacks scheduled
    without a label accumulate under ["unlabeled"]. *)

exception Deadlock of string
(** Raised by [run_until_quiescent] helpers elsewhere when forward progress
    is required but the queue drained unexpectedly. *)
