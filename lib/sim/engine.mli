(** Discrete-event simulation engine.

    A single engine drives an entire simulated cluster: the virtual clock
    advances to the timestamp of each scheduled event in turn and the event's
    callback runs to completion (callbacks may schedule further events).
    Determinism: ties in timestamps fire in scheduling order. *)

type t

type queue_kind =
  | Heap      (** plain binary heap ({!Pheap}) *)
  | Calendar  (** bucketed calendar queue with heap overflow ({!Calq}) *)

val create : ?seed:int -> ?queue:queue_kind -> unit -> t
(** [queue] selects the event-queue backend (default [Calendar]).  Both
    backends implement the same [(time, sequence)] total order, so a seeded
    run is bit-identical under either; [Heap] is kept as the reference
    implementation and throughput baseline. *)

val now : t -> Simtime.t
val rng : t -> Rng.t

val schedule : t -> ?label:string -> delay:Simtime.t -> (unit -> unit) -> unit
(** Run the callback [delay] after the current virtual time.  [label] is a
    cheap callsite tag for the profiler (e.g. ["net.deliver"]); it is
    ignored — not even captured — unless profiling is on. *)

val schedule_at : t -> ?label:string -> at:Simtime.t -> (unit -> unit) -> unit

val run : ?until:Simtime.t -> ?max_events:int -> t -> unit
(** Process events until the queue is empty, [until] is reached, or
    [max_events] have fired.  Raises [Stalled] never — an empty queue simply
    stops. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int

(** {1 Cancellable timers}

    A [timer] wraps a callback that is re-armed far more often than it
    fires (TCP retransmit on every ACK, heartbeat rescheduling).  However
    often it is re-armed, at most one trampoline sits in the event queue:
    arming later just moves the deadline (the queued trampoline lazily
    re-queues itself), and cancelling clears the deadline so the pending
    trampoline degenerates to a no-op instead of a dead closure per
    re-arm. *)

type timer

val timer : ?label:string -> (unit -> unit) -> timer
(** Create an inactive timer around [fn]; [label] tags its queue entries
    for the profiler. *)

val timer_arm : t -> timer -> at:Simtime.t -> unit
(** (Re-)arm to fire at [at] (clamped to now).  Arming an active timer
    moves its deadline; the callback fires once per arm..fire cycle. *)

val timer_arm_in : t -> timer -> delay:Simtime.t -> unit

val timer_cancel : timer -> unit
(** Deactivate; a queued trampoline, if any, becomes a no-op. *)

val timer_active : timer -> bool

(** {1 Profiler}

    Off by default; when enabled, each scheduled callback is wrapped at
    schedule time to count executions and accumulate host CPU time per
    label.  The run loop itself is untouched, so the default hot path pays
    nothing.  Event counts are deterministic for a seeded run; host times
    are wall-clock measurements and are not (keep them out of regression
    gates). *)

val set_profiling : t -> bool -> unit
(** Enabling keeps any counts accumulated so far; disabling drops them.
    Events already queued keep the instrumentation they were scheduled
    with. *)

val profiling : t -> bool

val profile : t -> (string * int * float) list
(** [(label, executed count, host seconds)] per label, sorted by count
    descending then label; [[]] when profiling is off.  Callbacks scheduled
    without a label accumulate under ["unlabeled"]. *)

exception Deadlock of string
(** Raised by [run_until_quiescent] helpers elsewhere when forward progress
    is required but the queue drained unexpectedly. *)
