(* Two-level calendar event queue.

   Level 1 is a ring of fixed-width time buckets; scheduling within its
   horizon appends the event, unsorted, to the bucket covering its
   timestamp — two unboxed array stores, no entry record, no sift.  When
   the clock enters a bucket its arrays are stolen and sorted once,
   becoming the current "run" that pops consume by bumping an index.
   Level 2 is a coarser ring whose bucket width equals the whole level-1
   horizon: as the clock crosses a level-1 horizon boundary the next
   level-2 bucket spills into level 1, re-bucketing each entry in O(1).
   Events beyond even the level-2 horizon (rare: minutes out) wait in a
   plain [Pheap] and migrate into level 2 as its horizon slides.
   Latecomers — events scheduled at or before the current bucket, e.g.
   zero-delay follow-ups — go through a small binary heap whose size
   tracks live same-bucket stragglers, not total pending events.  When
   both rings are empty the calendar jumps straight to the next occupied
   coarse bucket instead of scanning empty slots.

   Every slot provably holds entries of a single (virtual) bucket index,
   so a ring entry only needs its key offset within the bucket plus its
   sequence number — packed into one non-negative int, compared as one
   int, with the absolute key rebuilt from the bucket base on drain.
   Draining sorts the (packed, index) int pair through a reused scratch;
   the value array stays in append order and is read through the index
   permutation, so the sort never stores a pointer (no GC write
   barriers).

   The observable order is (key, seq) with one global sequence counter —
   exactly [Pheap]'s order — so swapping queue backends cannot reorder a
   seeded simulation: equal-key events still fire in scheduling order.
   Keys must be non-negative; keys behind the current bucket still pop
   correctly (they land in the latecomer heap) but forfeit the O(1)
   path. *)

type 'a t = {
  dummy : 'a;
  shift : int;           (* L1 bucket width = 2^shift key units *)
  b1 : int;              (* log2 of L1 bucket count *)
  mask1 : int;           (* L1 slot mask *)
  wmask1 : int;          (* key-offset mask within an L1 bucket *)
  sb1 : int;             (* seq bits in an L1 packed entry *)
  smask1 : int;
  shift2 : int;          (* = shift + b1: L2 bucket width exponent *)
  n2 : int;              (* L2 bucket count, power of two *)
  mask2 : int;
  wmask2 : int;
  sb2 : int;
  smask2 : int;
  (* latecomer heap: entries at or before the current bucket *)
  mutable nk : int array;
  mutable ns : int array;
  mutable nv : 'a array;
  mutable nsize : int;
  (* level-1 ring: packed (offset, seq) + value per entry *)
  r1p : int array array;
  r1v : 'a array array;
  r1n : int array;
  mutable count1 : int;
  mutable cur_vb : int;  (* virtual L1 bucket index the clock is in *)
  (* level-2 ring *)
  r2p : int array array;
  r2v : 'a array array;
  r2n : int array;
  mutable count2 : int;
  (* sorted run: the drained current bucket, consumed in order *)
  mutable rp : int array;
  mutable ridx : int array;
  mutable rv : 'a array;
  mutable rbase : int;   (* absolute key base of the run's bucket *)
  mutable rpos : int;
  mutable rlen : int;
  (* merge-sort scratch, reused across drains *)
  mutable scp : int array;
  mutable sci : int array;
  (* overflow heap beyond the L2 horizon; values carry their original
     global sequence *)
  far : (int * 'a) Pheap.t;
  mutable size : int;
  mutable next_seq : int;
}

let default_shift = 10   (* ~1us L1 buckets at ns resolution *)
let default_b1 = 12      (* 4096 L1 buckets: ~4.2ms L1 horizon *)
let default_buckets2 = 8192  (* 8192 x 4.2ms: ~34s L2 horizon *)

let create ?(shift = default_shift) ?(b1 = default_b1)
    ?(buckets2 = default_buckets2) ~dummy () =
  if shift <= 0 || b1 <= 0 || shift + b1 > 26 then
    invalid_arg "Calq.create: shift/b1 out of range";
  if buckets2 <= 0 || buckets2 land (buckets2 - 1) <> 0 then
    invalid_arg "Calq.create: buckets2 must be a power of two";
  let n1 = 1 lsl b1 in
  let sb1 = 62 - shift and sb2 = 62 - shift - b1 in
  {
    dummy;
    shift;
    b1;
    mask1 = n1 - 1;
    wmask1 = (1 lsl shift) - 1;
    sb1;
    smask1 = (1 lsl sb1) - 1;
    shift2 = shift + b1;
    n2 = buckets2;
    mask2 = buckets2 - 1;
    wmask2 = (1 lsl (shift + b1)) - 1;
    sb2;
    smask2 = (1 lsl sb2) - 1;
    nk = [||];
    ns = [||];
    nv = [||];
    nsize = 0;
    r1p = Array.make n1 [||];
    r1v = Array.make n1 [||];
    r1n = Array.make n1 0;
    count1 = 0;
    cur_vb = 0;
    r2p = Array.make buckets2 [||];
    r2v = Array.make buckets2 [||];
    r2n = Array.make buckets2 0;
    count2 = 0;
    rp = [||];
    ridx = [||];
    rv = [||];
    rbase = 0;
    rpos = 0;
    rlen = 0;
    scp = [||];
    sci = [||];
    far = Pheap.create ();
    size = 0;
    next_seq = 0;
  }

let is_empty h = h.size = 0
let length h = h.size

(* ---- latecomer heap (parallel arrays, (key, seq) min order) ---- *)

let near_grow h =
  let cap = Array.length h.nk in
  if h.nsize = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nk = Array.make ncap 0 and ns = Array.make ncap 0 in
    let nv = Array.make ncap h.dummy in
    Array.blit h.nk 0 nk 0 h.nsize;
    Array.blit h.ns 0 ns 0 h.nsize;
    Array.blit h.nv 0 nv 0 h.nsize;
    h.nk <- nk;
    h.ns <- ns;
    h.nv <- nv
  end

let near_push h key seq v =
  near_grow h;
  let nk = h.nk and ns = h.ns and nv = h.nv in
  let i = ref h.nsize in
  h.nsize <- h.nsize + 1;
  nk.(!i) <- key;
  ns.(!i) <- seq;
  nv.(!i) <- v;
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    nk.(!i) < nk.(p) || (nk.(!i) = nk.(p) && ns.(!i) < ns.(p))
  do
    let p = (!i - 1) / 2 in
    let tk = nk.(p) and ts = ns.(p) and tv = nv.(p) in
    nk.(p) <- nk.(!i);
    ns.(p) <- ns.(!i);
    nv.(p) <- nv.(!i);
    nk.(!i) <- tk;
    ns.(!i) <- ts;
    nv.(!i) <- tv;
    i := p
  done

(* assumes nsize > 0 *)
let near_pop h =
  let nk = h.nk and ns = h.ns and nv = h.nv in
  let k = nk.(0) and v = nv.(0) in
  let n = h.nsize - 1 in
  h.nsize <- n;
  if n > 0 then begin
    nk.(0) <- nk.(n);
    ns.(0) <- ns.(n);
    nv.(0) <- nv.(n);
    nv.(n) <- h.dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < n && (nk.(l) < nk.(!m) || (nk.(l) = nk.(!m) && ns.(l) < ns.(!m)))
      then m := l;
      if r < n && (nk.(r) < nk.(!m) || (nk.(r) = nk.(!m) && ns.(r) < ns.(!m)))
      then m := r;
      if !m = !i then continue := false
      else begin
        let tk = nk.(!m) and ts = ns.(!m) and tv = nv.(!m) in
        nk.(!m) <- nk.(!i);
        ns.(!m) <- ns.(!i);
        nv.(!m) <- nv.(!i);
        nk.(!i) <- tk;
        ns.(!i) <- ts;
        nv.(!i) <- tv;
        i := !m
      end
    done
  end
  else nv.(0) <- h.dummy;
  (k, v)

(* ---- ring slots (shared append for both levels) ---- *)

let slot_add dummy rp rv rn s packed v =
  let n = Array.unsafe_get rn s in
  let p = Array.unsafe_get rp s in
  if n = Array.length p then begin
    let ncap = if n = 0 then 16 else n * 2 in
    let p' = Array.make ncap 0 in
    let v' = Array.make ncap dummy in
    Array.blit p 0 p' 0 n;
    Array.blit (Array.unsafe_get rv s) 0 v' 0 n;
    Array.unsafe_set rp s p';
    Array.unsafe_set rv s v';
    Array.unsafe_set p' n packed;
    Array.unsafe_set v' n v
  end
  else begin
    Array.unsafe_set p n packed;
    Array.unsafe_set (Array.unsafe_get rv s) n v
  end;
  Array.unsafe_set rn s (n + 1)

let add1 h key seq v =
  let packed = ((key land h.wmask1) lsl h.sb1) lor seq in
  slot_add h.dummy h.r1p h.r1v h.r1n ((key asr h.shift) land h.mask1) packed v;
  h.count1 <- h.count1 + 1

let add2 h key seq v =
  let packed = ((key land h.wmask2) lsl h.sb2) lor seq in
  slot_add h.dummy h.r2p h.r2v h.r2n ((key asr h.shift2) land h.mask2) packed v;
  h.count2 <- h.count2 + 1

(* ---- sorting a drained bucket ----

   A single int compare on the packed (offset, seq) entry gives the full
   (key, seq) order within a bucket.  Only the (packed, index) int pair is
   sorted — values stay in append order and are read through the
   permutation.  Insertion sort for small buckets, bottom-up merge through
   the shared scratch otherwise. *)

let sort_bucket h p idx n =
  for i = 0 to n - 1 do
    Array.unsafe_set idx i i
  done;
  if n <= 32 then begin
    for i = 1 to n - 1 do
      let pi = Array.unsafe_get p i in
      if pi < Array.unsafe_get p (i - 1) then begin
        let xi = Array.unsafe_get idx i in
        let j = ref (i - 1) in
        while !j >= 0 && Array.unsafe_get p !j > pi do
          Array.unsafe_set p (!j + 1) (Array.unsafe_get p !j);
          Array.unsafe_set idx (!j + 1) (Array.unsafe_get idx !j);
          decr j
        done;
        Array.unsafe_set p (!j + 1) pi;
        Array.unsafe_set idx (!j + 1) xi
      end
    done
  end
  else begin
    if Array.length h.scp < n then begin
      let cap = ref (if Array.length h.scp = 0 then 64 else Array.length h.scp) in
      while !cap < n do
        cap := !cap * 2
      done;
      h.scp <- Array.make !cap 0;
      h.sci <- Array.make !cap 0
    end;
    let tp = h.scp and ti = h.sci in
    let merge ap ai bp bi lo mid hi =
      let i = ref lo and j = ref mid in
      for x = lo to hi - 1 do
        if
          !i < mid
          && (!j >= hi || Array.unsafe_get ap !i <= Array.unsafe_get ap !j)
        then begin
          Array.unsafe_set bp x (Array.unsafe_get ap !i);
          Array.unsafe_set bi x (Array.unsafe_get ai !i);
          incr i
        end
        else begin
          Array.unsafe_set bp x (Array.unsafe_get ap !j);
          Array.unsafe_set bi x (Array.unsafe_get ai !j);
          incr j
        end
      done
    in
    let src_is_orig = ref true in
    let width = ref 1 in
    while !width < n do
      let ap, ai, bp, bi =
        if !src_is_orig then (p, idx, tp, ti) else (tp, ti, p, idx)
      in
      let lo = ref 0 in
      while !lo < n do
        let mid = min (!lo + !width) n in
        let hi = min (!lo + (2 * !width)) n in
        merge ap ai bp bi !lo mid hi;
        lo := hi
      done;
      src_is_orig := not !src_is_orig;
      width := !width * 2
    done;
    if not !src_is_orig then begin
      Array.blit tp 0 p 0 n;
      Array.blit ti 0 idx 0 n
    end
  end

(* ---- horizon movement ---- *)

(* Slide overflow entries under the L2 horizon ending at coarse bucket
   [vb2 + n2] into level 2.  Entries always land at the far edge (their
   coarse bucket is >= the previous horizon), never behind the clock. *)
let migrate_far h vb2 =
  let lim = ((vb2 + h.n2) lsl h.shift2) - 1 in
  let continue = ref true in
  while !continue do
    match Pheap.pop_if_le h.far ~limit:lim with
    | Some (k, (seq, v)) -> add2 h k seq v
    | None -> continue := false
  done

(* Spill coarse bucket [vb2] into level 1.  Caller guarantees
   [h.cur_vb = (vb2 lsl b1) - 1], so every entry lands within
   [cur_vb + 1, cur_vb + 2^b1] — inside the L1 window. *)
let spill2 h vb2 =
  let s = vb2 land h.mask2 in
  let n = h.r2n.(s) in
  if n > 0 then begin
    let p = h.r2p.(s) and v = h.r2v.(s) in
    let base = vb2 lsl h.shift2 in
    for j = 0 to n - 1 do
      let pj = Array.unsafe_get p j in
      add1 h (base lor (pj asr h.sb2)) (pj land h.smask2) (Array.unsafe_get v j);
      Array.unsafe_set v j h.dummy
    done;
    h.r2n.(s) <- 0;
    h.count2 <- h.count2 - n
  end

(* ---- sorted run refill ---- *)

(* Refill the run with the next occupied L1 bucket (assumes size > 0, run
   exhausted, latecomer heap empty). *)
let advance h =
  h.rpos <- 0;
  h.rlen <- 0;
  let found = ref false in
  while not !found do
    if h.count1 > 0 then begin
      (* walk to the next occupied L1 slot; crossing into a new coarse
         bucket first spills it (and slides the overflow horizon), so
         spilled entries are always ahead of the walk *)
      let continue = ref true in
      while !continue do
        let nxt = h.cur_vb + 1 in
        if nxt land h.mask1 = 0 then begin
          let vb2 = nxt asr h.b1 in
          migrate_far h vb2;
          spill2 h vb2
        end;
        h.cur_vb <- nxt;
        let s = nxt land h.mask1 in
        let n = h.r1n.(s) in
        if n > 0 then begin
          (* steal the slot's arrays as the new run; the previous run's
             arrays (fully consumed, values dummied) go back to the slot *)
          let p = h.r1p.(s) and v = h.r1v.(s) in
          h.r1p.(s) <- h.rp;
          h.r1v.(s) <- h.rv;
          h.r1n.(s) <- 0;
          h.count1 <- h.count1 - n;
          if Array.length h.ridx < Array.length p then
            h.ridx <- Array.make (Array.length p) 0;
          sort_bucket h p h.ridx n;
          h.rp <- p;
          h.rv <- v;
          h.rbase <- nxt lsl h.shift;
          h.rlen <- n;
          continue := false;
          found := true
        end
      done
    end
    else if h.count2 > 0 then begin
      (* L1 empty: walk L2 to its next occupied slot and spill it *)
      let vb2 = ref ((h.cur_vb asr h.b1) + 1) in
      while h.r2n.(!vb2 land h.mask2) = 0 do
        migrate_far h !vb2;
        incr vb2
      done;
      migrate_far h !vb2;
      h.cur_vb <- (!vb2 lsl h.b1) - 1;
      spill2 h !vb2
      (* loop: count1 > 0 now *)
    end
    else begin
      match Pheap.peek_key h.far with
      | None -> found := true (* caller violated size > 0; degrade safely *)
      | Some k ->
        (* both rings empty: jump straight to the overflow minimum *)
        let vb2 = k asr h.shift2 in
        let cur2 = h.cur_vb asr h.b1 in
        let vb2 = if vb2 > cur2 then vb2 else cur2 + 1 in
        migrate_far h vb2;
        h.cur_vb <- (vb2 lsl h.b1) - 1
        (* loop: count2 > 0 now *)
    end
  done

(* head selection: 0 = run, 1 = latecomer heap (assumes size > 0) *)
let rec ready_head h =
  if h.rpos < h.rlen then begin
    if h.nsize = 0 then 0
    else begin
      let pk = h.rp.(h.rpos) in
      let rk = h.rbase lor (pk asr h.sb1) and nk = h.nk.(0) in
      if rk < nk || (rk = nk && pk land h.smask1 < h.ns.(0)) then 0 else 1
    end
  end
  else if h.nsize > 0 then 1
  else begin
    advance h;
    ready_head h
  end

let take h head =
  h.size <- h.size - 1;
  if head = 0 then begin
    let p = h.rpos in
    let k = h.rbase lor (h.rp.(p) asr h.sb1) in
    let x = h.ridx.(p) in
    let v = h.rv.(x) in
    h.rv.(x) <- h.dummy;
    h.rpos <- p + 1;
    (k, v)
  end
  else near_pop h

(* ---- public ops ---- *)

let push h ~key v =
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  h.size <- h.size + 1;
  let vb = key asr h.shift in
  if vb <= h.cur_vb then near_push h key seq v
  else if vb - h.cur_vb <= h.mask1 then add1 h key seq v
  else if (key asr h.shift2) - (h.cur_vb asr h.b1) < h.n2 then add2 h key seq v
  else Pheap.push h.far ~key (seq, v)

let pop h = if h.size = 0 then None else Some (take h (ready_head h))

let pop_if_le h ~limit =
  if h.size = 0 then None
  else begin
    let head = ready_head h in
    let k =
      if head = 0 then h.rbase lor (h.rp.(h.rpos) asr h.sb1) else h.nk.(0)
    in
    if k > limit then None else Some (take h head)
  end

let peek_key h =
  if h.size = 0 then None
  else begin
    let head = ready_head h in
    Some (if head = 0 then h.rbase lor (h.rp.(h.rpos) asr h.sb1) else h.nk.(0))
  end

let iter h f =
  for i = h.rpos to h.rlen - 1 do
    f (h.rbase lor (h.rp.(i) asr h.sb1)) h.rv.(h.ridx.(i))
  done;
  for i = 0 to h.nsize - 1 do
    f h.nk.(i) h.nv.(i)
  done;
  (* ring entries: recover each absolute key from its slot's virtual
     bucket, which is unique per slot (single-occupancy invariant) but not
     directly recorded — scan relative to the current bucket *)
  for d = 1 to h.mask1 + 1 do
    let vb = h.cur_vb + d in
    let s = vb land h.mask1 in
    if h.r1n.(s) > 0 then begin
      let p = h.r1p.(s) and v = h.r1v.(s) in
      (* entries in a slot share their virtual bucket only if it matches
         the offset check; recompute the base from the packed offset *)
      let base = vb lsl h.shift in
      for j = 0 to h.r1n.(s) - 1 do
        f (base lor (p.(j) asr h.sb1)) v.(j)
      done
    end
  done;
  let cur2 = h.cur_vb asr h.b1 in
  for d = 1 to h.mask2 + 1 do
    let vb2 = cur2 + d in
    let s = vb2 land h.mask2 in
    if h.r2n.(s) > 0 then begin
      let p = h.r2p.(s) and v = h.r2v.(s) in
      let base = vb2 lsl h.shift2 in
      for j = 0 to h.r2n.(s) - 1 do
        f (base lor (p.(j) asr h.sb2)) v.(j)
      done
    end
  done;
  Pheap.iter h.far (fun k (_, v) -> f k v)

let clear h =
  h.nk <- [||];
  h.ns <- [||];
  h.nv <- [||];
  h.nsize <- 0;
  for s = 0 to h.mask1 do
    h.r1p.(s) <- [||];
    h.r1v.(s) <- [||];
    h.r1n.(s) <- 0
  done;
  for s = 0 to h.mask2 do
    h.r2p.(s) <- [||];
    h.r2v.(s) <- [||];
    h.r2n.(s) <- 0
  done;
  h.count1 <- 0;
  h.count2 <- 0;
  h.rp <- [||];
  h.ridx <- [||];
  h.rv <- [||];
  h.rbase <- 0;
  h.rpos <- 0;
  h.rlen <- 0;
  h.scp <- [||];
  h.sci <- [||];
  Pheap.clear h.far;
  h.size <- 0;
  h.next_seq <- 0
