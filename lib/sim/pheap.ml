type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { arr = [||]; size = 0; next_seq = 0 }
let is_empty h = h.size = 0
let length h = h.size

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h e =
  let cap = Array.length h.arr in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let narr = Array.make ncap e in
    Array.blit h.arr 0 narr 0 h.size;
    h.arr <- narr
  end

let push h ~key value =
  let e = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h e;
  h.arr.(h.size) <- e;
  h.size <- h.size + 1;
  (* sift up *)
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less h.arr.(!i) h.arr.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = h.arr.(p) in
    h.arr.(p) <- h.arr.(!i);
    h.arr.(!i) <- tmp;
    i := p
  done

(* Remove the root (caller has already read it); assumes size > 0. *)
let remove_top h =
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.arr.(0) <- h.arr.(h.size);
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.size && less h.arr.(l) h.arr.(!m) then m := l;
      if r < h.size && less h.arr.(r) h.arr.(!m) then m := r;
      if !m = !i then continue := false
      else begin
        let tmp = h.arr.(!m) in
        h.arr.(!m) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := !m
      end
    done
  end

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.arr.(0) in
    remove_top h;
    Some (top.key, top.value)
  end

let pop_if_le h ~limit =
  if h.size = 0 then None
  else begin
    let top = h.arr.(0) in
    if top.key > limit then None
    else begin
      remove_top h;
      Some (top.key, top.value)
    end
  end

let peek_key h = if h.size = 0 then None else Some h.arr.(0).key

let iter h f =
  for i = 0 to h.size - 1 do
    let e = h.arr.(i) in
    f e.key e.value
  done

let clear h =
  (* drop the backing array so a cleared heap releases its entries *)
  h.arr <- [||];
  h.size <- 0;
  h.next_seq <- 0
