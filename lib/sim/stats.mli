(** Small running-statistics accumulator for experiment reporting
    (mean, standard deviation, min, max over repeated runs). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float
val of_list : float list -> t

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,1], computed from the retained samples
    by linear interpolation between closest ranks; [0.0] when empty. *)

val pp_ms : Format.formatter -> t -> unit
(** Render as "mean ± stddev ms [min..max]" where samples are milliseconds;
    "n=0" for an empty accumulator. *)
