exception Deadlock of string

type prof = { mutable p_count : int; mutable p_host : float }

type t = {
  mutable clock : Simtime.t;
  queue : (unit -> unit) Pheap.t;
  rng : Rng.t;
  mutable processed : int;
  mutable profile : (string, prof) Hashtbl.t option;
}

let create ?(seed = 42) () =
  { clock = Simtime.zero; queue = Pheap.create (); rng = Rng.create ~seed;
    processed = 0; profile = None }

let now t = t.clock
let rng t = t.rng

let set_profiling t on =
  if on then begin
    match t.profile with
    | Some _ -> ()
    | None -> t.profile <- Some (Hashtbl.create 32)
  end
  else t.profile <- None

let profiling t = t.profile <> None

let prof_for tbl label =
  match Hashtbl.find_opt tbl label with
  | Some p -> p
  | None ->
    let p = { p_count = 0; p_host = 0. } in
    Hashtbl.replace tbl label p;
    p

(* Profiling wraps the callback at schedule time, so the run loop itself
   stays untouched: with profiling off (the default) the hot path is
   exactly the unlabeled push/pop it always was. *)
let instrument t label fn =
  match t.profile with
  | None -> fn
  | Some tbl ->
    let p = prof_for tbl (match label with Some l -> l | None -> "unlabeled") in
    fun () ->
      let t0 = Sys.time () in
      fn ();
      p.p_count <- p.p_count + 1;
      p.p_host <- p.p_host +. (Sys.time () -. t0)

let schedule_at t ?label ~at fn =
  let at = if Simtime.compare at t.clock < 0 then t.clock else at in
  Pheap.push t.queue ~key:at (instrument t label fn)

let schedule t ?label ~delay fn =
  schedule_at t ?label ~at:(Simtime.add t.clock delay) fn

let profile t =
  match t.profile with
  | None -> []
  | Some tbl ->
    Hashtbl.fold (fun l p acc -> (l, p.p_count, p.p_host) :: acc) tbl []
    |> List.sort (fun (la, ca, _) (lb, cb, _) ->
           match compare cb ca with 0 -> compare la lb | c -> c)

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Pheap.peek_key t.queue with
    | None -> continue := false
    | Some key ->
      (match until with
       | Some limit when Simtime.compare key limit > 0 ->
         t.clock <- limit;
         continue := false
       | _ ->
         (match Pheap.pop t.queue with
          | None -> continue := false
          | Some (at, fn) ->
            t.clock <- at;
            t.processed <- t.processed + 1;
            decr budget;
            fn ()))
  done

let pending t = Pheap.length t.queue
let events_processed t = t.processed
