exception Deadlock of string

type prof = { mutable p_count : int; mutable p_host : float }

type queue_kind = Heap | Calendar

type queue =
  | Q_heap of (unit -> unit) Pheap.t
  | Q_cal of (unit -> unit) Calq.t

type t = {
  mutable clock : Simtime.t;
  queue : queue;
  rng : Rng.t;
  mutable processed : int;
  mutable profile : (string, prof) Hashtbl.t option;
}

let nop () = ()

let create ?(seed = 42) ?(queue = Calendar) () =
  let queue =
    match queue with
    | Heap -> Q_heap (Pheap.create ())
    | Calendar -> Q_cal (Calq.create ~dummy:nop ())
  in
  { clock = Simtime.zero; queue; rng = Rng.create ~seed;
    processed = 0; profile = None }

let now t = t.clock
let rng t = t.rng

let set_profiling t on =
  if on then begin
    match t.profile with
    | Some _ -> ()
    | None -> t.profile <- Some (Hashtbl.create 32)
  end
  else t.profile <- None

let profiling t = t.profile <> None

let prof_for tbl label =
  match Hashtbl.find_opt tbl label with
  | Some p -> p
  | None ->
    let p = { p_count = 0; p_host = 0. } in
    Hashtbl.replace tbl label p;
    p

(* Profiling wraps the callback at schedule time, so the run loop itself
   stays untouched: with profiling off (the default) the hot path is
   exactly the unlabeled push/pop it always was. *)
let instrument t label fn =
  match t.profile with
  | None -> fn
  | Some tbl ->
    let p = prof_for tbl (match label with Some l -> l | None -> "unlabeled") in
    fun () ->
      let t0 = Sys.time () in
      fn ();
      p.p_count <- p.p_count + 1;
      p.p_host <- p.p_host +. (Sys.time () -. t0)

let schedule_at t ?label ~at fn =
  let at = if Simtime.compare at t.clock < 0 then t.clock else at in
  let fn = instrument t label fn in
  match t.queue with
  | Q_heap q -> Pheap.push q ~key:at fn
  | Q_cal q -> Calq.push q ~key:at fn

let schedule t ?label ~delay fn =
  schedule_at t ?label ~at:(Simtime.add t.clock delay) fn

let profile t =
  match t.profile with
  | None -> []
  | Some tbl ->
    Hashtbl.fold (fun l p acc -> (l, p.p_count, p.p_host) :: acc) tbl []
    |> List.sort (fun (la, ca, _) (lb, cb, _) ->
           match compare cb ca with 0 -> compare la lb | c -> c)

let pending t =
  match t.queue with Q_heap q -> Pheap.length q | Q_cal q -> Calq.length q

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue && !budget > 0 do
    let next =
      (* a single root access per event: pop-if-due instead of peek+pop *)
      match t.queue, until with
      | Q_heap q, None -> Pheap.pop q
      | Q_heap q, Some limit -> Pheap.pop_if_le q ~limit
      | Q_cal q, None -> Calq.pop q
      | Q_cal q, Some limit -> Calq.pop_if_le q ~limit
    in
    match next with
    | Some (at, fn) ->
      t.clock <- at;
      t.processed <- t.processed + 1;
      decr budget;
      fn ()
    | None ->
      (match until with
       | Some limit when pending t > 0 ->
         (* queue non-empty but nothing due: the horizon was reached *)
         t.clock <- limit
       | _ -> ());
      continue := false
  done

let events_processed t = t.processed

(* ---- cancellable timers ----

   A timer keeps at most one live trampoline in the queue however often it
   is re-armed: re-arming later just moves the deadline and lets the queued
   trampoline lazily re-queue itself when it fires early, and cancelling
   clears the deadline so the trampoline becomes a no-op.  Hot rescheduling
   paths (TCP retransmit on every ACK, heartbeats) therefore stop flooding
   the queue with dead closures. *)

type timer = {
  mutable tm_deadline : Simtime.t;  (* negative = inactive *)
  mutable tm_queued : Simtime.t;    (* earliest queued trampoline, negative = none *)
  tm_fn : unit -> unit;
  tm_label : string option;
}

let rec timer_tick t tm () =
  tm.tm_queued <- Simtime.ns (-1);
  let d = tm.tm_deadline in
  if Simtime.compare d Simtime.zero >= 0 then begin
    if Simtime.compare d t.clock <= 0 then begin
      tm.tm_deadline <- Simtime.ns (-1);
      tm.tm_fn ()
    end
    else timer_queue t tm (* re-armed later: lazily re-queue at the deadline *)
  end

and timer_queue t tm =
  tm.tm_queued <- tm.tm_deadline;
  schedule_at t ?label:tm.tm_label ~at:tm.tm_deadline (timer_tick t tm)

let timer ?label fn =
  { tm_deadline = Simtime.ns (-1); tm_queued = Simtime.ns (-1);
    tm_fn = fn; tm_label = label }

let timer_arm t tm ~at =
  let at = if Simtime.compare at t.clock < 0 then t.clock else at in
  tm.tm_deadline <- at;
  if Simtime.compare tm.tm_queued Simtime.zero < 0
     || Simtime.compare tm.tm_queued at > 0
  then timer_queue t tm

let timer_arm_in t tm ~delay = timer_arm t tm ~at:(Simtime.add t.clock delay)
let timer_cancel tm = tm.tm_deadline <- Simtime.ns (-1)
let timer_active tm = Simtime.compare tm.tm_deadline Simtime.zero >= 0
