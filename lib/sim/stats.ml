type t = {
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
  mutable samples : float list; (* newest first; retained for percentile *)
}

let create () =
  { n = 0; sum = 0.0; sumsq = 0.0; mn = infinity; mx = neg_infinity;
    samples = [] }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  t.samples <- x :: t.samples

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let m = mean t in
    let var = (t.sumsq /. float_of_int t.n) -. (m *. m) in
    sqrt (Stdlib.max 0.0 var)

let min t = t.mn
let max t = t.mx

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
    let a = Array.of_list t.samples in
    Array.sort compare a;
    let n = Array.length a in
    (* linear interpolation between closest ranks *)
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then a.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
    end
  end

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let pp_ms ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "%.1f ± %.1f ms [%.1f..%.1f]" (mean t) (stddev t) t.mn
      t.mx
