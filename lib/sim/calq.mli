(** Two-level calendar event queue: a fine ring of time buckets drained
    into a sorted run, a coarse ring that spills into the fine one as the
    clock crosses horizon boundaries, a small heap for latecomers, and a
    [Pheap] overflow for events beyond even the coarse horizon.

    Same observable semantics as {!Pheap} — minimum [(key, seq)] first, FIFO
    among equal keys under one global sequence counter — but scheduling
    within the horizons is an O(1) unsorted append, each bucket is sorted
    once when the clock enters it, and pops consume the sorted run by
    bumping an index.  Keys must be non-negative. *)

type 'a t

val create : ?shift:int -> ?b1:int -> ?buckets2:int -> dummy:'a -> unit -> 'a t
(** [shift] sets the fine bucket width to [2^shift] key units (default 10,
    i.e. ~1us at nanosecond resolution); [b1] is the log2 of the fine
    bucket count (default 12: 4096 buckets, a ~4.2ms fine horizon);
    [buckets2] is the coarse bucket count, a power of two (default 8192,
    for a ~34s coarse horizon — each coarse bucket spans the whole fine
    ring).  [dummy] fills vacated value slots so popped closures are not
    retained.  [shift + b1] must stay [<= 26] so a packed bucket entry
    (key offset plus sequence number) fits one OCaml int. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> key:int -> 'a -> unit
(** Insert with priority [key]; FIFO among equal keys. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum [(key, value)]. *)

val pop_if_le : 'a t -> limit:int -> (int * 'a) option
(** [pop] only if the minimum key is [<= limit]. *)

val peek_key : 'a t -> int option

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Visit every [(key, value)] in unspecified order. *)

val clear : 'a t -> unit
(** Empty the queue and release bucket and heap storage. *)
