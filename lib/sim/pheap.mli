(** Imperative binary min-heap keyed by [(time, sequence)] so that events at
    equal times pop in insertion order (deterministic tie-breaking). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> key:int -> 'a -> unit
(** Insert with priority [key]; FIFO among equal keys. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum [(key, value)]. *)

val pop_if_le : 'a t -> limit:int -> (int * 'a) option
(** [pop] only if the minimum key is [<= limit]; a single root access
    instead of the [peek_key]-then-[pop] double traversal. *)

val peek_key : 'a t -> int option

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Visit every [(key, value)] in unspecified (heap) order. *)

val clear : 'a t -> unit
(** Empty the heap and release the backing array. *)
