(* Deterministic fault injection for the simulated ZapC cluster.

   Faults are scheduled on the cluster's own virtual-time engine, or fired
   synchronously from Trace observers at protocol phase boundaries (which is
   how a test lands a channel break exactly between a pod's meta report and
   the Manager's 'continue').  All randomness comes from an RNG split off
   the engine's seeded stream, so a chaos scenario is a pure function of its
   seed and replays bit-identically. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Rng = Zapc_sim.Rng
module Fabric = Zapc_simnet.Fabric
module Netfilter = Zapc_simnet.Netfilter
module Kernel = Zapc_simos.Kernel
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Agent = Zapc.Agent
module Control = Zapc.Control
module Storage = Zapc.Storage
module Trace = Zapc.Trace

type fault =
  | Break_channel of { node : int }
  | Crash_node of { node : int }
  | Hang_agent of { node : int; duration : Simtime.t option }
  | Loss_burst of { prob : float; duration : Simtime.t }
  | Latency_spike of { latency : Simtime.t; duration : Simtime.t }
  | Storage_outage of { duration : Simtime.t option }
  | Replica_outage of { replica : int; duration : Simtime.t option }
  | Corrupt_image of { replica : int; key : string option }

type trigger =
  | Now
  | At of Simtime.t
  | After of Simtime.t
  | On_phase of { phase : string; pod : int option; skip : int }

type injection = {
  fault : fault;
  trigger : trigger;
}

let fault_to_string = function
  | Break_channel { node } -> Printf.sprintf "break-channel(node %d)" node
  | Crash_node { node } -> Printf.sprintf "crash-node(node %d)" node
  | Hang_agent { node; duration = None } -> Printf.sprintf "hang-agent(node %d)" node
  | Hang_agent { node; duration = Some d } ->
    Printf.sprintf "hang-agent(node %d, %.1fms)" node (Simtime.to_ms d)
  | Loss_burst { prob; duration } ->
    Printf.sprintf "loss-burst(p=%.2f, %.1fms)" prob (Simtime.to_ms duration)
  | Latency_spike { latency; duration } ->
    Printf.sprintf "latency-spike(%.1fms, %.1fms)" (Simtime.to_ms latency)
      (Simtime.to_ms duration)
  | Storage_outage { duration = None } -> "storage-outage"
  | Storage_outage { duration = Some d } ->
    Printf.sprintf "storage-outage(%.1fms)" (Simtime.to_ms d)
  | Replica_outage { replica; duration = None } ->
    Printf.sprintf "replica-outage(replica %d)" replica
  | Replica_outage { replica; duration = Some d } ->
    Printf.sprintf "replica-outage(replica %d, %.1fms)" replica (Simtime.to_ms d)
  | Corrupt_image { replica; key = None } ->
    Printf.sprintf "corrupt-image(replica %d, all keys)" replica
  | Corrupt_image { replica; key = Some k } ->
    Printf.sprintf "corrupt-image(replica %d, %s)" replica k

let trigger_to_string = function
  | Now -> "now"
  | At t -> Printf.sprintf "at %.3fms" (Simtime.to_ms t)
  | After d -> Printf.sprintf "after %.3fms" (Simtime.to_ms d)
  | On_phase { phase; pod; skip } ->
    Printf.sprintf "on %s%s%s" phase
      (match pod with Some p -> Printf.sprintf "[pod %d]" p | None -> "")
      (if skip > 0 then Printf.sprintf "+%d" skip else "")

let injection_to_string i =
  Printf.sprintf "%s %s" (fault_to_string i.fault) (trigger_to_string i.trigger)

type armed_injection = {
  a_inj : injection;
  mutable a_fired : bool;
  mutable a_seen : int;  (* On_phase match counter *)
}

type t = {
  cluster : Cluster.t;
  tr : Trace.t;
  base_cfg : Fabric.config;  (* fabric config before any injection *)
  mutable hung : (int * Zapc.Protocol.channel) list;
  mutable crashed : int list;
  mutable log : (Simtime.t * string) list;  (* newest first *)
  mutable installed : armed_injection list;
}

let create ?trace cluster =
  let tr = match trace with Some tr -> tr | None -> Cluster.enable_trace cluster in
  {
    cluster;
    tr;
    base_cfg = Fabric.config (Cluster.fabric cluster);
    hung = [];
    crashed = [];
    log = [];
    installed = [];
  }

let trace t = t.tr
let engine t = Cluster.engine t.cluster
let fabric t = Cluster.fabric t.cluster
let now t = Engine.now (engine t)

let note t what = t.log <- (now t, what) :: t.log
let fired t = List.rev t.log
let armed t = List.length (List.filter (fun a -> not a.a_fired) t.installed)
let crashed_nodes t = List.sort Int.compare t.crashed

let after t delay fn = Engine.schedule (engine t) ~label:"fault.timer" ~delay fn

(* --- applying individual faults --- *)

let apply_break t node =
  note t (fault_to_string (Break_channel { node }));
  Manager.break_channel (Cluster.manager t.cluster) ~node

(* Power loss: the pod processes die with the node, the per-node netfilter
   rules vanish with its kernel, its NIC drops off the fabric, and the
   Manager sees the control connection break.  The kill happens before the
   break so the Manager's abort finds nothing alive to un-suspend. *)
let apply_crash t node =
  if not (List.mem node t.crashed) then begin
    note t (fault_to_string (Crash_node { node }));
    t.crashed <- node :: t.crashed;
    Cluster.mark_node_dead t.cluster node;
    let n = Cluster.node t.cluster node in
    let nf = Fabric.netfilter (fabric t) in
    (* mark in-flight operations aborted first, so cost callbacks already on
       the engine queue become no-ops instead of touching destroyed pods *)
    Agent.abort_all n.n_agent;
    List.iter
      (fun (p : Pod.t) ->
        Netfilter.unblock nf p.rip;
        Pod.destroy p;
        Agent.forget_pod n.n_agent p.pod_id)
      (Agent.live_pods n.n_agent);
    Kernel.crash n.n_kernel;
    Fabric.detach_node (fabric t) node;
    Manager.break_channel (Cluster.manager t.cluster) ~node
  end

let resume_agent t node =
  match List.assoc_opt node t.hung with
  | None -> ()
  | Some ch ->
    t.hung <- List.filter (fun (n, _) -> n <> node) t.hung;
    Control.resume_up ch;
    Control.resume_down ch

let apply_hang t node duration =
  match Manager.agent_channel (Cluster.manager t.cluster) ~node with
  | None -> ()
  | Some ch ->
    note t (fault_to_string (Hang_agent { node; duration }));
    Control.pause_up ch;
    Control.pause_down ch;
    t.hung <- (node, ch) :: t.hung;
    (match duration with
     | Some d ->
       after t d (fun () ->
           if List.mem_assoc node t.hung then begin
             note t (Printf.sprintf "heal: hang-agent(node %d)" node);
             resume_agent t node
           end)
     | None -> ())

let apply_loss t prob duration =
  note t (fault_to_string (Loss_burst { prob; duration }));
  Fabric.set_loss_prob (fabric t) prob;
  after t duration (fun () ->
      note t "heal: loss-burst";
      Fabric.set_loss_prob (fabric t) t.base_cfg.loss_prob)

let apply_latency t latency duration =
  note t (fault_to_string (Latency_spike { latency; duration }));
  Fabric.set_latency (fabric t) latency;
  after t duration (fun () ->
      note t "heal: latency-spike";
      Fabric.set_latency (fabric t) t.base_cfg.latency)

let apply_storage t duration =
  note t (fault_to_string (Storage_outage { duration }));
  let storage = Cluster.storage t.cluster in
  Storage.set_fail_writes storage (Some "injected storage outage");
  match duration with
  | Some d ->
    after t d (fun () ->
        note t "heal: storage-outage";
        Storage.set_fail_writes storage None)
  | None -> ()

(* One replica of the store goes dark: writes skip it, reads fall back
   past it.  The global store stays available throughout. *)
let apply_replica_outage t replica duration =
  note t (fault_to_string (Replica_outage { replica; duration }));
  let storage = Cluster.storage t.cluster in
  Storage.set_replica_fail storage ~replica (Some "injected replica outage");
  match duration with
  | Some d ->
    after t d (fun () ->
        note t (Printf.sprintf "heal: replica-outage(replica %d)" replica);
        Storage.set_replica_fail storage ~replica None)
  | None -> ()

(* Silent bit rot on one replica's copy (or copies): the bytes change under
   the stored checksum, so only a verifying read notices and falls back. *)
let apply_corrupt t replica key =
  note t (fault_to_string (Corrupt_image { replica; key }));
  let storage = Cluster.storage t.cluster in
  match key with
  | Some k -> ignore (Storage.corrupt storage ~replica k)
  | None ->
    List.iter (fun k -> ignore (Storage.corrupt storage ~replica k))
      (Storage.keys storage)

let apply t fault =
  match fault with
  | Break_channel { node } -> apply_break t node
  | Crash_node { node } -> apply_crash t node
  | Hang_agent { node; duration } -> apply_hang t node duration
  | Loss_burst { prob; duration } -> apply_loss t prob duration
  | Latency_spike { latency; duration } -> apply_latency t latency duration
  | Storage_outage { duration } -> apply_storage t duration
  | Replica_outage { replica; duration } -> apply_replica_outage t replica duration
  | Corrupt_image { replica; key } -> apply_corrupt t replica key

(* --- triggers --- *)

let fire t a =
  if not a.a_fired then begin
    a.a_fired <- true;
    (* the [fault:*] instant is what trips the flight recorder into a dump
       (Cluster.enable_flight) — record it before the fault mutates state so
       the rings still hold the pre-fault tail *)
    Trace.record t.tr ~time:(now t) ~pod:(-1)
      ("fault:" ^ fault_to_string a.a_inj.fault);
    apply t a.a_inj.fault
  end

let install t inj =
  let a = { a_inj = inj; a_fired = false; a_seen = 0 } in
  t.installed <- t.installed @ [ a ];
  match inj.trigger with
  | Now -> fire t a
  | At at ->
    Engine.schedule_at (engine t) ~label:"fault.timer"
      ~at:(Simtime.max at (now t)) (fun () -> fire t a)
  | After d -> after t d (fun () -> fire t a)
  | On_phase { phase; pod; skip } ->
    Trace.on_record t.tr (fun (ev : Trace.event) ->
        if (not a.a_fired) && String.equal ev.ev_what phase
           && (match pod with Some p -> ev.ev_pod = p | None -> true)
        then begin
          a.a_seen <- a.a_seen + 1;
          if a.a_seen > skip then fire t a
        end)

let install_all t = List.iter (install t)

let heal_all t =
  Fabric.set_config (fabric t) t.base_cfg;
  Storage.set_fail_writes (Cluster.storage t.cluster) None;
  Storage.heal_replicas (Cluster.storage t.cluster);
  List.iter (fun (node, _) -> resume_agent t node) t.hung

(* --- seeded random scenarios --- *)

(* phase boundaries worth aiming at; weighted toward the checkpoint window
   because that is where an ill-timed fault is most interesting *)
let phases =
  [| "ckpt_broadcast"; "suspended"; "net_ckpt_done"; "meta_sent";
     "standalone_done"; "continue_broadcast"; "continue_received" |]

let random_trigger rng ~horizon =
  if Rng.bool rng 0.5 then At (Simtime.ns (Rng.int rng (Stdlib.max 1 horizon)))
  else
    On_phase
      { phase = phases.(Rng.int rng (Array.length phases));
        pod = None;
        skip = Rng.int rng 3 }

let random_injection rng ~node_count ~horizon =
  let node = Rng.int rng (Stdlib.max 1 node_count) in
  let frac lo hi =
    let f = lo +. Rng.float rng (hi -. lo) in
    Simtime.ns (Stdlib.max 1 (int_of_float (float_of_int horizon *. f)))
  in
  let fault =
    match Rng.int rng 8 with
    | 0 -> Break_channel { node }
    | 1 -> Crash_node { node }
    | 2 ->
      (* finite four times out of five so most hangs heal inside the run *)
      let duration = if Rng.bool rng 0.8 then Some (frac 0.05 0.3) else None in
      Hang_agent { node; duration }
    | 3 -> Loss_burst { prob = 0.02 +. Rng.float rng 0.18; duration = frac 0.1 0.5 }
    | 4 -> Latency_spike { latency = Simtime.us (40 + Rng.int rng 2000); duration = frac 0.1 0.5 }
    | 5 -> Storage_outage { duration = Some (frac 0.05 0.4) }
    | 6 -> Replica_outage { replica = Rng.int rng 2; duration = Some (frac 0.1 0.5) }
    | _ -> Corrupt_image { replica = Rng.int rng 2; key = None }
  in
  { fault; trigger = random_trigger rng ~horizon }

let random_plan rng ~node_count ~horizon ~count =
  List.init count (fun _ -> random_injection rng ~node_count ~horizon)
