(** Deterministic fault injection for the simulated ZapC cluster.

    An injector is bound to one {!Zapc.Cluster.t} and schedules faults at
    precise virtual instants or at protocol phase boundaries (observed
    through {!Zapc.Trace} events).  Everything is driven by the cluster's
    own seeded engine and RNG, so a scenario replays bit-identically from
    the same seed — a failing chaos run is a repro, not an anecdote.

    Supported faults mirror what the paper's failure model must survive:
    severed Manager<->Agent control connections (section 4's abort path),
    whole-node crashes, transient packet-loss bursts and latency spikes on
    the interconnect, shared-storage write outages, and hung (stalled but
    not disconnected) Agents — the case that needs the per-phase timeouts
    in {!Zapc.Manager} and {!Zapc.Agent} rather than the break handler. *)

module Simtime = Zapc_sim.Simtime
module Rng = Zapc_sim.Rng

type fault =
  | Break_channel of { node : int }
      (** Sever the Manager's control connection to one Agent. *)
  | Crash_node of { node : int }
      (** Power loss: kill every pod and process on the node, detach its
          addresses from the fabric, sever its control connection. *)
  | Hang_agent of { node : int; duration : Simtime.t option }
      (** Stall the Agent's control endpoint (messages buffer in both
          directions, nothing is lost); [Some d] heals after [d], [None]
          hangs until {!heal_all}.  The connection stays up, so only
          timeouts — never break handlers — can unstick the protocol. *)
  | Loss_burst of { prob : float; duration : Simtime.t }
      (** Raise the fabric's packet loss probability for a while. *)
  | Latency_spike of { latency : Simtime.t; duration : Simtime.t }
      (** Raise the fabric's one-way latency for a while (congestion). *)
  | Storage_outage of { duration : Simtime.t option }
      (** Every {!Zapc.Storage.put} fails; [None] lasts until {!heal_all}. *)
  | Replica_outage of { replica : int; duration : Simtime.t option }
      (** One replica of the store goes dark: writes skip it, reads fall
          back past it; [None] lasts until {!heal_all}. *)
  | Corrupt_image of { replica : int; key : string option }
      (** Silent bit rot: mutate the named image ([None] = every image) on
          one replica, keeping its stale checksum — only a verifying read
          notices and falls back to the next replica.  Permanent ({!heal_all}
          does not repair bytes). *)

type trigger =
  | Now  (** install time *)
  | At of Simtime.t  (** absolute virtual instant (clamped to now) *)
  | After of Simtime.t  (** relative to install time *)
  | On_phase of { phase : string; pod : int option; skip : int }
      (** When the [(skip+1)]-th matching trace event is recorded:
          [phase] matches [ev_what], [pod] (if given) matches [ev_pod].
          Phase names are the strings in {!Zapc.Trace} events, e.g.
          ["meta_sent"], ["suspended"], ["continue_broadcast"]. *)

type injection = {
  fault : fault;
  trigger : trigger;
}

val fault_to_string : fault -> string
val trigger_to_string : trigger -> string
val injection_to_string : injection -> string

type t

val create : ?trace:Zapc.Trace.t -> Zapc.Cluster.t -> t
(** Bind an injector to a cluster.  [trace] is the trace whose events drive
    {!On_phase} triggers; when omitted a fresh one is attached with
    {!Zapc.Cluster.enable_trace}. *)

val trace : t -> Zapc.Trace.t

val install : t -> injection -> unit
(** Arm one injection.  [On_phase] triggers that never match simply never
    fire (they count as unfired, not as errors). *)

val install_all : t -> injection list -> unit

val fired : t -> (Simtime.t * string) list
(** Chronological log of faults actually injected. *)

val armed : t -> int
(** Number of installed injections that have not fired yet. *)

val heal_all : t -> unit
(** Undo every *ongoing* environmental fault: restore the fabric config,
    heal storage (global and per-replica outages), resume hung Agents.
    Crashed nodes, broken channels, and already-corrupted image bytes stay
    down — those are permanent by design. *)

val crashed_nodes : t -> int list

(** {1 Seeded random scenario generation}

    The generator draws from the injector's own RNG stream (split off the
    cluster engine's), so a scenario is a pure function of the seed. *)

val random_injection :
  Rng.t -> node_count:int -> horizon:Simtime.t -> injection
(** One random injection: a uniformly chosen fault kind on a random node,
    triggered at a uniform instant within [horizon] or at a random
    protocol phase boundary.  Durations are sized to fractions of
    [horizon] so transient faults both start and end inside a scenario. *)

val random_plan :
  Rng.t -> node_count:int -> horizon:Simtime.t -> count:int -> injection list
