(* Program registry bootstrap: register every simulated program exactly
   once.  Call this before spawning or restoring any process (tests,
   benches, examples and the CLI all do). *)

let register_all () =
  Zapc_msg.Daemon.register ();
  Cpi.register ();
  Bt_nas.register ();
  Bratu.register ();
  Povray.register ();
  Pipeline.register ();
  Kvstore.register ();
  Kv_client.register ()
