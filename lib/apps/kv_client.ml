(* Open-loop client population for the key-value service.

   One process drives [n] concurrent TCP connections (typically 1000+), each
   modelling an independent client: it issues requests on a fixed open-loop
   schedule (next_send advances by [period] at issue time, so a blackout is
   followed by a catch-up burst, not a silent gap), arms a per-request
   deadline, and on timeout closes the connection and retries the SAME
   request id after a capped exponential backoff with seeded jitter.  The
   server's idempotent apply makes the retry safe; the client's per-request
   id makes duplicate responses detectable.  This is the client half of the
   exactly-once argument (DESIGN.md §11).

   Connections are never checkpointed in the served-traffic scenarios — the
   population plays the outside world.  After a server crash restore its old
   connections are orphaned server-side and segments to them vanish, so the
   ONLY way a client discovers the crash is its request deadline; that is
   deliberate and mirrors real WAN clients.

   Latency samples (completion time, latency) and all counters live in
   program state and are drained host-side through Program.snapshot. *)

module Value = Zapc_codec.Value
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall
module Socket = Zapc_simnet.Socket
module Sockopt = Zapc_simnet.Sockopt
module Addr = Zapc_simnet.Addr
module Errno = Zapc_simnet.Errno

type conn = {
  ix : int;
  home : int;  (* shard this client normally talks to *)
  mutable fd : int;
  mutable target : int;  (* current shard (follows redirects) *)
  mutable cst : int;  (* 0 closed, 1 connecting, 2 idle, 3 inflight, 4 backoff, 5 done *)
  mutable inbuf : string;
  mutable outbuf : string;
  mutable rq_id : int;
  mutable pending : Kv_wire.req option;  (* request awaiting its response *)
  mutable first_sent : int;  (* ns of the FIRST attempt (latency base) *)
  mutable deadline : int;  (* request OR connect deadline, depending on cst *)
  mutable attempts : int;
  mutable wait_until : int;  (* backoff expiry *)
  mutable next_send : int;  (* open-loop schedule *)
  mutable issued : int;
  mutable done_ : int;
}

type work = K_sock of int | K_setnb of int | K_conn of int | K_send of int | K_recv of int | K_close of int

type state = {
  n : int;
  nshards : int;
  base : int;  (* client-id base for this pod *)
  targets : Addr.t array;  (* vip per shard *)
  period : int;
  timeout_ns : int;
  base_backoff : int;
  max_backoff : int;
  reqs_per_conn : int;
  keys_by_shard : string array array;
  conns : conn array;
  fd_map : (int, int) Hashtbl.t;  (* fd -> conn index *)
  mutable rng : int;
  mutable now : int;
  mutable started : bool;
  mutable todo : work list;
  mutable last : work option;
  mutable polling : bool;
  mutable clk_pending : bool;
  mutable to_stamp : int list;  (* first_sent of completions awaiting a clock *)
  mutable samples_t : float list;  (* completion timestamps, ns, newest first *)
  mutable samples_lat : float list;
  mutable completed : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable dups : int;
  mutable redirects : int;
  mutable reconnects : int;
  mutable eofs : int;
}

let name = "kv_client"

let keyspace = 64

let make_keys nshards =
  let by = Array.make (Stdlib.max 1 nshards) [] in
  for k = keyspace - 1 downto 0 do
    let key = Printf.sprintf "k%04d" k in
    let o = Kv_wire.owner ~nshards key in
    by.(o) <- key :: by.(o)
  done;
  Array.map Array.of_list by

let start args =
  let n = Value.to_int (Value.field "n" args) in
  let nshards = Value.to_int (Value.field "nshards" args) in
  let targets =
    Array.of_list (Value.to_list Addr.of_value (Value.field "targets" args))
  in
  {
    n;
    nshards;
    base = Value.to_int (Value.field "base" args);
    targets;
    period = Value.to_int (Value.field "period" args);
    timeout_ns = Value.to_int (Value.field "timeout" args);
    base_backoff = Value.to_int (Value.field "base_backoff" args);
    max_backoff = Value.to_int (Value.field "max_backoff" args);
    reqs_per_conn = Value.to_int (Value.field "reqs" args);
    keys_by_shard = make_keys nshards;
    conns =
      Array.init n (fun i ->
          {
            ix = i;
            home = i mod nshards;
            fd = -1;
            target = i mod nshards;
            cst = 0;
            inbuf = "";
            outbuf = "";
            rq_id = 0;
            pending = None;
            first_sent = 0;
            deadline = 0;
            attempts = 0;
            wait_until = 0;
            next_send = -1;
            issued = 0;
            done_ = 0;
          });
    fd_map = Hashtbl.create 2048;
    rng = Value.to_int (Value.field "seed" args);
    now = 0;
    started = false;
    todo = [];
    last = None;
    polling = false;
    clk_pending = true;
    to_stamp = [];
    samples_t = [];
    samples_lat = [];
    completed = 0;
    retries = 0;
    timeouts = 0;
    dups = 0;
    redirects = 0;
    reconnects = 0;
    eofs = 0;
  }

let push s w = s.todo <- s.todo @ [ w ]

let rand s bound =
  s.rng <- ((s.rng * 25214903917) + 11) land 0xFFFFFFFFFFFF;
  if bound <= 0 then 0 else (s.rng lsr 16) mod bound

let jitter s span = if span <= 0 then 0 else rand s span

(* capped exponential backoff with seeded jitter *)
let backoff_ns s attempts =
  let raw = s.base_backoff * (1 lsl Stdlib.min attempts 16) in
  let capped = Stdlib.min raw s.max_backoff in
  capped + jitter s (capped / 2)

let next_req s (c : conn) : Kv_wire.req =
  c.rq_id <- c.rq_id + 1;
  let shard =
    (* mostly the home shard; occasionally deliberately wrong, to exercise
       the redirect path end to end *)
    if s.nshards > 1 && rand s 16 = 0 then (c.home + 1) mod s.nshards else c.target
  in
  let pool = s.keys_by_shard.(shard) in
  let key = pool.(rand s (Array.length pool)) in
  let op =
    match rand s 10 with
    | 0 -> Kv_wire.Del key
    | 1 | 2 -> Kv_wire.Get key
    | _ -> Kv_wire.Set (key, Printf.sprintf "v%d.%d" (s.base + c.ix) c.rq_id)
  in
  { Kv_wire.rq_client = s.base + c.ix; rq_id = c.rq_id; rq_op = op }

let close_fd s (c : conn) =
  if c.fd >= 0 then begin
    Hashtbl.remove s.fd_map c.fd;
    push s (K_close c.fd);
    c.fd <- -1
  end;
  c.inbuf <- "";
  c.outbuf <- ""

(* the request (if any) will be retried after a backoff *)
let fail_conn s (c : conn) =
  close_fd s c;
  c.attempts <- c.attempts + 1;
  c.wait_until <- s.now + backoff_ns s c.attempts;
  c.cst <- 4

let on_connected s (c : conn) =
  s.reconnects <- s.reconnects + 1;
  match c.pending with
  | Some r ->
    (* resend the in-flight request (same id: the server dedups) *)
    if c.attempts > 0 then s.retries <- s.retries + 1;
    c.outbuf <- Kv_wire.frame (Kv_wire.Req r);
    c.deadline <- s.now + s.timeout_ns;
    c.cst <- 3;
    push s (K_send c.ix)
  | None -> c.cst <- 2

let complete s (c : conn) =
  c.pending <- None;
  c.attempts <- 0;
  c.done_ <- c.done_ + 1;
  s.completed <- s.completed + 1;
  s.to_stamp <- c.first_sent :: s.to_stamp;
  c.cst <- (if c.done_ >= s.reqs_per_conn then 5 else 2)

let handle_resp s (c : conn) (r : Kv_wire.resp) =
  match c.pending with
  | Some p when r.rs_id = p.rq_id && r.rs_client = p.rq_client -> (
    match r.rs_status with
    | Kv_wire.S_redirect o ->
      (* wrong shard: chase the owner with the same request id *)
      s.redirects <- s.redirects + 1;
      c.target <- o;
      close_fd s c;
      c.cst <- 0
    | Kv_wire.S_ok | Kv_wire.S_not_found -> complete s c)
  | Some _ | None ->
    (* stale or repeated response for an id already completed *)
    s.dups <- s.dups + 1

let handle_recv s (c : conn) (outcome : Syscall.outcome) =
  match outcome with
  | Syscall.Ret (Syscall.Rdata "") ->
    s.eofs <- s.eofs + 1;
    if c.pending <> None then fail_conn s c
    else begin
      close_fd s c;
      c.cst <- (if c.done_ >= s.reqs_per_conn then 5 else 0)
    end
  | Syscall.Ret (Syscall.Rdata d) ->
    let msgs, rest = Kv_wire.split (c.inbuf ^ d) in
    c.inbuf <- rest;
    List.iter
      (function Kv_wire.Resp r -> handle_resp s c r | _ -> ())
      msgs;
    if c.fd >= 0 then push s (K_recv c.ix)
  | Syscall.Err Errno.EAGAIN -> ()
  | _ -> if c.pending <> None then fail_conn s c else (close_fd s c; c.cst <- 0)

let apply_result s (w : work) (outcome : Syscall.outcome) =
  match w with
  | K_sock i -> (
    let c = s.conns.(i) in
    match outcome with
    | Syscall.Ret (Syscall.Rint fd) ->
      c.fd <- fd;
      Hashtbl.replace s.fd_map fd i;
      c.cst <- 1;
      (* a SYN sent into a crashed node vanishes without an error: the
         handshake needs its own deadline, not just the request *)
      c.deadline <- s.now + s.timeout_ns;
      push s (K_setnb i);
      push s (K_conn i)
    | _ -> fail_conn s c)
  | K_setnb _ -> ()
  | K_conn i -> (
    let c = s.conns.(i) in
    match outcome with
    | Syscall.Ret _ -> on_connected s c
    | Syscall.Err Errno.EAGAIN -> ()  (* handshake in flight; poll writable *)
    | Syscall.Err _ -> fail_conn s c
    | Syscall.Started | Syscall.Done_compute -> ())
  | K_recv i -> handle_recv s s.conns.(i) outcome
  | K_send i -> (
    let c = s.conns.(i) in
    match outcome with
    | Syscall.Ret (Syscall.Rint nb) ->
      c.outbuf <- String.sub c.outbuf nb (String.length c.outbuf - nb);
      if c.outbuf <> "" then push s (K_send i)
    | Syscall.Err Errno.EAGAIN -> ()
    | Syscall.Err _ -> if c.pending <> None then fail_conn s c else (close_fd s c; c.cst <- 0)
    | _ -> ())
  | K_close _ -> ()

let syscall_of s (w : work) : Syscall.t option =
  match w with
  | K_sock _ -> Some (Syscall.Sock_create Socket.Stream)
  | K_setnb i ->
    let c = s.conns.(i) in
    if c.fd >= 0 then Some (Syscall.Setsockopt (c.fd, Sockopt.SO_NONBLOCK, 1)) else None
  | K_conn i ->
    let c = s.conns.(i) in
    if c.fd >= 0 && c.cst = 1 then Some (Syscall.Connect (c.fd, s.targets.(c.target)))
    else None
  | K_send i ->
    let c = s.conns.(i) in
    if c.fd >= 0 && c.outbuf <> "" then Some (Syscall.Send (c.fd, c.outbuf)) else None
  | K_recv i ->
    let c = s.conns.(i) in
    if c.fd >= 0 then Some (Syscall.Recv (c.fd, 65536, Socket.plain_recv)) else None
  | K_close fd -> Some (Syscall.Close fd)

(* Stamp completions, then fire every due timer.  Runs on each clock tick. *)
let run_timers s =
  List.iter
    (fun fs ->
      s.samples_t <- float_of_int s.now :: s.samples_t;
      s.samples_lat <- float_of_int (s.now - fs) :: s.samples_lat)
    (List.rev s.to_stamp);
  s.to_stamp <- [];
  if not s.started then begin
    (* stagger the open-loop schedules across one period *)
    s.started <- true;
    Array.iter
      (fun (c : conn) ->
        c.next_send <- s.now + (c.ix * s.period / Stdlib.max 1 s.n) + jitter s (s.period / 8))
      s.conns
  end;
  Array.iter
    (fun (c : conn) ->
      match c.cst with
      | 0 -> if c.done_ < s.reqs_per_conn || c.pending <> None then push s (K_sock c.ix)
      | 4 -> if s.now >= c.wait_until then begin c.cst <- 0; push s (K_sock c.ix) end
      | 2 ->
        if c.issued < s.reqs_per_conn && s.now >= c.next_send then begin
          let r = next_req s c in
          c.pending <- Some r;
          c.issued <- c.issued + 1;
          c.first_sent <- s.now;
          c.deadline <- s.now + s.timeout_ns;
          c.next_send <- c.next_send + s.period;
          c.outbuf <- c.outbuf ^ Kv_wire.frame (Kv_wire.Req r);
          c.cst <- 3;
          push s (K_send c.ix)
        end
      | 1 | 3 ->
        if s.now >= c.deadline then begin
          if c.pending <> None then s.timeouts <- s.timeouts + 1;
          fail_conn s c
        end
      | _ -> ())
    s.conns

let poll_timeout s =
  let next = ref max_int in
  Array.iter
    (fun (c : conn) ->
      match c.cst with
      | 2 -> if c.issued < s.reqs_per_conn then next := Stdlib.min !next c.next_send
      | 1 | 3 -> next := Stdlib.min !next c.deadline
      | 4 -> next := Stdlib.min !next c.wait_until
      | _ -> ())
    s.conns;
  if !next = max_int then None else Some (Stdlib.max 1 (!next - s.now))

let rec next_action s =
  match s.todo with
  | w :: rest ->
    s.todo <- rest;
    (match syscall_of s w with
     | Some sc ->
       s.last <- Some w;
       Program.Sys sc
     | None -> next_action s)
  | [] ->
    if s.clk_pending then begin
      s.last <- None;
      Program.Sys Syscall.Clock_gettime
    end
    else begin
      s.last <- None;
      s.polling <- true;
      s.clk_pending <- true;  (* every poll wake is followed by a clock tick *)
      let reqs =
        Array.fold_left
          (fun acc (c : conn) ->
            if c.fd >= 0 then
              { Syscall.pfd = c.fd;
                want_read = true;
                want_write = c.cst = 1 || c.outbuf <> "" }
              :: acc
            else acc)
          [] s.conns
      in
      Program.Sys (Syscall.Poll (reqs, poll_timeout s))
    end

let on_poll s evs =
  List.iter
    (fun (fd, (ev : Socket.poll_events)) ->
      match Hashtbl.find_opt s.fd_map fd with
      | None -> ()
      | Some i ->
        let c = s.conns.(i) in
        if c.cst = 1 then begin
          if ev.writable || ev.pollerr || ev.hangup then push s (K_conn i)
        end
        else begin
          if ev.readable || ev.hangup || ev.pollerr then push s (K_recv i);
          if ev.writable && c.outbuf <> "" then push s (K_send i)
        end)
    evs

let step s (outcome : Syscall.outcome) =
  if s.polling then begin
    s.polling <- false;
    match outcome with Syscall.Ret (Syscall.Rpoll evs) -> on_poll s evs | _ -> ()
  end
  else begin
    match s.last with
    | Some w -> apply_result s w outcome
    | None -> (
      match outcome with
      | Syscall.Ret (Syscall.Rtime t) ->
        s.now <- t;
        s.clk_pending <- false;
        run_timers s
      | _ -> ())
  end;
  (s, next_action s)

(* --- persistence --- *)

let conn_to_value (c : conn) =
  Value.list Fun.id
    [ Value.int c.fd; Value.int c.target; Value.int c.cst; Value.str c.inbuf;
      Value.str c.outbuf; Value.int c.rq_id;
      Value.option Kv_wire.req_to_value c.pending;
      Value.int c.first_sent; Value.int c.deadline; Value.int c.attempts;
      Value.int c.wait_until; Value.int c.next_send; Value.int c.issued;
      Value.int c.done_ ]

let conn_of_value ~nshards ix v =
  match Value.to_list Fun.id v with
  | [ fd; target; cst; inbuf; outbuf; rq_id; pending; first_sent; deadline; attempts;
      wait_until; next_send; issued; done_ ] ->
    {
      ix;
      home = ix mod nshards;
      fd = Value.to_int fd;
      target = Value.to_int target;
      cst = Value.to_int cst;
      inbuf = Value.to_str inbuf;
      outbuf = Value.to_str outbuf;
      rq_id = Value.to_int rq_id;
      pending = Value.to_option Kv_wire.req_of_value pending;
      first_sent = Value.to_int first_sent;
      deadline = Value.to_int deadline;
      attempts = Value.to_int attempts;
      wait_until = Value.to_int wait_until;
      next_send = Value.to_int next_send;
      issued = Value.to_int issued;
      done_ = Value.to_int done_;
    }
  | _ -> Value.decode_error "kv_client conn"

let work_to_value = function
  | K_sock i -> Value.tag "so" (Value.int i)
  | K_setnb i -> Value.tag "nb" (Value.int i)
  | K_conn i -> Value.tag "co" (Value.int i)
  | K_send i -> Value.tag "tx" (Value.int i)
  | K_recv i -> Value.tag "rx" (Value.int i)
  | K_close fd -> Value.tag "cl" (Value.int fd)

let work_of_value v =
  match Value.to_tag v with
  | "so", i -> K_sock (Value.to_int i)
  | "nb", i -> K_setnb (Value.to_int i)
  | "co", i -> K_conn (Value.to_int i)
  | "tx", i -> K_send (Value.to_int i)
  | "rx", i -> K_recv (Value.to_int i)
  | "cl", fd -> K_close (Value.to_int fd)
  | t, _ -> Value.decode_error "kv_client work %s" t

let to_value s =
  Value.assoc
    [ ("n", Value.int s.n);
      ("nshards", Value.int s.nshards);
      ("base", Value.int s.base);
      ("targets", Value.list Addr.to_value (Array.to_list s.targets));
      ("period", Value.int s.period);
      ("timeout", Value.int s.timeout_ns);
      ("base_backoff", Value.int s.base_backoff);
      ("max_backoff", Value.int s.max_backoff);
      ("reqs", Value.int s.reqs_per_conn);
      ("conns", Value.list conn_to_value (Array.to_list s.conns));
      ("rng", Value.int s.rng);
      ("now", Value.int s.now);
      ("started", Value.bool s.started);
      ("todo", Value.list work_to_value s.todo);
      ("last", Value.option work_to_value s.last);
      ("polling", Value.bool s.polling);
      ("clk_pending", Value.bool s.clk_pending);
      ("to_stamp", Value.list Value.int s.to_stamp);
      ("samples_t", Value.f64s (Array.of_list (List.rev s.samples_t)));
      ("samples_lat", Value.f64s (Array.of_list (List.rev s.samples_lat)));
      ( "ctrs",
        Value.list Value.int
          [ s.completed; s.retries; s.timeouts; s.dups; s.redirects; s.reconnects; s.eofs ] ) ]

let of_value v =
  let nshards = Value.to_int (Value.field "nshards" v) in
  let conns =
    Array.of_list
      (List.mapi (conn_of_value ~nshards) (Value.to_list Fun.id (Value.field "conns" v)))
  in
  let fd_map = Hashtbl.create 2048 in
  Array.iteri (fun i (c : conn) -> if c.fd >= 0 then Hashtbl.replace fd_map c.fd i) conns;
  let ctrs = Value.to_list Value.to_int (Value.field "ctrs" v) in
  let ctr i = List.nth ctrs i in
  {
    n = Value.to_int (Value.field "n" v);
    nshards;
    base = Value.to_int (Value.field "base" v);
    targets = Array.of_list (Value.to_list Addr.of_value (Value.field "targets" v));
    period = Value.to_int (Value.field "period" v);
    timeout_ns = Value.to_int (Value.field "timeout" v);
    base_backoff = Value.to_int (Value.field "base_backoff" v);
    max_backoff = Value.to_int (Value.field "max_backoff" v);
    reqs_per_conn = Value.to_int (Value.field "reqs" v);
    keys_by_shard = make_keys nshards;
    conns;
    fd_map;
    rng = Value.to_int (Value.field "rng" v);
    now = Value.to_int (Value.field "now" v);
    started = Value.to_bool (Value.field "started" v);
    todo = Value.to_list work_of_value (Value.field "todo" v);
    last = Value.to_option work_of_value (Value.field "last" v);
    polling = Value.to_bool (Value.field "polling" v);
    clk_pending = Value.to_bool (Value.field "clk_pending" v);
    to_stamp = Value.to_list Value.to_int (Value.field "to_stamp" v);
    samples_t = List.rev (Array.to_list (Value.to_f64s (Value.field "samples_t" v)));
    samples_lat = List.rev (Array.to_list (Value.to_f64s (Value.field "samples_lat" v)));
    completed = ctr 0;
    retries = ctr 1;
    timeouts = ctr 2;
    dups = ctr 3;
    redirects = ctr 4;
    reconnects = ctr 5;
    eofs = ctr 6;
  }

(* --- host-side snapshot decoding (stats drain) --- *)

type stats = {
  st_issued : int;
  st_completed : int;
  st_retries : int;
  st_timeouts : int;
  st_dups : int;
  st_redirects : int;
  st_reconnects : int;
  st_eofs : int;
  st_inflight : int;
  st_samples : (float * float) array;  (* (completion ns, latency ns) *)
}

let stats_of_snapshot v =
  let ctrs = Value.to_list Value.to_int (Value.field "ctrs" v) in
  let ctr i = List.nth ctrs i in
  let conns = Value.to_list Fun.id (Value.field "conns" v) in
  let issued = ref 0 and inflight = ref 0 in
  List.iter
    (fun cv ->
      match Value.to_list Fun.id cv with
      | [ _fd; _tg; _cst; _ib; _ob; _id; pending; _fs; _dl; _at; _wu; _ns; iss; _dn ] ->
        issued := !issued + Value.to_int iss;
        if Value.to_option Fun.id pending <> None then incr inflight
      | _ -> Value.decode_error "kv_client conn snapshot")
    conns;
  let issued = !issued and inflight = !inflight in
  let t = Value.to_f64s (Value.field "samples_t" v) in
  let lat = Value.to_f64s (Value.field "samples_lat" v) in
  {
    st_issued = issued;
    st_completed = ctr 0;
    st_retries = ctr 1;
    st_timeouts = ctr 2;
    st_dups = ctr 3;
    st_redirects = ctr 4;
    st_reconnects = ctr 5;
    st_eofs = ctr 6;
    st_inflight = inflight;
    st_samples = Array.init (Array.length t) (fun i -> (t.(i), lat.(i)));
  }

let register () = Program.register_if_absent (module struct
  type nonrec state = state

  let name = name
  let start = start
  let step = step
  let to_value = to_value
  let of_value = of_value
end : Program.S)
