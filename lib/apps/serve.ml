(* Host-side harness for the served-traffic robustness matrix: a sharded
   key-value service (kvstore pods) under an open-loop client population
   (kv_client pods), with helpers to drain client statistics, compute
   windowed latency percentiles, digest service state, and feed everything
   into the cluster's metrics registry.

   Used by the @serve chaos battery (test/chaos.ml) and the `serve` bench
   experiment (BENCH_serve.json).  Only the SERVER pods are ever
   checkpointed, migrated or crash-recovered: the client population plays
   the outside world and must survive on its own retry discipline. *)

module Simtime = Zapc_sim.Simtime
module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr
module Pod = Zapc_pod.Pod
module Proc = Zapc_simos.Proc
module Program = Zapc_simos.Program
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Params = Zapc.Params
module Metrics = Zapc_obs.Metrics

(* Cost knobs sized for mass-socket pods: per-socket save/restore costs are
   dialled down so a 1000-connection pod restores in ~100 virtual ms, and
   the supervisor loop is fast enough that a crash-recover cycle fits well
   inside a second of virtual time. *)
let serve_params =
  { Params.default with
    phase_timeout = Simtime.ms 600;
    heartbeat_period = Simtime.ms 20;
    heartbeat_misses = 3;
    recover_backoff = Simtime.ms 40;
    recover_backoff_max = Simtime.ms 400;
    recover_retries = 5;
    ckpt_fixed = Simtime.ms 2;
    restore_fixed = Simtime.ms 10;
    per_socket_ckpt = Simtime.us 20;
    per_socket_restore = Simtime.us 100;
    cost_jitter = 0.1 }

type cfg = {
  nshards : int;
  n_conns : int;  (* total client connections, across all client pods *)
  reqs_per_conn : int;
  period : Simtime.t;  (* per-connection open-loop request period *)
  req_timeout : Simtime.t;
  base_backoff : Simtime.t;
  max_backoff : Simtime.t;
  client_pods : int;
  port : int;
  backlog : int;
}

let default_cfg =
  {
    nshards = 2;
    n_conns = 1000;
    reqs_per_conn = 6;
    period = Simtime.ms 100;
    req_timeout = Simtime.ms 150;
    base_backoff = Simtime.ms 30;
    max_backoff = Simtime.ms 300;
    client_pods = 1;
    port = 7000;
    backlog = 2048;
  }

type t = {
  cluster : Cluster.t;
  cfg : cfg;
  servers : Pod.t list;  (* shard order *)
  clients : (Pod.t * Proc.t) list;  (* client procs are never restored *)
  vips : Addr.ip array;  (* server vip per shard *)
}

let server_args cfg (vips : Addr.ip array) shard =
  Value.assoc
    [ ("port", Value.int cfg.port);
      ("shard", Value.int shard);
      ("nshards", Value.int cfg.nshards);
      ("backlog", Value.int cfg.backlog);
      ( "mirror",
        Value.option
          (fun a -> Addr.to_value a)
          (if cfg.nshards > 1 then
             Some { Addr.ip = vips.((shard + 1) mod cfg.nshards); port = cfg.port }
           else None) ) ]

let client_args cfg (vips : Addr.ip array) ~n ~base ~seed =
  Value.assoc
    [ ("n", Value.int n);
      ("nshards", Value.int cfg.nshards);
      ("base", Value.int base);
      ( "targets",
        Value.list
          (fun ip -> Addr.to_value { Addr.ip; port = cfg.port })
          (Array.to_list vips) );
      ("period", Value.int cfg.period);
      ("timeout", Value.int cfg.req_timeout);
      ("base_backoff", Value.int cfg.base_backoff);
      ("max_backoff", Value.int cfg.max_backoff);
      ("reqs", Value.int cfg.reqs_per_conn);
      ("seed", Value.int seed) ]

(* Build the service: server pods on nodes [0..nshards-1], client pods on
   the nodes after them.  All pods share one virtual address map, so client
   connections keep working across server migrations. *)
let setup ?(nodes = 4) ?(seed = 42) ?(params = serve_params) ?(cfg = default_cfg) () =
  Registry.register_all ();
  let cluster = Cluster.make ~seed ~params ~node_count:nodes () in
  let servers =
    List.init cfg.nshards (fun i ->
        Cluster.create_pod cluster ~node_idx:(i mod nodes)
          ~name:(Printf.sprintf "kv%d" i))
  in
  let cpods =
    List.init cfg.client_pods (fun i ->
        Cluster.create_pod cluster
          ~node_idx:((cfg.nshards + i) mod nodes)
          ~name:(Printf.sprintf "kvc%d" i))
  in
  Cluster.link_pods (servers @ cpods);
  let vips = Array.of_list (List.map (fun (p : Pod.t) -> p.vip) servers) in
  List.iteri
    (fun i pod -> ignore (Pod.spawn pod ~program:"kvstore" ~args:(server_args cfg vips i)))
    servers;
  (* let the listeners come up before the connect storm; stragglers retry *)
  Cluster.run cluster ~until:(Simtime.ms 1) ();
  let per = cfg.n_conns / cfg.client_pods in
  let clients =
    List.mapi
      (fun i pod ->
        let n = if i = cfg.client_pods - 1 then cfg.n_conns - (per * i) else per in
        ( pod,
          Pod.spawn pod ~program:"kv_client"
            ~args:
              (client_args cfg vips ~n ~base:(i * 1_000_000) ~seed:(seed + (31 * i))) ))
      cpods
  in
  { cluster; cfg; servers; clients; vips }

(* --- stats ------------------------------------------------------------- *)

type stats = Kv_client.stats = {
  st_issued : int;
  st_completed : int;
  st_retries : int;
  st_timeouts : int;
  st_dups : int;
  st_redirects : int;
  st_reconnects : int;
  st_eofs : int;
  st_inflight : int;
  st_samples : (float * float) array;
}

let client_stats t : stats =
  let all =
    List.map
      (fun ((_ : Pod.t), (proc : Proc.t)) ->
        let _, v = Program.snapshot proc.Proc.inst in
        Kv_client.stats_of_snapshot v)
      t.clients
  in
  List.fold_left
    (fun acc s ->
      {
        st_issued = acc.st_issued + s.st_issued;
        st_completed = acc.st_completed + s.st_completed;
        st_retries = acc.st_retries + s.st_retries;
        st_timeouts = acc.st_timeouts + s.st_timeouts;
        st_dups = acc.st_dups + s.st_dups;
        st_redirects = acc.st_redirects + s.st_redirects;
        st_reconnects = acc.st_reconnects + s.st_reconnects;
        st_eofs = acc.st_eofs + s.st_eofs;
        st_inflight = acc.st_inflight + s.st_inflight;
        st_samples = Array.append acc.st_samples s.st_samples;
      })
    {
      st_issued = 0;
      st_completed = 0;
      st_retries = 0;
      st_timeouts = 0;
      st_dups = 0;
      st_redirects = 0;
      st_reconnects = 0;
      st_eofs = 0;
      st_inflight = 0;
      st_samples = [||];
    }
    all

let total_expected t = t.cfg.n_conns * t.cfg.reqs_per_conn

let all_done t =
  let s = client_stats t in
  s.st_completed >= total_expected t

let wait_done ?(timeout = Simtime.sec 120.0) t =
  Cluster.run_until t.cluster ~timeout (fun () -> all_done t)

(* --- server state ------------------------------------------------------ *)

(* Snapshot the kvstore program of the given shard, resolving the pod
   through the registry (the Pod.t moves on migration/restore). *)
let server_state t ~shard =
  let orig = List.nth t.servers shard in
  match Pod.find orig.Pod.pod_id with
  | None -> None
  | Some pod ->
    let rec first = function
      | [] -> None
      | (_, (proc : Proc.t)) :: rest ->
        if Program.name_of proc.Proc.inst = "kvstore" then
          Some (snd (Program.snapshot proc.Proc.inst))
        else first rest
    in
    first (Pod.members pod)

let digest t ~shard =
  match server_state t ~shard with
  | Some v -> Kvstore.digest_of_snapshot v
  | None -> 0

(* --- windowed latency percentiles -------------------------------------- *)

type window = { w_name : string; w_from : Simtime.t; w_until : Simtime.t }

type window_report = {
  wr_name : string;
  wr_count : int;
  wr_p50_ms : float;
  wr_p90_ms : float;
  wr_p99_ms : float;
}

let pct sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(Stdlib.min (n - 1) (int_of_float (q *. float_of_int n)))

let window_report (s : stats) (w : window) =
  let lats =
    Array.of_list
      (Array.fold_left
         (fun acc (ct, lat) ->
           if ct >= float_of_int w.w_from && ct < float_of_int w.w_until then lat :: acc
           else acc)
         [] s.st_samples)
  in
  Array.sort compare lats;
  let ms x = x /. 1e6 in
  {
    wr_name = w.w_name;
    wr_count = Array.length lats;
    wr_p50_ms = ms (pct lats 0.50);
    wr_p90_ms = ms (pct lats 0.90);
    wr_p99_ms = ms (pct lats 0.99);
  }

(* --- metrics feeding --------------------------------------------------- *)

(* Push the drained client stats into the cluster registry under the
   client.*/serve.* names (doc/OBSERVABILITY.md). *)
let feed_metrics t =
  let reg = Cluster.metrics t.cluster in
  let s = client_stats t in
  Array.iter (fun ((_ : float), lat) -> Metrics.observe reg "client.lat_ms" (lat /. 1e6))
    s.st_samples;
  let set name v =
    Metrics.add reg name (v - Metrics.counter reg name)
  in
  set "client.completed" s.st_completed;
  set "client.retries" s.st_retries;
  set "client.timeouts" s.st_timeouts;
  set "client.duplicates" s.st_dups;
  set "client.redirects" s.st_redirects;
  set "client.reconnects" s.st_reconnects;
  set "client.eofs" s.st_eofs;
  Metrics.set_gauge reg "serve.inflight" (float_of_int s.st_inflight);
  s

(* --- checkpoint plumbing ----------------------------------------------- *)

let node_of_pod t (p : Pod.t) =
  match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric t.cluster) p.rip with
  | Some n -> n
  | None -> -1

let ckpt_items t ~prefix =
  List.map
    (fun (p : Pod.t) ->
      {
        Manager.ci_node = node_of_pod t p;
        ci_pod = p.pod_id;
        ci_dest = Zapc.Protocol.U_storage (Printf.sprintf "%s.pod%d" prefix p.pod_id);
      })
    t.servers
