(* Sharded, mirrored key-value server pod.

   One process per pod: a nonblocking listener plus an event loop over
   thousands of client connections, driven entirely by Poll.  Requests carry
   a (client, id) pair; the server applies them idempotently against an
   in-memory log ([applied]), so a client retry after a timeout or a crash
   restore is answered from the log instead of being applied twice — the
   server half of the exactly-once argument (DESIGN.md §11).

   Keys hash to shards (Kv_wire.owner); a request for a key this shard does
   not own is answered with a redirect naming the owner.  Owned writes are
   additionally streamed to the next shard over a persistent server-to-server
   connection ([Repl] frames, acked with [Repl_ack]); the mirror applies them
   idempotently into a side table.  That replication link is exactly the
   kind of long-lived cross-pod connection the checkpointer must carry
   through migrations and coordinated epochs.

   Everything the service *is* lives in checkpointable state: the store, the
   applied log, and the per-connection partial-frame buffers.  A restart
   reconstructs the event loop from those buffers alone. *)

module Value = Zapc_codec.Value
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall
module Socket = Zapc_simnet.Socket
module Sockopt = Zapc_simnet.Sockopt
module Addr = Zapc_simnet.Addr
module Errno = Zapc_simnet.Errno

type conn = { mutable inbuf : string; mutable outbuf : string }

type work =
  | W_accept
  | W_setnb of int
  | W_recv of int
  | W_send of int
  | W_close of int
  (* outgoing replication link to the mirror shard *)
  | W_rsock
  | W_rconnect
  | W_rsend
  | W_rclose of int

type state = {
  port : int;
  shard : int;
  nshards : int;
  backlog : int;
  mirror_addr : Addr.t option;  (* next shard's vip, if replicating *)
  store : (string, string) Hashtbl.t;
  applied : (int * int, Kv_wire.resp) Hashtbl.t;  (* the in-memory log *)
  mirror : (string, string) Hashtbl.t;  (* replica of the previous shard *)
  mirror_applied : (int * int, unit) Hashtbl.t;
  conns : (int, conn) Hashtbl.t;
  mutable log_seq : int;
  mutable lfd : int;
  mutable ph : int;  (* 0 socket, 1 setnb, 2 bind, 3 listen, 4 loop *)
  mutable todo : work list;
  mutable last : work option;  (* work whose syscall outcome we will receive *)
  mutable polling : bool;
  (* replication-link client state *)
  mutable r_fd : int;
  mutable r_st : int;  (* 0 closed, 1 connecting, 2 up *)
  mutable r_out : string;
  mutable r_in : string;
  mutable r_cool : int;  (* poll wakes to skip before the next reconnect *)
  (* counters, surfaced through snapshots *)
  mutable accepted : int;
  mutable served : int;
  mutable dup_hits : int;
  mutable redirects : int;
  mutable repl_sent : int;
  mutable repl_acked : int;
  mutable repl_applied : int;
}

let name = "kvstore"

let start args =
  {
    port = Value.to_int (Value.field "port" args);
    shard = Value.to_int (Value.field "shard" args);
    nshards = Value.to_int (Value.field "nshards" args);
    backlog = Value.to_int (Value.field "backlog" args);
    mirror_addr =
      (match Value.field_opt "mirror" args with
       | Some v -> Value.to_option Addr.of_value v
       | None -> None);
    store = Hashtbl.create 256;
    applied = Hashtbl.create 1024;
    mirror = Hashtbl.create 256;
    mirror_applied = Hashtbl.create 1024;
    conns = Hashtbl.create 1024;
    log_seq = 0;
    lfd = -1;
    ph = 0;
    todo = [];
    last = None;
    polling = false;
    r_fd = -1;
    r_st = 0;
    r_out = "";
    r_in = "";
    r_cool = 0;
    accepted = 0;
    served = 0;
    dup_hits = 0;
    redirects = 0;
    repl_sent = 0;
    repl_acked = 0;
    repl_applied = 0;
  }

let push s w = s.todo <- s.todo @ [ w ]

let key_of = function Kv_wire.Set (k, _) | Kv_wire.Get k | Kv_wire.Del k -> k

let apply_op s (op : Kv_wire.op) =
  s.log_seq <- s.log_seq + 1;
  match op with
  | Kv_wire.Set (k, v) ->
    Hashtbl.replace s.store k v;
    (Kv_wire.S_ok, "")
  | Kv_wire.Get k ->
    (match Hashtbl.find_opt s.store k with
     | Some v -> (Kv_wire.S_ok, v)
     | None -> (Kv_wire.S_not_found, ""))
  | Kv_wire.Del k ->
    if Hashtbl.mem s.store k then begin
      Hashtbl.remove s.store k;
      (Kv_wire.S_ok, "")
    end
    else (Kv_wire.S_not_found, "")

let replicate s (r : Kv_wire.req) =
  match (s.mirror_addr, r.rq_op) with
  | Some _, (Kv_wire.Set _ | Kv_wire.Del _) ->
    s.r_out <-
      s.r_out
      ^ Kv_wire.frame
          (Kv_wire.Repl
             { rp_seq = s.log_seq; rp_client = r.rq_client; rp_id = r.rq_id; rp_op = r.rq_op });
    s.repl_sent <- s.repl_sent + 1;
    if s.r_st = 2 then push s W_rsend
  | _ -> ()

let handle_req s (r : Kv_wire.req) : Kv_wire.resp =
  let o = Kv_wire.owner ~nshards:s.nshards (key_of r.rq_op) in
  if o <> s.shard then begin
    s.redirects <- s.redirects + 1;
    { rs_client = r.rq_client; rs_id = r.rq_id; rs_status = Kv_wire.S_redirect o; rs_value = "" }
  end
  else
    match Hashtbl.find_opt s.applied (r.rq_client, r.rq_id) with
    | Some resp ->
      s.dup_hits <- s.dup_hits + 1;
      resp
    | None ->
      let status, value = apply_op s r.rq_op in
      let resp =
        { Kv_wire.rs_client = r.rq_client; rs_id = r.rq_id; rs_status = status; rs_value = value }
      in
      Hashtbl.replace s.applied (r.rq_client, r.rq_id) resp;
      replicate s r;
      s.served <- s.served + 1;
      resp

let handle_msg s (c : conn) fd = function
  | Kv_wire.Req r ->
    let was_empty = c.outbuf = "" in
    c.outbuf <- c.outbuf ^ Kv_wire.frame (Kv_wire.Resp (handle_req s r));
    if was_empty then push s (W_send fd)
  | Kv_wire.Repl r ->
    (* mirror side of the replication stream: apply idempotently, ack *)
    if not (Hashtbl.mem s.mirror_applied (r.rp_client, r.rp_id)) then begin
      Hashtbl.replace s.mirror_applied (r.rp_client, r.rp_id) ();
      (match r.rp_op with
       | Kv_wire.Set (k, v) -> Hashtbl.replace s.mirror k v
       | Kv_wire.Del k -> Hashtbl.remove s.mirror k
       | Kv_wire.Get _ -> ());
      s.repl_applied <- s.repl_applied + 1
    end;
    let was_empty = c.outbuf = "" in
    c.outbuf <- c.outbuf ^ Kv_wire.frame (Kv_wire.Repl_ack r.rp_seq);
    if was_empty then push s (W_send fd)
  | Kv_wire.Repl_ack _ | Kv_wire.Resp _ -> ()

(* Acks for our own replication stream arrive on the outgoing link. *)
let handle_rmsg s = function
  | Kv_wire.Repl_ack _ -> s.repl_acked <- s.repl_acked + 1
  | Kv_wire.Req _ | Kv_wire.Resp _ | Kv_wire.Repl _ -> ()

let close_conn s fd =
  if Hashtbl.mem s.conns fd then begin
    Hashtbl.remove s.conns fd;
    push s (W_close fd)
  end

let drop_repl_link s =
  if s.r_fd >= 0 then push s (W_rclose s.r_fd);
  s.r_fd <- -1;
  s.r_st <- 0;
  s.r_in <- "";
  s.r_cool <- 32

let apply_result s (w : work) (outcome : Syscall.outcome) =
  match (w, outcome) with
  | W_accept, Syscall.Ret (Syscall.Raccept (fd, _)) ->
    Hashtbl.replace s.conns fd { inbuf = ""; outbuf = "" };
    s.accepted <- s.accepted + 1;
    push s (W_setnb fd);
    push s (W_recv fd);
    push s W_accept
  | W_accept, _ -> ()
  | W_setnb _, _ -> ()
  | W_recv fd, Syscall.Ret (Syscall.Rdata "") -> close_conn s fd
  | W_recv fd, Syscall.Ret (Syscall.Rdata d) ->
    (match Hashtbl.find_opt s.conns fd with
     | None -> ()
     | Some c ->
       let msgs, rest = Kv_wire.split (c.inbuf ^ d) in
       c.inbuf <- rest;
       List.iter (handle_msg s c fd) msgs;
       push s (W_recv fd))
  | W_recv _, Syscall.Err Errno.EAGAIN -> ()
  | W_recv fd, Syscall.Err _ -> close_conn s fd
  | W_send fd, Syscall.Ret (Syscall.Rint n) ->
    (match Hashtbl.find_opt s.conns fd with
     | None -> ()
     | Some c ->
       c.outbuf <- String.sub c.outbuf n (String.length c.outbuf - n);
       if c.outbuf <> "" then push s (W_send fd))
  | W_send _, Syscall.Err Errno.EAGAIN -> ()
  | W_send fd, Syscall.Err _ -> close_conn s fd
  | W_close _, _ -> ()
  (* replication link *)
  | W_rsock, Syscall.Ret (Syscall.Rint fd) ->
    s.r_fd <- fd;
    s.r_st <- 1;
    push s (W_setnb fd);
    push s W_rconnect
  | W_rsock, _ -> drop_repl_link s
  | W_rconnect, Syscall.Ret _ ->
    s.r_st <- 2;
    if s.r_out <> "" then push s W_rsend
  | W_rconnect, Syscall.Err Errno.EAGAIN -> ()  (* in progress; poll writable *)
  | W_rconnect, Syscall.Err _ -> drop_repl_link s
  | W_rsend, Syscall.Ret (Syscall.Rint n) ->
    s.r_out <- String.sub s.r_out n (String.length s.r_out - n);
    if s.r_out <> "" then push s W_rsend
  | W_rsend, Syscall.Err Errno.EAGAIN -> ()
  | W_rsend, Syscall.Err _ -> drop_repl_link s
  | W_rclose _, _ -> ()
  | (W_recv _ | W_send _ | W_rconnect | W_rsend), _ -> ()

let syscall_of s (w : work) : Syscall.t option =
  match w with
  | W_accept -> Some (Syscall.Accept s.lfd)
  | W_setnb fd -> Some (Syscall.Setsockopt (fd, Sockopt.SO_NONBLOCK, 1))
  | W_recv fd ->
    if Hashtbl.mem s.conns fd || (fd = s.r_fd && fd >= 0) then
      Some (Syscall.Recv (fd, 65536, Socket.plain_recv))
    else None
  | W_send fd ->
    (match Hashtbl.find_opt s.conns fd with
     | Some c when c.outbuf <> "" -> Some (Syscall.Send (fd, c.outbuf))
     | Some _ | None -> None)
  | W_close fd -> Some (Syscall.Close fd)
  | W_rsock -> Some (Syscall.Sock_create Socket.Stream)
  | W_rconnect ->
    (match s.mirror_addr with
     | Some a when s.r_fd >= 0 -> Some (Syscall.Connect (s.r_fd, a))
     | _ -> None)
  | W_rsend ->
    if s.r_fd >= 0 && s.r_st = 2 && s.r_out <> "" then Some (Syscall.Send (s.r_fd, s.r_out))
    else None
  | W_rclose fd -> Some (Syscall.Close fd)

(* Pull the next runnable work item; fall back to Poll over everything. *)
let rec next_action s =
  match s.todo with
  | w :: rest ->
    s.todo <- rest;
    (match syscall_of s w with
     | Some sc ->
       s.last <- Some w;
       Program.Sys sc
     | None -> next_action s)
  | [] ->
    (* (re)establish the replication link lazily, rate-limited by poll wakes *)
    if s.mirror_addr <> None && s.r_st = 0 && s.r_out <> "" && s.r_cool = 0 then begin
      push s W_rsock;
      next_action s
    end
    else begin
      if s.r_cool > 0 then s.r_cool <- s.r_cool - 1;
      s.last <- None;
      s.polling <- true;
      let reqs =
        { Syscall.pfd = s.lfd; want_read = true; want_write = false }
        :: Hashtbl.fold
             (fun fd (c : conn) acc ->
               { Syscall.pfd = fd; want_read = true; want_write = c.outbuf <> "" } :: acc)
             s.conns
             (if s.r_fd >= 0 then
                [ { Syscall.pfd = s.r_fd;
                    want_read = true;
                    want_write = s.r_st = 1 || s.r_out <> "" } ]
              else [])
      in
      Program.Sys (Syscall.Poll (reqs, None))
    end

let on_poll s evs =
  List.iter
    (fun (fd, (ev : Socket.poll_events)) ->
      if fd = s.lfd then begin
        if ev.readable then push s W_accept
      end
      else if fd = s.r_fd then begin
        if ev.pollerr || ev.hangup then drop_repl_link s
        else begin
          if ev.writable then
            if s.r_st = 1 then push s W_rconnect
            else if s.r_out <> "" then push s W_rsend;
          if ev.readable then push s (W_recv fd)
        end
      end
      else begin
        if ev.readable || ev.hangup then push s (W_recv fd);
        if ev.writable then push s (W_send fd)
      end)
    evs

(* The replication fd is polled for reads too (acks); route its recv results
   through the link handler rather than the per-conn table. *)
let apply_recv_on_rlink s (outcome : Syscall.outcome) =
  match outcome with
  | Syscall.Ret (Syscall.Rdata "") -> drop_repl_link s
  | Syscall.Ret (Syscall.Rdata d) ->
    let msgs, rest = Kv_wire.split (s.r_in ^ d) in
    s.r_in <- rest;
    List.iter (handle_rmsg s) msgs;
    push s (W_recv s.r_fd)
  | Syscall.Err Errno.EAGAIN -> ()
  | _ -> drop_repl_link s

let step s (outcome : Syscall.outcome) =
  match s.ph with
  | 0 ->
    s.ph <- 1;
    (s, Program.Sys (Syscall.Sock_create Socket.Stream))
  | 1 ->
    (match outcome with
     | Syscall.Ret (Syscall.Rint fd) -> s.lfd <- fd
     | _ -> ());
    s.ph <- 2;
    (s, Program.Sys (Syscall.Setsockopt (s.lfd, Sockopt.SO_NONBLOCK, 1)))
  | 2 ->
    s.ph <- 3;
    (s, Program.Sys (Syscall.Bind (s.lfd, { Addr.ip = Addr.any; port = s.port })))
  | 3 ->
    s.ph <- 4;
    (s, Program.Sys (Syscall.Listen (s.lfd, s.backlog)))
  | _ ->
    if s.polling then begin
      s.polling <- false;
      (match outcome with Syscall.Ret (Syscall.Rpoll evs) -> on_poll s evs | _ -> ())
    end
    else begin
      (match s.last with
       | Some (W_recv fd) when fd = s.r_fd && s.r_fd >= 0 -> apply_recv_on_rlink s outcome
       | Some w -> apply_result s w outcome
       | None -> ())
    end;
    (s, next_action s)

(* --- persistence --- *)

let tbl_to_sorted_list to_k tbl =
  Hashtbl.fold (fun k v acc -> (to_k k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let store_to_value tbl =
  Value.list (Value.pair Value.str Value.str) (tbl_to_sorted_list Fun.id tbl)

let store_of_value v =
  let tbl = Hashtbl.create 256 in
  List.iter (fun (k, d) -> Hashtbl.replace tbl k d)
    (Value.to_list (Value.to_pair Value.to_str Value.to_str) v);
  tbl

let applied_to_value tbl =
  Value.list
    (fun ((c, i), r) ->
      Value.list Fun.id [ Value.int c; Value.int i; Kv_wire.resp_to_value r ])
    (tbl_to_sorted_list Fun.id tbl)

let applied_of_value v =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun e ->
      match Value.to_list Fun.id e with
      | [ c; i; r ] ->
        Hashtbl.replace tbl (Value.to_int c, Value.to_int i) (Kv_wire.resp_of_value r)
      | _ -> Value.decode_error "kvstore applied entry")
    (Value.to_list Fun.id v);
  tbl

let work_to_value = function
  | W_accept -> Value.tag "acc" Value.unit
  | W_setnb fd -> Value.tag "nb" (Value.int fd)
  | W_recv fd -> Value.tag "rx" (Value.int fd)
  | W_send fd -> Value.tag "tx" (Value.int fd)
  | W_close fd -> Value.tag "cl" (Value.int fd)
  | W_rsock -> Value.tag "rs" Value.unit
  | W_rconnect -> Value.tag "rc" Value.unit
  | W_rsend -> Value.tag "rt" Value.unit
  | W_rclose fd -> Value.tag "rx2" (Value.int fd)

let work_of_value v =
  match Value.to_tag v with
  | "acc", _ -> W_accept
  | "nb", fd -> W_setnb (Value.to_int fd)
  | "rx", fd -> W_recv (Value.to_int fd)
  | "tx", fd -> W_send (Value.to_int fd)
  | "cl", fd -> W_close (Value.to_int fd)
  | "rs", _ -> W_rsock
  | "rc", _ -> W_rconnect
  | "rt", _ -> W_rsend
  | "rx2", fd -> W_rclose (Value.to_int fd)
  | t, _ -> Value.decode_error "kvstore work %s" t

let to_value s =
  Value.assoc
    [ ("port", Value.int s.port);
      ("shard", Value.int s.shard);
      ("nshards", Value.int s.nshards);
      ("backlog", Value.int s.backlog);
      ("mirror", Value.option Addr.to_value s.mirror_addr);
      ("store", store_to_value s.store);
      ("applied", applied_to_value s.applied);
      ("mstore", store_to_value s.mirror);
      ( "mapplied",
        Value.list (Value.pair Value.int Value.int)
          (List.map fst (tbl_to_sorted_list Fun.id s.mirror_applied)) );
      ( "conns",
        Value.list
          (fun (fd, (c : conn)) ->
            Value.list Fun.id [ Value.int fd; Value.str c.inbuf; Value.str c.outbuf ])
          (tbl_to_sorted_list Fun.id s.conns) );
      ("log_seq", Value.int s.log_seq);
      ("lfd", Value.int s.lfd);
      ("ph", Value.int s.ph);
      ("todo", Value.list work_to_value s.todo);
      ("last", Value.option work_to_value s.last);
      ("polling", Value.bool s.polling);
      ("r_fd", Value.int s.r_fd);
      ("r_st", Value.int s.r_st);
      ("r_out", Value.str s.r_out);
      ("r_in", Value.str s.r_in);
      ("r_cool", Value.int s.r_cool);
      ( "ctrs",
        Value.list Value.int
          [ s.accepted; s.served; s.dup_hits; s.redirects; s.repl_sent; s.repl_acked;
            s.repl_applied ] ) ]

let of_value v =
  let conns = Hashtbl.create 1024 in
  List.iter
    (fun e ->
      match Value.to_list Fun.id e with
      | [ fd; ib; ob ] ->
        Hashtbl.replace conns (Value.to_int fd)
          { inbuf = Value.to_str ib; outbuf = Value.to_str ob }
      | _ -> Value.decode_error "kvstore conn entry")
    (Value.to_list Fun.id (Value.field "conns" v));
  let mirror_applied = Hashtbl.create 1024 in
  List.iter
    (fun ci -> Hashtbl.replace mirror_applied ci ())
    (Value.to_list (Value.to_pair Value.to_int Value.to_int) (Value.field "mapplied" v));
  let ctrs = Value.to_list Value.to_int (Value.field "ctrs" v) in
  let ctr i = List.nth ctrs i in
  {
    port = Value.to_int (Value.field "port" v);
    shard = Value.to_int (Value.field "shard" v);
    nshards = Value.to_int (Value.field "nshards" v);
    backlog = Value.to_int (Value.field "backlog" v);
    mirror_addr = Value.to_option Addr.of_value (Value.field "mirror" v);
    store = store_of_value (Value.field "store" v);
    applied = applied_of_value (Value.field "applied" v);
    mirror = store_of_value (Value.field "mstore" v);
    mirror_applied;
    conns;
    log_seq = Value.to_int (Value.field "log_seq" v);
    lfd = Value.to_int (Value.field "lfd" v);
    ph = Value.to_int (Value.field "ph" v);
    todo = Value.to_list work_of_value (Value.field "todo" v);
    last = Value.to_option work_of_value (Value.field "last" v);
    polling = Value.to_bool (Value.field "polling" v);
    r_fd = Value.to_int (Value.field "r_fd" v);
    r_st = Value.to_int (Value.field "r_st" v);
    r_out = Value.to_str (Value.field "r_out" v);
    r_in = Value.to_str (Value.field "r_in" v);
    r_cool = Value.to_int (Value.field "r_cool" v);
    accepted = ctr 0;
    served = ctr 1;
    dup_hits = ctr 2;
    redirects = ctr 3;
    repl_sent = ctr 4;
    repl_acked = ctr 5;
    repl_applied = ctr 6;
  }

(* Canonical digest of the service state — store, applied log, and sequence
   number; connection buffers and counters are deliberately excluded (they
   are transport, not state).  Used by the fidelity assertions: a restored
   pod must digest identically to the suspended one. *)
let digest_of_snapshot v =
  let h = ref 0x811c9dc5 in
  let mix s =
    String.iter
      (fun c ->
        h := !h lxor Char.code c;
        h := !h * 0x01000193 land 0x3FFFFFFFFFFF)
      s
  in
  let buf = Buffer.create 4096 in
  Zapc_codec.Wire.encode_raw buf (Value.field "store" v);
  Zapc_codec.Wire.encode_raw buf (Value.field "applied" v);
  Zapc_codec.Wire.encode_raw buf (Value.field "log_seq" v);
  mix (Buffer.contents buf);
  !h

let register () = Program.register_if_absent (module struct
  type nonrec state = state

  let name = name
  let start = start
  let step = step
  let to_value = to_value
  let of_value = of_value
end : Program.S)
