(* Wire protocol of the replicated key-value service: request / response /
   redirect / replication messages, their Value codecs, and the
   length-prefixed framing used on the TCP connections.

   Requests carry a (client, id) pair so servers can apply idempotently: a
   retried request hits the in-memory log and is answered from it without a
   second apply.  A server that does not own a key's shard answers with a
   redirect naming the owner.  The framing is deliberately trivial — a
   4-byte big-endian length followed by the headerless Value encoding — so
   partial reads and writes (the normal case under checkpoint blackouts)
   reassemble from plain string buffers that live inside checkpointable
   program state. *)

module Value = Zapc_codec.Value
module Wire = Zapc_codec.Wire

type op = Set of string * string | Get of string | Del of string

type req = { rq_client : int; rq_id : int; rq_op : op }

type status =
  | S_ok
  | S_not_found
  | S_redirect of int  (* index of the owning shard *)

type resp = { rs_client : int; rs_id : int; rs_status : status; rs_value : string }

(* owner -> mirror replication: the owner's applied operation, tagged with
   its log sequence number; the mirror applies idempotently and acks. *)
type repl = { rp_seq : int; rp_client : int; rp_id : int; rp_op : op }

type msg = Req of req | Resp of resp | Repl of repl | Repl_ack of int

(* --- shard ownership (FNV-1a over the key, deterministic) --- *)

let hash_key key =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    key;
  !h

let owner ~nshards key = if nshards <= 1 then 0 else hash_key key mod nshards

(* --- codecs --- *)

let op_to_value = function
  | Set (k, v) -> Value.tag "set" (Value.pair Value.str Value.str (k, v))
  | Get k -> Value.tag "get" (Value.str k)
  | Del k -> Value.tag "del" (Value.str k)

let op_of_value v =
  match Value.to_tag v with
  | "set", kv ->
    let k, d = Value.to_pair Value.to_str Value.to_str kv in
    Set (k, d)
  | "get", k -> Get (Value.to_str k)
  | "del", k -> Del (Value.to_str k)
  | t, _ -> Value.decode_error "kv op %s" t

let status_to_value = function
  | S_ok -> Value.tag "ok" Value.unit
  | S_not_found -> Value.tag "not_found" Value.unit
  | S_redirect o -> Value.tag "redirect" (Value.int o)

let status_of_value v =
  match Value.to_tag v with
  | "ok", _ -> S_ok
  | "not_found", _ -> S_not_found
  | "redirect", o -> S_redirect (Value.to_int o)
  | t, _ -> Value.decode_error "kv status %s" t

let req_to_value r =
  Value.assoc
    [ ("client", Value.int r.rq_client);
      ("id", Value.int r.rq_id);
      ("op", op_to_value r.rq_op) ]

let req_of_value v =
  {
    rq_client = Value.to_int (Value.field "client" v);
    rq_id = Value.to_int (Value.field "id" v);
    rq_op = op_of_value (Value.field "op" v);
  }

let resp_to_value r =
  Value.assoc
    [ ("client", Value.int r.rs_client);
      ("id", Value.int r.rs_id);
      ("status", status_to_value r.rs_status);
      ("value", Value.str r.rs_value) ]

let resp_of_value v =
  {
    rs_client = Value.to_int (Value.field "client" v);
    rs_id = Value.to_int (Value.field "id" v);
    rs_status = status_of_value (Value.field "status" v);
    rs_value = Value.to_str (Value.field "value" v);
  }

let repl_to_value r =
  Value.assoc
    [ ("seq", Value.int r.rp_seq);
      ("client", Value.int r.rp_client);
      ("id", Value.int r.rp_id);
      ("op", op_to_value r.rp_op) ]

let repl_of_value v =
  {
    rp_seq = Value.to_int (Value.field "seq" v);
    rp_client = Value.to_int (Value.field "client" v);
    rp_id = Value.to_int (Value.field "id" v);
    rp_op = op_of_value (Value.field "op" v);
  }

let msg_to_value = function
  | Req r -> Value.tag "req" (req_to_value r)
  | Resp r -> Value.tag "resp" (resp_to_value r)
  | Repl r -> Value.tag "repl" (repl_to_value r)
  | Repl_ack s -> Value.tag "repl_ack" (Value.int s)

let msg_of_value v =
  match Value.to_tag v with
  | "req", r -> Req (req_of_value r)
  | "resp", r -> Resp (resp_of_value r)
  | "repl", r -> Repl (repl_of_value r)
  | "repl_ack", s -> Repl_ack (Value.to_int s)
  | t, _ -> Value.decode_error "kv msg %s" t

(* --- framing --- *)

let frame m =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "\000\000\000\000";
  Wire.encode_raw buf (msg_to_value m);
  let b = Buffer.to_bytes buf in
  Bytes.set_int32_be b 0 (Int32.of_int (Bytes.length b - 4));
  Bytes.unsafe_to_string b

(* Parse every complete frame at the head of [buf]; return the messages and
   the unconsumed tail.  Pure, so it composes with checkpointable program
   state: the tail is exactly the bytes a restart must keep. *)
let split buf =
  let n = String.length buf in
  let rec go off acc =
    if off + 4 > n then (List.rev acc, String.sub buf off (n - off))
    else
      let len = Int32.to_int (String.get_int32_be buf off) in
      if off + 4 + len > n then (List.rev acc, String.sub buf off (n - off))
      else
        let m, _ = Wire.decode_raw buf (off + 4) in
        go (off + 4 + len) (msg_of_value m :: acc)
  in
  go 0 []
