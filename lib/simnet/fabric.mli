(** The cluster interconnect: delivers packets between registered addresses
    with a Gigabit-Ethernet-like cost model (per-hop latency, per-NIC
    serialization at a configured bandwidth, optional jitter and loss), and
    consults the {!Netfilter} rules on both egress and ingress — so a packet
    already in flight when a pod's network is blocked is dropped on arrival,
    exactly the in-flight-data semantics the paper relies on. *)

type config = {
  latency : Zapc_sim.Simtime.t;  (** one-way propagation + switching delay *)
  bandwidth_bps : float;         (** NIC line rate, bits per second *)
  jitter : Zapc_sim.Simtime.t;   (** max uniform extra delay *)
  loss_prob : float;             (** random loss rate (0 in cluster defaults) *)
}

val default_config : config
(** 1 GbE: 40 us latency, 1e9 bps, 5 us jitter, no loss. *)

type t

val create : ?config:config -> Zapc_sim.Engine.t -> t
val engine : t -> Zapc_sim.Engine.t
val netfilter : t -> Netfilter.t
val config : t -> config
val set_loss_prob : t -> float -> unit

val set_latency : t -> Zapc_sim.Simtime.t -> unit
(** Failure injection: change the one-way latency (congestion spikes). *)

val set_config : t -> config -> unit

val ips_of_node : t -> int -> Addr.ip list
(** All addresses currently attached on a node, sorted. *)

val detach_node : t -> int -> unit
(** Failure injection: detach every address of a node at once (NIC detach /
    power loss); packets in flight to them are dropped on delivery. *)

val attach : t -> node:int -> Addr.ip -> (Packet.t -> unit) -> unit
(** Bind [ip] to a receive handler on [node]; all addresses of one node share
    that node's NIC for serialization. *)

val detach : t -> Addr.ip -> unit
val node_of_ip : t -> Addr.ip -> int option

val send : t -> Packet.t -> unit
(** Transmit; applies egress filtering, loss, NIC serialization and latency,
    then ingress filtering at delivery time. Packets to unattached addresses
    are dropped (a TCP SYN additionally triggers an RST reply so connectors
    fail fast). *)

val packets_delivered : t -> int
val bytes_delivered : t -> int
val packets_dropped : t -> int
