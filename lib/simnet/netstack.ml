(* Per-node network stack: socket creation, binding, port allocation,
   connection demultiplexing, and packet input from the fabric.  The kernel
   (Zapc_simos) calls into this module to implement socket system calls; the
   ZapC Agent calls into it directly when reconstructing connections at
   restart. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Rng = Zapc_sim.Rng

type t = {
  node : int;
  engine : Engine.t;
  fabric : Fabric.t;
  socks : (int, Socket.t) Hashtbl.t;
  estab : (int * int * int * int * int, Socket.t) Hashtbl.t;
  listeners : (int * int * int, Socket.t) Hashtbl.t;
  mutable raws : Socket.t list;
  mutable next_id : int;
  mutable next_port : int;
  mutable local_ips : Addr.ip list;
  rng : Rng.t;
  mutable netctx : Socket.netctx option;  (* built once, lazily *)
  mutable gm : (Packet.t -> string -> unit) option;  (* kernel-bypass device *)
}

let proto_num = function Socket.Stream -> 6 | Socket.Dgram -> 17 | Socket.Raw _ -> 255

let estab_key kind (l : Addr.t) (r : Addr.t) = (proto_num kind, l.ip, l.port, r.ip, r.port)

let create ~node fabric =
  {
    node;
    engine = Fabric.engine fabric;
    fabric;
    socks = Hashtbl.create 64;
    estab = Hashtbl.create 64;
    listeners = Hashtbl.create 16;
    raws = [];
    next_id = 1;
    next_port = 32768;
    local_ips = [];
    rng = Rng.split (Engine.rng (Fabric.engine fabric));
    netctx = None;
    gm = None;
  }

let register_estab t (s : Socket.t) =
  match (s.local, s.remote) with
  | Some l, Some r -> Hashtbl.replace t.estab (estab_key s.kind l r) s
  | _ -> ()

let unregister t (s : Socket.t) =
  (match (s.local, s.remote) with
   | Some l, Some r ->
     (match Hashtbl.find_opt t.estab (estab_key s.kind l r) with
      | Some s' when s' == s -> Hashtbl.remove t.estab (estab_key s.kind l r)
      | Some _ | None -> ())
   | _ -> ());
  (match s.local with
   | Some l ->
     let k = (proto_num s.kind, l.ip, l.port) in
     (match Hashtbl.find_opt t.listeners k with
      | Some s' when s' == s -> Hashtbl.remove t.listeners k
      | Some _ | None -> ())
   | None -> ());
  (match s.kind with
   | Socket.Raw _ -> t.raws <- List.filter (fun s' -> not (s' == s)) t.raws
   | Socket.Stream | Socket.Dgram -> ());
  Hashtbl.remove t.socks s.id

let rec netctx t : Socket.netctx =
  match t.netctx with
  | Some ctx -> ctx
  | None ->
    let ctx =
      {
        Socket.nc_now = (fun () -> Engine.now t.engine);
        nc_schedule = (fun delay fn -> Engine.schedule t.engine ~label:"net.timer" ~delay fn);
        nc_new_timer =
          (fun fn ->
            let tm = Engine.timer ~label:"net.timer" fn in
            {
              Socket.nct_arm_in = (fun delay -> Engine.timer_arm_in t.engine tm ~delay);
              nct_cancel = (fun () -> Engine.timer_cancel tm);
            });
        nc_tx = (fun p -> Fabric.send t.fabric p);
        nc_new_socket = (fun kind -> new_socket t kind);
        nc_register_estab = (fun s -> register_estab t s);
        nc_unregister = (fun s -> unregister t s);
        nc_rng = t.rng;
        nc_stats = { Socket.ns_retransmits = 0; ns_window_stalls = 0 };
      }
    in
    t.netctx <- Some ctx;
    ctx

and new_socket t kind =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let s = Socket.create ~id ~kind ~netctx:(netctx t) in
  Hashtbl.replace t.socks s.Socket.id s;
  (match kind with
   | Socket.Raw _ -> t.raws <- s :: t.raws
   | Socket.Stream | Socket.Dgram -> ());
  s

(* --- packet input --- *)

let deliver_dgram (s : Socket.t) (src : Addr.t) data =
  if s.dgram_bytes + String.length data <= Socket.rcvbuf s then begin
    Queue.add (src, data) s.dgrams;
    s.dgram_bytes <- s.dgram_bytes + String.length data;
    Socket.wake_readers s
  end
(* else: receive buffer full -> datagram silently dropped (UDP semantics) *)

let find_receiver t proto (dst : Addr.t) (src : Addr.t) =
  match Hashtbl.find_opt t.estab (proto, dst.ip, dst.port, src.ip, src.port) with
  | Some s -> Some s
  | None ->
    (match Hashtbl.find_opt t.listeners (proto, dst.ip, dst.port) with
     | Some s -> Some s
     | None -> Hashtbl.find_opt t.listeners (proto, Addr.any, dst.port))

let rst_for (p : Packet.t) (seg : Packet.tcp_seg) =
  let flags = { Packet.no_flags with rst = true; ack = true } in
  let ack_no = seg.seq + String.length seg.payload + (if seg.flags.syn then 1 else 0) in
  {
    Packet.src = p.dst;
    dst = p.src;
    body =
      Packet.Tcp_seg
        { seq = seg.ack_no; ack_no; flags; window = 0; urg_ptr = 0; payload = "" };
  }

let on_packet t (p : Packet.t) =
  match p.body with
  | Packet.Tcp_seg seg ->
    (match Hashtbl.find_opt t.estab (6, p.dst.ip, p.dst.port, p.src.ip, p.src.port) with
     | Some s -> Tcp.on_segment s seg
     | None ->
       (match find_receiver t 6 p.dst p.src with
        | Some s when Socket.is_listening s -> Tcp.on_listener_segment s p.src p.dst seg
        | Some s -> Tcp.on_segment s seg
        | None -> if not seg.flags.rst then Fabric.send t.fabric (rst_for p seg)))
  | Packet.Udp_dgram data ->
    (match find_receiver t 17 p.dst p.src with
     | Some s -> deliver_dgram s p.src data
     | None -> ())
  | Packet.Raw_ip (proto, data) when proto = Gmdev.gm_proto && t.gm <> None ->
    (match t.gm with Some h -> h p data | None -> ())
  | Packet.Raw_ip (proto, data) ->
    List.iter
      (fun (s : Socket.t) ->
        match s.kind with
        | Socket.Raw sp when sp = proto ->
          (match s.local with
           | Some l when not (Addr.equal_ip l.ip Addr.any) ->
             if Addr.equal_ip l.ip p.dst.ip then deliver_dgram s p.src data
           | Some _ | None -> deliver_dgram s p.src data)
        | Socket.Raw _ | Socket.Stream | Socket.Dgram -> ())
      t.raws

(* --- address management --- *)

let add_ip t ip =
  if not (List.exists (fun i -> Addr.equal_ip i ip) t.local_ips) then begin
    t.local_ips <- t.local_ips @ [ ip ];
    Fabric.attach t.fabric ~node:t.node ip (fun p -> on_packet t p)
  end

let remove_ip t ip =
  t.local_ips <- List.filter (fun i -> not (Addr.equal_ip i ip)) t.local_ips;
  Fabric.detach t.fabric ip

let default_ip t = match t.local_ips with ip :: _ -> Some ip | [] -> None
let has_ip t ip = List.exists (fun i -> Addr.equal_ip i ip) t.local_ips

let port_in_use t proto ip port =
  Hashtbl.mem t.listeners (proto, ip, port)
  || (not (Addr.equal_ip ip Addr.any)) && Hashtbl.mem t.listeners (proto, Addr.any, port)
  || Hashtbl.fold
       (fun (pr, lip, lport, _, _) _ acc ->
         acc || (pr = proto && lport = port && (Addr.equal_ip lip ip || Addr.equal_ip ip Addr.any)))
       t.estab false

let alloc_port t proto ip =
  let start = t.next_port in
  let rec go port =
    let next = if port >= 60999 then 32768 else port + 1 in
    if not (port_in_use t proto ip port) then begin
      t.next_port <- next;
      port
    end
    else if next = start then invalid_arg "Netstack: ephemeral ports exhausted"
    else go next
  in
  go start

(* --- socket operations (the syscall back-ends) --- *)

let bind t (s : Socket.t) (addr : Addr.t) : (unit, Errno.t) result =
  if s.local <> None then Error Errno.EINVAL
  else if (not (Addr.equal_ip addr.ip Addr.any)) && not (has_ip t addr.ip) then
    Error Errno.EADDRNOTAVAIL
  else begin
    let proto = proto_num s.kind in
    let port = if addr.port = 0 then alloc_port t proto addr.ip else addr.port in
    let reuse = Sockopt.get s.opts Sockopt.SO_REUSEADDR <> 0 in
    if addr.port <> 0 && port_in_use t proto addr.ip port && not reuse then
      Error Errno.EADDRINUSE
    else begin
      s.local <- Some { addr with port };
      (match s.kind with
       | Socket.Dgram | Socket.Raw _ ->
         Hashtbl.replace t.listeners (proto, addr.ip, port) s
       | Socket.Stream -> ());
      Ok ()
    end
  end

let listen t (s : Socket.t) backlog : (unit, Errno.t) result =
  match s.kind with
  | Socket.Dgram | Socket.Raw _ -> Error Errno.EOPNOTSUPP
  | Socket.Stream ->
    (match s.local with
     | None -> Error Errno.EINVAL
     | Some l ->
       if Socket.is_listening s then begin
         s.backlog <- Stdlib.max 1 backlog;
         Ok ()
       end
       else if s.tcb <> None then Error Errno.EISCONN
       else begin
         Tcp.listen s backlog;
         Hashtbl.replace t.listeners (6, l.ip, l.port) s;
         Ok ()
       end)

let auto_bind t (s : Socket.t) =
  match s.local with
  | Some _ -> Ok ()
  | None ->
    let ip =
      match s.src_hint with
      | Some ip when has_ip t ip -> Some ip
      | Some _ | None -> default_ip t
    in
    (match ip with
     | None -> Error Errno.ENETUNREACH
     | Some ip -> bind t s { Addr.ip; port = 0 })

(* Initiate a stream connect (non-blocking part); completion is observed via
   the socket state.  For datagram sockets, sets the default peer. *)
let connect_start t (s : Socket.t) (dst : Addr.t) : (unit, Errno.t) result =
  match auto_bind t s with
  | Error e -> Error e
  | Ok () ->
    (match s.kind with
     | Socket.Stream ->
       if s.tcb <> None then Error Errno.EISCONN
       else begin
         s.remote <- Some dst;
         register_estab t s;
         Tcp.connect s;
         Ok ()
       end
     | Socket.Dgram | Socket.Raw _ ->
       (* re-register under the connected 4-tuple for focused demux *)
       (match s.local with
        | Some l ->
          let proto = proto_num s.kind in
          (match Hashtbl.find_opt t.listeners (proto, l.ip, l.port) with
           | Some s' when s' == s -> Hashtbl.remove t.listeners (proto, l.ip, l.port)
           | Some _ | None -> ())
        | None -> ());
       s.remote <- Some dst;
       register_estab t s;
       Ok ())

let accept_take (s : Socket.t) : Socket.t option =
  if Queue.is_empty s.accept_q then None
  else begin
    let child = Queue.pop s.accept_q in
    Some child
  end

let sendto t (s : Socket.t) (dst : Addr.t) data : (int, Errno.t) result =
  match auto_bind t s with
  | Error e -> Error e
  | Ok () ->
    let local = Option.get s.local in
    let src =
      if Addr.equal_ip local.ip Addr.any then
        match default_ip t with
        | Some ip -> { local with Addr.ip }
        | None -> local
      else local
    in
    let body =
      match s.kind with
      | Socket.Dgram -> Packet.Udp_dgram data
      | Socket.Raw proto -> Packet.Raw_ip (proto, data)
      | Socket.Stream -> Packet.Udp_dgram data (* unreachable by callers *)
    in
    if String.length data > 65507 then Error Errno.EMSGSIZE
    else begin
      Fabric.send t.fabric { Packet.src; dst; body };
      Ok (String.length data)
    end

let close t (s : Socket.t) =
  if not s.closed then begin
    s.dispatch.d_release s;
    match s.kind with
    | Socket.Stream ->
      s.closed <- true;
      (match s.tcb with
       | Some _ -> Tcp.close s
       | None ->
         s.closed <- true;
         unregister t s)
    | Socket.Dgram | Socket.Raw _ ->
      s.closed <- true;
      unregister t s
  end

(* Freeze/thaw the TCP timers of every socket bound to [ip] (a pod's real
   address).  Pod suspend/resume call these so a checkpoint-frozen pod's
   network state stops and restarts with the pod instead of burning its
   retransmission budget against the netfilter block. *)
let iter_streams_on t ip f =
  Hashtbl.iter
    (fun _ (s : Socket.t) ->
      match (s.kind, s.local) with
      | Socket.Stream, Some l when Addr.equal_ip l.ip ip && s.tcb <> None -> f s
      | (Socket.Stream | Socket.Dgram | Socket.Raw _), (Some _ | None) -> ())
    t.socks

let freeze_ip t ip = iter_streams_on t ip Tcp.net_freeze
let thaw_ip t ip = iter_streams_on t ip Tcp.net_thaw

let set_gm_handler t h = t.gm <- Some h
let send_packet t p = Fabric.send t.fabric p

let socket_count t = Hashtbl.length t.socks
let established_count t = Hashtbl.length t.estab

let net_stats t = (netctx t).Socket.nc_stats
let retransmit_count t = (net_stats t).Socket.ns_retransmits
let window_stall_count t = (net_stats t).Socket.ns_window_stalls
