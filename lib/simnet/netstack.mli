(** Per-node network stack: socket creation, binding, port allocation,
    connection demultiplexing, and packet input from the fabric.

    The kernel ({!Zapc_simos.Kernel}) calls in here to implement socket
    system calls; the ZapC Agent calls in directly when reconstructing
    connections at restart. *)


type t

val create : node:int -> Fabric.t -> t
val new_socket : t -> Socket.kind -> Socket.t
val register_estab : t -> Socket.t -> unit
val unregister : t -> Socket.t -> unit
val on_packet : t -> Packet.t -> unit

(** {1 Addresses} *)

val add_ip : t -> Addr.ip -> unit
(** Attach an address (host or pod) to this node and the fabric. *)

val remove_ip : t -> Addr.ip -> unit
val default_ip : t -> Addr.ip option
val has_ip : t -> Addr.ip -> bool
val alloc_port : t -> int -> Addr.ip -> int

(** {1 Socket operations (system-call back-ends)} *)

val bind : t -> Socket.t -> Addr.t -> (unit, Errno.t) result
(** Port 0 allocates an ephemeral port; a concrete port conflicting with an
    existing binding yields [EADDRINUSE] (unless SO_REUSEADDR). *)

val listen : t -> Socket.t -> int -> (unit, Errno.t) result
val auto_bind : t -> Socket.t -> (unit, Errno.t) result

val connect_start : t -> Socket.t -> Addr.t -> (unit, Errno.t) result
(** Stream: auto-bind (honouring [src_hint]), register for demux, begin the
    TCP handshake.  Datagram/raw: set the default peer and re-register under
    the connected 4-tuple. *)

val accept_take : Socket.t -> Socket.t option
(** Pop one established connection off a listener's accept queue. *)

val sendto : t -> Socket.t -> Addr.t -> string -> (int, Errno.t) result
val close : t -> Socket.t -> unit

val freeze_ip : t -> Addr.ip -> unit
(** Stop the TCP retransmission timers of every socket bound to [ip]: a
    checkpoint-frozen pod's network state freezes with the pod (paper
    section 5), so the netfilter-blocked window does not consume its
    connections' retry budgets. *)

val thaw_ip : t -> Addr.ip -> unit
(** Undo {!freeze_ip}: reset each bound socket's backoff and re-arm its
    retransmission timer so recovery starts promptly after the pod
    resumes. *)

val set_gm_handler : t -> (Packet.t -> string -> unit) -> unit
(** Kernel-bypass device hook: Raw-IP packets with {!Gmdev.gm_proto} are
    handed to the device instead of the raw-socket path. *)

val send_packet : t -> Packet.t -> unit
(** Raw transmit onto the fabric (used by the GM device). *)

val socket_count : t -> int
val established_count : t -> int

val net_stats : t -> Socket.net_stats
(** Aggregate transport counters for this stack (shared with every socket
    via the netctx). *)

val retransmit_count : t -> int
(** Total TCP retransmissions fired by any socket of this stack. *)

val window_stall_count : t -> int
(** Total zero-window persist stalls entered by any socket of this stack. *)
