module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Rng = Zapc_sim.Rng

type config = {
  latency : Simtime.t;
  bandwidth_bps : float;
  jitter : Simtime.t;
  loss_prob : float;
}

let default_config =
  { latency = Simtime.us 40; bandwidth_bps = 1e9; jitter = Simtime.us 5; loss_prob = 0.0 }

type nic = { mutable tx_free_at : Simtime.t }

type t = {
  engine : Engine.t;
  mutable cfg : config;
  nf : Netfilter.t;
  handlers : (Addr.ip, int * (Packet.t -> unit)) Hashtbl.t;
  nics : (int, nic) Hashtbl.t;
  rng : Rng.t;
  mutable delivered : int;
  mutable bytes : int;
  mutable dropped : int;
}

let create ?(config = default_config) engine =
  {
    engine;
    cfg = config;
    nf = Netfilter.create ();
    handlers = Hashtbl.create 64;
    nics = Hashtbl.create 16;
    rng = Rng.split (Engine.rng engine);
    delivered = 0;
    bytes = 0;
    dropped = 0;
  }

let engine t = t.engine
let netfilter t = t.nf
let config t = t.cfg
let set_loss_prob t p = t.cfg <- { t.cfg with loss_prob = p }
let set_latency t l = t.cfg <- { t.cfg with latency = l }
let set_config t cfg = t.cfg <- cfg

let ips_of_node t node =
  Hashtbl.fold (fun ip (n, _) acc -> if n = node then ip :: acc else acc) t.handlers []
  |> List.sort Int.compare

(* Failure injection: a node vanishing from the network (NIC detach / power
   loss).  Packets in flight to its addresses are dropped on delivery. *)
let detach_node t node = List.iter (fun ip -> Hashtbl.remove t.handlers ip) (ips_of_node t node)

let nic_of t node =
  match Hashtbl.find_opt t.nics node with
  | Some n -> n
  | None ->
    let n = { tx_free_at = Simtime.zero } in
    Hashtbl.replace t.nics node n;
    n

let attach t ~node ip handler = Hashtbl.replace t.handlers ip (node, handler)
let detach t ip = Hashtbl.remove t.handlers ip
let node_of_ip t ip = Option.map fst (Hashtbl.find_opt t.handlers ip)

let serialization_time t size_bytes =
  let bits = float_of_int (size_bytes * 8) in
  Simtime.ns (int_of_float (bits /. t.cfg.bandwidth_bps *. 1e9))

let rst_reply (p : Packet.t) (seg : Packet.tcp_seg) : Packet.t =
  let flags = { Packet.no_flags with rst = true; ack = true } in
  {
    Packet.src = p.dst;
    dst = p.src;
    body =
      Packet.Tcp_seg
        { seq = 0; ack_no = seg.seq + 1; flags; window = 0; urg_ptr = 0; payload = "" };
  }

let rec deliver t (p : Packet.t) =
  if not (Netfilter.permits t.nf p) then t.dropped <- t.dropped + 1
  else
    match Hashtbl.find_opt t.handlers p.dst.ip with
    | Some (_node, handler) ->
      t.delivered <- t.delivered + 1;
      t.bytes <- t.bytes + Packet.size p;
      handler p
    | None ->
      t.dropped <- t.dropped + 1;
      (match p.body with
       | Packet.Tcp_seg seg when seg.flags.syn && not seg.flags.rst -> send t (rst_reply p seg)
       | Packet.Tcp_seg _ | Packet.Udp_dgram _ | Packet.Raw_ip _ -> ())

and send t (p : Packet.t) =
  if not (Netfilter.permits t.nf p) then t.dropped <- t.dropped + 1
  else if t.cfg.loss_prob > 0.0 && Rng.bool t.rng t.cfg.loss_prob then
    t.dropped <- t.dropped + 1
  else begin
    let now = Engine.now t.engine in
    let ser = serialization_time t (Packet.size p) in
    let tx_start =
      match Hashtbl.find_opt t.handlers p.src.ip with
      | Some (node, _) ->
        let nic = nic_of t node in
        let s = Simtime.max now nic.tx_free_at in
        nic.tx_free_at <- Simtime.add s ser;
        s
      | None -> now
    in
    let jitter =
      if Simtime.compare t.cfg.jitter Simtime.zero > 0 then
        Simtime.ns (Rng.int t.rng (Stdlib.max 1 t.cfg.jitter))
      else Simtime.zero
    in
    let arrive = Simtime.add (Simtime.add (Simtime.add tx_start ser) t.cfg.latency) jitter in
    Engine.schedule_at t.engine ~label:"net.deliver" ~at:arrive (fun () -> deliver t p)
  end

let packets_delivered t = t.delivered
let bytes_delivered t = t.bytes
let packets_dropped t = t.dropped + Netfilter.drop_count t.nf
