(** TCP protocol engine over {!Socket.t}.

    A deliberately real implementation: three-way handshake, cumulative
    acknowledgements, retransmission with exponential backoff and fast
    retransmit, receiver flow control, a small AIMD congestion window,
    out-of-order reassembly (URG markings preserved across reordering),
    FIN teardown through the full state machine, RST handling, and
    single-byte urgent data with BSD out-of-band semantics.

    The checkpoint-restart mechanism depends on the PCB invariants this
    module maintains: [snd_una <= snd_nxt], the retransmission queue holding
    exactly the acked..sent bytes, and [rcv_nxt] advancing only over
    delivered (or OOB-extracted) sequence space. *)

module Simtime = Zapc_sim.Simtime

val initial_rto : Simtime.t
val max_rto : Simtime.t

(** {1 Connection lifecycle} *)

val connect : Socket.t -> unit
(** Begin the handshake ([local]/[remote] must already be set and the socket
    registered for demux); completion is observed via the socket state and
    writable wakeups. *)

val listen : Socket.t -> int -> unit
val on_segment : Socket.t -> Packet.tcp_seg -> unit

val on_listener_segment :
  Socket.t -> Addr.t -> Addr.t -> Packet.tcp_seg -> unit
(** SYN arriving at a listening socket: create the child connection and
    reply SYN+ACK; it reaches the accept queue when the handshake
    completes. *)

val restore_syn_received : Socket.t -> iss:int -> irs:int -> unit
(** Rebuild a half-open (SYN_RECEIVED) child at restart from its
    checkpointed sequence numbers and re-emit the SYN+ACK.  The caller must
    have set [local]/[remote] and attached the socket to its restored
    listener ([parent], [pending_children], [synq]). *)

val shutdown_write : Socket.t -> unit
(** Queue a FIN behind any buffered data (half close). *)

val close : Socket.t -> unit

(** {1 Data transfer} *)

val send_data : Socket.t -> string -> (int, Errno.t) result
(** Buffer as much as fits in the send buffer and transmit within the flow
    and congestion windows.  [Ok 0] means the buffer is full: block on
    writable.  Writing after shutdown yields [Error EPIPE]. *)

val send_oob : Socket.t -> char -> (unit, Errno.t) result
(** Single-byte urgent data: its own URG segment, occupying sequence space. *)

val output : Socket.t -> unit
(** Push buffered data to the wire (called after restores refill sendq). *)

val after_app_read : Socket.t -> unit
(** Receiver-side window update after the application drains the receive
    queue, so a sender stalled on a zero window resumes. *)

val refresh_keepalive : Socket.t -> unit
(** (Re-)arm the keepalive machinery: when SO_KEEPALIVE is set on an
    established connection, an idle period of TCP_KEEPIDLE seconds triggers
    probes every TCP_KEEPINTVL seconds; after TCP_KEEPCNT unanswered probes
    the connection resets with ETIMEDOUT.  Called automatically when a
    connection establishes, and by network-state restore after re-applying
    the saved socket options (the paper's keepalive-timer protocol state). *)

val net_freeze : Socket.t -> unit
(** Stop the retransmission timer: a checkpoint-frozen pod's network state
    — timers included — freezes with the pod (paper section 5), so retries
    are not burned against a netfilter-blocked address. *)

val net_thaw : Socket.t -> unit
(** Undo [net_freeze]: reset the backoff to the initial RTO, refresh the
    head retry budget and re-arm if unacknowledged data is outstanding, so
    a thawed connection recovers promptly instead of waiting out a backed-
    off timer (and never aborts just because freeze windows kept landing on
    its retransmissions). *)
