(* The socket abstraction: the communication endpoint the paper's
   network-state checkpoint-restart is defined against.

   Each socket carries (a) a parameter table (Sockopt), (b) data queues —
   receive, send, datagram, and the *alternate receive queue* used at
   restart, and (c) for stream sockets a TCP control block (the PCB of the
   paper, holding the sent/recv/acked sequence numbers).

   Application-facing operations go through a per-socket *dispatch vector*
   (recvmsg / poll / release), mirroring how ZapC interposes on the kernel's
   socket ops: at restart the restored receive-queue contents are placed in
   [altq] and interposed implementations serve that data first, uninstalling
   themselves once it is depleted. *)

module Simtime = Zapc_sim.Simtime
module Rng = Zapc_sim.Rng

type kind = Stream | Dgram | Raw of int

let kind_to_string = function
  | Stream -> "stream"
  | Dgram -> "dgram"
  | Raw p -> "raw:" ^ string_of_int p

type tcp_state =
  | St_closed
  | St_listen
  | St_syn_sent
  | St_syn_received
  | St_established
  | St_fin_wait_1
  | St_fin_wait_2
  | St_close_wait
  | St_closing
  | St_last_ack
  | St_time_wait

let tcp_state_to_string = function
  | St_closed -> "closed"
  | St_listen -> "listen"
  | St_syn_sent -> "syn_sent"
  | St_syn_received -> "syn_received"
  | St_established -> "established"
  | St_fin_wait_1 -> "fin_wait_1"
  | St_fin_wait_2 -> "fin_wait_2"
  | St_close_wait -> "close_wait"
  | St_closing -> "closing"
  | St_last_ack -> "last_ack"
  | St_time_wait -> "time_wait"

type retx_item = {
  rx_seq : int;
  rx_payload : string;
  rx_fin : bool;
  rx_urg : bool;
  mutable rx_retries : int;
}

(* TCP protocol control block.  [snd_nxt] is the paper's "sent", [rcv_nxt]
   its "recv", [snd_una] its "acked". *)
type tcb = {
  mutable st : tcp_state;
  mutable iss : int;
  mutable irs : int;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable rcv_nxt : int;
  mutable snd_wnd : int;
  mutable cwnd : int;
  mutable rto : Simtime.t;
  mutable rto_armed : bool;
  mutable rto_gen : int;
  mutable ooo : (int * string * bool) list;
  (* out-of-order reassembly, seq-sorted; the flag preserves URG across
     reordering *)
  retx : retx_item Queue.t;
  mutable dup_acks : int;
  mutable fin_rcvd : bool;
  mutable fin_queued : bool;  (* FIN requested, sent once sendq drains *)
  mutable fin_sent : bool;
  mutable adv_wnd : int;  (* window advertised in our last segment *)
  mutable retransmits : int;
  (* keepalive machinery (armed when SO_KEEPALIVE is set) *)
  mutable ka_last : int;  (* time of last activity on the connection *)
  mutable ka_probes : int;  (* unanswered probes so far *)
  mutable ka_gen : int;  (* cancels stale keepalive timers *)
}

type recv_flags = { peek : bool; oob : bool; dontwait : bool }

let plain_recv = { peek = false; oob = false; dontwait = false }

type poll_events = {
  readable : bool;
  writable : bool;
  pollerr : bool;
  hangup : bool;
}

type recv_result =
  | Rv_data of string
  | Rv_from of Addr.t * string
  | Rv_eof
  | Rv_block
  | Rv_err of Errno.t

type t = {
  id : int;
  kind : kind;
  opts : Sockopt.table;
  mutable local : Addr.t option;
  mutable remote : Addr.t option;
  mutable src_hint : Addr.ip option;  (* preferred source address (pod rip) *)
  recvq : Sockbuf.t;
  sendq : Sockbuf.t;
  altq : Sockbuf.t;
  mutable oob_byte : char option;
  dgrams : (Addr.t * string) Queue.t;
  mutable dgram_bytes : int;
  mutable tcb : tcb option;
  accept_q : t Queue.t;
  mutable backlog : int;
  mutable pending_children : int;  (* SYN_RECEIVED children not yet accepted *)
  mutable synq : t list;  (* the SYN queue: those children, arrival order *)
  mutable parent : t option;
  mutable born_by_accept : bool;
  mutable err : Errno.t option;
  mutable shut_rd : bool;
  mutable shut_wr : bool;
  mutable closed : bool;
  mutable rd_waiters : (unit -> unit) list;
  mutable wr_waiters : (unit -> unit) list;
  mutable rto_tm : nc_timer option;  (* lazily-created retransmission timer *)
  dispatch : dispatch;
  netctx : netctx;
}

and dispatch = {
  mutable d_recvmsg : t -> recv_flags -> int -> recv_result;
  mutable d_poll : t -> poll_events;
  mutable d_release : t -> unit;
  mutable interposed : bool;
}

(* Capabilities the protocol engines need from the owning network stack.
   Stored on the socket so Tcp and Socket need no dependency on Netstack. *)
and netctx = {
  nc_now : unit -> Simtime.t;
  nc_schedule : Simtime.t -> (unit -> unit) -> unit;
  nc_new_timer : (unit -> unit) -> nc_timer;
  nc_tx : Packet.t -> unit;
  nc_new_socket : kind -> t;
  nc_register_estab : t -> unit;
  nc_unregister : t -> unit;
  nc_rng : Rng.t;
  nc_stats : net_stats;
}

(* A cancellable timer handed out by the owning stack (backed by
   [Engine.timer]): re-arming moves the deadline instead of queueing
   another closure, so per-ACK RTO restarts cost no queue traffic. *)
and nc_timer = {
  nct_arm_in : Simtime.t -> unit;
  nct_cancel : unit -> unit;
}

(* Per-stack aggregate transport counters, shared by every socket of the
   owning Netstack and sampled by the observability layer. *)
and net_stats = {
  mutable ns_retransmits : int;
  mutable ns_window_stalls : int;
}

let rcvbuf s = Sockopt.get s.opts Sockopt.SO_RCVBUF
let sndbuf s = Sockopt.get s.opts Sockopt.SO_SNDBUF
let mss s = Stdlib.max 1 (Sockopt.get s.opts Sockopt.TCP_MAXSEG)
let nonblocking s = Sockopt.get s.opts Sockopt.SO_NONBLOCK <> 0
let oob_inline s = Sockopt.get s.opts Sockopt.SO_OOBINLINE <> 0

let advertised_window s = Stdlib.max 0 (rcvbuf s - Sockbuf.length s.recvq)
let sendq_space s = Stdlib.max 0 (sndbuf s - Sockbuf.length s.sendq)

let tcp_state s = match s.tcb with Some tcb -> tcb.st | None -> St_closed

let is_listening s = tcp_state s = St_listen

let run_waiters ws =
  List.iter (fun w -> w ()) (List.rev ws)

let wake_readers s =
  let ws = s.rd_waiters in
  s.rd_waiters <- [];
  run_waiters ws

let wake_writers s =
  let ws = s.wr_waiters in
  s.wr_waiters <- [];
  run_waiters ws

let wake_all s =
  wake_readers s;
  wake_writers s

let wait_readable s w = s.rd_waiters <- w :: s.rd_waiters
let wait_writable s w = s.wr_waiters <- w :: s.wr_waiters

let synq_add listener child = listener.synq <- listener.synq @ [ child ]

let synq_remove listener child =
  listener.synq <- List.filter (fun c -> not (c == child)) listener.synq

(* --- default dispatch implementations --- *)

let stream_readable s =
  (not (Sockbuf.is_empty s.recvq))
  || s.oob_byte <> None
  || s.err <> None || s.shut_rd
  || (match s.tcb with Some tcb -> tcb.fin_rcvd | None -> false)

let default_recvmsg s (flags : recv_flags) n : recv_result =
  match s.kind with
  | Stream ->
    if flags.oob then (
      match s.oob_byte with
      | Some c ->
        if not flags.peek then s.oob_byte <- None;
        Rv_data (String.make 1 c)
      | None -> Rv_err Errno.EINVAL)
    else if not (Sockbuf.is_empty s.recvq) then
      Rv_data (Sockbuf.read s.recvq ~consume:(not flags.peek) n)
    else begin
      match s.err with
      | Some e ->
        if not flags.peek then s.err <- None;
        Rv_err e
      | None ->
        if s.shut_rd then Rv_eof
        else (
          match s.tcb with
          | Some tcb when tcb.fin_rcvd -> Rv_eof
          | Some tcb when tcb.st = St_closed -> Rv_eof
          | Some _ -> Rv_block
          | None -> Rv_err Errno.ENOTCONN)
    end
  | Dgram | Raw _ ->
    if Queue.is_empty s.dgrams then begin
      match s.err with
      | Some e ->
        if not flags.peek then s.err <- None;
        Rv_err e
      | None -> if s.shut_rd then Rv_eof else Rv_block
    end
    else
      let from, data = Queue.peek s.dgrams in
      if not flags.peek then begin
        ignore (Queue.pop s.dgrams);
        s.dgram_bytes <- s.dgram_bytes - String.length data
      end;
      let data = if String.length data > n then String.sub data 0 n else data in
      Rv_from (from, data)

let default_poll s : poll_events =
  match s.kind with
  | Stream ->
    let listener_ready = not (Queue.is_empty s.accept_q) in
    let readable = listener_ready || stream_readable s in
    let writable =
      (not s.shut_wr)
      &&
      match s.tcb with
      | Some tcb ->
        (match tcb.st with
         | St_established | St_close_wait -> sendq_space s > 0
         | St_closed -> s.err <> None (* connect failed: report via poll *)
         | St_listen | St_syn_sent | St_syn_received | St_fin_wait_1 | St_fin_wait_2
         | St_closing | St_last_ack | St_time_wait -> false)
      | None -> false
    in
    let hangup = (match s.tcb with Some tcb -> tcb.fin_rcvd | None -> false) || s.closed in
    { readable; writable; pollerr = s.err <> None; hangup }
  | Dgram | Raw _ ->
    {
      readable = (not (Queue.is_empty s.dgrams)) || s.err <> None;
      writable = true;
      pollerr = s.err <> None;
      hangup = false;
    }

let default_release s =
  Sockbuf.clear s.recvq;
  Sockbuf.clear s.altq;
  s.oob_byte <- None;
  Queue.clear s.dgrams;
  s.dgram_bytes <- 0

let make_dispatch () =
  { d_recvmsg = default_recvmsg; d_poll = default_poll; d_release = default_release;
    interposed = false }

let create ~id ~kind ~netctx =
  {
    id;
    kind;
    opts = Sockopt.create ();
    local = None;
    remote = None;
    src_hint = None;
    recvq = Sockbuf.create ();
    sendq = Sockbuf.create ();
    altq = Sockbuf.create ();
    oob_byte = None;
    dgrams = Queue.create ();
    dgram_bytes = 0;
    tcb = None;
    accept_q = Queue.create ();
    backlog = 0;
    pending_children = 0;
    synq = [];
    parent = None;
    born_by_accept = false;
    err = None;
    shut_rd = false;
    shut_wr = false;
    closed = false;
    rd_waiters = [];
    wr_waiters = [];
    rto_tm = None;
    dispatch = make_dispatch ();
    netctx;
  }

(* --- alternate receive queue interposition (paper section 5) ---

   [install_altqueue] deposits restored receive-queue data in [altq] and
   replaces the recvmsg/poll/release entries of the dispatch vector.  The
   interposed recvmsg serves [altq] before the main receive queue, so the
   application is guaranteed to consume restored data before anything that
   arrives after the restart; once [altq] drains, the original methods are
   reinstated so regular operation pays no overhead. *)

let uninstall_interposition s =
  s.dispatch.d_recvmsg <- default_recvmsg;
  s.dispatch.d_poll <- default_poll;
  s.dispatch.d_release <- default_release;
  s.dispatch.interposed <- false

let interposed_recvmsg s (flags : recv_flags) n : recv_result =
  if flags.oob then default_recvmsg s flags n
  else if not (Sockbuf.is_empty s.altq) then begin
    let data = Sockbuf.read s.altq ~consume:(not flags.peek) n in
    if Sockbuf.is_empty s.altq && not flags.peek then uninstall_interposition s;
    Rv_data data
  end
  else begin
    uninstall_interposition s;
    default_recvmsg s flags n
  end

let interposed_poll s : poll_events =
  if not (Sockbuf.is_empty s.altq) then
    { (default_poll s) with readable = true }
  else default_poll s

let interposed_release s =
  Sockbuf.clear s.altq;
  uninstall_interposition s;
  default_release s

let install_altqueue s data =
  if String.length data > 0 then begin
    Sockbuf.push s.altq data;
    s.dispatch.d_recvmsg <- interposed_recvmsg;
    s.dispatch.d_poll <- interposed_poll;
    s.dispatch.d_release <- interposed_release;
    s.dispatch.interposed <- true;
    wake_readers s
  end

let append_altqueue s data =
  (* Used by the send-queue redirection optimization: peer send-queue data is
     concatenated behind the already-restored receive data. *)
  if String.length data > 0 then begin
    if not s.dispatch.interposed then install_altqueue s data
    else begin
      Sockbuf.push s.altq data;
      wake_readers s
    end
  end

(* --- checkpoint-side accessors (used by Zapc_netckpt) --- *)

let recv_queue_contents s = Sockbuf.contents s.recvq

let alt_queue_contents s = Sockbuf.contents s.altq

let unsent_data s = Sockbuf.contents s.sendq

let unacked_data s =
  (* Data between acked (snd_una) and sent (snd_nxt): the in-kernel send
     queue the paper extracts by walking the socket buffers. *)
  match s.tcb with
  | None -> ""
  | Some tcb ->
    let buf = Buffer.create 256 in
    Queue.iter (fun item -> Buffer.add_string buf item.rx_payload) tcb.retx;
    Buffer.contents buf

let pp ppf s =
  Format.fprintf ppf "sock#%d %s %a->%a %s" s.id (kind_to_string s.kind)
    (Format.pp_print_option Addr.pp) s.local (Format.pp_print_option Addr.pp) s.remote
    (tcp_state_to_string (tcp_state s))
