(* TCP protocol engine over Socket.t.

   A deliberately real implementation: three-way handshake, cumulative
   acknowledgements, retransmission with exponential backoff and fast
   retransmit, flow control from the advertised window, a small AIMD
   congestion window, out-of-order reassembly, FIN teardown through the full
   state machine, RST handling, and single-byte urgent data (BSD OOB
   semantics).  The checkpoint-restart mechanism depends on the PCB fields
   [snd_nxt]/[rcv_nxt]/[snd_una] and on the retransmission queue holding
   exactly the acked..sent data, so those invariants are maintained
   carefully. *)

module Simtime = Zapc_sim.Simtime
module Rng = Zapc_sim.Rng
open Socket

let initial_rto = Simtime.ms 200
let max_rto = Simtime.sec 3.0
let max_retries = 15
let time_wait_delay = Simtime.ms 500
let max_cwnd_mss = 64
let max_ooo_entries = 512
let handshake_retries = 8

let fresh_tcb ~iss =
  {
    st = St_closed;
    iss;
    irs = 0;
    snd_una = iss;
    snd_nxt = iss;
    rcv_nxt = 0;
    snd_wnd = 65535;
    cwnd = 10 * 1448;
    rto = initial_rto;
    rto_armed = false;
    rto_gen = 0;
    ooo = [];
    retx = Queue.create ();
    dup_acks = 0;
    fin_rcvd = false;
    fin_queued = false;
    fin_sent = false;
    adv_wnd = 65535;
    retransmits = 0;
    ka_last = 0;
    ka_probes = 0;
    ka_gen = 0;
  }

let random_iss s = 1 + Rng.int s.netctx.nc_rng 0x0FFFFFFF

let the_tcb s =
  match s.tcb with Some tcb -> tcb | None -> invalid_arg "Tcp: not a stream socket"

let addr_pair s =
  match (s.local, s.remote) with
  | Some l, Some r -> (l, r)
  | _ -> invalid_arg "Tcp: socket not fully addressed"

(* Emit one segment.  Every segment except the very first SYN carries an ACK
   of [rcv_nxt] and our current advertised window. *)
let emit s ?(payload = "") ?(syn = false) ?(fin = false) ?(urg = false) ?(rst = false)
    ?(with_ack = true) ~seq () =
  let tcb = the_tcb s in
  let local, remote = addr_pair s in
  let window = advertised_window s in
  tcb.adv_wnd <- window;
  let flags = { Packet.syn; ack = with_ack; fin; rst; urg } in
  let urg_ptr = if urg then seq + String.length payload else 0 in
  let seg =
    { Packet.seq; ack_no = (if with_ack then tcb.rcv_nxt else 0); flags; window; urg_ptr;
      payload }
  in
  s.netctx.nc_tx { Packet.src = local; dst = remote; body = Packet.Tcp_seg seg }

let retx_len item = String.length item.rx_payload + (if item.rx_fin then 1 else 0)

(* --- retransmission timer --- *)

(* The RTO restarts on every ACK that advances [snd_una] — by far the
   hottest (re-)arm path in the stack — so it runs on a cancellable
   [nc_timer] (one per socket, created lazily): re-arming just moves the
   deadline instead of queueing a fresh closure per ACK.  [rto_armed]
   stays authoritative so a fire that raced a disarm is a no-op. *)
let rec arm_rto s =
  let tcb = the_tcb s in
  tcb.rto_armed <- true;
  let tm =
    match s.rto_tm with
    | Some tm -> tm
    | None ->
      let tm = s.netctx.nc_new_timer (fun () -> on_rto s) in
      s.rto_tm <- Some tm;
      tm
  in
  tm.nct_arm_in tcb.rto

and disarm_rto s =
  let tcb = the_tcb s in
  tcb.rto_armed <- false;
  match s.rto_tm with Some tm -> tm.nct_cancel () | None -> ()

and on_rto s =
  let tcb = the_tcb s in
  if tcb.rto_armed && not (Queue.is_empty tcb.retx) then begin
    let item = Queue.peek tcb.retx in
    item.rx_retries <- item.rx_retries + 1;
    tcb.retransmits <- tcb.retransmits + 1;
    s.netctx.nc_stats.ns_retransmits <- s.netctx.nc_stats.ns_retransmits + 1;
    if item.rx_retries > max_retries then abort_connection s Errno.ETIMEDOUT
    else begin
      emit s ~payload:item.rx_payload ~fin:item.rx_fin ~urg:item.rx_urg ~seq:item.rx_seq ();
      tcb.rto <- Simtime.max initial_rto (min (2 * tcb.rto) max_rto);
      tcb.cwnd <- Stdlib.max (2 * mss s) (tcb.cwnd / 2);
      arm_rto s
    end
  end

and abort_connection s err =
  let tcb = the_tcb s in
  (* a half-open child leaving the SYN queue releases its backlog slot *)
  (match (tcb.st, s.parent) with
   | St_syn_received, Some parent when is_listening parent ->
     parent.pending_children <- Stdlib.max 0 (parent.pending_children - 1);
     synq_remove parent s
   | _ -> ());
  tcb.st <- St_closed;
  disarm_rto s;
  Queue.clear tcb.retx;
  if s.err = None then s.err <- Some err;
  s.netctx.nc_unregister s;
  wake_all s

(* --- sending --- *)

and output s =
  let tcb = the_tcb s in
  (match tcb.st with
   | St_established | St_close_wait | St_fin_wait_1 | St_closing | St_last_ack ->
     let m = mss s in
     let continue = ref true in
     while !continue do
       let in_flight = tcb.snd_nxt - tcb.snd_una in
       let window = min tcb.snd_wnd tcb.cwnd - in_flight in
       let avail = Sockbuf.length s.sendq in
       if avail = 0 || window <= 0 then continue := false
       else begin
         let take = min m (min window avail) in
         let payload = Sockbuf.pop s.sendq take in
         let item =
           { rx_seq = tcb.snd_nxt; rx_payload = payload; rx_fin = false; rx_urg = false;
             rx_retries = 0 }
         in
         Queue.add item tcb.retx;
         emit s ~payload ~seq:tcb.snd_nxt ();
         tcb.snd_nxt <- tcb.snd_nxt + String.length payload;
         if not tcb.rto_armed then arm_rto s;
         wake_writers s
       end
     done;
     (* Zero-window persist: if data is stuck behind a closed window and
        nothing is outstanding, push one probe byte past the window. *)
     let in_flight = tcb.snd_nxt - tcb.snd_una in
     if
       Sockbuf.length s.sendq > 0 && in_flight = 0 && min tcb.snd_wnd tcb.cwnd = 0
       && Queue.is_empty tcb.retx
     then begin
       s.netctx.nc_stats.ns_window_stalls <- s.netctx.nc_stats.ns_window_stalls + 1;
       let payload = Sockbuf.pop s.sendq 1 in
       let item =
         { rx_seq = tcb.snd_nxt; rx_payload = payload; rx_fin = false; rx_urg = false;
           rx_retries = 0 }
       in
       Queue.add item tcb.retx;
       emit s ~payload ~seq:tcb.snd_nxt ();
       tcb.snd_nxt <- tcb.snd_nxt + 1;
       if not tcb.rto_armed then arm_rto s
     end;
     maybe_send_fin s
   | St_closed | St_listen | St_syn_sent | St_syn_received | St_fin_wait_2 | St_time_wait
     -> ())

and maybe_send_fin s =
  let tcb = the_tcb s in
  if
    tcb.fin_queued && (not tcb.fin_sent)
    && Sockbuf.is_empty s.sendq
    && tcb.snd_nxt - tcb.snd_una = Queue.fold (fun acc i -> acc + retx_len i) 0 tcb.retx
  then begin
    let item =
      { rx_seq = tcb.snd_nxt; rx_payload = ""; rx_fin = true; rx_urg = false; rx_retries = 0 }
    in
    Queue.add item tcb.retx;
    emit s ~fin:true ~seq:tcb.snd_nxt ();
    tcb.snd_nxt <- tcb.snd_nxt + 1;
    tcb.fin_sent <- true;
    (match tcb.st with
     | St_established -> tcb.st <- St_fin_wait_1
     | St_close_wait -> tcb.st <- St_last_ack
     | St_closed | St_listen | St_syn_sent | St_syn_received | St_fin_wait_1
     | St_fin_wait_2 | St_closing | St_last_ack | St_time_wait -> ());
    if not tcb.rto_armed then arm_rto s
  end

(* Application write path: buffer as much as fits in the send buffer, then
   try to transmit.  Returns the number of bytes accepted (0 = would block),
   or an error if the connection cannot carry data. *)
let send_data s data : (int, Errno.t) result =
  match s.tcb with
  | None -> Error Errno.ENOTCONN
  | Some tcb ->
    (match tcb.st with
     | St_established | St_close_wait ->
       if s.shut_wr then Error Errno.EPIPE
       else begin
         let space = sendq_space s in
         if space = 0 then Ok 0
         else begin
           let take = min space (String.length data) in
           Sockbuf.push s.sendq (String.sub data 0 take);
           output s;
           Ok take
         end
       end
     | St_syn_sent | St_syn_received -> Ok 0 (* not yet connected: block *)
     | St_closed | St_listen | St_fin_wait_1 | St_fin_wait_2 | St_closing | St_last_ack
     | St_time_wait ->
       Error (match s.err with Some e -> e | None -> Errno.EPIPE))

(* Single-byte urgent data (BSD OOB).  Sent as its own one-byte segment with
   URG set; it occupies sequence space like ordinary data. *)
let send_oob s byte : (unit, Errno.t) result =
  match s.tcb with
  | None -> Error Errno.ENOTCONN
  | Some tcb ->
    (match tcb.st with
     | St_established | St_close_wait ->
       let payload = String.make 1 byte in
       let item =
         { rx_seq = tcb.snd_nxt; rx_payload = payload; rx_fin = false; rx_urg = true;
           rx_retries = 0 }
       in
       Queue.add item tcb.retx;
       emit s ~payload ~urg:true ~seq:tcb.snd_nxt ();
       tcb.snd_nxt <- tcb.snd_nxt + 1;
       if not tcb.rto_armed then arm_rto s;
       Ok ()
     | St_closed | St_listen | St_syn_sent | St_syn_received | St_fin_wait_1
     | St_fin_wait_2 | St_closing | St_last_ack | St_time_wait -> Error Errno.EPIPE)

(* --- connection establishment --- *)

let rec handshake_timer s gen tries =
  let tcb = the_tcb s in
  if tcb.rto_gen = gen then
    match tcb.st with
    | St_syn_sent | St_syn_received ->
      if tries > handshake_retries then abort_connection s Errno.ETIMEDOUT
      else begin
        (match tcb.st with
         | St_syn_sent -> emit s ~syn:true ~with_ack:false ~seq:tcb.iss ()
         | St_syn_received -> emit s ~syn:true ~seq:tcb.iss ()
         | St_closed | St_listen | St_established | St_fin_wait_1 | St_fin_wait_2
         | St_close_wait | St_closing | St_last_ack | St_time_wait -> ());
        arm_handshake s gen (tries + 1)
      end
    | St_closed | St_listen | St_established | St_fin_wait_1 | St_fin_wait_2
    | St_close_wait | St_closing | St_last_ack | St_time_wait -> ()

and arm_handshake s gen tries =
  s.netctx.nc_schedule initial_rto (fun () -> handshake_timer s gen tries)

let connect s =
  (* local/remote must be set by the stack before calling *)
  let iss = random_iss s in
  let tcb = fresh_tcb ~iss in
  tcb.st <- St_syn_sent;
  tcb.snd_nxt <- iss + 1;
  s.tcb <- Some tcb;
  emit s ~syn:true ~with_ack:false ~seq:iss ();
  tcb.rto_gen <- tcb.rto_gen + 1;
  arm_handshake s tcb.rto_gen 1

let listen s backlog =
  let tcb = fresh_tcb ~iss:0 in
  tcb.st <- St_listen;
  s.tcb <- Some tcb;
  s.backlog <- Stdlib.max 1 backlog

(* --- closing --- *)

let shutdown_write s =
  match s.tcb with
  | None -> ()
  | Some tcb ->
    if not s.shut_wr then begin
      s.shut_wr <- true;
      match tcb.st with
      | St_established | St_close_wait ->
        tcb.fin_queued <- true;
        output s
      | St_syn_sent -> abort_connection s Errno.EPIPE
      | St_closed | St_listen | St_syn_received | St_fin_wait_1 | St_fin_wait_2
      | St_closing | St_last_ack | St_time_wait -> ()
    end

let enter_time_wait s =
  let tcb = the_tcb s in
  tcb.st <- St_time_wait;
  disarm_rto s;
  s.netctx.nc_schedule time_wait_delay (fun () ->
      if tcb.st = St_time_wait then begin
        tcb.st <- St_closed;
        s.netctx.nc_unregister s
      end)

let close s =
  s.closed <- true;
  match s.tcb with
  | None -> ()
  | Some tcb ->
    (match tcb.st with
     | St_listen ->
       (* Reset connections waiting in the accept queue and the SYN queue. *)
       Queue.iter (fun child -> abort_connection child Errno.ECONNRESET) s.accept_q;
       Queue.clear s.accept_q;
       let syn_children = s.synq in
       s.synq <- [];
       s.pending_children <- 0;
       List.iter (fun child -> abort_connection child Errno.ECONNRESET) syn_children;
       tcb.st <- St_closed;
       s.netctx.nc_unregister s
     | St_syn_sent | St_syn_received ->
       (match (tcb.st, s.parent) with
        | St_syn_received, Some parent when is_listening parent ->
          parent.pending_children <- Stdlib.max 0 (parent.pending_children - 1);
          synq_remove parent s
        | _ -> ());
       tcb.st <- St_closed;
       disarm_rto s;
       s.netctx.nc_unregister s
     | St_established | St_close_wait ->
       s.shut_rd <- true;
       shutdown_write s
     | St_closed -> s.netctx.nc_unregister s
     | St_fin_wait_1 | St_fin_wait_2 | St_closing | St_last_ack | St_time_wait -> ())

(* --- receive path --- *)

let insert_ooo tcb seq payload urg =
  if List.length tcb.ooo < max_ooo_entries then begin
    let rec ins = function
      | [] -> [ (seq, payload, urg) ]
      | ((s0, _, _) as e0) :: rest as l ->
        if seq < s0 then (seq, payload, urg) :: l
        else if seq = s0 then l (* duplicate *)
        else e0 :: ins rest
    in
    tcb.ooo <- ins tcb.ooo
  end

let deliver_stream s data =
  if String.length data > 0 then begin
    Sockbuf.push s.recvq data;
    wake_readers s
  end

(* Accept a data segment: urgent single-byte segments go to the OOB side
   channel (our senders emit OOB as dedicated 1-byte segments); ordinary
   payload joins the stream at rcv_nxt; anything ahead of rcv_nxt waits in
   the reassembly buffer, keeping its URG marking. *)
let rec accept_segment s tcb seq payload urg =
  let len = String.length payload in
  if len > 0 then begin
    if urg && len = 1 && not (oob_inline s) then begin
      if seq = tcb.rcv_nxt then begin
        tcb.rcv_nxt <- tcb.rcv_nxt + 1;
        s.oob_byte <- Some payload.[0];
        wake_readers s;
        drain_ooo s tcb
      end
      else if seq > tcb.rcv_nxt then insert_ooo tcb seq payload true
      (* else: duplicate, ignore *)
    end
    else if seq = tcb.rcv_nxt then begin
      tcb.rcv_nxt <- tcb.rcv_nxt + len;
      deliver_stream s payload;
      drain_ooo s tcb
    end
    else if seq < tcb.rcv_nxt && seq + len > tcb.rcv_nxt then begin
      (* partial duplicate: deliver the new tail *)
      let fresh = String.sub payload (tcb.rcv_nxt - seq) (seq + len - tcb.rcv_nxt) in
      tcb.rcv_nxt <- seq + len;
      deliver_stream s fresh;
      drain_ooo s tcb
    end
    else if seq > tcb.rcv_nxt then insert_ooo tcb seq payload urg
    (* else: pure duplicate, ignore *)
  end

and drain_ooo s tcb =
  match tcb.ooo with
  | (seq, payload, urg) :: rest when seq <= tcb.rcv_nxt ->
    tcb.ooo <- rest;
    accept_segment s tcb seq payload urg;
    drain_ooo s tcb
  | _ -> ()

(* --- keepalive (paper section 5: TCP_KEEPALIVE timers are protocol state) ---

   When SO_KEEPALIVE is set on an established connection, an idle period of
   TCP_KEEPIDLE seconds triggers probes every TCP_KEEPINTVL seconds; after
   TCP_KEEPCNT unanswered probes the connection is reset with ETIMEDOUT.
   The probe is the classic out-of-window empty segment (seq = snd_nxt - 1),
   which the peer answers with a pure ACK.  Any activity resets the idle
   clock; the option itself is saved and restored by the checkpoint, and
   restores call [refresh_keepalive] to re-arm the timer. *)

let keepalive_enabled s = Sockopt.get s.opts Sockopt.SO_KEEPALIVE <> 0

let rec keepalive_tick s gen =
  match s.tcb with
  | None -> ()
  | Some tcb ->
    if gen = tcb.ka_gen && keepalive_enabled s then (
      match tcb.st with
      | St_established | St_close_wait | St_fin_wait_1 | St_fin_wait_2 ->
        let now = s.netctx.nc_now () in
        let keepidle = Simtime.sec (float_of_int (Stdlib.max 1 (Sockopt.get s.opts Sockopt.TCP_KEEPIDLE))) in
        let keepintvl = Simtime.sec (float_of_int (Stdlib.max 1 (Sockopt.get s.opts Sockopt.TCP_KEEPINTVL))) in
        let keepcnt = Stdlib.max 1 (Sockopt.get s.opts Sockopt.TCP_KEEPCNT) in
        let idle = Simtime.sub now tcb.ka_last in
        if Simtime.compare idle keepidle >= 0 then begin
          if tcb.ka_probes >= keepcnt then abort_connection s Errno.ETIMEDOUT
          else begin
            tcb.ka_probes <- tcb.ka_probes + 1;
            emit s ~seq:(tcb.snd_nxt - 1) ();
            s.netctx.nc_schedule keepintvl (fun () -> keepalive_tick s gen)
          end
        end
        else
          s.netctx.nc_schedule (Simtime.sub keepidle idle) (fun () -> keepalive_tick s gen)
      | St_closed | St_listen | St_syn_sent | St_syn_received | St_closing | St_last_ack
      | St_time_wait -> ())

(* (Re-)arm the keepalive timer; idempotent via the generation counter.
   Called when a connection reaches Established and by network-state
   restore after re-applying socket options. *)
let refresh_keepalive s =
  match s.tcb with
  | None -> ()
  | Some tcb ->
    tcb.ka_gen <- tcb.ka_gen + 1;
    tcb.ka_last <- s.netctx.nc_now ();
    tcb.ka_probes <- 0;
    if keepalive_enabled s then
      s.netctx.nc_schedule
        (Simtime.sec (float_of_int (Stdlib.max 1 (Sockopt.get s.opts Sockopt.TCP_KEEPIDLE))))
        (fun () -> keepalive_tick s tcb.ka_gen)

(* Checkpoint freeze/thaw (paper section 5): a frozen pod's network state —
   including its retransmission timers — stops with the pod, and the thawed
   stack retransmits with a fresh backoff.  Without this, periodic
   checkpointing lets RTO backoff and the retry budget accumulate across
   freeze windows until a perfectly healthy connection aborts with
   ETIMEDOUT. *)
let net_freeze s = match s.tcb with Some _ -> disarm_rto s | None -> ()

let net_thaw s =
  match s.tcb with
  | None -> ()
  | Some tcb ->
    if not (Queue.is_empty tcb.retx) then begin
      (* Kick: retransmit the head right away, like the restore path does
         after refilling the send queue.  If the freeze window was shorter
         than the (reset) RTO the timer alone would be disarmed again by
         the next freeze before ever firing, deferring the retransmission
         forever under back-to-back checkpoint epochs. *)
      let item = Queue.peek tcb.retx in
      item.rx_retries <- 0;
      tcb.rto <- initial_rto;
      emit s ~payload:item.rx_payload ~fin:item.rx_fin ~urg:item.rx_urg
        ~seq:item.rx_seq ();
      arm_rto s
    end

let send_pure_ack s = emit s ~seq:(the_tcb s).snd_nxt ()

(* ACK bookkeeping shared by all synchronized states. *)
let process_ack s tcb ack_no window had_payload =
  tcb.snd_wnd <- window;
  if ack_no > tcb.snd_una && ack_no <= tcb.snd_nxt then begin
    tcb.snd_una <- ack_no;
    tcb.dup_acks <- 0;
    tcb.rto <- initial_rto;
    (* Drop fully acknowledged items from the retransmission queue. *)
    let continue = ref true in
    while !continue && not (Queue.is_empty tcb.retx) do
      let item = Queue.peek tcb.retx in
      if item.rx_seq + retx_len item <= tcb.snd_una then ignore (Queue.pop tcb.retx)
      else continue := false
    done;
    tcb.cwnd <- min (tcb.cwnd + mss s) (max_cwnd_mss * mss s);
    if Queue.is_empty tcb.retx then disarm_rto s else arm_rto s;
    wake_writers s
  end
  else if ack_no = tcb.snd_una && not had_payload && not (Queue.is_empty tcb.retx) then begin
    tcb.dup_acks <- tcb.dup_acks + 1;
    if tcb.dup_acks = 3 then begin
      let item = Queue.peek tcb.retx in
      tcb.retransmits <- tcb.retransmits + 1;
      s.netctx.nc_stats.ns_retransmits <- s.netctx.nc_stats.ns_retransmits + 1;
      emit s ~payload:item.rx_payload ~fin:item.rx_fin ~urg:item.rx_urg ~seq:item.rx_seq ();
      tcb.cwnd <- Stdlib.max (2 * mss s) (tcb.cwnd / 2)
    end
  end

let all_sent_acked tcb = tcb.snd_una = tcb.snd_nxt

(* SYN arriving at a listening socket: create the child connection
   (SYN queue), reply SYN+ACK; it reaches the accept queue when the
   handshake completes. *)
let on_listener_segment s (src : Addr.t) (dst : Addr.t) (seg : Packet.tcp_seg) =
  if seg.flags.syn && not seg.flags.ack then begin
    if Queue.length s.accept_q + s.pending_children >= s.backlog then () (* drop *)
    else begin
      let child = s.netctx.nc_new_socket Stream in
      Sockopt.copy_into ~src:s.opts ~dst:child.opts;
      Sockopt.set child.opts Sockopt.SO_NONBLOCK 0;
      child.local <- Some dst;
      child.remote <- Some src;
      child.parent <- Some s;
      child.born_by_accept <- true;
      let iss = random_iss child in
      let tcb = fresh_tcb ~iss in
      tcb.st <- St_syn_received;
      tcb.irs <- seg.seq;
      tcb.rcv_nxt <- seg.seq + 1;
      tcb.snd_nxt <- iss + 1;
      tcb.snd_wnd <- seg.window;
      child.tcb <- Some tcb;
      s.pending_children <- s.pending_children + 1;
      synq_add s child;
      child.netctx.nc_register_estab child;
      emit child ~syn:true ~seq:iss ();
      tcb.rto_gen <- tcb.rto_gen + 1;
      arm_handshake child tcb.rto_gen 1
    end
  end

(* Main segment input for a socket in any synchronized (non-listen) state. *)
let on_segment s (seg : Packet.tcp_seg) =
  match s.tcb with
  | None -> ()
  | Some tcb ->
    if seg.flags.rst then begin
      let err =
        match tcb.st with St_syn_sent -> Errno.ECONNREFUSED | _ -> Errno.ECONNRESET
      in
      (match tcb.st with
       | St_closed | St_time_wait -> ()
       | _ -> abort_connection s err)
    end
    else begin
      match tcb.st with
      | St_syn_sent ->
        if seg.flags.syn && seg.flags.ack && seg.ack_no = tcb.snd_nxt then begin
          tcb.irs <- seg.seq;
          tcb.rcv_nxt <- seg.seq + 1;
          tcb.snd_una <- seg.ack_no;
          tcb.snd_wnd <- seg.window;
          tcb.st <- St_established;
          tcb.rto_gen <- tcb.rto_gen + 1;  (* cancel handshake timer *)
          refresh_keepalive s;
          send_pure_ack s;
          wake_all s;
          output s
        end
        else if seg.flags.syn && not seg.flags.ack then begin
          (* simultaneous open: not modeled; reset *)
          abort_connection s Errno.ECONNRESET
        end
      | St_syn_received ->
        if seg.flags.ack && seg.ack_no = tcb.snd_nxt then begin
          tcb.st <- St_established;
          tcb.snd_wnd <- seg.window;
          tcb.snd_una <- seg.ack_no;
          tcb.rto_gen <- tcb.rto_gen + 1;
          refresh_keepalive s;
          (* surface on the listener's accept queue *)
          (match s.parent with
           | Some parent when is_listening parent ->
             parent.pending_children <- Stdlib.max 0 (parent.pending_children - 1);
             synq_remove parent s;
             Queue.add s parent.accept_q;
             wake_readers parent
           | Some _ | None -> ());
          (* the ACK may carry data *)
          if String.length seg.payload > 0 then begin
            accept_segment s tcb seg.seq seg.payload seg.flags.urg;
            send_pure_ack s
          end
        end
        else if seg.flags.syn && not seg.flags.ack then begin
          if seg.seq + 1 = tcb.rcv_nxt then
            (* retransmitted SYN: re-send SYN+ACK *)
            emit s ~syn:true ~seq:tcb.iss ()
          else begin
            (* brand-new handshake on this 4-tuple (e.g. a connect re-executed
               after a restart): drop the stale half-open child and start the
               handshake over on the listener *)
            let parent = s.parent and local = s.local and remote = s.remote in
            abort_connection s Errno.ECONNRESET;
            match (parent, local, remote) with
            | Some p, Some dst, Some src when is_listening p ->
              on_listener_segment p src dst seg
            | _ -> ()
          end
        end
      | St_established | St_fin_wait_1 | St_fin_wait_2 | St_close_wait | St_closing
      | St_last_ack | St_time_wait ->
        (* any activity feeds the keepalive idle clock *)
        tcb.ka_last <- s.netctx.nc_now ();
        tcb.ka_probes <- 0;
        let had_payload = String.length seg.payload > 0 in
        if seg.flags.ack then process_ack s tcb seg.ack_no seg.window had_payload;
        (* payload (incl. urgent handling) *)
        let ooo_before = List.length tcb.ooo in
        if had_payload && not s.shut_rd then
          accept_segment s tcb seg.seq seg.payload seg.flags.urg
        else if had_payload && s.shut_rd then begin
          (* data after shutdown(RD): consume sequence space silently *)
          if seg.seq = tcb.rcv_nxt then tcb.rcv_nxt <- tcb.rcv_nxt + String.length seg.payload
        end;
        (* FIN *)
        let fin_now = seg.flags.fin && seg.seq + String.length seg.payload = tcb.rcv_nxt in
        if fin_now && not tcb.fin_rcvd then begin
          tcb.fin_rcvd <- true;
          tcb.rcv_nxt <- tcb.rcv_nxt + 1;
          (match tcb.st with
           | St_established -> tcb.st <- St_close_wait
           | St_fin_wait_1 ->
             if all_sent_acked tcb then enter_time_wait s else tcb.st <- St_closing
           | St_fin_wait_2 -> enter_time_wait s
           | St_closed | St_listen | St_syn_sent | St_syn_received | St_close_wait
           | St_closing | St_last_ack | St_time_wait -> ());
          wake_readers s
        end;
        (* state transitions completed by ACK of our FIN *)
        if tcb.fin_sent && all_sent_acked tcb then begin
          match tcb.st with
          | St_fin_wait_1 -> tcb.st <- St_fin_wait_2
          | St_closing -> enter_time_wait s
          | St_last_ack ->
            tcb.st <- St_closed;
            disarm_rto s;
            s.netctx.nc_unregister s
          | St_closed | St_listen | St_syn_sent | St_syn_received | St_established
          | St_fin_wait_2 | St_close_wait | St_time_wait -> ()
        end;
        (* acknowledge anything that consumed sequence space or arrived out
           of order *)
        let ooo_grew = List.length tcb.ooo > ooo_before in
        let probe = (not had_payload) && (not seg.flags.syn) && (not seg.flags.fin)
                    && seg.seq < tcb.rcv_nxt in
        if (had_payload || fin_now || ooo_grew || probe) && tcb.st <> St_closed then
          send_pure_ack s;
        if seg.flags.ack then output s
      | St_closed -> ()
      | St_listen -> () (* handled by on_listener_segment *)
    end

(* Rebuild a half-open (SYN_RECEIVED) child at restart.  The caller has set
   local/remote and attached the socket to its restored listener (parent,
   pending_children, synq); this reconstructs the PCB from the checkpointed
   sequence numbers, registers the 4-tuple for demux, and re-emits the
   SYN+ACK so the peer's ACK — or its retransmitted SYN, or first data
   segment — completes the handshake exactly as it would have without the
   restart. *)
let restore_syn_received s ~iss ~irs =
  let tcb = fresh_tcb ~iss in
  tcb.st <- St_syn_received;
  tcb.irs <- irs;
  tcb.rcv_nxt <- irs + 1;
  tcb.snd_nxt <- iss + 1;
  s.tcb <- Some tcb;
  s.netctx.nc_register_estab s;
  emit s ~syn:true ~seq:iss ();
  tcb.rto_gen <- tcb.rto_gen + 1;
  arm_handshake s tcb.rto_gen 1

(* Receiver-side window update: called after the application drains the
   receive queue, so a sender stalled on a zero window resumes. *)
let after_app_read s =
  match s.tcb with
  | None -> ()
  | Some tcb ->
    (match tcb.st with
     | St_established | St_fin_wait_1 | St_fin_wait_2 ->
       let w = advertised_window s in
       if tcb.adv_wnd < mss s && w >= mss s then send_pure_ack s
     | St_closed | St_listen | St_syn_sent | St_syn_received | St_close_wait
     | St_closing | St_last_ack | St_time_wait -> ())
