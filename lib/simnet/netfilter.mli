(** The simulation analogue of Linux Netfilter as ZapC uses it: an Agent
    blocks all traffic to and from a pod's (real) addresses for the duration
    of a checkpoint, so the network state cannot change while being saved.
    Packets touching a blocked address are silently dropped in both
    directions; reliable protocols recover by retransmission once the block
    lifts (paper section 5: "in-flight data can be safely ignored"). *)

type t

val create : unit -> t
val block : t -> Addr.ip -> unit
val unblock : t -> Addr.ip -> unit
val is_blocked : t -> Addr.ip -> bool

val blocked_count : t -> int
(** Number of block rules currently installed.  A quiescent cluster must
    have zero — any leftover rule is a leak of an aborted operation (the
    chaos harness asserts this after every scenario). *)

val blocked_ips : t -> Addr.ip list

val permits : t -> Packet.t -> bool
(** Consulted by the fabric on both egress and ingress. *)

val drop_count : t -> int
