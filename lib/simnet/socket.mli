(** The socket abstraction — the communication endpoint the paper's
    network-state checkpoint-restart is defined against.

    Each socket carries (a) a parameter table ({!Sockopt}), (b) data queues —
    receive, send, datagram, and the {e alternate receive queue} used at
    restart — and (c) for stream sockets a TCP control block (the paper's
    PCB, holding the sent/recv/acked sequence numbers).

    Application-facing operations go through a per-socket {e dispatch
    vector} (recvmsg / poll / release), mirroring how ZapC interposes on the
    kernel's socket operations: at restart the restored receive-queue
    contents are deposited in [altq] and interposed implementations serve
    that data first, uninstalling themselves once it is depleted. *)

module Simtime = Zapc_sim.Simtime
module Rng = Zapc_sim.Rng

type kind = Stream | Dgram | Raw of int

val kind_to_string : kind -> string

type tcp_state =
  | St_closed
  | St_listen
  | St_syn_sent
  | St_syn_received
  | St_established
  | St_fin_wait_1
  | St_fin_wait_2
  | St_close_wait
  | St_closing
  | St_last_ack
  | St_time_wait

val tcp_state_to_string : tcp_state -> string

(** One unacknowledged transmission unit: the retransmission queue holds
    exactly the acked..sent bytes the checkpoint extracts as the in-kernel
    send queue. *)
type retx_item = {
  rx_seq : int;
  rx_payload : string;
  rx_fin : bool;
  rx_urg : bool;
  mutable rx_retries : int;
}

(** TCP protocol control block.  [snd_nxt] is the paper's "sent", [rcv_nxt]
    its "recv", [snd_una] its "acked" — the necessary-and-sufficient state
    of section 5. *)
type tcb = {
  mutable st : tcp_state;
  mutable iss : int;
  mutable irs : int;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable rcv_nxt : int;
  mutable snd_wnd : int;
  mutable cwnd : int;
  mutable rto : Simtime.t;
  mutable rto_armed : bool;
  mutable rto_gen : int;
  mutable ooo : (int * string * bool) list;
      (** out-of-order reassembly, seq-sorted; the flag preserves URG across
          reordering *)
  retx : retx_item Queue.t;
  mutable dup_acks : int;
  mutable fin_rcvd : bool;
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  mutable adv_wnd : int;  (** window advertised in our last segment *)
  mutable retransmits : int;
  mutable ka_last : int;  (** keepalive: time of last activity *)
  mutable ka_probes : int;
  mutable ka_gen : int;
}

type recv_flags = { peek : bool; oob : bool; dontwait : bool }

val plain_recv : recv_flags

type poll_events = {
  readable : bool;
  writable : bool;
  pollerr : bool;
  hangup : bool;
}

type recv_result =
  | Rv_data of string
  | Rv_from of Addr.t * string
  | Rv_eof
  | Rv_block
  | Rv_err of Errno.t

type t = {
  id : int;
  kind : kind;
  opts : Sockopt.table;
  mutable local : Addr.t option;
  mutable remote : Addr.t option;
  mutable src_hint : Addr.ip option;  (** preferred source address (pod rip) *)
  recvq : Sockbuf.t;
  sendq : Sockbuf.t;
  altq : Sockbuf.t;  (** the alternate receive queue installed at restart *)
  mutable oob_byte : char option;  (** BSD-style out-of-band byte *)
  dgrams : (Addr.t * string) Queue.t;
  mutable dgram_bytes : int;
  mutable tcb : tcb option;
  accept_q : t Queue.t;
  mutable backlog : int;
  mutable pending_children : int;  (** SYN_RECEIVED children not yet accepted *)
  mutable synq : t list;  (** the SYN queue: those children, arrival order *)
  mutable parent : t option;
  mutable born_by_accept : bool;  (** provenance, drives the restart schedule *)
  mutable err : Errno.t option;
  mutable shut_rd : bool;
  mutable shut_wr : bool;
  mutable closed : bool;
  mutable rd_waiters : (unit -> unit) list;
  mutable wr_waiters : (unit -> unit) list;
  mutable rto_tm : nc_timer option;  (* lazily-created retransmission timer *)
  dispatch : dispatch;
  netctx : netctx;
}

(** The interposable dispatch vector (recvmsg / poll / release). *)
and dispatch = {
  mutable d_recvmsg : t -> recv_flags -> int -> recv_result;
  mutable d_poll : t -> poll_events;
  mutable d_release : t -> unit;
  mutable interposed : bool;
}

(** Capabilities the protocol engines need from the owning network stack
    (clock, timers, transmit, demux registration), stored on the socket so
    {!Tcp} needs no dependency on {!Netstack}. *)
and netctx = {
  nc_now : unit -> Simtime.t;
  nc_schedule : Simtime.t -> (unit -> unit) -> unit;
  nc_new_timer : (unit -> unit) -> nc_timer;
  nc_tx : Packet.t -> unit;
  nc_new_socket : kind -> t;
  nc_register_estab : t -> unit;
  nc_unregister : t -> unit;
  nc_rng : Rng.t;
  nc_stats : net_stats;
}

(** A cancellable timer handed out by the owning stack: re-arming moves the
    deadline instead of queueing another closure, so hot restart paths (RTO
    on every ACK) stop flooding the event queue with dead closures. *)
and nc_timer = {
  nct_arm_in : Simtime.t -> unit;
  nct_cancel : unit -> unit;
}

(** Per-stack aggregate transport counters (retransmissions fired,
    zero-window persist stalls entered), shared by every socket of the
    owning {!Netstack} and sampled by the observability layer. *)
and net_stats = {
  mutable ns_retransmits : int;
  mutable ns_window_stalls : int;
}

val create : id:int -> kind:kind -> netctx:netctx -> t

(** {1 Derived properties} *)

val rcvbuf : t -> int
val sndbuf : t -> int
val mss : t -> int
val nonblocking : t -> bool
val oob_inline : t -> bool
val advertised_window : t -> int
val sendq_space : t -> int
val tcp_state : t -> tcp_state
val is_listening : t -> bool

(** {1 Wakeups (condition-variable style)} *)

val wake_readers : t -> unit
val wake_writers : t -> unit
val wake_all : t -> unit
val wait_readable : t -> (unit -> unit) -> unit
val wait_writable : t -> (unit -> unit) -> unit

(** {1 SYN-queue maintenance (listener half-open children)} *)

val synq_add : t -> t -> unit
val synq_remove : t -> t -> unit

(** {1 Alternate receive queue interposition (paper section 5)} *)

val install_altqueue : t -> string -> unit
(** Deposit restored receive data and interpose the dispatch vector so the
    application consumes it before anything newer; the original methods are
    reinstated once the queue drains (no steady-state overhead). *)

val append_altqueue : t -> string -> unit
(** Send-queue redirection: concatenate redirected peer data behind the
    already-restored receive data. *)

val uninstall_interposition : t -> unit

(** {1 Checkpoint-side accessors (used by Zapc_netckpt)} *)

val recv_queue_contents : t -> string
val alt_queue_contents : t -> string
val unsent_data : t -> string

val unacked_data : t -> string
(** The data between acked (snd_una) and sent (snd_nxt): the in-kernel send
    queue the paper extracts by walking the socket buffers. *)

val pp : Format.formatter -> t -> unit
