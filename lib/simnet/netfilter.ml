(* The simulation analogue of Linux Netfilter as ZapC uses it: an Agent
   blocks all network traffic to and from a pod's (real) addresses for the
   duration of a checkpoint, so the network state cannot change while it is
   being saved.  Packets hitting a blocked address are silently dropped, in
   both directions; reliable protocols recover by retransmission after the
   block is lifted (paper section 5, "in-flight data can be safely
   ignored"). *)

type t = {
  blocked : (Addr.ip, unit) Hashtbl.t;
  mutable drops : int;
}

let create () = { blocked = Hashtbl.create 16; drops = 0 }

let block t ip = Hashtbl.replace t.blocked ip ()
let unblock t ip = Hashtbl.remove t.blocked ip
let is_blocked t ip = Hashtbl.mem t.blocked ip
let blocked_count t = Hashtbl.length t.blocked
let blocked_ips t = Hashtbl.fold (fun ip () acc -> ip :: acc) t.blocked [] |> List.sort Int.compare

let permits t (p : Packet.t) =
  let ok = not (is_blocked t p.src.ip || is_blocked t p.dst.ip) in
  if not ok then t.drops <- t.drops + 1;
  ok

let drop_count t = t.drops
