(** Pods (PrOcess Domains): the thin virtualization layer (paper section 3).

    A pod encapsulates the processes of one application endpoint, gives them
    a virtual private namespace — PIDs, network addresses, optionally time —
    and is the unit of checkpoint, migration and restart.  Virtualization is
    implemented purely by system-call interposition (a {!Zapc_simos.Proc.filter}
    installed on every member process), so the underlying kernel runs
    unmodified, mirroring ZapC's loadable-kernel-module design.

    The virtual address ([vip]) never changes; the real address ([rip]) is
    re-allocated on whatever node currently hosts the pod, and the namespace
    map (installed by the Agent, rewritten on migration) translates between
    them in both directions. *)

module Simtime = Zapc_sim.Simtime
module Addr = Zapc_simnet.Addr
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc

type t = {
  pod_id : int;  (** global, stable across migrations *)
  name : string;
  vip : Addr.ip;  (** the address applications see; never changes *)
  mutable rip : Addr.ip;  (** the real address on the current node *)
  mutable kernel : Kernel.t;
  ns : Namespace.t;
  mutable time_bias : Simtime.t;  (** added to reported clocks after restart *)
  mutable virtualize_time : bool;
  mutable frozen : bool;
}

val create : pod_id:int -> name:string -> vip:Addr.ip -> rip:Addr.ip -> Kernel.t -> t
(** Create an empty pod: attaches [rip] to the node's network stack and
    registers the pod in the global live-pod registry. *)

val find : int -> t option
(** Look up a live pod by id (a pod lives on exactly one node at a time). *)

val set_vip_map : t -> (Addr.ip * Addr.ip) list -> unit
(** Install the application-wide virtual->real address map; the pod's own
    entry is always included. *)

val current_vip_map : unit -> (Addr.ip * Addr.ip) list
(** The (vip, rip) binding of every live pod, for extending a restored
    pod's partial map with the rest of the world. *)

val rebind_vip : vip:Addr.ip -> rip:Addr.ip -> unit
(** Gratuitous ARP: repoint [vip] at [rip] in the namespace of every live
    pod that has an entry for it.  Called when a restored or migrated pod
    re-acquires its virtual address at a new real address, so pods outside
    the restored set (e.g. clients of a restored server) keep resolving. *)

val adopt : t -> Proc.t -> unit
(** Bring a process into the pod: assign the next vpid, install the
    interposition filter. *)

val adopt_with_vpid : t -> Proc.t -> vpid:int -> unit
(** Restore path: re-bind a process to its checkpointed vpid. *)

val spawn : t -> program:string -> args:Zapc_codec.Value.t -> Proc.t
(** Spawn a registered program directly inside the pod. *)

val members : t -> (int * Proc.t) list
(** Live member processes, ordered by vpid. *)

val members_all : t -> (int * Proc.t) list
(** Every member process including zombies, ordered by vpid — what a
    checkpoint must record (an unreaped exit status is application
    state). *)

val member_count : t -> int

val suspend : t -> unit
(** SIGSTOP every member (checkpoint step 1; the network block is done
    separately by the Agent through netfilter). *)

val resume : t -> unit

val destroy : t -> unit
(** Kill members, release the real address, drop from the registry (after
    migration, or on abort). *)

val apply_time_bias : t -> saved_clock:Simtime.t -> current_clock:Simtime.t -> unit
(** Time virtualization (paper section 5): bias reported clocks by
    checkpoint-time minus restart-time so application-level timeout
    mechanisms do not fire spuriously.  No-op if [virtualize_time] is off. *)

val total_memory : t -> int

val fs_root : t -> string
(** The pod's chroot-style directory on the shared file system; the syscall
    filter prefixes every member file path with it.  It follows the pod
    (not the node), so files remain reachable after migration without being
    part of the checkpoint image. *)

val pp : Format.formatter -> t -> unit
