(** The pod's virtual private namespace (paper section 3).

    Identifiers visible inside a pod are virtual: PIDs and network addresses
    stay constant for the life of the application while the namespace remaps
    them to the real identifiers of whatever node the pod currently runs on.
    This decouples applications from the host and makes migration to nodes
    with different PID spaces and IP subnets possible. *)

module Addr = Zapc_simnet.Addr

type t = {
  vpid_to_rpid : (int, int) Hashtbl.t;
  rpid_to_vpid : (int, int) Hashtbl.t;
  mutable next_vpid : int;
  mutable vip_to_rip : (Addr.ip * Addr.ip) list;
}

val create : unit -> t

(** {1 PIDs} *)

val fresh_vpid : t -> int -> int
(** [fresh_vpid t rpid] assigns the next virtual pid to a real pid. *)

val bind_vpid : t -> vpid:int -> rpid:int -> unit
(** Restore path: re-establish a checkpointed vpid binding. *)

val rpid_of_vpid : t -> int -> int option
val vpid_of_rpid : t -> int -> int option
val forget_rpid : t -> int -> unit
val vpids : t -> int list

(** {1 Network addresses} *)

val set_vip_map : t -> (Addr.ip * Addr.ip) list -> unit

val rebind_vip : t -> vip:Addr.ip -> rip:Addr.ip -> unit
(** Gratuitous-ARP-style update: repoint an existing [vip] entry at a new
    real address.  Namespaces without the entry are left untouched. *)

val rip_of_vip : t -> Addr.ip -> Addr.ip
(** Unknown addresses pass through unchanged (out-of-cluster traffic is out
    of scope, per the paper). *)

val vip_of_rip : t -> Addr.ip -> Addr.ip
val translate_addr_out : t -> Addr.t -> Addr.t
val translate_addr_in : t -> Addr.t -> Addr.t
val to_value : t -> Zapc_codec.Value.t
