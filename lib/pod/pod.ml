(* Pods (PrOcess Domains): the thin virtualization layer.

   A pod encapsulates the processes of one application endpoint, gives them
   a virtual private namespace (PIDs, network addresses, optionally time),
   and is the unit of checkpoint, migration and restart.  Virtualization is
   implemented purely by system-call interposition — the [filter] built here
   is installed on every member process — so the underlying kernel is used
   unmodified, mirroring ZapC's loadable-kernel-module design. *)

module Simtime = Zapc_sim.Simtime
module Addr = Zapc_simnet.Addr
module Fdtable = Zapc_simos.Fdtable
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Signal = Zapc_simos.Signal
module Syscall = Zapc_simos.Syscall

type t = {
  pod_id : int;  (* global, stable across migrations *)
  name : string;
  vip : Addr.ip;  (* the address applications see; never changes *)
  mutable rip : Addr.ip;  (* the real address on the current node *)
  mutable kernel : Kernel.t;
  ns : Namespace.t;
  mutable time_bias : Simtime.t;  (* added to reported clocks after restart *)
  mutable virtualize_time : bool;
  mutable frozen : bool;
}

(* chroot-style private file namespace: every path a pod process uses is
   rooted under the pod's directory on the shared file system; the prefix
   follows the pod (not the node), so files are reachable after migration
   without being part of the checkpoint image (paper section 3) *)
let fs_root pod = Printf.sprintf "/pod%d" pod.pod_id
let chroot pod path =
  let path = if String.length path = 0 || path.[0] <> '/' then "/" ^ path else path in
  fs_root pod ^ path

let unchroot pod path =
  let root = fs_root pod in
  let n = String.length root in
  if String.length path >= n && String.equal (String.sub path 0 n) root then
    String.sub path n (String.length path - n)
  else path

let registry : (int, t) Hashtbl.t = Hashtbl.create 16
(* pod_id -> live pod instance; a pod appears here on exactly one node at a
   time (it is re-created at the destination on migration). *)

let find pod_id = Hashtbl.find_opt registry pod_id

(* --- the system-call filter (virtual <-> real translation) --- *)

let rec filter_of pod : Proc.filter =
  { f_pre = (fun proc sc -> pre pod proc sc);
    f_post = (fun proc sc out -> post pod proc sc out);
    f_spawn_child = (fun _parent child -> adopt pod child) }

and pre pod _proc (sc : Syscall.t) : Syscall.t =
  match sc with
  | Syscall.Bind (fd, a) ->
    let ip = if Addr.equal_ip a.ip Addr.any then pod.rip else Namespace.rip_of_vip pod.ns a.ip in
    Syscall.Bind (fd, { a with Addr.ip })
  | Syscall.Connect (fd, a) -> Syscall.Connect (fd, Namespace.translate_addr_out pod.ns a)
  | Syscall.Sendto (fd, a, d) ->
    Syscall.Sendto (fd, Namespace.translate_addr_out pod.ns a, d)
  | Syscall.Kill (vpid, sg) ->
    let rpid =
      match Namespace.rpid_of_vpid pod.ns vpid with Some r -> r | None -> -1
    in
    Syscall.Kill (rpid, sg)
  | Syscall.Waitpid vpid ->
    let rpid =
      match Namespace.rpid_of_vpid pod.ns vpid with Some r -> r | None -> -1
    in
    Syscall.Waitpid rpid
  | Syscall.Gm_open a ->
    let ip =
      if Addr.equal_ip a.Addr.ip Addr.any then pod.rip
      else Namespace.rip_of_vip pod.ns a.Addr.ip
    in
    Syscall.Gm_open { a with Addr.ip }
  | Syscall.Gm_send (fd, a, d) ->
    Syscall.Gm_send (fd, Namespace.translate_addr_out pod.ns a, d)
  | Syscall.Fs_put (path, d) -> Syscall.Fs_put (chroot pod path, d)
  | Syscall.Fs_append (path, d) -> Syscall.Fs_append (chroot pod path, d)
  | Syscall.Fs_get path -> Syscall.Fs_get (chroot pod path)
  | Syscall.Fs_del path -> Syscall.Fs_del (chroot pod path)
  | Syscall.Fs_list prefix -> Syscall.Fs_list (chroot pod prefix)
  | Syscall.Getpid | Syscall.Clock_gettime | Syscall.Nanosleep _ | Syscall.Alarm_set _
  | Syscall.Alarm_cancel | Syscall.Alarm_remaining | Syscall.Mem_alloc _
  | Syscall.Mem_free _ | Syscall.Spawn _ | Syscall.Sock_create _ | Syscall.Listen _
  | Syscall.Accept _ | Syscall.Send _ | Syscall.Send_oob _ | Syscall.Recv _
  | Syscall.Recvfrom _ | Syscall.Shutdown _ | Syscall.Close _ | Syscall.Getsockopt _
  | Syscall.Setsockopt _ | Syscall.Getsockname _ | Syscall.Getpeername _ | Syscall.Poll _
  | Syscall.Pipe | Syscall.Read _ | Syscall.Write _ | Syscall.Gm_recv _
  | Syscall.Log _ -> sc

and post pod proc (sc : Syscall.t) (out : Syscall.outcome) : Syscall.outcome =
  match (sc, out) with
  | Syscall.Getpid, Syscall.Ret (Syscall.Rint rpid) ->
    (match Namespace.vpid_of_rpid pod.ns rpid with
     | Some vpid -> Syscall.Ret (Syscall.Rint vpid)
     | None -> out)
  | Syscall.Spawn _, Syscall.Ret (Syscall.Rint rpid) ->
    (match Namespace.vpid_of_rpid pod.ns rpid with
     | Some vpid -> Syscall.Ret (Syscall.Rint vpid)
     | None -> out)
  | Syscall.Clock_gettime, Syscall.Ret (Syscall.Rtime t) ->
    if pod.virtualize_time then Syscall.Ret (Syscall.Rtime (Simtime.add t pod.time_bias))
    else out
  | (Syscall.Getsockname _ | Syscall.Getpeername _), Syscall.Ret (Syscall.Raddr a) ->
    Syscall.Ret (Syscall.Raddr (Namespace.translate_addr_in pod.ns a))
  | Syscall.Accept _, Syscall.Ret (Syscall.Raccept (fd, a)) ->
    Syscall.Ret (Syscall.Raccept (fd, Namespace.translate_addr_in pod.ns a))
  | (Syscall.Recvfrom _ | Syscall.Gm_recv _), Syscall.Ret (Syscall.Rfrom (a, d)) ->
    Syscall.Ret (Syscall.Rfrom (Namespace.translate_addr_in pod.ns a, d))
  | Syscall.Fs_list _, Syscall.Ret (Syscall.Rnames names) ->
    Syscall.Ret (Syscall.Rnames (List.map (unchroot pod) names))
  | Syscall.Sock_create _, Syscall.Ret (Syscall.Rint fd) ->
    (* New sockets source traffic from the pod's real address. *)
    (match Fdtable.socket proc.Proc.fds fd with
     | Some s -> s.Zapc_simnet.Socket.src_hint <- Some pod.rip
     | None -> ());
    out
  | _, (Syscall.Ret _ | Syscall.Err _ | Syscall.Started | Syscall.Done_compute) -> out

(* --- membership --- *)

and adopt pod (proc : Proc.t) =
  let _vpid = Namespace.fresh_vpid pod.ns proc.pid in
  proc.pod <- Some pod.pod_id;
  proc.filter <- Some (filter_of pod)

let adopt_with_vpid pod (proc : Proc.t) ~vpid =
  Namespace.bind_vpid pod.ns ~vpid ~rpid:proc.pid;
  proc.pod <- Some pod.pod_id;
  proc.filter <- Some (filter_of pod)

let create ~pod_id ~name ~vip ~rip kernel =
  let pod =
    { pod_id; name; vip; rip; kernel; ns = Namespace.create (); time_bias = Simtime.zero;
      virtualize_time = true; frozen = false }
  in
  Namespace.set_vip_map pod.ns [ (vip, rip) ];
  Zapc_simnet.Netstack.add_ip (Kernel.netstack kernel) rip;
  Hashtbl.replace registry pod_id pod;
  pod

(* Install the application-wide virtual->real address map (the Manager
   distributes this; it is rewritten on migration). Always contains our own
   entry. *)
let set_vip_map pod map =
  let map =
    if List.mem_assoc pod.vip map then map else (pod.vip, pod.rip) :: map
  in
  Namespace.set_vip_map pod.ns map

(* The current (vip, rip) binding of every live pod.  The restore path
   extends its partial map with this so a restored pod can still reach
   application pods outside the restored set. *)
let current_vip_map () =
  Hashtbl.fold (fun _ (p : t) acc -> (p.vip, p.rip) :: acc) registry []

(* Gratuitous ARP: a pod re-acquired its virtual address at a new real
   address (restart on another node, live migration).  Every live pod that
   knows the vip — including ones outside the restored application, e.g. a
   client population talking to a restored server — repoints its namespace
   entry, exactly like hosts updating their ARP caches. *)
let rebind_vip ~vip ~rip =
  Hashtbl.iter (fun _ (p : t) -> Namespace.rebind_vip p.ns ~vip ~rip) registry

let spawn pod ~program ~args =
  let proc = Kernel.create_proc pod.kernel (Zapc_simos.Program.spawn program args) in
  adopt pod proc;
  Kernel.enqueue pod.kernel proc;
  proc

(* Every member the checkpoint must record, zombies included: an unreaped
   child's exit status is application state — resurrecting it as runnable
   after a restart (or dropping it so the parent's wait hangs) corrupts the
   pod.  Live-only paths (suspend/resume/destroy/accounting) use [members]
   below. *)
let members_all pod =
  Namespace.vpids pod.ns
  |> List.filter_map (fun vpid ->
         match Namespace.rpid_of_vpid pod.ns vpid with
         | None -> None
         | Some rpid ->
           (match Kernel.find_proc pod.kernel rpid with
            | Some p -> Some (vpid, p)
            | None -> None))

let members pod =
  Namespace.vpids pod.ns
  |> List.filter_map (fun vpid ->
         match Namespace.rpid_of_vpid pod.ns vpid with
         | None -> None
         | Some rpid ->
           (match Kernel.find_proc pod.kernel rpid with
            | Some p when Proc.is_alive p -> Some (vpid, p)
            | Some _ | None -> None))

let member_count pod = List.length (members pod)

(* Freeze every member with SIGSTOP (paper: step 1 of the Agent checkpoint
   procedure; network blocking is done separately by the Agent through
   netfilter). *)
(* Suspend/resume freeze the pod's network state along with its processes:
   retransmission timers stop while the pod is frozen and restart with a
   fresh backoff when it thaws, so repeated checkpoint freeze windows never
   consume a connection's retry budget (paper section 5). *)
let suspend pod =
  List.iter (fun (_, p) -> Kernel.signal_proc pod.kernel p Signal.Sigstop) (members pod);
  Zapc_simnet.Netstack.freeze_ip (Kernel.netstack pod.kernel) pod.rip;
  pod.frozen <- true

let resume pod =
  List.iter (fun (_, p) -> Kernel.signal_proc pod.kernel p Signal.Sigcont) (members pod);
  Zapc_simnet.Netstack.thaw_ip (Kernel.netstack pod.kernel) pod.rip;
  pod.frozen <- false

(* Destroy the pod locally (after migration, or on abort): kill members,
   release the real address, drop from the registry. *)
let destroy pod =
  List.iter (fun (_, p) -> Kernel.signal_proc pod.kernel p Signal.Sigkill) (members pod);
  Zapc_simnet.Netstack.remove_ip (Kernel.netstack pod.kernel) pod.rip;
  (match Hashtbl.find_opt registry pod.pod_id with
   | Some live when live == pod -> Hashtbl.remove registry pod.pod_id
   | Some _ | None -> ())

(* Time virtualization (paper section 5): after a restart, bias reported
   clocks by checkpoint-time minus restart-time so application-level timeout
   mechanisms do not fire spuriously. *)
let apply_time_bias pod ~saved_clock ~current_clock =
  if pod.virtualize_time then
    pod.time_bias <- Simtime.add pod.time_bias (Simtime.sub saved_clock current_clock)

let total_memory pod =
  List.fold_left (fun acc (_, p) -> acc + Zapc_simos.Memory.total p.Proc.mem) 0 (members pod)

let pp ppf pod =
  Format.fprintf ppf "pod %s#%d vip=%a rip=%a procs=%d" pod.name pod.pod_id Addr.pp_ip
    pod.vip Addr.pp_ip pod.rip (member_count pod)
