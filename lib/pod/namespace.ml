(* The pod's virtual private namespace.

   Resource identifiers visible to processes inside a pod are virtual: PIDs
   and network addresses stay constant for the life of the application, and
   the namespace remaps them to the real identifiers of whatever node the
   pod currently runs on.  This is what decouples the application from the
   host and makes migration to nodes with different PID spaces and IP
   subnets possible (paper section 3). *)

module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr

type t = {
  vpid_to_rpid : (int, int) Hashtbl.t;
  rpid_to_vpid : (int, int) Hashtbl.t;
  mutable next_vpid : int;
  (* vip -> rip for every pod of the application (installed by the Agent,
     rewritten on migration); and the reverse map. *)
  mutable vip_to_rip : (Addr.ip * Addr.ip) list;
}

let create () =
  { vpid_to_rpid = Hashtbl.create 8; rpid_to_vpid = Hashtbl.create 8; next_vpid = 1;
    vip_to_rip = [] }

(* --- PIDs --- *)

let fresh_vpid t rpid =
  let vpid = t.next_vpid in
  t.next_vpid <- t.next_vpid + 1;
  Hashtbl.replace t.vpid_to_rpid vpid rpid;
  Hashtbl.replace t.rpid_to_vpid rpid vpid;
  vpid

let bind_vpid t ~vpid ~rpid =
  Hashtbl.replace t.vpid_to_rpid vpid rpid;
  Hashtbl.replace t.rpid_to_vpid rpid vpid;
  if vpid >= t.next_vpid then t.next_vpid <- vpid + 1

let rpid_of_vpid t vpid = Hashtbl.find_opt t.vpid_to_rpid vpid
let vpid_of_rpid t rpid = Hashtbl.find_opt t.rpid_to_vpid rpid

let forget_rpid t rpid =
  match vpid_of_rpid t rpid with
  | None -> ()
  | Some vpid ->
    Hashtbl.remove t.rpid_to_vpid rpid;
    Hashtbl.remove t.vpid_to_rpid vpid

let vpids t =
  Hashtbl.fold (fun vpid _ acc -> vpid :: acc) t.vpid_to_rpid [] |> List.sort Int.compare

(* --- network addresses --- *)

let set_vip_map t map = t.vip_to_rip <- map

(* Gratuitous-ARP-style update: a pod re-acquired its virtual address on a
   new node.  Namespaces that never knew the vip are left untouched, like
   an ARP cache without the entry. *)
let rebind_vip t ~vip ~rip =
  if List.exists (fun (v, _) -> Addr.equal_ip v vip) t.vip_to_rip then
    t.vip_to_rip <-
      List.map
        (fun (v, r) -> if Addr.equal_ip v vip then (v, rip) else (v, r))
        t.vip_to_rip

let rip_of_vip t vip =
  match List.assoc_opt vip t.vip_to_rip with Some rip -> rip | None -> vip

let vip_of_rip t rip =
  match List.find_opt (fun (_, r) -> Addr.equal_ip r rip) t.vip_to_rip with
  | Some (v, _) -> v
  | None -> rip

let translate_addr_out t (a : Addr.t) = { a with Addr.ip = rip_of_vip t a.ip }
let translate_addr_in t (a : Addr.t) = { a with Addr.ip = vip_of_rip t a.ip }

let to_value t =
  Value.assoc
    [ ("next_vpid", Value.Int t.next_vpid);
      ("vpids", Value.list Value.int (vpids t)) ]
