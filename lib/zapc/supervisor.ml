(* Self-healing supervisor: heartbeat failure detection plus automatic
   recovery.

   The supervisor watches the nodes hosting a periodically-checkpointed
   application group by sending A_ping probes over the Manager's control
   channels every [heartbeat_period].  A healthy Agent answers immediately;
   probes to a crashed node (broken channel) vanish and a hung Agent's
   replies stall, so consecutive unanswered beats accumulate per node.
   After [heartbeat_misses] consecutive misses the node is declared dead
   and the supervisor drives [Periodic.recover_async] onto the surviving
   node set, retrying with capped exponential backoff + deterministic
   jitter up to [recover_retries] times before giving up.

   States: Monitoring -> Suspected (>= 1 miss) -> Recovering (declared
   dead) -> back to Monitoring (healthy again) or Gave_up.

   The watch set is *sticky*: a crashed node's pods are destroyed with it,
   so recomputing the set from live pods would silently drop the very node
   being detected.  It is frozen at start and refreshed only after a
   successful recovery.

   Everything here runs inside engine callbacks, which is why only the
   async Manager/Periodic entry points are used ([Cluster.restart_sync]
   would re-enter [Engine.run]). *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Metrics = Zapc_obs.Metrics
module Rng = Zapc_sim.Rng
module Fabric = Zapc_simnet.Fabric
module Pod = Zapc_pod.Pod

type state = Monitoring | Suspected | Recovering | Gave_up | Stopped

let state_to_string = function
  | Monitoring -> "monitoring"
  | Suspected -> "suspected"
  | Recovering -> "recovering"
  | Gave_up -> "gave-up"
  | Stopped -> "stopped"

type t = {
  cluster : Cluster.t;
  service : Periodic.t;
  params : Params.t;
  rng : Rng.t;  (* jitter stream, split off the engine's seeded RNG *)
  mutable trace : Trace.t option;
  mutable watched : int list;  (* sticky node set under heartbeat watch *)
  misses : (int, int) Hashtbl.t;  (* node -> consecutive unanswered beats *)
  awaiting : (int, int) Hashtbl.t;  (* node -> seq of the unanswered ping *)
  first_miss : (int, Simtime.t) Hashtbl.t;  (* node -> first missed-beat time *)
  mutable seq : int;
  mutable state : state;
  mutable attempts : int;  (* attempts of the recovery in progress *)
  mutable total_attempts : int;
  mutable recoveries : int;
  mutable gave_up : int;  (* recoveries abandoned after the retry budget *)
  mutable last_detect : Simtime.t option;
  mutable last_recovered : Simtime.t option;
  mutable recover_span : int;  (* open [sup_recover] span id, -1 when none *)
  mutable log : (Simtime.t * string) list;  (* newest first *)
  mutable beat_tm : Engine.timer option;  (* cancellable heartbeat timer *)
}

let now t = Engine.now (Cluster.engine t.cluster)
let reg t = Cluster.metrics t.cluster

let note t what =
  t.log <- (now t, what) :: t.log;
  match t.trace with
  | Some tr -> Trace.record tr ~time:(now t) ~pod:(-1) what
  | None -> ()

(* The whole recovery episode (declaration -> recovered/gave up) is one
   [sup_recover] span; each restart attempt's Manager op span parents under
   it through [Periodic.recover_async ?parent]. *)
let recover_span_begin t =
  t.recover_span <-
    (match t.trace with
     | Some tr -> Trace.span_begin_id tr ~time:(now t) ~pod:(-1) "sup_recover"
     | None -> -1)

let recover_span_end t =
  (match t.trace with
   | Some tr when t.recover_span >= 0 ->
     Trace.span_end tr ~time:(now t) ~pod:(-1) "sup_recover"
   | Some _ | None -> ());
  t.recover_span <- -1

(* Nodes currently hosting the group's pods (for the initial watch set and
   its refresh after a recovery). *)
let nodes_of_group t =
  List.filter_map
    (fun pod_id ->
      match Pod.find pod_id with
      | None -> None
      | Some p -> Fabric.node_of_ip (Cluster.fabric t.cluster) p.rip)
    (Periodic.pod_ids t.service)
  |> List.sort_uniq Int.compare

let miss_count t node = try Hashtbl.find t.misses node with Not_found -> 0

(* Refresh the watch set when the group's footprint changes (a migration
   handoff, or a completed recovery): the union of the nodes now hosting
   the group and any node already under suspicion — recomputing from live
   pods alone would silently drop the very node being detected. *)
let refresh_watched t =
  let fresh = nodes_of_group t in
  let suspected = List.filter (fun n -> miss_count t n > 0) t.watched in
  t.watched <- List.sort_uniq Int.compare (fresh @ suspected)

(* Capped exponential backoff with deterministic jitter: attempt k waits
   min(max, base * 2^(k-1)) stretched by a factor in [1, 1.5). *)
let backoff_delay t =
  let exp = 1 lsl Stdlib.min 16 (Stdlib.max 0 (t.attempts - 1)) in
  let d =
    Stdlib.min t.params.Params.recover_backoff_max
      (Params.scale t.params.Params.recover_backoff exp)
  in
  Simtime.ns
    (int_of_float (float_of_int d *. (1.0 +. Rng.float t.rng 0.5)))

let unrecoverable (r : Manager.op_result) =
  (* no good snapshot (or every replica of one is gone): retrying cannot
     help *)
  match r.Manager.r_failure with
  | Some (Protocol.F_missing_image _) -> true
  | Some _ | None -> false

(* The heartbeat rides a cancellable timer so [stop] retires the pending
   trampoline instead of leaving a dead closure to fire into a stopped
   supervisor. *)
let rec schedule_beat t =
  let tm =
    match t.beat_tm with
    | Some tm -> tm
    | None ->
      let tm = Engine.timer ~label:"sup.beat" (fun () -> beat t) in
      t.beat_tm <- Some tm;
      tm
  in
  Engine.timer_arm_in (Cluster.engine t.cluster) tm
    ~delay:t.params.Params.heartbeat_period

and beat t =
  match t.state with
  | Stopped | Gave_up -> ()
  | Recovering -> schedule_beat t  (* keep the clock; recovery owns the state *)
  | Monitoring | Suspected ->
    (* 1: score the previous round — a node whose ping is still unanswered
       missed a beat *)
    let dead = ref [] in
    List.iter
      (fun node ->
        if Hashtbl.mem t.awaiting node then begin
          let m = miss_count t node + 1 in
          Hashtbl.replace t.misses node m;
          Metrics.incr (reg t) "sup.misses";
          if m = 1 then Hashtbl.replace t.first_miss node (now t);
          if m >= t.params.Params.heartbeat_misses then dead := node :: !dead
        end)
      t.watched;
    (match !dead with
     | _ :: _ ->
       let dead = List.sort Int.compare !dead in
       List.iter
         (fun node ->
           Cluster.mark_node_dead t.cluster node;
           Metrics.incr (reg t) "sup.detections";
           (* latency from the first missed beat to the declaration *)
           (match Hashtbl.find_opt t.first_miss node with
           | Some t0 ->
             Metrics.observe (reg t) "sup.detect_latency_ms"
               (Simtime.to_ms (Simtime.sub (now t) t0))
           | None -> ());
           note t (Printf.sprintf "sup_detect:node%d" node))
         dead;
       t.last_detect <- Some (now t);
       Metrics.set_gauge (reg t) "sup.last_detect_ms" (Simtime.to_ms (now t));
       (* tree mode: re-form the control hierarchy over the survivors NOW,
          before any recovery traffic — restart commands routed through a
          dead relay hop would vanish and every attempt would time out *)
       Cluster.reform_tree t.cluster;
       t.state <- Recovering;
       t.attempts <- 0;
       recover_span_begin t;
       schedule_beat t;
       attempt_recovery t
     | [] ->
       t.state <-
         (if List.exists (fun n -> miss_count t n > 0) t.watched then Suspected
          else Monitoring);
       (* 2: next round of probes *)
       Hashtbl.reset t.awaiting;
       List.iter
         (fun node ->
           t.seq <- t.seq + 1;
           Hashtbl.replace t.awaiting node t.seq;
           Metrics.incr (reg t) "sup.pings";
           Manager.ping (Cluster.manager t.cluster) ~node ~seq:t.seq)
         t.watched;
       schedule_beat t)

and attempt_recovery t =
  if t.state <> Recovering then ()
  else if t.attempts >= t.params.Params.recover_retries then give_up t
  else begin
    t.attempts <- t.attempts + 1;
    t.total_attempts <- t.total_attempts + 1;
    Metrics.incr (reg t) "sup.attempts";
    note t (Printf.sprintf "sup_attempt:%d" t.attempts);
    let alive = Cluster.alive_nodes t.cluster in
    if alive = [] then give_up t
    else if Manager.busy (Cluster.manager t.cluster) then
      (* an operation (e.g. the epoch the failure interrupted) still holds
         the Manager; count the attempt and back off *)
      retry_later t
    else begin
      let n = List.length alive in
      let targets =
        List.mapi
          (fun i _ -> List.nth alive (i mod n))
          (Periodic.pod_ids t.service)
      in
      Periodic.recover_async
        ?parent:(Trace.parent_arg t.recover_span)
        t.service ~target_nodes:targets
        ~on_done:(fun r ->
          if t.state <> Recovering then ()
          else if r.Manager.r_ok then recovered t
          else if unrecoverable r then give_up t
          else retry_later t)
    end
  end

and retry_later t =
  let delay = backoff_delay t in
  Metrics.incr (reg t) "sup.backoffs";
  note t (Printf.sprintf "sup_backoff:%.1fms" (Simtime.to_ms delay));
  Engine.schedule (Cluster.engine t.cluster) ~label:"sup.retry" ~delay (fun () ->
      attempt_recovery t)

and recovered t =
  t.recoveries <- t.recoveries + 1;
  t.last_recovered <- Some (now t);
  Metrics.incr (reg t) "sup.recoveries";
  Metrics.set_gauge (reg t) "sup.last_recovered_ms" (Simtime.to_ms (now t));
  (* MTTR: declaration of death -> service restored *)
  (match t.last_detect with
  | Some d ->
    Metrics.observe (reg t) "sup.mttr_ms"
      (Simtime.to_ms (Simtime.sub (now t) d))
  | None -> ());
  note t "sup_recovered";
  recover_span_end t;
  t.attempts <- 0;
  Hashtbl.reset t.misses;
  Hashtbl.reset t.awaiting;
  Hashtbl.reset t.first_miss;
  (* the group may live on different nodes now: refresh the watch set *)
  refresh_watched t;
  t.state <- Monitoring;
  Periodic.resume t.service

and give_up t =
  t.gave_up <- t.gave_up + 1;
  Metrics.incr (reg t) "sup.gave_up";
  note t "sup_giveup";
  recover_span_end t;
  t.state <- Gave_up

let start ?trace cluster service =
  let t =
    {
      cluster;
      service;
      params = Cluster.params cluster;
      rng = Rng.split (Engine.rng (Cluster.engine cluster));
      trace;
      watched = [];
      misses = Hashtbl.create 8;
      awaiting = Hashtbl.create 8;
      first_miss = Hashtbl.create 8;
      seq = 0;
      state = Monitoring;
      attempts = 0;
      total_attempts = 0;
      recoveries = 0;
      gave_up = 0;
      last_detect = None;
      last_recovered = None;
      recover_span = -1;
      log = [];
      beat_tm = None;
    }
  in
  Manager.set_on_pong (Cluster.manager cluster) (fun ~node ~seq ->
      Metrics.incr (reg t) "sup.pongs";
      (match Hashtbl.find_opt t.awaiting node with
       | Some s when s = seq ->
         Hashtbl.remove t.awaiting node;
         Hashtbl.replace t.misses node 0;
         Hashtbl.remove t.first_miss node
       | Some _ | None -> ());
      if t.state = Suspected
         && not (List.exists (fun n -> miss_count t n > 0) t.watched)
      then t.state <- Monitoring);
  (* a live migration moves a watched pod: observe its new home at the
     handoff, atomically with the Manager completing the operation *)
  Manager.set_on_migrated (Cluster.manager cluster)
    (fun ~pod ~src ~dest ->
      note t (Printf.sprintf "sup_watch_refresh:pod%d:%d->%d" pod src dest);
      refresh_watched t);
  t.watched <- nodes_of_group t;
  schedule_beat t;
  t

let stop t =
  t.state <- Stopped;
  match t.beat_tm with Some tm -> Engine.timer_cancel tm | None -> ()

let state t = t.state
let watched t = t.watched
let recoveries t = t.recoveries
let total_attempts t = t.total_attempts
let gave_up t = t.gave_up > 0
let last_detect t = t.last_detect
let last_recovered t = t.last_recovered
let events t = List.rev t.log
