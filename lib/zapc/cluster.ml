(* Cluster assembly: the engine, the fabric, shared storage, N nodes (each a
   kernel + an Agent), the Manager, and address allocation.  This is the
   simulation analogue of the paper's testbed: blades on a Gigabit switch
   with a SAN, one Agent per node, the Manager running alongside. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Metrics = Zapc_obs.Metrics
module Addr = Zapc_simnet.Addr
module Fabric = Zapc_simnet.Fabric
module Netstack = Zapc_simnet.Netstack
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod

type node = {
  n_idx : int;
  n_kernel : Kernel.t;
  n_agent : Agent.t;
  n_host_ip : Addr.ip;
  mutable n_rip_seq : int;
  mutable n_alive : bool;  (* cleared when the supervisor declares it dead *)
}

type t = {
  engine : Engine.t;
  fabric : Fabric.t;
  storage : Storage.t;
  params : Params.t;
  nodes : node array;
  manager : Manager.t;
  metrics : Metrics.t;
  mutable next_pod_id : int;
  mutable next_vip_seq : int;
  mutable trace : Trace.t option;  (* the cluster-wide recorder, once enabled *)
  mutable flight : Zapc_obs.Flight.t option;
  mutable relays : Relay.t list;  (* tree mode: one sub-coordinator per node *)
  mutable tree_sig : int list;  (* alive set the current tree was formed over *)
}

(* --- node liveness (supervisor bookkeeping) --- *)

(* Node liveness feeds the buddy storage backend: a declared-dead node's
   RAM copies are gone and get re-buddied; a recovered node rejoins with an
   empty buddy store (no-ops on the other backends). *)
let mark_node_dead t i =
  t.nodes.(i).n_alive <- false;
  Storage.node_died t.storage i

let mark_node_alive t i =
  t.nodes.(i).n_alive <- true;
  Storage.node_healed t.storage i
let node_alive t i = t.nodes.(i).n_alive

let alive_nodes t =
  Array.to_list t.nodes
  |> List.filter_map (fun n -> if n.n_alive then Some n.n_idx else None)

(* --- hierarchical coordination (Params.tree_fanout > 0) ---

   The control plane becomes a k-rooted k-ary forest laid over the sorted
   alive-node list by position: positions 0..k-1 hang directly off the
   Manager, position p >= k hangs off position (p-k)/k.  Every node gets a
   fresh uplink channel; its Agent attaches first (keeping the on-break
   abort), then a Relay claims the downward dispatch.  Re-forming closes
   the old relays — stale traffic on abandoned edges is dropped, the
   Manager's generation guards absorb any late reports. *)

let form_tree t =
  let k = t.params.Params.tree_fanout in
  if k > 0 then begin
    let alive = Array.of_list (alive_nodes t) in
    let n = Array.length alive in
    List.iter Relay.close t.relays;
    t.relays <- [];
    t.tree_sig <- Array.to_list alive;
    let edges =
      Array.map
        (fun _ ->
          Control.create ~engine:t.engine ~latency:t.params.Params.ctrl_latency
            ~bps:t.params.Params.ctrl_bps)
        alive
    in
    (* agents first: the Relay overrides the down handler afterwards *)
    Array.iteri
      (fun p _ -> Agent.attach_channel t.nodes.(alive.(p)).n_agent edges.(p))
      alive;
    (* direct children per coordinator position *)
    let children_r = Array.make (max n 1) [] in
    for q = n - 1 downto k do
      let pr = (q - k) / k in
      children_r.(pr) <- (alive.(q), edges.(q)) :: children_r.(pr)
    done;
    (* routing tables: walk each node up to its forest root, recording at
       every coordinator on the path which child subtree holds it *)
    let routes_m = ref [] in
    let routes_r = Array.make (max n 1) [] in
    for r = n - 1 downto 0 do
      let p = ref r in
      while !p >= k do
        let pr = (!p - k) / k in
        routes_r.(pr) <- (alive.(r), alive.(!p)) :: routes_r.(pr);
        p := pr
      done;
      routes_m := (alive.(r), alive.(!p)) :: !routes_m
    done;
    let mgr_children =
      List.init (min k n) (fun p -> (alive.(p), edges.(p)))
    in
    let edge_list = List.init n (fun p -> (alive.(p), edges.(p))) in
    Manager.set_tree t.manager ~children:mgr_children ~routes:!routes_m
      ~edges:edge_list;
    t.relays <-
      List.init n (fun p ->
          Relay.create ~engine:t.engine ~params:t.params ~metrics:t.metrics
            ~agent:t.nodes.(alive.(p)).n_agent ~node:alive.(p)
            ~parent:edges.(p) ~children:children_r.(p) ~routes:routes_r.(p));
    let rec depth p = if p < k then 1 else 1 + depth ((p - k) / k) in
    Metrics.set_gauge t.metrics "mgr.tree.depth"
      (float_of_int (if n = 0 then 0 else depth (n - 1)));
    Metrics.set_gauge t.metrics "mgr.tree.nodes" (float_of_int n)
  end

let reform_tree t =
  if t.params.Params.tree_fanout > 0 then begin
    let alive = alive_nodes t in
    if alive <> t.tree_sig then form_tree t
  end

let make ?(seed = 42) ?(cpus = 1) ~params ~node_count () =
  let engine = Engine.create ~seed () in
  (* one registry shared by every layer of this cluster; always on *)
  let metrics = Metrics.create () in
  let fabric = Fabric.create ~config:params.Params.fabric engine in
  let storage =
    Storage.create ~metrics ~bps:params.Params.storage_bps
      ~replicas:params.Params.storage_replicas
      ~backend:params.Params.storage_backend
      ~compress:params.Params.compress ~buddy_bps:params.Params.buddy_bps
      ~nodes:node_count engine
  in
  (* one SAN-backed file system mounted by every node *)
  let shared_fs = Zapc_simos.Simfs.create () in
  let nodes =
    Array.init node_count (fun i ->
        let kernel =
          Kernel.create ~config:params.Params.kconfig ~cpus
            ~hostname:(Printf.sprintf "node%d" i) ~node_id:i fabric
        in
        let host_ip = Addr.make_ip 192 168 1 (i + 1) in
        Netstack.add_ip (Kernel.netstack kernel) host_ip;
        Kernel.set_fs kernel shared_fs;
        let agent = Agent.create ~metrics ~node:i ~params ~storage ~fabric kernel in
        { n_idx = i; n_kernel = kernel; n_agent = agent; n_host_ip = host_ip;
          n_rip_seq = 0; n_alive = true })
  in
  let alloc_rip node_idx =
    let n = nodes.(node_idx) in
    n.n_rip_seq <- n.n_rip_seq + 1;
    Addr.make_ip 172 16 n.n_idx (10 + n.n_rip_seq)
  in
  let manager = Manager.create ~metrics ~engine ~params ~storage ~alloc_rip () in
  let t =
    { engine; fabric; storage; params; nodes; manager; metrics;
      next_pod_id = 1; next_vip_seq = 0; trace = None; flight = None;
      relays = []; tree_sig = [] }
  in
  (* the engine profiler is opt-in (Params knob): the default hot path
     schedules closures unwrapped *)
  if params.Params.profile_engine then Engine.set_profiling engine true;
  Array.iter
    (fun n ->
      Agent.set_peer_resolver n.n_agent (fun idx ->
          if idx >= 0 && idx < Array.length nodes then Some nodes.(idx).n_agent else None);
      if params.Params.tree_fanout = 0 then begin
        (* flat topology: one direct channel per node *)
        let ch =
          Control.create ~engine ~latency:params.Params.ctrl_latency ~bps:params.Params.ctrl_bps
        in
        Manager.attach_agent manager ~node:n.n_idx ch;
        Agent.attach_channel n.n_agent ch
      end)
    nodes;
  if params.Params.tree_fanout > 0 then form_tree t;
  (* network-layer gauges, sampled at snapshot time (collect style) *)
  Metrics.gauge_fn metrics "net.fabric.packets_delivered" (fun () ->
      float_of_int (Fabric.packets_delivered fabric));
  Metrics.gauge_fn metrics "net.fabric.bytes_delivered" (fun () ->
      float_of_int (Fabric.bytes_delivered fabric));
  Metrics.gauge_fn metrics "net.fabric.packets_dropped" (fun () ->
      float_of_int (Fabric.packets_dropped fabric));
  Metrics.gauge_fn metrics "net.netfilter.blocked_rules" (fun () ->
      float_of_int
        (Zapc_simnet.Netfilter.blocked_count (Fabric.netfilter fabric)));
  Metrics.gauge_fn metrics "net.netfilter.drops" (fun () ->
      float_of_int
        (Zapc_simnet.Netfilter.drop_count (Fabric.netfilter fabric)));
  let sum_stacks f () =
    Array.fold_left
      (fun acc n -> acc + f (Kernel.netstack n.n_kernel))
      0 t.nodes
    |> float_of_int
  in
  Metrics.gauge_fn metrics "net.tcp.retransmits"
    (sum_stacks Netstack.retransmit_count);
  Metrics.gauge_fn metrics "net.tcp.window_stalls"
    (sum_stacks Netstack.window_stall_count);
  t

let engine t = t.engine
let params t = t.params
let manager t = t.manager
let storage t = t.storage
let fabric t = t.fabric
let metrics t = t.metrics
let node t i = t.nodes.(i)
let node_count t = Array.length t.nodes
let now t = Engine.now t.engine

let alloc_vip t =
  t.next_vip_seq <- t.next_vip_seq + 1;
  Addr.make_ip 10 77 (t.next_vip_seq / 250) (1 + (t.next_vip_seq mod 250))

let alloc_rip t node_idx =
  let n = t.nodes.(node_idx) in
  n.n_rip_seq <- n.n_rip_seq + 1;
  Addr.make_ip 172 16 n.n_idx (10 + n.n_rip_seq)

(* Create an (empty) pod on a node and register it with the node's Agent and
   with the Manager's pod-info cache. *)
let create_pod t ~node_idx ~name =
  let pod_id = t.next_pod_id in
  t.next_pod_id <- t.next_pod_id + 1;
  let vip = alloc_vip t in
  let rip = alloc_rip t node_idx in
  let n = t.nodes.(node_idx) in
  let pod = Pod.create ~pod_id ~name ~vip ~rip n.n_kernel in
  pod.Pod.virtualize_time <- t.params.virtualize_time;
  Agent.register_pod n.n_agent pod;
  Manager.remember_pod t.manager ~pod_id ~name ~vip
    { Zapc_netckpt.Meta.pm_pod = pod_id; pm_vip = vip; pm_entries = [] };
  pod

(* Attach a fresh protocol trace to the Manager, every Agent, and the
   shared storage (idempotent: the same recorder is returned once one is
   attached, so tracing and the flight recorder can be enabled in either
   order). *)
let enable_trace t =
  match t.trace with
  | Some tr -> tr
  | None ->
    let tr = Trace.create () in
    Manager.set_trace t.manager tr;
    Array.iter (fun n -> Agent.set_trace n.n_agent tr) t.nodes;
    Storage.set_trace t.storage tr;
    t.trace <- Some tr;
    tr

let trace t = t.trace

(* The flight recorder: bounded per-node rings fed by the span recorder,
   the trace instants, and the metric stream; tripped into a JSON dump by
   the abort/fault/death markers below. *)
let flight_trip_reason what =
  let has_prefix p =
    String.length what >= String.length p && String.sub what 0 (String.length p) = p
  in
  has_prefix "op_failed:" || has_prefix "fault:" || has_prefix "sup_detect:"

let enable_flight ?cap ?dump_dir t =
  match t.flight with
  | Some fl -> fl
  | None ->
    let module Flight = Zapc_obs.Flight in
    let module Span = Zapc_obs.Span in
    let tr = enable_trace t in
    let fl = Flight.create ?cap () in
    Flight.set_dump_dir fl dump_dir;
    t.flight <- Some fl;
    Span.set_observer (Trace.recorder tr)
      (Some
         (function
           | Span.Opened sp ->
             Flight.record fl ~node:sp.Span.sp_node
               (Flight.Span_open
                  { f_time = sp.Span.sp_begin; f_id = sp.Span.sp_id;
                    f_name = sp.Span.sp_name; f_op = sp.Span.sp_op;
                    f_pod = sp.Span.sp_pod; f_parent = sp.Span.sp_parent })
           | Span.Closed sp ->
             Flight.record fl ~node:sp.Span.sp_node
               (Flight.Span_close
                  { f_time =
                      (match sp.Span.sp_end with
                       | Some e -> e
                       | None -> sp.Span.sp_begin);
                    f_id = sp.Span.sp_id })));
    Metrics.set_on_record t.metrics
      (Some
         (fun name value ->
           Flight.record fl ~node:(-1)
             (Flight.Metric
                { f_time = Engine.now t.engine; f_name = name; f_value = value })));
    Trace.on_record tr (fun (ev : Trace.event) ->
        Flight.record fl ~node:(-1)
          (Flight.Instant
             { f_time = ev.Trace.ev_time; f_pod = ev.Trace.ev_pod;
               f_what = ev.Trace.ev_what });
        if flight_trip_reason ev.Trace.ev_what then
          Flight.trip fl ~time:ev.Trace.ev_time ~reason:ev.Trace.ev_what);
    fl

let flight t = t.flight

(* Install the application-wide virtual address map on a group of pods that
   form one distributed application. *)
let link_pods pods =
  let map = List.map (fun (p : Pod.t) -> (p.vip, p.rip)) pods in
  List.iter (fun p -> Pod.set_vip_map p map) pods

(* --- running --- *)

let run t ?until ?max_events () = Engine.run ?until ?max_events t.engine

exception Timeout of string

(* Advance the simulation until [pred] holds; the engine is event-driven, so
   we re-check after every batch of events. *)
let run_until t ?(timeout = Simtime.sec 3600.0) pred =
  let deadline = Simtime.add (Engine.now t.engine) timeout in
  let rec go () =
    if pred () then ()
    else if Simtime.compare (Engine.now t.engine) deadline >= 0 then
      raise (Timeout "Cluster.run_until")
    else if Engine.pending t.engine = 0 then
      raise (Timeout "Cluster.run_until: simulation quiescent but predicate false")
    else begin
      Engine.run ~max_events:64 ~until:deadline t.engine;
      go ()
    end
  in
  go ()

let procs_exited procs = List.for_all (fun (p : Proc.t) -> p.exit_code <> None) procs

(* --- synchronous wrappers over the Manager's callback API --- *)

let checkpoint_sync ?(incremental = false) t ~items ~resume =
  let result = ref None in
  Manager.checkpoint ~incremental t.manager ~items ~resume
    ~on_done:(fun r -> result := Some r);
  run_until t (fun () -> !result <> None);
  Option.get !result

let restart_sync t ~items =
  let result = ref None in
  Manager.restart t.manager ~items ~on_done:(fun r -> result := Some r);
  run_until t (fun () -> !result <> None);
  Option.get !result

(* Take a snapshot of an application: checkpoint all its pods to storage and
   let them keep running. *)
let snapshot ?(incremental = false) t ~(pods : Pod.t list) ~key_prefix =
  let items =
    List.map
      (fun (p : Pod.t) ->
        let node_idx =
          match Fabric.node_of_ip t.fabric p.rip with Some n -> n | None -> -1
        in
        { Manager.ci_node = node_idx; ci_pod = p.pod_id;
          ci_dest = Protocol.U_storage (Printf.sprintf "%s.pod%d" key_prefix p.pod_id) })
      pods
  in
  checkpoint_sync ~incremental t ~items ~resume:true

(* Restart an application from storage onto the given nodes (same or
   different from the originals). *)
let restart_items ~(pod_ids : int list) ~(target_nodes : int list) ~key_prefix =
  List.map2
    (fun pod_id node ->
      { Manager.ri_node = node; ri_pod = pod_id;
        ri_uri = Protocol.U_storage (Printf.sprintf "%s.pod%d" key_prefix pod_id) })
    pod_ids target_nodes

let restart_app t ~pod_ids ~target_nodes ~key_prefix =
  restart_sync t ~items:(restart_items ~pod_ids ~target_nodes ~key_prefix)

(* Callback flavour for callers already running inside an engine event (the
   supervisor): [restart_sync] re-enters [Engine.run], which is illegal
   there. *)
let restart_app_async ?parent t ~pod_ids ~target_nodes ~key_prefix ~on_done =
  Manager.restart ?parent t.manager
    ~items:(restart_items ~pod_ids ~target_nodes ~key_prefix)
    ~on_done

(* Live-migrate one pod between nodes; the source node is looked up from the
   pod's real address so callers only name the destination. *)
let migrate_sync ?max_rounds ?dirty_threshold t ~(pod : Pod.t) ~dest_node =
  let src_node =
    match Fabric.node_of_ip t.fabric pod.Pod.rip with Some n -> n | None -> -1
  in
  let result = ref None in
  Manager.migrate ?max_rounds ?dirty_threshold t.manager ~pod:pod.Pod.pod_id
    ~src_node ~dest_node ~on_done:(fun r -> result := Some r);
  run_until t (fun () -> !result <> None);
  Option.get !result
