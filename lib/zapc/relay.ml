(* Tree sub-coordinator (hierarchical coordination at cluster scale).

   With [Params.tree_fanout] > 0 the control plane is organized as a k-ary
   tree: the Manager talks to [tree_fanout] direct children and every node
   runs one of these relays next to its Agent.  Downward, a relay unpacks
   the [A_batch] bundle arriving on its uplink, delivers locally-addressed
   commands to its Agent and re-bundles the rest per child edge; upward, it
   aggregates the reports of its whole subtree — whatever lands in the same
   engine instant — into one [M_batch] per flush.  The manager then pays
   its per-message cost ([Params.ctrl_proc]) per *subtree*, not per node,
   which is the whole point: N control channels no longer converge on one
   root.

   Failure semantics mirror the flat topology's (paper section 4):
   - a broken child edge is reported up as [M_subtree_down], so the root
     aborts exactly as if its own channel to that node had broken;
   - a broken uplink cascades: the relay severs its child edges, so every
     agent below aborts its in-flight work and resumes its pods — an
     orphaned subtree never holds pods frozen.

   Trace contexts ride inside the bundled commands untouched, so the
   cross-node causal tree still parents every agent span under the
   manager's operation span across the extra hop. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Metrics = Zapc_obs.Metrics

type t = {
  node : int;
  engine : Engine.t;
  params : Params.t;
  metrics : Metrics.t;
  agent : Agent.t;
  parent : Protocol.channel;  (* uplink toward the Manager *)
  children : (int, Protocol.channel) Hashtbl.t;  (* direct child -> edge *)
  routes : (int, int) Hashtbl.t;  (* descendant -> direct child *)
  down_buf : (int, (int * Protocol.to_agent) list) Hashtbl.t;
  (* per-child command bundle under assembly (items reversed) *)
  mutable down_flush : bool;
  mutable up_buf : Protocol.to_manager list;  (* reversed *)
  mutable up_flush : bool;
  mutable proc_free : Simtime.t;  (* serial per-message CPU, as the Manager's *)
  mutable closed : bool;
  (* a re-formed topology retired this relay: drop everything (stale
     in-flight traffic on the old edges must not reach agents twice) *)
}

(* Same serial cost model as the Manager's: [ctrl_proc] per message sent or
   received at this coordinator, zero cost running inline. *)
let proc t fn =
  if t.params.Params.ctrl_proc = Simtime.zero then fn ()
  else begin
    let now = Engine.now t.engine in
    let start = if Simtime.compare t.proc_free now > 0 then t.proc_free else now in
    let fin = Simtime.add start t.params.Params.ctrl_proc in
    t.proc_free <- fin;
    Engine.schedule_at t.engine ~label:"relay.proc" ~at:fin fn
  end

(* --- downward: unpack, deliver local, re-bundle per child edge --- *)

let flush_down t =
  t.down_flush <- false;
  if not t.closed then begin
    let hops =
      Hashtbl.fold (fun hop items acc -> (hop, List.rev items) :: acc) t.down_buf []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    Hashtbl.reset t.down_buf;
    List.iter
      (fun (hop, items) ->
        match Hashtbl.find_opt t.children hop with
        | Some ch when not (Control.is_broken ch) ->
          Metrics.incr t.metrics "relay.down_batches";
          let msg = Protocol.A_batch items in
          proc t (fun () ->
              Control.send_down ch ~bytes:(Protocol.to_agent_bytes msg) msg)
        | Some _ | None ->
          (* the edge is gone; the loss is already reported upward by the
             break handler, the commands just vanish with it *)
          ())
      hops
  end

let enqueue_down t hop dst msg =
  let prev =
    match Hashtbl.find_opt t.down_buf hop with Some l -> l | None -> []
  in
  Hashtbl.replace t.down_buf hop ((dst, msg) :: prev);
  if not t.down_flush then begin
    t.down_flush <- true;
    Engine.schedule t.engine ~label:"relay.fanout" ~delay:Simtime.zero (fun () ->
        flush_down t)
  end

let route t dst msg =
  if dst = t.node then Agent.deliver t.agent msg
  else
    match Hashtbl.find_opt t.routes dst with
    | Some hop -> enqueue_down t hop dst msg
    | None ->
      (* no route: the topology changed under an in-flight command *)
      Metrics.incr t.metrics "relay.misroutes"

let dispatch t msg =
  if not t.closed then begin
    Metrics.incr t.metrics "relay.forwards";
    match msg with
    | Protocol.A_batch items -> List.iter (fun (dst, m) -> route t dst m) items
    | m -> Agent.deliver t.agent m
  end

(* --- upward: aggregate the subtree's reports --- *)

let flush_up t =
  t.up_flush <- false;
  if not t.closed then begin
    match List.rev t.up_buf with
    | [] -> ()
    | items ->
      t.up_buf <- [];
      Metrics.incr t.metrics "relay.up_batches";
      let msg = Protocol.M_batch items in
      proc t (fun () ->
          Control.send_up t.parent ~bytes:(Protocol.to_manager_bytes msg) msg)
  end

let on_child_up t msg =
  if not t.closed then begin
    let items = match msg with Protocol.M_batch l -> l | m -> [ m ] in
    t.up_buf <- List.rev_append items t.up_buf;
    if not t.up_flush then begin
      t.up_flush <- true;
      (* same-instant aggregation: whatever the subtree reports in this
         engine instant rides one frame *)
      Engine.schedule t.engine ~label:"relay.aggregate" ~delay:Simtime.zero
        (fun () -> flush_up t)
    end
  end

(* --- failure propagation --- *)

let child_edge_broke t ~child =
  if not t.closed then begin
    Metrics.incr t.metrics "relay.subtree_down";
    let msg = Protocol.M_subtree_down { node = child } in
    Control.send_up t.parent ~bytes:(Protocol.to_manager_bytes msg) msg
  end

(* The uplink died: this subtree is orphaned.  Sever the child edges so
   every agent below aborts its in-flight work and resumes its pods (the
   local agent's own on-break abort is registered by [Agent.attach_channel]
   on the same uplink). *)
let uplink_broke t =
  if not t.closed then
    Hashtbl.iter (fun _ ch -> Control.break ch) t.children

let create ~engine ~params ~metrics ~agent ~node ~parent ~children ~routes =
  let t =
    { node; engine; params; metrics; agent; parent;
      children = Hashtbl.create 8; routes = Hashtbl.create 16;
      down_buf = Hashtbl.create 8; down_flush = false;
      up_buf = []; up_flush = false; proc_free = Simtime.zero; closed = false }
  in
  List.iter (fun (child, ch) -> Hashtbl.replace t.children child ch) children;
  List.iter (fun (dst, hop) -> Hashtbl.replace t.routes dst hop) routes;
  (* claim the uplink's down handler (the Agent attached first and keeps
     its on-break abort; locally-addressed commands are handed back to it
     through [Agent.deliver]) *)
  Control.set_down_handler parent (fun msg -> proc t (fun () -> dispatch t msg));
  Control.on_break parent (fun () -> uplink_broke t);
  List.iter
    (fun (child, ch) ->
      Control.set_up_handler ch (fun msg -> proc t (fun () -> on_child_up t msg));
      Control.on_break ch (fun () -> child_edge_broke t ~child))
    children;
  t

let close t = t.closed <- true
let node t = t.node
let child_count t = Hashtbl.length t.children
