(** The ZapC Agent: one per cluster node; executes the node-local sides of
    the coordinated checkpoint (Figure 1) and restart (Figure 3) protocols.

    Checkpoint: suspend the pod and block its network, save the network
    state first, report the meta-data, run the standalone pod checkpoint
    {e without waiting}, and gate only the final unblock/resume on the
    Manager's 'continue'.  Restart: create an empty pod, re-establish
    connectivity with two concurrent tasks (acceptor + connector — no
    topology can deadlock), restore the network state, run the standalone
    restart, and let the pod resume without further delay.

    Commands normally arrive over the attached control channel; the direct
    entry points below exist for tests. *)

module Kernel = Zapc_simos.Kernel
module Fabric = Zapc_simnet.Fabric
module Pod = Zapc_pod.Pod
module Meta = Zapc_netckpt.Meta
module Addr = Zapc_simnet.Addr

type t

val create :
  ?metrics:Zapc_obs.Metrics.t ->
  node:int -> params:Params.t -> storage:Storage.t -> fabric:Fabric.t -> Kernel.t -> t
(** [metrics] receives the [agent.*] counters (abort outcomes); a private
    registry is created when omitted. *)

val attach_channel : t -> Protocol.channel -> unit
(** Wire the Manager connection; a broken channel aborts every in-flight
    operation and lets the applications resume (paper section 4). *)

val deliver : t -> Protocol.to_agent -> unit
(** Hand one command to this agent directly.  Hierarchical coordination
    wires the channel's down handler to a {!Relay}, which dispatches
    locally-addressed commands here after routing the rest. *)

val set_peer_resolver : t -> (int -> t option) -> unit
(** How to reach other Agents for direct migration streaming. *)

val set_trace : t -> Trace.t -> unit
(** Record the phase boundaries of this Agent's operations (Figure 2). *)

val register_pod : t -> Pod.t -> unit
val forget_pod : t -> int -> unit
val find_pod : t -> int -> Pod.t option

val handle_command : t -> Protocol.to_agent -> unit

val start_checkpoint :
  ?incremental:bool -> ?ctx:Protocol.trace_ctx ->
  t -> pod_id:int -> dest:Protocol.uri -> resume:bool -> unit
(** [incremental] (default false) writes a delta against the last image this
    Agent durably stored for the pod, when one is still resident in storage
    and the chain is shorter than [Params.max_delta_chain]; otherwise (and
    always on the migration path) a full image is written.  [ctx] is the
    Manager's causal trace context: the Agent's local spans parent under
    [ctx.tc_parent] and carry operation id [ctx.tc_op]. *)

val start_restart :
  ?ctx:Protocol.trace_ctx ->
  t ->
  pod_id:int ->
  name:string ->
  vip:Addr.ip ->
  rip:Addr.ip ->
  uri:Protocol.uri ->
  entries:Meta.restart_entry list ->
  vip_map:(Addr.ip * Addr.ip) list ->
  extra_altq:(int * string) list ->
  skip_sendq:bool ->
  unit

val start_migrate :
  ?ctx:Protocol.trace_ctx ->
  t -> pod_id:int -> dest:int -> max_rounds:int -> dirty_threshold:float -> unit
(** Source side of a live migration: iterative pre-copy rounds (the pod
    keeps running) followed by a stop-and-copy of the residue plus
    process/socket/netfilter state.  [max_rounds = 0] degenerates to plain
    stop-and-copy; convergence is reached when a round's dirty residue
    falls to [dirty_threshold] x the pod's full image size. *)

val abort_checkpoint : t -> int -> unit
(** Idempotent: unblocks the pod's network, resumes it, drops the op. *)

val abort_restart : t -> int -> unit
(** Idempotent: destroys the half-restored pod (or drops a parked restart
    that is still waiting for its streamed image). *)

val abort_migrate : t -> int -> unit
(** Idempotent.  Source side: stops the pre-copy loop (the pod was never
    suspended, so it simply keeps running — a final stop-and-copy in flight
    is aborted through {!abort_checkpoint}).  Destination side: drops the
    staged rounds. *)

val abort_all : t -> unit

val node : t -> int

val live_pods : t -> Pod.t list
(** Every pod registered with this Agent, sorted by id (fault injection
    kills these on a node crash; the chaos harness audits them). *)

val busy : t -> bool
(** An in-flight checkpoint, restart, or migration operation exists. *)
