(* The ZapC Agent: one per cluster node.

   Executes the node-local sides of the coordinated checkpoint (Figure 1)
   and restart (Figure 3) protocols.  Checkpoint: suspend the pod and block
   its network, save the network state first, report the meta-data, run the
   standalone pod checkpoint without waiting, and only gate the final
   unblock/resume on the Manager's 'continue' — the protocol's single
   synchronization point.  Restart: create an empty pod, re-establish the
   network connectivity with two concurrent tasks (acceptor + connector, so
   no ordering can deadlock), restore the network state, then run the
   standalone restart and let the pod resume immediately. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Metrics = Zapc_obs.Metrics
module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr
module Socket = Zapc_simnet.Socket
module Netstack = Zapc_simnet.Netstack
module Tcp = Zapc_simnet.Tcp
module Netfilter = Zapc_simnet.Netfilter
module Fabric = Zapc_simnet.Fabric
module Errno = Zapc_simnet.Errno
module Kernel = Zapc_simos.Kernel
module Pod = Zapc_pod.Pod
module Namespace = Zapc_pod.Namespace
module Meta = Zapc_netckpt.Meta
module Sock_state = Zapc_netckpt.Sock_state
module Net_ckpt = Zapc_netckpt.Net_ckpt
module Pod_ckpt = Zapc_ckpt.Pod_ckpt
module Image = Zapc_ckpt.Image
module Delta = Zapc_ckpt.Delta

let src = Logs.Src.create "zapc.agent" ~doc:"ZapC agent"

module Log = (val Logs.src_log src : Logs.LOG)

(* Source side of a live migration: the iterative pre-copy loop.  The pod
   keeps RUNNING while rounds are captured (non-destructive Peek) and
   shipped; only the final stop-and-copy suspends it. *)
type mig_op = {
  mi_pod : Pod.t;
  mi_dest : int;
  mi_max_rounds : int;
  mi_threshold : float;  (* converged when round dirty <= this x full image *)
  mi_op : int;  (* manager operation id (trace_ctx), 0 when untraced *)
  mi_span : int;  (* id of this op's "mig_precopy" span, -1 when untraced *)
  mi_started : Simtime.t;
  mutable mi_round : int;  (* next round number; 0 ships the full image *)
  mutable mi_last : Value.t option;  (* newest full capture shipped (delta base) *)
  mutable mi_full_bytes : int;  (* logical size of the round-0 full image *)
  mutable mi_precopy_bytes : int;
  mutable mi_forced : bool;  (* round cap hit without converging *)
  mutable mi_suspend : Simtime.t;  (* blackout start: the final suspend *)
  mutable mi_aborted : bool;
}

(* Destination side of a live migration: the staged image assembled from
   the pre-copy rounds, prestaged (skeleton created, memory preloaded)
   while the source keeps running so the final activation skips the full
   restore cost. *)
type mig_stage = {
  mutable sg_image : Value.t;  (* materialized full pod image so far *)
  mutable sg_residue : int;  (* logical bytes of the final stop-and-copy *)
  mutable sg_suspend_at : Simtime.t;  (* source suspend time (blackout start) *)
}

type ckpt_op = {
  co_pod : Pod.t;
  co_dest : Protocol.uri;
  co_resume : bool;
  co_incremental : bool;
  co_mig : mig_op option;  (* Some: this is a migration's final stop-and-copy *)
  co_op : int;  (* manager operation id (trace_ctx), 0 when untraced *)
  co_span : int;  (* id of this op's "pod_ckpt" span, -1 when untraced *)
  co_started : Simtime.t;
  mutable co_continue : bool;
  mutable co_standalone_done : bool;
  mutable co_result : Pod_ckpt.checkpoint_result option;
  mutable co_delta : Image.t option;  (* the delta actually written, if any *)
  mutable co_net_time : Simtime.t;
  mutable co_finalizing : bool;
  mutable co_aborted : bool;
}

(* What incremental checkpointing chains against: the key and materialized
   value of the last image this Agent durably stored for a pod, plus the
   delta count since the last full image (capped by Params.max_delta_chain). *)
type delta_cache = {
  dc_key : string;
  dc_image : Value.t;  (* full pod image at that instant (deltas diff against it) *)
  dc_chain : int;
}

type restore_op = {
  ro_pod : Pod.t;
  ro_mig : mig_stage option;  (* live migration: staged rounds to activate *)
  ro_image : Value.t;
  ro_entries : Meta.restart_entry list;
  ro_extra_altq : (int * string) list;
  ro_skip_sendq : bool;
  ro_sock_imgs : Sock_state.image array;
  ro_my_meta : Meta.pod_meta;
  ro_sockets : (int, Socket.t) Hashtbl.t;  (* sock_ref -> live socket *)
  ro_op : int;  (* manager operation id (trace_ctx), 0 when untraced *)
  ro_span : int;  (* id of this op's "pod_restart" span, -1 when untraced *)
  ro_started : Simtime.t;
  mutable ro_conn_started : Simtime.t;
  mutable ro_conn_done : Simtime.t;
  mutable ro_net_done : Simtime.t;
  mutable ro_pending_conns : int;
  mutable ro_temp_listeners : Socket.t list;
  mutable ro_aborted : bool;
}

type t = {
  node : int;
  kernel : Kernel.t;
  fabric : Fabric.t;
  engine : Engine.t;
  params : Params.t;
  storage : Storage.t;
  mutable chan : Protocol.channel option;
  pods : (int, Pod.t) Hashtbl.t;
  streamed : (int, Image.t) Hashtbl.t;  (* images received by direct migration *)
  deltas : (int, delta_cache) Hashtbl.t;  (* pod -> incremental base *)
  ckpts : (int, ckpt_op) Hashtbl.t;
  restores : (int, restore_op) Hashtbl.t;
  migs : (int, mig_op) Hashtbl.t;  (* source-side pre-copy loops in flight *)
  stages : (int, mig_stage) Hashtbl.t;  (* dest-side staged migration images *)
  skeletons : (int, bool ref) Hashtbl.t;
  (* dest-side pod skeleton builds, started at the migration announce so the
     [restore_fixed] work overlaps the pre-copy rounds; the flag flips to
     true when the skeleton is ready for a fast activation *)
  rng : Zapc_sim.Rng.t;
  metrics : Metrics.t;
  mutable trace : Trace.t option;
  mutable peer_agents : (int -> t option);  (* resolve agents for streaming *)
}

let create ?metrics ~node ~params ~storage ~fabric kernel =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  {
    node;
    kernel;
    fabric;
    engine = Kernel.engine kernel;
    params;
    storage;
    chan = None;
    pods = Hashtbl.create 4;
    streamed = Hashtbl.create 4;
    deltas = Hashtbl.create 4;
    ckpts = Hashtbl.create 4;
    restores = Hashtbl.create 4;
    migs = Hashtbl.create 4;
    stages = Hashtbl.create 4;
    skeletons = Hashtbl.create 4;
    rng = Zapc_sim.Rng.split (Engine.rng (Kernel.engine kernel));
    metrics;
    trace = None;
    peer_agents = (fun _ -> None);
  }

let set_trace t tr = t.trace <- Some tr

let trace t ~pod what =
  match t.trace with
  | Some tr -> Trace.record tr ~node:t.node ~time:(Engine.now t.engine) ~pod what
  | None -> ()

(* Typed phase spans on this agent's (node, pod) track; the standalone
   span overlapping the manager's sync span is the Figure-2 picture.
   [op]/[parent] stitch the span into the cross-node causal tree: the
   operation id and parent span id arrive in the command's
   [Protocol.trace_ctx] and are threaded through the op records below. *)
let span_begin t ?op ?parent ~pod name =
  match t.trace with
  | Some tr ->
    Trace.span_begin tr ~time:(Engine.now t.engine) ?op ~node:t.node ?parent
      ~pod name
  | None -> ()

let span_begin_id t ?op ?parent ~pod name =
  match t.trace with
  | Some tr ->
    Trace.span_begin_id tr ~time:(Engine.now t.engine) ?op ~node:t.node
      ?parent ~pod name
  | None -> -1

let span_end t ~pod name =
  match t.trace with
  | Some tr -> Trace.span_end tr ~time:(Engine.now t.engine) ~pod name
  | None -> ()

let span_end_all t ~pod =
  match t.trace with
  | Some tr -> Trace.span_end_all tr ~time:(Engine.now t.engine) ~pod
  | None -> ()

let register_pod t pod = Hashtbl.replace t.pods pod.Pod.pod_id pod

let forget_pod t pod_id =
  Hashtbl.remove t.pods pod_id;
  Hashtbl.remove t.deltas pod_id
let find_pod t pod_id = Hashtbl.find_opt t.pods pod_id

let send_to_manager t msg =
  match t.chan with
  | Some ch -> Control.send_up ch ~bytes:(Protocol.to_manager_bytes msg) msg
  | None -> ()

let report_failure t pod_id detail =
  send_to_manager t
    (Protocol.M_done
       { node = t.node; pod_id; ok = false; detail; stats = Protocol.zero_stats })

let after t delay fn = Engine.schedule t.engine ~label:"agent.after" ~delay fn
let nf t = Fabric.netfilter t.fabric

(* Unpack a wire trace context into (operation id, parent span id). *)
let ctx_args (ctx : Protocol.trace_ctx option) =
  match ctx with
  | Some c -> (c.Protocol.tc_op, Some c.Protocol.tc_parent)
  | None -> (0, None)

(* Agent-side costs carry uniform jitter (background load, cache state);
   the paper's checkpoint-time std-devs are 10-60% of the average. *)
let jittered t cost =
  let j = t.params.cost_jitter in
  if j <= 0.0 then cost
  else
    let f = 1.0 +. Zapc_sim.Rng.float t.rng (2.0 *. j) -. j in
    Simtime.ns (int_of_float (float_of_int cost *. f))

(* (node, pod_id) -> parked restart continuation awaiting a streamed image *)
let parked : (int * int, unit -> unit) Hashtbl.t = Hashtbl.create 8

(* Base key for migration residue deltas: never stored, the destination
   applies them onto its staged image immediately. *)
let mig_base_key pod_id = Printf.sprintf "mig:pod%d" pod_id

(* ------------------------------------------------------------------ *)
(* Abort paths (Manager failure / explicit abort / timeouts)           *)
(* ------------------------------------------------------------------ *)

(* Both aborts are idempotent: a second call (say an explicit A_abort after
   a channel break already cleaned up) finds nothing and does nothing. *)

let abort_checkpoint t pod_id =
  match Hashtbl.find_opt t.ckpts pod_id with
  | None -> ()
  | Some op ->
    op.co_aborted <- true;
    Netfilter.unblock (nf t) op.co_pod.rip;
    Pod.resume op.co_pod;
    Metrics.incr t.metrics "agent.ckpt_aborted";
    trace t ~pod:pod_id "ckpt_aborted";
    span_end_all t ~pod:pod_id;
    Hashtbl.remove t.ckpts pod_id

let abort_restart t pod_id =
  (* a restart parked waiting for a streamed image has no restore_op yet;
     dropping the parked continuation is the whole abort *)
  Hashtbl.remove parked (t.node, pod_id);
  match Hashtbl.find_opt t.restores pod_id with
  | None -> ()
  | Some op ->
    op.ro_aborted <- true;
    Pod.destroy op.ro_pod;
    forget_pod t pod_id;
    Metrics.incr t.metrics "agent.restart_aborted";
    trace t ~pod:pod_id "restart_aborted";
    span_end_all t ~pod:pod_id;
    Hashtbl.remove t.restores pod_id

(* Aborting a migration on the source just stops the pre-copy loop — the
   pod was never suspended, so it simply keeps running (the final
   stop-and-copy, if in flight, is a ckpt_op and abort_checkpoint resumes
   it).  On the destination it drops whatever was staged. *)
let abort_migrate t pod_id =
  if Hashtbl.mem t.stages pod_id || Hashtbl.mem t.skeletons pod_id then begin
    Hashtbl.remove t.stages pod_id;
    Hashtbl.remove t.streamed pod_id;
    Hashtbl.remove t.skeletons pod_id;
    trace t ~pod:pod_id "mig_stage_dropped"
  end;
  match Hashtbl.find_opt t.migs pod_id with
  | None -> ()
  | Some mop ->
    mop.mi_aborted <- true;
    Hashtbl.remove t.migs pod_id;
    Metrics.incr t.metrics "agent.mig_aborted";
    trace t ~pod:pod_id "mig_aborted";
    if not (Hashtbl.mem t.ckpts pod_id) then span_end_all t ~pod:pod_id

let abort_all t =
  let cks = Hashtbl.fold (fun k _ acc -> k :: acc) t.ckpts [] in
  List.iter (abort_checkpoint t) cks;
  let mgs =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.migs []
    @ Hashtbl.fold (fun k _ acc -> k :: acc) t.stages []
    @ Hashtbl.fold (fun k _ acc -> k :: acc) t.skeletons []
  in
  List.iter (abort_migrate t) (List.sort_uniq Int.compare mgs);
  let rss = Hashtbl.fold (fun k _ acc -> k :: acc) t.restores [] in
  List.iter (abort_restart t) rss

(* ------------------------------------------------------------------ *)
(* Checkpoint (Figure 1, Agent side)                                   *)
(* ------------------------------------------------------------------ *)

let rec start_ckpt_op ?(incremental = false) ?mig ?ctx t ~pod_id ~dest ~resume =
  match find_pod t pod_id with
  | None -> report_failure t pod_id "no such pod"
  | Some pod when Pod.member_count pod = 0 ->
    (* a pod whose processes have all died has nothing consistent to save;
       refusing keeps a coordinated checkpoint from recording a partially
       dead application as a good recovery point *)
    report_failure t pod_id "pod has no live processes"
  | Some pod ->
    (* the causal context comes off the wire for a manager-driven
       checkpoint, or from the enclosing pre-copy loop for a migration's
       final stop-and-copy *)
    let op_id, parent =
      match (ctx, mig) with
      | Some _, _ -> ctx_args ctx
      | None, Some (m : mig_op) -> (m.mi_op, Trace.parent_arg m.mi_span)
      | None, None -> (0, None)
    in
    let top = span_begin_id t ~op:op_id ?parent ~pod:pod_id "pod_ckpt" in
    let op =
      { co_pod = pod; co_dest = dest; co_resume = resume; co_incremental = incremental;
        co_mig = mig;
        co_op = op_id; co_span = top;
        co_started = Engine.now t.engine;
        co_continue = false; co_standalone_done = false; co_result = None;
        co_delta = None;
        co_net_time = Simtime.zero; co_finalizing = false; co_aborted = false }
    in
    Hashtbl.replace t.ckpts pod_id op;
    span_begin t ~op:op_id ?parent:(Trace.parent_arg top) ~pod:pod_id "suspend";
    (* step 1: suspend the pod, block its network *)
    let suspend_cost =
      Simtime.add
        (Params.scale t.params.kconfig.signal_cost (Pod.member_count pod))
        t.params.netfilter_cost
    in
    after t suspend_cost (fun () ->
        if not op.co_aborted then begin
          Pod.suspend pod;
          Netfilter.block (nf t) pod.rip;
          span_end t ~pod:pod.pod_id "suspend";
          (* the network-blocked window: the application downtime story *)
          span_begin t ~op:op.co_op ?parent:(Trace.parent_arg op.co_span)
            ~pod:pod.pod_id "paused";
          (match op.co_mig with
           | Some mop ->
             (* the migration blackout starts here and only ends when the
                destination Agent resumes the pod, which is also who closes
                the span (Trace matches open spans by name and pod) *)
             mop.mi_suspend <- Engine.now t.engine;
             span_begin t ~op:op.co_op ?parent:(Trace.parent_arg mop.mi_span)
               ~pod:pod.pod_id "blackout";
             trace t ~pod:pod.pod_id "mig_blackout"
           | None -> ());
          trace t ~pod:pod.pod_id "suspended";
          ckpt_network t op
        end)

(* step 2: network-state checkpoint; 2a: report meta-data *)
and ckpt_network t op =
  span_begin t ~op:op.co_op ?parent:(Trace.parent_arg op.co_span)
    ~pod:op.co_pod.pod_id "net_ckpt";
  let t0 = Engine.now t.engine in
  let mode = if t.params.peek_mode then Sock_state.Peek else Sock_state.Read_inject in
  let net = Net_ckpt.checkpoint ~mode op.co_pod in
  let cost =
    jittered t
      (Simtime.add t.params.net_ckpt_fixed
         (Simtime.add
            (Params.scale t.params.per_socket_ckpt net.socket_count)
            (Params.copy_time ~bps:t.params.mem_bw net.image_bytes)))
  in
  after t cost (fun () ->
      if not op.co_aborted then begin
        op.co_net_time <- Simtime.sub (Engine.now t.engine) t0;
        span_end t ~pod:op.co_pod.pod_id "net_ckpt";
        trace t ~pod:op.co_pod.pod_id "net_ckpt_done";
        send_to_manager t
          (Protocol.M_meta
             { node = t.node; pod_id = op.co_pod.pod_id; meta = net.meta;
               meta_bytes = Meta.size_bytes net.meta });
        trace t ~pod:op.co_pod.pod_id "meta_sent";
        arm_continue_timeout t op;
        if t.params.serial_ckpt then
          (* ablation: wait for 'continue' before the standalone checkpoint *)
          wait_continue_then t op (fun () -> ckpt_standalone t op net)
        else ckpt_standalone t op net
      end)

(* The meta-data is out; if the Manager's 'continue' never arrives (hung
   Manager, or a control channel that is stalled without being broken) the
   pod must not stay suspended forever.  Abort our side and let it resume;
   the failure report is best-effort — the Manager may be gone. *)
and arm_continue_timeout t op =
  if Simtime.compare t.params.phase_timeout Simtime.zero > 0 then
    after t t.params.phase_timeout (fun () ->
        match Hashtbl.find_opt t.ckpts op.co_pod.pod_id with
        | Some op' when op' == op && (not op.co_continue) && not op.co_aborted ->
          abort_checkpoint t op.co_pod.pod_id;
          report_failure t op.co_pod.pod_id "timed out waiting for continue"
        | Some _ | None -> ())

and wait_continue_then t op fn =
  if op.co_continue then fn ()
  else after t (Simtime.us 50) (fun () -> if not op.co_aborted then wait_continue_then t op fn)

(* A delta is only worth (and only safe) writing when chaining to storage
   and the base this Agent remembers for the pod is still resident there;
   the chain cap is what periodically forces a fresh full image — or, on a
   live migration's final stop-and-copy, when the destination already holds
   the last pre-copy round: the residue diffs against it. *)
and choose_delta t op (res : Pod_ckpt.checkpoint_result) =
  match op.co_mig with
  | Some { mi_last = Some base; _ } ->
    let dirty_bytes = Pod_ckpt.dirty_memory_bytes op.co_pod in
    Some
      (Image.of_pod_image
         (Delta.make ~base_key:(mig_base_key op.co_pod.pod_id) ~base
            ~full:res.image ~dirty_bytes))
  | Some { mi_last = None; _ } -> None  (* round cap 0: plain stop-and-copy *)
  | None ->
    if not op.co_incremental then None
    else
      match op.co_dest with
      | Protocol.U_node _ -> None  (* migration streams a full image *)
      | Protocol.U_storage _ ->
        (match Hashtbl.find_opt t.deltas op.co_pod.pod_id with
         | Some c when c.dc_chain < t.params.max_delta_chain
                       && Storage.mem t.storage c.dc_key ->
           let dirty_bytes = Pod_ckpt.dirty_memory_bytes op.co_pod in
           let dv =
             Delta.make ~base_key:c.dc_key ~base:c.dc_image ~full:res.image
               ~dirty_bytes
           in
           Some (Image.of_pod_image dv)
         | Some _ | None -> None)

(* step 3: standalone pod checkpoint, overlapped with the Manager sync *)
and ckpt_standalone t op net =
  span_begin t ~op:op.co_op ?parent:(Trace.parent_arg op.co_span)
    ~pod:op.co_pod.pod_id "standalone";
  let mode = if t.params.peek_mode then Sock_state.Peek else Sock_state.Read_inject in
  let res = Pod_ckpt.checkpoint ~mode ~net op.co_pod in
  op.co_delta <- choose_delta t op res;
  (* the copy cost scales with what will actually be written: only the
     dirty regions and changed processes of a delta *)
  let write_bytes =
    match op.co_delta with
    | Some d -> d.Image.logical_size
    | None -> Pod_ckpt.logical_size res
  in
  (* a migration's final stop after pre-copy rounds already enumerated the
     kernel objects: only the dirty-residue scan remains *)
  let fixed =
    match op.co_mig with
    | Some { mi_last = Some _; _ } -> t.params.mig_stop_fixed
    | Some { mi_last = None; _ } | None -> t.params.ckpt_fixed
  in
  (* the compressor is a virtual-CPU stage of the image pipeline: every
     written byte passes through it at compress_bps before hitting storage
     (the stored bytes shrink; the checkpoint pays the CPU time) *)
  let compress_cost =
    if t.params.compress then
      Params.copy_time ~bps:t.params.compress_bps write_bytes
    else Simtime.zero
  in
  let cost =
    jittered t
      (Simtime.add fixed
         (Simtime.add compress_cost
            (Simtime.add
               (Params.scale t.params.per_proc_ckpt res.proc_count)
               (Params.copy_time ~bps:t.params.mem_bw write_bytes))))
  in
  after t cost (fun () ->
      if not op.co_aborted then begin
        op.co_result <- Some res;
        op.co_standalone_done <- true;
        span_end t ~pod:op.co_pod.pod_id "standalone";
        trace t ~pod:op.co_pod.pod_id "standalone_done";
        maybe_finalize_ckpt t op
      end)

(* steps 3a/4/4a: unblock and finish only after the standalone checkpoint is
   done AND the Manager's 'continue' has arrived (the single sync point) *)
and maybe_finalize_ckpt t op =
  if op.co_standalone_done && op.co_continue && (not op.co_finalizing)
     && not op.co_aborted
  then begin
    op.co_finalizing <- true;
    (* optional file-system snapshot, taken "immediately prior to
       reactivating the pod" (paper section 4): copy the pod's subtree on
       the shared store; its cost extends the pause *)
    let fs_delay =
      if not t.params.fs_snapshot then Simtime.zero
      else begin
        let key =
          match op.co_dest with
          | Protocol.U_storage k -> k
          | Protocol.U_node n -> Printf.sprintf "stream-node%d.pod%d" n op.co_pod.pod_id
        in
        let copied =
          Zapc_simos.Simfs.snapshot_subtree (Kernel.fs t.kernel)
            ~src_prefix:(Pod.fs_root op.co_pod)
            ~dst_prefix:("/snapshots/" ^ key)
        in
        Params.copy_time ~bps:t.params.storage_bps copied
      end
    in
    after t fs_delay (fun () -> finalize_ckpt t op)
  end

and finalize_ckpt t op =
  if op.co_aborted then ()
  else match op.co_mig with
  | Some mop -> finalize_migration t op mop
  | None -> begin
    let pod = op.co_pod in
    let res = Option.get op.co_result in
    Netfilter.unblock (nf t) pod.rip;
    span_end t ~pod:pod.pod_id "paused";
    let image =
      match op.co_delta with
      | Some d -> d
      | None -> Image.of_pod_image res.image
    in
    let stored =
      match op.co_dest with
      | Protocol.U_storage key ->
        Storage.put ~op:op.co_op ?parent:(Trace.parent_arg op.co_span)
          ~node:t.node t.storage key image
      | Protocol.U_node target ->
        (* direct migration: stream the image to the receiving Agent without
           touching secondary storage *)
        stream_image t ~target ~image;
        Ok ()
    in
    match stored with
    | Error reason ->
      (* the image went nowhere, so the pod must survive even on the
         migration path — resume unconditionally and report the failure *)
      Pod.resume pod;
      trace t ~pod:pod.pod_id "resumed";
      span_end_all t ~pod:pod.pod_id;
      Hashtbl.remove t.ckpts pod.pod_id;
      report_failure t pod.pod_id (Printf.sprintf "storage write failed: %s" reason)
    | Ok () ->
    (* remember the durably stored image as the base for the next delta,
       and reset dirty tracking — everything written so far is now safe *)
    (match op.co_dest with
     | Protocol.U_storage key when op.co_resume ->
       let chain =
         match op.co_delta, Hashtbl.find_opt t.deltas pod.pod_id with
         | Some _, Some c -> c.dc_chain + 1
         | _ -> 0
       in
       Hashtbl.replace t.deltas pod.pod_id
         { dc_key = key; dc_image = res.image; dc_chain = chain };
       Pod_ckpt.clear_memory_dirty pod;
       Metrics.incr t.metrics
         (if op.co_delta <> None then "agent.delta_ckpts" else "agent.full_ckpts")
     | Protocol.U_storage _ | Protocol.U_node _ -> ());
    (if op.co_resume then begin
       Pod.resume pod;
       trace t ~pod:pod.pod_id "resumed"
     end
     else begin
       Pod.destroy pod;
       forget_pod t pod.pod_id;
       trace t ~pod:pod.pod_id "destroyed"
     end);
    span_end t ~pod:pod.pod_id "pod_ckpt";
    Hashtbl.remove t.ckpts pod.pod_id;
    let stats =
      {
        Protocol.st_net_time = op.co_net_time;
        st_local_time = Simtime.sub (Engine.now t.engine) op.co_started;
        st_conn_time = Simtime.zero;
        st_image_bytes = image.Image.logical_size;
        st_full_bytes =
          (match op.co_delta with
           | Some _ -> Pod_ckpt.logical_size res  (* what a full would have cost *)
           | None -> 0);
        st_net_bytes = res.net_result.image_bytes;
        st_sockets = res.net_result.socket_count;
        st_procs = res.proc_count;
      }
    in
    send_to_manager t
      (Protocol.M_done { node = t.node; pod_id = pod.pod_id; ok = true; detail = ""; stats })
  end

(* The migration residue: stream the last (stop-and-copy) image to the
   destination and, once it lands there, hand the pod off — the source only
   destroys its copy after the destination holds the authoritative one, so
   an abort or a broken link anywhere before that leaves the pod alive on
   the source (no lost-pod window, no split brain). *)
and finalize_migration t op mop =
  let pod = op.co_pod in
  let res = Option.get op.co_result in
  let image =
    match op.co_delta with
    | Some d -> d
    | None -> Image.of_pod_image res.image
  in
  trace t ~pod:pod.pod_id "mig_residue";
  if op.co_aborted || mop.mi_aborted then ()  (* the trace can inject faults *)
  else begin
    let delay =
      Simtime.add t.params.ctrl_latency
        (Params.copy_time ~bps:t.params.fabric.bandwidth_bps image.Image.logical_size)
    in
    after t delay (fun () ->
        if op.co_aborted || mop.mi_aborted then ()
        else
          let peer_ok =
            match t.peer_agents mop.mi_dest with
            | Some p ->
              (match p.chan with
               | Some ch -> not (Control.is_broken ch)
               | None -> false)
            | None -> false
          in
          if not peer_ok then begin
            (* the residue went nowhere: the pod must survive on the source *)
            Netfilter.unblock (nf t) pod.rip;
            Pod.resume pod;
            trace t ~pod:pod.pod_id "resumed";
            span_end_all t ~pod:pod.pod_id;
            Hashtbl.remove t.ckpts pod.pod_id;
            Hashtbl.remove t.migs pod.pod_id;
            report_failure t pod.pod_id "migration stream failed: destination unreachable"
          end
          else begin
            let peer = Option.get (t.peer_agents mop.mi_dest) in
            (* commit point: the destination stages the final image and
               sends M_migrate_done before the source lets go *)
            receive_mig_final peer ~pod_id:pod.pod_id ~image ~rounds:mop.mi_round
              ~precopy_bytes:mop.mi_precopy_bytes ~forced:mop.mi_forced
              ~suspend_at:mop.mi_suspend;
            Netfilter.unblock (nf t) pod.rip;
            span_end t ~pod:pod.pod_id "paused";
            Pod.destroy pod;
            forget_pod t pod.pod_id;
            span_end t ~pod:pod.pod_id "pod_ckpt";
            Hashtbl.remove t.ckpts pod.pod_id;
            Hashtbl.remove t.migs pod.pod_id;
            trace t ~pod:pod.pod_id "mig_handoff";
            let stats =
              {
                Protocol.st_net_time = op.co_net_time;
                st_local_time = Simtime.sub (Engine.now t.engine) mop.mi_started;
                st_conn_time = Simtime.zero;
                st_image_bytes = image.Image.logical_size;
                st_full_bytes =
                  (match op.co_delta with
                   | Some _ -> Pod_ckpt.logical_size res
                   | None -> 0);
                st_net_bytes = res.net_result.image_bytes;
                st_sockets = res.net_result.socket_count;
                st_procs = res.proc_count;
              }
            in
            send_to_manager t
              (Protocol.M_done
                 { node = t.node; pod_id = pod.pod_id; ok = true; detail = ""; stats })
          end)
  end

(* ------------------------------------------------------------------ *)
(* Live migration: source round loop and destination staging           *)
(* ------------------------------------------------------------------ *)

and start_migrate ?ctx t ~pod_id ~dest ~max_rounds ~dirty_threshold =
  match find_pod t pod_id with
  | None -> report_failure t pod_id "no such pod"
  | Some pod when Pod.member_count pod = 0 ->
    report_failure t pod_id "pod has no live processes"
  | Some _ when t.peer_agents dest = None ->
    report_failure t pod_id (Printf.sprintf "no agent on node %d" dest)
  | Some pod ->
    let op_id, parent = ctx_args ctx in
    (* with no pre-copy span (round cap 0) the final stop-and-copy parents
       directly under the manager's span *)
    let top =
      if max_rounds <= 0 then (match parent with Some p -> p | None -> -1)
      else span_begin_id t ~op:op_id ?parent ~pod:pod_id "mig_precopy"
    in
    let mop =
      { mi_pod = pod; mi_dest = dest; mi_max_rounds = max_rounds;
        mi_threshold = dirty_threshold;
        mi_op = op_id; mi_span = top;
        mi_started = Engine.now t.engine;
        mi_round = 0; mi_last = None; mi_full_bytes = 0; mi_precopy_bytes = 0;
        mi_forced = false; mi_suspend = Simtime.zero; mi_aborted = false }
    in
    Hashtbl.replace t.migs pod_id mop;
    Metrics.incr t.metrics "agent.mig_started";
    trace t ~pod:pod_id "mig_start";
    if max_rounds <= 0 then mig_final t mop  (* degenerate: pure stop-and-copy *)
    else begin
      (* announce the migration to the destination right away: the pod
         skeleton build (the [restore_fixed] work) overlaps the rounds *)
      after t t.params.ctrl_latency (fun () ->
          if not mop.mi_aborted then
            match t.peer_agents mop.mi_dest with
            | Some peer -> receive_mig_announce peer ~pod_id
            | None -> ());
      mig_round t mop
    end

(* One pre-copy round: capture the RUNNING pod (the non-destructive Peek —
   the proper read-inject extraction would drain queues the application is
   about to read), ship the full image (round 0) or a delta of the regions
   dirtied during the previous round, then decide: converged, forced, or
   another round.  The pod keeps dirtying memory under the copy; that is
   what the next round picks up. *)
and mig_round t mop =
  if mop.mi_aborted then ()
  else begin
    let pod = mop.mi_pod in
    let round = mop.mi_round in
    let t0 = Engine.now t.engine in
    let res = Pod_ckpt.checkpoint ~mode:Sock_state.Peek pod in
    let dirty_snap = Pod_ckpt.snapshot_memory_dirty pod in
    let image =
      match round, mop.mi_last with
      | 0, _ | _, None ->
        mop.mi_full_bytes <- Pod_ckpt.logical_size res;
        Image.of_pod_image res.image
      | _, Some base ->
        Image.of_pod_image
          (Delta.make ~base_key:(mig_base_key pod.pod_id) ~base ~full:res.image
             ~dirty_bytes:dirty_snap)
    in
    mop.mi_last <- Some res.image;
    let bytes = image.Image.logical_size in
    (* capture at memory bandwidth, then stream over the fabric *)
    let delay =
      Simtime.add
        (jittered t (Params.copy_time ~bps:t.params.mem_bw bytes))
        (Simtime.add t.params.ctrl_latency
           (Params.copy_time ~bps:t.params.fabric.bandwidth_bps bytes))
    in
    after t delay (fun () ->
        if mop.mi_aborted then ()
        else begin
          (match t.peer_agents mop.mi_dest with
           | Some peer -> receive_mig_round peer ~pod_id:pod.pod_id ~round image
           | None -> ());
          mop.mi_precopy_bytes <- mop.mi_precopy_bytes + bytes;
          mop.mi_round <- round + 1;
          let dirty_now = Pod_ckpt.dirty_memory_bytes pod in
          trace t ~pod:pod.pod_id "mig_round";
          send_to_manager t
            (Protocol.M_migrate_round
               { node = t.node; pod_id = pod.pod_id;
                 stats =
                   { Protocol.mg_round = round; mg_bytes = bytes;
                     mg_dirty = dirty_now;
                     mg_duration = Simtime.sub (Engine.now t.engine) t0 } });
          if mop.mi_aborted then ()  (* the trace can inject faults *)
          else if
            float_of_int dirty_now
            <= mop.mi_threshold *. float_of_int mop.mi_full_bytes
          then begin
            trace t ~pod:pod.pod_id "mig_converged";
            span_end t ~pod:pod.pod_id "mig_precopy";
            mig_final t mop
          end
          else if mop.mi_round >= mop.mi_max_rounds then begin
            mop.mi_forced <- true;
            trace t ~pod:pod.pod_id "mig_forced";
            span_end t ~pod:pod.pod_id "mig_precopy";
            mig_final t mop
          end
          else mig_round t mop
        end)
  end

(* The convergence policy said stop: run the final stop-and-copy through
   the ordinary coordinated-checkpoint machine (suspend, net-ckpt, meta to
   the Manager, continue, standalone, residue stream + handoff). *)
and mig_final t mop =
  if not mop.mi_aborted then
    start_ckpt_op ~mig:mop t ~pod_id:mop.mi_pod.pod_id
      ~dest:(Protocol.U_node mop.mi_dest) ~resume:false

(* Destination: a migration was announced.  Start building the pod skeleton
   (the [restore_fixed] work: image validation scaffolding, kernel-object
   re-creation) immediately so it overlaps the source's pre-copy rounds;
   the activation after the final stop-and-copy then only pays
   [mig_resume_fixed] plus the residue copy. *)
and receive_mig_announce t ~pod_id =
  let dead = match t.chan with Some ch -> Control.is_broken ch | None -> true in
  if dead then ()
  else begin
    let flag = ref false in
    Hashtbl.replace t.skeletons pod_id flag;
    trace t ~pod:pod_id "mig_skeleton";
    after t (jittered t t.params.restore_fixed) (fun () ->
        match Hashtbl.find_opt t.skeletons pod_id with
        | Some f when f == flag ->
          f := true;
          trace t ~pod:pod_id "mig_prestaged"
        | Some _ | None -> ())
  end

(* Destination: one pre-copy round landed.  Round 0 stages the full image;
   later rounds fold their deltas into the staged image.  The memory
   preload needs no extra delay of its own: the write-back proceeds as the
   bytes arrive, and memory bandwidth exceeds the fabric's. *)
and receive_mig_round t ~pod_id ~round (image : Image.t) =
  let dead = match t.chan with Some ch -> Control.is_broken ch | None -> true in
  if dead then ()  (* a crashed destination never sees the stream *)
  else begin
    let v = Image.to_pod_image image in
    if round = 0 then begin
      let stage = { sg_image = v; sg_residue = 0; sg_suspend_at = Simtime.zero } in
      Hashtbl.replace t.stages pod_id stage;
      trace t ~pod:pod_id "mig_stage0"
    end
    else
      match Hashtbl.find_opt t.stages pod_id with
      | None -> ()  (* stage dropped by an abort; ignore the stray round *)
      | Some sg -> sg.sg_image <- Delta.apply ~base:sg.sg_image v
  end

(* Destination: the final stop-and-copy landed.  Materialize the full
   image, make it restartable (the streamed table), and COMMIT by telling
   the Manager — from here on the destination copy wins even if the source
   dies before its own done-report gets out. *)
and receive_mig_final t ~pod_id ~(image : Image.t) ~rounds ~precopy_bytes ~forced
    ~suspend_at =
  let dead = match t.chan with Some ch -> Control.is_broken ch | None -> true in
  if dead then ()
  else begin
    let v = Image.to_pod_image image in
    let full_opt =
      if Delta.is_delta v then
        match Hashtbl.find_opt t.stages pod_id with
        | Some sg -> Some (Delta.apply ~base:sg.sg_image v)
        | None -> None  (* stage dropped by an abort racing the residue *)
      else Some v
    in
    match full_opt with
    | None -> trace t ~pod:pod_id "mig_residue_dropped"
    | Some full ->
      let stage =
        match Hashtbl.find_opt t.stages pod_id with
        | Some sg -> sg
        | None ->
          (* round cap 0: nothing was prestaged, the restore pays full cost *)
          let sg =
            { sg_image = full; sg_residue = 0; sg_suspend_at = suspend_at }
          in
          Hashtbl.replace t.stages pod_id sg;
          sg
      in
      stage.sg_image <- full;
      stage.sg_residue <- image.Image.logical_size;
      stage.sg_suspend_at <- suspend_at;
      Hashtbl.replace t.streamed pod_id (Image.of_pod_image full);
      trace t ~pod:pod_id "mig_final_staged";
      send_to_manager t
        (Protocol.M_migrate_done { node = t.node; pod_id; rounds; precopy_bytes; forced });
      try_start_parked_restart t pod_id
  end

and stream_image t ~target ~image =
  match t.peer_agents target with
  | None -> Log.err (fun m -> m "no agent on node %d to stream to" target)
  | Some peer ->
    let delay =
      Simtime.add t.params.ctrl_latency
        (Params.copy_time ~bps:t.params.fabric.bandwidth_bps image.Image.logical_size)
    in
    after t delay (fun () ->
        Hashtbl.replace peer.streamed image.Image.pod_id image;
        (* a restart command may already be parked waiting for this image *)
        try_start_parked_restart peer image.Image.pod_id)

and try_start_parked_restart t pod_id =
  match Hashtbl.find_opt parked (t.node, pod_id) with
  | Some k ->
    Hashtbl.remove parked (t.node, pod_id);
    k ()
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Restart (Figure 3, Agent side)                                      *)
(* ------------------------------------------------------------------ *)

and start_restart ?ctx t ~pod_id ~name ~vip ~rip ~uri ~entries ~vip_map ~extra_altq
    ~skip_sendq =
  let with_image fn =
    match uri with
    | Protocol.U_storage key ->
      (match Storage.get t.storage key with
       | Some image -> fn image
       | None -> report_failure t pod_id ("no image at " ^ key))
    | Protocol.U_node _ ->
      (match Hashtbl.find_opt t.streamed pod_id with
       | Some image -> fn image
       | None ->
         (* image still in flight: park the restart until it lands *)
         Hashtbl.replace parked (t.node, pod_id) (fun () ->
             match Hashtbl.find_opt t.streamed pod_id with
             | Some image -> fn image
             | None -> report_failure t pod_id "streamed image lost"))
  in
  with_image (fun image ->
      let image_v = Image.to_pod_image image in
      let op_id, parent = ctx_args ctx in
      let top = span_begin_id t ~op:op_id ?parent ~pod:pod_id "pod_restart" in
      span_begin t ~op:op_id ?parent:(Trace.parent_arg top) ~pod:pod_id
        "pod_create";
      after t t.params.pod_create_cost (fun () ->
          (* step 1: create a new (empty) pod *)
          let pod = Pod.create ~pod_id ~name ~vip ~rip t.kernel in
          pod.virtualize_time <- t.params.virtualize_time;
          (* [vip_map] covers only the restored set; saved connections may
             also reference application pods outside it, so extend with the
             rest of the world (first match wins, new bindings shadow) *)
          Pod.set_vip_map pod (vip_map @ Pod.current_vip_map ());
          register_pod t pod;
          let op =
            {
              ro_pod = pod;
              ro_mig = Hashtbl.find_opt t.stages pod_id;
              ro_image = image_v;
              ro_entries = entries;
              ro_extra_altq = extra_altq;
              ro_skip_sendq = skip_sendq;
              ro_sock_imgs = Pod_ckpt.sockets_of_image image_v;
              ro_my_meta = Pod_ckpt.meta_of_image image_v;
              ro_sockets = Hashtbl.create 8;
              ro_op = op_id;
              ro_span = top;
              ro_started = Engine.now t.engine;
              ro_conn_started = Engine.now t.engine;
              ro_conn_done = Engine.now t.engine;
              ro_net_done = Engine.now t.engine;
              ro_pending_conns = 0;
              ro_temp_listeners = [];
              ro_aborted = false;
            }
          in
          Hashtbl.replace t.restores pod_id op;
          span_end t ~pod:pod_id "pod_create";
          trace t ~pod:pod_id "pod_created";
          span_begin t ~op:op.ro_op ?parent:(Trace.parent_arg op.ro_span)
            ~pod:pod_id "conn_recovery";
          restore_connectivity t op))

(* step 2: recover network connectivity — listeners first, then the two
   concurrent tasks.  All addresses here are real (translated through the
   pod's freshly installed namespace map). *)
and restore_connectivity t op =
  let pod = op.ro_pod in
  let ns = pod.Pod.ns in
  let net = Kernel.netstack t.kernel in
  op.ro_conn_started <- Engine.now t.engine;
  (* restore listening sockets (they also serve the acceptor task) *)
  Array.iteri
    (fun i (im : Sock_state.image) ->
      match im.hl with
      | `Listener backlog ->
        let s = Netstack.new_socket net Socket.Stream in
        s.src_hint <- Some pod.rip;
        Sock_state.restore_options s im;
        let local = Namespace.translate_addr_out ns (Option.get im.local) in
        let local =
          if Addr.equal_ip local.ip Addr.any then { local with Addr.ip = pod.rip }
          else local
        in
        (match Netstack.bind net s local with
         | Ok () -> ignore (Netstack.listen net s (Stdlib.max 1 backlog))
         | Error e ->
           Log.err (fun m -> m "restart: bind listener failed: %s" (Errno.to_string e)));
        Hashtbl.replace op.ro_sockets i s
      | `Conn _ | `Plain -> ())
    op.ro_sock_imgs;
  (* split the schedule *)
  let conn_entries =
    List.filter (fun (e : Meta.restart_entry) -> not e.ri_orphan) op.ro_entries
  in
  op.ro_pending_conns <- List.length conn_entries;
  let accepts, connects =
    List.partition (fun (e : Meta.restart_entry) -> e.ri_role = Meta.Accept) conn_entries
  in
  if op.ro_pending_conns = 0 then connectivity_done t op
  else begin
    run_acceptor_task t op accepts;
    run_connector_task t op connects
  end

and conn_established t op (e : Meta.restart_entry) (s : Socket.t) =
  Hashtbl.replace op.ro_sockets e.ri_sock_ref s;
  op.ro_pending_conns <- op.ro_pending_conns - 1;
  if op.ro_pending_conns = 0 && not op.ro_aborted then connectivity_done t op

(* One thread of execution handles incoming connection requests... *)
and run_acceptor_task t op accepts =
  if accepts <> [] then begin
    let pod = op.ro_pod in
    let ns = pod.Pod.ns in
    let net = Kernel.netstack t.kernel in
    (* group expected peers by local port; reuse restored app listeners when
       they exist, otherwise create temporary ones *)
    let by_port = Hashtbl.create 4 in
    List.iter
      (fun (e : Meta.restart_entry) ->
        let l = Hashtbl.find_opt by_port e.ri_local.port in
        Hashtbl.replace by_port e.ri_local.port (e :: Option.value l ~default:[]))
      accepts;
    (* index the restored listeners by port once (mass restores bring
       thousands of sockets; a per-port scan over all of them is O(n^2)) *)
    let listeners_by_port = Hashtbl.create 8 in
    Hashtbl.iter
      (fun _ (s : Socket.t) ->
        if Socket.is_listening s then
          match s.local with
          | Some l when not (Hashtbl.mem listeners_by_port l.port) ->
            Hashtbl.replace listeners_by_port l.port s
          | Some _ | None -> ())
      op.ro_sockets;
    Hashtbl.iter
      (fun port entries ->
        let listener =
          match Hashtbl.find_opt listeners_by_port port with
          | Some s -> s
          | None ->
            let s = Netstack.new_socket net Socket.Stream in
            s.src_hint <- Some pod.rip;
            (match Netstack.bind net s { Addr.ip = pod.rip; port } with
             | Ok () -> ignore (Netstack.listen net s 64)
             | Error e ->
               Log.err (fun m ->
                   m "restart: temp listener bind failed: %s" (Errno.to_string e)));
            op.ro_temp_listeners <- s :: op.ro_temp_listeners;
            s
        in
        let expected = ref entries in
        let rec pump () =
          if (not op.ro_aborted) && !expected <> [] then
            match Netstack.accept_take listener with
            | Some child ->
              let remote = Option.get child.Socket.remote in
              (match
                 List.partition
                   (fun (e : Meta.restart_entry) ->
                     let want = Namespace.translate_addr_out ns e.ri_remote in
                     Addr.equal want remote)
                   !expected
               with
               | matched :: _, rest ->
                 expected := rest;
                 child.born_by_accept <- true;
                 conn_established t op matched child
               | [], _ ->
                 (* unexpected connection during recovery: drop it *)
                 Netstack.close net child);
              pump ()
            | None -> Socket.wait_readable listener pump
        in
        pump ())
      by_port
  end

(* ...and the other establishes connections to remote pods (with retry:
   the peer Agent may not have its listeners up yet). *)
and run_connector_task t op connects =
  let pod = op.ro_pod in
  let ns = pod.Pod.ns in
  let net = Kernel.netstack t.kernel in
  let connect_one (e : Meta.restart_entry) =
    let dst = Namespace.translate_addr_out ns e.ri_remote in
    let rec attempt tries =
      if (not op.ro_aborted) && tries < 200 then begin
        let s = Netstack.new_socket net Socket.Stream in
        s.src_hint <- Some pod.rip;
        (* preserve the original source port (paper section 4) *)
        let local = { Addr.ip = pod.rip; port = e.ri_local.port } in
        match Netstack.bind net s local with
        | Error _ -> after t (Simtime.ms 5) (fun () -> attempt (tries + 1))
        | Ok () ->
          (match Netstack.connect_start net s dst with
           | Error _ -> after t (Simtime.ms 5) (fun () -> attempt (tries + 1))
           | Ok () ->
             let rec check () =
               if not op.ro_aborted then
                 match s.tcb with
                 | Some tcb ->
                   (match tcb.st with
                    | Socket.St_established ->
                      s.born_by_accept <- false;
                      conn_established t op e s
                    | Socket.St_syn_sent | Socket.St_syn_received ->
                      Socket.wait_writable s check
                    | Socket.St_closed ->
                      Netstack.close net s;
                      after t (Simtime.ms 10) (fun () -> attempt (tries + 1))
                    | Socket.St_listen | Socket.St_fin_wait_1 | Socket.St_fin_wait_2
                    | Socket.St_close_wait | Socket.St_closing | Socket.St_last_ack
                    | Socket.St_time_wait -> Socket.wait_writable s check)
                 | None -> ()
             in
             check ())
      end
      else if not op.ro_aborted then begin
        op.ro_aborted <- true;
        report_failure t pod.Pod.pod_id "connection recovery failed"
      end
    in
    attempt 0
  in
  List.iter connect_one connects

and connectivity_done t op =
  op.ro_conn_done <- Engine.now t.engine;
  span_end t ~pod:op.ro_pod.pod_id "conn_recovery";
  trace t ~pod:op.ro_pod.pod_id "conns_recovered";
  span_begin t ~op:op.ro_op ?parent:(Trace.parent_arg op.ro_span)
    ~pod:op.ro_pod.pod_id "net_restore";
  (* retire temporary listeners *)
  let net = Kernel.netstack t.kernel in
  List.iter (fun s -> Netstack.close net s) op.ro_temp_listeners;
  op.ro_temp_listeners <- [];
  restore_network_state t op

(* step 3: restore the network state of every socket *)
and restore_network_state t op =
  let pod = op.ro_pod in
  let ns = pod.Pod.ns in
  let net = Kernel.netstack t.kernel in
  (* own-meta entries indexed by sock_ref: the restore loops below do one
     lookup per socket, and mass restores carry thousands of them *)
  let my_entries = Hashtbl.create (List.length op.ro_my_meta.pm_entries) in
  List.iter
    (fun (e : Meta.entry) -> Hashtbl.replace my_entries e.sock_ref e)
    op.ro_my_meta.pm_entries;
  let acked_of ref_ =
    match Hashtbl.find_opt my_entries ref_ with Some e -> e.Meta.acked | None -> 0
  in
  let bytes = ref 0 in
  (* established connections *)
  List.iter
    (fun (e : Meta.restart_entry) ->
      if not e.ri_orphan then
        match Hashtbl.find_opt op.ro_sockets e.ri_sock_ref with
        | None -> ()
        | Some s ->
          let im = op.ro_sock_imgs.(e.ri_sock_ref) in
          let send_data =
            if op.ro_skip_sendq then ""
            else
              Sock_state.trim_overlap ~acked:(acked_of e.ri_sock_ref)
                ~peer_recv:e.ri_peer_recv im.send_data
          in
          bytes := !bytes + String.length im.recv_data + String.length send_data;
          Sock_state.restore_connection s im ~send_data
      else begin
        (* orphan: peer endpoint is gone; restore detached with its data *)
        let s = Netstack.new_socket net Socket.Stream in
        let im = op.ro_sock_imgs.(e.ri_sock_ref) in
        bytes := !bytes + String.length im.recv_data;
        Sock_state.restore_orphan s im;
        Hashtbl.replace op.ro_sockets e.ri_sock_ref s
      end)
    op.ro_entries;
  (* redirected peer send-queues are appended to the alternate queue *)
  List.iter
    (fun (ref_, data) ->
      match Hashtbl.find_opt op.ro_sockets ref_ with
      | Some s ->
        bytes := !bytes + String.length data;
        Socket.append_altqueue s data
      | None -> ())
    op.ro_extra_altq;
  (* datagram/raw sockets, connecting sockets, accept-queue re-insertion *)
  Array.iteri
    (fun i (im : Sock_state.image) ->
      match im.hl with
      | `Plain when im.kind <> Socket.Stream ->
        let s = Netstack.new_socket net im.kind in
        s.src_hint <- Some pod.rip;
        (match im.local with
         | Some l ->
           let real = Namespace.translate_addr_out ns l in
           let real =
             if Addr.equal_ip real.ip Addr.any then { real with Addr.ip = pod.rip }
             else real
           in
           ignore (Netstack.bind net s real)
         | None -> ());
        (match im.remote with
         | Some r -> ignore (Netstack.connect_start net s (Namespace.translate_addr_out ns r))
         | None -> ());
        Sock_state.restore_dgrams ~ns s im;
        bytes := !bytes + Sock_state.bytes_saved im;
        Hashtbl.replace op.ro_sockets i s
      | `Plain ->
        (* unconnected stream socket *)
        let s = Netstack.new_socket net Socket.Stream in
        s.src_hint <- Some pod.rip;
        Sock_state.restore_options s im;
        Hashtbl.replace op.ro_sockets i s
      | `Conn Meta.Connecting ->
        let restored_half_open =
          (* a SYN-queued child of a restored listener: rebuild it half-open
             so the peer's pending ACK (or retransmitted SYN, or first data
             segment) completes the handshake after the restart *)
          match Option.bind im.syn_child_of (Hashtbl.find_opt op.ro_sockets) with
          | Some listener when Socket.is_listening listener ->
            (match (Hashtbl.find_opt my_entries i, im.local, im.remote) with
             | Some e, Some l, Some r when e.Meta.sent > 0 && e.Meta.recv > 0 ->
               let s = Netstack.new_socket net Socket.Stream in
               s.src_hint <- Some pod.rip;
               Sock_state.restore_options s im;
               let local = Namespace.translate_addr_out ns l in
               let local =
                 if Addr.equal_ip local.ip Addr.any then { local with Addr.ip = pod.rip }
                 else local
               in
               s.Socket.local <- Some local;
               s.Socket.remote <- Some (Namespace.translate_addr_out ns r);
               s.Socket.parent <- Some listener;
               s.Socket.born_by_accept <- true;
               listener.Socket.pending_children <- listener.Socket.pending_children + 1;
               Socket.synq_add listener s;
               Tcp.restore_syn_received s ~iss:(e.Meta.sent - 1) ~irs:(e.Meta.recv - 1);
               Metrics.incr t.metrics "net.synq_restored";
               Hashtbl.replace op.ro_sockets i s;
               true
             | _ -> false)
          | Some _ | None -> false
        in
        if not restored_half_open then begin
          (* transient connection: the blocked connect re-executes on resume *)
          let s = Netstack.new_socket net Socket.Stream in
          s.src_hint <- Some pod.rip;
          Sock_state.restore_options s im;
          Hashtbl.replace op.ro_sockets i s
        end
      | `Conn _ | `Listener _ -> ())
    op.ro_sock_imgs;
  (* re-insert never-accepted connections into their listener's queue *)
  Array.iteri
    (fun i (im : Sock_state.image) ->
      match im.queued_on with
      | Some li ->
        (match (Hashtbl.find_opt op.ro_sockets i, Hashtbl.find_opt op.ro_sockets li) with
         | Some child, Some listener ->
           Queue.add child listener.accept_q;
           Socket.wake_readers listener
         | _ -> ())
      | None -> ())
    op.ro_sock_imgs;
  let cost =
    jittered t
      (Simtime.add t.params.net_restore_fixed
         (Simtime.add
            (Params.scale t.params.per_socket_restore (Array.length op.ro_sock_imgs))
            (Params.copy_time ~bps:t.params.mem_bw !bytes)))
  in
  after t cost (fun () ->
      if not op.ro_aborted then begin
        op.ro_net_done <- Engine.now t.engine;
        span_end t ~pod:op.ro_pod.pod_id "net_restore";
        trace t ~pod:op.ro_pod.pod_id "net_restored";
        span_begin t ~op:op.ro_op ?parent:(Trace.parent_arg op.ro_span)
          ~pod:op.ro_pod.pod_id "standalone_restore";
        restore_standalone t op
      end)

(* step 4: standalone restart, then resume without further delay.  A live
   migration whose announce prestaged this pod's skeleton skips the fixed
   restore cost and the full-image copy: only the residue still has to be
   applied.  A skeleton build still in flight is waited out — the remainder
   of that build is the blackout's cost, never a second full restore. *)
and restore_standalone t op =
  let skel = Hashtbl.find_opt t.skeletons op.ro_pod.pod_id in
  match op.ro_mig, skel with
  | Some _, Some ready when not !ready ->
    after t (Simtime.us 250) (fun () ->
        if not op.ro_aborted then restore_standalone t op)
  | _ ->
  let pod = op.ro_pod in
  let socket_of_ref i = Hashtbl.find_opt op.ro_sockets i in
  let procs = Pod_ckpt.restore_processes pod op.ro_image ~socket_of_ref in
  let mem_bytes = Pod_ckpt.memory_bytes_of_image op.ro_image in
  let image_bytes = Zapc_codec.Wire.encoded_size op.ro_image + mem_bytes in
  let cost =
    match op.ro_mig, skel with
    | Some sg, Some _ ->
      jittered t
        (Simtime.add t.params.mig_resume_fixed
           (Simtime.add
              (Params.scale t.params.per_proc_restore (List.length procs))
              (Params.copy_time ~bps:t.params.mem_bw sg.sg_residue)))
    | Some _, None | None, _ ->
      (* a storage-path restore of a compressed image pays the decompressor
         (migration streams travel uncompressed and skip it) *)
      let decompress_cost =
        if t.params.compress && op.ro_mig = None then
          Params.copy_time ~bps:t.params.compress_bps image_bytes
        else Simtime.zero
      in
      jittered t
        (Simtime.add t.params.restore_fixed
           (Simtime.add decompress_cost
              (Simtime.add
                 (Params.scale t.params.per_proc_restore (List.length procs))
                 (Params.copy_time ~bps:t.params.mem_bw image_bytes))))
  in
  after t cost (fun () ->
      if not op.ro_aborted then begin
        Pod.resume pod;
        (* gratuitous ARP: the vip now lives at this pod's new rip — update
           every live namespace so pods outside the restored set (clients!)
           can reach it with NEW connections, not just recovered ones *)
        Pod.rebind_vip ~vip:pod.vip ~rip:pod.rip;
        Metrics.incr t.metrics "net.vip_rebound";
        span_end t ~pod:pod.pod_id "standalone_restore";
        span_end t ~pod:pod.pod_id "pod_restart";
        trace t ~pod:pod.pod_id "restart_resumed";
        (match op.ro_mig with
         | Some sg ->
           (* end of the migration blackout: the span was opened by the
              source Agent at the final suspend *)
           Hashtbl.remove t.stages pod.pod_id;
           Hashtbl.remove t.streamed pod.pod_id;
           Hashtbl.remove t.skeletons pod.pod_id;
           Metrics.observe t.metrics "mig.blackout_ms"
             (Simtime.to_ms (Simtime.sub (Engine.now t.engine) sg.sg_suspend_at));
           span_end t ~pod:pod.pod_id "blackout";
           trace t ~pod:pod.pod_id "mig_activated"
         | None -> ());
        Hashtbl.remove t.restores pod.pod_id;
        let stats =
          {
            Protocol.st_net_time = Simtime.sub op.ro_net_done op.ro_conn_done;
            st_local_time = Simtime.sub (Engine.now t.engine) op.ro_started;
            st_conn_time = Simtime.sub op.ro_conn_done op.ro_conn_started;
            st_image_bytes = image_bytes;
            st_full_bytes = 0;
            st_net_bytes = 0;
            st_sockets = Array.length op.ro_sock_imgs;
            st_procs = List.length procs;
          }
        in
        send_to_manager t
          (Protocol.M_done
             { node = t.node; pod_id = pod.pod_id; ok = true; detail = ""; stats })
      end)

(* ------------------------------------------------------------------ *)
(* Wiring                                                              *)
(* ------------------------------------------------------------------ *)

let start_checkpoint ?incremental ?ctx t ~pod_id ~dest ~resume =
  start_ckpt_op ?incremental ?ctx t ~pod_id ~dest ~resume

let rec handle_command t (msg : Protocol.to_agent) =
  match msg with
  | Protocol.A_batch items ->
    (* tree mode puts a relay in front of the agent which unwraps bundles;
       a bundle reaching the agent directly carries only local items *)
    List.iter (fun (_, m) -> handle_command t m) items
  | Protocol.A_checkpoint { pod_id; dest; resume; incremental; ctx } ->
    start_checkpoint ~incremental ?ctx t ~pod_id ~dest ~resume
  | Protocol.A_continue { pod_id } ->
    (match Hashtbl.find_opt t.ckpts pod_id with
     | Some op ->
       op.co_continue <- true;
       trace t ~pod:pod_id "continue_received";
       maybe_finalize_ckpt t op
     | None -> ())
  | Protocol.A_abort { pod_id } ->
    abort_checkpoint t pod_id;
    abort_migrate t pod_id;
    abort_restart t pod_id
  | Protocol.A_migrate { pod_id; dest; max_rounds; dirty_threshold; ctx } ->
    start_migrate ?ctx t ~pod_id ~dest ~max_rounds ~dirty_threshold
  | Protocol.A_restart { pod_id; name; vip; rip; uri; entries; vip_map; extra_altq;
                         skip_sendq; ctx } ->
    start_restart ?ctx t ~pod_id ~name ~vip ~rip ~uri ~entries ~vip_map ~extra_altq
      ~skip_sendq
  | Protocol.A_ping { seq } ->
    (* heartbeat: answer immediately, even mid-operation — only a dead,
       hung, or disconnected Agent misses a beat *)
    send_to_manager t (Protocol.M_pong { node = t.node; seq })

let attach_channel t (ch : Protocol.channel) =
  t.chan <- Some ch;
  Control.set_down_handler ch (fun msg -> handle_command t msg);
  (* a broken Manager connection aborts every in-flight operation and lets
     the application resume (paper section 4) *)
  Control.on_break ch (fun () -> abort_all t)

(* Hand a command to this agent directly — the entry point a tree
   sub-coordinator ({!Relay}) uses after claiming the channel's down
   handler for routing. *)
let deliver = handle_command

let set_peer_resolver t fn = t.peer_agents <- fn

let node t = t.node

let live_pods t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.pods []
  |> List.sort (fun (a : Pod.t) (b : Pod.t) -> Int.compare a.pod_id b.pod_id)

let busy t =
  Hashtbl.length t.ckpts > 0 || Hashtbl.length t.restores > 0
  || Hashtbl.length t.migs > 0
