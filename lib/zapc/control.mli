(** Reliable control channels between the Manager and its Agents.

    The paper runs these over TCP connections kept open for the whole
    operation; the protocol needs ordered reliable delivery and prompt
    breakage detection, both modelled here: messages arrive after
    latency + size/bandwidth, and {!break} fires the failure callbacks on
    both sides so either party aborts gracefully (paper section 4). *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine

type ('up, 'down) t
(** ['up] flows to the Manager, ['down] to the Agent. *)

val create : engine:Engine.t -> latency:Simtime.t -> bps:float -> ('up, 'down) t
val set_up_handler : ('up, 'down) t -> ('up -> unit) -> unit
val set_down_handler : ('up, 'down) t -> ('down -> unit) -> unit
val on_break : ('up, 'down) t -> (unit -> unit) -> unit

val send_up : ('up, 'down) t -> bytes:int -> 'up -> unit
(** No-op on a broken channel; in-flight messages on a channel that breaks
    before delivery are dropped. *)

val send_down : ('up, 'down) t -> bytes:int -> 'down -> unit
val break : ('up, 'down) t -> unit
val is_broken : ('up, 'down) t -> bool

(** {1 Failure injection: hung / slow endpoints}

    Pausing a direction models a hung or overloaded peer whose TCP
    connection stays healthy: messages keep arriving but queue up
    un-delivered until the direction is resumed (then they drain in order).
    Unlike {!break}, no failure callback fires — detecting this condition is
    the job of the Manager's per-phase timeouts. *)

val pause_up : ('up, 'down) t -> unit
val pause_down : ('up, 'down) t -> unit
val resume_up : ('up, 'down) t -> unit
val resume_down : ('up, 'down) t -> unit
