(** Wire protocol between the Manager and the Agents (Figures 1 and 3).

    A user request names the application as a list of <<node, pod, URI>>
    tuples; a URI is either a shared-storage key or the address of a
    receiving Agent (direct migration streaming, paper section 4). *)

module Simtime = Zapc_sim.Simtime
module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr
module Meta = Zapc_netckpt.Meta

type uri =
  | U_storage of string  (** key in the shared storage *)
  | U_node of int  (** stream directly to the Agent on this node *)

val uri_to_string : uri -> string

(** {1 Structured failure reasons}

    Every way a coordinated operation can fail, as a value rather than a
    string, so callers (the chaos harness in particular) can assert on the
    precise failure mode. *)

type phase = Ph_meta | Ph_done
(** The Manager's wait phases: gathering meta-data reports, then gathering
    completion statuses (restart only has the latter). *)

val phase_to_string : phase -> string

type failure =
  | F_agent of { node : int; pod_id : int; detail : string }
      (** an Agent reported the operation failed on its side *)
  | F_channel of { node : int }  (** a Manager<->Agent channel broke *)
  | F_timeout of { phase : phase; waiting : int list }
      (** a per-phase timeout expired with these pods still unreported *)
  | F_missing_image of string  (** restart precondition failed *)

val failure_to_string : failure -> string

type agent_stats = {
  st_net_time : Simtime.t;  (** network-state save/restore time *)
  st_local_time : Simtime.t;  (** total local operation time *)
  st_conn_time : Simtime.t;  (** restart: connectivity recovery time *)
  st_image_bytes : int;  (** logical size of what was written *)
  st_full_bytes : int;
      (** when the write was a delta: the logical size a full checkpoint
          would have written at the same instant; 0 for a full image *)
  st_net_bytes : int;  (** encoded network-state section size *)
  st_sockets : int;
  st_procs : int;
}

val zero_stats : agent_stats

type mig_round_stats = {
  mg_round : int;  (** 0 = the full-image round *)
  mg_bytes : int;  (** logical bytes shipped this round *)
  mg_dirty : int;  (** dirty bytes observed when the round's stream landed *)
  mg_duration : Simtime.t;
}
(** One iterative pre-copy round as the source Agent reports it. *)

type trace_ctx = {
  tc_op : int;  (** manager operation id (generation counter) *)
  tc_parent : int;  (** span id of the manager-side operation span *)
}
(** Causal trace context: the Manager stamps operation-starting commands
    with its operation id and operation-span id; the receiving Agent
    parents its local spans under [tc_parent], stitching every node's
    phases into one cross-node tree.  Optional on the wire — frames
    encoded without the field (older encoders, tracing off) decode to
    [None] (see [test/test_codec.ml]). *)

type to_agent =
  | A_checkpoint of {
      pod_id : int;
      dest : uri;
      resume : bool;
      incremental : bool;
          (** the Agent may write a delta against its last stored image for
              this pod (it falls back to a full image when no usable base
              exists or the chain cap is reached) *)
      ctx : trace_ctx option;
    }
  | A_continue of { pod_id : int }  (** the single synchronization point *)
  | A_abort of { pod_id : int }
  | A_restart of {
      pod_id : int;
      name : string;
      vip : Addr.ip;
      rip : Addr.ip;  (** pre-allocated real address on the target node *)
      uri : uri;
      entries : Meta.restart_entry list;
      vip_map : (Addr.ip * Addr.ip) list;  (** the new connectivity map *)
      extra_altq : (int * string) list;
          (** sock_ref -> redirected peer send-queue data (section 5
              optimization) *)
      skip_sendq : bool;  (** send queues were redirected; do not resend *)
      ctx : trace_ctx option;
    }
  | A_ping of { seq : int }  (** supervisor heartbeat probe *)
  | A_migrate of {
      pod_id : int;
      dest : int;  (** destination node: rounds stream to its Agent *)
      max_rounds : int;  (** pre-copy round cap; 0 = plain stop-and-copy *)
      dirty_threshold : float;
          (** converged once a round's dirty residue falls to this fraction
              of the pod's full image *)
      ctx : trace_ctx option;
    }
  | A_batch of (int * to_agent) list
      (** hierarchical coordination: a bundle of addressed commands carried
          as one control message down a tree edge.  Each [(node, msg)] item
          is delivered locally when [node] is the receiver, else re-bundled
          per next hop and forwarded.  Never nested. *)

type to_manager =
  | M_meta of { node : int; pod_id : int; meta : Meta.pod_meta; meta_bytes : int }
  | M_done of { node : int; pod_id : int; ok : bool; detail : string; stats : agent_stats }
  | M_pong of { node : int; seq : int }  (** heartbeat reply *)
  | M_migrate_round of { node : int; pod_id : int; stats : mig_round_stats }
      (** from the source: one pre-copy round's stream landed at the dest *)
  | M_migrate_done of {
      node : int;  (** the {e destination} node: this is the commit message *)
      pod_id : int;
      rounds : int;  (** pre-copy rounds that ran (cap 0 => 0) *)
      precopy_bytes : int;  (** bytes shipped before the stop-and-copy *)
      forced : bool;  (** round cap hit without converging *)
    }
  | M_batch of to_manager list
      (** hierarchical coordination: reports from one subtree aggregated
          into one control message up a tree edge (flattened, never
          nested) *)
  | M_subtree_down of { node : int }
      (** a sub-coordinator's edge to child [node] broke — its whole
          subtree is unreachable; the Manager aborts exactly as if its own
          channel to [node] had broken *)

val to_agent_bytes : to_agent -> int
(** Approximate message size for the control-plane cost model. *)

val to_manager_bytes : to_manager -> int

(** {1 Value codecs}

    Control messages share the checkpoint images' portable intermediate
    format ({!Zapc_codec.Value}); round-tripping is property-tested in
    [test/test_codec.ml]. *)

val uri_to_value : uri -> Value.t
val uri_of_value : Value.t -> uri
val stats_to_value : agent_stats -> Value.t
val stats_of_value : Value.t -> agent_stats
val mig_round_stats_to_value : mig_round_stats -> Value.t
val mig_round_stats_of_value : Value.t -> mig_round_stats
val to_agent_to_value : to_agent -> Value.t
val to_agent_of_value : Value.t -> to_agent
val to_manager_to_value : to_manager -> Value.t
val to_manager_of_value : Value.t -> to_manager

type channel = (to_manager, to_agent) Control.t
