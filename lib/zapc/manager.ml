(* The ZapC Manager: the front-end client that orchestrates coordinated
   checkpoint and restart (Figures 1 and 3).

   Checkpoint: broadcast 'checkpoint', gather the meta-data from every
   Agent, broadcast 'continue' (the single synchronization point), gather
   the completion statuses.  Restart: merge the meta-data into a new
   connectivity map (substituting the destination addresses), derive the
   connect/accept schedule, broadcast 'restart' with the per-pod
   instructions, gather statuses.

   The Manager keeps its Agent channels open for the whole operation; a
   broken channel aborts the operation on both sides. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Metrics = Zapc_obs.Metrics
module Addr = Zapc_simnet.Addr
module Meta = Zapc_netckpt.Meta
module Sock_state = Zapc_netckpt.Sock_state
module Image = Zapc_ckpt.Image
module Pod_ckpt = Zapc_ckpt.Pod_ckpt

type ckpt_item = {
  ci_node : int;
  ci_pod : int;
  ci_dest : Protocol.uri;
}

type restart_item = {
  ri_node : int;
  ri_pod : int;
  ri_uri : Protocol.uri;
}

type op_result = {
  r_ok : bool;
  r_failure : Protocol.failure option;  (* None iff r_ok *)
  r_detail : string;  (* human-readable rendering of r_failure *)
  r_duration : Simtime.t;  (* invocation -> all Agents reported done *)
  r_stats : (int * Protocol.agent_stats) list;  (* per pod *)
  r_metas : Meta.pod_meta list;
}

(* cached per-pod facts learned during checkpoints, enabling restarts of
   streamed images (whose bytes the Manager never sees) *)
type pod_info = { pi_vip : Addr.ip; pi_name : string; pi_meta : Meta.pod_meta }

type pending = {
  mutable p_wait_meta : int list;  (* pods still to report meta *)
  mutable p_wait_done : int list;
  mutable p_stats : (int * Protocol.agent_stats) list;
  mutable p_metas : Meta.pod_meta list;
  mutable p_failed : Protocol.failure option;
  p_items : (int * int) list;  (* (pod, node) *)
  p_started : Simtime.t;
  p_kind : [ `Checkpoint | `Restart ];
  p_gen : int;  (* guards stale timeout closures *)
  p_done : op_result -> unit;
}

type t = {
  engine : Engine.t;
  params : Params.t;
  storage : Storage.t;
  channels : (int, Protocol.channel) Hashtbl.t;  (* node -> channel *)
  alloc_rip : int -> Addr.ip;
  infos : (int, pod_info) Hashtbl.t;
  metrics : Metrics.t;
  mutable trace : Trace.t option;
  mutable current : pending option;
  mutable gen : int;  (* bumped per operation *)
  mutable on_pong : node:int -> seq:int -> unit;  (* supervisor heartbeat sink *)
}

let create ?metrics ~engine ~params ~storage ~alloc_rip () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  { engine; params; storage; channels = Hashtbl.create 8; alloc_rip;
    infos = Hashtbl.create 16; metrics; trace = None; current = None; gen = 0;
    on_pong = (fun ~node:_ ~seq:_ -> ()) }

let set_trace t tr = t.trace <- Some tr
let metrics t = t.metrics

let trace t what =
  match t.trace with
  | Some tr -> Trace.record tr ~time:(Engine.now t.engine) ~pod:(-1) what
  | None -> ()

(* Manager-scope spans (pod -1): the whole operation plus the sync window
   (broadcast -> 'continue'), whose overlap with the agents' standalone
   spans is the Figure-2 story. *)
let span_begin t ?op name =
  match t.trace with
  | Some tr -> Trace.span_begin tr ~time:(Engine.now t.engine) ?op ~pod:(-1) name
  | None -> ()

let span_end t name =
  match t.trace with
  | Some tr -> Trace.span_end tr ~time:(Engine.now t.engine) ~pod:(-1) name
  | None -> ()

let channel_to t node =
  match Hashtbl.find_opt t.channels node with
  | Some ch -> ch
  | None -> invalid_arg (Printf.sprintf "Manager: no agent channel for node %d" node)

let send t node msg = Control.send_down (channel_to t node) ~bytes:(Protocol.to_agent_bytes msg) msg

let remember_pod t ~pod_id ~name ~vip meta =
  Hashtbl.replace t.infos pod_id { pi_vip = vip; pi_name = name; pi_meta = meta }

let finish t result =
  match t.current with
  | None -> ()
  | Some p ->
    t.current <- None;
    let prefix, opname =
      match p.p_kind with
      | `Checkpoint -> "mgr.ckpt", "ckpt_op"
      | `Restart -> "mgr.restart", "restart_op"
    in
    Metrics.incr t.metrics (prefix ^ if result.r_ok then ".ok" else ".failed");
    Metrics.observe t.metrics (prefix ^ ".duration_ms")
      (Simtime.to_ms result.r_duration);
    (* bytes-written histograms (checkpoint only: restart stats report
       restored sizes, not writes) *)
    if p.p_kind = `Checkpoint then
      List.iter
        (fun ((_pod : int), (st : Protocol.agent_stats)) ->
          Metrics.observe t.metrics ~buckets:Metrics.default_bytes_buckets
            "ckpt.image_bytes"
            (float_of_int st.Protocol.st_image_bytes);
          Metrics.observe t.metrics ~buckets:Metrics.default_bytes_buckets
            "netckpt.bytes"
            (float_of_int st.Protocol.st_net_bytes);
          (* delta writes: st_full_bytes carries the size a full checkpoint
             would have written at the same instant *)
          if st.Protocol.st_full_bytes > 0 then begin
            Metrics.observe t.metrics ~buckets:Metrics.default_bytes_buckets
              "ckpt.delta_bytes"
              (float_of_int st.Protocol.st_image_bytes);
            Metrics.observe t.metrics "ckpt.delta_ratio"
              (float_of_int st.Protocol.st_image_bytes
              /. float_of_int st.Protocol.st_full_bytes)
          end)
        result.r_stats;
    span_end t "mgr_sync";
    span_end t opname;
    p.p_done result

let fail_op t failure =
  match t.current with
  | None -> ()
  | Some p ->
    if p.p_failed = None then begin
      p.p_failed <- Some failure;
      (* abort everyone still involved; skip nodes whose channel is gone
         (the abort path must itself survive a broken channel) *)
      List.iter
        (fun (pod, node) ->
          match Hashtbl.find_opt t.channels node with
          | Some ch when not (Control.is_broken ch) ->
            Control.send_down ch
              ~bytes:(Protocol.to_agent_bytes (Protocol.A_abort { pod_id = pod }))
              (Protocol.A_abort { pod_id = pod })
          | Some _ | None -> ())
        p.p_items;
      finish t
        { r_ok = false; r_failure = Some failure;
          r_detail = Protocol.failure_to_string failure;
          r_duration = Simtime.sub (Engine.now t.engine) p.p_started;
          r_stats = p.p_stats; r_metas = p.p_metas }
    end

(* Per-phase watchdog (paper section 4 only aborts on *broken* channels; a
   hung-but-connected Agent would stall the protocol forever without this).
   The generation counter keeps a stale timer from touching a later
   operation that reuses pod ids. *)
let arm_phase_timeout t (p : pending) (phase : Protocol.phase) =
  if Simtime.compare t.params.phase_timeout Simtime.zero > 0 then
    Engine.schedule_at t.engine
      ~at:(Simtime.add (Engine.now t.engine) t.params.phase_timeout)
      (fun () ->
        match t.current with
        | Some p' when p' == p && p'.p_gen = p.p_gen ->
          let waiting =
            match phase with
            | Protocol.Ph_meta -> p'.p_wait_meta
            | Protocol.Ph_done -> p'.p_wait_done
          in
          (* only fire if the guarded phase is still incomplete *)
          let stuck =
            match phase with
            | Protocol.Ph_meta -> p'.p_wait_meta <> []
            | Protocol.Ph_done -> p'.p_wait_done <> []
          in
          if stuck then begin
            Metrics.incr t.metrics "mgr.phase_timeouts";
            trace t (Printf.sprintf "phase_timeout:%s" (Protocol.phase_to_string phase));
            fail_op t (Protocol.F_timeout { phase; waiting })
          end
        | Some _ | None -> ())

let on_agent_message t (msg : Protocol.to_manager) =
  (* heartbeat replies are independent of any running operation *)
  match msg with
  | Protocol.M_pong { node; seq } -> t.on_pong ~node ~seq
  | Protocol.M_meta _ | Protocol.M_done _ ->
  match t.current with
  | None -> ()
  | Some p ->
    (match msg with
     | Protocol.M_pong _ -> ()  (* handled above *)
     | Protocol.M_meta { pod_id; meta; _ } ->
       p.p_metas <- meta :: p.p_metas;
       p.p_wait_meta <- List.filter (fun id -> id <> pod_id) p.p_wait_meta;
       (match Hashtbl.find_opt t.infos pod_id with
        | Some info -> Hashtbl.replace t.infos pod_id { info with pi_meta = meta }
        | None -> ());
       (* step 3 of Figure 1: when every Agent has reported its meta-data,
          tell them all to continue *)
       if p.p_wait_meta = [] && p.p_kind = `Checkpoint then begin
         span_end t "mgr_sync";
         trace t "continue_broadcast";
         List.iter
           (fun (pod, node) -> send t node (Protocol.A_continue { pod_id = pod }))
           p.p_items;
         arm_phase_timeout t p Protocol.Ph_done
       end
     | Protocol.M_done { pod_id; ok; detail; stats; _ } ->
       if not (List.mem pod_id p.p_wait_done) then begin
         (* a duplicate or stale done-report (late abort fallout from an
            earlier generation, or a re-delivered message) must not touch —
            let alone abort — an operation that is not waiting on it *)
         Metrics.incr t.metrics "mgr.stale_done";
         trace t (Printf.sprintf "stale_done:pod%d" pod_id)
       end
       else if not ok then begin
         let node =
           match List.assoc_opt pod_id p.p_items with Some n -> n | None -> -1
         in
         fail_op t (Protocol.F_agent { node; pod_id; detail })
       end
       else begin
         p.p_stats <- (pod_id, stats) :: p.p_stats;
         p.p_wait_done <- List.filter (fun id -> id <> pod_id) p.p_wait_done;
         if p.p_wait_done = [] && (p.p_kind = `Restart || p.p_wait_meta = []) then
           finish t
             { r_ok = true; r_failure = None; r_detail = "";
               r_duration = Simtime.sub (Engine.now t.engine) p.p_started;
               r_stats = p.p_stats; r_metas = p.p_metas }
       end)

let attach_agent t ~node (ch : Protocol.channel) =
  Hashtbl.replace t.channels node ch;
  Control.set_up_handler ch (fun msg -> on_agent_message t msg);
  Control.on_break ch (fun () -> fail_op t (Protocol.F_channel { node }))

(* failure injection for tests and demos: sever the control connection to
   one Agent (both sides then abort, per section 4) *)
let break_channel t ~node =
  match Hashtbl.find_opt t.channels node with
  | Some ch -> Control.break ch
  | None -> ()

let agent_channel t ~node = Hashtbl.find_opt t.channels node
let agent_nodes t = Hashtbl.fold (fun n _ acc -> n :: acc) t.channels [] |> List.sort Int.compare

(* --- heartbeats --- *)

let set_on_pong t fn = t.on_pong <- fn

(* Probe one Agent; pings to missing or broken channels vanish silently —
   that silence is exactly what the supervisor counts as a missed beat. *)
let ping t ~node ~seq =
  match Hashtbl.find_opt t.channels node with
  | Some ch when not (Control.is_broken ch) ->
    Control.send_down ch
      ~bytes:(Protocol.to_agent_bytes (Protocol.A_ping { seq }))
      (Protocol.A_ping { seq })
  | Some _ | None -> ()

(* --- checkpoint --- *)

let checkpoint ?(incremental = false) t ~(items : ckpt_item list) ~(resume : bool)
    ~(on_done : op_result -> unit) =
  if t.current <> None then invalid_arg "Manager: operation already in progress";
  t.gen <- t.gen + 1;
  let p =
    {
      p_wait_meta = List.map (fun i -> i.ci_pod) items;
      p_wait_done = List.map (fun i -> i.ci_pod) items;
      p_stats = [];
      p_metas = [];
      p_failed = None;
      p_items = List.map (fun i -> (i.ci_pod, i.ci_node)) items;
      p_started = Engine.now t.engine;
      p_kind = `Checkpoint;
      p_gen = t.gen;
      p_done = on_done;
    }
  in
  t.current <- Some p;
  Metrics.incr t.metrics "mgr.ckpt.started";
  span_begin t ~op:t.gen "ckpt_op";
  span_begin t ~op:t.gen "mgr_sync";
  trace t "ckpt_broadcast";
  List.iter
    (fun i ->
      send t i.ci_node
        (Protocol.A_checkpoint
           { pod_id = i.ci_pod; dest = i.ci_dest; resume; incremental }))
    items;
  arm_phase_timeout t p Protocol.Ph_meta

(* --- restart --- *)

(* Collect (meta, vip, name, image option) for one restart item. *)
let pod_facts t (item : restart_item) =
  match item.ri_uri with
  | Protocol.U_storage key ->
    (match Storage.get t.storage key with
     | None -> Error (Printf.sprintf "no image at %s" key)
     | Some image ->
       let v = Image.to_pod_image image in
       Ok
         ( Pod_ckpt.meta_of_image v,
           Pod_ckpt.vip_of_image v,
           Pod_ckpt.name_of_image v,
           Some v ))
  | Protocol.U_node _ ->
    (match Hashtbl.find_opt t.infos item.ri_pod with
     | None -> Error (Printf.sprintf "no cached meta for streamed pod %d" item.ri_pod)
     | Some info -> Ok (info.pi_meta, info.pi_vip, info.pi_name, None))

(* The send-queue redirection optimization (paper section 5): instead of
   resending each send queue over the re-established connection, merge it
   into the *peer's* checkpoint stream so it travels once.  Requires access
   to the images, so it applies to storage-based restarts. *)
let redirected_altq ~metas ~images (pod_id : int) (entries : Meta.restart_entry list) =
  let find_meta vip =
    List.find_opt (fun (pm : Meta.pod_meta) -> Addr.equal_ip pm.pm_vip vip) metas
  in
  List.filter_map
    (fun (e : Meta.restart_entry) ->
      if e.ri_orphan then None
      else
        match find_meta e.ri_remote.ip with
        | None -> None
        | Some peer_meta ->
          (match
             ( List.find_opt
                 (fun (pe : Meta.entry) ->
                   Addr.equal pe.local e.ri_remote && Addr.equal pe.remote e.ri_local)
                 peer_meta.pm_entries,
               List.assoc_opt peer_meta.pm_pod images )
           with
           | Some peer_entry, Some peer_image ->
             let peer_socks = Pod_ckpt.sockets_of_image peer_image in
             let im = peer_socks.(peer_entry.sock_ref) in
             let my_recv =
               (* my rcv_nxt = what I already have of the peer's stream *)
               match
                 List.find_opt
                   (fun (pm : Meta.pod_meta) -> pm.pm_pod = pod_id)
                   metas
               with
               | Some my_meta ->
                 (match
                    List.find_opt
                      (fun (me : Meta.entry) -> me.sock_ref = e.ri_sock_ref)
                      my_meta.pm_entries
                  with
                  | Some me -> me.recv
                  | None -> peer_entry.acked)
               | None -> peer_entry.acked
             in
             let data =
               Sock_state.trim_overlap ~acked:peer_entry.acked ~peer_recv:my_recv
                 im.Sock_state.send_data
             in
             if String.length data = 0 then None else Some (e.ri_sock_ref, data)
           | _, _ -> None))
    entries

let restart t ~(items : restart_item list) ~(on_done : op_result -> unit) =
  if t.current <> None then invalid_arg "Manager: operation already in progress";
  Metrics.incr t.metrics "mgr.restart.started";
  let facts = List.map (fun i -> (i, pod_facts t i)) items in
  match List.find_opt (fun (_, f) -> Result.is_error f) facts with
  | Some (_, Error msg) ->
    Metrics.incr t.metrics "mgr.restart.failed";
    on_done
      { r_ok = false; r_failure = Some (Protocol.F_missing_image msg); r_detail = msg;
        r_duration = Simtime.zero; r_stats = []; r_metas = [] }
  | Some (_, Ok _) | None ->
    let facts =
      List.map
        (fun (i, f) -> match f with Ok x -> (i, x) | Error _ -> assert false)
        facts
    in
    let metas = List.map (fun (_, (m, _, _, _)) -> m) facts in
    let images =
      List.filter_map
        (fun (i, (_, _, _, img)) -> Option.map (fun v -> (i.ri_pod, v)) img)
        facts
    in
    (* the new connectivity map: virtual addresses -> destination reals *)
    let vip_map =
      List.map (fun (i, (_, vip, _, _)) -> (vip, t.alloc_rip i.ri_node)) facts
    in
    let schedule = Meta.build_schedule metas in
    let redirect =
      t.params.redirect_sendq && List.length images = List.length items
    in
    t.gen <- t.gen + 1;
    let p =
      {
        p_wait_meta = [];
        p_wait_done = List.map (fun i -> i.ri_pod) items;
        p_stats = [];
        p_metas = metas;
        p_failed = None;
        p_items = List.map (fun i -> (i.ri_pod, i.ri_node)) items;
        p_started = Engine.now t.engine;
        p_kind = `Restart;
        p_gen = t.gen;
        p_done = on_done;
      }
    in
    t.current <- Some p;
    span_begin t ~op:t.gen "restart_op";
    arm_phase_timeout t p Protocol.Ph_done;
    List.iter2
      (fun item (i, (_, vip, name, _)) ->
        assert (item == i);
        let entries =
          match List.assoc_opt item.ri_pod schedule with Some e -> e | None -> []
        in
        let extra_altq =
          if redirect then redirected_altq ~metas ~images item.ri_pod entries else []
        in
        let rip =
          match List.assoc_opt vip vip_map with Some r -> r | None -> vip
        in
        send t item.ri_node
          (Protocol.A_restart
             { pod_id = item.ri_pod; name; vip; rip; uri = item.ri_uri; entries; vip_map;
               extra_altq; skip_sendq = redirect }))
      items facts

let busy t = t.current <> None
