(* The ZapC Manager: the front-end client that orchestrates coordinated
   checkpoint and restart (Figures 1 and 3).

   Checkpoint: broadcast 'checkpoint', gather the meta-data from every
   Agent, broadcast 'continue' (the single synchronization point), gather
   the completion statuses.  Restart: merge the meta-data into a new
   connectivity map (substituting the destination addresses), derive the
   connect/accept schedule, broadcast 'restart' with the per-pod
   instructions, gather statuses.

   The Manager keeps its Agent channels open for the whole operation; a
   broken channel aborts the operation on both sides. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Metrics = Zapc_obs.Metrics
module Span = Zapc_obs.Span
module Critpath = Zapc_obs.Critpath
module Addr = Zapc_simnet.Addr
module Meta = Zapc_netckpt.Meta
module Sock_state = Zapc_netckpt.Sock_state
module Image = Zapc_ckpt.Image
module Pod_ckpt = Zapc_ckpt.Pod_ckpt

type ckpt_item = {
  ci_node : int;
  ci_pod : int;
  ci_dest : Protocol.uri;
}

type restart_item = {
  ri_node : int;
  ri_pod : int;
  ri_uri : Protocol.uri;
}

type op_result = {
  r_ok : bool;
  r_failure : Protocol.failure option;  (* None iff r_ok *)
  r_detail : string;  (* human-readable rendering of r_failure *)
  r_duration : Simtime.t;  (* invocation -> all Agents reported done *)
  r_stats : (int * Protocol.agent_stats) list;  (* per pod *)
  r_metas : Meta.pod_meta list;
}

(* cached per-pod facts learned during checkpoints, enabling restarts of
   streamed images (whose bytes the Manager never sees) *)
type pod_info = { pi_vip : Addr.ip; pi_name : string; pi_meta : Meta.pod_meta }

type pending = {
  mutable p_wait_meta : int list;  (* pods still to report meta *)
  mutable p_wait_done : int list;
  mutable p_stats : (int * Protocol.agent_stats) list;
  mutable p_metas : Meta.pod_meta list;
  mutable p_failed : Protocol.failure option;
  mutable p_arm : int;
  (* phase-timeout keepalive: each pre-copy round report bumps this, killing
     the armed watchdog and re-arming from now (a live migration's copy
     phase legitimately outlives one [phase_timeout] as long as rounds keep
     landing) *)
  p_items : (int * int) list;  (* (pod, node) *)
  p_started : Simtime.t;
  p_kind : [ `Checkpoint | `Restart | `Mig_copy | `Mig_restore ];
  p_gen : int;  (* guards stale timeout closures *)
  p_done : op_result -> unit;
}

(* One live migration spans two pendings (copy phase, then restore phase);
   this is the state that outlives them.  [mg_committed] flips when the
   destination's M_migrate_done lands: from that instant the destination
   copy is authoritative and losing the source is NOT a failure. *)
type mig_state = {
  mg_pod : int;
  mg_src : int;
  mg_dest : int;
  mg_started : Simtime.t;
  mutable mg_rounds : int;
  mutable mg_forced : bool;
  mutable mg_committed : bool;
  mg_gen : int;
  mg_done : op_result -> unit;
}

type t = {
  engine : Engine.t;
  params : Params.t;
  storage : Storage.t;
  channels : (int, Protocol.channel) Hashtbl.t;
  (* node -> direct channel: every node in the flat topology, only the
     manager's direct children once a tree is installed *)
  routes : (int, int) Hashtbl.t;
  (* hierarchical coordination: node -> the direct child whose subtree
     contains it (every tree node appears, children map to themselves);
     empty in the flat topology, where sends go straight to [channels] *)
  edges : (int, Protocol.channel) Hashtbl.t;
  (* tree mode: node -> the channel its PARENT uses to reach it, for every
     node — lets fault injection sever (or hang) any node's uplink even
     when the manager is not that parent *)
  out_buf : (int, (int * Protocol.to_agent) list) Hashtbl.t;
  (* per-first-hop command bundle under assembly (items reversed); drained
     by a same-instant flush so one broadcast loop becomes one A_batch per
     direct child *)
  mutable out_flush : bool;  (* a flush event is already scheduled *)
  mutable proc_free : Simtime.t;
  (* serial control-plane CPU: the instant the manager finishes processing
     its current message backlog (Params.ctrl_proc per message) *)
  alloc_rip : int -> Addr.ip;
  infos : (int, pod_info) Hashtbl.t;
  metrics : Metrics.t;
  mutable trace : Trace.t option;
  mutable current : pending option;
  mutable mig : mig_state option;  (* live migration in progress *)
  mutable gen : int;  (* bumped per operation *)
  mutable last_critpath : (string * Critpath.report) option;
  (* (operation span name, analysis) of the most recent successful op *)
  mutable on_pong : node:int -> seq:int -> unit;  (* supervisor heartbeat sink *)
  mutable on_migrated : pod:int -> src:int -> dest:int -> unit;
  (* fired at a successful handoff, before the caller's on_done: watchers
     (Supervisor) observe the pod's new home atomically with completion *)
}

let create ?metrics ~engine ~params ~storage ~alloc_rip () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  { engine; params; storage; channels = Hashtbl.create 8;
    routes = Hashtbl.create 8; edges = Hashtbl.create 8;
    out_buf = Hashtbl.create 8; out_flush = false; proc_free = Simtime.zero;
    alloc_rip;
    infos = Hashtbl.create 16; metrics; trace = None; current = None;
    mig = None; gen = 0; last_critpath = None;
    on_pong = (fun ~node:_ ~seq:_ -> ());
    on_migrated = (fun ~pod:_ ~src:_ ~dest:_ -> ()) }

let set_trace t tr = t.trace <- Some tr
let metrics t = t.metrics

let trace t what =
  match t.trace with
  | Some tr -> Trace.record tr ~time:(Engine.now t.engine) ~pod:(-1) what
  | None -> ()

(* Manager-scope spans (pod -1): the whole operation plus the sync window
   (broadcast -> 'continue'), whose overlap with the agents' standalone
   spans is the Figure-2 story. *)
let span_begin t ?op ?parent name =
  match t.trace with
  | Some tr ->
    Trace.span_begin tr ~time:(Engine.now t.engine) ?op ?parent ~pod:(-1) name
  | None -> ()

(* As span_begin, returning the span id (-1 without a trace) so it can ride
   as [Protocol.trace_ctx.tc_parent] and parent the agents' spans. *)
let span_begin_id t ?op ?parent name =
  match t.trace with
  | Some tr ->
    Trace.span_begin_id tr ~time:(Engine.now t.engine) ?op ?parent ~pod:(-1) name
  | None -> -1

let ctx_for t span_id =
  if span_id >= 0 then Some { Protocol.tc_op = t.gen; tc_parent = span_id }
  else None

let span_end t name =
  match t.trace with
  | Some tr -> Trace.span_end tr ~time:(Engine.now t.engine) ~pod:(-1) name
  | None -> ()

let channel_to t node =
  match Hashtbl.find_opt t.channels node with
  | Some ch -> ch
  | None -> invalid_arg (Printf.sprintf "Manager: no agent channel for node %d" node)

(* Serial control-plane CPU: every message the manager sends or receives
   costs [ctrl_proc] of a single server — the per-message overhead that
   turns N direct channels into a root bottleneck at cluster scale (a tree
   batch counts as one message).  Zero cost (the default) runs [fn] inline,
   keeping the flat topology bit-identical to the uncosted behaviour. *)
let proc t fn =
  if t.params.Params.ctrl_proc = Simtime.zero then fn ()
  else begin
    let now = Engine.now t.engine in
    let start = if Simtime.compare t.proc_free now > 0 then t.proc_free else now in
    let fin = Simtime.add start t.params.Params.ctrl_proc in
    t.proc_free <- fin;
    Engine.schedule_at t.engine ~label:"mgr.proc" ~at:fin fn
  end

let send_direct t ch msg =
  proc t (fun () ->
      Control.send_down ch ~bytes:(Protocol.to_agent_bytes msg) msg)

(* Drain the per-hop command bundles: each direct child gets its subtree's
   commands as ONE [A_batch] message (one proc slot, one frame), fanned out
   further by the relays.  Hops are flushed in node order so seeded runs
   stay deterministic. *)
let flush_out t =
  t.out_flush <- false;
  let hops =
    Hashtbl.fold (fun hop items acc -> (hop, List.rev items) :: acc) t.out_buf []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Hashtbl.reset t.out_buf;
  List.iter
    (fun (hop, items) ->
      match Hashtbl.find_opt t.channels hop with
      | Some ch when not (Control.is_broken ch) ->
        Metrics.incr t.metrics "mgr.tree.down_batches";
        Metrics.add t.metrics "mgr.tree.down_msgs" (List.length items);
        send_direct t ch (Protocol.A_batch items)
      | Some _ | None -> ())
    hops

let enqueue_routed t hop node msg =
  let prev =
    match Hashtbl.find_opt t.out_buf hop with Some l -> l | None -> []
  in
  Hashtbl.replace t.out_buf hop ((node, msg) :: prev);
  if not t.out_flush then begin
    t.out_flush <- true;
    (* same-instant flush: every send of the current broadcast loop lands
       in this bundle *)
    Engine.schedule t.engine ~label:"mgr.fanout" ~delay:Simtime.zero (fun () ->
        flush_out t)
  end

(* [strict] raises on a missing channel (operation sends assume the wiring
   exists); non-strict sends vanish silently, which is what the abort and
   heartbeat paths want when a node is already gone. *)
let send_via t ~strict node msg =
  match Hashtbl.find_opt t.routes node with
  | Some hop ->
    (match Hashtbl.find_opt t.channels hop with
     | Some ch when not (Control.is_broken ch) -> enqueue_routed t hop node msg
     | Some _ -> ()
     | None -> if strict then ignore (channel_to t hop))
  | None ->
    if strict then send_direct t (channel_to t node) msg
    else (
      match Hashtbl.find_opt t.channels node with
      | Some ch when not (Control.is_broken ch) -> send_direct t ch msg
      | Some _ | None -> ())

let send t node msg = send_via t ~strict:true node msg
let send_opt t node msg = send_via t ~strict:false node msg

let remember_pod t ~pod_id ~name ~vip meta =
  Hashtbl.replace t.infos pod_id { pi_vip = vip; pi_name = name; pi_meta = meta }

let finish t result =
  match t.current with
  | None -> ()
  | Some p ->
    t.current <- None;
    let prefix, opname =
      match p.p_kind with
      | `Checkpoint -> "mgr.ckpt", "ckpt_op"
      | `Restart -> "mgr.restart", "restart_op"
      | `Mig_copy -> "mgr.mig.copy", "mig_copy"
      | `Mig_restore -> "mgr.mig.restore", "mig_restore"
    in
    Metrics.incr t.metrics (prefix ^ if result.r_ok then ".ok" else ".failed");
    Metrics.observe t.metrics (prefix ^ ".duration_ms")
      (Simtime.to_ms result.r_duration);
    (* bytes-written histograms (checkpoint only: restart stats report
       restored sizes, not writes) *)
    if p.p_kind = `Checkpoint then
      List.iter
        (fun ((_pod : int), (st : Protocol.agent_stats)) ->
          Metrics.observe t.metrics ~buckets:Metrics.default_bytes_buckets
            "ckpt.image_bytes"
            (float_of_int st.Protocol.st_image_bytes);
          Metrics.observe t.metrics ~buckets:Metrics.default_bytes_buckets
            "netckpt.bytes"
            (float_of_int st.Protocol.st_net_bytes);
          (* delta writes: st_full_bytes carries the size a full checkpoint
             would have written at the same instant *)
          if st.Protocol.st_full_bytes > 0 then begin
            Metrics.observe t.metrics ~buckets:Metrics.default_bytes_buckets
              "ckpt.delta_bytes"
              (float_of_int st.Protocol.st_image_bytes);
            Metrics.observe t.metrics "ckpt.delta_ratio"
              (float_of_int st.Protocol.st_image_bytes
              /. float_of_int st.Protocol.st_full_bytes)
          end)
        result.r_stats;
    span_end t "mgr_sync";
    span_end t opname;
    (* Critical-path attribution: with the op span now closed, walk the
       spans of this operation (sp_op = generation — the agents' spans
       carry it via the wire trace context) and report which phase
       dominated the end-to-end latency. *)
    (match t.trace with
     | Some tr when result.r_ok ->
       let sps =
         List.filter
           (fun (s : Span.span) -> s.Span.sp_op = p.p_gen)
           (Span.spans (Trace.recorder tr))
       in
       let rep =
         Critpath.analyze ~spans:sps ~t0:p.p_started
           ~t1:(Engine.now t.engine)
       in
       if rep.Critpath.cp_dominant <> "" then begin
         List.iter
           (fun (name, d) ->
             Metrics.observe t.metrics
               (Printf.sprintf "mgr.critpath.%s_ms" name)
               (Simtime.to_ms d))
           rep.Critpath.cp_phases;
         Metrics.incr t.metrics
           (Printf.sprintf "mgr.critpath.dominant.%s" rep.Critpath.cp_dominant);
         t.last_critpath <- Some (opname, rep)
       end
     | Some _ | None -> ());
    p.p_done result

let last_critpath t = t.last_critpath

let fail_op t failure =
  match t.current with
  | None -> ()
  | Some p ->
    if p.p_failed = None then begin
      p.p_failed <- Some failure;
      (* the flight recorder trips on this instant *)
      let kind =
        match p.p_kind with
        | `Checkpoint -> "ckpt"
        | `Restart -> "restart"
        | `Mig_copy -> "mig_copy"
        | `Mig_restore -> "mig_restore"
      in
      trace t (Printf.sprintf "op_failed:%s" kind);
      (* abort everyone still involved; skip nodes whose channel (or route)
         is gone — the abort path must itself survive a broken channel *)
      List.iter
        (fun (pod, node) -> send_opt t node (Protocol.A_abort { pod_id = pod }))
        p.p_items;
      finish t
        { r_ok = false; r_failure = Some failure;
          r_detail = Protocol.failure_to_string failure;
          r_duration = Simtime.sub (Engine.now t.engine) p.p_started;
          r_stats = p.p_stats; r_metas = p.p_metas }
    end

(* Per-phase watchdog (paper section 4 only aborts on *broken* channels; a
   hung-but-connected Agent would stall the protocol forever without this).
   The generation counter keeps a stale timer from touching a later
   operation that reuses pod ids. *)
let arm_phase_timeout t (p : pending) (phase : Protocol.phase) =
  if Simtime.compare t.params.phase_timeout Simtime.zero > 0 then begin
    let arm = p.p_arm in
    Engine.schedule_at t.engine ~label:"mgr.timeout"
      ~at:(Simtime.add (Engine.now t.engine) t.params.phase_timeout)
      (fun () ->
        match t.current with
        | Some p' when p' == p && p'.p_gen = p.p_gen && p'.p_arm = arm ->
          let waiting =
            match phase with
            | Protocol.Ph_meta -> p'.p_wait_meta
            | Protocol.Ph_done -> p'.p_wait_done
          in
          (* only fire if the guarded phase is still incomplete *)
          let stuck =
            match phase with
            | Protocol.Ph_meta -> p'.p_wait_meta <> []
            | Protocol.Ph_done -> p'.p_wait_done <> []
          in
          if stuck then begin
            Metrics.incr t.metrics "mgr.phase_timeouts";
            trace t (Printf.sprintf "phase_timeout:%s" (Protocol.phase_to_string phase));
            fail_op t (Protocol.F_timeout { phase; waiting })
          end
        | Some _ | None -> ())
  end

(* A broken channel normally fails the operation outright.  One exception:
   losing the *source* during a migration's copy phase is only fatal if the
   destination has not committed.  The break and the destination's
   M_migrate_done race on independent channels, so wait a few control
   latencies for an in-flight commit to land before deciding.  In tree mode
   the same logic serves breaks the manager hears about second-hand
   ([M_subtree_down] from a relay whose child edge severed). *)
let channel_broke t ~node =
  match t.mig, t.current with
  | Some mg, Some p when p.p_kind = `Mig_copy && node = mg.mg_src ->
    let gen = p.p_gen in
    trace t "mig_src_break";
    Engine.schedule_at t.engine ~label:"mgr.mig_grace"
      ~at:(Simtime.add (Engine.now t.engine) (5 * t.params.ctrl_latency))
      (fun () ->
        match t.mig, t.current with
        | Some mg', Some p' when mg' == mg && p' == p && p'.p_gen = gen
                                 && mg.mg_gen = gen ->
          if mg.mg_committed then begin
            (* the destination copy already won: the pod survives there *)
            Metrics.incr t.metrics "mgr.mig.src_lost_after_commit";
            trace t
              (Printf.sprintf "mig_src_lost:pod%d->node%d" mg.mg_pod mg.mg_dest);
            p.p_wait_meta <- [];
            p.p_wait_done <- [];
            finish t
              { r_ok = true; r_failure = None; r_detail = "";
                r_duration = Simtime.sub (Engine.now t.engine) p.p_started;
                r_stats = p.p_stats; r_metas = p.p_metas }
          end
          else fail_op t (Protocol.F_channel { node })
        | _ -> ())
  | _ -> fail_op t (Protocol.F_channel { node })

let rec on_agent_message t (msg : Protocol.to_manager) =
  (* heartbeat replies are independent of any running operation *)
  match msg with
  | Protocol.M_batch items ->
    (* one aggregated frame from a direct child's subtree (already one proc
       slot); the reports inside are handled in arrival order *)
    Metrics.incr t.metrics "mgr.tree.up_batches";
    Metrics.add t.metrics "mgr.tree.up_msgs" (List.length items);
    List.iter (fun m -> on_agent_message t m) items
  | Protocol.M_subtree_down { node } ->
    Metrics.incr t.metrics "mgr.tree.subtree_down";
    trace t (Printf.sprintf "subtree_down:node%d" node);
    channel_broke t ~node
  | Protocol.M_pong { node; seq } -> t.on_pong ~node ~seq
  | Protocol.M_migrate_round { stats; _ } ->
    (match t.mig, t.current with
     | Some mg, Some p when p.p_kind = `Mig_copy ->
       mg.mg_rounds <- stats.Protocol.mg_round + 1;
       Metrics.observe t.metrics ~buckets:Metrics.default_bytes_buckets
         "mig.bytes_per_round" (float_of_int stats.Protocol.mg_bytes);
       trace t (Printf.sprintf "mig_round_report:%d" stats.Protocol.mg_round);
       (* keepalive: a converging pre-copy legitimately outlives one
          phase_timeout; every round report pushes the watchdog out *)
       p.p_arm <- p.p_arm + 1;
       arm_phase_timeout t p Protocol.Ph_meta
     | _ -> ())
  | Protocol.M_migrate_done { rounds; precopy_bytes; forced; _ } ->
    (* the destination's commit: its staged copy is now complete and
       authoritative even if the source is lost from here on *)
    (match t.mig with
     | Some mg ->
       mg.mg_committed <- true;
       mg.mg_rounds <- rounds;
       mg.mg_forced <- forced;
       Metrics.observe t.metrics "mig.rounds" (float_of_int rounds);
       Metrics.observe t.metrics ~buckets:Metrics.default_bytes_buckets
         "mig.precopy_bytes" (float_of_int precopy_bytes);
       if forced then Metrics.incr t.metrics "mig.forced_stops";
       trace t "mig_committed"
     | None -> ())
  | Protocol.M_meta _ | Protocol.M_done _ ->
  match t.current with
  | None -> ()
  | Some p ->
    (match msg with
     | Protocol.M_pong _ | Protocol.M_migrate_round _ | Protocol.M_migrate_done _
     | Protocol.M_batch _ | Protocol.M_subtree_down _ ->
       ()  (* handled above *)
     | Protocol.M_meta { pod_id; meta; _ } ->
       p.p_metas <- meta :: p.p_metas;
       p.p_wait_meta <- List.filter (fun id -> id <> pod_id) p.p_wait_meta;
       (match Hashtbl.find_opt t.infos pod_id with
        | Some info -> Hashtbl.replace t.infos pod_id { info with pi_meta = meta }
        | None -> ());
       (* step 3 of Figure 1: when every Agent has reported its meta-data,
          tell them all to continue (a migration's final stop-and-copy runs
          the same gated protocol; the destination's stray 'continue' is
          harmless) *)
       if p.p_wait_meta = [] && (p.p_kind = `Checkpoint || p.p_kind = `Mig_copy)
       then begin
         span_end t "mgr_sync";
         trace t "continue_broadcast";
         List.iter
           (fun (pod, node) -> send t node (Protocol.A_continue { pod_id = pod }))
           p.p_items;
         arm_phase_timeout t p Protocol.Ph_done
       end
     | Protocol.M_done { pod_id; ok; detail; stats; _ } ->
       if not (List.mem pod_id p.p_wait_done) then begin
         (* a duplicate or stale done-report (late abort fallout from an
            earlier generation, or a re-delivered message) must not touch —
            let alone abort — an operation that is not waiting on it *)
         Metrics.incr t.metrics "mgr.stale_done";
         trace t (Printf.sprintf "stale_done:pod%d" pod_id)
       end
       else if not ok then begin
         let node =
           match List.assoc_opt pod_id p.p_items with Some n -> n | None -> -1
         in
         fail_op t (Protocol.F_agent { node; pod_id; detail })
       end
       else begin
         p.p_stats <- (pod_id, stats) :: p.p_stats;
         p.p_wait_done <- List.filter (fun id -> id <> pod_id) p.p_wait_done;
         if p.p_wait_done = [] && (p.p_kind = `Restart || p.p_wait_meta = []) then
           finish t
             { r_ok = true; r_failure = None; r_detail = "";
               r_duration = Simtime.sub (Engine.now t.engine) p.p_started;
               r_stats = p.p_stats; r_metas = p.p_metas }
       end)

let attach_agent t ~node (ch : Protocol.channel) =
  Hashtbl.replace t.channels node ch;
  (* receiving costs one proc slot per channel message (a batch is one) *)
  Control.set_up_handler ch (fun msg -> proc t (fun () -> on_agent_message t msg));
  Control.on_break ch (fun () -> channel_broke t ~node)

(* (Re)install the hierarchical topology: [children] are the manager's
   direct sub-coordinators with their edges, [routes] maps every tree node
   to its first-hop child, and [edges] maps every node to the channel its
   parent reaches it by.  Replaces whatever topology was installed before —
   the Cluster re-forms the tree over the surviving nodes after a
   recovery. *)
let set_tree t ~children ~routes ~edges =
  Hashtbl.reset t.channels;
  Hashtbl.reset t.routes;
  Hashtbl.reset t.edges;
  Hashtbl.reset t.out_buf;
  List.iter (fun (node, ch) -> attach_agent t ~node ch) children;
  List.iter (fun (node, hop) -> Hashtbl.replace t.routes node hop) routes;
  List.iter (fun (node, ch) -> Hashtbl.replace t.edges node ch) edges;
  Metrics.set_gauge t.metrics "mgr.tree.children"
    (float_of_int (List.length children))

(* failure injection for tests and demos: sever the control connection to
   one Agent (both sides then abort, per section 4).  In tree mode the
   severed link is the node's uplink from its parent, wherever that is. *)
let break_channel t ~node =
  match Hashtbl.find_opt t.edges node with
  | Some ch -> Control.break ch
  | None ->
    (match Hashtbl.find_opt t.channels node with
     | Some ch -> Control.break ch
     | None -> ())

let agent_channel t ~node =
  match Hashtbl.find_opt t.edges node with
  | Some _ as ch -> ch
  | None -> Hashtbl.find_opt t.channels node

let agent_nodes t =
  (if Hashtbl.length t.edges > 0 then
     Hashtbl.fold (fun n _ acc -> n :: acc) t.edges []
   else Hashtbl.fold (fun n _ acc -> n :: acc) t.channels [])
  |> List.sort Int.compare

(* --- heartbeats --- *)

let set_on_pong t fn = t.on_pong <- fn

(* Probe one Agent; pings to missing or broken channels vanish silently —
   that silence is exactly what the supervisor counts as a missed beat. *)
let ping t ~node ~seq = send_opt t node (Protocol.A_ping { seq })

(* --- checkpoint --- *)

let checkpoint ?(incremental = false) ?parent t ~(items : ckpt_item list)
    ~(resume : bool) ~(on_done : op_result -> unit) =
  if t.current <> None then invalid_arg "Manager: operation already in progress";
  t.gen <- t.gen + 1;
  let p =
    {
      p_wait_meta = List.map (fun i -> i.ci_pod) items;
      p_wait_done = List.map (fun i -> i.ci_pod) items;
      p_stats = [];
      p_metas = [];
      p_failed = None;
      p_arm = 0;
      p_items = List.map (fun i -> (i.ci_pod, i.ci_node)) items;
      p_started = Engine.now t.engine;
      p_kind = `Checkpoint;
      p_gen = t.gen;
      p_done = on_done;
    }
  in
  t.current <- Some p;
  Metrics.incr t.metrics "mgr.ckpt.started";
  let op_span = span_begin_id t ~op:t.gen ?parent "ckpt_op" in
  span_begin t ~op:t.gen ?parent:(Trace.parent_arg op_span) "mgr_sync";
  let ctx = ctx_for t op_span in
  trace t "ckpt_broadcast";
  List.iter
    (fun i ->
      send t i.ci_node
        (Protocol.A_checkpoint
           { pod_id = i.ci_pod; dest = i.ci_dest; resume; incremental; ctx }))
    items;
  arm_phase_timeout t p Protocol.Ph_meta

(* --- restart --- *)

(* Collect (meta, vip, name, image option) for one restart item. *)
let pod_facts t (item : restart_item) =
  match item.ri_uri with
  | Protocol.U_storage key ->
    (match Storage.get t.storage key with
     | None -> Error (Printf.sprintf "no image at %s" key)
     | Some image ->
       let v = Image.to_pod_image image in
       Ok
         ( Pod_ckpt.meta_of_image v,
           Pod_ckpt.vip_of_image v,
           Pod_ckpt.name_of_image v,
           Some v ))
  | Protocol.U_node _ ->
    (match Hashtbl.find_opt t.infos item.ri_pod with
     | None -> Error (Printf.sprintf "no cached meta for streamed pod %d" item.ri_pod)
     | Some info -> Ok (info.pi_meta, info.pi_vip, info.pi_name, None))

(* The send-queue redirection optimization (paper section 5): instead of
   resending each send queue over the re-established connection, merge it
   into the *peer's* checkpoint stream so it travels once.  Requires access
   to the images, so it applies to storage-based restarts. *)
let redirected_altq ~metas ~images (pod_id : int) (entries : Meta.restart_entry list) =
  let find_meta vip =
    List.find_opt (fun (pm : Meta.pod_meta) -> Addr.equal_ip pm.pm_vip vip) metas
  in
  List.filter_map
    (fun (e : Meta.restart_entry) ->
      if e.ri_orphan then None
      else
        match find_meta e.ri_remote.ip with
        | None -> None
        | Some peer_meta ->
          (match
             ( List.find_opt
                 (fun (pe : Meta.entry) ->
                   Addr.equal pe.local e.ri_remote && Addr.equal pe.remote e.ri_local)
                 peer_meta.pm_entries,
               List.assoc_opt peer_meta.pm_pod images )
           with
           | Some peer_entry, Some peer_image ->
             let peer_socks = Pod_ckpt.sockets_of_image peer_image in
             let im = peer_socks.(peer_entry.sock_ref) in
             let my_recv =
               (* my rcv_nxt = what I already have of the peer's stream *)
               match
                 List.find_opt
                   (fun (pm : Meta.pod_meta) -> pm.pm_pod = pod_id)
                   metas
               with
               | Some my_meta ->
                 (match
                    List.find_opt
                      (fun (me : Meta.entry) -> me.sock_ref = e.ri_sock_ref)
                      my_meta.pm_entries
                  with
                  | Some me -> me.recv
                  | None -> peer_entry.acked)
               | None -> peer_entry.acked
             in
             let data =
               Sock_state.trim_overlap ~acked:peer_entry.acked ~peer_recv:my_recv
                 im.Sock_state.send_data
             in
             if String.length data = 0 then None else Some (e.ri_sock_ref, data)
           | _, _ -> None))
    entries

let restart ?(kind = `Restart) ?parent t ~(items : restart_item list)
    ~(on_done : op_result -> unit) =
  if t.current <> None then invalid_arg "Manager: operation already in progress";
  let prefix, opname =
    match kind with
    | `Restart -> "mgr.restart", "restart_op"
    | `Mig_restore -> "mgr.mig.restore", "mig_restore"
  in
  Metrics.incr t.metrics (prefix ^ ".started");
  let facts = List.map (fun i -> (i, pod_facts t i)) items in
  match List.find_opt (fun (_, f) -> Result.is_error f) facts with
  | Some (_, Error msg) ->
    Metrics.incr t.metrics (prefix ^ ".failed");
    on_done
      { r_ok = false; r_failure = Some (Protocol.F_missing_image msg); r_detail = msg;
        r_duration = Simtime.zero; r_stats = []; r_metas = [] }
  | Some (_, Ok _) | None ->
    let facts =
      List.map
        (fun (i, f) -> match f with Ok x -> (i, x) | Error _ -> assert false)
        facts
    in
    let metas = List.map (fun (_, (m, _, _, _)) -> m) facts in
    let images =
      List.filter_map
        (fun (i, (_, _, _, img)) -> Option.map (fun v -> (i.ri_pod, v)) img)
        facts
    in
    (* the new connectivity map: virtual addresses -> destination reals *)
    let vip_map =
      List.map (fun (i, (_, vip, _, _)) -> (vip, t.alloc_rip i.ri_node)) facts
    in
    let schedule = Meta.build_schedule metas in
    let redirect =
      t.params.redirect_sendq && List.length images = List.length items
    in
    t.gen <- t.gen + 1;
    let p =
      {
        p_wait_meta = [];
        p_wait_done = List.map (fun i -> i.ri_pod) items;
        p_stats = [];
        p_metas = metas;
        p_failed = None;
        p_arm = 0;
        p_items = List.map (fun i -> (i.ri_pod, i.ri_node)) items;
        p_started = Engine.now t.engine;
        p_kind = (kind :> [ `Checkpoint | `Restart | `Mig_copy | `Mig_restore ]);
        p_gen = t.gen;
        p_done = on_done;
      }
    in
    t.current <- Some p;
    let op_span = span_begin_id t ~op:t.gen ?parent opname in
    let ctx = ctx_for t op_span in
    arm_phase_timeout t p Protocol.Ph_done;
    List.iter2
      (fun item (i, (_, vip, name, _)) ->
        assert (item == i);
        let entries =
          match List.assoc_opt item.ri_pod schedule with Some e -> e | None -> []
        in
        let extra_altq =
          if redirect then redirected_altq ~metas ~images item.ri_pod entries else []
        in
        let rip =
          match List.assoc_opt vip vip_map with Some r -> r | None -> vip
        in
        send t item.ri_node
          (Protocol.A_restart
             { pod_id = item.ri_pod; name; vip; rip; uri = item.ri_uri; entries; vip_map;
               extra_altq; skip_sendq = redirect; ctx }))
      items facts

(* --- live migration --- *)

let set_on_migrated t fn = t.on_migrated <- fn

(* Two phases under one generation-guarded operation: (A) the source Agent
   iterates pre-copy rounds into the destination's stage, then runs the
   gated stop-and-copy of the residue (same meta/continue/done protocol as
   a checkpoint — that is the blackout window); (B) the staged copy is
   activated on the destination through the ordinary restart path, which
   finds it prestaged and only pays the residue-apply cost. *)
let migrate ?max_rounds ?dirty_threshold ?parent t ~(pod : int)
    ~(src_node : int) ~(dest_node : int) ~(on_done : op_result -> unit) =
  if t.current <> None || t.mig <> None then
    invalid_arg "Manager: operation already in progress";
  let max_rounds =
    match max_rounds with Some r -> r | None -> t.params.mig_max_rounds
  in
  let dirty_threshold =
    match dirty_threshold with
    | Some f -> f
    | None -> t.params.mig_dirty_threshold
  in
  t.gen <- t.gen + 1;
  let mg =
    { mg_pod = pod; mg_src = src_node; mg_dest = dest_node;
      mg_started = Engine.now t.engine; mg_rounds = 0; mg_forced = false;
      mg_committed = false; mg_gen = t.gen; mg_done = on_done }
  in
  t.mig <- Some mg;
  Metrics.incr t.metrics "mgr.mig.started";
  let mig_span = span_begin_id t ~op:t.gen ?parent "migrate" in
  trace t (Printf.sprintf "migrate_start:pod%d:%d->%d" pod src_node dest_node);
  let finish_mig (r : op_result) =
    t.mig <- None;
    Metrics.incr t.metrics (if r.r_ok then "mgr.mig.ok" else "mgr.mig.failed");
    Metrics.observe t.metrics "mgr.mig.duration_ms" (Simtime.to_ms r.r_duration);
    if r.r_ok then
      trace t
        (Printf.sprintf "mig_done:rounds%d%s" mg.mg_rounds
           (if mg.mg_forced then ":forced" else ""));
    span_end t "migrate";
    (* watchers learn the new home before (and regardless of how) the
       caller reacts to completion *)
    if r.r_ok then t.on_migrated ~pod ~src:src_node ~dest:dest_node;
    mg.mg_done r
  in
  let p =
    {
      p_wait_meta = [ pod ];
      p_wait_done = [ pod ];
      p_stats = [];
      p_metas = [];
      p_failed = None;
      p_arm = 0;
      (* the destination is a party to the copy phase: an abort broadcast
         must also clear its staged rounds *)
      p_items = [ (pod, src_node); (pod, dest_node) ];
      p_started = Engine.now t.engine;
      p_kind = `Mig_copy;
      p_gen = t.gen;
      p_done =
        (fun (copy : op_result) ->
          if not copy.r_ok then
            finish_mig
              { copy with
                r_duration = Simtime.sub (Engine.now t.engine) mg.mg_started }
          else begin
            trace t "mig_copy_done";
            (* phase B, synchronously in the same engine callback (finish
               cleared t.current first, and nothing can interleave): the
               handoff to the activated destination copy is atomic as far
               as Periodic and the Supervisor can observe *)
            restart ~kind:`Mig_restore ?parent:(Trace.parent_arg mig_span) t
              ~items:
                [ { ri_node = dest_node; ri_pod = pod;
                    ri_uri = Protocol.U_node dest_node } ]
              ~on_done:(fun (res : op_result) ->
                finish_mig
                  { res with
                    r_stats = res.r_stats @ copy.r_stats;
                    r_metas =
                      (match res.r_metas with [] -> copy.r_metas | ms -> ms);
                    r_duration =
                      Simtime.sub (Engine.now t.engine) mg.mg_started })
          end);
    }
  in
  t.current <- Some p;
  let copy_span =
    span_begin_id t ~op:t.gen ?parent:(Trace.parent_arg mig_span) "mig_copy"
  in
  span_begin t ~op:t.gen ?parent:(Trace.parent_arg copy_span) "mgr_sync";
  let ctx = ctx_for t copy_span in
  send t src_node
    (Protocol.A_migrate
       { pod_id = pod; dest = dest_node; max_rounds; dirty_threshold; ctx });
  arm_phase_timeout t p Protocol.Ph_meta

let busy t = t.current <> None || t.mig <> None
