(** Shared storage (the SAN/NAS of the paper's cluster).

    Checkpoint images are written to memory during the checkpoint (that cost
    is part of the checkpoint time) and can be flushed to shared storage
    afterwards; flushing is deliberately {e not} part of the checkpoint
    latency, matching the paper's methodology.  Every node reads the same
    store, which is what allows restarting on a different set of nodes. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Image = Zapc_ckpt.Image

type t

val create : ?bps:float -> ?latency:Simtime.t -> Engine.t -> t

val put : t -> string -> Image.t -> (unit, string) result
(** Fails (storing nothing) while a write outage is injected; the Agent
    turns the error into a clean abort of its side of the operation. *)

val get : t -> string -> Image.t option

val set_fail_writes : t -> string option -> unit
(** Failure injection: while [Some reason], every {!put} fails with that
    reason (a SAN outage / full volume).  [None] heals the outage. *)

val write_failures : t -> int
(** Number of writes rejected by injected outages so far. *)

val mem : t -> string -> bool
val remove : t -> string -> unit

val flush_time : t -> string -> Simtime.t
(** Virtual time to flush the named image to disk at the SAN bandwidth. *)

val flush : t -> string -> on_done:(unit -> unit) -> unit
val keys : t -> string list
