(** Shared storage (the SAN/NAS of the paper's cluster).

    Checkpoint images are written to memory during the checkpoint (that cost
    is part of the checkpoint time) and can be flushed to shared storage
    afterwards; flushing is deliberately {e not} part of the checkpoint
    latency, matching the paper's methodology.  Every node reads the same
    store, which is what allows restarting on a different set of nodes.

    The store keeps [replicas] independent copies of every image, each
    guarded by the content checksum computed at {!put}.  {!get} walks the
    replicas in order, skipping copies under an injected outage or whose
    bytes fail their checksum, so a damaged primary falls back to a healthy
    replica.

    Delta (incremental) images are first-class: a stored image whose
    [base_key] is set chains back to its base, {!get} materializes the
    whole chain (each link checksum-verified with replica fallback) into a
    full image, and {!remove} defers the physical delete of a base that
    live deltas still reference (the key disappears from the public
    namespace immediately; the bytes go once the last referencing delta is
    deleted). *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Image = Zapc_ckpt.Image

type t

val create :
  ?metrics:Zapc_obs.Metrics.t ->
  ?bps:float -> ?latency:Simtime.t -> ?replicas:int -> Engine.t -> t
(** [replicas] (default 2, clamped to at least 1) independent copies are
    kept for every image.  [metrics] receives the [storage.*] instruments —
    puts, put_bytes, bytes_written, gets, get_misses, write_failures,
    corruption_detected, replica_fallbacks (a read served past replica 0),
    delta_resolved (chain links applied by {!get}), chain_broken (a delta
    whose base could not be materialized), gc_deferred ({!remove} of a key
    still pinned by live deltas). *)

val replica_count : t -> int

val set_trace : t -> Trace.t -> unit
(** Record successful writes as [storage_put] spans in the causal trace
    (parented under the writing Agent's operation span via {!put}'s
    [op]/[parent]). *)

val put : ?op:int -> ?parent:int -> t -> string -> Image.t -> (unit, string) result
(** Writes the image (with its {!Image.checksum}) to every replica not under
    a per-replica outage.  Fails, storing nothing, during a global write
    outage or when no replica is available; the Agent turns the error into a
    clean abort of its side of the operation.  [op]/[parent] stitch the
    write into the operation's causal trace when one is attached
    ({!set_trace}). *)

val get : t -> string -> Image.t option
(** First healthy, checksum-verified copy across the replicas (in order);
    [None] if every replica is unavailable, missing the key, or corrupt.
    A delta image is materialized transparently: every link of its chain is
    fetched (checksum-verified, replica fallback per link) and applied, and
    the result is the full image — byte-identical to the full checkpoint
    taken at the same instant.  [None] if any link is unreadable. *)

val base_key : t -> string -> string option
(** The stored chain link's base reference, without materializing: [Some k]
    iff the key holds a delta based on [k] (tests and tooling use this to
    inspect chain structure). *)

val set_fail_writes : t -> string option -> unit
(** Failure injection: while [Some reason], every {!put} fails with that
    reason (a SAN outage / full volume).  [None] heals the outage. *)

val write_failures : t -> int
(** Number of writes rejected by injected outages so far. *)

val set_replica_fail : t -> replica:int -> string option -> unit
(** Per-replica outage injection: while set, {!put} skips the replica and
    {!get} falls back past it.  Out-of-range indices are ignored. *)

val heal_replicas : t -> unit
(** Clear every per-replica outage. *)

val corrupt : t -> replica:int -> string -> bool
(** Corruption injection: flip a byte of one replica's copy of the image
    while keeping its stale checksum, so only a verifying read notices.
    Returns [false] if that replica has no (non-empty) copy of the key. *)

val corruption_detected : t -> int
(** Number of reads that found a copy failing its checksum (each such copy
    is skipped and the next replica tried), mirroring {!write_failures}. *)

val mem : t -> string -> bool
(** True iff {!get} would succeed (some healthy, verified copy exists). *)

val remove : t -> string -> unit
(** Drop the key from every replica.  If live deltas still chain to it the
    key only vanishes from the public namespace ({!get}/{!mem}/{!keys});
    the bytes are reclaimed once the last referencing delta is removed. *)

val flush_time : t -> string -> Simtime.t
(** Virtual time to flush the named image to disk at the SAN bandwidth. *)

val flush : t -> string -> on_done:(unit -> unit) -> unit
val keys : t -> string list
(** Sorted union of keys present on any replica (healthy or not). *)
