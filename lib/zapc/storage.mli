(** Checkpoint image storage: one interface, three composable backends.

    {b Plain} ([Sb_plain], the default) is the SAN/NAS of the paper's
    cluster: [replicas] verbatim copies of every image, reads falling back
    past outaged or corrupt copies.  {b Dedup} ([Sb_dedup]) layers a
    content-addressed chunk store on the same replica model: encoded bytes
    and modelled memory regions split into FNV-addressed chunks stored
    once, refcounted — identical text/data across epochs, replicas and
    sibling pods collapses to one stored copy.  {b Buddy} ([Sb_buddy])
    checkpoints to the owner node's RAM plus a partner node's RAM,
    bypassing the shared SAN; on node death ({!node_died}, driven by the
    Supervisor) surviving copies are re-buddied onto the next live node.
    Compression composes with all three: stored/flushed byte accounting
    shrinks to the image's modelled compressed size while the Agent
    charges the virtual-CPU compressor cost.

    Keys are versioned internally: {!put} retires the previous version of
    the key, preserving its bytes under a shadow name while live delta
    chains still pin it (copy-on-write), and chain links bind to the base
    {e version} current at write time — overwriting a delta's base can
    never retarget or corrupt an existing chain.

    Flushing is deliberately {e not} part of checkpoint latency (the
    paper's methodology).  {!flush} models contention: the shared SAN
    serializes all flushes behind one queue; buddy flushes ride each
    owner's own link in parallel. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Image = Zapc_ckpt.Image

type t

val create :
  ?metrics:Zapc_obs.Metrics.t ->
  ?bps:float ->
  ?latency:Simtime.t ->
  ?replicas:int ->
  ?backend:Params.storage_backend ->
  ?compress:bool ->
  ?buddy_bps:float ->
  ?nodes:int ->
  Engine.t -> t
(** [replicas] (default 2, clamped to at least 1) copies are kept by the
    plain/dedup backends; [nodes] (default 2) is the cluster size the buddy
    backend assigns partners from.  [metrics] receives the [storage.*]
    instruments — puts, put_bytes, bytes_written, gets, get_misses,
    write_failures, corruption_detected, replica_fallbacks, delta_resolved,
    chain_broken, gc_deferred, cow_preserved, rereplicated(_bytes),
    dedup_chunks_new / dedup_chunk_hits / dedup_bytes_logical /
    dedup_bytes_unique / dedup_chunks_freed / dedup_factor (gauge),
    compress_in_bytes / compress_out_bytes / compress_saved_bytes /
    compress_ratio (gauge), buddy_puts / buddy_reassigned / buddy_degraded
    / buddy_lost. *)

val replica_count : t -> int

val backend : t -> Params.storage_backend

val set_trace : t -> Trace.t -> unit
(** Record successful writes as [storage_put] spans in the causal trace
    (parented under the writing Agent's operation span via {!put}'s
    [op]/[parent]). *)

val put :
  ?op:int -> ?parent:int -> ?node:int ->
  t -> string -> Image.t -> (unit, string) result
(** Store the image (with its {!Image.checksum}) under the key's fresh
    internal version; the previous version is freed, or kept as a
    copy-on-write shadow while live deltas still chain to it
    ([storage.cow_preserved]).  [node] is the writing Agent's node — the
    buddy backend's owner copy lands in its RAM, the partner copy in the
    next live node's.  Fails, storing nothing, during a global write outage
    or when no copy location is available. *)

val get : t -> string -> Image.t option
(** First healthy, checksum-verified copy; [None] if every location is
    unavailable, missing the key, or corrupt.  A delta image is
    materialized transparently against the exact base version its chain
    was written over — byte-identical to the full checkpoint taken at the
    same instant, on every backend. *)

val base_key : t -> string -> string option
(** The stored chain link's base reference, without materializing: [Some k]
    iff the key currently holds a delta based on public key [k]. *)

val set_fail_writes : t -> string option -> unit
(** Failure injection: while [Some reason], every {!put} fails with that
    reason (a SAN outage / full volume).  [None] heals the outage. *)

val write_failures : t -> int
(** Number of writes rejected by injected outages so far. *)

val set_replica_fail : t -> replica:int -> string option -> unit
(** Per-replica outage injection: while set, {!put} skips the replica and
    {!get} falls back past it.  For the buddy backend, replica 0 is the
    owner copy and replica 1 the partner copy.  Out-of-range indices are
    ignored. *)

val heal_replicas : t -> unit
(** Clear every per-replica outage {e and} restore the replication factor:
    copies a replica missed (writes during its outage) are backfilled from
    the pristine stored record, counted in [storage.rereplicated] /
    [storage.rereplicated_bytes].  Buddy repair instead rides {!node_died}
    reassignment. *)

val node_died : t -> int -> unit
(** Buddy backend: the node's RAM (and every buddy copy in it) is gone.
    Entries with a surviving copy are re-buddied onto the next live node
    ([storage.buddy_reassigned]; [storage.buddy_degraded] when no other
    node is alive); entries that lost both copies are gone
    ([storage.buddy_lost]).  No-op on the other backends. *)

val node_healed : t -> int -> unit
(** The node rejoined (with an empty RAM — its buddy copies died with it). *)

val corrupt : t -> replica:int -> string -> bool
(** Corruption injection: flip a byte of one location's copy of the image
    while keeping its stale checksum, so only a verifying read notices.
    On a dedup recipe the damage shadows the copy's first chunk without
    touching the shared pool.  Returns [false] if that location has no
    (non-empty) copy of the key. *)

val corruption_detected : t -> int
(** Number of reads that found a copy failing verification (each such copy
    is skipped and the next location tried). *)

val mem : t -> string -> bool
(** Cheap, side-effect-free existence check: the key's current version is
    present at some non-outaged location.  No chain walk, no metric
    traffic, no materialization — a copy that would fail verification
    still answers [true]; only a full {!get} can tell. *)

val remove : t -> string -> unit
(** Drop the key.  If live deltas still chain to its current version the
    key only vanishes from the public namespace ({!get}/{!mem}/{!keys});
    the bytes (and their chunk references) are reclaimed once the last
    referencing delta is removed. *)

val replica_has : t -> replica:int -> string -> bool
(** Does this location (buddy: 0 = owner, 1 = partner) physically hold the
    key's current version?  Ignores outage flags — tests observe the
    replication factor directly with this. *)

val flush_bytes : t -> string -> int option
(** Bytes that travel when flushing the key's current version: a delta's
    delta bytes, a dedup put's distinct-new bytes only, shrunk by
    compression when enabled. *)

val flush_time : t -> string -> Simtime.t
(** Uncontended single-transfer flush time at the backend's bandwidth
    (shared SAN, or the owner's link for buddy). *)

val flush : t -> string -> on_done:(unit -> unit) -> unit
(** Contended flush: shared-SAN flushes serialize behind one cluster-wide
    queue; buddy flushes serialize per owner link but run in parallel
    across nodes. *)

val keys : t -> string list
(** Sorted public keys currently stored. *)
