(** Self-healing supervisor: heartbeat failure detection and automatic
    recovery of a periodically-checkpointed application group.

    Probes the nodes hosting the group with A_ping every
    [Params.heartbeat_period]; after [Params.heartbeat_misses] consecutive
    unanswered beats a node is declared dead and the supervisor drives
    {!Periodic.recover_async} onto the surviving node set, retrying with
    capped exponential backoff and deterministic jitter up to
    [Params.recover_retries] times before giving up.  Detection, attempts,
    recovery and surrender are all recorded as [Trace] events
    ([sup_detect:node<i>], [sup_attempt:<k>], [sup_backoff:<ms>],
    [sup_recovered], [sup_giveup]), so availability is observable and the
    chaos harness can hook fault triggers onto them.

    The watch set is sticky: frozen at {!start} and refreshed only after a
    successful recovery, because a crashed node's pods die with it and a
    set recomputed from live pods would silently drop the node under
    suspicion. *)

module Simtime = Zapc_sim.Simtime

type state = Monitoring | Suspected | Recovering | Gave_up | Stopped

val state_to_string : state -> string

type t

val start : ?trace:Trace.t -> Cluster.t -> Periodic.t -> t
(** Begin monitoring the nodes currently hosting the service's pods.
    Installs itself as the Manager's pong sink. *)

val stop : t -> unit

val state : t -> state
val watched : t -> int list
(** The sticky node set currently under heartbeat watch. *)

val recoveries : t -> int
(** Completed automatic recoveries. *)

val total_attempts : t -> int
val gave_up : t -> bool

val last_detect : t -> Simtime.t option
(** Instant the most recent node death was declared. *)

val last_recovered : t -> Simtime.t option
(** Instant the most recent recovery completed (restart reported ok). *)

val events : t -> (Simtime.t * string) list
(** Chronological supervisor event log (detect/attempt/backoff/...). *)
