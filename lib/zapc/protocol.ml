(* Wire protocol between the Manager and the Agents (Figures 1 and 3).

   A user request names the application as a list of <<node, pod, URI>>
   tuples; a URI is either a shared-storage key or the address of a
   receiving Agent (direct migration streaming, paper section 4). *)

module Simtime = Zapc_sim.Simtime
module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr
module Meta = Zapc_netckpt.Meta
module Image = Zapc_ckpt.Image

type uri =
  | U_storage of string  (* key in the shared storage *)
  | U_node of int  (* stream directly to the Agent on this node *)

let uri_to_string = function
  | U_storage k -> "file://" ^ k
  | U_node n -> Printf.sprintf "agent://node%d" n

(* --- structured failure reasons --- *)

(* The two wait phases of a coordinated operation as the Manager sees them:
   gathering meta-data reports, then gathering completion statuses (restart
   only has the latter). *)
type phase = Ph_meta | Ph_done

let phase_to_string = function
  | Ph_meta -> "meta-gather"
  | Ph_done -> "completion-gather"

type failure =
  | F_agent of { node : int; pod_id : int; detail : string }
      (* an Agent reported the operation failed on its side *)
  | F_channel of { node : int }  (* a Manager<->Agent channel broke *)
  | F_timeout of { phase : phase; waiting : int list }
      (* a per-phase timeout expired with these pods still unreported *)
  | F_missing_image of string  (* restart precondition failed *)

let failure_to_string = function
  | F_agent { node; pod_id; detail } ->
    Printf.sprintf "pod %d (node %d): %s" pod_id node detail
  | F_channel { node } -> Printf.sprintf "control channel to node %d broke" node
  | F_timeout { phase; waiting } ->
    Printf.sprintf "%s phase timed out waiting for pods [%s]" (phase_to_string phase)
      (String.concat "," (List.map string_of_int waiting))
  | F_missing_image msg -> msg

(* --- per-operation statistics reported by Agents --- *)

type agent_stats = {
  st_net_time : Simtime.t;  (* network-state save/restore time *)
  st_local_time : Simtime.t;  (* total local operation time *)
  st_conn_time : Simtime.t;  (* restart: connectivity recovery time *)
  st_image_bytes : int;  (* logical size of what was written *)
  st_full_bytes : int;
  (* when the write was a delta: the logical size a full checkpoint would
     have written (st_image_bytes / st_full_bytes is the delta ratio);
     0 when the write was a full image *)
  st_net_bytes : int;  (* network-state bytes (queues + meta) *)
  st_sockets : int;
  st_procs : int;
}

let zero_stats =
  { st_net_time = 0; st_local_time = 0; st_conn_time = 0; st_image_bytes = 0;
    st_full_bytes = 0; st_net_bytes = 0; st_sockets = 0; st_procs = 0 }

(* One pre-copy round as the source Agent reports it. *)
type mig_round_stats = {
  mg_round : int;  (* 0 = the full-image round *)
  mg_bytes : int;  (* logical bytes shipped this round *)
  mg_dirty : int;  (* dirty bytes observed when the round's stream landed *)
  mg_duration : Simtime.t;
}

(* --- trace context ---

   Causal propagation across the control plane: the Manager stamps the
   operation-starting commands with its operation id and the span id of the
   operation's manager-side span, and the Agent parents its local spans
   under it — stitching every node's phases into one cross-node tree (the
   span recorder is shared cluster-wide, so ids resolve globally).  The
   field is optional on the wire: frames encoded before the field existed
   (or by a non-tracing Manager) decode to [None]. *)

type trace_ctx = {
  tc_op : int;  (* manager operation id (generation counter) *)
  tc_parent : int;  (* span id of the manager-side operation span *)
}

type to_agent =
  | A_checkpoint of {
      pod_id : int; dest : uri; resume : bool; incremental : bool;
      ctx : trace_ctx option;
    }
  | A_continue of { pod_id : int }
  | A_abort of { pod_id : int }
  | A_restart of {
      pod_id : int;
      name : string;
      vip : Addr.ip;
      rip : Addr.ip;  (* pre-allocated real address on the target node *)
      uri : uri;
      entries : Meta.restart_entry list;
      vip_map : (Addr.ip * Addr.ip) list;
      extra_altq : (int * string) list;  (* sock_ref -> redirected peer data *)
      skip_sendq : bool;  (* send queues were redirected; do not resend *)
      ctx : trace_ctx option;
    }
  | A_ping of { seq : int }  (* supervisor heartbeat probe *)
  | A_migrate of {
      pod_id : int;
      dest : int;  (* destination node: rounds stream to its Agent *)
      max_rounds : int;  (* pre-copy round cap; 0 = plain stop-and-copy *)
      dirty_threshold : float;  (* converged when round dirty <= this x full *)
      ctx : trace_ctx option;
    }
  | A_batch of (int * to_agent) list
      (* hierarchical coordination: a bundle of addressed commands sent as
         ONE control message down a tree edge.  Each (node, msg) item is
         delivered locally when [node] is the receiver, else forwarded
         toward it (re-bundled per next hop).  Never nested: coordinators
         flatten before forwarding. *)

type to_manager =
  | M_meta of { node : int; pod_id : int; meta : Meta.pod_meta; meta_bytes : int }
  | M_done of { node : int; pod_id : int; ok : bool; detail : string; stats : agent_stats }
  | M_pong of { node : int; seq : int }  (* heartbeat reply *)
  | M_migrate_round of { node : int; pod_id : int; stats : mig_round_stats }
      (* the source: one pre-copy round's stream has landed at the dest *)
  | M_migrate_done of {
      node : int;  (* the DESTINATION node: this is the commit message *)
      pod_id : int;
      rounds : int;  (* pre-copy rounds that ran (cap 0 => 0) *)
      precopy_bytes : int;  (* bytes shipped before the stop-and-copy *)
      forced : bool;  (* round cap hit without converging *)
    }
  | M_batch of to_manager list
      (* hierarchical coordination: reports from one subtree aggregated into
         ONE control message up a tree edge (flattened, never nested) *)
  | M_subtree_down of { node : int }
      (* a sub-coordinator's edge to child [node] broke: that whole subtree
         is unreachable.  Relayed up so the Manager can abort exactly as if
         its own channel to [node] had broken. *)

(* Rough message sizes for the control-plane cost model. *)
let rec to_agent_bytes = function
  | A_checkpoint _ -> 64
  | A_continue _ -> 16
  | A_abort _ -> 16
  | A_ping _ -> 16
  | A_migrate _ -> 32
  | A_restart r ->
    128
    + (List.length r.entries * 64)
    + (List.length r.vip_map * 8)
    + List.fold_left (fun acc (_, d) -> acc + String.length d) 0 r.extra_altq
  | A_batch items ->
    (* one frame: per-item routing header + payload, amortizing the
       per-message framing the flat topology pays N times *)
    List.fold_left (fun acc (_, m) -> acc + 8 + to_agent_bytes m) 16 items

let rec to_manager_bytes = function
  | M_meta m -> 32 + m.meta_bytes
  | M_done _ -> 64
  | M_pong _ -> 16
  | M_migrate_round _ -> 48
  | M_migrate_done _ -> 32
  | M_batch items ->
    List.fold_left (fun acc m -> acc + 4 + to_manager_bytes m) 16 items
  | M_subtree_down _ -> 16

(* --- Value codecs ---

   Control messages share the checkpoint images' portable intermediate
   format, so a Manager and an Agent built from different kernels (or a
   message relayed through storage) agree on the bytes.  Round-tripping is
   property-tested in test/test_codec.ml. *)

let uri_to_value = function
  | U_storage k -> Value.tag "storage" (Value.str k)
  | U_node n -> Value.tag "node" (Value.int n)

let uri_of_value v =
  match Value.to_tag v with
  | "storage", k -> U_storage (Value.to_str k)
  | "node", n -> U_node (Value.to_int n)
  | tag, _ -> Value.decode_error "bad uri tag %s" tag

let stats_to_value st =
  Value.assoc
    [ ("net_time", Value.int st.st_net_time);
      ("local_time", Value.int st.st_local_time);
      ("conn_time", Value.int st.st_conn_time);
      ("image_bytes", Value.int st.st_image_bytes);
      ("full_bytes", Value.int st.st_full_bytes);
      ("net_bytes", Value.int st.st_net_bytes);
      ("sockets", Value.int st.st_sockets);
      ("procs", Value.int st.st_procs) ]

let stats_of_value v =
  let i k = Value.to_int (Value.field k v) in
  { st_net_time = i "net_time"; st_local_time = i "local_time";
    st_conn_time = i "conn_time"; st_image_bytes = i "image_bytes";
    st_full_bytes = i "full_bytes"; st_net_bytes = i "net_bytes";
    st_sockets = i "sockets"; st_procs = i "procs" }

let mig_round_stats_to_value st =
  Value.assoc
    [ ("round", Value.int st.mg_round);
      ("bytes", Value.int st.mg_bytes);
      ("dirty", Value.int st.mg_dirty);
      ("duration", Value.int st.mg_duration) ]

let mig_round_stats_of_value v =
  let i k = Value.to_int (Value.field k v) in
  { mg_round = i "round"; mg_bytes = i "bytes"; mg_dirty = i "dirty";
    mg_duration = i "duration" }

(* The trace context rides as an optional trailing assoc entry, so frames
   encoded without it (older encoders, tracing off) stay decodable — the
   backward-compatibility property test_codec.ml exercises. *)
let ctx_entries = function
  | None -> []
  | Some c ->
    [ ( "ctx",
        Value.assoc
          [ ("op", Value.int c.tc_op); ("parent", Value.int c.tc_parent) ] ) ]

let ctx_of_body b =
  match Value.field_opt "ctx" b with
  | None -> None
  | Some cv ->
    Some
      { tc_op = Value.to_int (Value.field "op" cv);
        tc_parent = Value.to_int (Value.field "parent" cv) }

let rec to_agent_to_value = function
  | A_checkpoint { pod_id; dest; resume; incremental; ctx } ->
    Value.tag "checkpoint"
      (Value.assoc
         ([ ("pod", Value.int pod_id); ("dest", uri_to_value dest);
            ("resume", Value.bool resume); ("incremental", Value.bool incremental) ]
          @ ctx_entries ctx))
  | A_continue { pod_id } -> Value.tag "continue" (Value.int pod_id)
  | A_abort { pod_id } -> Value.tag "abort" (Value.int pod_id)
  | A_restart
      { pod_id; name; vip; rip; uri; entries; vip_map; extra_altq; skip_sendq;
        ctx } ->
    Value.tag "restart"
      (Value.assoc
         ([ ("pod", Value.int pod_id); ("name", Value.str name);
            ("vip", Value.int vip); ("rip", Value.int rip);
            ("uri", uri_to_value uri);
            ("entries", Value.list Meta.restart_entry_to_value entries);
            ("vip_map", Value.list (Value.pair Value.int Value.int) vip_map);
            ("extra_altq", Value.list (Value.pair Value.int Value.str) extra_altq);
            ("skip_sendq", Value.bool skip_sendq) ]
          @ ctx_entries ctx))
  | A_ping { seq } -> Value.tag "ping" (Value.int seq)
  | A_migrate { pod_id; dest; max_rounds; dirty_threshold; ctx } ->
    Value.tag "migrate"
      (Value.assoc
         ([ ("pod", Value.int pod_id); ("dest", Value.int dest);
            ("max_rounds", Value.int max_rounds);
            ("dirty_threshold", Value.Float dirty_threshold) ]
          @ ctx_entries ctx))
  | A_batch items ->
    Value.tag "batch"
      (Value.list (Value.pair Value.int to_agent_to_value) items)

let rec to_agent_of_value v =
  match Value.to_tag v with
  | "checkpoint", b ->
    A_checkpoint
      { pod_id = Value.to_int (Value.field "pod" b);
        dest = uri_of_value (Value.field "dest" b);
        resume = Value.to_bool (Value.field "resume" b);
        incremental = Value.to_bool (Value.field "incremental" b);
        ctx = ctx_of_body b }
  | "continue", b -> A_continue { pod_id = Value.to_int b }
  | "abort", b -> A_abort { pod_id = Value.to_int b }
  | "restart", b ->
    A_restart
      { pod_id = Value.to_int (Value.field "pod" b);
        name = Value.to_str (Value.field "name" b);
        vip = Value.to_int (Value.field "vip" b);
        rip = Value.to_int (Value.field "rip" b);
        uri = uri_of_value (Value.field "uri" b);
        entries = Value.to_list Meta.restart_entry_of_value (Value.field "entries" b);
        vip_map =
          Value.to_list (Value.to_pair Value.to_int Value.to_int) (Value.field "vip_map" b);
        extra_altq =
          Value.to_list (Value.to_pair Value.to_int Value.to_str)
            (Value.field "extra_altq" b);
        skip_sendq = Value.to_bool (Value.field "skip_sendq" b);
        ctx = ctx_of_body b }
  | "ping", b -> A_ping { seq = Value.to_int b }
  | "migrate", b ->
    A_migrate
      { pod_id = Value.to_int (Value.field "pod" b);
        dest = Value.to_int (Value.field "dest" b);
        max_rounds = Value.to_int (Value.field "max_rounds" b);
        dirty_threshold = Value.to_float (Value.field "dirty_threshold" b);
        ctx = ctx_of_body b }
  | "batch", b ->
    A_batch (Value.to_list (Value.to_pair Value.to_int to_agent_of_value) b)
  | tag, _ -> Value.decode_error "bad to_agent tag %s" tag

let rec to_manager_to_value = function
  | M_meta { node; pod_id; meta; meta_bytes } ->
    Value.tag "meta"
      (Value.assoc
         [ ("node", Value.int node); ("pod", Value.int pod_id);
           ("meta", Meta.to_value meta); ("meta_bytes", Value.int meta_bytes) ])
  | M_done { node; pod_id; ok; detail; stats } ->
    Value.tag "done"
      (Value.assoc
         [ ("node", Value.int node); ("pod", Value.int pod_id);
           ("ok", Value.bool ok); ("detail", Value.str detail);
           ("stats", stats_to_value stats) ])
  | M_pong { node; seq } ->
    Value.tag "pong" (Value.assoc [ ("node", Value.int node); ("seq", Value.int seq) ])
  | M_migrate_round { node; pod_id; stats } ->
    Value.tag "mig_round"
      (Value.assoc
         [ ("node", Value.int node); ("pod", Value.int pod_id);
           ("stats", mig_round_stats_to_value stats) ])
  | M_migrate_done { node; pod_id; rounds; precopy_bytes; forced } ->
    Value.tag "mig_done"
      (Value.assoc
         [ ("node", Value.int node); ("pod", Value.int pod_id);
           ("rounds", Value.int rounds);
           ("precopy_bytes", Value.int precopy_bytes);
           ("forced", Value.bool forced) ])
  | M_batch items -> Value.tag "batch" (Value.list to_manager_to_value items)
  | M_subtree_down { node } -> Value.tag "subtree_down" (Value.int node)

let rec to_manager_of_value v =
  match Value.to_tag v with
  | "meta", b ->
    M_meta
      { node = Value.to_int (Value.field "node" b);
        pod_id = Value.to_int (Value.field "pod" b);
        meta = Meta.of_value (Value.field "meta" b);
        meta_bytes = Value.to_int (Value.field "meta_bytes" b) }
  | "done", b ->
    M_done
      { node = Value.to_int (Value.field "node" b);
        pod_id = Value.to_int (Value.field "pod" b);
        ok = Value.to_bool (Value.field "ok" b);
        detail = Value.to_str (Value.field "detail" b);
        stats = stats_of_value (Value.field "stats" b) }
  | "pong", b ->
    M_pong
      { node = Value.to_int (Value.field "node" b);
        seq = Value.to_int (Value.field "seq" b) }
  | "mig_round", b ->
    M_migrate_round
      { node = Value.to_int (Value.field "node" b);
        pod_id = Value.to_int (Value.field "pod" b);
        stats = mig_round_stats_of_value (Value.field "stats" b) }
  | "mig_done", b ->
    M_migrate_done
      { node = Value.to_int (Value.field "node" b);
        pod_id = Value.to_int (Value.field "pod" b);
        rounds = Value.to_int (Value.field "rounds" b);
        precopy_bytes = Value.to_int (Value.field "precopy_bytes" b);
        forced = Value.to_bool (Value.field "forced" b) }
  | "batch", b -> M_batch (Value.to_list to_manager_of_value b)
  | "subtree_down", b -> M_subtree_down { node = Value.to_int b }
  | tag, _ -> Value.decode_error "bad to_manager tag %s" tag

type channel = (to_manager, to_agent) Control.t
