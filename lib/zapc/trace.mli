(** Protocol tracing: phase boundaries of coordinated checkpoint/restart
    operations, for rendering (and asserting on) the paper's Figure-2
    timeline — in particular that the standalone checkpoint overlaps the
    Manager synchronization and that resume gates on both conditions. *)

module Simtime = Zapc_sim.Simtime

type event = {
  ev_time : Simtime.t;
  ev_pod : int;  (** -1 for Manager-level events *)
  ev_what : string;
}

type t

val create : unit -> t
val record : t -> time:Simtime.t -> pod:int -> string -> unit

val on_record : t -> (event -> unit) -> unit
(** Subscribe to every recorded event as it happens; observers fire in
    subscription order, synchronously with {!record}.  This is the hook the
    fault-injection layer uses to schedule faults at protocol phase
    boundaries. *)

val events : t -> event list
val clear : t -> unit
val find : t -> pod:int -> string -> event option
val pods : t -> int list

val render_checkpoint : t -> string
(** One line per pod with phase offsets (ms) from the Manager broadcast. *)
