(** Protocol tracing: phase boundaries of coordinated checkpoint/restart
    operations, for rendering (and asserting on) the paper's Figure-2
    timeline — in particular that the standalone checkpoint overlaps the
    Manager synchronization and that resume gates on both conditions.

    The structured core is a {!Zapc_obs.Span} recorder: typed spans keyed
    by (operation id, pod, node) plus instants for phase boundaries.  The
    string-event API below is a compatibility view over the instants; the
    span stream is what the Chrome-trace exporter consumes. *)

module Simtime = Zapc_sim.Simtime

type event = {
  ev_time : Simtime.t;
  ev_pod : int;  (** -1 for Manager-level events *)
  ev_what : string;
}

type t

val create : unit -> t

val recorder : t -> Zapc_obs.Span.t
(** The underlying span/instant recorder (for exporters and span-level
    assertions). *)

val record : ?node:int -> t -> time:Simtime.t -> pod:int -> string -> unit
(** Record a phase-boundary instant.  [node] defaults to [-1]
    (manager/cluster scope). *)

val span_begin :
  t -> time:Simtime.t -> ?op:int -> ?node:int -> ?parent:int -> pod:int ->
  string -> unit
(** Open a typed span (no-op when tracing is disabled).  Closed by
    {!span_end} on the same [name]/[pod].  [parent] is the causal parent's
    span id (see {!span_begin_id}). *)

val span_begin_id :
  t -> time:Simtime.t -> ?op:int -> ?node:int -> ?parent:int -> pod:int ->
  string -> int
(** As {!span_begin}, returning the new span's id so it can be propagated
    as a causal parent — into child spans and across the control plane via
    [Protocol.trace_ctx].  Returns [-1] when tracing is disabled. *)

val parent_arg : int -> int option
(** [Some id] when [id >= 0], else [None] — normalizes a {!span_begin_id}
    result (or a wire [tc_parent]) into a [?parent] argument. *)

val span_end : t -> time:Simtime.t -> pod:int -> string -> unit
val span_end_all : t -> time:Simtime.t -> pod:int -> unit
(** Close every open span of [pod] — abort paths. *)

val on_record : t -> (event -> unit) -> unit
(** Subscribe to every recorded event as it happens; observers fire in
    subscription order, synchronously with {!record}.  This is the hook the
    fault-injection layer uses to schedule faults at protocol phase
    boundaries. *)

val clear_observers : t -> unit
(** Drop all {!on_record} subscriptions.  Fault-injection/monitoring
    callbacks otherwise survive {!clear} and fire into dead state on the
    next run; the chaos harness calls this between seeds. *)

val events : t -> event list
val clear : t -> unit
(** Forget recorded events and spans.  Observers survive — use
    {!clear_observers} for those. *)

val find : t -> pod:int -> string -> event option
val pods : t -> int list

val to_chrome : t -> string
(** Render the span stream as Chrome [trace_event] JSON
    (see {!Zapc_obs.Chrome}). *)

val dump_chrome : t -> string -> unit

val render_checkpoint : t -> string
(** One line per pod with phase offsets (ms) from the Manager broadcast. *)
