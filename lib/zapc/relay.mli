(** Tree sub-coordinator: one per node when [Params.tree_fanout] > 0.

    Downward it unpacks the {!Protocol.to_agent.A_batch} arriving on its
    uplink, hands locally-addressed commands to its {!Agent} and re-bundles
    the rest into one batch per child edge; upward it aggregates its
    subtree's reports — everything landing in the same engine instant —
    into one {!Protocol.to_manager.M_batch}.  The Manager thus pays its
    per-message cost ([Params.ctrl_proc]) per direct subtree instead of per
    node.

    Failure semantics: a broken child edge is reported up as
    {!Protocol.to_manager.M_subtree_down} (the root aborts as if its own
    channel to that node broke); a broken uplink severs the child edges, so
    the whole orphaned subtree aborts in-flight work and resumes its pods. *)

module Engine = Zapc_sim.Engine
module Metrics = Zapc_obs.Metrics

type t

val create :
  engine:Engine.t ->
  params:Params.t ->
  metrics:Metrics.t ->
  agent:Agent.t ->
  node:int ->
  parent:Protocol.channel ->
  children:(int * Protocol.channel) list ->
  routes:(int * int) list ->
  t
(** Install a relay over its node's uplink and child edges.  Must run
    {e after} [Agent.attach_channel agent parent]: the relay claims the
    uplink's down handler (routing local commands back through
    {!Agent.deliver}) while the agent's on-break abort, registered first,
    stays armed.  [routes] maps every strict descendant to the direct child
    whose subtree contains it (children map to themselves). *)

val close : t -> unit
(** Retire the relay (topology re-formed): it drops all subsequent traffic
    so stale in-flight frames on old edges cannot reach agents twice. *)

val node : t -> int

val child_count : t -> int
