(* Shared storage infrastructure (the SAN/NAS of the paper's cluster).

   Checkpoint images are written to memory during the checkpoint (that cost
   is part of the checkpoint time) and can be flushed to shared storage
   afterwards, which every node can read — this is what lets a restart
   happen on a different set of nodes.  Flushing is deliberately *not* part
   of the checkpoint latency, matching the paper's measurement methodology.

   The store holds [replicas] independent copies of every image, each with
   the content checksum computed at [put].  A read walks the replicas in
   order, skipping ones under an injected outage and ones whose bytes no
   longer match their stored checksum, so a corrupted or unavailable primary
   falls back to a healthy replica.  A global write outage
   ([set_fail_writes]) models a SAN-wide failure and rejects the whole
   write; a per-replica outage ([set_replica_fail]) only drops that copy. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Metrics = Zapc_obs.Metrics
module Image = Zapc_ckpt.Image
module Delta = Zapc_ckpt.Delta

type replica = {
  images : (string, Image.t * int) Hashtbl.t;  (* key -> image, checksum *)
  mutable fail : string option;  (* injected per-replica outage *)
}

type t = {
  engine : Engine.t;
  bps : float;
  latency : Simtime.t;
  replicas : replica array;
  metrics : Metrics.t;
  (* delta-chain bookkeeping (shared by all replicas: chain structure is a
     property of the keys, not of the copies) *)
  bases : (string, string) Hashtbl.t;  (* delta key -> its base key *)
  pins : (string, int) Hashtbl.t;  (* key -> # of live deltas based on it *)
  condemned : (string, unit) Hashtbl.t;  (* removed while still pinned *)
  mutable bytes_written : int;
  mutable fail_writes : string option;  (* injected outage: writes fail with this reason *)
  mutable write_failures : int;
  mutable corruption_detected : int;
  mutable trace : Trace.t option;  (* causal tracing of writes *)
}

let create ?metrics ?(bps = 180e6) ?(latency = Simtime.us 500) ?(replicas = 2) engine =
  let replicas = Stdlib.max 1 replicas in
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  { engine; bps; latency;
    replicas = Array.init replicas (fun _ -> { images = Hashtbl.create 16; fail = None });
    metrics;
    bases = Hashtbl.create 16; pins = Hashtbl.create 16; condemned = Hashtbl.create 8;
    bytes_written = 0; fail_writes = None; write_failures = 0; corruption_detected = 0;
    trace = None }

let replica_count t = Array.length t.replicas

let set_trace t tr = t.trace <- Some tr

(* Failure injection (a SAN outage / full volume): while set, every write
   fails with the given reason and stores nothing. *)
let set_fail_writes t reason = t.fail_writes <- reason
let write_failures t = t.write_failures
let corruption_detected t = t.corruption_detected

(* Per-replica outage: writes skip the replica, reads fall back past it. *)
let set_replica_fail t ~replica reason =
  if replica >= 0 && replica < Array.length t.replicas then
    t.replicas.(replica).fail <- reason

let heal_replicas t = Array.iter (fun r -> r.fail <- None) t.replicas

(* --- delta-chain bookkeeping -------------------------------------------

   A delta image references its base by storage key; the base must outlive
   every delta chained on it or restarts stop being able to materialize the
   chain.  [remove] therefore only *condemns* a pinned key (it disappears
   from the public namespace but its bytes stay); the physical delete
   cascades once the last delta referencing it is itself deleted. *)

let pin_count t key = match Hashtbl.find_opt t.pins key with Some n -> n | None -> 0

let pin t key = Hashtbl.replace t.pins key (pin_count t key + 1)

let rec unpin t key =
  match Hashtbl.find_opt t.pins key with
  | None -> ()
  | Some 1 ->
    Hashtbl.remove t.pins key;
    if Hashtbl.mem t.condemned key then really_remove t key
  | Some n -> Hashtbl.replace t.pins key (n - 1)

and really_remove t key =
  Hashtbl.remove t.condemned key;
  Array.iter (fun r -> Hashtbl.remove r.images key) t.replicas;
  match Hashtbl.find_opt t.bases key with
  | Some base ->
    Hashtbl.remove t.bases key;
    unpin t base
  | None -> ()

let remove t key =
  if pin_count t key > 0 then begin
    (* a live delta still needs this image: hide it, defer the delete *)
    Hashtbl.replace t.condemned key ();
    Metrics.incr t.metrics "storage.gc_deferred"
  end
  else really_remove t key

(* Record (or clear) the chain link for a key being overwritten/created. *)
let record_link t key (image : Image.t) =
  (match Hashtbl.find_opt t.bases key with
   | Some old_base ->
     Hashtbl.remove t.bases key;
     unpin t old_base
   | None -> ());
  match image.Image.base_key with
  | Some base ->
    Hashtbl.replace t.bases key base;
    pin t base
  | None -> ()

(* [op]/[parent] stitch the write into the operation's causal trace (the
   Agent passes its pod_ckpt span); the span is instantaneous in sim time
   because the copy cost is charged to the checkpoint itself. *)
let put ?op ?parent t key image =
  match t.fail_writes with
  | Some reason ->
    t.write_failures <- t.write_failures + 1;
    Metrics.incr t.metrics "storage.write_failures";
    Error reason
  | None ->
    let sum = Image.checksum image in
    let stored = ref 0 in
    Array.iter
      (fun r ->
        if r.fail = None then begin
          Hashtbl.replace r.images key (image, sum);
          incr stored
        end)
      t.replicas;
    if !stored = 0 then begin
      t.write_failures <- t.write_failures + 1;
      Metrics.incr t.metrics "storage.write_failures";
      Error "all replicas unavailable"
    end
    else begin
      record_link t key image;
      Hashtbl.remove t.condemned key;  (* a rewritten key is public again *)
      t.bytes_written <- t.bytes_written + (!stored * image.Image.logical_size);
      Metrics.incr t.metrics "storage.puts";
      Metrics.add t.metrics "storage.bytes_written"
        (!stored * image.Image.logical_size);
      Metrics.observe t.metrics ~buckets:Metrics.default_bytes_buckets
        "storage.put_bytes"
        (float_of_int image.Image.logical_size);
      (match t.trace with
       | Some tr ->
         let now = Engine.now t.engine in
         Trace.span_begin tr ~time:now ?op ?parent ~pod:image.Image.pod_id
           "storage_put";
         Trace.span_end tr ~time:now ~pod:image.Image.pod_id "storage_put"
       | None -> ());
      Ok ()
    end

(* One stored link, exactly as written.  Walk replicas in order; a copy
   under outage or failing its checksum is skipped (the latter counted in
   [corruption_detected]). *)
let raw_get t key =
  let n = Array.length t.replicas in
  let rec go i =
    if i >= n then None
    else
      let r = t.replicas.(i) in
      if r.fail <> None then go (i + 1)
      else
        match Hashtbl.find_opt r.images key with
        | None -> go (i + 1)
        | Some (image, sum) ->
          if Image.checksum image = sum then begin
            (* a success past replica 0 means the primary was skipped —
               outaged, missing the key, or corrupt *)
            if i > 0 then Metrics.incr t.metrics "storage.replica_fallbacks";
            Some image
          end
          else begin
            t.corruption_detected <- t.corruption_detected + 1;
            Metrics.incr t.metrics "storage.corruption_detected";
            go (i + 1)
          end
  in
  go 0

(* Safety valve against reference cycles among hand-written keys; real
   chains are bounded by Params.max_delta_chain, far below this. *)
let max_resolve_depth = 64

(* Materialize a key: fetch the chain link (checksum-verified, with replica
   fallback), recurse to its base, apply the delta.  Callers always see a
   full image, byte-identical to the full checkpoint taken at the same
   instant. *)
let get t key =
  Metrics.incr t.metrics "storage.gets";
  let miss () =
    Metrics.incr t.metrics "storage.get_misses";
    None
  in
  if Hashtbl.mem t.condemned key then miss ()
  else
    let rec resolve key depth =
      if depth > max_resolve_depth then None
      else
        match raw_get t key with
        | None -> None
        | Some image ->
          (match image.Image.base_key with
           | None -> Some image
           | Some base_key ->
             (match resolve base_key (depth + 1) with
              | None -> None
              | Some base ->
                (match
                   Delta.apply ~base:(Image.to_pod_image base)
                     (Image.to_pod_image image)
                 with
                 | full ->
                   Metrics.incr t.metrics "storage.delta_resolved";
                   Some (Image.of_pod_image full)
                 | exception _ ->
                   Metrics.incr t.metrics "storage.chain_broken";
                   None)))
    in
    match resolve key 0 with None -> miss () | Some image -> Some image

let mem t key = get t key <> None

let base_key t key =
  match raw_get t key with None -> None | Some image -> image.Image.base_key

(* Corruption injection: mutate the stored bytes of one replica's copy while
   keeping the stale checksum, so the damage is only visible to a verifying
   reader.  Returns false if that replica holds no such key. *)
let corrupt t ~replica key =
  if replica < 0 || replica >= Array.length t.replicas then false
  else
    let r = t.replicas.(replica) in
    match Hashtbl.find_opt r.images key with
    | None -> false
    | Some (image, sum) ->
      let b = Bytes.of_string image.Image.encoded in
      if Bytes.length b = 0 then false
      else begin
        let i = Bytes.length b / 2 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
        Hashtbl.replace r.images key
          ({ image with Image.encoded = Bytes.to_string b }, sum);
        true
      end

(* Model the asynchronous flush of an already-stored image to disk: what
   travels is the stored link (a delta flushes its delta bytes, not the
   materialized size). *)
let flush_time t key =
  match raw_get t key with
  | None -> Simtime.zero
  | Some image ->
    Simtime.add t.latency
      (Simtime.ns (int_of_float (float_of_int image.Image.logical_size /. t.bps *. 1e9)))

let flush t key ~on_done =
  Engine.schedule t.engine ~label:"storage.flush" ~delay:(flush_time t key) on_done

let keys t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun r -> Hashtbl.iter (fun k _ -> Hashtbl.replace tbl k ()) r.images)
    t.replicas;
  Hashtbl.fold
    (fun k () acc -> if Hashtbl.mem t.condemned k then acc else k :: acc)
    tbl []
  |> List.sort String.compare
