(* Checkpoint image storage: one interface, three composable backends.

   [Sb_plain] is the SAN/NAS of the paper's cluster: every image verbatim on
   every replica, reads falling back past outaged or corrupt copies.

   [Sb_dedup] is a content-addressed store layered on the same replica
   model: an image is split into FNV-addressed chunks (Zapc_ckpt.Chunk) —
   real chunks of the Wire encoding plus virtual chunks of the modelled
   memory regions — and each distinct chunk is stored once, refcounted.
   Identical text/data across epochs, replicas and sibling pods (the 16 BT
   ranks all declare the same regions) collapses to one stored copy, and
   the savings multiply with delta chains: an unchanged region dedupes even
   inside a full checkpoint.

   [Sb_buddy] is the peer-memory backend: each image lands in the owner
   node's RAM plus a partner ("buddy") node's RAM over the per-node links,
   bypassing the shared SAN entirely — LiveStack's argument that cluster-
   scale checkpoint traffic must avoid any central choke point.  When a
   node dies the Supervisor calls [node_died]; surviving copies are
   re-buddied onto the next live node.

   Compression ([compress]) composes with all three: the stored/flushed
   byte accounting shrinks to the image's modelled compressed size
   (Image.comp_size) while the virtual-CPU compressor cost is charged by
   the Agent.  The bytes that restart must reproduce are never transformed,
   so restart stays checksum-identical across every backend combination.

   Keys are *versioned* internally: each [put key] allocates a fresh
   physical name (key, version) and retires the previous version.  If live
   deltas still pin the previous version its bytes are preserved under the
   shadow name (copy-on-write) until the last referencing delta goes —
   without this, overwriting a delta's base silently swaps the bytes the
   chain resolves against and [get] materializes a wrong image with a valid
   per-link checksum.  Chain links recorded at [put] bind to the base
   *version* current at write time, so later overwrites of the base key
   cannot retarget existing chains. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Metrics = Zapc_obs.Metrics
module Image = Zapc_ckpt.Image
module Delta = Zapc_ckpt.Delta
module Chunk = Zapc_ckpt.Chunk

(* One distinct chunk in the content-addressed pool.  [c_bytes] is the real
   content for encoded-bytes chunks and [None] for virtual region chunks
   (the simulation models region content as (name, size, generation) tags —
   there are no page bytes to keep, only accounting). *)
type chunk = {
  c_size : int;
  c_bytes : string option;
  mutable c_refs : int;  (* referencing stored entries (per occurrence) *)
}

(* One encoded-bytes chunk of a recipe: normally a pool reference; inline
   when the pool address collided with different content (never observed —
   the safety valve keeps a hash collision from corrupting images). *)
type ch = Cref of int | Cinline of string

type stored =
  | Whole of Image.t  (* plain/buddy: the image, verbatim *)
  | Recipe of {
      skel : Image.t;  (* the image minus its encoded bytes *)
      chs : ch array;  (* encoded bytes, in chunk order *)
      vrefs : int array;  (* virtual region-chunk addresses (accounting) *)
    }

type copyset = {
  images : (string, stored * int) Hashtbl.t;  (* pname -> stored, checksum *)
  mutable fail : string option;  (* injected per-replica outage *)
}

(* Copy-independent record of a stored physical name: the pristine stored
   form, its checksum and its accounted (flush/backfill) byte size.  The
   source of truth for chunk refcounts, heal-time re-replication and flush
   sizing; corruption injection only ever touches replica copies. *)
type entry = { e_stored : stored; e_sum : int; e_bytes : int }

type t = {
  engine : Engine.t;
  backend : Params.storage_backend;
  compress : bool;
  bps : float;  (* shared SAN flush bandwidth *)
  buddy_bps : float;  (* per-node link bandwidth (buddy transfers) *)
  latency : Simtime.t;
  nodes : int;  (* cluster size the buddy backend assigns partners from *)
  replicas : copyset array;
  (* buddy backend state: per-node RAM copies, per-pname (owner, partner)
     placement (-1 = no live partner), and the dead-node set *)
  rams : (int, (string, stored * int) Hashtbl.t) Hashtbl.t;
  locs : (string, int * int) Hashtbl.t;
  dead : (int, unit) Hashtbl.t;
  (* content-addressed chunk pool (dedup backend) *)
  chunks : (int, chunk) Hashtbl.t;
  (* versioned keyspace *)
  versions : (string, int) Hashtbl.t;  (* public key -> current version *)
  vseq : (string, int) Hashtbl.t;  (* public key -> last version ever issued *)
  logical : (string, entry) Hashtbl.t;  (* pname -> pristine stored record *)
  (* delta-chain bookkeeping, keyed by physical name *)
  bases : (string, string) Hashtbl.t;  (* delta pname -> its base pname *)
  pins : (string, int) Hashtbl.t;  (* pname -> # of live deltas based on it *)
  condemned : (string, unit) Hashtbl.t;  (* retired/removed while pinned *)
  metrics : Metrics.t;
  mutable bytes_written : int;
  mutable fail_writes : string option;
  mutable write_failures : int;
  mutable corruption_detected : int;
  mutable trace : Trace.t option;
  (* contention: the shared SAN serializes flushes; each node's buddy link
     serializes its own transfers but runs in parallel with other nodes *)
  mutable san_free : Simtime.t;
  links_free : (int, Simtime.t) Hashtbl.t;
  (* running totals behind the dedup_factor / compress_ratio gauges *)
  mutable dd_logical : int;
  mutable dd_unique : int;
  mutable comp_in : int;
  mutable comp_out : int;
}

let create ?metrics ?(bps = 180e6) ?(latency = Simtime.us 500) ?(replicas = 2)
    ?(backend = Params.Sb_plain) ?(compress = false) ?(buddy_bps = 1e9)
    ?(nodes = 2) engine =
  let replicas = Stdlib.max 1 replicas in
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  { engine; backend; compress; bps; buddy_bps; latency;
    nodes = Stdlib.max 1 nodes;
    replicas = Array.init replicas (fun _ -> { images = Hashtbl.create 16; fail = None });
    rams = Hashtbl.create 8; locs = Hashtbl.create 16; dead = Hashtbl.create 4;
    chunks = Hashtbl.create 64;
    versions = Hashtbl.create 16; vseq = Hashtbl.create 16;
    logical = Hashtbl.create 16;
    bases = Hashtbl.create 16; pins = Hashtbl.create 16; condemned = Hashtbl.create 8;
    metrics;
    bytes_written = 0; fail_writes = None; write_failures = 0; corruption_detected = 0;
    trace = None;
    san_free = Simtime.zero; links_free = Hashtbl.create 8;
    dd_logical = 0; dd_unique = 0; comp_in = 0; comp_out = 0 }

let replica_count t = Array.length t.replicas
let backend t = t.backend

let set_trace t tr = t.trace <- Some tr

let set_fail_writes t reason = t.fail_writes <- reason
let write_failures t = t.write_failures
let corruption_detected t = t.corruption_detected

let set_replica_fail t ~replica reason =
  if replica >= 0 && replica < Array.length t.replicas then
    t.replicas.(replica).fail <- reason

(* --- versioned keyspace ------------------------------------------------ *)

(* Physical name of (key, version); '\x00' cannot appear in user keys. *)
let pname key v = key ^ "\x00" ^ string_of_int v

let current t key =
  match Hashtbl.find_opt t.versions key with
  | Some v -> Some (pname key v)
  | None -> None

let ram t node =
  match Hashtbl.find_opt t.rams node with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 16 in
    Hashtbl.replace t.rams node tbl;
    tbl

(* --- chunk pool --------------------------------------------------------- *)

let unref_chunk t h =
  match Hashtbl.find_opt t.chunks h with
  | None -> ()
  | Some c ->
    c.c_refs <- c.c_refs - 1;
    if c.c_refs <= 0 then begin
      Hashtbl.remove t.chunks h;
      Metrics.incr t.metrics "storage.dedup_chunks_freed"
    end

let unref_stored t = function
  | Whole _ -> ()
  | Recipe r ->
    Array.iter (function Cref h -> unref_chunk t h | Cinline _ -> ()) r.chs;
    Array.iter (unref_chunk t) r.vrefs

(* Rebuild the image a stored form describes.  [None] if a referenced chunk
   vanished from the pool (treated as corruption by the caller). *)
let materialize t = function
  | Whole img -> Some img
  | Recipe { skel; chs; _ } ->
    (try
       let buf = Buffer.create 1024 in
       Array.iter
         (function
           | Cinline s -> Buffer.add_string buf s
           | Cref h ->
             (match Hashtbl.find_opt t.chunks h with
              | Some { c_bytes = Some b; _ } -> Buffer.add_string buf b
              | _ -> raise Exit))
         chs;
       Some { skel with Image.encoded = Buffer.contents buf }
     with Exit -> None)

(* --- delta-chain GC (pnames) --------------------------------------------

   A delta pins the exact base *version* it was written against.  A pinned
   pname that gets retired (overwritten or removed) is only condemned — its
   bytes stay until the last referencing delta is itself deleted, then the
   physical delete cascades (dropping chunk refs on the way). *)

let pin_count t p = match Hashtbl.find_opt t.pins p with Some n -> n | None -> 0

let pin t p = Hashtbl.replace t.pins p (pin_count t p + 1)

let rec unpin t p =
  match Hashtbl.find_opt t.pins p with
  | None -> ()
  | Some 1 ->
    Hashtbl.remove t.pins p;
    if Hashtbl.mem t.condemned p then really_remove t p
  | Some n -> Hashtbl.replace t.pins p (n - 1)

and really_remove t p =
  Hashtbl.remove t.condemned p;
  (match Hashtbl.find_opt t.logical p with
   | Some e ->
     unref_stored t e.e_stored;
     Hashtbl.remove t.logical p
   | None -> ());
  Array.iter (fun r -> Hashtbl.remove r.images p) t.replicas;
  Hashtbl.iter (fun _ tbl -> Hashtbl.remove tbl p) t.rams;
  Hashtbl.remove t.locs p;
  match Hashtbl.find_opt t.bases p with
  | Some base ->
    Hashtbl.remove t.bases p;
    unpin t base
  | None -> ()

(* Retire a superseded or removed version: free it now, or — when live
   deltas still resolve against it — keep the bytes under the shadow name.
   [why] distinguishes the copy-on-write preserve at overwrite
   (storage.cow_preserved) from the deferred delete at remove
   (storage.gc_deferred). *)
let retire t p ~why =
  if pin_count t p > 0 then begin
    Hashtbl.replace t.condemned p ();
    Metrics.incr t.metrics why
  end
  else really_remove t p

let remove t key =
  match Hashtbl.find_opt t.versions key with
  | None -> ()
  | Some v ->
    Hashtbl.remove t.versions key;
    retire t (pname key v) ~why:"storage.gc_deferred"

(* Bind a fresh pname's chain link to the base version current right now;
   later overwrites of the base key cannot retarget this chain. *)
let record_link t p (image : Image.t) =
  match image.Image.base_key with
  | Some bkey ->
    let bp =
      match Hashtbl.find_opt t.versions bkey with
      | Some bv -> pname bkey bv
      | None -> pname bkey 0  (* base never stored: chain is already broken *)
    in
    Hashtbl.replace t.bases p bp;
    pin t bp
  | None -> ()

(* --- writes -------------------------------------------------------------- *)

(* Next live node after [after], skipping [not_this]; None if no other node
   is alive. *)
let next_alive t ~after ~not_this =
  let n = t.nodes in
  let rec go i =
    if i > n then None
    else
      let cand = (after + i) mod n in
      if cand <> not_this && not (Hashtbl.mem t.dead cand) then Some cand
      else go (i + 1)
  in
  go 1

(* Split the image into pool chunks, interning new ones (refs counted per
   occurrence).  Returns the stored recipe plus this put's distinct-new
   byte count — the only bytes the store actually grows by. *)
let intern_chunks t (image : Image.t) =
  let new_bytes = ref 0 in
  let intern h size bytes =
    match Hashtbl.find_opt t.chunks h with
    | Some c ->
      (match bytes, c.c_bytes with
       | Some b, Some b' when not (String.equal b b') -> `Collision
       | _ ->
         c.c_refs <- c.c_refs + 1;
         Metrics.incr t.metrics "storage.dedup_chunk_hits";
         `Ref)
    | None ->
      Hashtbl.add t.chunks h { c_size = size; c_bytes = bytes; c_refs = 1 };
      Metrics.incr t.metrics "storage.dedup_chunks_new";
      new_bytes := !new_bytes + size;
      `Ref
  in
  let chs =
    List.map
      (fun (h, b) ->
        match intern h (String.length b) (Some b) with
        | `Ref -> Cref h
        | `Collision ->
          new_bytes := !new_bytes + String.length b;
          Cinline b)
      (Chunk.split image.Image.encoded)
    |> Array.of_list
  in
  let vrefs =
    List.concat_map
      (fun (name, size, gen) ->
        List.filter_map
          (fun (addr, csize) ->
            match intern addr csize None with `Ref | `Collision -> Some addr)
          (Chunk.region_chunks ~name ~size ~gen))
      image.Image.regions
    |> Array.of_list
  in
  (Recipe { skel = { image with Image.encoded = "" }; chs; vrefs }, !new_bytes)

let fail_put t reason =
  t.write_failures <- t.write_failures + 1;
  Metrics.incr t.metrics "storage.write_failures";
  Error reason

(* [node] is the writing Agent's node — the owner of the buddy backend's
   primary copy (ignored by the other backends).  [op]/[parent] stitch the
   write into the operation's causal trace. *)
let put ?op ?parent ?(node = 0) t key image =
  match t.fail_writes with
  | Some reason -> fail_put t reason
  | None ->
    let sum = Image.checksum image in
    (* Resolve write targets first: a write with nowhere to land must fail
       without touching the chunk pool or the keyspace. *)
    let buddy_owner = ((node mod t.nodes) + t.nodes) mod t.nodes in
    let slot_ok i = i >= Array.length t.replicas || t.replicas.(i).fail = None in
    (* The buddy partner: next live node after the owner; -1 when the owner
       is the last node standing (a degraded single-copy write). *)
    let buddy_partner =
      match next_alive t ~after:buddy_owner ~not_this:buddy_owner with
      | Some p -> p
      | None -> -1
    in
    let targets =
      match t.backend with
      | Params.Sb_buddy ->
        (if slot_ok 0 then [ buddy_owner ] else [])
        @ (if buddy_partner >= 0 && slot_ok 1 then [ buddy_partner ] else [])
      | _ ->
        Array.to_list
          (Array.mapi (fun i r -> if r.fail = None then Some i else None) t.replicas)
        |> List.filter_map (fun x -> x)
    in
    if targets = [] then fail_put t "all replicas unavailable"
    else begin
      let logical_bytes = image.Image.logical_size in
      let asize = if t.compress then image.Image.comp_size else logical_bytes in
      let ratio = float_of_int asize /. float_of_int (Stdlib.max 1 logical_bytes) in
      (* Build the stored form and the byte accounting: plain/buddy write
         [asize] per copy; dedup grows the shared pool by this put's
         distinct-new bytes only (compressed at the image's ratio). *)
      let stored, per_copy, once =
        match t.backend with
        | Params.Sb_plain | Params.Sb_buddy -> (Whole image, asize, 0)
        | Params.Sb_dedup ->
          let recipe, uniq = intern_chunks t image in
          t.dd_logical <- t.dd_logical + logical_bytes;
          t.dd_unique <- t.dd_unique + uniq;
          Metrics.add t.metrics "storage.dedup_bytes_logical" logical_bytes;
          Metrics.add t.metrics "storage.dedup_bytes_unique" uniq;
          Metrics.set_gauge t.metrics "storage.dedup_factor"
            (float_of_int t.dd_logical
            /. float_of_int (Stdlib.max 1 t.dd_unique));
          (recipe, 0, int_of_float (ratio *. float_of_int uniq))
      in
      if t.compress then begin
        t.comp_in <- t.comp_in + logical_bytes;
        t.comp_out <- t.comp_out + image.Image.comp_size;
        Metrics.add t.metrics "storage.compress_in_bytes" logical_bytes;
        Metrics.add t.metrics "storage.compress_out_bytes" image.Image.comp_size;
        Metrics.add t.metrics "storage.compress_saved_bytes"
          (logical_bytes - image.Image.comp_size);
        Metrics.set_gauge t.metrics "storage.compress_ratio"
          (float_of_int t.comp_out /. float_of_int (Stdlib.max 1 t.comp_in))
      end;
      (* Allocate the fresh version and install the copies. *)
      let v = 1 + (match Hashtbl.find_opt t.vseq key with Some n -> n | None -> 0) in
      Hashtbl.replace t.vseq key v;
      let p = pname key v in
      let copies = ref 0 in
      (match t.backend with
       | Params.Sb_buddy ->
         List.iter (fun n -> Hashtbl.replace (ram t n) p (stored, sum); incr copies)
           targets;
         if buddy_partner < 0 then Metrics.incr t.metrics "storage.buddy_degraded";
         Hashtbl.replace t.locs p (buddy_owner, buddy_partner);
         Metrics.incr t.metrics "storage.buddy_puts"
       | _ ->
         List.iter
           (fun i -> Hashtbl.replace t.replicas.(i).images p (stored, sum); incr copies)
           targets);
      let e_bytes = match t.backend with Params.Sb_dedup -> once | _ -> per_copy in
      Hashtbl.replace t.logical p { e_stored = stored; e_sum = sum; e_bytes };
      record_link t p image;
      (* Retire the previous version: copy-on-write if chains pin it. *)
      (match Hashtbl.find_opt t.versions key with
       | Some vold -> retire t (pname key vold) ~why:"storage.cow_preserved"
       | None -> ());
      Hashtbl.replace t.versions key v;
      let written =
        match t.backend with
        | Params.Sb_dedup -> once
        | _ -> !copies * per_copy
      in
      t.bytes_written <- t.bytes_written + written;
      Metrics.incr t.metrics "storage.puts";
      Metrics.add t.metrics "storage.bytes_written" written;
      Metrics.observe t.metrics ~buckets:Metrics.default_bytes_buckets
        "storage.put_bytes"
        (float_of_int image.Image.logical_size);
      (match t.trace with
       | Some tr ->
         let now = Engine.now t.engine in
         Trace.span_begin tr ~time:now ?op ?parent ~pod:image.Image.pod_id
           "storage_put";
         Trace.span_end tr ~time:now ~pod:image.Image.pod_id "storage_put"
       | None -> ());
      Ok ()
    end

(* --- reads --------------------------------------------------------------- *)

(* One stored link by physical name, exactly as written: walk the copies in
   priority order (replicas, or buddy owner-then-partner), skipping outaged
   locations and copies that fail to materialize byte-identically. *)
let raw_get t p =
  let verify i (st, sum) next =
    match materialize t st with
    | Some img when Image.checksum img = sum ->
      if i > 0 then Metrics.incr t.metrics "storage.replica_fallbacks";
      Some img
    | Some _ | None ->
      t.corruption_detected <- t.corruption_detected + 1;
      Metrics.incr t.metrics "storage.corruption_detected";
      next ()
  in
  match t.backend with
  | Params.Sb_buddy ->
    (match Hashtbl.find_opt t.locs p with
     | None -> None
     | Some (owner, partner) ->
       let slot_ok i = i >= Array.length t.replicas || t.replicas.(i).fail = None in
       let copy i n =
         if n < 0 || Hashtbl.mem t.dead n || not (slot_ok i) then None
         else
           match Hashtbl.find_opt t.rams n with
           | None -> None
           | Some tbl -> Hashtbl.find_opt tbl p
       in
       let rec go = function
         | [] -> None
         | (i, n) :: rest ->
           (match copy i n with
            | None -> go rest
            | Some cs -> verify i cs (fun () -> go rest))
       in
       go [ (0, owner); (1, partner) ])
  | _ ->
    let n = Array.length t.replicas in
    let rec go i =
      if i >= n then None
      else
        let r = t.replicas.(i) in
        if r.fail <> None then go (i + 1)
        else
          match Hashtbl.find_opt r.images p with
          | None -> go (i + 1)
          | Some cs -> verify i cs (fun () -> go (i + 1))
    in
    go 0

(* Safety valve against reference cycles among hand-written keys; real
   chains are bounded by Params.max_delta_chain, far below this. *)
let max_resolve_depth = 64

(* Materialize a public key: fetch the chain link (checksum-verified, with
   copy fallback), recurse to the recorded base *version*, apply the delta.
   Callers always see a full image, byte-identical to the full checkpoint
   taken at the same instant — on every backend. *)
let get t key =
  Metrics.incr t.metrics "storage.gets";
  let miss () =
    Metrics.incr t.metrics "storage.get_misses";
    None
  in
  match current t key with
  | None -> miss ()
  | Some p0 ->
    let rec resolve p depth =
      if depth > max_resolve_depth then None
      else
        match raw_get t p with
        | None -> None
        | Some image ->
          (match image.Image.base_key with
           | None -> Some image
           | Some bkey ->
             let bp =
               match Hashtbl.find_opt t.bases p with
               | Some bp -> bp
               | None ->
                 (* pre-versioning stored state cannot exist in one process
                    lifetime; resolve against the current base version *)
                 (match current t bkey with
                  | Some bp -> bp
                  | None -> pname bkey 0)
             in
             (match resolve bp (depth + 1) with
              | None -> None
              | Some base ->
                (match
                   Delta.apply ~base:(Image.to_pod_image base)
                     (Image.to_pod_image image)
                 with
                 | full ->
                   Metrics.incr t.metrics "storage.delta_resolved";
                   Some (Image.of_pod_image full)
                 | exception _ ->
                   Metrics.incr t.metrics "storage.chain_broken";
                   None)))
    in
    (match resolve p0 0 with None -> miss () | Some image -> Some image)

(* Cheap, side-effect-free existence check: the key's current version is
   present at some non-outaged location.  No chain walk, no metrics, no
   materialization — a corrupt-everywhere key still answers true (only a
   verifying [get] can tell). *)
let mem t key =
  match current t key with
  | None -> false
  | Some p ->
    (match t.backend with
     | Params.Sb_buddy ->
       (match Hashtbl.find_opt t.locs p with
        | None -> false
        | Some (owner, partner) ->
          let live n =
            n >= 0
            && (not (Hashtbl.mem t.dead n))
            && (match Hashtbl.find_opt t.rams n with
                | Some tbl -> Hashtbl.mem tbl p
                | None -> false)
          in
          live owner || live partner)
     | _ ->
       Array.exists
         (fun r -> r.fail = None && Hashtbl.mem r.images p)
         t.replicas)

let base_key t key =
  match current t key with
  | None -> None
  | Some p ->
    (match raw_get t p with
     | None -> None
     | Some image -> image.Image.base_key)

(* Does this replica (buddy: 0 = owner copy, 1 = partner copy) physically
   hold the key's current version?  Ignores outage flags — tests use this
   to observe replication factor directly. *)
let replica_has t ~replica key =
  match current t key with
  | None -> false
  | Some p ->
    (match t.backend with
     | Params.Sb_buddy ->
       (match Hashtbl.find_opt t.locs p with
        | None -> false
        | Some (owner, partner) ->
          let n = if replica = 0 then owner else if replica = 1 then partner else -1 in
          n >= 0
          && (match Hashtbl.find_opt t.rams n with
              | Some tbl -> Hashtbl.mem tbl p
              | None -> false))
     | _ ->
       replica >= 0
       && replica < Array.length t.replicas
       && Hashtbl.mem t.replicas.(replica).images p)

(* --- healing ------------------------------------------------------------- *)

(* Clear the per-replica outages AND restore the replication factor: any
   copy a replica missed (typically a put during its outage) is backfilled
   from the pristine logical record.  Without the backfill a key written
   during an outage silently runs below its replication factor forever. *)
let heal_replicas t =
  Array.iter (fun r -> r.fail <- None) t.replicas;
  match t.backend with
  | Params.Sb_buddy -> ()  (* buddy repair rides node_died reassignment *)
  | _ ->
    Hashtbl.iter
      (fun p e ->
        Array.iter
          (fun r ->
            if not (Hashtbl.mem r.images p) then begin
              Hashtbl.replace r.images p (e.e_stored, e.e_sum);
              Metrics.incr t.metrics "storage.rereplicated";
              Metrics.add t.metrics "storage.rereplicated_bytes" e.e_bytes
            end)
          t.replicas)
      t.logical

(* A node died: its RAM (and every buddy copy in it) is gone.  Every entry
   that kept a copy there is re-buddied from its surviving copy onto the
   next live node; an entry whose both copies are gone is lost (that is the
   peer-memory trade-off the bench quantifies). *)
let node_died t node =
  if t.backend = Params.Sb_buddy && not (Hashtbl.mem t.dead node) then begin
    Hashtbl.replace t.dead node ();
    Hashtbl.remove t.rams node;
    let affected =
      Hashtbl.fold
        (fun p (o, pr) acc -> if o = node || pr = node then (p, o, pr) :: acc else acc)
        t.locs []
    in
    List.iter
      (fun (p, o, pr) ->
        let survivor = if o = node then pr else o in
        let surviving_copy =
          if survivor < 0 || Hashtbl.mem t.dead survivor then None
          else
            match Hashtbl.find_opt t.rams survivor with
            | None -> None
            | Some tbl -> Hashtbl.find_opt tbl p
        in
        match surviving_copy with
        | None ->
          Hashtbl.remove t.locs p;
          Metrics.incr t.metrics "storage.buddy_lost"
        | Some cs ->
          (match next_alive t ~after:survivor ~not_this:survivor with
           | Some np ->
             Hashtbl.replace (ram t np) p cs;
             Hashtbl.replace t.locs p (survivor, np);
             Metrics.incr t.metrics "storage.buddy_reassigned"
           | None ->
             Hashtbl.replace t.locs p (survivor, -1);
             Metrics.incr t.metrics "storage.buddy_degraded"))
      affected
  end

(* A dead node came back: it rejoins with an empty RAM (its buddy copies
   died with it; surviving data was already re-buddied). *)
let node_healed t node = Hashtbl.remove t.dead node

(* --- corruption injection ------------------------------------------------ *)

(* Flip a byte of one location's copy of the key's current version while
   keeping its stale checksum, so only a verifying read notices.  On a
   dedup recipe the mutation shadows the first encoded chunk inline in
   that copy only — the shared pool (and the other replicas' recipes)
   stays pristine, exactly like flipping one replica's disk block. *)
let corrupt t ~replica key =
  let table =
    match t.backend with
    | Params.Sb_buddy ->
      (match current t key with
       | None -> None
       | Some p ->
         (match Hashtbl.find_opt t.locs p with
          | None -> None
          | Some (owner, partner) ->
            let n = if replica = 0 then owner else if replica = 1 then partner else -1 in
            if n < 0 then None else Hashtbl.find_opt t.rams n))
    | _ ->
      if replica < 0 || replica >= Array.length t.replicas then None
      else Some t.replicas.(replica).images
  in
  match table, current t key with
  | None, _ | _, None -> false
  | Some tbl, Some p ->
    (match Hashtbl.find_opt tbl p with
     | None -> false
     | Some (Whole image, sum) ->
       let b = Bytes.of_string image.Image.encoded in
       if Bytes.length b = 0 then false
       else begin
         let i = Bytes.length b / 2 in
         Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
         Hashtbl.replace tbl p
           (Whole { image with Image.encoded = Bytes.to_string b }, sum);
         true
       end
     | Some (Recipe r, sum) ->
       if Array.length r.chs = 0 then false
       else
         let bytes =
           match r.chs.(0) with
           | Cinline s -> s
           | Cref h ->
             (match Hashtbl.find_opt t.chunks h with
              | Some { c_bytes = Some b; _ } -> b
              | _ -> "")
         in
         if String.length bytes = 0 then false
         else begin
           let b = Bytes.of_string bytes in
           let i = Bytes.length b / 2 in
           Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
           let chs = Array.copy r.chs in
           chs.(0) <- Cinline (Bytes.to_string b);
           Hashtbl.replace tbl p
             (Recipe { skel = r.skel; chs; vrefs = r.vrefs }, sum);
           true
         end)

(* --- flushing ------------------------------------------------------------ *)

(* Per-key flush size: what actually travels for the key's current version
   (a delta flushes its delta bytes; a dedup put flushes only its
   distinct-new bytes; compression shrinks both). *)
let flush_bytes t key =
  match current t key with
  | None -> None
  | Some p ->
    (match Hashtbl.find_opt t.logical p with
     | None -> None
     | Some e -> Some e.e_bytes)

let flush_bps t =
  match t.backend with Params.Sb_buddy -> t.buddy_bps | _ -> t.bps

(* Uncontended single-transfer time (latency + bytes at the backend's
   bandwidth) — what one flush costs with the fabric to itself. *)
let flush_time t key =
  match flush_bytes t key with
  | None -> Simtime.zero
  | Some bytes ->
    Simtime.add t.latency
      (Simtime.ns (int_of_float (float_of_int bytes /. flush_bps t *. 1e9)))

(* Contended flush: the shared SAN serializes every flush in the cluster
   behind one queue; the buddy backend rides each owner's own link, so
   flushes from different nodes proceed in parallel.  This queueing is what
   turns the SAN into the choke point at fleet scale — and what the buddy
   backend exists to bypass. *)
let flush t key ~on_done =
  let xfer = flush_time t key in
  let now = Engine.now t.engine in
  let fin =
    match t.backend with
    | Params.Sb_buddy ->
      let owner =
        match current t key with
        | Some p ->
          (match Hashtbl.find_opt t.locs p with Some (o, _) -> o | None -> 0)
        | None -> 0
      in
      let free =
        match Hashtbl.find_opt t.links_free owner with
        | Some f -> f
        | None -> Simtime.zero
      in
      let fin = Simtime.add (Simtime.max now free) xfer in
      Hashtbl.replace t.links_free owner fin;
      fin
    | _ ->
      let fin = Simtime.add (Simtime.max now t.san_free) xfer in
      t.san_free <- fin;
      fin
  in
  Engine.schedule t.engine ~label:"storage.flush" ~delay:(Simtime.sub fin now)
    on_done

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.versions []
  |> List.sort String.compare
