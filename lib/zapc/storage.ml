(* Shared storage infrastructure (the SAN/NAS of the paper's cluster).

   Checkpoint images are written to memory during the checkpoint (that cost
   is part of the checkpoint time) and can be flushed to shared storage
   afterwards, which every node can read — this is what lets a restart
   happen on a different set of nodes.  Flushing is deliberately *not* part
   of the checkpoint latency, matching the paper's measurement methodology. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Image = Zapc_ckpt.Image

type t = {
  engine : Engine.t;
  bps : float;
  latency : Simtime.t;
  images : (string, Image.t) Hashtbl.t;
  mutable bytes_written : int;
  mutable fail_writes : string option;  (* injected outage: writes fail with this reason *)
  mutable write_failures : int;
}

let create ?(bps = 180e6) ?(latency = Simtime.us 500) engine =
  { engine; bps; latency; images = Hashtbl.create 16; bytes_written = 0;
    fail_writes = None; write_failures = 0 }

(* Failure injection (a SAN outage / full volume): while set, every write
   fails with the given reason and stores nothing. *)
let set_fail_writes t reason = t.fail_writes <- reason
let write_failures t = t.write_failures

let put t key image =
  match t.fail_writes with
  | Some reason ->
    t.write_failures <- t.write_failures + 1;
    Error reason
  | None ->
    Hashtbl.replace t.images key image;
    t.bytes_written <- t.bytes_written + image.Image.logical_size;
    Ok ()

let get t key = Hashtbl.find_opt t.images key
let mem t key = Hashtbl.mem t.images key
let remove t key = Hashtbl.remove t.images key

(* Model the asynchronous flush of an already-stored image to disk. *)
let flush_time t key =
  match get t key with
  | None -> Simtime.zero
  | Some image ->
    Simtime.add t.latency
      (Simtime.ns (int_of_float (float_of_int image.Image.logical_size /. t.bps *. 1e9)))

let flush t key ~on_done = Engine.schedule t.engine ~delay:(flush_time t key) on_done

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.images [] |> List.sort String.compare
