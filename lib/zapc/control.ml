(* Reliable control channels between the Manager and its Agents.

   The paper runs these over TCP connections kept open for the whole
   operation; what the protocol needs from them is ordered reliable delivery
   and prompt breakage detection.  Both are modelled here: messages are
   delivered after latency + size/bandwidth, and [break] fires the
   registered failure callbacks on both sides so either party can abort
   gracefully (paper section 4).

   Each direction can additionally be [pause]d: messages still arrive but
   queue up un-delivered until [resume] — a hung or badly overloaded peer
   process whose TCP connection stays healthy.  This is the failure mode a
   broken-channel abort does NOT cover, and the one the Manager's per-phase
   timeouts exist for. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine

type ('up, 'down) t = {
  engine : Engine.t;
  latency : Simtime.t;
  bps : float;
  mutable up_handler : 'up -> unit;  (* messages arriving at the Manager *)
  mutable down_handler : 'down -> unit;  (* messages arriving at the Agent *)
  mutable broken : bool;
  mutable up_paused : bool;
  mutable down_paused : bool;
  up_buf : 'up Queue.t;  (* delivery arrived while the direction was paused *)
  down_buf : 'down Queue.t;
  mutable on_break : (unit -> unit) list;
  mutable up_count : int;
  mutable down_count : int;
}

let create ~engine ~latency ~bps =
  {
    engine;
    latency;
    bps;
    up_handler = (fun _ -> ());
    down_handler = (fun _ -> ());
    broken = false;
    up_paused = false;
    down_paused = false;
    up_buf = Queue.create ();
    down_buf = Queue.create ();
    on_break = [];
    up_count = 0;
    down_count = 0;
  }

let set_up_handler t fn = t.up_handler <- fn
let set_down_handler t fn = t.down_handler <- fn
let on_break t fn = t.on_break <- fn :: t.on_break

let transfer_delay t bytes =
  Simtime.add t.latency (Simtime.ns (int_of_float (float_of_int bytes /. t.bps *. 1e9)))

let send_up t ~bytes msg =
  if not t.broken then begin
    t.up_count <- t.up_count + 1;
    Engine.schedule t.engine ~label:"ctrl.up" ~delay:(transfer_delay t bytes)
      (fun () ->
        if not t.broken then
          if t.up_paused then Queue.add msg t.up_buf else t.up_handler msg)
  end

let send_down t ~bytes msg =
  if not t.broken then begin
    t.down_count <- t.down_count + 1;
    Engine.schedule t.engine ~label:"ctrl.down" ~delay:(transfer_delay t bytes)
      (fun () ->
        if not t.broken then
          if t.down_paused then Queue.add msg t.down_buf else t.down_handler msg)
  end

let pause_up t = t.up_paused <- true
let pause_down t = t.down_paused <- true

let resume_up t =
  t.up_paused <- false;
  while (not t.broken) && (not t.up_paused) && not (Queue.is_empty t.up_buf) do
    t.up_handler (Queue.pop t.up_buf)
  done

let resume_down t =
  t.down_paused <- false;
  while (not t.broken) && (not t.down_paused) && not (Queue.is_empty t.down_buf) do
    t.down_handler (Queue.pop t.down_buf)
  done

let break t =
  if not t.broken then begin
    t.broken <- true;
    Queue.clear t.up_buf;
    Queue.clear t.down_buf;
    (* both endpoints notice the broken connection after one latency *)
    Engine.schedule t.engine ~label:"ctrl.break" ~delay:t.latency (fun () ->
        List.iter (fun fn -> fn ()) (List.rev t.on_break))
  end

let is_broken t = t.broken
