(* Protocol tracing: records the phase boundaries of coordinated
   checkpoint/restart operations so the Figure-2 timeline of the paper can
   be rendered (and asserted on) — in particular that the standalone
   checkpoint overlaps the Manager synchronization and that unblock waits
   for both. *)

module Simtime = Zapc_sim.Simtime

type event = {
  ev_time : Simtime.t;
  ev_pod : int;  (* -1 for Manager-level events *)
  ev_what : string;
}

type t = {
  mutable events : event list;
  mutable enabled : bool;
  mutable observers : (event -> unit) list;
}

let create () = { events = []; enabled = true; observers = [] }

(* Observers let external machinery (fault injection, live monitoring) key
   off protocol phase boundaries without polling the event list. *)
let on_record t fn = t.observers <- t.observers @ [ fn ]

let record t ~time ~pod what =
  if t.enabled then begin
    let ev = { ev_time = time; ev_pod = pod; ev_what = what } in
    t.events <- ev :: t.events;
    List.iter (fun fn -> fn ev) t.observers
  end

let events t = List.rev t.events
let clear t = t.events <- []

let find t ~pod what =
  List.find_opt (fun e -> e.ev_pod = pod && String.equal e.ev_what what) (events t)

let pods t =
  List.sort_uniq Int.compare
    (List.filter_map (fun e -> if e.ev_pod >= 0 then Some e.ev_pod else None) (events t))

(* Render the coordinated-checkpoint timeline (one line per pod, phases as
   offsets from the Manager's invocation), in the spirit of Figure 2. *)
let render_checkpoint t : string =
  let buf = Buffer.create 512 in
  let t0 =
    match find t ~pod:(-1) "ckpt_broadcast" with
    | Some e -> e.ev_time
    | None -> (match events t with e :: _ -> e.ev_time | [] -> Simtime.zero)
  in
  let off time = Simtime.to_ms (Simtime.sub time t0) in
  let phase pod what =
    match find t ~pod what with Some e -> Some (off e.ev_time) | None -> None
  in
  let fmt = function Some v -> Printf.sprintf "%7.2f" v | None -> "      -" in
  Buffer.add_string buf
    "checkpoint timeline (ms after Manager broadcast; Figure 2 of the paper)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-6s %7s %7s %7s %7s %7s %7s\n" "pod" "suspnd" "netck" "meta"
       "standa" "contin" "resume");
  List.iter
    (fun pod ->
      Buffer.add_string buf
        (Printf.sprintf "%-6d %s %s %s %s %s %s\n" pod
           (fmt (phase pod "suspended"))
           (fmt (phase pod "net_ckpt_done"))
           (fmt (phase pod "meta_sent"))
           (fmt (phase pod "standalone_done"))
           (fmt (phase pod "continue_received"))
           (fmt (phase pod "resumed"))))
    (pods t);
  (match find t ~pod:(-1) "continue_broadcast" with
   | Some e ->
     Buffer.add_string buf
       (Printf.sprintf "manager: all meta-data received, 'continue' sent at %7.2f\n"
          (off e.ev_time))
   | None -> ());
  Buffer.contents buf
