(* Protocol tracing: records the phase boundaries of coordinated
   checkpoint/restart operations so the Figure-2 timeline of the paper can
   be rendered (and asserted on) — in particular that the standalone
   checkpoint overlaps the Manager synchronization and that unblock waits
   for both.

   Since the observability refactor the structured core is a
   Zapc_obs.Span recorder: phase boundaries are typed instants (and the
   Manager/Agents additionally open/close typed spans through the
   span_begin/span_end wrappers below).  The historical string-event API —
   [events]/[find]/[pods]/[render_checkpoint] — is retained as a
   compatibility view derived from the recorded instants, so existing
   tests and the fault-injection observers keep working unchanged. *)

module Simtime = Zapc_sim.Simtime
module Span = Zapc_obs.Span

type event = {
  ev_time : Simtime.t;
  ev_pod : int;  (* -1 for Manager-level events *)
  ev_what : string;
}

type t = {
  recorder : Span.t;
  mutable enabled : bool;
  mutable observers : (event -> unit) list;
}

let create () = { recorder = Span.create (); enabled = true; observers = [] }
let recorder t = t.recorder

(* Observers let external machinery (fault injection, live monitoring) key
   off protocol phase boundaries without polling the event list. *)
let on_record t fn = t.observers <- t.observers @ [ fn ]
let clear_observers t = t.observers <- []

let record ?(node = -1) t ~time ~pod what =
  if t.enabled then begin
    Span.instant t.recorder ~time ~node ~pod what;
    let ev = { ev_time = time; ev_pod = pod; ev_what = what } in
    List.iter (fun fn -> fn ev) t.observers
  end

let span_begin t ~time ?op ?node ?parent ~pod name =
  if t.enabled then
    ignore (Span.begin_span t.recorder ~time ?op ?node ?parent ~pod name)

(* As span_begin, but hand back the span id so the caller can propagate it
   as a causal parent (into Protocol messages, child spans, ...).  -1 when
   tracing is disabled — begin_span/`parent` treat negatives as "no link"
   only in the sense that no span -1 exists, and callers pass the id along
   blindly, so normalize at the consumption sites via parent_arg. *)
let span_begin_id t ~time ?op ?node ?parent ~pod name =
  if t.enabled then
    (Span.begin_span t.recorder ~time ?op ?node ?parent ~pod name).Span.sp_id
  else -1

(* Turn a span_begin_id result (or a wire tc_parent) back into an optional
   parent argument: negative ids mean "tracing was off, no link". *)
let parent_arg id = if id >= 0 then Some id else None

let span_end t ~time ~pod name =
  if t.enabled then ignore (Span.end_named t.recorder ~time ~pod name)

let span_end_all t ~time ~pod =
  if t.enabled then Span.end_all_for_pod t.recorder ~time ~pod

let events t =
  List.map
    (fun (i : Span.instant) ->
      { ev_time = i.in_time; ev_pod = i.in_pod; ev_what = i.in_what })
    (Span.instants t.recorder)

let clear t = Span.clear t.recorder

let find t ~pod what =
  List.find_opt (fun e -> e.ev_pod = pod && String.equal e.ev_what what) (events t)

let pods t =
  List.sort_uniq Int.compare
    (List.filter_map (fun e -> if e.ev_pod >= 0 then Some e.ev_pod else None) (events t))

let to_chrome t = Zapc_obs.Chrome.to_string t.recorder
let dump_chrome t path = Zapc_obs.Chrome.dump t.recorder path

(* Render the coordinated-checkpoint timeline (one line per pod, phases as
   offsets from the Manager's invocation), in the spirit of Figure 2. *)
let render_checkpoint t : string =
  let buf = Buffer.create 512 in
  let t0 =
    match find t ~pod:(-1) "ckpt_broadcast" with
    | Some e -> e.ev_time
    | None -> (match events t with e :: _ -> e.ev_time | [] -> Simtime.zero)
  in
  let off time = Simtime.to_ms (Simtime.sub time t0) in
  let phase pod what =
    match find t ~pod what with Some e -> Some (off e.ev_time) | None -> None
  in
  let fmt = function Some v -> Printf.sprintf "%7.2f" v | None -> "      -" in
  Buffer.add_string buf
    "checkpoint timeline (ms after Manager broadcast; Figure 2 of the paper)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-6s %7s %7s %7s %7s %7s %7s\n" "pod" "suspnd" "netck" "meta"
       "standa" "contin" "resume");
  List.iter
    (fun pod ->
      Buffer.add_string buf
        (Printf.sprintf "%-6d %s %s %s %s %s %s\n" pod
           (fmt (phase pod "suspended"))
           (fmt (phase pod "net_ckpt_done"))
           (fmt (phase pod "meta_sent"))
           (fmt (phase pod "standalone_done"))
           (fmt (phase pod "continue_received"))
           (fmt (phase pod "resumed"))))
    (pods t);
  (match find t ~pod:(-1) "continue_broadcast" with
   | Some e ->
     Buffer.add_string buf
       (Printf.sprintf "manager: all meta-data received, 'continue' sent at %7.2f\n"
          (off e.ev_time))
   | None -> ());
  Buffer.contents buf
