(* Periodic checkpoint service: the paper's fault-resilience use case as a
   reusable facility.  Snapshots a set of pods every [period] under rotating
   storage keys, remembers the last epoch that completed successfully, and
   can recover the whole application from it onto a new set of nodes.

   Epochs that would overlap a still-running Manager operation are skipped
   (checkpoints must not queue up behind a slow one); old images beyond
   [keep] epochs are pruned from storage, and a *failed* epoch's partial
   images are garbage-collected right away so aborted checkpoints cannot
   leak storage. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Metrics = Zapc_obs.Metrics
module Pod = Zapc_pod.Pod

type t = {
  cluster : Cluster.t;
  pods : Pod.t list;  (* the original group; resolve by pod_id, records go
                         stale after a recovery re-creates the pods *)
  prefix : string;
  period : Simtime.t;
  keep : int;
  incremental : bool;  (* write delta epochs; the Agents' chain cap forces
                          a periodic full automatically *)
  mutable epoch : int;
  mutable last_good : int;
  mutable completed : int;
  mutable skipped : int;
  mutable last_skip_reason : string option;
  mutable stopped : bool;
  mutable on_epoch : int -> Manager.op_result -> unit;
}

let key t epoch = Printf.sprintf "%s.e%d" t.prefix epoch

let pod_ids t = List.map (fun (p : Pod.t) -> p.Pod.pod_id) t.pods

let pod_key t epoch pod_id = Printf.sprintf "%s.pod%d" (key t epoch) pod_id

(* Build the checkpoint items for one epoch, resolving each pod's current
   incarnation and node.  A pod that is gone or whose address is not on the
   fabric is a structured error — never a silent fallback to node 0. *)
let items_for t epoch =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (p : Pod.t) :: rest ->
      (match Pod.find p.pod_id with
       | None -> Error (Printf.sprintf "pod %d not found" p.pod_id)
       | Some live ->
         (match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric t.cluster) live.rip with
          | None ->
            Error
              (Printf.sprintf "pod %d: address not attached to any node" p.pod_id)
          | Some node ->
            go
              ({ Manager.ci_node = node; ci_pod = p.pod_id;
                 ci_dest = Protocol.U_storage (pod_key t epoch p.pod_id) }
               :: acc)
              rest))
  in
  go [] t.pods

let prune t epoch =
  if epoch > t.keep then begin
    let storage = Cluster.storage t.cluster in
    List.iter
      (fun pod_id -> Storage.remove storage (pod_key t (epoch - t.keep) pod_id))
      (pod_ids t)
  end

(* A failed epoch leaves partially written pod images behind (some Agents
   may have completed their put before the abort); drop them immediately. *)
let gc_failed_epoch t epoch =
  let storage = Cluster.storage t.cluster in
  List.iter (fun pod_id -> Storage.remove storage (pod_key t epoch pod_id)) (pod_ids t)

(* a useful epoch needs every pod of the application intact *)
let pods_alive t =
  List.for_all
    (fun (p : Pod.t) ->
      match Pod.find p.pod_id with
      | None -> false
      | Some live -> Pod.member_count live > 0)
    t.pods

let skip t reason =
  t.skipped <- t.skipped + 1;
  Metrics.incr (Cluster.metrics t.cluster) "periodic.epochs_skipped";
  t.last_skip_reason <- Some reason

(* Each epoch wraps the Manager operation in a [periodic_epoch] span, so
   the causal tree shows WHY the checkpoint ran (the service's clock, not a
   user request); the Manager's op span parents under it via [?parent]. *)
let epoch_span_begin t =
  match Cluster.trace t.cluster with
  | Some tr ->
    Trace.span_begin_id tr
      ~time:(Engine.now (Cluster.engine t.cluster))
      ~pod:(-1) "periodic_epoch"
  | None -> -1

let epoch_span_end t =
  match Cluster.trace t.cluster with
  | Some tr ->
    Trace.span_end tr ~time:(Engine.now (Cluster.engine t.cluster)) ~pod:(-1)
      "periodic_epoch"
  | None -> ()

let rec tick t =
  Engine.schedule (Cluster.engine t.cluster) ~label:"periodic.tick"
    ~delay:t.period (fun () ->
      if not t.stopped then begin
        if not (pods_alive t) then t.stopped <- true
        else if Manager.busy (Cluster.manager t.cluster) then begin
          skip t "manager busy";
          tick t
        end
        else
          match items_for t (t.epoch + 1) with
          | Error reason ->
            (* unresolvable pod: skip this epoch rather than checkpointing
               onto a wrong node *)
            skip t reason;
            tick t
          | Ok items ->
            t.epoch <- t.epoch + 1;
            let epoch = t.epoch in
            let esp = epoch_span_begin t in
            Manager.checkpoint ~incremental:t.incremental
              ?parent:(Trace.parent_arg esp)
              (Cluster.manager t.cluster) ~items ~resume:true
              ~on_done:(fun r ->
                epoch_span_end t;
                if r.Manager.r_ok then begin
                  Metrics.incr (Cluster.metrics t.cluster)
                    "periodic.epochs_completed";
                  if not t.stopped then begin
                    t.last_good <- epoch;
                    t.completed <- t.completed + 1;
                    prune t epoch
                  end
                end
                else begin
                  Metrics.incr (Cluster.metrics t.cluster)
                    "periodic.epochs_failed";
                  gc_failed_epoch t epoch
                end;
                t.on_epoch epoch r);
            tick t
      end)

let start ?(incremental = false) cluster ~pods ~prefix ~period ?(keep = 2) () =
  let t =
    { cluster; pods; prefix; period; keep; incremental;
      epoch = 0; last_good = 0; completed = 0;
      skipped = 0; last_skip_reason = None; stopped = false;
      on_epoch = (fun _ _ -> ()) }
  in
  tick t;
  t

let stop t = t.stopped <- true
let stopped t = t.stopped
let last_good t = t.last_good
let completed t = t.completed
let skipped t = t.skipped
let last_skip_reason t = t.last_skip_reason
let set_on_epoch t fn = t.on_epoch <- fn

(* Resume ticking after a recovery re-created the pod group (same pod ids,
   fresh incarnations resolved by [items_for]). *)
let resume t =
  if t.stopped then begin
    t.stopped <- false;
    tick t
  end

let no_snapshot_result =
  { Manager.r_ok = false;
    r_failure = Some (Protocol.F_missing_image "no completed snapshot");
    r_detail = "no completed snapshot"; r_duration = Simtime.zero;
    r_stats = []; r_metas = [] }

(* Tear down whatever survives of the group ahead of a restart.  The
   hosting Agent must drop its registration too: the restart may place the
   pod on a different node, and a stale entry would leave the old Agent
   listing (and willing to operate on) a pod that now lives elsewhere. *)
let destroy_survivors t =
  List.iter
    (fun pod_id ->
      match Pod.find pod_id with
      | Some pod ->
        (match
           Zapc_simnet.Fabric.node_of_ip (Cluster.fabric t.cluster) pod.Pod.rip
         with
         | Some node ->
           Agent.forget_pod (Cluster.node t.cluster node).Cluster.n_agent pod_id
         | None -> ());
        Pod.destroy pod
      | None -> ())
    (pod_ids t)

(* Recover the application from the last good epoch onto [target_nodes]
   (surviving pods are torn down first). *)
let recover t ~target_nodes =
  if t.last_good = 0 then no_snapshot_result
  else begin
    stop t;
    destroy_survivors t;
    Cluster.restart_app t.cluster ~pod_ids:(pod_ids t) ~target_nodes
      ~key_prefix:(key t t.last_good)
  end

(* Callback flavour for the supervisor, which runs inside engine events
   where the synchronous [recover] (it re-enters [Engine.run]) is illegal. *)
let recover_async ?parent t ~target_nodes ~on_done =
  if t.last_good = 0 then on_done no_snapshot_result
  else begin
    stop t;
    destroy_survivors t;
    Cluster.restart_app_async ?parent t.cluster ~pod_ids:(pod_ids t)
      ~target_nodes ~key_prefix:(key t t.last_good) ~on_done
  end
