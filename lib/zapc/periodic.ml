(* Periodic checkpoint service: the paper's fault-resilience use case as a
   reusable facility.  Snapshots a set of pods every [period] under rotating
   storage keys, remembers the last epoch that completed successfully, and
   can recover the whole application from it onto a new set of nodes.

   Epochs that would overlap a still-running Manager operation are skipped
   (checkpoints must not queue up behind a slow one); old images beyond
   [keep] epochs are pruned from storage. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Pod = Zapc_pod.Pod

type t = {
  cluster : Cluster.t;
  pods : Pod.t list;
  prefix : string;
  period : Simtime.t;
  keep : int;
  mutable epoch : int;
  mutable last_good : int;
  mutable completed : int;
  mutable skipped : int;
  mutable stopped : bool;
  mutable on_epoch : int -> Manager.op_result -> unit;
}

let key t epoch = Printf.sprintf "%s.e%d" t.prefix epoch

let items_for t epoch =
  List.map
    (fun (p : Pod.t) ->
      let node =
        match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric t.cluster) p.rip with
        | Some n -> n
        | None -> 0
      in
      { Manager.ci_node = node; ci_pod = p.pod_id;
        ci_dest = Protocol.U_storage (Printf.sprintf "%s.pod%d" (key t epoch) p.pod_id) })
    t.pods

let prune t epoch =
  if epoch > t.keep then begin
    let storage = Cluster.storage t.cluster in
    List.iter
      (fun (p : Pod.t) ->
        Storage.remove storage
          (Printf.sprintf "%s.pod%d" (key t (epoch - t.keep)) p.pod_id))
      t.pods
  end

(* a useful epoch needs every pod of the application intact *)
let pods_alive t =
  List.for_all
    (fun (p : Pod.t) -> Pod.find p.pod_id <> None && Pod.member_count p > 0)
    t.pods

let rec tick t =
  Engine.schedule (Cluster.engine t.cluster) ~delay:t.period (fun () ->
      if not t.stopped then begin
        if not (pods_alive t) then t.stopped <- true
        else if Manager.busy (Cluster.manager t.cluster) then begin
          t.skipped <- t.skipped + 1;
          tick t
        end
        else begin
          t.epoch <- t.epoch + 1;
          let epoch = t.epoch in
          Manager.checkpoint (Cluster.manager t.cluster) ~items:(items_for t epoch)
            ~resume:true
            ~on_done:(fun r ->
              if r.Manager.r_ok && not t.stopped then begin
                t.last_good <- epoch;
                t.completed <- t.completed + 1;
                prune t epoch
              end;
              t.on_epoch epoch r);
          tick t
        end
      end)

let start cluster ~pods ~prefix ~period ?(keep = 2) () =
  let t =
    { cluster; pods; prefix; period; keep; epoch = 0; last_good = 0; completed = 0;
      skipped = 0; stopped = false; on_epoch = (fun _ _ -> ()) }
  in
  tick t;
  t

let stop t = t.stopped <- true
let last_good t = t.last_good
let completed t = t.completed
let skipped t = t.skipped
let set_on_epoch t fn = t.on_epoch <- fn

(* Recover the application from the last good epoch onto [target_nodes]
   (surviving pods are torn down first). *)
let recover t ~target_nodes =
  if t.last_good = 0 then
    { Manager.r_ok = false;
      r_failure = Some (Protocol.F_missing_image "no completed snapshot");
      r_detail = "no completed snapshot"; r_duration = Simtime.zero;
      r_stats = []; r_metas = [] }
  else begin
    stop t;
    List.iter
      (fun (p : Pod.t) ->
        match Pod.find p.pod_id with Some pod -> Pod.destroy pod | None -> ())
      t.pods;
    Cluster.restart_app t.cluster
      ~pod_ids:(List.map (fun (p : Pod.t) -> p.Pod.pod_id) t.pods)
      ~target_nodes ~key_prefix:(key t t.last_good)
  end
