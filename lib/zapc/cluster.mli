(** Cluster assembly: the engine, fabric, shared storage, N nodes (kernel +
    Agent each), the Manager, and address allocation — the simulation
    analogue of the paper's testbed (blades on a Gigabit switch with a SAN,
    one Agent per node, the Manager alongside). *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Addr = Zapc_simnet.Addr
module Fabric = Zapc_simnet.Fabric
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod

type node = {
  n_idx : int;
  n_kernel : Kernel.t;
  n_agent : Agent.t;
  n_host_ip : Addr.ip;
  mutable n_rip_seq : int;
  mutable n_alive : bool;  (** cleared when the supervisor declares it dead *)
}

type t

val make : ?seed:int -> ?cpus:int -> params:Params.t -> node_count:int -> unit -> t

val engine : t -> Engine.t
val params : t -> Params.t
val manager : t -> Manager.t
val storage : t -> Storage.t
val fabric : t -> Fabric.t

val metrics : t -> Zapc_obs.Metrics.t
(** The cluster-wide metrics registry, always on.  Shared by the Manager,
    every Agent, Storage, the supervisor and Periodic; also carries
    collect-time gauges over the fabric, netfilter and per-node TCP stacks
    ([net.*]).  Snapshot with {!Zapc_obs.Metrics.to_json}. *)

val node : t -> int -> node
val node_count : t -> int
val now : t -> Simtime.t

(** {1 Node liveness}

    Bookkeeping used by the supervisor: which nodes are believed healthy and
    therefore valid targets for an automatic recovery. *)

val mark_node_dead : t -> int -> unit
val mark_node_alive : t -> int -> unit
val node_alive : t -> int -> bool

val alive_nodes : t -> int list
(** Indices of nodes still believed alive, ascending. *)

val reform_tree : t -> unit
(** Re-form the hierarchical control tree over the currently alive nodes:
    fresh uplink channels, new {!Relay}s (old ones retired), the Manager's
    children/routes replaced ({!Manager.set_tree}).  A no-op in flat mode
    ([Params.tree_fanout] = 0) or when the alive set is unchanged since the
    last formation.  The supervisor calls this the moment it declares a
    node dead — {e before} recovery — so restart commands never route
    through the dead hop. *)

val alloc_vip : t -> Addr.ip
(** Fresh virtual address (10.77.0.0/16 pool, disjoint from real subnets). *)

val alloc_rip : t -> int -> Addr.ip
(** Fresh real address on the given node (172.16.<node>.0/24). *)

val create_pod : t -> node_idx:int -> name:string -> Pod.t
(** Create an empty pod on a node, registered with its Agent and the
    Manager's pod-info cache. *)

val link_pods : Pod.t list -> unit
(** Install the application-wide virtual address map on a pod group. *)

val enable_trace : t -> Trace.t
(** Attach a fresh protocol trace to the Manager, every Agent, and the
    shared storage; returns it for rendering/assertions
    ({!Trace.render_checkpoint}).  Idempotent: the first call creates the
    cluster-wide recorder, later calls return the same one. *)

val trace : t -> Trace.t option
(** The recorder attached by {!enable_trace}, if any. *)

val enable_flight : ?cap:int -> ?dump_dir:string -> t -> Zapc_obs.Flight.t
(** Wire the flight recorder: bounded per-node rings fed by the span
    recorder (per-node routing), the trace instants, and the metric stream
    (both on the manager ring, node [-1]).  Trips into a JSON dump — to
    [dump_dir] when given, always retained as
    {!Zapc_obs.Flight.last_dump} — whenever a trace instant marks an
    operation failure ([op_failed:*]), an injected fault ([fault:*]), or a
    supervisor death declaration ([sup_detect:*]).  Enables tracing if not
    already on.  Idempotent like {!enable_trace}. *)

val flight : t -> Zapc_obs.Flight.t option

(** {1 Running the simulation} *)

val run : t -> ?until:Simtime.t -> ?max_events:int -> unit -> unit

exception Timeout of string

val run_until : t -> ?timeout:Simtime.t -> (unit -> bool) -> unit
(** Advance until the predicate holds.
    @raise Timeout if the deadline passes or the simulation goes quiescent
    with the predicate still false. *)

val procs_exited : Proc.t list -> bool

(** {1 Synchronous wrappers over the Manager} *)

val checkpoint_sync :
  ?incremental:bool ->
  t -> items:Manager.ckpt_item list -> resume:bool -> Manager.op_result

val restart_sync : t -> items:Manager.restart_item list -> Manager.op_result

val snapshot :
  ?incremental:bool ->
  t -> pods:Pod.t list -> key_prefix:string -> Manager.op_result
(** Checkpoint all pods of an application to storage keys
    ["<prefix>.pod<id>"] and let them keep running.  [incremental] asks the
    Agents for delta images against their last stored snapshots (see
    {!Manager.checkpoint}). *)

val restart_app :
  t -> pod_ids:int list -> target_nodes:int list -> key_prefix:string -> Manager.op_result
(** Restart an application from storage onto the given nodes (same or
    different from the originals). *)

val restart_app_async :
  ?parent:int ->
  t ->
  pod_ids:int list ->
  target_nodes:int list ->
  key_prefix:string ->
  on_done:(Manager.op_result -> unit) ->
  unit
(** Like {!restart_app} but callback-based, for callers already running
    inside an engine event (the supervisor) where re-entering [Engine.run]
    is illegal.  [parent] links the restart's operation span under the
    caller's span (see {!Manager.restart}). *)

val migrate_sync :
  ?max_rounds:int ->
  ?dirty_threshold:float ->
  t -> pod:Pod.t -> dest_node:int -> Manager.op_result
(** Live-migrate one pod to [dest_node] (iterative pre-copy; see
    {!Manager.migrate}).  The source node is derived from the pod's real
    address.  Runs the engine until the operation completes. *)
