(* Global configuration of a simulated ZapC cluster: the fabric and kernel
   cost models plus the checkpoint-restart specific knobs and the ablation
   switches. *)

module Simtime = Zapc_sim.Simtime
module Fabric = Zapc_simnet.Fabric
module Kconfig = Zapc_simos.Kconfig

(* Where checkpoint images live (see DESIGN.md §14):
   - [Sb_plain]: every image verbatim on every replica of the shared store
     (the pre-PR-10 behaviour, and the default).
   - [Sb_dedup]: content-addressed chunk store — encoded bytes and modelled
     memory regions split into FNV-addressed chunks stored once, refcounted
     against the pin/condemn GC.
   - [Sb_buddy]: peer-memory backend — each image lands in the owner node's
     RAM plus a partner ("buddy") node's RAM over the per-node links,
     bypassing the shared SAN entirely; the Supervisor re-buddies surviving
     copies when a node dies. *)
type storage_backend = Sb_plain | Sb_dedup | Sb_buddy

let backend_name = function
  | Sb_plain -> "plain"
  | Sb_dedup -> "dedup"
  | Sb_buddy -> "buddy"

type t = {
  fabric : Fabric.config;
  kconfig : Kconfig.t;
  (* Manager <-> Agent control plane *)
  ctrl_latency : Simtime.t;
  ctrl_bps : float;
  ctrl_proc : Simtime.t;
  (* serial CPU cost of sending or receiving one control message at a
     coordinator (the Manager or a tree sub-coordinator): marshalling plus
     the syscall/wakeup.  This is the per-message overhead that makes N
     direct channels converge into a root bottleneck at cluster scale; a
     batch forwarded through the tree counts as ONE message.  Zero (the
     default) disables the cost model entirely — handlers run inline and
     the flat configuration is bit-identical to earlier behaviour. *)
  tree_fanout : int;
  (* hierarchical coordination: fan-out of the sub-coordinator tree the
     control plane is organized into (the manager talks to [tree_fanout]
     direct children; each relays for a k-ary subtree, aggregating acks
     upward and fanning commands out downward).  0 (the default) keeps the
     flat topology: one direct channel per node. *)
  (* checkpoint-restart cost model *)
  per_proc_ckpt : Simtime.t;  (* fixed kernel work to save one process *)
  per_proc_restore : Simtime.t;
  per_socket_ckpt : Simtime.t;
  per_socket_restore : Simtime.t;
  net_ckpt_fixed : Simtime.t;  (* walk socket tables, sync with netfilter *)
  net_restore_fixed : Simtime.t;
  netfilter_cost : Simtime.t;  (* install/remove the block rules *)
  ckpt_fixed : Simtime.t;  (* per-pod quiesce + kernel-object enumeration *)
  restore_fixed : Simtime.t;  (* per-pod image validation + object re-creation *)
  pod_create_cost : Simtime.t;
  mem_bw : float;  (* image write/read bandwidth to memory, bytes/s *)
  storage_bps : float;  (* SAN flush bandwidth (not in checkpoint time) *)
  storage_backend : storage_backend;
  compress : bool;
  (* compress images before storing: stored/flushed bytes shrink to the
     image's modelled compressed size while checkpoint (and storage-path
     restore) pay the virtual-CPU compressor cost below *)
  compress_bps : float;  (* virtual-CPU (de)compression throughput, bytes/s *)
  buddy_bps : float;
  (* per-node link bandwidth of the buddy backend's peer-memory transfers;
     flushes ride each owner's own link, in parallel across nodes, instead
     of serializing on the shared SAN *)
  cost_jitter : float;
  (* relative uniform jitter on agent-side costs, modelling background
     activity and cache effects (the paper reports checkpoint-time std-devs
     of 10-60% of the average) *)
  phase_timeout : Simtime.t;
  (* how long the Manager waits in each protocol phase (meta-gather,
     completion-gather) before aborting the operation, and how long an Agent
     holds a suspended pod waiting for 'continue' before aborting on its
     side.  A broken channel aborts promptly on its own; the timeout covers
     hung-but-connected peers.  Zero disables timeouts. *)
  fs_snapshot : bool;
  (* take a file-system snapshot of the pod's directory immediately prior
     to reactivating it (paper section 4); the copy cost extends the pause *)
  (* self-healing supervisor (heartbeats + automatic recovery) *)
  heartbeat_period : Simtime.t;  (* interval between supervisor pings *)
  heartbeat_misses : int;
  (* consecutive unanswered pings before a node is declared dead *)
  recover_backoff : Simtime.t;  (* base delay before a recovery retry *)
  recover_backoff_max : Simtime.t;  (* cap on the exponential backoff *)
  recover_retries : int;  (* recovery attempts before giving up *)
  storage_replicas : int;  (* independent copies of every stored image *)
  max_delta_chain : int;
  (* incremental checkpointing: how many consecutive delta images may chain
     off one full image before the Agent forces a full checkpoint again
     (bounds restart materialization work and lets old epochs be pruned) *)
  (* live migration (iterative pre-copy) *)
  mig_max_rounds : int;
  (* pre-copy rounds before the source gives up and stop-and-copies the
     residue anyway (0 degenerates to plain stop-and-copy migration) *)
  mig_dirty_threshold : float;
  (* convergence: stop pre-copying once a round's dirty residue falls to
     this fraction of the pod's full image *)
  mig_resume_fixed : Simtime.t;
  (* destination-side activation cost when the pod skeleton and memory were
     prestaged by the pre-copy rounds (replaces [restore_fixed]) *)
  mig_stop_fixed : Simtime.t;
  (* source-side fixed cost of the final stop-and-copy when pre-copy rounds
     already ran: the kernel objects were enumerated by the rounds, only the
     dirty-residue scan remains (replaces [ckpt_fixed]) *)
  (* design switches (ablations) *)
  redirect_sendq : bool;  (* merge send queues into the peer's ckpt stream *)
  serial_ckpt : bool;  (* barrier before the standalone checkpoint (OFF in ZapC) *)
  peek_mode : bool;  (* Cruz-style receive-queue capture (flawed baseline) *)
  virtualize_time : bool;
  profile_engine : bool;
  (* per-callsite engine profiling (Engine.set_profiling); off by default so
     the scheduler hot path stays unlabeled and unwrapped *)
}

let default =
  {
    fabric = Fabric.default_config;
    kconfig = Kconfig.default;
    ctrl_latency = Simtime.us 120;
    ctrl_bps = 1e9;
    ctrl_proc = Simtime.zero;
    tree_fanout = 0;
    per_proc_ckpt = Simtime.us 400;
    per_proc_restore = Simtime.us 700;
    per_socket_ckpt = Simtime.us 400;
    per_socket_restore = Simtime.ms 3;
    net_ckpt_fixed = Simtime.us 2500;
    net_restore_fixed = Simtime.ms 8;
    netfilter_cost = Simtime.us 30;
    ckpt_fixed = Simtime.ms 85;
    restore_fixed = Simtime.ms 160;
    pod_create_cost = Simtime.ms 2;
    mem_bw = 1.5e9;
    storage_bps = 180e6;
    storage_backend = Sb_plain;
    compress = false;
    compress_bps = 450e6;
    buddy_bps = 1e9;
    cost_jitter = 0.35;
    phase_timeout = Simtime.sec 60.0;
    fs_snapshot = false;
    heartbeat_period = Simtime.ms 100;
    heartbeat_misses = 3;
    recover_backoff = Simtime.ms 50;
    recover_backoff_max = Simtime.sec 2.0;
    recover_retries = 5;
    storage_replicas = 2;
    max_delta_chain = 4;
    mig_max_rounds = 8;
    mig_dirty_threshold = 0.05;
    mig_resume_fixed = Simtime.ms 12;
    mig_stop_fixed = Simtime.ms 8;
    redirect_sendq = false;
    serial_ckpt = false;
    peek_mode = false;
    virtualize_time = true;
    profile_engine = false;
  }

(* Virtual time to copy [bytes] at [bps]. *)
let copy_time ~bps bytes =
  Simtime.ns (int_of_float (float_of_int bytes /. bps *. 1e9))

let scale t k = Simtime.ns (t * k)
