(** Periodic checkpoint service: the paper's fault-resilience use case as a
    reusable facility.

    Snapshots a pod group every [period] under rotating storage keys,
    remembers the last epoch that completed, prunes images older than [keep]
    epochs (and garbage-collects the partial images of a {e failed} epoch
    immediately), and can {!recover} the whole application from the last
    good epoch onto a new set of nodes.  Epochs that would overlap a running
    Manager operation — or whose pods cannot currently be resolved to a node
    — are skipped with a recorded reason, not queued. *)

module Simtime = Zapc_sim.Simtime
module Pod = Zapc_pod.Pod

type t

val start :
  ?incremental:bool ->
  Cluster.t ->
  pods:Pod.t list ->
  prefix:string ->
  period:Simtime.t ->
  ?keep:int ->
  unit ->
  t
(** Begin ticking; stops by itself once no pod of the group is alive.
    [incremental] (default false) asks for delta epochs: each Agent writes
    only the changes since its last stored image for the pod, and its chain
    cap ([Params.max_delta_chain]) — plus any base loss — forces a fresh
    full image automatically.  Recovery is unchanged: {!Storage.get}
    materializes chains transparently. *)

val stop : t -> unit
val stopped : t -> bool

val resume : t -> unit
(** Restart ticking after a recovery re-created the pod group (same pod
    ids, fresh incarnations — the service re-resolves pods by id).  No-op
    unless stopped. *)

val last_good : t -> int
(** Last epoch whose coordinated checkpoint completed (0 = none yet). *)

val completed : t -> int
val skipped : t -> int

val last_skip_reason : t -> string option
(** Why the most recent epoch was skipped (manager busy, unresolvable
    pod, ...); [None] if none was ever skipped. *)

val pod_ids : t -> int list
val set_on_epoch : t -> (int -> Manager.op_result -> unit) -> unit

val recover : t -> target_nodes:int list -> Manager.op_result
(** Stop the service, destroy any surviving pods, restart from the last
    good epoch on [target_nodes]. *)

val recover_async :
  ?parent:int ->
  t -> target_nodes:int list -> on_done:(Manager.op_result -> unit) -> unit
(** Like {!recover} but callback-based, usable from inside engine events
    (the supervisor's context, where re-entering [Engine.run] is illegal).
    [parent] links the restart's operation span under the caller's span —
    the supervisor passes its [sup_recover] span so the whole recovery
    stitches into one causal tree. *)
