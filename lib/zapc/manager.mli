(** The ZapC Manager: the front-end client that orchestrates coordinated
    checkpoint and restart (paper Figures 1 and 3).

    Checkpoint: broadcast 'checkpoint', gather the meta-data from every
    Agent, broadcast 'continue' (the protocol's single synchronization
    point), gather completion statuses.  Restart: merge the meta-data into a
    new connectivity map (substituting destination addresses), derive the
    connect/accept schedule, broadcast 'restart' with per-pod instructions,
    gather statuses.  A broken Agent channel aborts the operation on both
    sides and the application resumes.

    One operation runs at a time ({!busy}). *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Addr = Zapc_simnet.Addr
module Meta = Zapc_netckpt.Meta

type ckpt_item = {
  ci_node : int;
  ci_pod : int;
  ci_dest : Protocol.uri;
}
(** One <<node, pod, URI>> tuple of a checkpoint request. *)

type restart_item = {
  ri_node : int;  (** destination node (may differ from the original) *)
  ri_pod : int;
  ri_uri : Protocol.uri;
}

type op_result = {
  r_ok : bool;
  r_failure : Protocol.failure option;  (** [None] iff [r_ok] *)
  r_detail : string;  (** human-readable rendering of [r_failure] *)
  r_duration : Simtime.t;  (** invocation -> all Agents reported done *)
  r_stats : (int * Protocol.agent_stats) list;  (** per pod *)
  r_metas : Meta.pod_meta list;
}

type t

val create :
  ?metrics:Zapc_obs.Metrics.t ->
  engine:Engine.t ->
  params:Params.t ->
  storage:Storage.t ->
  alloc_rip:(int -> Addr.ip) ->
  unit ->
  t
(** [alloc_rip node] must yield a fresh real address on [node] (used to
    build the restart connectivity map before pods are created).
    [metrics] is the registry receiving [mgr.*], [ckpt.image_bytes] and
    [netckpt.bytes] instruments (a private one is created when omitted). *)

val metrics : t -> Zapc_obs.Metrics.t

val attach_agent : t -> node:int -> Protocol.channel -> unit

val set_trace : t -> Trace.t -> unit
(** Record broadcast/synchronization instants (Figure 2). *)

val remember_pod : t -> pod_id:int -> name:string -> vip:Addr.ip -> Meta.pod_meta -> unit
(** Seed the per-pod fact cache (updated by checkpoint meta reports); this
    is what allows restarting directly-streamed images whose bytes the
    Manager never sees. *)

val checkpoint :
  ?incremental:bool ->
  t -> items:ckpt_item list -> resume:bool -> on_done:(op_result -> unit) -> unit
(** [resume = true] takes a snapshot (pods continue afterwards);
    [resume = false] is the migration path (pods are destroyed and their
    images shipped to the URI destinations).
    [incremental] (default false) lets each Agent write a delta against its
    last stored image for the pod; Agents fall back to a full image when no
    usable base exists or [Params.max_delta_chain] is reached.
    @raise Invalid_argument if an operation is already in progress. *)

val restart : t -> items:restart_item list -> on_done:(op_result -> unit) -> unit

val busy : t -> bool

val break_channel : t -> node:int -> unit
(** Failure injection (tests/demos): sever the control connection to one
    Agent; both sides abort gracefully per paper section 4. *)

val agent_channel : t -> node:int -> Protocol.channel option
(** The control channel to one node's Agent (fault injection hooks in). *)

val agent_nodes : t -> int list
(** Nodes with an attached Agent, sorted. *)

(** {1 Heartbeats (supervisor support)} *)

val ping : t -> node:int -> seq:int -> unit
(** Send a heartbeat probe to one Agent.  Probes to missing or broken
    channels are dropped silently — the resulting missing pong is what the
    supervisor counts as a missed beat. *)

val set_on_pong : t -> (node:int -> seq:int -> unit) -> unit
(** Install the heartbeat-reply sink; pongs are delivered here regardless of
    any operation in progress. *)
