(** The ZapC Manager: the front-end client that orchestrates coordinated
    checkpoint and restart (paper Figures 1 and 3).

    Checkpoint: broadcast 'checkpoint', gather the meta-data from every
    Agent, broadcast 'continue' (the protocol's single synchronization
    point), gather completion statuses.  Restart: merge the meta-data into a
    new connectivity map (substituting destination addresses), derive the
    connect/accept schedule, broadcast 'restart' with per-pod instructions,
    gather statuses.  A broken Agent channel aborts the operation on both
    sides and the application resumes.

    One operation runs at a time ({!busy}). *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Addr = Zapc_simnet.Addr
module Meta = Zapc_netckpt.Meta

type ckpt_item = {
  ci_node : int;
  ci_pod : int;
  ci_dest : Protocol.uri;
}
(** One <<node, pod, URI>> tuple of a checkpoint request. *)

type restart_item = {
  ri_node : int;  (** destination node (may differ from the original) *)
  ri_pod : int;
  ri_uri : Protocol.uri;
}

type op_result = {
  r_ok : bool;
  r_failure : Protocol.failure option;  (** [None] iff [r_ok] *)
  r_detail : string;  (** human-readable rendering of [r_failure] *)
  r_duration : Simtime.t;  (** invocation -> all Agents reported done *)
  r_stats : (int * Protocol.agent_stats) list;  (** per pod *)
  r_metas : Meta.pod_meta list;
}

type t

val create :
  ?metrics:Zapc_obs.Metrics.t ->
  engine:Engine.t ->
  params:Params.t ->
  storage:Storage.t ->
  alloc_rip:(int -> Addr.ip) ->
  unit ->
  t
(** [alloc_rip node] must yield a fresh real address on [node] (used to
    build the restart connectivity map before pods are created).
    [metrics] is the registry receiving [mgr.*], [ckpt.image_bytes] and
    [netckpt.bytes] instruments (a private one is created when omitted). *)

val metrics : t -> Zapc_obs.Metrics.t

val attach_agent : t -> node:int -> Protocol.channel -> unit
(** Wire one node's control channel directly to the manager (the flat
    topology, and the manager's own children of a tree). *)

val set_tree : t ->
  children:(int * Protocol.channel) list ->
  routes:(int * int) list ->
  edges:(int * Protocol.channel) list ->
  unit
(** (Re)install a hierarchical topology: [children] are the manager's
    direct sub-coordinators, [routes] maps every deeper node to the direct
    child whose subtree contains it (children map to themselves), and
    [edges] maps every node to the channel its parent reaches it by (fault
    injection severs uplinks through it).  Replaces any topology installed
    before — {!Cluster.reform_tree} calls this over the surviving nodes
    after a recovery.  Commands to routed nodes are bundled per direct
    child ({!Protocol.to_agent.A_batch}) and fanned out by the {!Relay}s;
    subtree reports arrive aggregated ({!Protocol.to_manager.M_batch}). *)

val set_trace : t -> Trace.t -> unit
(** Record broadcast/synchronization instants (Figure 2). *)

val remember_pod : t -> pod_id:int -> name:string -> vip:Addr.ip -> Meta.pod_meta -> unit
(** Seed the per-pod fact cache (updated by checkpoint meta reports); this
    is what allows restarting directly-streamed images whose bytes the
    Manager never sees. *)

val checkpoint :
  ?incremental:bool ->
  ?parent:int ->
  t -> items:ckpt_item list -> resume:bool -> on_done:(op_result -> unit) -> unit
(** [resume = true] takes a snapshot (pods continue afterwards);
    [resume = false] is the migration path (pods are destroyed and their
    images shipped to the URI destinations).
    [incremental] (default false) lets each Agent write a delta against its
    last stored image for the pod; Agents fall back to a full image when no
    usable base exists or [Params.max_delta_chain] is reached.
    [parent] links the operation span under a caller-side span (Periodic's
    epoch, the Supervisor's recovery) in the causal trace.
    @raise Invalid_argument if an operation is already in progress. *)

val restart :
  ?kind:[ `Restart | `Mig_restore ] ->
  ?parent:int ->
  t -> items:restart_item list -> on_done:(op_result -> unit) -> unit
(** [kind] (default [`Restart]) only changes observability labels: a
    migration's phase B reports under [mgr.mig.restore.*] and the
    [mig_restore] span instead of the plain restart names.  [parent] as in
    {!checkpoint}. *)

val migrate :
  ?max_rounds:int ->
  ?dirty_threshold:float ->
  ?parent:int ->
  t ->
  pod:int ->
  src_node:int ->
  dest_node:int ->
  on_done:(op_result -> unit) ->
  unit
(** Live-migrate one pod: iterative pre-copy rounds stream to the
    destination Agent while the pod keeps running, a stop-and-copy of the
    dirty residue plus process/socket/netfilter state forms the blackout
    window, and the staged copy is activated on the destination.
    [max_rounds]/[dirty_threshold] default to the {!Params} knobs;
    [max_rounds = 0] degenerates to checkpoint-migrate-restart.
    The source keeps the frozen pod until the destination commits, so a
    failure at any point before the commit aborts cleanly and the pod
    resumes at the source; after the commit the destination copy wins even
    if the source is lost.
    @raise Invalid_argument if an operation is already in progress. *)

val set_on_migrated : t -> (pod:int -> src:int -> dest:int -> unit) -> unit
(** Install the handoff hook, fired on successful migration before the
    caller's [on_done]: watchers (the Supervisor) observe the pod's new
    home atomically with completion. *)

val busy : t -> bool
(** An operation — including any phase of a live migration — is in
    progress. *)

val last_critpath : t -> (string * Zapc_obs.Critpath.report) option
(** The critical-path analysis of the most recent successful operation, as
    [(operation span name, report)] — also emitted per-op into the
    [mgr.critpath.*] metrics (a duration histogram per phase plus a
    [mgr.critpath.dominant.<phase>] counter).  [None] until a traced
    operation succeeds. *)

val break_channel : t -> node:int -> unit
(** Failure injection (tests/demos): sever the control connection to one
    Agent; both sides abort gracefully per paper section 4. *)

val agent_channel : t -> node:int -> Protocol.channel option
(** The control channel to one node's Agent (fault injection hooks in). *)

val agent_nodes : t -> int list
(** Nodes with an attached Agent, sorted. *)

(** {1 Heartbeats (supervisor support)} *)

val ping : t -> node:int -> seq:int -> unit
(** Send a heartbeat probe to one Agent.  Probes to missing or broken
    channels are dropped silently — the resulting missing pong is what the
    supervisor counts as a missed beat. *)

val set_on_pong : t -> (node:int -> seq:int -> unit) -> unit
(** Install the heartbeat-reply sink; pongs are delivered here regardless of
    any operation in progress. *)
