(** Per-process memory accounting.

    Programs declare their working set through the mem_alloc/mem_free system
    calls; checkpoint images charge these bytes as the process's address
    space (see DESIGN.md: computational state itself travels in the
    program's Value encoding).

    Every region carries a dirty bit for incremental checkpointing: set on
    {!alloc}, {!free} and {!touch}, cleared by {!clear_dirty} once a
    snapshot of the process has been durably stored.  {!dirty_bytes} is the
    address-space payload a delta checkpoint must write. *)

type t

val create : unit -> t

val alloc : t -> string -> int -> unit
(** [alloc t name size] creates or resizes the named region (marks it
    dirty). *)

val free : t -> string -> unit

val touch : t -> string -> unit
(** Mark an existing region dirty without resizing (a write to its pages);
    unknown names are ignored. *)

val total : t -> int
val peak : t -> int

val version : t -> int
(** Monotonic mutation counter (bumped by alloc/free/touch). *)

val clear_dirty : t -> unit
(** Forget the dirty set — call once a snapshot has been durably stored. *)

val dirty_bytes : t -> int
(** Total size of the still-present regions modified since the last
    {!clear_dirty} (a freed region contributes nothing). *)

val dirty_regions : t -> string list
(** Names of the dirty regions, sorted. *)

val snapshot_dirty : t -> (string * int) list
(** Atomically capture-and-clear the dirty set: returns the still-present
    dirty regions with their sizes (sorted by name) and resets the dirty
    bits, so subsequent mutations accumulate toward the next pre-copy
    round.  Bumps the {!epochs} counter. *)

val epochs : t -> int
(** How many {!snapshot_dirty} rounds have been taken. *)

val gen : t -> string -> int
(** The region's write generation: bumped on every mutation, persisted
    through {!to_value}/{!of_value}.  The simulation does not store page
    contents, so (name, size, gen) models a region's bytes — two regions
    agreeing on all three hold identical modelled content (the
    content-addressed dedup tag).  0 for unknown names. *)

val region_tags : t -> (string * int * int) list
(** Every live region as (name, size, generation), sorted by name. *)

val to_value : t -> Zapc_codec.Value.t
(** Regions encode as name -> [size; generation] so dedup content tags
    survive a checkpoint-restart cycle. *)

val of_value : Zapc_codec.Value.t -> t
(** Inverse of {!to_value} (a bare name -> size assoc is also accepted,
    with generation 1).  Every restored region starts dirty: the first
    post-restart delta must write it. *)
