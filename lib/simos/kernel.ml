(* The per-node simulated kernel: process table, multi-CPU round-robin
   scheduler, signal delivery, and the system-call executor that bridges
   programs to the network stack, pipes, timers and memory accounting. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Rng = Zapc_sim.Rng
module Addr = Zapc_simnet.Addr
module Socket = Zapc_simnet.Socket
module Sockopt = Zapc_simnet.Sockopt
module Errno = Zapc_simnet.Errno
module Netstack = Zapc_simnet.Netstack
module Tcp = Zapc_simnet.Tcp
module Fabric = Zapc_simnet.Fabric

type t = {
  node_id : int;
  hostname : string;
  engine : Engine.t;
  net : Netstack.t;
  config : Kconfig.t;
  procs : (int, Proc.t) Hashtbl.t;
  runq : Proc.t Queue.t;
  mutable idle_cpus : int;
  cpus : int;
  mutable next_pid : int;
  mutable next_pipe_id : int;
  sock_refs : (int, int) Hashtbl.t;  (* socket id -> fd reference count *)
  rng : Rng.t;
  gm : Zapc_simnet.Gmdev.t;  (* kernel-bypass messaging device *)
  mutable fs : Simfs.t;  (* shared across nodes (SAN), see Cluster *)
  mutable on_log : t -> Proc.t -> string -> unit;
  mutable exited : int;
}

let create ?(config = Kconfig.default) ?(cpus = 1) ?(hostname = "node") ~node_id fabric =
  let engine = Fabric.engine fabric in
  let k = {
    node_id;
    hostname;
    engine;
    net = Netstack.create ~node:node_id fabric;
    config;
    procs = Hashtbl.create 32;
    runq = Queue.create ();
    idle_cpus = cpus;
    cpus;
    next_pid = 100 * (node_id + 1);
    next_pipe_id = 1;
    sock_refs = Hashtbl.create 32;
    rng = Rng.split (Engine.rng engine);
    gm = Zapc_simnet.Gmdev.create ~node:node_id;
    fs = Simfs.create ();
    on_log = (fun _ _ _ -> ());
    exited = 0;
  }
  in
  (* wire the kernel-bypass device to the node's wire and demux *)
  Zapc_simnet.Gmdev.set_tx k.gm (fun p -> Netstack.send_packet k.net p);
  Netstack.set_gm_handler k.net (fun p data -> Zapc_simnet.Gmdev.on_packet k.gm p data);
  k

let engine k = k.engine
let netstack k = k.net
let now k = Engine.now k.engine
let find_proc k pid = Hashtbl.find_opt k.procs pid
let processes k = Hashtbl.fold (fun _ p acc -> p :: acc) k.procs []
let set_logger k fn = k.on_log <- fn
let set_fs k fs = k.fs <- fs
let fs k = k.fs
let gm k = k.gm

(* Pipe ids are node-unique handles; restore paths must draw from the same
   counter as Syscall.Pipe or a restored pod's pipes could collide with a
   live (or later-created) pipe on the destination node. *)
let alloc_pipe_id k =
  let id = k.next_pipe_id in
  k.next_pipe_id <- k.next_pipe_id + 1;
  id

(* --- socket fd reference counting --- *)

let ref_socket k (s : Socket.t) =
  let c = match Hashtbl.find_opt k.sock_refs s.id with Some c -> c | None -> 0 in
  Hashtbl.replace k.sock_refs s.id (c + 1)

let unref_socket k (s : Socket.t) =
  match Hashtbl.find_opt k.sock_refs s.id with
  | None -> ()
  | Some c when c <= 1 ->
    Hashtbl.remove k.sock_refs s.id;
    Netstack.close k.net s
  | Some c -> Hashtbl.replace k.sock_refs s.id (c - 1)

(* --- scheduler --- *)

let rec enqueue k (p : Proc.t) =
  if (not p.in_runq) && p.rstate = Proc.Ready then begin
    p.in_runq <- true;
    Queue.add p k.runq;
    kick k
  end

and kick k =
  if k.idle_cpus > 0 && not (Queue.is_empty k.runq) then begin
    let p = Queue.pop k.runq in
    p.in_runq <- false;
    if p.rstate = Proc.Ready then begin
      k.idle_cpus <- k.idle_cpus - 1;
      p.rstate <- Proc.Running;
      Engine.schedule k.engine ~label:"os.dispatch" ~delay:k.config.context_switch
        (fun () -> dispatch k p)
    end
    else kick k (* stale entry: stopped or killed while queued *)
  end

and release_cpu k =
  k.idle_cpus <- k.idle_cpus + 1;
  kick k

(* Executed at the end of a Running episode (compute slice or syscall). *)
and yield k (p : Proc.t) =
  match p.rstate with
  | Proc.Running ->
    p.rstate <- Proc.Ready;
    release_cpu k;
    enqueue k p
  | Proc.Stopped | Proc.Zombie -> release_cpu k
  | Proc.Ready | Proc.Blocked -> release_cpu k

and dispatch k (p : Proc.t) =
  if p.rstate <> Proc.Running then release_cpu k
  else
    match p.pending_compute with
    | Some remaining -> run_slice k p remaining
    | None ->
      (match p.pending_sys with
       | Some sc -> run_syscall k p sc ~retrying:true
       | None ->
         let action = Program.step_instance p.inst p.next_outcome in
         (match action with
          | Program.Compute t ->
            let t = Simtime.ns (int_of_float (float_of_int t /. k.config.cpu_scale)) in
            let t = Stdlib.max 1 t in
            run_slice k p t
          | Program.Sys sc -> run_syscall k p sc ~retrying:false
          | Program.Exit code ->
            terminate k p code;
            release_cpu k))

and run_slice k (p : Proc.t) remaining =
  let slice = min remaining k.config.quantum in
  Engine.schedule k.engine ~label:"os.slice" ~delay:slice (fun () ->
      p.cpu_time <- Simtime.add p.cpu_time slice;
      let left = Simtime.sub remaining slice in
      if left > 0 then p.pending_compute <- Some left
      else begin
        p.pending_compute <- None;
        p.next_outcome <- Syscall.Done_compute
      end;
      yield k p)

and run_syscall k (p : Proc.t) sc_orig ~retrying =
  ignore retrying;
  let sc =
    match p.filter with Some f -> f.f_pre p sc_orig | None -> sc_orig
  in
  let result, extra = exec k p sc in
  match result with
  | `Complete out ->
    let out = match p.filter with Some f -> f.f_post p sc_orig out | None -> out in
    p.pending_sys <- None;
    p.block_deadline <- None;
    p.next_outcome <- out;
    let cost = Simtime.add k.config.syscall_cost extra in
    let cost =
      (* the pod virtualization layer interposes on every system call; its
         (small) cost is what the paper's Figure 5 measures *)
      match p.filter with
      | Some _ -> Simtime.add cost k.config.virt_overhead
      | None -> cost
    in
    p.cpu_time <- Simtime.add p.cpu_time cost;
    Engine.schedule k.engine ~label:"os.syscall" ~delay:cost (fun () -> yield k p)
  | `Block register ->
    p.pending_sys <- Some sc_orig;
    p.rstate <- Proc.Blocked;
    register (fun () -> wake_proc k p);
    release_cpu k

and wake_proc k (p : Proc.t) =
  match p.rstate with
  | Proc.Blocked ->
    p.rstate <- Proc.Ready;
    enqueue k p
  | Proc.Stopped -> if p.stopped_from = Proc.Blocked then p.retry_after_cont <- true
  | Proc.Ready | Proc.Running | Proc.Zombie -> ()

(* --- signals --- *)

and signal_proc k (p : Proc.t) (sg : Signal.t) =
  match sg with
  | Signal.Sigkill -> terminate k p 137
  | Signal.Sigterm -> terminate k p 143
  | Signal.Sigstop ->
    (match p.rstate with
     | Proc.Stopped | Proc.Zombie -> ()
     | Proc.Ready | Proc.Running ->
       p.stopped_from <- Proc.Ready;
       p.rstate <- Proc.Stopped
     | Proc.Blocked ->
       p.stopped_from <- Proc.Blocked;
       p.rstate <- Proc.Stopped)
  | Signal.Sigcont ->
    (match p.rstate with
     | Proc.Stopped ->
       if p.stopped_from = Proc.Blocked && not p.retry_after_cont then
         p.rstate <- Proc.Blocked
       else begin
         p.rstate <- Proc.Ready;
         enqueue k p
       end;
       p.retry_after_cont <- false
     | Proc.Ready | Proc.Running | Proc.Blocked | Proc.Zombie -> ())
  | Signal.Sigusr1 | Signal.Sigusr2 -> ()

and terminate k (p : Proc.t) code =
  if Proc.is_alive p then begin
    (* close all descriptors *)
    let entries = Fdtable.fold p.fds (fun fd e acc -> (fd, e) :: acc) [] in
    List.iter
      (fun (fd, e) ->
        Fdtable.remove p.fds fd;
        match e with
        | Fdtable.Fsock s -> unref_socket k s
        | Fdtable.Fpipe_r pi -> Pipe.close_read pi
        | Fdtable.Fpipe_w pi -> Pipe.close_write pi
        | Fdtable.Fgm port -> Zapc_simnet.Gmdev.close_port k.gm port)
      entries;
    p.exit_code <- Some code;
    p.exit_time <- Some (now k);
    p.rstate <- Proc.Zombie;
    k.exited <- k.exited + 1;
    let watchers = p.exit_watchers in
    p.exit_watchers <- [];
    List.iter (fun w -> w code) watchers
  end

(* --- process creation --- *)

and alloc_pid k =
  let pid = k.next_pid in
  k.next_pid <- k.next_pid + 1;
  pid

and create_proc k inst =
  let p = Proc.create ~pid:(alloc_pid k) inst in
  Hashtbl.replace k.procs p.pid p;
  p

and spawn k ~program ~args =
  let p = create_proc k (Program.spawn program args) in
  enqueue k p;
  p

(* --- the system-call executor --- *)

and exec k (p : Proc.t) (sc : Syscall.t) :
  [ `Complete of Syscall.outcome | `Block of (unit -> unit) -> unit ] * Simtime.t =
  let ok r = (`Complete (Syscall.Ret r), Simtime.zero) in
  let err e = (`Complete (Syscall.Err e), Simtime.zero) in
  let block register = (`Block register, Simtime.zero) in
  let with_sock fd f =
    match Fdtable.find p.fds fd with
    | Some (Fdtable.Fsock s) -> f s
    | Some (Fdtable.Fpipe_r _ | Fdtable.Fpipe_w _ | Fdtable.Fgm _) -> err Errno.ENOTSOCK
    | None -> err Errno.EBADF
  in
  let nonblocking (s : Socket.t) flags =
    Socket.nonblocking s || flags.Socket.dontwait
  in
  match sc with
  | Syscall.Getpid -> ok (Syscall.Rint p.pid)
  | Syscall.Clock_gettime -> ok (Syscall.Rtime (now k))
  | Syscall.Log m ->
    k.on_log k p m;
    ok Syscall.Rnone
  | Syscall.Fs_put (path, data) ->
    Simfs.put k.fs path data;
    ok Syscall.Rnone
  | Syscall.Fs_append (path, data) ->
    Simfs.append k.fs path data;
    ok Syscall.Rnone
  | Syscall.Fs_get path ->
    (match Simfs.get k.fs path with
     | Some data -> ok (Syscall.Rdata data)
     | None -> err Errno.ENOENT)
  | Syscall.Fs_del path ->
    Simfs.remove k.fs path;
    ok Syscall.Rnone
  | Syscall.Fs_list prefix -> ok (Syscall.Rnames (Simfs.list k.fs prefix))
  | Syscall.Gm_open a ->
    let ip =
      if Addr.equal_ip a.Addr.ip Addr.any then
        match Netstack.default_ip k.net with Some ip -> ip | None -> Addr.any
      else a.Addr.ip
    in
    (match Zapc_simnet.Gmdev.open_port k.gm ~ip ~port:a.Addr.port with
     | Ok port ->
       let fd = Fdtable.add p.fds (Fdtable.Fgm port) in
       ok (Syscall.Rint fd)
     | Error e -> err e)
  | Syscall.Gm_send (fd, dst, data) ->
    (match Fdtable.find p.fds fd with
     | Some (Fdtable.Fgm port) ->
       if String.length data > 65000 then err Errno.EMSGSIZE
       else (
         match Zapc_simnet.Gmdev.send k.gm port dst data with
         | Ok () -> ok (Syscall.Rint (String.length data))
         | Error e -> err e)
     | Some _ -> err Errno.EBADF
     | None -> err Errno.EBADF)
  | Syscall.Gm_recv fd ->
    (match Fdtable.find p.fds fd with
     | Some (Fdtable.Fgm port) ->
       (match Zapc_simnet.Gmdev.recv port with
        | Zapc_simnet.Gmdev.Gdata (src, payload) -> ok (Syscall.Rfrom (src, payload))
        | Zapc_simnet.Gmdev.Gclosed -> err Errno.EBADF
        | Zapc_simnet.Gmdev.Gblock ->
          block (fun waiter -> Zapc_simnet.Gmdev.wait_readable port waiter))
     | Some _ -> err Errno.EBADF
     | None -> err Errno.EBADF)
  | Syscall.Nanosleep d ->
    (match p.block_deadline with
     | Some deadline when Simtime.compare (now k) deadline >= 0 -> ok Syscall.Rnone
     | Some deadline ->
       block (fun waiter ->
           Engine.schedule_at k.engine ~label:"os.sleep" ~at:deadline
             (fun () -> waiter ()))
     | None ->
       if Simtime.compare d Simtime.zero <= 0 then ok Syscall.Rnone
       else begin
         let deadline = Simtime.add (now k) d in
         p.block_deadline <- Some deadline;
         block (fun waiter ->
             Engine.schedule_at k.engine ~label:"os.sleep" ~at:deadline
               (fun () -> waiter ()))
       end)
  | Syscall.Alarm_set d ->
    p.alarm_deadline <- Some (Simtime.add (now k) d);
    ok Syscall.Rnone
  | Syscall.Alarm_cancel ->
    p.alarm_deadline <- None;
    ok Syscall.Rnone
  | Syscall.Alarm_remaining ->
    (match p.alarm_deadline with
     | None -> ok (Syscall.Rtime (-1))
     | Some d -> ok (Syscall.Rtime (Stdlib.max 0 (Simtime.sub d (now k)))))
  | Syscall.Mem_alloc (name, size) ->
    Memory.alloc p.mem name size;
    ok Syscall.Rnone
  | Syscall.Mem_free name ->
    Memory.free p.mem name;
    ok Syscall.Rnone
  | Syscall.Spawn (program, args) ->
    (match Program.lookup program with
     | None -> err Errno.ENOENT
     | Some _ ->
       let child = create_proc k (Program.spawn program args) in
       child.fds <- Fdtable.copy p.fds;
       Fdtable.iter child.fds (fun _ e ->
           match e with
           | Fdtable.Fsock s -> ref_socket k s
           | Fdtable.Fpipe_r _ | Fdtable.Fpipe_w _ | Fdtable.Fgm _ -> ());
       (match p.filter with Some f -> f.f_spawn_child p child | None -> ());
       enqueue k child;
       (`Complete (Syscall.Ret (Syscall.Rint child.pid)), k.config.spawn_cost))
  | Syscall.Kill (pid, sg) ->
    (match find_proc k pid with
     | None -> err Errno.ESRCH
     | Some target ->
       signal_proc k target sg;
       (`Complete (Syscall.Ret Syscall.Rnone), k.config.signal_cost))
  | Syscall.Waitpid pid ->
    (match find_proc k pid with
     | None -> err Errno.ECHILD
     | Some target ->
       (match target.exit_code with
        | Some code ->
          Hashtbl.remove k.procs pid;
          ok (Syscall.Rint code)
        | None ->
          block (fun waiter ->
              target.exit_watchers <- (fun _ -> waiter ()) :: target.exit_watchers)))
  | Syscall.Pipe ->
    let pi = Pipe.create ~id:(alloc_pipe_id k) in
    let rfd = Fdtable.add p.fds (Fdtable.Fpipe_r pi) in
    let wfd = Fdtable.add p.fds (Fdtable.Fpipe_w pi) in
    ok (Syscall.Rpair (rfd, wfd))
  | Syscall.Sock_create kind ->
    let s = Netstack.new_socket k.net kind in
    let fd = Fdtable.add p.fds (Fdtable.Fsock s) in
    ref_socket k s;
    ok (Syscall.Rint fd)
  | Syscall.Bind (fd, addr) ->
    with_sock fd (fun s ->
        match Netstack.bind k.net s addr with
        | Ok () -> ok Syscall.Rnone
        | Error e -> err e)
  | Syscall.Listen (fd, backlog) ->
    with_sock fd (fun s ->
        match Netstack.listen k.net s backlog with
        | Ok () -> ok Syscall.Rnone
        | Error e -> err e)
  | Syscall.Connect (fd, dst) ->
    with_sock fd (fun s ->
        match s.kind with
        | Socket.Dgram | Socket.Raw _ ->
          (match Netstack.connect_start k.net s dst with
           | Ok () -> ok Syscall.Rnone
           | Error e -> err e)
        | Socket.Stream ->
          (match s.tcb with
           | None ->
             (match Netstack.connect_start k.net s dst with
              | Error e -> err e
              | Ok () ->
                if Socket.nonblocking s then err Errno.EAGAIN
                else block (fun waiter -> Socket.wait_writable s waiter))
           | Some tcb ->
             (match tcb.st with
              | Socket.St_established -> ok Syscall.Rnone
              | Socket.St_syn_sent | Socket.St_syn_received ->
                if Socket.nonblocking s then err Errno.EAGAIN
                else block (fun waiter -> Socket.wait_writable s waiter)
              | Socket.St_closed ->
                (match s.err with
                 | Some e ->
                   s.err <- None;
                   err e
                 | None -> err Errno.ECONNREFUSED)
              | Socket.St_listen -> err Errno.EINVAL
              | Socket.St_fin_wait_1 | Socket.St_fin_wait_2 | Socket.St_close_wait
              | Socket.St_closing | Socket.St_last_ack | Socket.St_time_wait ->
                err Errno.EISCONN)))
  | Syscall.Accept fd ->
    with_sock fd (fun s ->
        if not (Socket.is_listening s) then err Errno.EINVAL
        else
          match Netstack.accept_take s with
          | Some child ->
            let cfd = Fdtable.add p.fds (Fdtable.Fsock child) in
            ref_socket k child;
            ok (Syscall.Raccept (cfd, Option.get child.remote))
          | None ->
            if Socket.nonblocking s then err Errno.EAGAIN
            else block (fun waiter -> Socket.wait_readable s waiter))
  | Syscall.Send (fd, data) ->
    with_sock fd (fun s -> exec_send k s data ~ok ~err ~block)
  | Syscall.Send_oob (fd, c) ->
    with_sock fd (fun s ->
        match Tcp.send_oob s c with Ok () -> ok (Syscall.Rint 1) | Error e -> err e)
  | Syscall.Recv (fd, n, flags) ->
    with_sock fd (fun s ->
        match s.dispatch.d_recvmsg s flags n with
        | Socket.Rv_data data ->
          if (not flags.peek) && s.kind = Socket.Stream then Tcp.after_app_read s;
          ok (Syscall.Rdata data)
        | Socket.Rv_from (_, data) -> ok (Syscall.Rdata data)
        | Socket.Rv_eof -> ok (Syscall.Rdata "")
        | Socket.Rv_err e -> err e
        | Socket.Rv_block ->
          if nonblocking s flags then err Errno.EAGAIN
          else block (fun waiter -> Socket.wait_readable s waiter))
  | Syscall.Recvfrom (fd, n, flags) ->
    with_sock fd (fun s ->
        match s.dispatch.d_recvmsg s flags n with
        | Socket.Rv_from (from, data) -> ok (Syscall.Rfrom (from, data))
        | Socket.Rv_data data ->
          if (not flags.peek) && s.kind = Socket.Stream then Tcp.after_app_read s;
          let from =
            match s.remote with Some a -> a | None -> { Addr.ip = 0; port = 0 }
          in
          ok (Syscall.Rfrom (from, data))
        | Socket.Rv_eof -> ok (Syscall.Rdata "")
        | Socket.Rv_err e -> err e
        | Socket.Rv_block ->
          if nonblocking s flags then err Errno.EAGAIN
          else block (fun waiter -> Socket.wait_readable s waiter))
  | Syscall.Sendto (fd, dst, data) ->
    with_sock fd (fun s ->
        match s.kind with
        | Socket.Stream -> err Errno.EISCONN
        | Socket.Dgram | Socket.Raw _ ->
          (match Netstack.sendto k.net s dst data with
           | Ok n -> ok (Syscall.Rint n)
           | Error e -> err e))
  | Syscall.Shutdown (fd, how) ->
    with_sock fd (fun s ->
        (match how with
         | Syscall.Shut_rd ->
           s.shut_rd <- true;
           Socket.wake_readers s
         | Syscall.Shut_wr -> Tcp.shutdown_write s
         | Syscall.Shut_rdwr ->
           s.shut_rd <- true;
           Socket.wake_readers s;
           Tcp.shutdown_write s);
        ok Syscall.Rnone)
  | Syscall.Close fd ->
    (match Fdtable.find p.fds fd with
     | None -> err Errno.EBADF
     | Some e ->
       Fdtable.remove p.fds fd;
       (match e with
        | Fdtable.Fsock s -> unref_socket k s
        | Fdtable.Fpipe_r pi -> Pipe.close_read pi
        | Fdtable.Fpipe_w pi -> Pipe.close_write pi
        | Fdtable.Fgm port -> Zapc_simnet.Gmdev.close_port k.gm port);
       ok Syscall.Rnone)
  | Syscall.Getsockopt (fd, key) ->
    with_sock fd (fun s -> ok (Syscall.Rint (Sockopt.get s.opts key)))
  | Syscall.Setsockopt (fd, key, v) ->
    with_sock fd (fun s ->
        Sockopt.set s.opts key v;
        ok Syscall.Rnone)
  | Syscall.Getsockname fd ->
    with_sock fd (fun s ->
        match s.local with
        | Some a -> ok (Syscall.Raddr a)
        | None -> ok (Syscall.Raddr { Addr.ip = 0; port = 0 }))
  | Syscall.Getpeername fd ->
    with_sock fd (fun s ->
        match s.remote with Some a -> ok (Syscall.Raddr a) | None -> err Errno.ENOTCONN)
  | Syscall.Poll (reqs, timeout) -> exec_poll k p reqs timeout
  | Syscall.Read (fd, n) ->
    (match Fdtable.find p.fds fd with
     | None -> err Errno.EBADF
     | Some (Fdtable.Fsock _) ->
       exec k p (Syscall.Recv (fd, n, Socket.plain_recv)) |> fun r -> r
     | Some (Fdtable.Fpipe_w _ | Fdtable.Fgm _) -> err Errno.EBADF
     | Some (Fdtable.Fpipe_r pi) ->
       (match Pipe.read pi n with
        | Pipe.Pdata d ->
          Pipe.after_read pi;
          ok (Syscall.Rdata d)
        | Pipe.Peof -> ok (Syscall.Rdata "")
        | Pipe.Pblock ->
          block (fun waiter -> pi.rd_waiters <- waiter :: pi.rd_waiters)))
  | Syscall.Write (fd, data) ->
    (match Fdtable.find p.fds fd with
     | None -> err Errno.EBADF
     | Some (Fdtable.Fsock s) -> exec_send k s data ~ok ~err ~block
     | Some (Fdtable.Fpipe_r _ | Fdtable.Fgm _) -> err Errno.EBADF
     | Some (Fdtable.Fpipe_w pi) ->
       (match Pipe.write pi data with
        | Pipe.Pwrote n -> ok (Syscall.Rint n)
        | Pipe.Pepipe -> err Errno.EPIPE
        | Pipe.Pwblock ->
          block (fun waiter -> pi.wr_waiters <- waiter :: pi.wr_waiters)))

and exec_send k (s : Socket.t) data ~ok ~err ~block =
  match s.kind with
  | Socket.Stream ->
    (match Tcp.send_data s data with
     | Ok 0 ->
       if Socket.nonblocking s then err Errno.EAGAIN
       else block (fun waiter -> Socket.wait_writable s waiter)
     | Ok n -> ok (Syscall.Rint n)
     | Error e -> err e)
  | Socket.Dgram | Socket.Raw _ ->
    (match s.remote with
     | None -> err Errno.ENOTCONN
     | Some dst ->
       (match Netstack.sendto k.net s dst data with
        | Ok n -> ok (Syscall.Rint n)
        | Error e -> err e))

and exec_poll k (p : Proc.t) reqs timeout =
  let ok r = (`Complete (Syscall.Ret r), Simtime.zero) in
  let events =
    List.filter_map
      (fun (r : Syscall.poll_req) ->
        match Fdtable.find p.fds r.pfd with
        | None ->
          Some (r.pfd, { Socket.readable = false; writable = false; pollerr = true; hangup = false })
        | Some (Fdtable.Fsock s) ->
          let ev = s.dispatch.d_poll s in
          let relevant =
            (ev.readable && r.want_read) || (ev.writable && r.want_write) || ev.pollerr
            || ev.hangup
          in
          if relevant then Some (r.pfd, ev) else None
        | Some (Fdtable.Fpipe_r pi) ->
          let readable =
            (not (Zapc_simnet.Sockbuf.is_empty pi.buf)) || pi.wr_refs = 0
          in
          if readable && r.want_read then
            Some
              (r.pfd, { Socket.readable = true; writable = false; pollerr = false; hangup = pi.wr_refs = 0 })
          else None
        | Some (Fdtable.Fpipe_w pi) ->
          let writable = Pipe.space pi > 0 || pi.rd_refs = 0 in
          if writable && r.want_write then
            Some
              (r.pfd, { Socket.readable = false; writable = true; pollerr = pi.rd_refs = 0; hangup = false })
          else None
        | Some (Fdtable.Fgm port) ->
          let readable = not (Queue.is_empty port.Zapc_simnet.Gmdev.rxq) in
          if (readable && r.want_read) || port.Zapc_simnet.Gmdev.closed then
            Some
              (r.pfd, { Socket.readable; writable = true; pollerr = port.Zapc_simnet.Gmdev.closed; hangup = false })
          else None)
      reqs
  in
  if events <> [] then ok (Syscall.Rpoll events)
  else begin
    let deadline =
      match (p.block_deadline, timeout) with
      | Some d, _ -> Some d
      | None, Some tmo ->
        let d = Simtime.add (now k) tmo in
        p.block_deadline <- Some d;
        Some d
      | None, None -> None
    in
    match deadline with
    | Some d when Simtime.compare (now k) d >= 0 -> ok (Syscall.Rpoll [])
    | _ ->
      ( `Block
          (fun waiter ->
            List.iter
              (fun (r : Syscall.poll_req) ->
                match Fdtable.find p.fds r.pfd with
                | Some (Fdtable.Fsock s) ->
                  if r.want_read then Socket.wait_readable s waiter;
                  if r.want_write then Socket.wait_writable s waiter
                | Some (Fdtable.Fpipe_r pi) ->
                  pi.rd_waiters <- waiter :: pi.rd_waiters
                | Some (Fdtable.Fpipe_w pi) ->
                  pi.wr_waiters <- waiter :: pi.wr_waiters
                | Some (Fdtable.Fgm port) ->
                  if r.want_read then Zapc_simnet.Gmdev.wait_readable port waiter
                | None -> ())
              reqs;
            match deadline with
            | Some d ->
              Engine.schedule_at k.engine ~label:"os.sleep" ~at:d
                (fun () -> waiter ())
            | None -> ()),
        Simtime.zero )
  end

(* --- convenience for tests and the ZapC agent --- *)

let signal k pid sg =
  match find_proc k pid with
  | None -> Error Errno.ESRCH
  | Some p ->
    signal_proc k p sg;
    Ok ()

let alive_count k =
  Hashtbl.fold (fun _ p acc -> if Proc.is_alive p then acc + 1 else acc) k.procs 0

let remove_proc k pid = Hashtbl.remove k.procs pid

(* Failure injection: node power loss.  Every live process dies as if
   SIGKILLed; nothing gets a chance to clean up. *)
let crash k =
  let live = Hashtbl.fold (fun _ p acc -> if Proc.is_alive p then p :: acc else acc) k.procs [] in
  List.iter (fun p -> terminate k p 137) live
