(* Per-process memory accounting.

   Programs declare their working set through mem_alloc/mem_free; the
   checkpoint charges these bytes to the pod image (a real checkpointer
   writes the address space — here the *computational* state travels in the
   program's Value encoding, and regions model the footprint of the
   application at the paper's scale, e.g. BT/NAS's hundreds of MB).

   For incremental checkpointing every region carries a dirty bit: set when
   the region is created, resized, freed or explicitly touched, cleared when
   a checkpoint of this process has been durably stored.  [dirty_bytes] is
   what a delta checkpoint must write for this process — only the regions
   modified since the last stored snapshot.

   For content-addressed dedup every region additionally carries a *write
   generation*: a counter bumped on every mutation of the region, persisted
   through checkpoint images.  The simulation does not store page contents,
   so (name, size, generation) is the model of a region's bytes: two regions
   agreeing on all three hold identical modelled content.  Sibling ranks of
   an SPMD program allocate the same regions with the same history, which is
   exactly the cross-rank text/data redundancy dedup exploits. *)

module Value = Zapc_codec.Value

type t = {
  regions : (string, int) Hashtbl.t;
  gens : (string, int) Hashtbl.t;  (* region name -> write generation *)
  dirty : (string, unit) Hashtbl.t;  (* region names modified since last snapshot *)
  mutable version : int;  (* bumped on every mutation *)
  mutable total : int;
  mutable peak : int;
  mutable epochs : int;  (* dirty-set snapshots taken (pre-copy rounds) *)
}

let create () =
  { regions = Hashtbl.create 8; gens = Hashtbl.create 8; dirty = Hashtbl.create 8;
    version = 0; total = 0; peak = 0; epochs = 0 }

let mark_dirty t name =
  t.version <- t.version + 1;
  Hashtbl.replace t.gens name
    (1 + (match Hashtbl.find_opt t.gens name with Some g -> g | None -> 0));
  Hashtbl.replace t.dirty name ()

let alloc t name size =
  let old = match Hashtbl.find_opt t.regions name with Some s -> s | None -> 0 in
  Hashtbl.replace t.regions name size;
  mark_dirty t name;
  t.total <- t.total - old + size;
  if t.total > t.peak then t.peak <- t.total

let free t name =
  match Hashtbl.find_opt t.regions name with
  | None -> ()
  | Some s ->
    Hashtbl.remove t.regions name;
    mark_dirty t name;
    Hashtbl.remove t.gens name;  (* a freed region has no content to tag *)
    t.total <- t.total - s

let touch t name = if Hashtbl.mem t.regions name then mark_dirty t name

let total t = t.total
let peak t = t.peak
let version t = t.version

let clear_dirty t = Hashtbl.reset t.dirty

(* Bytes of the regions still present that were modified since the last
   [clear_dirty]; a dirtied-then-freed region contributes nothing (there is
   no page content left to write, the free itself travels in the region
   descriptors). *)
let dirty_bytes t =
  Hashtbl.fold
    (fun name () acc ->
      match Hashtbl.find_opt t.regions name with
      | Some size -> acc + size
      | None -> acc)
    t.dirty 0

let dirty_regions t =
  Hashtbl.fold (fun name () acc -> name :: acc) t.dirty []
  |> List.sort String.compare

(* One pre-copy round: atomically capture the dirty set (still-present
   regions with their sizes, sorted) and clear it, so mutations from here
   on accumulate toward the *next* round. *)
let snapshot_dirty t =
  let captured =
    Hashtbl.fold
      (fun name () acc ->
        match Hashtbl.find_opt t.regions name with
        | Some size -> (name, size) :: acc
        | None -> acc)
      t.dirty []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Hashtbl.reset t.dirty;
  t.epochs <- t.epochs + 1;
  captured

let epochs t = t.epochs

let gen t name =
  match Hashtbl.find_opt t.gens name with Some g -> g | None -> 0

(* (name, size, generation) of every live region, sorted by name — the
   content tags the dedup chunker addresses regions by. *)
let region_tags t =
  Hashtbl.fold (fun name size acc -> (name, size, gen t name) :: acc) t.regions []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

(* Each region encodes as [size; gen] so the content tag survives a
   checkpoint-restart cycle (dedup addresses stay stable across restarts). *)
let to_value t =
  let kvs =
    Hashtbl.fold
      (fun k size acc -> (k, Value.List [ Value.Int size; Value.Int (gen t k) ]) :: acc)
      t.regions []
  in
  let kvs = List.sort (fun (a, _) (b, _) -> String.compare a b) kvs in
  Value.Assoc kvs

let of_value v =
  let t = create () in
  List.iter
    (fun (k, rv) ->
      let size, g =
        match rv with
        | Value.List [ s; g ] -> (Value.to_int s, Value.to_int g)
        | _ -> (Value.to_int rv, 1)  (* legacy shape: plain size *)
      in
      Hashtbl.replace t.regions k size;
      Hashtbl.replace t.gens k g;
      (* restored regions start dirty: the first post-restart delta must
         write them (the conservative, always-safe default) *)
      Hashtbl.replace t.dirty k ();
      t.version <- t.version + 1;
      t.total <- t.total + size;
      if t.total > t.peak then t.peak <- t.total)
    (Value.to_assoc v);
  t
