(** The per-node simulated kernel: process table, multi-CPU round-robin
    scheduler, signal delivery, and the system-call executor bridging
    programs to the network stack, pipes, timers and memory accounting.

    Scheduling invariant: a [Running] process always has exactly one pending
    engine event that will release its CPU; [Blocked] processes hold wakeup
    closures registered on the resources they wait for, and their pending
    system call is re-executed on wakeup (restartable-syscall semantics —
    also how restored processes resume after a restart). *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Errno = Zapc_simnet.Errno
module Fabric = Zapc_simnet.Fabric
module Netstack = Zapc_simnet.Netstack
module Socket = Zapc_simnet.Socket

type t = {
  node_id : int;
  hostname : string;
  engine : Engine.t;
  net : Netstack.t;
  config : Kconfig.t;
  procs : (int, Proc.t) Hashtbl.t;
  runq : Proc.t Queue.t;
  mutable idle_cpus : int;
  cpus : int;
  mutable next_pid : int;
  mutable next_pipe_id : int;
  sock_refs : (int, int) Hashtbl.t;  (** socket id -> fd reference count *)
  rng : Zapc_sim.Rng.t;
  gm : Zapc_simnet.Gmdev.t;  (** kernel-bypass messaging device *)
  mutable fs : Simfs.t;  (** shared across nodes (SAN-backed); see Cluster *)
  mutable on_log : t -> Proc.t -> string -> unit;
  mutable exited : int;
}

val create :
  ?config:Kconfig.t -> ?cpus:int -> ?hostname:string -> node_id:int -> Fabric.t -> t

val engine : t -> Engine.t
val netstack : t -> Netstack.t
val now : t -> Simtime.t
val find_proc : t -> int -> Proc.t option
val processes : t -> Proc.t list
val alive_count : t -> int
val remove_proc : t -> int -> unit

val crash : t -> unit
(** Failure injection: node power loss.  Every live process terminates as
    if SIGKILLed (exit code 137); no cleanup code runs. *)

val set_logger : t -> (t -> Proc.t -> string -> unit) -> unit
(** Receives every Log system call. *)

val set_fs : t -> Simfs.t -> unit
(** Mount a (cluster-shared) file system; fresh kernels start with a
    private one. *)

val fs : t -> Simfs.t
val gm : t -> Zapc_simnet.Gmdev.t

val alloc_pipe_id : t -> int
(** Draw a fresh node-unique pipe id (the counter behind [Syscall.Pipe]);
    restore paths must use this instead of inventing ids so restored pipes
    never collide with live ones. *)

(** {1 Socket fd reference counting}

    Sockets are shared between fd tables (spawn inherits descriptors); the
    kernel closes the socket when the last reference drops.  Restore code
    that installs descriptors directly must take references too. *)

val ref_socket : t -> Socket.t -> unit
val unref_socket : t -> Socket.t -> unit

(** {1 Processes} *)

val create_proc : t -> Program.instance -> Proc.t
(** Register a new process without scheduling it (restore path). *)

val enqueue : t -> Proc.t -> unit
(** Make a [Ready] process runnable. *)

val spawn : t -> program:string -> args:Zapc_codec.Value.t -> Proc.t
(** Instantiate a registered program and schedule it.
    @raise Invalid_argument if the program is unknown. *)

val signal_proc : t -> Proc.t -> Signal.t -> unit
val signal : t -> int -> Signal.t -> (unit, Errno.t) result
val terminate : t -> Proc.t -> int -> unit
