(* Validator behind the @obs alias: checks the artifacts `main.exe quick`
   emits.

     obs_check.exe [TRACE.json] [METRICS.json]

   The Chrome trace must parse, be non-empty, and exhibit the Figure-2
   overlap — every pod's "standalone" span straddles the end of the
   Manager's "mgr_sync" span (the 'continue' broadcast lands while the
   standalone checkpoints are running).  The metrics snapshot must parse
   and carry a successful mgr.ckpt series. *)

module Json = Zapc_obs.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("obs_check: FAIL: " ^ m);
      exit 1)
    fmt

let need what = function Some v -> v | None -> fail "%s" what

let parse_file path =
  match Json.parse_file path with
  | Ok v -> v
  | Error e -> fail "%s: %s" path e

(* the X rows of the trace, as (name, tid, t0, t1) *)
let complete_events trace =
  let events =
    need "traceEvents missing or not a list"
      (Option.bind (Json.member "traceEvents" trace) Json.to_list)
  in
  if events = [] then fail "traceEvents is empty";
  ( List.length events,
    List.filter_map
      (fun ev ->
        match Option.bind (Json.member "ph" ev) Json.to_string_opt with
        | Some "X" ->
          let str k = Option.bind (Json.member k ev) Json.to_string_opt in
          let num k = Option.bind (Json.member k ev) Json.to_float in
          let name = need "X event without name" (str "name") in
          let tid = need "X event without tid" (num "tid") in
          let ts = need "X event without ts" (num "ts") in
          let dur = need "X event without dur" (num "dur") in
          Some (name, int_of_float tid, ts, ts +. dur)
        | _ -> None)
      events )

let check_trace path =
  let count, xs = complete_events (parse_file path) in
  let sync_end =
    match List.find_opt (fun (n, _, _, _) -> String.equal n "mgr_sync") xs with
    | Some (_, _, _, t1) -> t1
    | None -> fail "%s: no mgr_sync span" path
  in
  let standalones =
    List.filter (fun (n, _, _, _) -> String.equal n "standalone") xs
  in
  if standalones = [] then fail "%s: no standalone spans" path;
  List.iter
    (fun (_, tid, t0, t1) ->
      if not (t0 < sync_end && sync_end <= t1) then
        fail
          "%s: tid %d standalone [%.1f..%.1f]us does not straddle mgr_sync \
           end %.1fus (Figure-2 overlap broken)"
          path tid t0 t1 sync_end)
    standalones;
  Printf.printf
    "obs_check: %s ok (%d events, %d standalone spans straddle mgr_sync end)\n"
    path count (List.length standalones)

let check_metrics path =
  let v = parse_file path in
  let counters =
    need "counters missing" (Json.member "counters" v)
  in
  let counter name =
    match Option.bind (Json.member name counters) Json.to_float with
    | Some c -> int_of_float c
    | None -> 0
  in
  if counter "mgr.ckpt.ok" < 1 then fail "%s: mgr.ckpt.ok < 1" path;
  if counter "storage.puts" < 1 then fail "%s: storage.puts < 1" path;
  (match Option.bind (Json.member "histograms" v) (Json.member "ckpt.image_bytes") with
   | Some _ -> ()
   | None -> fail "%s: ckpt.image_bytes histogram missing" path);
  Printf.printf "obs_check: %s ok (mgr.ckpt.ok=%d storage.puts=%d)\n" path
    (counter "mgr.ckpt.ok") (counter "storage.puts")

let () =
  let arg i d = if Array.length Sys.argv > i then Sys.argv.(i) else d in
  check_trace (arg 1 "BENCH_quick_trace.json");
  check_metrics (arg 2 "BENCH_quick_metrics.json")
