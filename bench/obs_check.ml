(* Validator behind the @obs alias: checks the artifacts `main.exe quick`
   emits.

     obs_check.exe [TRACE.json] [METRICS.json]
     obs_check.exe --mig [TRACE.json] [METRICS.json]
     obs_check.exe --serve [SERVE.json] [TRACE.json] [METRICS.json]
     obs_check.exe --causal TRACE.json...

   The Chrome trace must parse, be non-empty, and exhibit the Figure-2
   overlap — every pod's "standalone" span straddles the end of the
   Manager's "mgr_sync" span (the 'continue' broadcast lands while the
   standalone checkpoints are running).  The metrics snapshot must parse
   and carry a successful mgr.ckpt series. *)

module Json = Zapc_obs.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("obs_check: FAIL: " ^ m);
      exit 1)
    fmt

let need what = function Some v -> v | None -> fail "%s" what

let parse_file path =
  match Json.parse_file path with
  | Ok v -> v
  | Error e -> fail "%s: %s" path e

(* the X rows of the trace, as (name, tid, t0, t1) *)
let complete_events trace =
  let events =
    need "traceEvents missing or not a list"
      (Option.bind (Json.member "traceEvents" trace) Json.to_list)
  in
  if events = [] then fail "traceEvents is empty";
  ( List.length events,
    List.filter_map
      (fun ev ->
        match Option.bind (Json.member "ph" ev) Json.to_string_opt with
        | Some "X" ->
          let str k = Option.bind (Json.member k ev) Json.to_string_opt in
          let num k = Option.bind (Json.member k ev) Json.to_float in
          let name = need "X event without name" (str "name") in
          let tid = need "X event without tid" (num "tid") in
          let ts = need "X event without ts" (num "ts") in
          let dur = need "X event without dur" (num "dur") in
          Some (name, int_of_float tid, ts, ts +. dur)
        | _ -> None)
      events )

let check_trace path =
  let count, xs = complete_events (parse_file path) in
  let sync_end =
    match List.find_opt (fun (n, _, _, _) -> String.equal n "mgr_sync") xs with
    | Some (_, _, _, t1) -> t1
    | None -> fail "%s: no mgr_sync span" path
  in
  let standalones =
    List.filter (fun (n, _, _, _) -> String.equal n "standalone") xs
  in
  if standalones = [] then fail "%s: no standalone spans" path;
  List.iter
    (fun (_, tid, t0, t1) ->
      if not (t0 < sync_end && sync_end <= t1) then
        fail
          "%s: tid %d standalone [%.1f..%.1f]us does not straddle mgr_sync \
           end %.1fus (Figure-2 overlap broken)"
          path tid t0 t1 sync_end)
    standalones;
  Printf.printf
    "obs_check: %s ok (%d events, %d standalone spans straddle mgr_sync end)\n"
    path count (List.length standalones)

let check_metrics path =
  let v = parse_file path in
  let counters =
    need "counters missing" (Json.member "counters" v)
  in
  let counter name =
    match Option.bind (Json.member name counters) Json.to_float with
    | Some c -> int_of_float c
    | None -> 0
  in
  if counter "mgr.ckpt.ok" < 1 then fail "%s: mgr.ckpt.ok < 1" path;
  if counter "storage.puts" < 1 then fail "%s: storage.puts < 1" path;
  (match Option.bind (Json.member "histograms" v) (Json.member "ckpt.image_bytes") with
   | Some _ -> ()
   | None -> fail "%s: ckpt.image_bytes histogram missing" path);
  Printf.printf "obs_check: %s ok (mgr.ckpt.ok=%d storage.puts=%d)\n" path
    (counter "mgr.ckpt.ok") (counter "storage.puts")

(* --mig: the artifacts of `main.exe migration` (a traced pre-copy
   migration).  The trace must hold a Manager-level "migrate" span with the
   Agent-side "blackout" strictly inside it — the pod is only ever dark for
   a proper sub-window of the operation, never from its first instant (the
   rounds run before the stop) nor to its last (the activation hands back a
   running pod).  The metrics must record the success and the blackout. *)
let check_mig_trace path =
  let count, xs = complete_events (parse_file path) in
  let span name =
    match List.find_opt (fun (n, _, _, _) -> String.equal n name) xs with
    | Some (_, _, t0, t1) -> (t0, t1)
    | None -> fail "%s: no %s span" path name
  in
  let m0, m1 = span "migrate" in
  let b0, b1 = span "blackout" in
  if not (m0 < b0 && b1 < m1) then
    fail
      "%s: blackout [%.1f..%.1f]us not strictly inside migrate [%.1f..%.1f]us"
      path b0 b1 m0 m1;
  let p0, p1 = span "mig_precopy" in
  if not (p1 <= b0) then
    fail "%s: pre-copy [%.1f..%.1f]us overlaps the blackout from %.1fus" path
      p0 p1 b0;
  Printf.printf
    "obs_check: %s ok (%d events; blackout %.1fms strictly inside migrate \
     %.1fms, after %.1fms of pre-copy)\n"
    path count
    ((b1 -. b0) /. 1000.0)
    ((m1 -. m0) /. 1000.0)
    ((p1 -. p0) /. 1000.0)

let check_mig_metrics path =
  let v = parse_file path in
  let counters = need "counters missing" (Json.member "counters" v) in
  let counter name =
    match Option.bind (Json.member name counters) Json.to_float with
    | Some c -> int_of_float c
    | None -> 0
  in
  if counter "mgr.mig.ok" < 1 then fail "%s: mgr.mig.ok < 1" path;
  let hist name =
    match Option.bind (Json.member "histograms" v) (Json.member name) with
    | Some _ -> ()
    | None -> fail "%s: %s histogram missing" path name
  in
  hist "mig.blackout_ms";
  hist "mig.rounds";
  hist "mig.bytes_per_round";
  Printf.printf "obs_check: %s ok (mgr.mig.ok=%d, blackout/rounds recorded)\n"
    path (counter "mgr.mig.ok")

(* --serve: the artifacts of `main.exe serve` (the served-traffic SLO run).
   BENCH_serve.json must carry all four phase windows with samples and an
   intact exactly-once block; the trace must show the service actually went
   dark and came back — "paused" spans for the periodic checkpoints (never
   overlapping on the same pod: a pod is suspended by at most one operation
   at a time) and a migration "blackout"; the metrics must hold a non-empty
   client latency histogram and a clean duplicate counter. *)

let check_serve_json path =
  let v = parse_file path in
  let eo = need "exactly_once missing" (Json.member "exactly_once" v) in
  let num obj k = need (k ^ " missing") (Option.bind (Json.member k obj) Json.to_float) in
  let expected = num eo "expected" and completed = num eo "completed" in
  if expected < 1000.0 then fail "%s: expected %.0f < 1000 requests" path expected;
  if completed <> expected then
    fail "%s: completed %.0f <> expected %.0f" path completed expected;
  if num eo "duplicates" <> 0.0 then fail "%s: duplicate responses" path;
  if num eo "inflight" <> 0.0 then fail "%s: requests left in flight" path;
  let windows =
    need "windows missing or not a list"
      (Option.bind (Json.member "windows" v) Json.to_list)
  in
  let wname w = Option.bind (Json.member "name" w) Json.to_string_opt in
  List.iter
    (fun name ->
      match List.find_opt (fun w -> wname w = Some name) windows with
      | None -> fail "%s: no %S window" path name
      | Some w ->
        if num w "count" <= 0.0 then fail "%s: %S window has no samples" path name;
        if num w "p99_ms" <= 0.0 then fail "%s: %S window p99 is zero" path name)
    [ "steady"; "checkpoint"; "migration"; "crash" ];
  let crash = need "crash block missing" (Json.member "crash" v) in
  if num crash "mttr_ms" <= 0.0 then fail "%s: mttr_ms not positive" path;
  Printf.printf "obs_check: %s ok (%.0f requests exactly-once, 4 windows)\n"
    path expected

let check_serve_trace path =
  let count, xs = complete_events (parse_file path) in
  let paused = List.filter (fun (n, _, _, _) -> String.equal n "paused") xs in
  if paused = [] then fail "%s: no paused spans (no checkpoint ever ran)" path;
  (match List.find_opt (fun (n, _, _, _) -> String.equal n "blackout") xs with
   | Some _ -> ()
   | None -> fail "%s: no blackout span (no migration ran)" path);
  (* per pod (tid), the dark windows must be disjoint *)
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun (_, tid, t0, t1) ->
      Hashtbl.replace by_tid tid ((t0, t1) :: (try Hashtbl.find by_tid tid with Not_found -> [])))
    paused;
  Hashtbl.iter
    (fun tid spans ->
      let sorted = List.sort compare spans in
      let rec go = function
        | (_, e1) :: ((s2, _) :: _ as rest) ->
          if s2 < e1 then
            fail "%s: tid %d has overlapping paused spans (%.1f < %.1f)" path tid
              s2 e1;
          go rest
        | _ -> ()
      in
      go sorted)
    by_tid;
  Printf.printf "obs_check: %s ok (%d events, %d disjoint paused spans, blackout present)\n"
    path count (List.length paused)

let check_serve_metrics path =
  let v = parse_file path in
  let counters = need "counters missing" (Json.member "counters" v) in
  let counter name =
    match Option.bind (Json.member name counters) Json.to_float with
    | Some c -> int_of_float c
    | None -> 0
  in
  if counter "client.completed" < 1000 then
    fail "%s: client.completed < 1000" path;
  if counter "client.duplicates" <> 0 then fail "%s: client.duplicates != 0" path;
  if counter "net.vip_rebound" < 1 then
    fail "%s: net.vip_rebound < 1 (no restore ever re-announced its address)" path;
  let lat =
    need "client.lat_ms histogram missing"
      (Option.bind (Json.member "histograms" v) (Json.member "client.lat_ms"))
  in
  (match Option.bind (Json.member "count" lat) Json.to_float with
   | Some c when c >= 1000.0 -> ()
   | Some c -> fail "%s: client.lat_ms has only %.0f samples" path c
   | None -> fail "%s: client.lat_ms has no count" path);
  Printf.printf "obs_check: %s ok (client.completed=%d, latency histogram populated)\n"
    path (counter "client.completed")

(* --causal: structural validation of the cross-node causal tree in any of
   the Chrome traces.  Every span carries its recorder-unique sid (and its
   parent's sid) in the args, so the tree is reconstructible from the
   artifact alone.  Checks: sids are unique and every parent resolves with
   no cycles; every agent-side operation span (pod_ckpt / pod_restart /
   mig_precopy, node >= 0) climbs to a manager-scope ancestor (node = -1)
   — the trace-context plumbing stitched the operation across the control
   plane; flow events come in s/f pairs whose ids are real sids; and at
   least one cross-node parent edge exists. *)
let check_causal path =
  let trace = parse_file path in
  let events =
    need "traceEvents missing or not a list"
      (Option.bind (Json.member "traceEvents" trace) Json.to_list)
  in
  let spans = Hashtbl.create 256 in  (* sid -> (name, node, parent option) *)
  let flows_s = ref [] and flows_f = ref [] in
  List.iter
    (fun ev ->
      let str k = Option.bind (Json.member k ev) Json.to_string_opt in
      let num k = Option.bind (Json.member k ev) Json.to_float in
      match str "ph" with
      | Some "X" ->
        let args = need "X event without args" (Json.member "args" ev) in
        let anum k = Option.bind (Json.member k args) Json.to_float in
        let sid = int_of_float (need "X event without sid" (anum "sid")) in
        let node = int_of_float (need "X event without node" (anum "node")) in
        let name = need "X event without name" (str "name") in
        let parent = Option.map int_of_float (anum "parent") in
        if Hashtbl.mem spans sid then fail "%s: duplicate sid %d" path sid;
        Hashtbl.replace spans sid (name, node, parent)
      | Some "s" ->
        flows_s := int_of_float (need "flow start without id" (num "id")) :: !flows_s
      | Some "f" ->
        flows_f := int_of_float (need "flow finish without id" (num "id")) :: !flows_f
      | _ -> ())
    events;
  if Hashtbl.length spans = 0 then fail "%s: no spans" path;
  let rec climbs_to_manager seen sid =
    if List.mem sid seen then fail "%s: parent cycle through sid %d" path sid;
    match Hashtbl.find_opt spans sid with
    | None -> fail "%s: dangling parent sid %d" path sid
    | Some (_, node, parent) ->
      node = -1
      || (match parent with
          | None -> false
          | Some p -> climbs_to_manager (sid :: seen) p)
  in
  let ops =
    Hashtbl.fold
      (fun sid (name, node, _) acc ->
        if node >= 0 && List.mem name [ "pod_ckpt"; "pod_restart"; "mig_precopy" ]
        then (sid, name) :: acc
        else acc)
      spans []
  in
  if ops = [] then fail "%s: no agent-side operation spans" path;
  List.iter
    (fun (sid, name) ->
      if not (climbs_to_manager [] sid) then
        fail "%s: %s span sid %d never reaches a manager-scope ancestor" path
          name sid)
    ops;
  let cross =
    Hashtbl.fold
      (fun _ (_, node, parent) acc ->
        match Option.bind parent (Hashtbl.find_opt spans) with
        | Some (_, pnode, _) when pnode <> node -> acc + 1
        | Some _ | None -> acc)
      spans 0
  in
  if cross = 0 then fail "%s: no cross-node causal edges" path;
  List.iter
    (fun id ->
      if not (Hashtbl.mem spans id) then
        fail "%s: flow event id %d is not a span sid" path id)
    (!flows_s @ !flows_f);
  if List.sort compare !flows_s <> List.sort compare !flows_f then
    fail "%s: unpaired flow events" path;
  Printf.printf
    "obs_check: %s ok (causal: %d spans, %d op spans rooted at the manager, \
     %d cross-node edges, %d flow pairs)\n"
    path (Hashtbl.length spans) (List.length ops) cross (List.length !flows_s)

let () =
  let arg i d = if Array.length Sys.argv > i then Sys.argv.(i) else d in
  if Array.length Sys.argv > 1 && String.equal Sys.argv.(1) "--causal" then begin
    if Array.length Sys.argv > 2 then
      for i = 2 to Array.length Sys.argv - 1 do
        check_causal Sys.argv.(i)
      done
    else check_causal "BENCH_quick_trace.json"
  end
  else if Array.length Sys.argv > 1 && String.equal Sys.argv.(1) "--mig" then begin
    check_mig_trace (arg 2 "BENCH_migration_trace.json");
    check_mig_metrics (arg 3 "BENCH_migration_metrics.json")
  end
  else if Array.length Sys.argv > 1 && String.equal Sys.argv.(1) "--serve" then begin
    check_serve_json (arg 2 "BENCH_serve.json");
    check_serve_trace (arg 3 "BENCH_serve_trace.json");
    check_serve_metrics (arg 4 "BENCH_serve_metrics.json")
  end
  else begin
    check_trace (arg 1 "BENCH_quick_trace.json");
    check_metrics (arg 2 "BENCH_quick_metrics.json")
  end
