(* Validator behind the @obs alias: checks the artifacts `main.exe quick`
   emits.

     obs_check.exe [TRACE.json] [METRICS.json]

   The Chrome trace must parse, be non-empty, and exhibit the Figure-2
   overlap — every pod's "standalone" span straddles the end of the
   Manager's "mgr_sync" span (the 'continue' broadcast lands while the
   standalone checkpoints are running).  The metrics snapshot must parse
   and carry a successful mgr.ckpt series. *)

module Json = Zapc_obs.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("obs_check: FAIL: " ^ m);
      exit 1)
    fmt

let need what = function Some v -> v | None -> fail "%s" what

let parse_file path =
  match Json.parse_file path with
  | Ok v -> v
  | Error e -> fail "%s: %s" path e

(* the X rows of the trace, as (name, tid, t0, t1) *)
let complete_events trace =
  let events =
    need "traceEvents missing or not a list"
      (Option.bind (Json.member "traceEvents" trace) Json.to_list)
  in
  if events = [] then fail "traceEvents is empty";
  ( List.length events,
    List.filter_map
      (fun ev ->
        match Option.bind (Json.member "ph" ev) Json.to_string_opt with
        | Some "X" ->
          let str k = Option.bind (Json.member k ev) Json.to_string_opt in
          let num k = Option.bind (Json.member k ev) Json.to_float in
          let name = need "X event without name" (str "name") in
          let tid = need "X event without tid" (num "tid") in
          let ts = need "X event without ts" (num "ts") in
          let dur = need "X event without dur" (num "dur") in
          Some (name, int_of_float tid, ts, ts +. dur)
        | _ -> None)
      events )

let check_trace path =
  let count, xs = complete_events (parse_file path) in
  let sync_end =
    match List.find_opt (fun (n, _, _, _) -> String.equal n "mgr_sync") xs with
    | Some (_, _, _, t1) -> t1
    | None -> fail "%s: no mgr_sync span" path
  in
  let standalones =
    List.filter (fun (n, _, _, _) -> String.equal n "standalone") xs
  in
  if standalones = [] then fail "%s: no standalone spans" path;
  List.iter
    (fun (_, tid, t0, t1) ->
      if not (t0 < sync_end && sync_end <= t1) then
        fail
          "%s: tid %d standalone [%.1f..%.1f]us does not straddle mgr_sync \
           end %.1fus (Figure-2 overlap broken)"
          path tid t0 t1 sync_end)
    standalones;
  Printf.printf
    "obs_check: %s ok (%d events, %d standalone spans straddle mgr_sync end)\n"
    path count (List.length standalones)

let check_metrics path =
  let v = parse_file path in
  let counters =
    need "counters missing" (Json.member "counters" v)
  in
  let counter name =
    match Option.bind (Json.member name counters) Json.to_float with
    | Some c -> int_of_float c
    | None -> 0
  in
  if counter "mgr.ckpt.ok" < 1 then fail "%s: mgr.ckpt.ok < 1" path;
  if counter "storage.puts" < 1 then fail "%s: storage.puts < 1" path;
  (match Option.bind (Json.member "histograms" v) (Json.member "ckpt.image_bytes") with
   | Some _ -> ()
   | None -> fail "%s: ckpt.image_bytes histogram missing" path);
  Printf.printf "obs_check: %s ok (mgr.ckpt.ok=%d storage.puts=%d)\n" path
    (counter "mgr.ckpt.ok") (counter "storage.puts")

(* --mig: the artifacts of `main.exe migration` (a traced pre-copy
   migration).  The trace must hold a Manager-level "migrate" span with the
   Agent-side "blackout" strictly inside it — the pod is only ever dark for
   a proper sub-window of the operation, never from its first instant (the
   rounds run before the stop) nor to its last (the activation hands back a
   running pod).  The metrics must record the success and the blackout. *)
let check_mig_trace path =
  let count, xs = complete_events (parse_file path) in
  let span name =
    match List.find_opt (fun (n, _, _, _) -> String.equal n name) xs with
    | Some (_, _, t0, t1) -> (t0, t1)
    | None -> fail "%s: no %s span" path name
  in
  let m0, m1 = span "migrate" in
  let b0, b1 = span "blackout" in
  if not (m0 < b0 && b1 < m1) then
    fail
      "%s: blackout [%.1f..%.1f]us not strictly inside migrate [%.1f..%.1f]us"
      path b0 b1 m0 m1;
  let p0, p1 = span "mig_precopy" in
  if not (p1 <= b0) then
    fail "%s: pre-copy [%.1f..%.1f]us overlaps the blackout from %.1fus" path
      p0 p1 b0;
  Printf.printf
    "obs_check: %s ok (%d events; blackout %.1fms strictly inside migrate \
     %.1fms, after %.1fms of pre-copy)\n"
    path count
    ((b1 -. b0) /. 1000.0)
    ((m1 -. m0) /. 1000.0)
    ((p1 -. p0) /. 1000.0)

let check_mig_metrics path =
  let v = parse_file path in
  let counters = need "counters missing" (Json.member "counters" v) in
  let counter name =
    match Option.bind (Json.member name counters) Json.to_float with
    | Some c -> int_of_float c
    | None -> 0
  in
  if counter "mgr.mig.ok" < 1 then fail "%s: mgr.mig.ok < 1" path;
  let hist name =
    match Option.bind (Json.member "histograms" v) (Json.member name) with
    | Some _ -> ()
    | None -> fail "%s: %s histogram missing" path name
  in
  hist "mig.blackout_ms";
  hist "mig.rounds";
  hist "mig.bytes_per_round";
  Printf.printf "obs_check: %s ok (mgr.mig.ok=%d, blackout/rounds recorded)\n"
    path (counter "mgr.mig.ok")

let () =
  let arg i d = if Array.length Sys.argv > i then Sys.argv.(i) else d in
  if Array.length Sys.argv > 1 && String.equal Sys.argv.(1) "--mig" then begin
    check_mig_trace (arg 2 "BENCH_migration_trace.json");
    check_mig_metrics (arg 3 "BENCH_migration_metrics.json")
  end
  else begin
    check_trace (arg 1 "BENCH_quick_trace.json");
    check_metrics (arg 2 "BENCH_quick_metrics.json")
  end
