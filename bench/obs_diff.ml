(* Regression gate behind the @obsdiff alias: compare a freshly generated
   BENCH_*.json artifact against its committed baseline (bench/baselines/)
   with per-metric tolerances.

     obs_diff.exe BASELINE.json CURRENT.json   exit 1 on any violation
     obs_diff.exe --selftest BASELINE.json     gate sanity: the baseline
                                               must match itself, and a
                                               perturbed copy MUST fail

   Tolerance rules, matched on the dotted path of each leaf in the
   baseline:
     - paths containing "host", "seed" or "stddev" are skipped (wall-clock
       measurements and run identity are not regressions);
     - "coverage" fractions get an absolute +/- 0.05;
     - durations and ratios ("*_ms", "*_us", "*_s", "ratio") get 50%
       relative slack — they drift when workloads are retuned;
     - everything else (event counts, bytes, sizes) gets 25% relative
       slack with an absolute floor of 2 for tiny integers.

   Lists of objects are joined by their identifying key ("label", "name",
   "phase", "rate", "app") so reordering — e.g. the profile's sort by
   count — is not a diff; positional with a length check otherwise.  A key
   present in the baseline but missing from the current artifact is a
   violation; extra keys in the current artifact are ignored (new metrics
   are not regressions). *)

module Json = Zapc_obs.Json

let violations = ref 0
let quiet = ref false

let violate fmt =
  Printf.ksprintf
    (fun m ->
      incr violations;
      if not !quiet then prerr_endline ("obs_diff: " ^ m))
    fmt

let parse_file path =
  match Json.parse_file path with
  | Ok v -> v
  | Error e ->
    Printf.eprintf "obs_diff: FAIL: %s: %s\n" path e;
    exit 1

let ends_with suf s =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.equal (String.sub s (ls - lf) lf) suf

let contains sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i =
    i + lb <= ls && (String.equal (String.sub s i lb) sub || go (i + 1))
  in
  go 0

type rule =
  | Skip
  | Abs of float
  | Rel of float * float  (* relative slack, absolute floor *)

let rule_for path =
  if contains "host" path || contains "seed" path || contains "stddev" path
  then Skip
  else if contains "coverage" path then Abs 0.05
  else if
    ends_with "_ms" path || ends_with "_us" path || ends_with "_s" path
    || contains "ratio" path
  then Rel (0.5, 0.5)
  else Rel (0.25, 2.0)

let check path (b : float) (c : float) =
  match rule_for path with
  | Skip -> ()
  | Abs tol ->
    if Float.abs (c -. b) > tol then
      violate "%s: %.4f drifted from baseline %.4f (abs tol %.3f)" path c b tol
  | Rel (rel, floor) ->
    let tol = Float.max (rel *. Float.abs b) floor in
    if Float.abs (c -. b) > tol then
      violate "%s: %.4f drifted from baseline %.4f (tol %.3f)" path c b tol

(* the identifying key of one list element, when it has one *)
let key_of v =
  List.fold_left
    (fun acc k ->
      match acc with
      | Some _ -> acc
      | None ->
        (match Option.bind (Json.member k v) Json.to_string_opt with
         | Some s -> Some (k ^ "=" ^ s)
         | None -> None))
    None
    [ "label"; "name"; "phase"; "rate"; "app" ]

let rec diff path (b : Json.t) (c : Json.t option) =
  match (b, c) with
  | _, None -> violate "%s: missing from the current artifact" path
  | Json.Num bn, Some (Json.Num cn) -> check path bn cn
  | Json.Num _, Some _ -> violate "%s: not a number in the current artifact" path
  | Json.Obj fields, Some cv ->
    List.iter (fun (k, bv) -> diff (path ^ "." ^ k) bv (Json.member k cv)) fields
  | Json.List bl, Some (Json.List cl) ->
    let keyed = List.map (fun v -> (key_of v, v)) bl in
    if keyed <> [] && List.for_all (fun (k, _) -> k <> None) keyed then
      List.iter
        (fun (k, bv) ->
          let k = Option.get k in
          let cv = List.find_opt (fun v -> key_of v = Some k) cl in
          diff (Printf.sprintf "%s[%s]" path k) bv cv)
        keyed
    else begin
      if List.length bl <> List.length cl then
        violate "%s: %d entries vs %d in the baseline" path (List.length cl)
          (List.length bl);
      List.iteri
        (fun i bv -> diff (Printf.sprintf "%s[%d]" path i) bv (List.nth_opt cl i))
        bl
    end
  | Json.List _, Some _ -> violate "%s: not a list in the current artifact" path
  | (Json.Str _ | Json.Bool _ | Json.Null), Some cv ->
    if rule_for path <> Skip && cv <> b then
      violate "%s: value changed from the baseline" path

(* shift every numeric leaf well past any tolerance (also away from 0) *)
let rec perturb = function
  | Json.Num n -> Json.Num ((n *. 3.0) +. 10.0)
  | Json.Obj fs -> Json.Obj (List.map (fun (k, v) -> (k, perturb v)) fs)
  | Json.List l -> Json.List (List.map perturb l)
  | v -> v

let selftest path =
  let b = parse_file path in
  violations := 0;
  diff "$" b (Some b);
  if !violations > 0 then begin
    Printf.eprintf "obs_diff: selftest FAIL: %s does not match itself\n" path;
    exit 1
  end;
  quiet := true;
  diff "$" b (Some (perturb b));
  quiet := false;
  if !violations = 0 then begin
    Printf.eprintf
      "obs_diff: selftest FAIL: a perturbed copy of %s passed the gate\n" path;
    exit 1
  end;
  Printf.printf
    "obs_diff: selftest ok (%s matches itself; %d violation(s) caught on the \
     perturbed copy)\n"
    path !violations;
  violations := 0

let () =
  match Array.to_list Sys.argv with
  | _ :: "--selftest" :: (_ :: _ as paths) -> List.iter selftest paths
  | [ _; baseline; current ] ->
    let b = parse_file baseline and c = parse_file current in
    diff "$" b (Some c);
    if !violations > 0 then begin
      Printf.eprintf "obs_diff: FAIL: %d violation(s) against %s\n" !violations
        baseline;
      exit 1
    end;
    Printf.printf "obs_diff: %s ok against baseline %s\n" current baseline
  | _ ->
    prerr_endline
      "usage: obs_diff.exe BASELINE.json CURRENT.json\n\
      \       obs_diff.exe --selftest BASELINE.json...";
    exit 2
