(* Wall-clock microbenchmarks (Bechamel) of the core operations the
   simulator and the checkpoint path are built from. *)

open Bechamel
open Toolkit
module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Value = Zapc_codec.Value
module Wire = Zapc_codec.Wire
module Sockbuf = Zapc_simnet.Sockbuf
module Pheap = Zapc_sim.Pheap

let sample_value =
  Value.assoc
    [ ("grid", Value.F64s (Array.init 512 float_of_int));
      ("meta", Value.List (List.init 32 (fun i -> Value.Int i)));
      ("name", Value.Str "pod-image-sample");
      ("nested", Value.Assoc [ ("a", Value.Tag ("x", Value.Int 1)) ]) ]

let encoded_sample = Wire.encode sample_value

let t_encode =
  Test.make ~name:"wire.encode" (Staged.stage (fun () -> ignore (Wire.encode sample_value)))

let t_decode =
  Test.make ~name:"wire.decode" (Staged.stage (fun () -> ignore (Wire.decode encoded_sample)))

let t_sockbuf =
  Test.make ~name:"sockbuf.push/pop-1KB"
    (Staged.stage (fun () ->
         let b = Sockbuf.create () in
         for _ = 1 to 8 do
           Sockbuf.push b (String.make 128 'x')
         done;
         while not (Sockbuf.is_empty b) do
           ignore (Sockbuf.pop b 100)
         done))

let t_heap =
  Test.make ~name:"pheap.push/pop-64"
    (Staged.stage (fun () ->
         let h = Pheap.create () in
         for i = 63 downto 0 do
           Pheap.push h ~key:i i
         done;
         let rec drain () = match Pheap.pop h with Some _ -> drain () | None -> () in
         drain ()))

let t_engine =
  Test.make ~name:"engine.1000-events"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         for i = 1 to 1000 do
           Engine.schedule e ~delay:(Simtime.ns i) (fun () -> ())
         done;
         Engine.run e))

(* one full simulated TCP echo: handshake, payload both ways, teardown *)
let t_tcp =
  Test.make ~name:"sim.tcp-echo"
    (Staged.stage (fun () ->
         let engine = Engine.create () in
         let fabric = Zapc_simnet.Fabric.create engine in
         let ns0 = Zapc_simnet.Netstack.create ~node:0 fabric in
         let ns1 = Zapc_simnet.Netstack.create ~node:1 fabric in
         let ip0 = Zapc_simnet.Addr.make_ip 10 0 0 1 in
         let ip1 = Zapc_simnet.Addr.make_ip 10 0 0 2 in
         Zapc_simnet.Netstack.add_ip ns0 ip0;
         Zapc_simnet.Netstack.add_ip ns1 ip1;
         let listener = Zapc_simnet.Netstack.new_socket ns1 Zapc_simnet.Socket.Stream in
         ignore (Zapc_simnet.Netstack.bind ns1 listener { Zapc_simnet.Addr.ip = ip1; port = 80 });
         ignore (Zapc_simnet.Netstack.listen ns1 listener 4);
         let client = Zapc_simnet.Netstack.new_socket ns0 Zapc_simnet.Socket.Stream in
         ignore (Zapc_simnet.Netstack.connect_start ns0 client { Zapc_simnet.Addr.ip = ip1; port = 80 });
         Engine.run engine;
         ignore (Zapc_simnet.Tcp.send_data client "ping");
         Engine.run engine))

(* The recorder's open-span set is a hashtable keyed by span id: closing
   by handle is O(1) however many spans are concurrently open (the serve
   runs hold hundreds), and the by-name close only scans the open set, not
   the full history.  The asserts pin the semantics the tracing layer
   depends on: every close resolves, and the set drains to empty. *)
module Span = Zapc_obs.Span

let t_span =
  Test.make ~name:"span.256-open/close"
    (Staged.stage (fun () ->
         let r = Span.create () in
         let handles =
           List.init 256 (fun i ->
               Span.begin_span r ~time:(Simtime.ns i) ~pod:(i mod 16) ~node:0
                 "phase")
         in
         List.iter (fun sp -> Span.end_span r ~time:(Simtime.ns 1000) sp) handles;
         assert (Span.open_count r = 0)))

let t_span_named =
  Test.make ~name:"span.end_named-64-open"
    (Staged.stage (fun () ->
         let r = Span.create () in
         for i = 0 to 63 do
           ignore (Span.begin_span r ~time:(Simtime.ns i) ~pod:i ~node:0 "ph")
         done;
         for i = 63 downto 0 do
           assert (Span.end_named r ~time:(Simtime.ns 100) ~pod:i "ph")
         done;
         assert (Span.open_count r = 0)))

let tests = [ t_encode; t_decode; t_sockbuf; t_heap; t_engine; t_tcp; t_span; t_span_named ]

(* --- engine hot-path throughput (events/s), heap vs calendar ----------

   Steady-state churn, not build-then-drain: a standing population of
   events where every fire re-schedules itself at a mixed horizon — the
   shape of a big cluster's event queue (per-connection TCP timers plus
   heartbeats plus phase timeouts).  The population depth is what
   separates the backends: the binary heap pays a sift per operation,
   the calendar queue appends in O(1) and sorts each fine bucket once.
   Deterministic event count, wall-clock rate — these numbers are host
   facts and must stay under "host" keys in any gated artifact. *)

let churn_events = 1_000_000
let churn_standing = 300_000

(* mixed horizons: mostly sub-60us, a band of sub-60ms, a tail out to
   ~20 virtual seconds (coarse ring + overflow territory) *)
let churn_delay i =
  match i mod 8 with
  | 0 | 1 | 2 -> Simtime.ns (i mod 60_000)
  | 3 | 4 | 5 -> Simtime.us (i mod 60_000)
  | 6 -> Simtime.ms (i mod 500)
  | _ -> Simtime.sec (float_of_int (i mod 20))

let churn_delays = lazy (Array.init churn_events churn_delay)

let engine_events_per_sec kind =
  let delays = Lazy.force churn_delays in
  let best = ref infinity in
  for _rep = 1 to 5 do
    (* whatever ran before this (the scale sweep allocates a thousand
       simulated nodes) must not bleed into the rate via GC state *)
    Gc.compact ();
    let e = Engine.create ~queue:kind () in
    let i = ref 0 in
    let rec fn () =
      i := if !i = churn_events - 1 then 0 else !i + 1;
      Engine.schedule e ~delay:(Array.unsafe_get delays !i) fn
    in
    let t0 = Unix.gettimeofday () in
    for j = 0 to churn_standing - 1 do
      Engine.schedule e ~delay:(Array.unsafe_get delays j) fn
    done;
    Engine.run ~max_events:churn_events e;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  float_of_int churn_events /. !best

(* [(heap rate, calendar rate, calendar/heap)] — the scale experiment
   embeds these in BENCH_scale.json and enforces the >= 5x floor. *)
let engine_throughput () =
  let h = engine_events_per_sec Engine.Heap in
  let c = engine_events_per_sec Engine.Calendar in
  (h, c, c /. h)

let run () =
  Driver.section "MICRO  Wall-clock microbenchmarks of core operations (Bechamel)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  Printf.printf "%-24s %16s\n" "benchmark" "ns/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name r ->
          match Analyze.OLS.estimates r with
          | Some (est :: _) -> Printf.printf "%-24s %16.1f\n" name est
          | Some [] | None -> Printf.printf "%-24s %16s\n" name "n/a")
        results)
    tests
